#!/usr/bin/env python3
"""Sanity-gate BENCH_storage.json (experiment E20).

The experiment exists to prove two claims about the v2 storage engine;
the gates below fail CI when the data stops proving them:

1. Bounded recovery.  In the recovery-vs-state sweep the WAL tail is
   held constant while total state quadruples, so the replayed-record
   count must equal the configured tail in every row (a drift means the
   checkpoint chain is being replayed — the v1 failure mode this PR
   removed).  In spill mode the RAM image after recovery must also hold
   only the tail's distinct keys, never total state.  Wall-clock time is
   advisory only (warn past a 4x spread): chain length and page-cache
   state move millisecond timings by several x on healthy runs, so the
   deterministic record counts are the fence, not the clock.
2. The inverse control: in the recovery-vs-tail sweep, replayed records
   must strictly increase with the tail.
3. Cold-read layer health: every present-key probe must have found its
   key (the bench exits nonzero itself otherwise), absent-key probes
   must be mostly bloom misses (>= 80% — i.e. no block I/O), and the
   bloom false-positive rate must stay under 5% (designed ~1% at
   10 bits/key; 5x slack covers small-filter quantization).
4. Group-commit sanity is advisory: the adaptive window should land
   within broad noise bands of the fixed-window baseline — warn, don't
   fail, because shared CI runners make sub-millisecond fsync timing
   untrustworthy.

Exit status: 0 = pass (possibly with warnings), 1 = hard failure,
2 = malformed/missing input.
"""

import json
import sys

STATE_TIME_RATIO_WARN = 4.0
BLOOM_MISS_FLOOR = 0.80
FALSE_POSITIVE_CEIL = 0.05
GC_NOISE_LO = 0.25
GC_NOISE_HI = 4.0


def fail(msg):
    print(f"check_bench_storage: FAIL: {msg}", file=sys.stderr)
    return 1


def warn(msg):
    print(f"check_bench_storage: warning: {msg}", file=sys.stderr)


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_storage.json"
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as exc:
        print(f"check_bench_storage: cannot read {path}: {exc}",
              file=sys.stderr)
        return 2

    status = 0

    for section in ("recovery_vs_state", "recovery_vs_tail"):
        rows = data.get(section)
        if not isinstance(rows, list) or len(rows) < 2:
            print(f"check_bench_storage: {path} lacks section {section!r}",
                  file=sys.stderr)
            return 2
    cold = data.get("cold_reads")
    gc = data.get("group_commit")
    if not isinstance(cold, dict) or not isinstance(gc, dict):
        print(f"check_bench_storage: {path} lacks cold_reads/group_commit",
              file=sys.stderr)
        return 2

    # 1. Bounded recovery: replay == tail at every state size.
    tail = data.get("tail_records")
    vs_state = data["recovery_vs_state"]
    for row in vs_state:
        if row.get("replayed") != row.get("tail_records"):
            status |= fail(
                f"recovery at total_keys={row.get('total_keys')} replayed "
                f"{row.get('replayed')} records for a "
                f"{row.get('tail_records')}-record tail — recovery cost is "
                "no longer bounded by the tail")
        if row.get("tail_records") != tail:
            status |= fail(
                f"recovery_vs_state row holds tail="
                f"{row.get('tail_records')}, sweep promised {tail}")
        entries = row.get("image_entries", 0)
        if entries > row.get("tail_records", 0):
            status |= fail(
                f"spill recovery at total_keys={row.get('total_keys')} "
                f"materialized {entries} RAM entries (> tail) — total "
                "state is being paged back at restart")
    times = [row.get("recover_ms", 0.0) for row in vs_state]
    if min(times) > 0:
        ratio = max(times) / min(times)
        if ratio >= STATE_TIME_RATIO_WARN:
            warn(f"recovery wall-clock spread {ratio:.2f}x across a 4x "
                 f"state spread — advisory (chain length and page cache "
                 "move ms timings), the record-count gates are the fence")

    # 2. Inverse control: more tail, more replay.
    vs_tail = data["recovery_vs_tail"]
    replayed = [row.get("replayed", 0) for row in vs_tail]
    if replayed != sorted(replayed) or len(set(replayed)) != len(replayed):
        status |= fail(
            f"recovery_vs_tail replay counts {replayed} do not strictly "
            "increase with the tail — the sweep is not measuring replay")

    # 3. Cold-read layer.
    absent = cold.get("absent_probes", 0)
    if absent <= 0:
        status |= fail("cold_reads ran no absent-key probes")
    else:
        misses = cold.get("bloom_misses", 0)
        if misses < BLOOM_MISS_FLOOR * absent:
            status |= fail(
                f"only {misses}/{absent} absent probes were bloom misses "
                f"(floor {BLOOM_MISS_FLOOR:.0%}) — the filter is not "
                "shielding block I/O")
        fp_rate = cold.get("false_positive_rate", 1.0)
        if fp_rate > FALSE_POSITIVE_CEIL:
            status |= fail(
                f"bloom false-positive rate {fp_rate:.2%} exceeds "
                f"{FALSE_POSITIVE_CEIL:.0%} (designed ~1% at 10 bits/key)")
    if cold.get("bloom_hits", 0) < cold.get("present_probes", 1):
        status |= fail(
            f"present probes {cold.get('present_probes')} but only "
            f"{cold.get('bloom_hits')} bloom hits — present keys are "
            "missing from the cold layer")

    # 4. Group-commit sanity (advisory).
    fixed = gc.get("fixed_writes_per_sec", 0)
    adaptive = gc.get("adaptive_writes_per_sec", 0)
    if fixed <= 0 or adaptive <= 0:
        status |= fail("a group-commit section produced no writes")
    else:
        rel = adaptive / fixed
        if not GC_NOISE_LO <= rel <= GC_NOISE_HI:
            warn(f"adaptive window at {rel:.2f}x of the fixed baseline "
                 f"(bands [{GC_NOISE_LO}, {GC_NOISE_HI}]) — advisory on "
                 "shared runners")

    if status == 0:
        print(f"check_bench_storage: OK ({path}, {data.get('keys')} keys, "
              f"tail {tail} records, bloom fp "
              f"{cold.get('false_positive_rate', 0):.2%})")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
