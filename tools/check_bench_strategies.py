#!/usr/bin/env python3
"""Sanity-gate BENCH_strategies.json (experiment E21).

Checks:

1. Both sections must be present: `read_heavy` (per-strategy rows for the
   95%-read workload) and `switch_under_traffic` (live majority <-> ROWA
   flips under load).  A bench that silently skipped a section must not
   pass.
2. Read-heavy ordering: with minimal-quorum targeting, a majority-of-5
   read costs 3+3 messages while ROWA costs 1+1, so ROWA and the
   read-dominant weighted system must beat the majority row on measured
   messages/op (strictly fewer).  This is the regression gate for the
   read-phase over-fanout fix — a client that quietly falls back to
   broadcasting erases the messages/op gap even when throughput noise
   hides it.  Throughput gets a *floor*, not a strict ordering: the
   read-optimized rows must hold >= MIN_THROUGHPUT_RATIO of the majority
   baseline.  Throughput ordering between back-to-back runs flips under
   scheduler contention on small CI hosts even when the wire win is
   intact, so the deterministic messages/op check carries the strictness.
3. Switch-under-traffic floor: the median throughput of the switching
   phase must hold at least half the steady-state median
   (ratio >= 0.5), and at least one switch must actually have been
   installed — a live strategy switch is a blip, not an outage.

Exit status: 0 = pass, 1 = hard failure, 2 = malformed/missing input.
"""

import json
import sys

MIN_SWITCH_RATIO = 0.5
MIN_THROUGHPUT_RATIO = 0.85


def fail(msg):
    print(f"check_bench_strategies: FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_strategies.json"
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as exc:
        print(f"check_bench_strategies: cannot read {path}: {exc}",
              file=sys.stderr)
        return 2

    status = 0

    # 1. Both sections present and well-formed.
    rows = data.get("read_heavy")
    if not isinstance(rows, list) or not rows:
        print(f"check_bench_strategies: {path} lacks section 'read_heavy'",
              file=sys.stderr)
        return 2
    switch = data.get("switch_under_traffic")
    if not isinstance(switch, dict):
        print(f"check_bench_strategies: {path} lacks section "
              "'switch_under_traffic'", file=sys.stderr)
        return 2

    by_strategy = {}
    for row in rows:
        name = row.get("strategy")
        if (not isinstance(name, str)
                or not isinstance(row.get("ops_per_sec"), (int, float))
                or not isinstance(row.get("messages_per_op"), (int, float))):
            print(f"check_bench_strategies: malformed read_heavy row {row!r}",
                  file=sys.stderr)
            return 2
        by_strategy[name] = row

    majority = by_strategy.get("majority")
    if majority is None:
        print("check_bench_strategies: read_heavy has no 'majority' "
              "baseline row", file=sys.stderr)
        return 2
    read_optimized = [n for n in by_strategy if n != "majority"]
    if not read_optimized:
        print("check_bench_strategies: read_heavy has no read-optimized "
              "strategies to compare against majority", file=sys.stderr)
        return 2

    # 2. ROWA / read-dominant must beat majority on the wire, and must
    #    not regress throughput below the contention-tolerant floor.
    for name in read_optimized:
        row = by_strategy[name]
        floor = MIN_THROUGHPUT_RATIO * majority["ops_per_sec"]
        if row["ops_per_sec"] < floor:
            status |= fail(
                f"read-heavy throughput: {name} "
                f"({row['ops_per_sec']:.0f} ops/s) fell below "
                f"{MIN_THROUGHPUT_RATIO}x of majority "
                f"({majority['ops_per_sec']:.0f} ops/s)")
        if row["messages_per_op"] >= majority["messages_per_op"]:
            status |= fail(
                f"messages/op: {name} ({row['messages_per_op']:.2f}) is not "
                f"below majority ({majority['messages_per_op']:.2f}); "
                "minimal-quorum targeting is not engaging")
        if row.get("failures", 0):
            status |= fail(
                f"read-heavy {name} reported {row['failures']} failed ops "
                "on a healthy store")

    # 3. Live switches must not crater throughput.
    ratio = switch.get("ratio")
    switches = switch.get("switches")
    if not isinstance(ratio, (int, float)) or not isinstance(switches, int):
        print("check_bench_strategies: switch_under_traffic lacks "
              "ratio/switches", file=sys.stderr)
        return 2
    if switches < 1:
        status |= fail("switch_under_traffic installed zero switches; the "
                       "section measured nothing")
    if ratio < MIN_SWITCH_RATIO:
        status |= fail(
            f"during-switch median held only {ratio:.2f}x of steady state "
            f"(floor {MIN_SWITCH_RATIO})")

    if status == 0:
        print(f"check_bench_strategies: OK ({path}, "
              f"{len(rows)} strategies, {switches} live switches, "
              f"switch ratio {ratio:.2f})")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
