#!/usr/bin/env python3
"""Sanity-gate BENCH_sharding.json (experiment E16/E16b).

Checks, in order of how badly they have bitten us before:

1. No two sweep sections may share an identical per-shard ops array.
   bench_sharding once seeded every section's workload RNG identically,
   so the memory and durable sweeps produced byte-for-byte equal
   `shard_ops` arrays and the tables looked plausible while measuring
   the same traffic three times.  Distinct arrays prove each section
   ran its own workload.
2. `hardware_concurrency` must be recorded and positive — the speedup
   columns are meaningless without knowing the core budget, and the
   multi-core gate below keys off it.
3. Multi-core speedup gate: on hosts with >= 4 cores, shards=4 must
   beat shards=1 wall-clock on the memory backend (speedup > 1.0), and
   shards=8 must hold >= 0.75x.  Below 4 cores the worker pool is
   capped at the core count, so the sweep measures dispatch overhead,
   not parallelism — the same thresholds are reported as warnings only.

Exit status: 0 = pass (possibly with warnings), 1 = hard failure,
2 = malformed/missing input.
"""

import json
import sys

SECTIONS = (
    "memory_backend",
    "durable_group_commit",
    "pre_change_inline_group_commit",
)

MULTICORE_MIN_CORES = 4
SHARDS4_MIN_SPEEDUP = 1.0
SHARDS8_MIN_SPEEDUP = 0.75


def fail(msg):
    print(f"check_bench_sharding: FAIL: {msg}", file=sys.stderr)
    return 1


def warn(msg):
    print(f"check_bench_sharding: warning: {msg}", file=sys.stderr)


def row_for(section, shards):
    for row in section:
        if row.get("shards") == shards:
            return row
    return None


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_sharding.json"
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as exc:
        print(f"check_bench_sharding: cannot read {path}: {exc}",
              file=sys.stderr)
        return 2

    status = 0

    sections = {}
    for name in SECTIONS:
        rows = data.get(name)
        if not isinstance(rows, list) or not rows:
            print(f"check_bench_sharding: {path} lacks section {name!r}",
                  file=sys.stderr)
            return 2
        sections[name] = rows

    # 1. Identical per-shard arrays across sections ⇒ the sweeps shared a
    #    workload RNG and at least one table is a duplicate measurement.
    seen = {}
    for name, rows in sections.items():
        for row in rows:
            ops = row.get("shard_ops")
            if not isinstance(ops, list):
                print(
                    f"check_bench_sharding: {name} shards="
                    f"{row.get('shards')} has no shard_ops array",
                    file=sys.stderr)
                return 2
            key = (row.get("shards"), tuple(ops))
            if key in seen and seen[key] != name:
                status |= fail(
                    f"sections {seen[key]!r} and {name!r} report an "
                    f"identical per-shard ops array at shards={key[0]} "
                    f"({list(key[1])}); the sweeps did not run "
                    "independent workloads")
            seen.setdefault(key, name)

    # 2. Core count must be recorded.
    cores = data.get("hardware_concurrency")
    if not isinstance(cores, int) or cores < 1:
        status |= fail(
            "hardware_concurrency missing or non-positive; speedup "
            "columns cannot be interpreted")
        cores = 0

    # 3. Multi-core scaling gate (hard on >= 4 cores, warn-only below).
    memory = sections["memory_backend"]
    gates = (
        (4, SHARDS4_MIN_SPEEDUP, "beat the single-shard baseline"),
        (8, SHARDS8_MIN_SPEEDUP, f"hold >= {SHARDS8_MIN_SPEEDUP}x"),
    )
    enforce = cores >= MULTICORE_MIN_CORES
    for shards, floor, verb in gates:
        row = row_for(memory, shards)
        if row is None:
            status |= fail(f"memory_backend sweep has no shards={shards} row")
            continue
        speedup = row.get("speedup_vs_1_shard")
        if not isinstance(speedup, (int, float)):
            status |= fail(
                f"memory_backend shards={shards} lacks speedup_vs_1_shard")
            continue
        ok = speedup > floor if floor == SHARDS4_MIN_SPEEDUP \
            else speedup >= floor
        if ok:
            continue
        msg = (f"memory shards={shards} speedup {speedup:.2f}x failed to "
               f"{verb} (host has {cores} cores)")
        if enforce:
            status |= fail(msg)
        else:
            warn(msg + " — advisory only below "
                 f"{MULTICORE_MIN_CORES} cores")

    if status == 0:
        print(f"check_bench_sharding: OK ({path}, {cores} cores, "
              f"{sum(len(r) for r in sections.values())} sweep rows)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
