// Durable store: crash-recovery that actually loses (and rebuilds) state.
//
// With StoreOptions::durability set, each replica keeps a write-ahead
// segment chain and incremental checkpoints on disk. Crash() then wipes
// the replica's memory — a true fail-stop — and Recover() replays
// checkpoints + log tail before the replica rejoins quorums. The run
// below crashes a replica mid-workload, recovers
// it, then forces a read quorum through it to show Lemma 8 live: the
// highest-versioned copy in the quorum is the logical state even though
// this replica missed writes while down.
//
//   build/examples/durable_store
#include <filesystem>
#include <iostream>

#include "runtime/store.hpp"

int main() {
  using namespace qcnt;
  namespace fs = std::filesystem;

  const std::string dir = "durable_store_example";
  fs::remove_all(dir);

  {
    runtime::StoreOptions options;
    options.replicas = 3;
    storage::DurabilityOptions durability;
    durability.directory = dir;
    durability.fsync = storage::FsyncPolicy::kGroupCommit;
    durability.group_commit_window = std::chrono::microseconds(500);
    durability.checkpoint_tail_bytes = 1024;
    options.durability = durability;

    runtime::ReplicatedStore store(std::move(options));
    auto client = store.MakeClient();

    for (int i = 1; i <= 50; ++i) client->Write("balance", 100 * i);
    std::cout << "balance -> " << client->Read("balance").value << '\n';

    // Fail-stop replica 2: its in-memory map is gone.
    store.Crash(2);
    client->Write("balance", 9999);  // replica 2 misses this write
    store.Recover(2);                // replays snapshot + log from disk

    const auto stats = store.ReplicaStorageStats(2);
    std::cout << "replica 2 recovered: " << stats.recoveries
              << " recoveries, " << stats.recovery_replayed
              << " log records replayed, " << stats.checkpoints_written
              << " checkpoints written\n";

    // Force reads through the recovered replica: quorum must be {1, 2}.
    store.Crash(0);
    std::cout << "read via recovered replica -> "
              << client->Read("balance").value
              << "  (highest version in the quorum wins)\n";

    const auto total = store.TotalStorageStats();
    std::cout << "storage totals: " << total.records_appended
              << " records, " << total.fsyncs << " fsyncs, "
              << total.bytes_appended << " bytes\n";
  }

  // The directory outlives the store object — a fresh store recovers the
  // whole state from disk, like a process restart.
  runtime::StoreOptions options;
  options.replicas = 3;
  options.durability = storage::DurabilityOptions{.directory = dir};
  runtime::ReplicatedStore reborn(std::move(options));
  std::cout << "after full restart: balance -> "
            << reborn.MakeClient()->Read("balance").value << '\n';

  fs::remove_all(dir);
  return 0;
}
