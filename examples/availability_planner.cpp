// Capacity planning with the quorum library: pick the cheapest
// configuration that meets an availability target for a given workload.
//
// Given a per-replica up-probability, a read fraction, and a target
// availability for both operation kinds, sweep the built-in strategies and
// replica counts, discard configurations that miss the target, and rank
// the rest by expected messages per operation — the library as a design
// tool rather than a runtime.
//
//   build/examples/availability_planner [up_prob] [read_fraction] [target]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <optional>

#include "quorum/availability.hpp"
#include "quorum/coterie.hpp"

int main(int argc, char** argv) {
  using namespace qcnt;
  using quorum::Availability;
  using quorum::QuorumSystem;

  const double up_prob = argc > 1 ? std::atof(argv[1]) : 0.95;
  const double read_fraction = argc > 2 ? std::atof(argv[2]) : 0.8;
  const double target = argc > 3 ? std::atof(argv[3]) : 0.999;

  std::cout << "per-replica availability " << up_prob << ", reads "
            << read_fraction * 100 << "%, target " << target << "\n\n";

  struct Candidate {
    QuorumSystem system;
    Availability availability;
    double cost;
  };
  std::vector<Candidate> viable, rejected;

  std::vector<QuorumSystem> candidates;
  for (ReplicaId n : {1, 3, 5, 7, 9}) {
    candidates.push_back(quorum::MajoritySystem(n));
    candidates.push_back(quorum::ReadOneWriteAllSystem(n));
  }
  candidates.push_back(quorum::GridSystem(3, 3));
  candidates.push_back(quorum::HierarchicalMajoritySystem(3, 2));
  candidates.push_back(quorum::TreeQuorumSystem(3, 2));

  for (QuorumSystem& s : candidates) {
    const Availability a = quorum::ExactAvailability(s, up_prob);
    const quorum::OperationCost c = quorum::FullyUpCost(s);
    Candidate cand{std::move(s), a,
                   read_fraction * c.read_messages +
                       (1 - read_fraction) * c.write_messages};
    if (a.read >= target && a.write >= target) {
      viable.push_back(std::move(cand));
    } else {
      rejected.push_back(std::move(cand));
    }
  }
  std::sort(viable.begin(), viable.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.cost < b.cost;
            });

  std::cout << std::fixed << std::setprecision(5);
  std::cout << "viable configurations (cheapest first):\n";
  for (const Candidate& c : viable) {
    std::cout << "  " << std::left << std::setw(24)
              << (c.system.name + "(" + std::to_string(c.system.n) + ")")
              << " read=" << c.availability.read
              << " write=" << c.availability.write
              << "  ~" << std::setprecision(2) << c.cost
              << " msgs/op\n" << std::setprecision(5);
  }
  if (viable.empty()) {
    std::cout << "  (none — raise the replica count or lower the target)\n";
  }
  std::cout << "\nrejected (missed the target):\n";
  for (const Candidate& c : rejected) {
    std::cout << "  " << std::left << std::setw(24)
              << (c.system.name + "(" + std::to_string(c.system.n) + ")")
              << " read=" << c.availability.read
              << " write=" << c.availability.write << '\n';
  }

  if (!viable.empty()) {
    std::cout << "\nrecommended: " << viable.front().system.name << " over "
              << viable.front().system.n << " replicas\n";
  }
  return 0;
}
