// Exploring the formal model: watch Quorum Consensus run inside the
// Lynch–Merritt I/O automaton semantics, step by step.
//
// Builds the smallest interesting replicated serial system B (one item,
// three DMs, one write-TM and one read-TM under one user transaction),
// resolves the model's nondeterminism with a seed, and prints the full
// schedule with human-readable names. Then it performs the Theorem-10
// construction before your eyes: deletes the replica-access operations and
// replays the result against the non-replicated system A.
//
//   build/examples/model_explorer [seed]
#include <cstdlib>
#include <iostream>

#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "replication/theorem10.hpp"
#include "txn/scripted_transaction.hpp"

int main(int argc, char** argv) {
  using namespace qcnt;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  replication::ReplicatedSpec spec;
  const ItemId x = spec.AddItem("x", 3, quorum::Majority(3),
                                Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId wtm = spec.AddWriteTm(u, x, Plain{std::int64_t{42}});
  const TxnId rtm = spec.AddReadTm(u, x);
  spec.Finalize();

  std::cout << "=== transaction tree of system B ===\n"
            << spec.Type().ToAscii() << '\n';

  replication::UserAutomataFactory users = [&](ioa::System& sys) {
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                          std::vector<TxnId>{u});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u,
                                          std::vector<TxnId>{wtm, rtm});
  };
  ioa::System b = replication::BuildB(spec, users);

  Rng rng(seed);
  ioa::ExploreOptions opts;
  opts.weight = [](const ioa::Action& a) {
    return a.kind == ioa::ActionKind::kAbort ? 0.2 : 1.0;
  };
  const ioa::ExploreResult run = ioa::Explore(b, rng, opts);

  std::cout << "=== schedule of B (seed " << seed << ", "
            << run.schedule.size() << " operations) ===\n";
  for (std::size_t i = 0; i < run.schedule.size(); ++i) {
    const ioa::Action& a = run.schedule[i];
    std::cout << (spec.IsReplicaAccess(a.txn) ? "    " : "")
              << i << ": " << spec.Type().Pretty(a) << '\n';
  }

  const replication::Theorem10Result t10 =
      replication::CheckTheorem10(spec, users, run.schedule);
  std::cout << "\n=== Theorem 10 construction: alpha = beta minus replica "
               "accesses ===\n";
  for (std::size_t i = 0; i < t10.alpha.size(); ++i) {
    std::cout << i << ": " << spec.Type().Pretty(t10.alpha[i]) << '\n';
  }
  std::cout << "\nalpha is a schedule of the non-replicated system A: "
            << (t10.ok ? "YES (verified by replay)" : t10.message) << '\n';
  std::cout << "try different seeds to watch other interleavings and "
               "abort patterns.\n";
  return t10.ok ? 0 : 1;
}
