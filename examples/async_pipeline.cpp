// Async pipeline: future-based batched quorum operations.
//
// The AsyncQuorumClient pipelines operations on disjoint keys — the
// paper's protocol only constrains the per-item version order (Lemmas
// 7/8), so independent items' quorum phases may overlap — and coalesces
// staged requests into batch messages, so each replica serves many ops
// per mailbox wakeup and logs a whole write batch with one group-commit
// fsync decision. Same-key operations stay serialized in submission
// order behind each other.
//
// The run below submits a burst of writes across many keys, overlaps a
// read burst, and prints the client's batching counters next to the
// replica-side ones.
//
//   build/examples/async_pipeline
#include <iostream>
#include <vector>

#include "runtime/store.hpp"

int main() {
  using namespace qcnt;

  runtime::StoreOptions options;
  options.replicas = 5;
  runtime::ReplicatedStore store(std::move(options));

  auto client = store.MakeAsyncClient(runtime::AsyncQuorumClient::Options{
      .window = 16,     // up to 16 ops in the pipeline
      .max_batch = 8,   // coalesce up to 8 staged requests per message
  });

  // 64 writes over 32 keys: disjoint keys pipeline, repeated keys are
  // serialized per key (the second write to "item_3" waits for the
  // first, and installs a strictly higher version).
  std::vector<runtime::OpFuture> writes;
  for (int i = 0; i < 64; ++i) {
    writes.push_back(
        client->SubmitWrite("item_" + std::to_string(i % 32), i));
  }

  // Reads join the same pipeline; a read behind a same-key write sees it.
  runtime::OpFuture probe = client->SubmitRead("item_3");

  // Get() drives the pipeline until this op resolves; Drain() finishes
  // everything. Futures stay valid either way.
  const runtime::ClientResult r = probe.Get();
  std::cout << "item_3 -> value " << r.value << " at version " << r.version
            << '\n';

  if (!client->Drain()) {
    std::cerr << "some operations failed\n";
    return 1;
  }
  for (auto& w : writes) {
    if (!w.Get().ok) return 1;
  }

  const runtime::AsyncQuorumClient::Stats cs = client->ClientStats();
  const runtime::BatchStats rs = store.TotalBatchStats();
  std::cout << "client: " << cs.ops_completed << " ops in "
            << cs.batches_sent << " batch messages ("
            << (cs.batches_sent
                    ? static_cast<double>(cs.batched_requests) /
                          static_cast<double>(cs.batches_sent)
                    : 0)
            << " requests per message)\n";
  std::cout << "replicas: " << rs.batched_ops << " batched ops in "
            << rs.batches_applied << " batch applications, largest batch "
            << rs.max_batch << '\n';
  return 0;
}
