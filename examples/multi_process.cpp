// Multi-process deployment: a 5-replica quorum universe as 6 OS
// processes on loopback TCP.
//
// The launcher (default mode) spawns one child process per replica —
// each re-executes this binary with `--replica i` and runs a
// ReplicaServer on its own TcpTransport — then plays the client itself:
// it writes and reads a keyed workload through the ordinary
// QuorumClient, SIGKILLs replica 0 mid-run to show the universe keeps
// serving on a 4-of-5 majority, respawns it, and verifies every key.
//
//   build/examples/multi_process              # whole demo, exit 0 = pass
//   build/examples/multi_process --replicas 7
//
// Ports: replica i listens on port_base + i, the client on
// port_base + n. port_base defaults to 17400; override with
// --port-base or the QCNT_TCP_PORT_BASE environment variable.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "net/tcp_transport.hpp"
#include "quorum/strategies.hpp"
#include "runtime/client.hpp"
#include "runtime/replica_server.hpp"

namespace {

using qcnt::net::Endpoint;
using qcnt::net::TcpTransport;
using qcnt::net::TcpTransportOptions;
using qcnt::runtime::NodeId;

constexpr std::uint16_t kDefaultPortBase = 17400;

/// Endpoints for n replicas (ports base..base+n-1) plus one client
/// (port base+n) — every process builds the identical universe table.
TcpTransportOptions Universe(std::size_t replicas, std::uint16_t port_base) {
  TcpTransportOptions o;
  o.universe.resize(replicas + 1);
  for (std::size_t i = 0; i < o.universe.size(); ++i) {
    o.universe[i].port = static_cast<std::uint16_t>(port_base + i);
  }
  return o;
}

/// Child process: host replica `id` until SIGTERM.
int RunReplica(NodeId id, std::size_t replicas, std::uint16_t port_base) {
  // Block the shutdown signals before any thread starts, so sigwait in
  // this thread is the one place they are handled.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  TcpTransport transport(Universe(replicas, port_base), {id});
  qcnt::runtime::ReplicaServer server(transport, id);
  std::cout << "[replica " << id << "] serving on port "
            << transport.ActualEndpoint(id).port << " (pid " << ::getpid()
            << ")\n";

  int sig = 0;
  sigwait(&set, &sig);
  std::cout << "[replica " << id << "] signal " << sig << ", shutting down\n";
  server.Shutdown();
  transport.CloseAll();
  return 0;
}

pid_t SpawnReplica(const char* self, NodeId id, std::size_t replicas,
                   std::uint16_t port_base) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const std::string id_s = std::to_string(id);
  const std::string n_s = std::to_string(replicas);
  const std::string port_s = std::to_string(port_base);
  ::execl(self, self, "--replica", id_s.c_str(), "--replicas", n_s.c_str(),
          "--port-base", port_s.c_str(), static_cast<char*>(nullptr));
  std::perror("execl");
  _exit(127);
}

bool Check(bool ok, const char* what) {
  if (!ok) std::cerr << "FAIL: " << what << '\n';
  return ok;
}

/// Launcher + client: spawn the replicas, run the workload, kill and
/// respawn one replica, verify, tear everything down.
int RunLauncher(const char* self, std::size_t replicas,
                std::uint16_t port_base) {
  std::vector<pid_t> children;
  for (std::size_t r = 0; r < replicas; ++r) {
    children.push_back(
        SpawnReplica(self, static_cast<NodeId>(r), replicas, port_base));
  }

  bool ok = true;
  {
    // This process is the client node (id = replicas). The transport
    // reconnects with backoff and the client retries with backoff, so
    // there is no "wait for replicas to be up" step — the first ops
    // simply ride the connection establishment.
    const NodeId me = static_cast<NodeId>(replicas);
    TcpTransport transport(Universe(replicas, port_base), {me});
    qcnt::runtime::QuorumClient::Options copts;
    copts.timeout = std::chrono::milliseconds(500);
    copts.max_attempts = 20;
    qcnt::runtime::QuorumClient client(
        transport, me,
        {qcnt::quorum::MajoritySystem(static_cast<qcnt::ReplicaId>(replicas))},
        0, copts);

    constexpr int kKeys = 100;
    const auto key = [](int i) { return "key-" + std::to_string(i); };

    std::cout << "[client] writing " << kKeys << " keys across " << replicas
              << " replica processes\n";
    for (int i = 0; i < kKeys; ++i) {
      ok &= Check(client.Write(key(i), i).ok, "initial write");
    }
    for (int i = 0; i < kKeys; ++i) {
      const auto r = client.Read(key(i));
      ok &= Check(r.ok && r.value == i, "initial read-back");
    }

    std::cout << "[client] SIGKILL replica 0 (pid " << children[0]
              << "); continuing on a " << replicas - 1 << "-of-" << replicas
              << " universe\n";
    ::kill(children[0], SIGKILL);
    ::waitpid(children[0], nullptr, 0);
    for (int i = 0; i < kKeys; ++i) {
      ok &= Check(client.Write(key(i), i + 1000).ok, "write during outage");
    }
    for (int i = 0; i < kKeys; ++i) {
      const auto r = client.Read(key(i));
      ok &= Check(r.ok && r.value == i + 1000, "read during outage");
    }

    std::cout << "[client] respawning replica 0\n";
    children[0] = SpawnReplica(self, 0, replicas, port_base);
    for (int i = 0; i < kKeys; ++i) {
      const auto r = client.Read(key(i));
      ok &= Check(r.ok && r.value == i + 1000, "read after respawn");
    }
    // The restarted replica answers quorums again (reads intersect the
    // write quorums that survived it, so values are still exact).
    for (int i = 0; i < kKeys; ++i) {
      ok &= Check(client.Write(key(i), i + 2000).ok, "write after respawn");
    }
    const auto wire = transport.WireStats();
    std::cout << "[client] wire: " << wire.frames_sent << " frames out, "
              << wire.frames_received << " in, " << wire.reconnect_attempts
              << " reconnect attempts, " << wire.decode_errors
              << " decode errors\n";
    ok &= Check(wire.decode_errors == 0, "no decode errors");
    transport.CloseAll();
  }

  for (pid_t pid : children) ::kill(pid, SIGTERM);
  for (pid_t pid : children) ::waitpid(pid, nullptr, 0);
  std::cout << (ok ? "PASS" : "FAIL")
            << ": multi-process quorum workload over loopback TCP\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t replicas = 5;
  std::uint16_t port_base = static_cast<std::uint16_t>(
      qcnt::common::EnvU64("QCNT_TCP_PORT_BASE", 1024, 65535 - 64)
          .value_or(kDefaultPortBase));
  int replica_id = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = (i + 1 < argc) ? argv[i + 1] : nullptr;
    if (arg == "--replica" && next) {
      replica_id = std::atoi(next);
      ++i;
    } else if (arg == "--replicas" && next) {
      replicas = static_cast<std::size_t>(std::atoi(next));
      ++i;
    } else if (arg == "--port-base" && next) {
      port_base = static_cast<std::uint16_t>(std::atoi(next));
      ++i;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--replicas n] [--port-base p] [--replica i]\n";
      return 2;
    }
  }
  if (replicas < 1 || replicas > 63) {
    std::cerr << "replicas out of range\n";
    return 2;
  }
  if (replica_id >= 0) {
    return RunReplica(static_cast<NodeId>(replica_id), replicas, port_base);
  }
  return RunLauncher(argv[0], replicas, port_base);
}
