// Bank transfers as nested transactions over replicated accounts.
//
// The scenario the paper's model is built for: user transactions with
// subtransactions, each logical access implemented by a transaction
// manager over replicated data managers, and *aborts as first-class
// events*. Two accounts are replicated 3 ways under majority quorums; a
// transfer is a nested transaction whose two legs are subtransactions.
// One transfer is deliberately aborted by the scheduler — the semantics of
// abort ("the subtransaction was never created") mean no partial transfer
// can ever be observed. The run finishes with the mechanized Theorem-10
// check: the replicated execution is literally a one-copy execution to the
// user transactions.
//
//   build/examples/bank_transfer
#include <iostream>

#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "replication/logical.hpp"
#include "replication/theorem10.hpp"
#include "txn/scripted_transaction.hpp"

int main() {
  using namespace qcnt;

  replication::ReplicatedSpec spec;
  const ItemId alice = spec.AddItem("alice", 3, quorum::Majority(3),
                                    Plain{std::int64_t{100}});
  const ItemId bob = spec.AddItem("bob", 3, quorum::Majority(3),
                                  Plain{std::int64_t{50}});

  // Transfer #1: alice -> bob, 30. The two legs are subtransactions of the
  // transfer, each writing the post-transfer balance.
  const TxnId t1 = spec.AddTransaction(kRootTxn, "transfer-1");
  const TxnId t1_debit = spec.AddTransaction(t1, "t1.debit");
  const TxnId t1_credit = spec.AddTransaction(t1, "t1.credit");
  const TxnId w_alice_70 = spec.AddWriteTm(t1_debit, alice, Plain{std::int64_t{70}});
  const TxnId w_bob_80 = spec.AddWriteTm(t1_credit, bob, Plain{std::int64_t{80}});

  // Transfer #2: bob -> alice, 80 — this one will be aborted before it
  // ever runs.
  const TxnId t2 = spec.AddTransaction(kRootTxn, "transfer-2");
  const TxnId w_bob_0 = spec.AddWriteTm(t2, bob, Plain{std::int64_t{0}});
  const TxnId w_alice_150 =
      spec.AddWriteTm(t2, alice, Plain{std::int64_t{150}});

  // An auditor reads both balances after the dust settles.
  const TxnId audit = spec.AddTransaction(kRootTxn, "audit");
  const TxnId r_alice = spec.AddReadTm(audit, alice);
  const TxnId r_bob = spec.AddReadTm(audit, bob);

  spec.Finalize(/*read_attempts=*/2);

  replication::UserAutomataFactory users = [&](ioa::System& sys) {
    sys.Emplace<txn::ScriptedTransaction>(
        spec.Type(), kRootTxn, std::vector<TxnId>{t1, t2, audit});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), t1,
                                          std::vector<TxnId>{t1_debit, t1_credit});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), t1_debit,
                                          std::vector<TxnId>{w_alice_70});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), t1_credit,
                                          std::vector<TxnId>{w_bob_80});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), t2,
                                          std::vector<TxnId>{w_bob_0, w_alice_150});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), audit,
                                          std::vector<TxnId>{r_alice, r_bob});
  };

  ioa::System system = replication::BuildB(spec, users);
  Rng rng(2026);
  ioa::ExploreOptions opts;
  // The serial scheduler nondeterministically aborts transfer-2 as a whole;
  // nothing else may abort, so the run is deterministic in outcome.
  opts.weight = [&](const ioa::Action& a) {
    if (a.kind != ioa::ActionKind::kAbort) return 1.0;
    return a.txn == t2 ? 1000.0 : 0.0;
  };
  const ioa::ExploreResult run = ioa::Explore(system, rng, opts);

  std::cout << "executed " << run.schedule.size()
            << " operations; quiescent = " << std::boolalpha << run.quiescent
            << "\n\n";

  for (const ioa::Action& a : run.schedule) {
    // Print only the user-visible events.
    if (a.kind == ioa::ActionKind::kCommit || a.kind == ioa::ActionKind::kAbort) {
      if (spec.IsUserTransaction(a.txn) && a.txn != kRootTxn) {
        std::cout << "  " << spec.Type().Pretty(a) << '\n';
      }
    }
  }

  const Plain alice_final = replication::LogicalState(spec, alice, run.schedule);
  const Plain bob_final = replication::LogicalState(spec, bob, run.schedule);
  std::cout << "\nfinal balances: alice = " << ToString(alice_final)
            << ", bob = " << ToString(bob_final) << '\n';
  std::cout << "invariant: alice + bob = 150 before and after (transfer-2 "
               "aborted atomically)\n";

  // Auditor's reads, as committed to the audit transaction.
  for (const ioa::Action& a : run.schedule) {
    if (a.kind == ioa::ActionKind::kRequestCommit &&
        (a.txn == r_alice || a.txn == r_bob)) {
      std::cout << "audit saw " << spec.Type().Pretty(a) << '\n';
    }
  }

  const replication::Theorem10Result check =
      replication::CheckTheorem10(spec, users, run.schedule);
  std::cout << "\nTheorem 10 (replicated run simulates one-copy run): "
            << (check.ok ? "verified" : check.message) << '\n';
  return check.ok ? 0 : 1;
}
