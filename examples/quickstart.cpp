// Quickstart: a replicated key-value store in a dozen lines.
//
// ReplicatedStore runs Gifford's Quorum Consensus over real threads: five
// replica servers, majority quorums, crash tolerance for free.
//
//   build/examples/quickstart
#include <iostream>

#include "runtime/store.hpp"

int main() {
  using namespace qcnt;

  // Five replicas, majority read- and write-quorums (the default).
  runtime::ReplicatedStore store(runtime::StoreOptions{.replicas = 5});
  auto client = store.MakeClient();

  // Logical writes install (version+1, value) at a write quorum after
  // discovering the current version at a read quorum.
  client->Write("greeting", 1);
  client->Write("greeting", 2);

  const runtime::ClientResult r1 = client->Read("greeting");
  std::cout << "read greeting -> " << r1.value << " ("
            << r1.latency.count() << " us)\n";

  // Two replicas crash; a majority of 5 needs only 3 — business as usual.
  store.Crash(3);
  store.Crash(4);
  client->Write("greeting", 3);
  const runtime::ClientResult r2 = client->Read("greeting");
  std::cout << "after crashing replicas 3 and 4: read greeting -> "
            << r2.value << '\n';

  // A second client sees the same state (every read quorum intersects
  // every write quorum).
  auto other = store.MakeClient();
  std::cout << "second client reads greeting -> "
            << other->Read("greeting").value << '\n';

  std::cout << "messages exchanged: " << store.MessagesSent() << '\n';
  return 0;
}
