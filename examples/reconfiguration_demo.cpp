// Surviving cascading failures by changing the quorums (Section 4).
//
// A five-replica deployment on the simulated network starts under majority
// quorums. Two replicas fail — fine. A third failure would end write
// availability, so an administrator reconfigures the item onto the three
// survivors *while the system keeps running*; when the third failure lands,
// writes keep succeeding. Generation numbers make the configuration change
// visible to every client that completes a read quorum.
//
//   build/examples/reconfiguration_demo
#include <iostream>

#include "quorum/strategies.hpp"
#include "sim/store.hpp"

int main() {
  using namespace qcnt;
  using sim::OpResult;

  std::vector<quorum::QuorumSystem> configs{
      quorum::MajoritySystem(5),
      quorum::FromConfiguration(
          "majority-of-survivors",
          quorum::Configuration({{0, 1}, {0, 2}, {1, 2}},
                                {{0, 1}, {0, 2}, {1, 2}}))};

  sim::QuorumStoreClient::Options copts;
  copts.timeout = 100.0;
  sim::Deployment d(5, 2, configs, 0, sim::LatencyModel::Uniform(1.0, 4.0),
                    0.0, 20260705, copts);

  auto write = [&d](std::int64_t value, const char* note) {
    OpResult out;
    d.clients[0]->Write(value, [&out](const OpResult& r) { out = r; });
    d.sim.Run();
    std::cout << "t=" << d.sim.Now() << "ms  write " << value << " — "
              << (out.ok ? "ok" : "FAILED") << "  (" << note << ")\n";
    return out.ok;
  };

  write(1, "all five replicas up");

  d.net.Crash(3);
  d.net.Crash(4);
  write(2, "replicas 3,4 down; majority(5) still reachable");

  std::cout << "\n-- administrator reconfigures onto survivors {0,1,2} --\n";
  OpResult rc;
  d.clients[0]->Reconfigure(1, [&rc](const OpResult& r) { rc = r; });
  d.sim.Run();
  std::cout << "reconfiguration " << (rc.ok ? "succeeded" : "FAILED")
            << "; client now at generation "
            << d.clients[0]->BelievedGeneration() << "\n\n";

  d.net.Crash(2);
  write(3, "replica 2 also down; old config would be dead, new one lives");

  // The second client has never heard about the reconfiguration; its first
  // read adopts the new configuration from the replicas' stamps.
  OpResult read;
  d.clients[1]->Read([&read](const OpResult& r) { read = r; });
  d.sim.Run();
  std::cout << "\nsecond client reads " << read.value
            << " and adopts generation "
            << d.clients[1]->BelievedGeneration() << " (config "
            << d.clients[1]->BelievedConfig() << ")\n";

  std::cout << "\nmessages sent: " << d.net.MessagesSent() << ", delivered: "
            << d.net.MessagesDelivered() << '\n';
  return (rc.ok && read.ok) ? 0 : 1;
}
