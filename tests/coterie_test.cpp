// Tests for coterie theory: the coterie predicate, domination, the
// Garcia-Molina–Barbara non-domination characterization, minimal
// transversals, and vote-assignability.
#include <gtest/gtest.h>

#include "quorum/coterie.hpp"
#include "quorum/strategies.hpp"

namespace qcnt::quorum {
namespace {

std::vector<Quorum> Majorities(ReplicaId n) {
  return Majority(n).ReadQuorums();
}

TEST(Coterie, MajorityIsACoterie) {
  EXPECT_TRUE(IsCoterie(Majorities(3), 3));
  EXPECT_TRUE(IsCoterie(Majorities(5), 5));
}

TEST(Coterie, RejectsNonIntersecting) {
  EXPECT_FALSE(IsCoterie({{0}, {1}}, 2));
}

TEST(Coterie, RejectsNonAntichain) {
  EXPECT_FALSE(IsCoterie({{0}, {0, 1}}, 2));
}

TEST(Coterie, RejectsEmptyAndOutOfUniverse) {
  EXPECT_FALSE(IsCoterie({}, 3));
  EXPECT_FALSE(IsCoterie({{0, 5}}, 3));  // replica 5 outside {0,1,2}
}

TEST(Coterie, SingletonCoterie) {
  EXPECT_TRUE(IsCoterie({{0}}, 3));  // primary copy
  EXPECT_TRUE(IsCoterie({{0, 1, 2}}, 3));  // all-of-them
}

TEST(Coterie, DominationBasics) {
  // {{0}} dominates {{0,1}}: the singleton is contained in the pair.
  EXPECT_TRUE(Dominates({{0}}, {{0, 1}}));
  EXPECT_FALSE(Dominates({{0, 1}}, {{0}}));
  // A coterie never dominates itself.
  EXPECT_FALSE(Dominates(Majorities(3), Majorities(3)));
}

TEST(Coterie, OddMajorityIsNonDominated) {
  EXPECT_FALSE(IsDominated(Majorities(3), 3));
  EXPECT_FALSE(IsDominated(Majorities(5), 5));
}

TEST(Coterie, EvenMajorityIsDominated) {
  // Majority over an even universe is the classic dominated example: break
  // ties by favoring one side. The witness intersects every 3-of-4 quorum
  // without containing one (e.g. a suitable 2-element set).
  EXPECT_TRUE(IsDominated(Majorities(4), 4));
  const auto witness = DominationWitness(Majorities(4), 4);
  ASSERT_TRUE(witness.has_value());
  EXPECT_LT(witness->size(), 3u);
}

TEST(Coterie, WitnessProperties) {
  const auto witness = DominationWitness(Majorities(4), 4);
  ASSERT_TRUE(witness.has_value());
  for (const Quorum& q : Majorities(4)) {
    EXPECT_TRUE(Intersects(*witness, q));
    EXPECT_FALSE(IsSubset(q, *witness));
  }
}

TEST(Coterie, PrimaryCopyNonDominated) {
  EXPECT_FALSE(IsDominated({{0}}, 5));
}

TEST(Coterie, AllOfThemIsDominated) {
  // The write-all coterie is dominated (by the primary copy, among others).
  EXPECT_TRUE(IsDominated({{0, 1, 2}}, 3));
  EXPECT_TRUE(Dominates({{0}}, {{0, 1, 2}}));
}

TEST(Coterie, GridWriteQuorumsAreCoterie) {
  const Configuration g = Grid(2, 2);
  EXPECT_TRUE(IsCoterie(g.WriteQuorums(), 4));
}

TEST(Coterie, TransversalsOfMajority) {
  // The minimal transversals of the 2-of-3 majority coterie are exactly the
  // 2-element sets: a single replica misses the quorum made of the others.
  const auto ts = MinimalTransversals(Majorities(3), 3);
  EXPECT_EQ(ts.size(), 3u);
  for (const Quorum& t : ts) EXPECT_EQ(t.size(), 2u);
}

TEST(Coterie, TransversalsOfPrimary) {
  // Only {0} blocks the primary-copy coterie.
  const auto ts = MinimalTransversals({{0}}, 3);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0], Quorum{0});
}

TEST(Coterie, SelfTransversalityOfNonDominatedCoteries) {
  // An ND coterie equals its own set of minimal transversals (a classical
  // characterization); check it for the odd majorities.
  for (ReplicaId n : {3, 5}) {
    auto ts = MinimalTransversals(Majorities(n), n);
    auto expected = Majorities(n);
    std::sort(ts.begin(), ts.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(ts, expected) << "n=" << n;
  }
}

TEST(Coterie, MajorityIsVoteAssignable) {
  EXPECT_TRUE(IsVoteAssignable(Majorities(3), 3));
  EXPECT_TRUE(IsVoteAssignable(Majorities(5), 5, 1));
}

TEST(Coterie, PrimaryCopyIsVoteAssignable) {
  // All votes at replica 0.
  EXPECT_TRUE(IsVoteAssignable({{0}}, 3));
}

TEST(Coterie, WeightedShapeIsVoteAssignable) {
  // Quorums of votes (2,1,1) with threshold 2: {0}, {1,2}.
  EXPECT_TRUE(IsVoteAssignable({{0}, {1, 2}}, 3));
}

TEST(Coterie, NonVoteAssignableShape) {
  // {{0,1},{1,2},{2,3},{3,0}} (the 4-cycle) is a classic non-vote-
  // assignable quorum set: votes would force the two diagonals to tie.
  EXPECT_FALSE(IsVoteAssignable({{0, 1}, {1, 2}, {2, 3}, {0, 3}}, 4));
}

}  // namespace
}  // namespace qcnt::quorum
