// Tests for the serial scheduler automaton: each pre/postcondition from the
// paper, the depth-first (serial) property of generated executions, and the
// theorem "all serial schedules are well-formed" as a randomized property.
#include <gtest/gtest.h>

#include "ioa/explorer.hpp"
#include "txn/random_transaction.hpp"
#include "txn/read_write_object.hpp"
#include "txn/scripted_transaction.hpp"
#include "txn/serial_scheduler.hpp"
#include "txn/wellformed.hpp"

namespace qcnt::txn {
namespace {

using ioa::Abort;
using ioa::ActionKind;
using ioa::Commit;
using ioa::Create;
using ioa::RequestCommit;
using ioa::RequestCreate;

struct TreeFixture {
  SystemType type;
  TxnId u1, u2, v;  // u1, u2 top-level; v child of u1
  TreeFixture() {
    u1 = type.AddTransaction(kRootTxn, "U1");
    u2 = type.AddTransaction(kRootTxn, "U2");
    v = type.AddTransaction(u1, "V");
  }
};

TEST(SerialScheduler, InitialState) {
  TreeFixture f;
  SerialScheduler s(f.type);
  EXPECT_TRUE(s.CreateRequested(kRootTxn));
  EXPECT_FALSE(s.Created(kRootTxn));
  // Only CREATE(T0) is enabled initially (no ABORT of the root).
  std::vector<ioa::Action> outs;
  s.EnabledOutputs(outs);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], Create(kRootTxn));
}

TEST(SerialScheduler, CreateRequiresRequest) {
  TreeFixture f;
  SerialScheduler s(f.type);
  EXPECT_FALSE(s.Enabled(Create(f.u1)));
  s.Apply(RequestCreate(f.u1));
  EXPECT_TRUE(s.Enabled(Create(f.u1)));
}

TEST(SerialScheduler, NoDoubleCreate) {
  TreeFixture f;
  SerialScheduler s(f.type);
  s.Apply(RequestCreate(f.u1));
  s.Apply(Create(f.u1));
  EXPECT_FALSE(s.Enabled(Create(f.u1)));
}

TEST(SerialScheduler, SiblingExclusion) {
  TreeFixture f;
  SerialScheduler s(f.type);
  s.Apply(RequestCreate(f.u1));
  s.Apply(RequestCreate(f.u2));
  s.Apply(Create(f.u1));
  // u1 created and not returned: u2 may be neither created nor aborted.
  EXPECT_FALSE(s.Enabled(Create(f.u2)));
  EXPECT_FALSE(s.Enabled(Abort(f.u2)));
  // After u1 returns, u2 becomes eligible.
  s.Apply(RequestCommit(f.u1, kNil));
  s.Apply(Commit(f.u1, kNil));
  EXPECT_TRUE(s.Enabled(Create(f.u2)));
  EXPECT_TRUE(s.Enabled(Abort(f.u2)));
}

TEST(SerialScheduler, AbortOnlyBeforeCreate) {
  TreeFixture f;
  SerialScheduler s(f.type);
  s.Apply(RequestCreate(f.u1));
  EXPECT_TRUE(s.Enabled(Abort(f.u1)));
  s.Apply(Create(f.u1));
  EXPECT_FALSE(s.Enabled(Abort(f.u1)));  // T was created: abort impossible
}

TEST(SerialScheduler, AbortMarksReturned) {
  TreeFixture f;
  SerialScheduler s(f.type);
  s.Apply(RequestCreate(f.u1));
  s.Apply(Abort(f.u1));
  EXPECT_TRUE(s.Aborted(f.u1));
  EXPECT_TRUE(s.Returned(f.u1));
  EXPECT_FALSE(s.Created(f.u1));
  // An aborted transaction can never be created.
  EXPECT_FALSE(s.Enabled(Create(f.u1)));
}

TEST(SerialScheduler, CommitRequiresMatchingValue) {
  TreeFixture f;
  SerialScheduler s(f.type);
  s.Apply(RequestCreate(f.u1));
  s.Apply(Create(f.u1));
  s.Apply(RequestCommit(f.u1, Value{std::int64_t{42}}));
  EXPECT_FALSE(s.Enabled(Commit(f.u1, kNil)));
  EXPECT_TRUE(s.Enabled(Commit(f.u1, Value{std::int64_t{42}})));
}

TEST(SerialScheduler, CommitWaitsForRequestedChildren) {
  TreeFixture f;
  SerialScheduler s(f.type);
  s.Apply(RequestCreate(f.u1));
  s.Apply(Create(f.u1));
  s.Apply(RequestCreate(f.v));
  s.Apply(RequestCommit(f.u1, kNil));
  // v was requested and has not returned.
  EXPECT_FALSE(s.Enabled(Commit(f.u1, kNil)));
  s.Apply(Abort(f.v));
  EXPECT_TRUE(s.Enabled(Commit(f.u1, kNil)));
}

TEST(SerialScheduler, CommitRecordsValue) {
  TreeFixture f;
  SerialScheduler s(f.type);
  s.Apply(RequestCreate(f.u1));
  s.Apply(Create(f.u1));
  s.Apply(RequestCommit(f.u1, Value{std::int64_t{7}}));
  s.Apply(Commit(f.u1, Value{std::int64_t{7}}));
  EXPECT_TRUE(s.Committed(f.u1));
  ASSERT_TRUE(s.CommitValue(f.u1).has_value());
  EXPECT_EQ(*s.CommitValue(f.u1), Value{std::int64_t{7}});
  EXPECT_EQ(s.CommitValue(f.u2), std::nullopt);
}

TEST(SerialScheduler, RootNeverAborts) {
  TreeFixture f;
  SerialScheduler s(f.type);
  EXPECT_FALSE(s.Enabled(Abort(kRootTxn)));
}

// --- whole-system properties over random executions -----------------------

struct RandomSystem {
  SystemType type;
  std::vector<TxnId> txns;

  RandomSystem() {
    txns.push_back(kRootTxn);
    const TxnId u1 = type.AddTransaction(kRootTxn, "U1");
    const TxnId u2 = type.AddTransaction(kRootTxn, "U2");
    const TxnId v1 = type.AddTransaction(u1, "V1");
    const TxnId v2 = type.AddTransaction(u1, "V2");
    txns.insert(txns.end(), {u1, u2, v1, v2});
    const ObjectId x = type.AddObject("x");
    const ObjectId y = type.AddObject("y");
    type.AddReadAccess(v1, x);
    type.AddWriteAccess(v1, x, Value{std::int64_t{1}});
    type.AddReadAccess(v2, y);
    type.AddWriteAccess(u2, y, Value{std::int64_t{2}});
    type.AddReadAccess(u2, x);
  }

  ioa::System Build() const {
    ioa::System sys;
    sys.Emplace<SerialScheduler>(type);
    for (TxnId t : txns) sys.Emplace<RandomTransaction>(type, t);
    sys.Emplace<ReadWriteObject>(type, 0, Value{std::int64_t{0}});
    sys.Emplace<ReadWriteObject>(type, 1, Value{std::int64_t{0}});
    return sys;
  }
};

class SerialScheduleProperty : public ::testing::TestWithParam<int> {};

TEST_P(SerialScheduleProperty, SchedulesAreWellFormed) {
  // Lynch-Merritt: all serial schedules are well-formed. Explore random
  // executions and check the projection property.
  RandomSystem rs;
  ioa::System sys = rs.Build();
  const ioa::ExploreResult r =
      ioa::Explore(sys, static_cast<std::uint64_t>(GetParam()));
  EXPECT_TRUE(r.quiescent);
  std::string msg;
  EXPECT_TRUE(IsWellFormed(rs.type, r.schedule, &msg)) << msg;
}

TEST_P(SerialScheduleProperty, DepthFirstTraversal) {
  // In a serial execution, the set of created-but-not-returned
  // transactions always forms a chain (a path from the root).
  RandomSystem rs;
  ioa::System sys = rs.Build();
  std::vector<TxnId> live;  // stack of created, unreturned transactions
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  ioa::ExploreOptions opts;
  opts.observer = [&](const ioa::Action& a, const ioa::System&) {
    switch (a.kind) {
      case ActionKind::kCreate:
        if (!live.empty()) {
          // New transaction must be a child of the innermost live one.
          EXPECT_EQ(rs.type.Parent(a.txn), live.back());
        } else {
          EXPECT_EQ(a.txn, kRootTxn);
        }
        live.push_back(a.txn);
        break;
      case ActionKind::kCommit:
        ASSERT_FALSE(live.empty());
        EXPECT_EQ(live.back(), a.txn);
        live.pop_back();
        break;
      case ActionKind::kAbort:
        // Aborted transactions were never created, so the stack is
        // untouched; but the abort must not occur strictly inside a live
        // subtree other than its parent's.
        break;
      default:
        break;
    }
  };
  const ioa::ExploreResult r = ioa::Explore(sys, rng, opts);
  EXPECT_TRUE(r.quiescent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialScheduleProperty,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace qcnt::txn
