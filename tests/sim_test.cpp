// Tests for the discrete-event simulator, the network fault model, and the
// simulated quorum store protocol (including Gifford reconfiguration).
#include <gtest/gtest.h>

#include "quorum/strategies.hpp"
#include "sim/store.hpp"

namespace qcnt::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(5.0, [&] { order.push_back(2); });
  sim.At(1.0, [&] { order.push_back(1); });
  sim.At(9.0, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 9.0);
}

TEST(Simulator, SimultaneousEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.At(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.At(10.0, [&] {
    sim.After(5.0, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.At(1.0, [&] { ++fired; });
  sim.At(100.0, [&] { ++fired; });
  sim.Run(50.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

TEST(Simulator, SchedulingInPastRejected) {
  Simulator sim;
  sim.At(10.0, [] {});
  sim.Run();
  EXPECT_ANY_THROW(sim.At(5.0, [] {}));
}

TEST(LatencyModel, SamplesWithinBounds) {
  Rng rng(1);
  const LatencyModel fixed = LatencyModel::Fixed(3.0);
  EXPECT_EQ(fixed.Sample(rng), 3.0);
  const LatencyModel uni = LatencyModel::Uniform(2.0, 4.0);
  for (int i = 0; i < 100; ++i) {
    const Time t = uni.Sample(rng);
    EXPECT_GE(t, 2.0);
    EXPECT_LE(t, 4.0);
  }
  const LatencyModel exp = LatencyModel::Exponential(5.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_GE(exp.Sample(rng), 1.0);
}

TEST(Network, DeliversWithLatency) {
  Simulator sim;
  Network net(sim, 2, LatencyModel::Fixed(7.0), 0.0, 42);
  double arrival = -1.0;
  net.SetHandler(1, [&](NodeId from, const Message& m) {
    EXPECT_EQ(from, 0u);
    EXPECT_EQ(m.value, 99);
    arrival = sim.Now();
  });
  Message m;
  m.value = 99;
  net.Send(0, 1, m);
  sim.Run();
  EXPECT_EQ(arrival, 7.0);
  EXPECT_EQ(net.MessagesDelivered(), 1u);
}

TEST(Network, CrashedNodesNeitherSendNorReceive) {
  Simulator sim;
  Network net(sim, 2, LatencyModel::Fixed(1.0), 0.0, 1);
  int received = 0;
  net.SetHandler(1, [&](NodeId, const Message&) { ++received; });
  net.Crash(1);
  net.Send(0, 1, {});
  sim.Run();
  EXPECT_EQ(received, 0);
  net.Recover(1);
  net.Crash(0);
  net.Send(0, 1, {});
  sim.Run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.MessagesDropped(), 2u);
}

TEST(Network, CrashAtDeliveryTimeDrops) {
  Simulator sim;
  Network net(sim, 2, LatencyModel::Fixed(10.0), 0.0, 1);
  int received = 0;
  net.SetHandler(1, [&](NodeId, const Message&) { ++received; });
  net.Send(0, 1, {});
  sim.At(5.0, [&] { net.Crash(1); });  // crashes while in flight
  sim.Run();
  EXPECT_EQ(received, 0);
}

TEST(Network, PartitionBlocksAcrossCut) {
  Simulator sim;
  Network net(sim, 4, LatencyModel::Fixed(1.0), 0.0, 1);
  int received = 0;
  for (NodeId i = 0; i < 4; ++i) {
    net.SetHandler(i, [&](NodeId, const Message&) { ++received; });
  }
  net.Partition(0b0011);  // {0,1} | {2,3}
  net.Send(0, 1, {});     // same side: delivered
  net.Send(0, 2, {});     // across: dropped
  sim.Run();
  EXPECT_EQ(received, 1);
  net.Heal();
  net.Send(0, 2, {});
  sim.Run();
  EXPECT_EQ(received, 2);
}

TEST(Network, UpMaskReflectsCrashes) {
  Simulator sim;
  Network net(sim, 3, LatencyModel::Fixed(1.0), 0.0, 1);
  EXPECT_EQ(net.UpMask(), 0b111ull);
  net.Crash(1);
  EXPECT_EQ(net.UpMask(), 0b101ull);
}

// --- simulated quorum store -------------------------------------------------

Deployment MakeDeployment(std::size_t replicas, std::size_t clients,
                          std::uint64_t seed = 7,
                          double drop = 0.0) {
  std::vector<quorum::QuorumSystem> configs{
      quorum::MajoritySystem(static_cast<ReplicaId>(replicas))};
  return Deployment(replicas, clients, configs, 0,
                    LatencyModel::Uniform(1.0, 3.0), drop, seed);
}

TEST(QuorumStore, WriteThenRead) {
  Deployment d = MakeDeployment(3, 1);
  OpResult write_result, read_result;
  d.clients[0]->Write(42, [&](const OpResult& r) { write_result = r; });
  d.sim.Run();
  ASSERT_TRUE(write_result.ok);
  EXPECT_GT(write_result.latency, 0.0);
  d.clients[0]->Read([&](const OpResult& r) { read_result = r; });
  d.sim.Run();
  ASSERT_TRUE(read_result.ok);
  EXPECT_EQ(read_result.value, 42);
}

TEST(QuorumStore, SequentialWritesMonotoneVersions) {
  Deployment d = MakeDeployment(5, 1);
  for (std::int64_t v = 1; v <= 5; ++v) {
    OpResult r;
    d.clients[0]->Write(v * 10, [&](const OpResult& res) { r = res; });
    d.sim.Run();
    ASSERT_TRUE(r.ok) << "write " << v;
  }
  OpResult read;
  d.clients[0]->Read([&](const OpResult& r) { read = r; });
  d.sim.Run();
  ASSERT_TRUE(read.ok);
  EXPECT_EQ(read.value, 50);
}

TEST(QuorumStore, ToleratesMinorityCrash) {
  Deployment d = MakeDeployment(5, 1);
  d.net.Crash(3);
  d.net.Crash(4);
  OpResult w, r;
  d.clients[0]->Write(7, [&](const OpResult& res) { w = res; });
  d.sim.Run();
  EXPECT_TRUE(w.ok);
  d.clients[0]->Read([&](const OpResult& res) { r = res; });
  d.sim.Run();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 7);
}

TEST(QuorumStore, FailsWithoutQuorumThenTimesOut) {
  Deployment d = MakeDeployment(5, 1);
  d.net.Crash(2);
  d.net.Crash(3);
  d.net.Crash(4);
  OpResult w;
  d.clients[0]->Write(9, [&](const OpResult& res) { w = res; });
  d.sim.Run();
  EXPECT_FALSE(w.ok);
  EXPECT_GE(w.latency, 1000.0);  // default timeout
}

TEST(QuorumStore, SurvivesMessageDrops) {
  // With retransmission-free broadcast, a read needs only some quorum of
  // responses, so mild drop rates rarely matter for n=5 majority.
  std::size_t ok = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Deployment d = MakeDeployment(5, 1, seed, 0.05);
    OpResult w;
    d.clients[0]->Write(1, [&](const OpResult& res) { w = res; });
    d.sim.Run();
    if (w.ok) ++ok;
  }
  EXPECT_GE(ok, 18u);
}

TEST(QuorumStore, TwoClientsSeeEachOthersWrites) {
  Deployment d = MakeDeployment(3, 2);
  OpResult w, r;
  d.clients[0]->Write(123, [&](const OpResult& res) { w = res; });
  d.sim.Run();
  ASSERT_TRUE(w.ok);
  d.clients[1]->Read([&](const OpResult& res) { r = res; });
  d.sim.Run();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 123);
}

TEST(QuorumStore, TargetedModeUsesFewerMessages) {
  std::vector<quorum::QuorumSystem> configs{quorum::MajoritySystem(7)};
  QuorumStoreClient::Options targeted;
  targeted.targeted = true;
  Deployment broadcast(7, 1, configs, 0, LatencyModel::Fixed(1.0), 0.0, 3);
  Deployment narrow(7, 1, configs, 0, LatencyModel::Fixed(1.0), 0.0, 3,
                    targeted);
  OpResult rb, rt;
  broadcast.clients[0]->Read([&](const OpResult& r) { rb = r; });
  broadcast.sim.Run();
  narrow.clients[0]->Read([&](const OpResult& r) { rt = r; });
  narrow.sim.Run();
  ASSERT_TRUE(rb.ok && rt.ok);
  EXPECT_LT(rt.messages, rb.messages);
}

TEST(QuorumStore, ReconfigurationRestoresWriteAvailability) {
  // E9 scenario: majority(5); crash 2; reconfigure to majority over
  // {0,1,2}; crash another; writes still succeed — without the
  // reconfiguration they could not.
  std::vector<quorum::QuorumSystem> configs{
      quorum::MajoritySystem(5),
      quorum::FromConfiguration(
          "majority-of-012",
          quorum::Configuration({{0, 1}, {0, 2}, {1, 2}},
                                {{0, 1}, {0, 2}, {1, 2}}))};
  Deployment d(5, 1, configs, 0, LatencyModel::Fixed(1.0), 0.0, 9);
  d.net.Crash(3);
  d.net.Crash(4);

  OpResult rc;
  d.clients[0]->Reconfigure(1, [&](const OpResult& r) { rc = r; });
  d.sim.Run();
  ASSERT_TRUE(rc.ok);
  EXPECT_EQ(d.clients[0]->BelievedConfig(), 1u);
  EXPECT_EQ(d.clients[0]->BelievedGeneration(), 1u);

  d.net.Crash(2);
  OpResult w;
  d.clients[0]->Write(55, [&](const OpResult& r) { w = r; });
  d.sim.Run();
  EXPECT_TRUE(w.ok);

  OpResult r;
  d.clients[0]->Read([&](const OpResult& res) { r = res; });
  d.sim.Run();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 55);
}

TEST(QuorumStore, WithoutReconfigurationTheSameCrashesBlockWrites) {
  Deployment d = MakeDeployment(5, 1);
  d.net.Crash(3);
  d.net.Crash(4);
  d.net.Crash(2);
  OpResult w;
  d.clients[0]->Write(55, [&](const OpResult& r) { w = r; });
  d.sim.Run();
  EXPECT_FALSE(w.ok);
}

TEST(QuorumStore, SecondClientAdoptsNewConfiguration) {
  std::vector<quorum::QuorumSystem> configs{
      quorum::MajoritySystem(3),
      quorum::FromConfiguration(
          "primary-0", quorum::Configuration({{0}}, {{0}}))};
  Deployment d(3, 2, configs, 0, LatencyModel::Fixed(1.0), 0.0, 5);
  OpResult rc;
  d.clients[0]->Reconfigure(1, [&](const OpResult& r) { rc = r; });
  d.sim.Run();
  ASSERT_TRUE(rc.ok);
  // Client 1 learns the new configuration from read responses.
  OpResult r;
  d.clients[1]->Read([&](const OpResult& res) { r = res; });
  d.sim.Run();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(d.clients[1]->BelievedConfig(), 1u);
}

}  // namespace
}  // namespace qcnt::sim
