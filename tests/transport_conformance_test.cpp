// Transport conformance: one behavioral suite, run against BOTH
// implementations — the in-process Bus and the TCP transport (a
// multi-instance loopback universe, one TcpTransport per node, shaped
// exactly like the multi-process deployment). Whatever the runtime is
// entitled to assume about its substrate is pinned here: delivery, FIFO
// per link, fail-stop crash semantics (drain pending, no delivery while
// down, recovery restores), and reconnection after a peer restarts.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/tcp_transport.hpp"
#include "runtime/bus.hpp"

namespace qcnt::net {
namespace {

using runtime::Bus;
using runtime::RtMessage;

constexpr std::size_t kNodes = 3;

std::chrono::steady_clock::time_point In(int ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

RtMessage Tagged(std::uint64_t op) {
  RtMessage m;
  m.kind = RtMessage::Kind::kWriteReq;
  m.op = op;
  m.key = "key-" + std::to_string(op);
  m.version = op * 2;
  m.value = static_cast<std::int64_t>(op) - 10;
  return m;
}

/// A universe of kNodes nodes. HostOf(n) is the Transport instance that
/// hosts node n — the instance n sends from, crashes on, and receives
/// through; with the Bus that is one shared instance, with TCP it is
/// node n's own (process-equivalent) instance.
class Universe {
 public:
  virtual ~Universe() = default;
  virtual Transport& HostOf(NodeId node) = 0;
  /// Process-level restart of the node: with TCP the instance is torn
  /// down (connections reset) and rebuilt on a fresh ephemeral port, and
  /// every peer is re-targeted; with the Bus it is crash + recover.
  virtual void Restart(NodeId node) = 0;
  /// Membership growth: add one brand-new node to the running universe
  /// (Bus::AddNode; with TCP a fresh hosting instance whose endpoint is
  /// taught to every founding instance via SetPeerEndpoint under an id
  /// none of them had ever seen). Returns the new node's id.
  virtual NodeId AddNodeAfterStart() = 0;
};

class BusUniverse : public Universe {
 public:
  BusUniverse() : bus_(kNodes) {}
  ~BusUniverse() override { bus_.CloseAll(); }
  Transport& HostOf(NodeId) override { return bus_; }
  void Restart(NodeId node) override {
    bus_.Crash(node);
    bus_.Recover(node);
  }
  NodeId AddNodeAfterStart() override { return bus_.AddNode(); }

 private:
  Bus bus_;
};

class TcpUniverse : public Universe {
 public:
  TcpUniverse() {
    for (NodeId n = 0; n < kNodes; ++n) instances_.push_back(Spawn(n));
    WireAll();
  }
  ~TcpUniverse() override {
    for (auto& t : instances_) {
      if (t) t->CloseAll();
    }
  }

  Transport& HostOf(NodeId node) override { return *instances_[node]; }

  void Restart(NodeId node) override {
    instances_[node].reset();  // closes listener + connections (EOF peers)
    instances_[node] = Spawn(node);
    WireAll();  // new ephemeral port: everyone re-targets, both directions
  }

  NodeId AddNodeAfterStart() override {
    // A brand-new id no founding instance has ever seen: the joining
    // instance knows the full universe size, the founders learn of it
    // only through SetPeerEndpoint (which must grow their logical node
    // count past the construction-time universe).
    const NodeId id = static_cast<NodeId>(instances_.size());
    instances_.push_back(Spawn(id));
    WireAll();
    return id;
  }

 private:
  static std::unique_ptr<TcpTransport> Spawn(NodeId node) {
    TcpTransportOptions o;
    o.universe.resize(
        std::max<std::size_t>(kNodes, node + 1));  // ports 0: own =
                                // ephemeral bind, peers unknown until
                                // WireAll
    return std::make_unique<TcpTransport>(std::move(o), std::vector<NodeId>{node});
  }

  void WireAll() {
    const NodeId n = static_cast<NodeId>(instances_.size());
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        if (i == j) continue;
        instances_[i]->SetPeerEndpoint(j,
                                       instances_[j]->ActualEndpoint(j));
      }
    }
  }

  std::vector<std::unique_ptr<TcpTransport>> instances_;
};

class TransportConformance : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "bus") {
      universe_ = std::make_unique<BusUniverse>();
    } else {
      universe_ = std::make_unique<TcpUniverse>();
    }
  }

  Transport& Host(NodeId n) { return universe_->HostOf(n); }

  /// Send and require eventual delivery (TCP connects lazily; the first
  /// frame rides the connect handshake).
  Envelope MustDeliver(NodeId from, NodeId to, RtMessage m) {
    EXPECT_TRUE(Host(from).Send(from, to, std::move(m)));
    auto e = Host(to).MailboxOf(to).Pop(In(5000));
    EXPECT_TRUE(e.has_value()) << "no delivery " << from << "->" << to;
    return e.value_or(Envelope{});
  }

  std::unique_ptr<Universe> universe_;
};

TEST_P(TransportConformance, DeliversAcrossNodesWithFieldsIntact) {
  Envelope e = MustDeliver(0, 1, Tagged(7));
  EXPECT_EQ(e.from, 0u);
  EXPECT_EQ(e.msg.op, 7u);
  EXPECT_EQ(e.msg.key, "key-7");
  EXPECT_EQ(e.msg.version, 14u);
  EXPECT_EQ(e.msg.value, -3);
}

TEST_P(TransportConformance, SelfSendDelivers) {
  Envelope e = MustDeliver(2, 2, Tagged(1));
  EXPECT_EQ(e.from, 2u);
  EXPECT_EQ(e.msg.op, 1u);
}

TEST_P(TransportConformance, FifoPerLink) {
  constexpr std::uint64_t kCount = 200;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(Host(0).Send(0, 1, Tagged(i)));
  }
  for (std::uint64_t i = 0; i < kCount; ++i) {
    auto e = Host(1).MailboxOf(1).Pop(In(5000));
    ASSERT_TRUE(e.has_value()) << "lost message " << i;
    EXPECT_EQ(e->msg.op, i) << "reordered at " << i;
  }
}

TEST_P(TransportConformance, BatchMessagesSurviveTransit) {
  RtMessage m;
  m.kind = RtMessage::Kind::kBatchWriteReq;
  m.op = 99;
  for (std::uint64_t i = 0; i < 32; ++i) {
    m.batch.push_back({i, "batch-key-" + std::to_string(i), i + 1,
                       static_cast<std::int64_t>(i * 1000)});
  }
  Envelope e = MustDeliver(1, 0, std::move(m));
  ASSERT_EQ(e.msg.batch.size(), 32u);
  EXPECT_EQ(e.msg.batch[31].key, "batch-key-31");
  EXPECT_EQ(e.msg.batch[31].value, 31000);
}

TEST_P(TransportConformance, CrashDrainsPendingMessages) {
  // Queue deliveries into node 1's mailbox without popping them...
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(Host(0).Send(0, 1, Tagged(i)));
  }
  Mailbox& box = Host(1).MailboxOf(1);
  const auto deadline = In(5000);
  while (box.Size() < 5 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(box.Size(), 5u);
  // ...then fail-stop: the backlog dies with the node.
  Host(1).Crash(1);
  EXPECT_EQ(box.Size(), 0u);
  EXPECT_FALSE(box.Pop(In(50)).has_value());
}

TEST_P(TransportConformance, NoDeliveryWhileCrashedAndRecoverRestores) {
  // Warm the link so the TCP connection is established before the crash
  // (this test is about delivery policy, not connection setup).
  MustDeliver(0, 1, Tagged(1));

  Host(1).Crash(1);
  EXPECT_FALSE(Host(1).IsUp(1));
  ASSERT_TRUE(Host(0).Send(0, 1, Tagged(2)) || true);  // may drop at send
  // Give the frame ample time to traverse loopback and be dropped at
  // dispatch (the up-check happens at delivery time).
  EXPECT_FALSE(Host(1).MailboxOf(1).Pop(In(200)).has_value());

  Host(1).Recover(1);
  EXPECT_TRUE(Host(1).IsUp(1));
  Envelope e = MustDeliver(0, 1, Tagged(3));
  // The marker, not the message sent while down.
  EXPECT_EQ(e.msg.op, 3u);
}

TEST_P(TransportConformance, SendFromCrashedNodeIsDropped) {
  MustDeliver(2, 0, Tagged(1));  // link warm, node 2 known good
  Host(2).Crash(2);
  EXPECT_FALSE(Host(2).Send(2, 0, Tagged(2)));
  EXPECT_FALSE(Host(0).MailboxOf(0).Pop(In(100)).has_value());
  Host(2).Recover(2);
}

TEST_P(TransportConformance, CrashHookOwnsBacklogAndRecoverHookRuns) {
  // Contract: with a crash hook installed, Crash marks the node down and
  // then hands the *intact* backlog to the hook — the hook decides the
  // drain cut (a replica server pushes a marker through it). The mailbox
  // must be empty by the time Crash returns only because the hook made it
  // so. Recover runs the recover hook after the node is back up.
  std::atomic<int> ran{0};
  std::atomic<int> recovered{0};
  std::atomic<std::size_t> size_at_hook{0};
  std::atomic<bool> down_at_hook{false};
  Mailbox& box = Host(1).MailboxOf(1);
  Host(1).SetCrashHook(1, [&] {
    down_at_hook.store(!Host(1).IsUp(1));
    size_at_hook.store(box.Size());
    box.Clear();  // the hook owns (and here discards) the backlog
    ran.fetch_add(1);
  });
  Host(1).SetRecoverHook(1, [&] {
    if (Host(1).IsUp(1)) recovered.fetch_add(1);
  });
  MustDeliver(0, 1, Tagged(1));
  // Refill so there is a backlog for the hook to observe, then crash.
  ASSERT_TRUE(Host(0).Send(0, 1, Tagged(2)));
  const auto deadline = In(5000);
  while (box.Size() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  Host(1).Crash(1);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_TRUE(down_at_hook.load()) << "hook must run after up_ flips";
  EXPECT_EQ(size_at_hook.load(), 1u)
      << "hook must see the backlog intact (it owns the drain)";
  EXPECT_EQ(box.Size(), 0u);
  Host(1).Recover(1);
  EXPECT_EQ(recovered.load(), 1) << "recover hook runs with the node up";
  Host(1).SetCrashHook(1, nullptr);
  Host(1).SetRecoverHook(1, nullptr);
}

TEST_P(TransportConformance, ReconnectsAfterPeerRestart) {
  MustDeliver(0, 1, Tagged(1));  // established connection 0 -> 1
  universe_->Restart(1);
  // The transport under node 0 must notice the dead connection and
  // re-establish toward the restarted peer (new port, with TCP).
  Envelope e = MustDeliver(0, 1, Tagged(2));
  EXPECT_EQ(e.msg.op, 2u);
  // And traffic initiated by the restarted node works too.
  Envelope back = MustDeliver(1, 0, Tagged(3));
  EXPECT_EQ(back.msg.op, 3u);
}

TEST_P(TransportConformance, SurvivesTwoRestartsOfTheSamePeer) {
  MustDeliver(0, 2, Tagged(1));
  universe_->Restart(2);
  MustDeliver(0, 2, Tagged(2));
  universe_->Restart(2);
  Envelope e = MustDeliver(0, 2, Tagged(3));
  EXPECT_EQ(e.msg.op, 3u);
}

TEST_P(TransportConformance, CountersAdvance) {
  Transport& t = Host(0);
  const std::uint64_t before = t.MessagesSent();
  MustDeliver(0, 1, Tagged(1));
  EXPECT_GT(t.MessagesSent(), before);
  EXPECT_EQ(t.NodeCount(), kNodes);
  EXPECT_STRNE(t.Name(), "");
}

// --- Membership growth: a brand-new peer id appears after start. With
// TCP this exercises SetPeerEndpoint for an id beyond the construction
// universe (previously untested); with the Bus, AddNode into the
// pre-allocated headroom.

TEST_P(TransportConformance, AddedNodeDeliversBothDirections) {
  const NodeId added = universe_->AddNodeAfterStart();
  EXPECT_EQ(added, kNodes);
  EXPECT_EQ(Host(0).NodeCount(), kNodes + 1)
      << "founders must count the joined node";
  Envelope e = MustDeliver(0, added, Tagged(11));
  EXPECT_EQ(e.from, 0u);
  EXPECT_EQ(e.msg.op, 11u);
  Envelope back = MustDeliver(added, 1, Tagged(12));
  EXPECT_EQ(back.from, added);
  EXPECT_EQ(back.msg.op, 12u);
}

TEST_P(TransportConformance, AddedNodeLinkIsFifo) {
  const NodeId added = universe_->AddNodeAfterStart();
  constexpr std::uint64_t kCount = 100;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(Host(2).Send(2, added, Tagged(i)));
  }
  for (std::uint64_t i = 0; i < kCount; ++i) {
    auto e = Host(added).MailboxOf(added).Pop(In(5000));
    ASSERT_TRUE(e.has_value()) << "lost message " << i;
    EXPECT_EQ(e->msg.op, i) << "reordered at " << i;
  }
}

TEST_P(TransportConformance, AddedNodeObeysCrashSemantics) {
  const NodeId added = universe_->AddNodeAfterStart();
  MustDeliver(1, added, Tagged(1));  // link warm
  Host(added).Crash(added);
  EXPECT_FALSE(Host(added).IsUp(added));
  Host(1).Send(1, added, Tagged(2));  // may drop at send or at dispatch
  EXPECT_FALSE(Host(added).MailboxOf(added).Pop(In(200)).has_value());
  Host(added).Recover(added);
  Envelope e = MustDeliver(1, added, Tagged(3));
  EXPECT_EQ(e.msg.op, 3u);
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportConformance,
                         ::testing::Values("bus", "tcp"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace qcnt::net
