// Mailbox hot-path contract: waiter-gated notify (no lost wakeups against
// concurrent TryPopAll draining), move-only Push/PushAll, and the
// handoff/wakeup counters the sharding bench records.
#include "net/mailbox.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace qcnt::net {
namespace {

using namespace std::chrono_literals;
using runtime::RtMessage;

Envelope Tagged(std::uint64_t op) {
  RtMessage m;
  m.kind = RtMessage::Kind::kReadReq;
  m.op = op;
  return Envelope{0, std::move(m)};
}

TEST(Mailbox, PushAllMovesBurstAndClearsCallerBuffer) {
  Mailbox box;
  std::vector<Envelope> burst;
  burst.reserve(8);
  for (std::uint64_t i = 1; i <= 3; ++i) burst.push_back(Tagged(i));
  const std::size_t cap = burst.capacity();
  box.PushAll(burst);
  EXPECT_TRUE(burst.empty()) << "caller's buffer must be reusable";
  EXPECT_GE(burst.capacity(), cap) << "clear, not shrink: capacity reused";
  EXPECT_EQ(box.Size(), 3u);
  EXPECT_EQ(box.Handoffs(), 1u) << "one burst = one handoff";
  std::deque<Envelope> got = box.TryPopAll();
  ASSERT_EQ(got.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got[i].msg.op, i + 1) << "FIFO within the burst";
  }
}

TEST(Mailbox, PushAllOfEmptyBurstIsANoOp) {
  Mailbox box;
  std::vector<Envelope> empty;
  box.PushAll(empty);
  EXPECT_EQ(box.Handoffs(), 0u);
  EXPECT_EQ(box.Size(), 0u);
}

TEST(Mailbox, CountersSeparateHandoffsFromWakeups) {
  Mailbox box;
  // No consumer is parked, so no push may issue a notify: handoffs count
  // deterministically, wakeups stay zero.
  box.Push(Tagged(1));
  box.Push(Tagged(2));
  std::vector<Envelope> burst;
  burst.push_back(Tagged(3));
  box.PushAll(burst);
  EXPECT_EQ(box.Handoffs(), 3u);
  EXPECT_EQ(box.Wakeups(), 0u)
      << "producers must not notify without a registered waiter";
  EXPECT_EQ(box.TryPopAll().size(), 3u);

  // Now park a consumer, then push: exactly that push must notify.
  std::thread consumer([&] {
    std::deque<Envelope> got = box.PopAll();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got.front().msg.op, 4u);
  });
  // Let the consumer pass the spin window and register as a waiter.
  std::this_thread::sleep_for(50ms);
  box.Push(Tagged(4));
  consumer.join();
  EXPECT_EQ(box.Handoffs(), 4u);
  EXPECT_EQ(box.Wakeups(), 1u);
}

// Regression for the lost-wakeup hazard the waiter gate must not
// introduce: a second thread draining via TryPopAll steals the queue
// between a producer's push and a blocked consumer's wakeup, or empties
// it just as the consumer decides to sleep. If the producer's
// NeedNotify() read could miss a consumer that is about to park, the
// blocking PopAll below would hang forever (the ctest timeout catches
// it); the mutex hand-off in Push/PopAll makes that impossible.
TEST(Mailbox, NoLostWakeupAgainstConcurrentTryPopAll) {
  Mailbox box;
  constexpr std::uint64_t kMessages = 20000;
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> stop_thief{false};

  std::thread consumer([&] {
    while (consumed.load(std::memory_order_relaxed) < kMessages) {
      std::deque<Envelope> got = box.PopAll();
      if (got.empty()) return;  // closed: producer is done and queue drained
      consumed.fetch_add(got.size(), std::memory_order_relaxed);
    }
  });
  // The thief never blocks; whatever it steals it counts too.
  std::thread thief([&] {
    while (!stop_thief.load(std::memory_order_relaxed)) {
      consumed.fetch_add(box.TryPopAll().size(), std::memory_order_relaxed);
    }
  });
  for (std::uint64_t i = 0; i < kMessages; ++i) box.Push(Tagged(i));

  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (consumed.load(std::memory_order_relaxed) < kMessages &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(consumed.load(), kMessages) << "a wakeup was lost";
  stop_thief.store(true);
  thief.join();
  box.Close();  // releases the consumer if it is parked on an empty queue
  consumer.join();
}

TEST(Mailbox, CloseReleasesParkedPopAll) {
  Mailbox box;
  std::thread consumer([&] { EXPECT_TRUE(box.PopAll().empty()); });
  std::this_thread::sleep_for(20ms);
  box.Close();
  consumer.join();
}

}  // namespace
}  // namespace qcnt::net
