// Mechanized Lemmas 6, 7 and 8: checked after every step of randomized
// executions of system B across system shapes, strategies and abort rates.
#include <gtest/gtest.h>

#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "replication/harness.hpp"
#include "replication/invariants.hpp"
#include "replication/logical.hpp"
#include "replication/theorem10.hpp"
#include "txn/scripted_transaction.hpp"

namespace qcnt::replication {
namespace {

TEST(Lemma6, AccessSequenceAlternates) {
  // access(x, β) begins with a CREATE and alternates REQUEST-COMMIT /
  // CREATE with matching TMs.
  Rng rng(404);
  const Harness h = MakeRandomHarness(rng);
  ioa::System b = BuildB(h.Spec(), h.Users());
  const ioa::ExploreResult r = ioa::Explore(b, rng, {});
  ASSERT_TRUE(r.quiescent);
  for (const ItemInfo& info : h.Spec().Items()) {
    const ioa::Schedule acc = AccessSequence(h.Spec(), info.id, r.schedule);
    for (std::size_t i = 0; i < acc.size(); ++i) {
      if (i % 2 == 0) {
        EXPECT_EQ(acc[i].kind, ioa::ActionKind::kCreate);
      } else {
        EXPECT_EQ(acc[i].kind, ioa::ActionKind::kRequestCommit);
        EXPECT_EQ(acc[i].txn, acc[i - 1].txn);
      }
    }
  }
}

TEST(LogicalState, InitialAndAfterWrites) {
  ReplicatedSpec spec;
  const ItemId x =
      spec.AddItem("x", 2, quorum::Majority(2), Plain{std::int64_t{100}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId w = spec.AddWriteTm(u, x, Plain{std::int64_t{200}});
  spec.Finalize();
  // Empty schedule: initial value; after the write-TM request-commits: 200.
  EXPECT_EQ(LogicalState(spec, x, {}), Plain{std::int64_t{100}});
  ioa::Schedule beta{ioa::Create(w), ioa::RequestCommit(w, kNil)};
  EXPECT_EQ(LogicalState(spec, x, beta), Plain{std::int64_t{200}});
  EXPECT_EQ(CurrentVersion(spec, x, {}), 0u);
}

class LemmaSweep : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(LemmaSweep, Lemmas7And8HoldAtEveryStep) {
  const auto [seed_int, abort_weight] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed_int) * 7777777 + 3);
  const Harness h = MakeRandomHarness(rng);

  ioa::System b = BuildB(h.Spec(), h.Users());
  ioa::Schedule so_far;
  InvariantReport first_failure;
  ioa::ExploreOptions opts;
  opts.weight = AbortWeight(abort_weight);
  opts.observer = [&](const ioa::Action& a, const ioa::System& sys) {
    so_far.push_back(a);
    if (!first_failure.ok) return;
    const InvariantReport rep = CheckLemmas(h.Spec(), sys, so_far);
    if (!rep.ok) first_failure = rep;
  };
  const ioa::ExploreResult r = ioa::Explore(b, rng, opts);
  ASSERT_TRUE(r.quiescent);
  EXPECT_TRUE(first_failure.ok)
      << "seed=" << seed_int << " abort=" << abort_weight << ": "
      << first_failure.message;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, LemmaSweep,
    ::testing::Combine(::testing::Range(0, 25),
                       ::testing::Values(0.0, 0.5)));

TEST(Lemma8, ReadTmReturnsLogicalStateDirected) {
  // Interleave two items and several TMs; every read-TM request-commit must
  // carry the logical state at that point.
  ReplicatedSpec spec;
  const ItemId x =
      spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
  const ItemId y = spec.AddItem("y", 2, quorum::ReadOneWriteAll(2),
                                Plain{std::int64_t{50}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  std::vector<TxnId> script;
  script.push_back(spec.AddWriteTm(u, x, Plain{std::int64_t{1}}));
  script.push_back(spec.AddReadTm(u, x));
  script.push_back(spec.AddReadTm(u, y));
  script.push_back(spec.AddWriteTm(u, y, Plain{std::int64_t{51}}));
  script.push_back(spec.AddWriteTm(u, x, Plain{std::int64_t{2}}));
  script.push_back(spec.AddReadTm(u, x));
  script.push_back(spec.AddReadTm(u, y));
  spec.Finalize();

  UserAutomataFactory users = [&](ioa::System& s) {
    s.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                        std::vector<TxnId>{u});
    s.Emplace<txn::ScriptedTransaction>(spec.Type(), u, script);
  };
  ioa::System b = BuildB(spec, users);
  Rng rng(31337);
  ioa::ExploreOptions opts;
  opts.weight = AbortWeight(0.0);
  const ioa::ExploreResult r = ioa::Explore(b, rng, opts);
  ASSERT_TRUE(r.quiescent);

  // Expected values returned by the four read-TMs in script order.
  const std::vector<std::pair<TxnId, std::int64_t>> expected{
      {script[1], 1}, {script[2], 50}, {script[5], 2}, {script[6], 51}};
  for (const auto& [tm, value] : expected) {
    bool found = false;
    for (const ioa::Action& a : r.schedule) {
      if (a.kind == ioa::ActionKind::kRequestCommit && a.txn == tm) {
        EXPECT_EQ(a.value, Value{value}) << "tm " << tm;
        found = true;
      }
    }
    EXPECT_TRUE(found) << "tm " << tm << " never request-committed";
  }
}

}  // namespace
}  // namespace qcnt::replication
