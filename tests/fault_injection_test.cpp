// Fault-injection tests: the correctness checkers must not be vacuous.
//
// Two families:
//  1. Break the algorithm's key hypothesis — quorum intersection — via
//     AddItemUnchecked and confirm that Lemma 8 / Theorem 10 violations
//     really occur and are caught.
//  2. Feed hand-corrupted schedules to the checkers and confirm detection.
#include <gtest/gtest.h>

#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "replication/harness.hpp"
#include "replication/invariants.hpp"
#include "replication/logical.hpp"
#include "replication/theorem10.hpp"
#include "txn/scripted_transaction.hpp"

namespace qcnt::replication {
namespace {

/// Disjoint read/write quorums over 2 replicas: reads go to replica 0,
/// writes to replica 1 — the illegal configuration par excellence.
quorum::Configuration DisjointConfig() {
  return quorum::Configuration({{0}}, {{1}});
}

struct BrokenFixture {
  ReplicatedSpec spec;
  ItemId x;
  TxnId u, wtm, rtm;
  UserAutomataFactory users;

  /// The paper's TMs may touch more DMs than a quorum, which can mask the
  /// broken configuration by luck; this weight confines the read-TM to its
  /// (non-intersecting) read quorum {0} and the write-TM's installs to its
  /// write quorum {1} — the efficient behavior a real implementation would
  /// use ("one would want to limit the number of accesses invoked").
  std::function<double(const ioa::Action&)> QuorumOnlyWeight() const {
    const ReplicatedSpec* s = &spec;
    const TxnId r = rtm, w = wtm;
    return [s, r, w](const ioa::Action& a) {
      if (a.kind == ioa::ActionKind::kAbort) return 0.0;
      if (a.kind == ioa::ActionKind::kRequestCreate &&
          s->Type().IsAccess(a.txn)) {
        const TxnId parent = s->Type().Parent(a.txn);
        const ReplicaId replica =
            s->ReplicaOf(s->Type().ObjectOf(a.txn));
        if (parent == r && replica != 0) return 0.0;
        if (parent == w && replica != 1 &&
            s->Type().KindOf(a.txn) == txn::AccessKind::kWrite) {
          return 0.0;
        }
      }
      return 1.0;
    };
  }

  BrokenFixture() {
    x = spec.AddItemUnchecked("x", 2, DisjointConfig(),
                              Plain{std::int64_t{0}});
    u = spec.AddTransaction(kRootTxn, "U");
    wtm = spec.AddWriteTm(u, x, Plain{std::int64_t{9}});
    rtm = spec.AddReadTm(u, x);
    spec.Finalize();
    const ReplicatedSpec* s = &spec;
    const TxnId cu = u, cw = wtm, cr = rtm;
    users = [s, cu, cw, cr](ioa::System& sys) {
      sys.Emplace<txn::ScriptedTransaction>(s->Type(), kRootTxn,
                                            std::vector<TxnId>{cu});
      sys.Emplace<txn::ScriptedTransaction>(s->Type(), cu,
                                            std::vector<TxnId>{cw, cr});
    };
  }
};

TEST(FaultInjection, AddItemRejectsIllegalConfigByDefault) {
  ReplicatedSpec spec;
  EXPECT_ANY_THROW(spec.AddItem("x", 2, DisjointConfig(), Plain{}));
  EXPECT_NO_THROW(spec.AddItemUnchecked("x", 2, DisjointConfig(), Plain{}));
}

TEST(FaultInjection, DisjointQuorumsBreakLemma8AndAreDetected) {
  // Without read/write intersection the read-TM reads replica 0, which the
  // write-quorum {1} never touched: the read returns the initial value
  // instead of the written 9. The Lemma-8 checker must flag it.
  BrokenFixture f;
  std::size_t violations = 0, runs = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    ioa::System b = BuildB(f.spec, f.users);
    ioa::Schedule so_far;
    bool lemma_ok = true;
    Rng rng(seed);
    ioa::ExploreOptions opts;
    opts.weight = f.QuorumOnlyWeight();
    opts.observer = [&](const ioa::Action& a, const ioa::System& sys) {
      so_far.push_back(a);
      if (!lemma_ok) return;
      lemma_ok = CheckLemmas(f.spec, sys, so_far).ok;
    };
    const ioa::ExploreResult r = ioa::Explore(b, rng, opts);
    ASSERT_TRUE(r.quiescent);
    ++runs;
    if (!lemma_ok) ++violations;
  }
  // Every abort-free run completes the write then the stale read.
  EXPECT_EQ(violations, runs);
}

TEST(FaultInjection, DisjointQuorumsBreakTheorem10AndAreDetected) {
  BrokenFixture f;
  ioa::System b = BuildB(f.spec, f.users);
  Rng rng(3);
  ioa::ExploreOptions opts;
  opts.weight = f.QuorumOnlyWeight();
  const ioa::ExploreResult r = ioa::Explore(b, rng, opts);
  ASSERT_TRUE(r.quiescent);
  // The stale read is a step the one-copy system A cannot take.
  const Theorem10Result t10 = CheckTheorem10(f.spec, f.users, r.schedule);
  EXPECT_FALSE(t10.ok);
  EXPECT_NE(t10.message.find("not a schedule of A"), std::string::npos);
}

TEST(FaultInjection, WriteWriteIntersectionAloneIsNotEnough) {
  // Reads {0} / writes {{0},{1}}: every write quorum intersects... reads?
  // {0} ∩ {1} = ∅, so the configuration is illegal even though write
  // quorums pairwise intersect read quorum {0} only half the time. A write
  // landing on replica 1 is invisible to the reader.
  ReplicatedSpec spec;
  const ItemId x = spec.AddItemUnchecked(
      "x", 2, quorum::Configuration({{0}}, {{0}, {1}}),
      Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId w = spec.AddWriteTm(u, x, Plain{std::int64_t{5}});
  const TxnId r = spec.AddReadTm(u, x);
  spec.Finalize();
  UserAutomataFactory users = [&](ioa::System& sys) {
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                          std::vector<TxnId>{u});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u,
                                          std::vector<TxnId>{w, r});
  };
  // Drive the adversarial choice: the write-TM uses write quorum {1} only,
  // the read-TM consults only its read quorum {0}.
  auto adversarial = [&spec, w, r](const ioa::Action& a) {
    if (a.kind == ioa::ActionKind::kAbort) return 0.0;
    if (a.kind == ioa::ActionKind::kRequestCreate &&
        spec.Type().IsAccess(a.txn)) {
      const TxnId parent = spec.Type().Parent(a.txn);
      const ReplicaId replica =
          spec.ReplicaOf(spec.Type().ObjectOf(a.txn));
      if (parent == r && replica != 0) return 0.0;
      if (parent == w && replica == 0 &&
          spec.Type().KindOf(a.txn) == txn::AccessKind::kWrite) {
        return 0.0;
      }
    }
    return 1.0;
  };
  bool any_violation = false;
  for (std::uint64_t seed = 0; seed < 40 && !any_violation; ++seed) {
    ioa::System b = BuildB(spec, users);
    Rng rng(seed);
    ioa::ExploreOptions opts;
    opts.weight = adversarial;
    const ioa::ExploreResult res = ioa::Explore(b, rng, opts);
    if (!res.quiescent) continue;
    if (!CheckTheorem10(spec, users, res.schedule).ok) any_violation = true;
  }
  EXPECT_TRUE(any_violation);
}

TEST(FaultInjection, CorruptedReadValueDetectedByLemmaChecker) {
  // Take a healthy run, then corrupt the read-TM's returned value in the
  // schedule; Lemma 8 part 2 must flag the forgery.
  ReplicatedSpec spec;
  const ItemId x =
      spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId w = spec.AddWriteTm(u, x, Plain{std::int64_t{7}});
  const TxnId r = spec.AddReadTm(u, x);
  spec.Finalize();
  UserAutomataFactory users = [&](ioa::System& sys) {
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                          std::vector<TxnId>{u});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u,
                                          std::vector<TxnId>{w, r});
  };
  ioa::System b = BuildB(spec, users);
  Rng rng(5);
  ioa::ExploreOptions opts;
  opts.weight = AbortWeight(0.0);
  const ioa::ExploreResult res = ioa::Explore(b, rng, opts);
  ASSERT_TRUE(res.quiescent);

  ioa::Schedule corrupted;
  bool truncated_at_forgery = false;
  for (const ioa::Action& a : res.schedule) {
    if (a.kind == ioa::ActionKind::kRequestCommit && a.txn == r) {
      corrupted.push_back(
          ioa::RequestCommit(r, Value{std::int64_t{12345}}));
      truncated_at_forgery = true;
      break;
    }
    corrupted.push_back(a);
  }
  ASSERT_TRUE(truncated_at_forgery);
  // Rebuild the live system state for the corrupted prefix (the DM states
  // depend only on replica-access actions, which we kept).
  ioa::System b2 = BuildB(spec, users);
  for (const ioa::Action& a : corrupted) b2.Apply(a);
  EXPECT_FALSE(CheckLemmas(spec, b2, corrupted).ok);
}

TEST(FaultInjection, CorruptedLogicalStateDetectedByTheoremChecker) {
  // Replace a write-TM's value in the write_values map? Not possible — so
  // instead corrupt the *schedule*: drop the write-TM's REQUEST-COMMIT and
  // keep the read that returns its value. The replayed system A then sees
  // a read of a value never written.
  ReplicatedSpec spec;
  const ItemId x =
      spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId w = spec.AddWriteTm(u, x, Plain{std::int64_t{7}});
  const TxnId r = spec.AddReadTm(u, x);
  spec.Finalize();
  UserAutomataFactory users = [&](ioa::System& sys) {
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                          std::vector<TxnId>{u});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u,
                                          std::vector<TxnId>{w, r});
  };
  ioa::System b = BuildB(spec, users);
  Rng rng(5);
  ioa::ExploreOptions opts;
  opts.weight = AbortWeight(0.0);
  const ioa::ExploreResult res = ioa::Explore(b, rng, opts);
  ASSERT_TRUE(res.quiescent);

  ioa::Schedule corrupted;
  for (const ioa::Action& a : res.schedule) {
    if (a.txn == w && (a.kind == ioa::ActionKind::kRequestCommit ||
                       a.kind == ioa::ActionKind::kCommit)) {
      continue;  // erase the logical write's completion
    }
    corrupted.push_back(a);
  }
  EXPECT_FALSE(CheckTheorem10(spec, users, corrupted).ok);
}

}  // namespace
}  // namespace qcnt::replication
