// Tests for ReplicatedSpec: declaration rules, access materialization,
// classification queries, and the structure of the built systems.
#include <gtest/gtest.h>

#include "quorum/strategies.hpp"
#include "replication/spec.hpp"

namespace qcnt::replication {
namespace {

TEST(ReplicatedSpec, AddItemCreatesDmObjects) {
  ReplicatedSpec spec;
  const ItemId x = spec.AddItem("x", 3, quorum::Majority(3),
                                Plain{std::int64_t{0}});
  const ItemInfo& info = spec.Item(x);
  EXPECT_EQ(info.dm_objects.size(), 3u);
  for (ReplicaId r = 0; r < 3; ++r) {
    EXPECT_EQ(spec.ReplicaOf(info.dm_objects[r]), r);
    EXPECT_EQ(spec.ItemOfDm(info.dm_objects[r]), x);
  }
}

TEST(ReplicatedSpec, RejectsIllegalConfiguration) {
  ReplicatedSpec spec;
  EXPECT_ANY_THROW(spec.AddItem(
      "x", 3, quorum::Configuration({{0}}, {{1}}), Plain{}));
}

TEST(ReplicatedSpec, RejectsConfigBeyondReplicaCount) {
  ReplicatedSpec spec;
  EXPECT_ANY_THROW(
      spec.AddItem("x", 2, quorum::Majority(3), Plain{}));
}

TEST(ReplicatedSpec, TmsMayNotNest) {
  ReplicatedSpec spec;
  const ItemId x = spec.AddItem("x", 2, quorum::ReadOneWriteAll(2), Plain{});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId tm = spec.AddReadTm(u, x);
  EXPECT_ANY_THROW(spec.AddReadTm(tm, x));
  EXPECT_ANY_THROW(spec.AddTransaction(tm, "bad"));
}

TEST(ReplicatedSpec, FinalizeMaterializesReadTmAccesses) {
  ReplicatedSpec spec;
  const ItemId x = spec.AddItem("x", 3, quorum::Majority(3), Plain{});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId tm = spec.AddReadTm(u, x);
  spec.Finalize(/*read_attempts=*/2);
  // 3 replicas x 2 attempts read accesses under the read-TM.
  EXPECT_EQ(spec.Type().Children(tm).size(), 6u);
  for (TxnId acc : spec.Type().Children(tm)) {
    EXPECT_TRUE(spec.IsReplicaAccess(acc));
    EXPECT_EQ(spec.Type().KindOf(acc), txn::AccessKind::kRead);
  }
}

TEST(ReplicatedSpec, FinalizeMaterializesWriteVersions) {
  ReplicatedSpec spec;
  const ItemId x = spec.AddItem("x", 2, quorum::Majority(2), Plain{});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId tm1 = spec.AddWriteTm(u, x, Plain{std::int64_t{1}});
  spec.AddWriteTm(u, x, Plain{std::int64_t{2}});
  spec.Finalize(1, 1);
  // Each write-TM: 2 read accesses + 2 replicas * 2 possible versions.
  EXPECT_EQ(spec.Type().Children(tm1).size(), 2u + 4u);
  std::size_t writes = 0;
  for (TxnId acc : spec.Type().Children(tm1)) {
    if (spec.Type().KindOf(acc) == txn::AccessKind::kWrite) {
      ++writes;
      const auto& data = std::get<Versioned>(spec.Type().DataOf(acc));
      EXPECT_GE(data.version, 1u);
      EXPECT_LE(data.version, 2u);
      EXPECT_EQ(data.value, Plain{std::int64_t{1}});
    }
  }
  EXPECT_EQ(writes, 4u);
}

TEST(ReplicatedSpec, ClassificationQueries) {
  ReplicatedSpec spec;
  const ItemId x = spec.AddItem("x", 2, quorum::ReadOneWriteAll(2), Plain{});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId tm = spec.AddReadTm(u, x);
  const ObjectId p = spec.AddPlainObject("p", Plain{std::int64_t{0}});
  const TxnId pa = spec.AddPlainRead(u, p);
  spec.Finalize();

  EXPECT_TRUE(spec.IsUserTransaction(kRootTxn));
  EXPECT_TRUE(spec.IsUserTransaction(u));
  EXPECT_FALSE(spec.IsUserTransaction(tm));
  EXPECT_EQ(spec.TmItem(tm), x);
  EXPECT_EQ(spec.TmItem(u), kNoItem);
  EXPECT_FALSE(spec.IsReplicaAccess(pa));
  EXPECT_FALSE(spec.IsUserTransaction(pa));
  for (TxnId acc : spec.Type().Children(tm)) {
    EXPECT_TRUE(spec.IsReplicaAccess(acc));
  }
}

TEST(ReplicatedSpec, PlainAccessesMayNotTargetDms) {
  ReplicatedSpec spec;
  const ItemId x = spec.AddItem("x", 2, quorum::ReadOneWriteAll(2), Plain{});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const ObjectId dm = spec.Item(x).dm_objects[0];
  EXPECT_ANY_THROW(spec.AddPlainRead(u, dm));
  EXPECT_ANY_THROW(spec.AddPlainWrite(u, dm, Plain{std::int64_t{1}}));
}

TEST(ReplicatedSpec, BuildSystemsComposeExpectedComponents) {
  ReplicatedSpec spec;
  spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  spec.AddReadTm(u, 0);
  spec.AddWriteTm(u, 0, Plain{std::int64_t{1}});
  spec.AddPlainObject("p", Plain{});
  spec.Finalize();

  // B: scheduler + 3 DMs + 2 TMs + 1 plain object = 7 components.
  EXPECT_EQ(spec.BuildSystemB().ComponentCount(), 7u);
  // A: scheduler + 1 logical object + 1 plain object = 3 components.
  EXPECT_EQ(spec.BuildSystemA().ComponentCount(), 3u);
}

TEST(ReplicatedSpec, BuildBeforeFinalizeThrows) {
  ReplicatedSpec spec;
  spec.AddItem("x", 2, quorum::ReadOneWriteAll(2), Plain{});
  EXPECT_ANY_THROW(spec.BuildSystemB());
  EXPECT_ANY_THROW(spec.BuildSystemA());
}

}  // namespace
}  // namespace qcnt::replication
