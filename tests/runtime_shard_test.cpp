// Tests for sharded replica execution: key→shard routing stability, the
// sequential-vs-sharded equivalence property (identical per-operation
// results, final images, and per-item version sequences with shards ∈
// {1, 4}), atomic fail-stop of all shards under Crash hammered mid-batch,
// the all-shard config-write barrier, and the per-shard counters surfaced
// through Peek().
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <thread>

#include "common/rng.hpp"
#include "runtime/sharding.hpp"
#include "runtime/store.hpp"

namespace qcnt::runtime {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

TEST(Sharding, HashIsPinnedAcrossProcesses) {
  // Durable shard segments are only self-consistent if key→shard never
  // changes between runs, so the hash is pinned to FNV-1a 64 — these are
  // its published constants, not values we measured once and froze.
  EXPECT_EQ(ShardHash(""), 14695981039346656037ull);
  EXPECT_EQ(ShardHash("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(ShardForKey("anything", 1), 0u);
}

TEST(Sharding, SpreadsKeysOverAllShards) {
  constexpr std::size_t kShards = 4;
  std::vector<std::size_t> hits(kShards, 0);
  for (int i = 0; i < 256; ++i) {
    ++hits[ShardForKey("key" + std::to_string(i), kShards)];
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(hits[s], 0u) << "shard " << s << " owns no keys";
  }
}

/// Project a replica's applied-write history onto one key.
std::vector<std::pair<std::uint64_t, std::int64_t>> KeyHistory(
    const ReplicaSnapshot& snap, const std::string& key) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> out;
  for (const AppliedWrite& w : snap.history) {
    if (w.key == key) out.emplace_back(w.version, w.value);
  }
  return out;
}

/// The central equivalence property, parameterized by shard count: a
/// random workload against a sharded, batched store must produce the same
/// per-operation results, final replica images, and per-item version
/// sequences as an unsharded sequential store — sharding may change
/// thread interleavings but never anything Lemma 7/8 constrain.
void RunShardEquivalence(std::size_t shards, std::size_t iterations,
                         std::size_t workers = 0) {
  constexpr std::size_t kReplicas = 3;
  const std::vector<std::string> keys = {"a", "b", "c", "d",
                                         "e", "f", "g", "h"};

  StoreOptions seq_options;
  seq_options.replicas = kReplicas;
  seq_options.shards_per_replica = 1;
  seq_options.record_applied_history = true;
  ReplicatedStore seq_store(std::move(seq_options));
  auto seq_client = seq_store.MakeClient();

  StoreOptions shard_options;
  shard_options.replicas = kReplicas;
  shard_options.shards_per_replica = shards;
  shard_options.workers_per_replica = workers;
  shard_options.record_applied_history = true;
  ReplicatedStore shard_store(std::move(shard_options));
  ASSERT_EQ(shard_store.ShardsPerReplica(), shards);
  if (workers != 0) {
    ASSERT_EQ(shard_store.ReplicaWorkerCount(0), std::min(workers, shards));
  }
  auto shard_client = shard_store.MakeAsyncClient(
      AsyncQuorumClient::Options{.window = 16, .max_batch = 8});

  std::vector<std::pair<OpFuture, ClientResult>> pending;
  auto drain_and_compare = [&] {
    ASSERT_TRUE(shard_client->Drain());
    for (auto& [future, want] : pending) {
      ASSERT_TRUE(future.Ready());
      const ClientResult got = future.Get();
      ASSERT_EQ(got.ok, want.ok);
      ASSERT_EQ(got.value, want.value);
      ASSERT_EQ(got.version, want.version);
    }
    pending.clear();
  };

  auto compare_replica_states = [&] {
    for (std::size_t r = 0; r < kReplicas; ++r) {
      const ReplicaSnapshot seq_snap = seq_store.ReplicaPeek(r);
      const ReplicaSnapshot shard_snap = shard_store.ReplicaPeek(r);
      for (const std::string& key : keys) {
        const auto si = seq_snap.image.data.find(key);
        const auto bi = shard_snap.image.data.find(key);
        const storage::Versioned sv =
            si == seq_snap.image.data.end() ? storage::Versioned{}
                                            : si->second;
        const storage::Versioned bv =
            bi == shard_snap.image.data.end() ? storage::Versioned{}
                                              : bi->second;
        ASSERT_EQ(sv.version, bv.version)
            << "replica " << r << " key " << key;
        ASSERT_EQ(sv.value, bv.value) << "replica " << r << " key " << key;
        ASSERT_EQ(KeyHistory(seq_snap, key), KeyHistory(shard_snap, key))
            << "replica " << r << " key " << key;
      }
    }
  };

  qcnt::Rng rng(20260806 + shards);
  bool crashed = false;
  for (std::size_t i = 0; i < iterations; ++i) {
    // Crash/recover a replica at drain boundaries, identically in both
    // stores, so the missed-message sets match exactly and the images
    // stay comparable while being non-trivial.
    if (i == iterations / 3 || i == (2 * iterations) / 3) {
      drain_and_compare();
      if (!crashed) {
        seq_store.Crash(2);
        shard_store.Crash(2);
      } else {
        seq_store.Recover(2);
        shard_store.Recover(2);
      }
      crashed = !crashed;
    }

    const std::string& key = keys[rng.Index(keys.size())];
    if (rng.Chance(0.3)) {
      const ClientResult want = seq_client->Read(key);
      pending.emplace_back(shard_client->SubmitRead(key), want);
    } else {
      const auto value = static_cast<std::int64_t>(i + 1);
      const ClientResult want = seq_client->Write(key, value);
      pending.emplace_back(shard_client->SubmitWrite(key, value), want);
    }

    if (pending.size() >= 16) drain_and_compare();
    if ((i + 1) % 200 == 0) {
      drain_and_compare();
      compare_replica_states();
    }
  }
  drain_and_compare();
  compare_replica_states();
}

TEST(ShardedEquivalence, OneShardMatchesSequential) {
  RunShardEquivalence(1, 600);
}

TEST(ShardedEquivalence, FourShardsMatchSequential) {
  RunShardEquivalence(4, 600);
}

// Worker multiplexing (shards > workers) must be invisible: a worker
// owning several shards re-resolves each entry's shard itself, so per-key
// results, images, and version sequences still match the sequential
// store. Pinned counts make this run the multiplexed topology on any
// host, including ones whose auto worker pool would be 1 or 4.
TEST(ShardedEquivalence, FourShardsTwoWorkersMatchSequential) {
  RunShardEquivalence(4, 600, 2);
}

TEST(ShardedEquivalence, EightShardsOneWorkerMatchesSequential) {
  RunShardEquivalence(8, 400, 1);
}

// Regression (shard-aware atomic Crash): hammer Crash while split batches
// are streaming at a sharded replica. The crash must kill all shards
// atomically — no deadlocked dispatch (a config-free variant of the
// barrier abort), no lost acked writes, and a clean rejoin on Recover.
// Parameterized over the shard count: the marker-based crash drain takes
// different code paths at different fan-outs.
void RunCrashHammer(std::size_t shards, std::size_t workers = 0) {
  constexpr std::size_t kRounds = 12;
  constexpr std::size_t kWritesPerRound = 48;
  std::vector<std::string> keys;
  for (int i = 0; i < 12; ++i) keys.push_back("key" + std::to_string(i));

  StoreOptions options;
  options.replicas = 3;
  options.shards_per_replica = shards;
  options.workers_per_replica = workers;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeAsyncClient(
      AsyncQuorumClient::Options{.window = 64, .max_batch = 16});

  std::map<std::string, std::int64_t> expected;
  std::vector<OpFuture> futures;
  std::int64_t next_value = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    // First half of the round's writes, then Crash lands mid-pipeline:
    // split sub-batches are sitting in shard inboxes right now.
    for (std::size_t i = 0; i < kWritesPerRound; ++i) {
      if (i == kWritesPerRound / 2) store.Crash(2);
      const std::string& key = keys[(next_value + i) % keys.size()];
      futures.push_back(client->SubmitWrite(key, ++next_value));
      expected[key] = next_value;
    }
    // Majority {0, 1} must keep acking everything with 2 dead.
    ASSERT_TRUE(client->Drain()) << "round " << round;
    store.Recover(2);
  }
  ASSERT_TRUE(client->Drain());
  for (auto& f : futures) ASSERT_TRUE(f.Get().ok);

  // Every acked value survives the whole crash storm.
  auto reader = store.MakeClient();
  for (const auto& [key, value] : expected) {
    const ClientResult r = reader->Read(key);
    ASSERT_TRUE(r.ok) << key;
    EXPECT_EQ(r.value, value) << key;
  }
}

TEST(ShardedCrash, CrashHammeredDuringSplitBatchesTwoShards) {
  RunCrashHammer(2);
}

TEST(ShardedCrash, CrashHammeredDuringSplitBatches) { RunCrashHammer(4); }

TEST(ShardedCrash, CrashHammeredDuringSplitBatchesEightShards) {
  RunCrashHammer(8);
}

// The marker-based drain must also cut cleanly when workers multiplex
// several shards each (drain target = workers, not shards).
TEST(ShardedCrash, CrashHammeredWithMultiplexedWorkers) {
  RunCrashHammer(8, 2);
}

// The batch-aware dispatch fast path: a pipelined batch whose keys all
// hash to one shard must cross the dispatch→worker boundary as exactly
// one handoff (one PushAll, at most one wakeup) — workers not touched by
// the batch are never woken — and under group-commit durability cost
// exactly one cross-shard fsync decision. Workers are pinned to
// thread-per-shard so the assertion is meaningful on any host (with one
// auto worker every batch would trivially be one handoff). Counter-based
// via ReplicaBatchStats (direct atomic reads — no peek traffic perturbing
// the handoff counts).
TEST(ShardedStore, SingleShardBatchIsOneHandoffAndOneFsyncDecision) {
  struct ScratchDir {
    ScratchDir() : path("runtime_shard_scratch/fastpath") {
      fs::remove_all(path);
      fs::create_directories(path);
    }
    ~ScratchDir() { fs::remove_all(path); }
    std::string path;
  } scratch;

  constexpr std::size_t kShards = 4;
  StoreOptions options;
  options.replicas = 1;
  options.shards_per_replica = kShards;
  options.workers_per_replica = kShards;  // thread-per-shard on any host
  options.durability = storage::DurabilityOptions{
      .directory = scratch.path,
      .fsync = storage::FsyncPolicy::kGroupCommit,
      .group_commit_window = std::chrono::microseconds(2000),
  };
  ReplicatedStore store(std::move(options));
  ASSERT_EQ(store.ReplicaWorkerCount(0), kShards);

  // Collect keys that all land on one shard.
  const std::size_t target = ShardForKey("key0", kShards);
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < 4; ++i) {
    const std::string k = "key" + std::to_string(i);
    if (ShardForKey(k, kShards) == target) keys.push_back(k);
  }

  const BatchStats before = store.ReplicaBatchStats(0);
  ASSERT_EQ(before.per_shard.size(), kShards);
  const std::uint64_t passes_before = store.ReplicaCommitPasses(0);

  // One raw pipelined batch straight at the replica, bypassing the client
  // layer so exactly one kBatchWriteReq crosses the dispatch thread.
  RtMessage req;
  req.kind = RtMessage::Kind::kBatchWriteReq;
  req.op = 1;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    req.batch.push_back(
        BatchEntry{i + 1, keys[i], 1, static_cast<std::int64_t>(i + 10)});
  }
  const NodeId me = store.CoordinatorId();
  ASSERT_TRUE(store.TransportRef().Send(me, 0, std::move(req)));
  const auto ack = store.TransportRef().MailboxOf(me).Pop(
      std::chrono::steady_clock::now() + 5s);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->msg.kind, RtMessage::Kind::kBatchWriteAck);

  const BatchStats after = store.ReplicaBatchStats(0);
  // With thread-per-shard workers, only the target shard's worker may
  // have been handed anything — one PushAll for the whole batch.
  EXPECT_EQ(after.worker_handoffs - before.worker_handoffs, 1u)
      << "whole batch must be one worker handoff";
  EXPECT_LE(after.worker_wakeups - before.worker_wakeups, 1u)
      << "at most the target worker may be woken";

  // Exactly one group-commit pass (one cross-shard fsync decision, one
  // fsync of the single dirty segment) serves the whole batch: wait for
  // it, then confirm no further pass fires once the dirt is gone.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (store.ReplicaCommitPasses(0) < passes_before + 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(store.ReplicaCommitPasses(0), passes_before + 1);
  std::this_thread::sleep_for(20ms);  // ≫ the 2 ms window
  EXPECT_EQ(store.ReplicaCommitPasses(0), passes_before + 1)
      << "a second fsync decision fired with nothing dirty";
  const storage::StorageStats io = store.ReplicaStorageStats(0);
  EXPECT_EQ(io.fsyncs, 1u) << "one dirty segment, one fsync";
}

// The config-write barrier: a reconfiguration acked by a sharded replica
// implies *every* shard applied the stamp, so writes under the new config
// proceed and the merged peek carries the new generation.
TEST(ShardedStore, ReconfigureBarriersAcrossAllShards) {
  StoreOptions options;
  options.replicas = 3;
  options.shards_per_replica = 4;
  options.configs = {quorum::MajoritySystem(3), quorum::MajoritySystem(3)};
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client->Write("key" + std::to_string(i), i).ok);
  }
  ASSERT_TRUE(client->Reconfigure(1).ok);
  EXPECT_EQ(client->BelievedConfig(), 1u);
  for (std::size_t r = 0; r < store.ReplicaCount(); ++r) {
    const ReplicaSnapshot snap = store.ReplicaPeek(r);
    EXPECT_EQ(snap.image.generation, 1u) << "replica " << r;
    EXPECT_EQ(snap.image.config_id, 1u) << "replica " << r;
  }
  // The store keeps working under the new configuration.
  ASSERT_TRUE(client->Write("after", 99).ok);
  EXPECT_EQ(client->Read("after").value, 99);
}

// Satellite: per-shard counters (ops, batches, fsyncs, queue peak) are
// surfaced through Peek() so benches can report shard balance.
TEST(ShardedStore, PerShardCountersSurfaceThroughPeek) {
  constexpr std::size_t kShards = 4;
  StoreOptions options;
  options.replicas = 1;
  options.shards_per_replica = kShards;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeAsyncClient(
      AsyncQuorumClient::Options{.window = 32, .max_batch = 8});
  constexpr int kKeys = 64;
  for (int i = 0; i < kKeys; ++i) {
    client->SubmitWrite("key" + std::to_string(i), i);
  }
  ASSERT_TRUE(client->Drain());

  const ReplicaSnapshot snap = store.ReplicaPeek(0);
  ASSERT_EQ(snap.stats.per_shard.size(), kShards);
  std::uint64_t total_ops = 0, shards_hit = 0;
  for (const ShardCounters& c : snap.stats.per_shard) {
    total_ops += c.ops;
    if (c.ops > 0) {
      ++shards_hit;
      EXPECT_GT(c.queue_peak, 0u);
    }
    EXPECT_EQ(c.fsyncs, 0u);  // memory backend
  }
  // Each op runs a read probe and a write install: ≥ 2 applied ops each.
  EXPECT_GE(total_ops, static_cast<std::uint64_t>(2 * kKeys));
  EXPECT_EQ(shards_hit, kShards) << "64 keys left a shard idle";
  EXPECT_GT(snap.stats.batches_applied, 0u);

  // The aggregate surface carries the same slots.
  const BatchStats total = store.TotalBatchStats();
  ASSERT_EQ(total.per_shard.size(), kShards);
  EXPECT_EQ(total.batches_applied, snap.stats.batches_applied);
}

TEST(ShardedStore, PerShardFsyncCountersUnderDurability) {
  struct ScratchDir {
    ScratchDir() : path("runtime_shard_scratch/fsync") {
      fs::remove_all(path);
      fs::create_directories(path);
    }
    ~ScratchDir() { fs::remove_all(path); }
    std::string path;
  } scratch;

  constexpr std::size_t kShards = 2;
  std::string key_a, key_b;  // one key per shard
  for (int i = 0; key_a.empty() || key_b.empty(); ++i) {
    const std::string k = "key" + std::to_string(i);
    if (ShardForKey(k, kShards) == 0) {
      if (key_a.empty()) key_a = k;
    } else if (key_b.empty()) {
      key_b = k;
    }
  }

  StoreOptions options;
  options.replicas = 1;
  options.shards_per_replica = kShards;
  options.durability = storage::DurabilityOptions{
      .directory = scratch.path,
      .fsync = storage::FsyncPolicy::kAlways,
  };
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write(key_a, 1).ok);
  ASSERT_TRUE(client->Write(key_a, 2).ok);
  ASSERT_TRUE(client->Write(key_b, 3).ok);

  const BatchStats stats = store.ReplicaBatchStats(0);
  ASSERT_EQ(stats.per_shard.size(), kShards);
  // kAlways: one fsync per appended record, attributed to the owning shard.
  EXPECT_EQ(stats.per_shard[0].fsyncs, 2u);
  EXPECT_EQ(stats.per_shard[1].fsyncs, 1u);
}

// Peeking a sharded replica keeps working while the node is bus-crashed
// (memory mode: the threads stay up), even though a concurrent crash can
// clear an in-flight peek — the retry path must converge.
TEST(ShardedStore, PeekSurvivesConcurrentCrashes) {
  StoreOptions options;
  options.replicas = 3;
  options.shards_per_replica = 4;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client->Write("key" + std::to_string(i), i).ok);
  }
  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    while (!stop.load()) {
      store.Crash(2);
      std::this_thread::sleep_for(1ms);
      store.Recover(2);
      std::this_thread::sleep_for(1ms);
    }
  });
  for (int i = 0; i < 50; ++i) {
    const ReplicaSnapshot snap = store.ReplicaPeek(2);
    EXPECT_LE(snap.image.data.size(), 17u);
  }
  stop.store(true);
  chaos.join();
}

}  // namespace
}  // namespace qcnt::runtime
