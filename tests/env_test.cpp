// EnvU64: the one checked parser behind QCNT_SHARDS, QCNT_FAULT_SEED and
// QCNT_TCP_PORT_BASE. Contract: strict base-10, full-string match, range
// checked — anything else reads as "not set" so a typo'd variable can
// never smuggle a half-parsed value into a test matrix.
#include "common/env.hpp"

#include <cstdlib>
#include <limits>

#include <gtest/gtest.h>

namespace qcnt::common {
namespace {

constexpr char kVar[] = "QCNT_ENV_TEST_VAR";

struct EnvGuard {
  ~EnvGuard() { ::unsetenv(kVar); }
  void Set(const char* v) { ::setenv(kVar, v, 1); }
};

TEST(EnvU64, UnsetIsNullopt) {
  EnvGuard g;
  ::unsetenv(kVar);
  EXPECT_FALSE(EnvU64(kVar, 0, 100).has_value());
}

TEST(EnvU64, EmptyIsNullopt) {
  EnvGuard g;
  g.Set("");
  EXPECT_FALSE(EnvU64(kVar, 0, 100).has_value());
}

TEST(EnvU64, ParsesInRange) {
  EnvGuard g;
  g.Set("42");
  auto v = EnvU64(kVar, 1, 64);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42u);
}

TEST(EnvU64, BoundsAreInclusive) {
  EnvGuard g;
  g.Set("1");
  EXPECT_EQ(EnvU64(kVar, 1, 64), 1u);
  g.Set("64");
  EXPECT_EQ(EnvU64(kVar, 1, 64), 64u);
}

TEST(EnvU64, OutOfRangeIsNullopt) {
  EnvGuard g;
  g.Set("0");
  EXPECT_FALSE(EnvU64(kVar, 1, 64).has_value());
  g.Set("65");
  EXPECT_FALSE(EnvU64(kVar, 1, 64).has_value());
}

TEST(EnvU64, GarbageIsNullopt) {
  EnvGuard g;
  for (const char* bad : {"abc", "12abc", "12 ", " 12", "0x10", "1.5",
                          "--3", "12,000"}) {
    g.Set(bad);
    EXPECT_FALSE(EnvU64(kVar, 0, 1u << 20).has_value()) << "input: " << bad;
  }
}

TEST(EnvU64, SignsAreRejected) {
  // strtoull would happily wrap "-1" to 2^64-1; the helper must not.
  EnvGuard g;
  g.Set("-1");
  EXPECT_FALSE(
      EnvU64(kVar, 0, std::numeric_limits<std::uint64_t>::max()).has_value());
  g.Set("+5");
  EXPECT_FALSE(EnvU64(kVar, 0, 100).has_value());
}

TEST(EnvU64, OverflowIsNullopt) {
  EnvGuard g;
  g.Set("99999999999999999999999999");  // > 2^64
  EXPECT_FALSE(
      EnvU64(kVar, 0, std::numeric_limits<std::uint64_t>::max()).has_value());
}

TEST(EnvU64, FullU64RangeParses) {
  EnvGuard g;
  g.Set("18446744073709551615");  // 2^64 - 1
  auto v = EnvU64(kVar, 0, std::numeric_limits<std::uint64_t>::max());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace qcnt::common
