// Unit tests for the v2 storage engine: bloom filters, sorted-block
// checkpoint files, the v2 MANIFEST, the adaptive group-commit window,
// the DurableBackend's rotation/checkpoint/compaction machinery, the
// spill-mode cold-read layer, and in-place migration of v1 layouts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "storage/backend.hpp"
#include "storage/bloom.hpp"
#include "storage/checkpoint.hpp"
#include "storage/commit.hpp"
#include "storage/manifest.hpp"
#include "storage/recovery.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

namespace qcnt::storage {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// Fresh scratch directory under the test's working directory, removed on
/// scope exit (leaf only: ctest -j runs siblings concurrently).
struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path((fs::path("storage_v2_test_scratch") / tag).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

std::string Pk(int i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "key_%05d", i);
  return buf;
}

Versioned V(std::uint64_t version, std::int64_t value) {
  Versioned v;
  v.version = version;
  v.value = value;
  return v;
}

// ---------------------------------------------------------------------------
// BloomFilter
// ---------------------------------------------------------------------------

TEST(Bloom, AddedKeysAlwaysHit) {
  BloomFilter bloom(1000);
  for (int i = 0; i < 1000; ++i) bloom.Add(Pk(i));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bloom.MayContain(Pk(i))) << Pk(i);
  }
}

TEST(Bloom, AbsentKeysMostlyRejected) {
  BloomFilter bloom(1000);
  for (int i = 0; i < 1000; ++i) bloom.Add(Pk(i));
  // ~1% designed false-positive rate; allow generous slack (5%).
  int false_positives = 0;
  for (int i = 1000; i < 3000; ++i) {
    if (bloom.MayContain(Pk(i))) ++false_positives;
  }
  EXPECT_LT(false_positives, 100);
}

TEST(Bloom, SerializedBitsAreTheFilter) {
  BloomFilter bloom(64);
  bloom.Add("alpha");
  bloom.Add("beta");
  BloomFilter rewrapped(bloom.Bits());
  EXPECT_TRUE(rewrapped.MayContain("alpha"));
  EXPECT_TRUE(rewrapped.MayContain("beta"));
  EXPECT_FALSE(rewrapped.MayContain("definitely-not-present-key"));
}

// ---------------------------------------------------------------------------
// Checkpoint files
// ---------------------------------------------------------------------------

TEST(Checkpoint, WriteReadRoundTripAcrossBlocks) {
  ScratchDir dir("ckpt_roundtrip");
  const std::string path = dir.path + "/ckpt_1.blk";
  const int n = 200;
  {
    // Tiny blocks force a multi-block file so the index actually routes.
    CheckpointWriter writer(path, n, /*block_bytes=*/64);
    for (int i = 0; i < n; ++i) writer.Add(Pk(i), V(i + 1, 10 * i));
    writer.Finish(/*generation=*/7, /*config_id=*/3);
    EXPECT_EQ(writer.entries(), static_cast<std::uint64_t>(n));
  }
  auto reader = CheckpointReader::Open(path);
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->generation(), 7u);
  EXPECT_EQ(reader->config_id(), 3u);
  EXPECT_EQ(reader->entry_count(), static_cast<std::uint64_t>(n));
  for (int i = 0; i < n; ++i) {
    Versioned v;
    ASSERT_EQ(reader->Get(Pk(i), &v), CheckpointReader::Probe::kFound)
        << Pk(i);
    EXPECT_EQ(v.version, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(v.value, 10 * i);
  }
}

TEST(Checkpoint, ScanVisitsEveryEntryInKeyOrder) {
  ScratchDir dir("ckpt_scan");
  const std::string path = dir.path + "/ckpt_1.blk";
  {
    CheckpointWriter writer(path, 50, /*block_bytes=*/64);
    for (int i = 0; i < 50; ++i) writer.Add(Pk(i), V(1, i));
    writer.Finish(0, 0);
  }
  auto reader = CheckpointReader::Open(path);
  ASSERT_NE(reader, nullptr);
  std::vector<std::string> keys;
  reader->Scan([&keys](const std::string& key, const Versioned& v) {
    keys.push_back(key);
    EXPECT_EQ(v.version, 1u);
  });
  ASSERT_EQ(keys.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(keys[i], Pk(i));
}

TEST(Checkpoint, ProbeDistinguishesBloomMissFromFalsePositive) {
  ScratchDir dir("ckpt_probe");
  const std::string path = dir.path + "/ckpt_1.blk";
  {
    CheckpointWriter writer(path, 100);
    for (int i = 0; i < 100; ++i) writer.Add(Pk(i), V(1, i));
    writer.Finish(0, 0);
  }
  auto reader = CheckpointReader::Open(path);
  ASSERT_NE(reader, nullptr);
  Versioned v;
  EXPECT_EQ(reader->Get(Pk(42), &v), CheckpointReader::Probe::kFound);
  // Absent probes return kBloomMiss (no I/O) or, rarely, kNotFound (the
  // ~1% filter false positive) — never kFound.
  int bloom_misses = 0;
  for (int i = 100; i < 600; ++i) {
    const auto probe = reader->Get(Pk(i), &v);
    EXPECT_NE(probe, CheckpointReader::Probe::kFound) << Pk(i);
    if (probe == CheckpointReader::Probe::kBloomMiss) ++bloom_misses;
  }
  EXPECT_GT(bloom_misses, 450);  // the filter rejects the vast majority
}

TEST(Checkpoint, IteratorSeeksStrictlyAboveCursor) {
  ScratchDir dir("ckpt_iter");
  const std::string path = dir.path + "/ckpt_1.blk";
  {
    CheckpointWriter writer(path, 100, /*block_bytes=*/64);
    for (int i = 0; i < 100; ++i) writer.Add(Pk(i), V(1, i));
    writer.Finish(0, 0);
  }
  auto reader = CheckpointReader::Open(path);
  ASSERT_NE(reader, nullptr);

  // Begin() starts at the very first key.
  auto it = reader->Begin();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Pk(0));

  // SeekAbove is strictly-greater, spanning block boundaries.
  it = reader->SeekAbove(Pk(41));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Pk(42));
  int seen = 42;
  for (; it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), Pk(seen));
    ++seen;
  }
  EXPECT_EQ(seen, 100);

  // A cursor beyond the last key yields an exhausted iterator, as does a
  // cursor below the first key yielding the first key.
  EXPECT_FALSE(reader->SeekAbove(Pk(99)).Valid());
  auto low = reader->SeekAbove("a");  // sorts before "key_..."
  ASSERT_TRUE(low.Valid());
  EXPECT_EQ(low.key(), Pk(0));
}

TEST(Checkpoint, TruncatedOrCorruptFooterRejected) {
  ScratchDir dir("ckpt_corrupt");
  const std::string path = dir.path + "/ckpt_1.blk";
  {
    CheckpointWriter writer(path, 10);
    for (int i = 0; i < 10; ++i) writer.Add(Pk(i), V(1, i));
    writer.Finish(0, 0);
  }
  ASSERT_NE(CheckpointReader::Open(path), nullptr);

  // Truncate into the footer.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 8);
  EXPECT_EQ(CheckpointReader::Open(path), nullptr);

  // Garbage file and missing file.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "this is not a checkpoint file at all, not even close......";
  }
  EXPECT_EQ(CheckpointReader::Open(path), nullptr);
  EXPECT_EQ(CheckpointReader::Open(dir.path + "/absent.blk"), nullptr);
}

TEST(Checkpoint, MergeKeepsNewestVersionPerKey) {
  ScratchDir dir("ckpt_merge");
  const std::string old_path = dir.path + "/ckpt_1.blk";
  const std::string new_path = dir.path + "/ckpt_2.blk";
  {
    CheckpointWriter writer(old_path, 3);
    writer.Add("a", V(1, 10));
    writer.Add("b", V(5, 50));  // newer than the second run's "b"
    writer.Add("c", V(1, 30));
    writer.Finish(0, 0);
  }
  {
    CheckpointWriter writer(new_path, 3);
    writer.Add("b", V(2, 99));
    writer.Add("c", V(4, 31));  // supersedes the first run's "c"
    writer.Add("d", V(1, 40));
    writer.Finish(0, 0);
  }
  auto r1 = CheckpointReader::Open(old_path);
  auto r2 = CheckpointReader::Open(new_path);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  std::map<std::string, Versioned> merged;
  MergeCheckpoints({r1.get(), r2.get()},
                   [&merged](const std::string& key, const Versioned& v) {
                     EXPECT_TRUE(merged.find(key) == merged.end())
                         << "duplicate emit for " << key;
                     merged[key] = v;
                   });
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged["a"].value, 10);
  EXPECT_EQ(merged["b"].version, 5u);  // highest version wins, file order
  EXPECT_EQ(merged["b"].value, 50);    // does not
  EXPECT_EQ(merged["c"].version, 4u);
  EXPECT_EQ(merged["c"].value, 31);
  EXPECT_EQ(merged["d"].value, 40);
}

// ---------------------------------------------------------------------------
// Manifest v2
// ---------------------------------------------------------------------------

TEST(ManifestV2, FreshDirectoryYieldsEmptyNonPresentShards) {
  ScratchDir dir("manifest_fresh");
  Manifest m(dir.path, 2);
  EXPECT_TRUE(m.info().ok);
  EXPECT_EQ(m.info().version, 0u);
  EXPECT_EQ(m.shard_count(), 2u);
  EXPECT_FALSE(m.Shard(0).present);
  EXPECT_FALSE(m.Shard(1).present);
  // Nothing was persisted just by constructing.
  EXPECT_FALSE(fs::exists(RecoveryManager::ManifestPath(dir.path)));
}

TEST(ManifestV2, UpdatePersistsAndReloads) {
  ScratchDir dir("manifest_roundtrip");
  {
    Manifest m(dir.path, 2);
    ShardFiles files;
    files.present = true;
    files.next_file_id = 5;
    files.segments = {2, 4};
    files.checkpoints = {1, 3};
    m.Update(1, files);
  }
  Manifest reloaded(dir.path, 2);
  EXPECT_TRUE(reloaded.info().ok);
  EXPECT_EQ(reloaded.info().version, 2u);
  EXPECT_EQ(reloaded.info().disk_shard_count, 2u);
  EXPECT_FALSE(reloaded.Shard(0).present);
  const ShardFiles s1 = reloaded.Shard(1);
  EXPECT_TRUE(s1.present);
  EXPECT_EQ(s1.next_file_id, 5u);
  EXPECT_EQ(s1.segments, (std::vector<std::uint64_t>{2, 4}));
  EXPECT_EQ(s1.checkpoints, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(Manifest::ReadShardCount(dir.path), std::optional<std::size_t>(2));
}

TEST(ManifestV2, LegacyV1ManifestIsRecognizedNotAdopted) {
  ScratchDir dir("manifest_v1");
  RecoveryManager::WriteManifest(dir.path, 3);
  Manifest m(dir.path, 3);
  EXPECT_TRUE(m.info().ok);
  EXPECT_EQ(m.info().version, 1u);
  EXPECT_EQ(m.info().disk_shard_count, 3u);
  // v1 pins only the shard count; every shard still migrates lazily.
  for (std::size_t s = 0; s < 3; ++s) EXPECT_FALSE(m.Shard(s).present);
  EXPECT_EQ(Manifest::ReadShardCount(dir.path), std::optional<std::size_t>(3));
}

TEST(ManifestV2, CorruptManifestReportedNotSilentlyEmpty) {
  ScratchDir dir("manifest_corrupt");
  {
    std::ofstream out(RecoveryManager::ManifestPath(dir.path),
                      std::ios::binary);
    out << "garbage that is definitely not a manifest";
  }
  Manifest m(dir.path, 1);
  EXPECT_FALSE(m.info().ok);
  EXPECT_FALSE(m.info().error.empty());
  EXPECT_EQ(Manifest::ReadShardCount(dir.path), std::nullopt);
}

// ---------------------------------------------------------------------------
// Adaptive group-commit window (pure decision rule)
// ---------------------------------------------------------------------------

TEST(AdaptiveWindow, WidensDoublingTowardMaxOnBusyTickets) {
  GroupCommitCoordinator::Options o;
  o.window = 500us;
  o.adaptive = true;
  o.min_window = 100us;
  o.max_window = 4000us;
  EXPECT_EQ(GroupCommitCoordinator::NextWindow(
                500us, GroupCommitCoordinator::kWidenMarks, o),
            1000us);
  EXPECT_EQ(GroupCommitCoordinator::NextWindow(500us, 1000, o), 1000us);
  EXPECT_EQ(GroupCommitCoordinator::NextWindow(3000us, 1000, o), 4000us);
  EXPECT_EQ(GroupCommitCoordinator::NextWindow(4000us, 1000, o), 4000us);
}

TEST(AdaptiveWindow, NarrowsHalvingTowardMinOnQuietTickets) {
  GroupCommitCoordinator::Options o;
  o.window = 500us;
  o.adaptive = true;
  o.min_window = 100us;
  o.max_window = 4000us;
  EXPECT_EQ(GroupCommitCoordinator::NextWindow(
                500us, GroupCommitCoordinator::kNarrowMarks, o),
            250us);
  EXPECT_EQ(GroupCommitCoordinator::NextWindow(500us, 0, o), 250us);
  EXPECT_EQ(GroupCommitCoordinator::NextWindow(150us, 0, o), 100us);
  EXPECT_EQ(GroupCommitCoordinator::NextWindow(100us, 0, o), 100us);
}

TEST(AdaptiveWindow, HoldsBetweenThresholdsAndWhenDisabled) {
  GroupCommitCoordinator::Options o;
  o.window = 500us;
  o.adaptive = true;
  o.min_window = 100us;
  o.max_window = 4000us;
  for (std::uint64_t marks = GroupCommitCoordinator::kNarrowMarks + 1;
       marks < GroupCommitCoordinator::kWidenMarks; ++marks) {
    EXPECT_EQ(GroupCommitCoordinator::NextWindow(700us, marks, o), 700us);
  }
  o.adaptive = false;
  // Disabled: always the configured fixed window, whatever the load.
  EXPECT_EQ(GroupCommitCoordinator::NextWindow(700us, 1000, o), 500us);
  EXPECT_EQ(GroupCommitCoordinator::NextWindow(700us, 0, o), 500us);
}

// ---------------------------------------------------------------------------
// DurableBackend: rotation, checkpointing, compaction, O(tail) recovery
// ---------------------------------------------------------------------------

DurabilityOptions SmallThresholds(const std::string& dir) {
  DurabilityOptions o;
  o.directory = dir;  // informational; MakeDurableBackend takes dir directly
  o.fsync = FsyncPolicy::kNever;
  o.checkpoint_tail_bytes = 512;
  o.segment_bytes = 256;
  return o;
}

/// Drive one applied write through both the image (as ReplicaServer
/// would) and the backend, then let thresholds trip.
void Apply(Backend& backend, Image& image, const std::string& key,
           std::uint64_t version, std::int64_t value) {
  image.ApplyWrite(key, version, value);
  backend.ApplyWrite(key, version, value);
  backend.MaybeCompact(image);
}

TEST(DurableBackendV2, CheckpointsOnTailThresholdAndReclaimsSegments) {
  ScratchDir dir("be_checkpoint");
  auto backend = MakeDurableBackend(dir.path, SmallThresholds(dir.path));
  Image image = backend->Recover();
  for (int i = 0; i < 100; ++i) Apply(*backend, image, Pk(i), 1, i);

  const StorageStats stats = backend->Stats();
  EXPECT_GE(stats.checkpoints_written, 1u);
  EXPECT_GE(stats.segments_rotated, 1u);
  EXPECT_GE(stats.segments_compacted, 1u);
  EXPECT_GT(stats.checkpoint_entries, 0u);

  // The manifest names a bounded live set: exactly one active segment
  // right after a checkpoint, at most a few since.
  Manifest m(dir.path, 1);
  EXPECT_EQ(m.info().version, 2u);
  const ShardFiles files = m.Shard(0);
  ASSERT_TRUE(files.present);
  EXPECT_GE(files.checkpoints.size(), 1u);
  for (const std::uint64_t id : files.segments) {
    EXPECT_TRUE(fs::exists(Manifest::SegmentPath(dir.path, 0, id)));
  }
  for (const std::uint64_t id : files.checkpoints) {
    EXPECT_TRUE(fs::exists(Manifest::CheckpointPath(dir.path, 0, id)));
  }
}

TEST(DurableBackendV2, RecoveryReplaysOnlyTheTailNotTotalState) {
  ScratchDir dir("be_otail");
  {
    auto backend = MakeDurableBackend(dir.path, SmallThresholds(dir.path));
    Image image = backend->Recover();
    for (int i = 0; i < 300; ++i) Apply(*backend, image, Pk(i), 1, 7 * i);
  }
  auto backend = MakeDurableBackend(dir.path, SmallThresholds(dir.path));
  const Image image = backend->Recover();
  ASSERT_EQ(image.data.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(image.data.at(Pk(i)).value, 7 * i) << Pk(i);
  }
  // 512-byte tail threshold ≈ a couple dozen ~35-byte records; replaying
  // anywhere near the 300 appended records would mean the checkpoints
  // are being ignored.
  EXPECT_LT(backend->Stats().recovery_replayed, 60u);
}

TEST(DurableBackendV2, RotatesWithoutCheckpointWhenTailAllowed) {
  ScratchDir dir("be_rotate");
  DurabilityOptions o = SmallThresholds(dir.path);
  o.checkpoint_tail_bytes = 1u << 30;  // never checkpoint
  o.segment_bytes = 256;               // rotate often
  {
    auto backend = MakeDurableBackend(dir.path, o);
    Image image = backend->Recover();
    for (int i = 0; i < 60; ++i) Apply(*backend, image, Pk(i), 1, i);
    const StorageStats stats = backend->Stats();
    EXPECT_GE(stats.segments_rotated, 2u);
    EXPECT_EQ(stats.checkpoints_written, 0u);
    Manifest m(dir.path, 1);
    EXPECT_GE(m.Shard(0).segments.size(), 3u);
  }
  // Every segment in the chain replays, oldest to newest.
  auto backend = MakeDurableBackend(dir.path, o);
  const Image image = backend->Recover();
  ASSERT_EQ(image.data.size(), 60u);
  EXPECT_EQ(backend->Stats().recovery_replayed, 60u);
}

TEST(DurableBackendV2, ChainMergesAtMaxCheckpoints) {
  ScratchDir dir("be_merge");
  DurabilityOptions o = SmallThresholds(dir.path);
  o.checkpoint_tail_bytes = 1u << 30;  // only explicit checkpoints
  o.segment_bytes = 1u << 30;
  o.max_checkpoints = 2;
  auto backend = MakeDurableBackend(dir.path, o);
  Image image = backend->Recover();
  // Four checkpoints of overlapping keys; the chain must fold.
  for (int round = 1; round <= 4; ++round) {
    for (int i = 0; i < 10; ++i) {
      Apply(*backend, image, Pk(i), round, 100 * round + i);
    }
    backend->ForceCheckpoint(image);
  }
  const StorageStats stats = backend->Stats();
  EXPECT_EQ(stats.checkpoints_written, 4u);
  EXPECT_GE(stats.checkpoint_merges, 1u);
  Manifest m(dir.path, 1);
  EXPECT_LE(m.Shard(0).checkpoints.size(), 2u);

  // Newest round survives the k-way merges.
  auto reopened = MakeDurableBackend(dir.path, o);
  const Image recovered = reopened->Recover();
  ASSERT_EQ(recovered.data.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(recovered.data.at(Pk(i)).version, 4u);
    EXPECT_EQ(recovered.data.at(Pk(i)).value, 400 + i);
  }
}

TEST(DurableBackendV2, UnreferencedFilesSweptOnRecovery) {
  ScratchDir dir("be_sweep");
  DurabilityOptions o = SmallThresholds(dir.path);
  {
    auto backend = MakeDurableBackend(dir.path, o);
    Image image = backend->Recover();
    for (int i = 0; i < 40; ++i) Apply(*backend, image, Pk(i), 1, i);
    backend->ForceCheckpoint(image);
  }
  // A crash between "create new files" and "manifest save" leaves
  // orphans the manifest never adopted; recovery must sweep them.
  const std::string shard_dir = Manifest::ShardDirPath(dir.path, 0);
  const std::string orphan_seg = shard_dir + "/seg_99.log";
  const std::string orphan_ckpt = shard_dir + "/ckpt_99.blk";
  const std::string orphan_tmp = shard_dir + "/ckpt_100.blk.tmp";
  for (const std::string& p : {orphan_seg, orphan_ckpt, orphan_tmp}) {
    std::ofstream out(p, std::ios::binary);
    out << "orphaned by a simulated crash";
  }
  auto backend = MakeDurableBackend(dir.path, o);
  const Image image = backend->Recover();
  EXPECT_FALSE(fs::exists(orphan_seg));
  EXPECT_FALSE(fs::exists(orphan_ckpt));
  EXPECT_FALSE(fs::exists(orphan_tmp));
  ASSERT_EQ(image.data.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(image.data.at(Pk(i)).value, i);
}

TEST(DurableBackendV2, TornActiveSegmentTailCutOnRecovery) {
  ScratchDir dir("be_torn");
  DurabilityOptions o = SmallThresholds(dir.path);
  o.fsync = FsyncPolicy::kAlways;
  o.checkpoint_tail_bytes = 1u << 30;
  o.segment_bytes = 1u << 30;
  {
    auto backend = MakeDurableBackend(dir.path, o);
    Image image = backend->Recover();
    for (int i = 0; i < 20; ++i) Apply(*backend, image, Pk(i), 1, i);
    backend->OnCrash();
  }
  // Half a frame of garbage lands on the active segment — the classic
  // crash mid-append.
  const std::uint64_t active = Manifest(dir.path, 1).Shard(0).segments.back();
  {
    std::ofstream out(Manifest::SegmentPath(dir.path, 0, active),
                      std::ios::binary | std::ios::app);
    out << "\x13\x37garbage";
  }
  auto backend = MakeDurableBackend(dir.path, o);
  const Image image = backend->Recover();
  EXPECT_EQ(backend->Stats().torn_tails_discarded, 1u);
  ASSERT_EQ(image.data.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(image.data.at(Pk(i)).value, i);
}

// ---------------------------------------------------------------------------
// Spill mode: the cold-read layer
// ---------------------------------------------------------------------------

TEST(SpillMode, CheckpointEvictsImageAndLookupServesCold) {
  ScratchDir dir("spill_lookup");
  DurabilityOptions o = SmallThresholds(dir.path);
  o.checkpoint_tail_bytes = 1u << 30;
  o.segment_bytes = 1u << 30;
  o.spill_cold_reads = true;
  auto backend = MakeDurableBackend(dir.path, o);
  Image image = backend->Recover();
  image.ApplyConfig(9, 2);
  backend->ApplyConfig(9, 2);
  for (int i = 0; i < 80; ++i) Apply(*backend, image, Pk(i), 1, 3 * i);
  backend->ForceCheckpoint(image);

  // Eviction: the map empties, the stamp survives.
  EXPECT_TRUE(image.data.empty());
  EXPECT_EQ(image.generation, 9u);
  EXPECT_EQ(image.config_id, 2u);

  Versioned v;
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(backend->Lookup(Pk(i), &v)) << Pk(i);
    EXPECT_EQ(v.version, 1u);
    EXPECT_EQ(v.value, 3 * i);
  }
  EXPECT_FALSE(backend->Lookup("never-written", &v));

  const StorageStats stats = backend->Stats();
  EXPECT_EQ(stats.cold_lookups, 81u);
  EXPECT_EQ(stats.bloom_hits, 80u);
  EXPECT_EQ(stats.bloom_misses + stats.bloom_false_positives, 1u);
}

TEST(SpillMode, NewestCheckpointWinsForRedirtiedKeys) {
  ScratchDir dir("spill_newest");
  DurabilityOptions o = SmallThresholds(dir.path);
  o.checkpoint_tail_bytes = 1u << 30;
  o.segment_bytes = 1u << 30;
  o.spill_cold_reads = true;
  auto backend = MakeDurableBackend(dir.path, o);
  Image image = backend->Recover();
  for (int i = 0; i < 20; ++i) Apply(*backend, image, Pk(i), 1, i);
  backend->ForceCheckpoint(image);
  // Re-dirty a subset at a higher version; second checkpoint holds only
  // those, so the chain has both runs and the probe must prefer the new.
  for (int i = 0; i < 5; ++i) Apply(*backend, image, Pk(i), 2, 1000 + i);
  backend->ForceCheckpoint(image);

  Versioned v;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(backend->Lookup(Pk(i), &v));
    EXPECT_EQ(v.version, 2u);
    EXPECT_EQ(v.value, 1000 + i);
  }
  for (int i = 5; i < 20; ++i) {
    ASSERT_TRUE(backend->Lookup(Pk(i), &v));
    EXPECT_EQ(v.version, 1u);
  }
}

TEST(SpillMode, ScanAboveMergesChainInOrderIncludingEmptyKey) {
  ScratchDir dir("spill_scan");
  DurabilityOptions o = SmallThresholds(dir.path);
  o.checkpoint_tail_bytes = 1u << 30;
  o.segment_bytes = 1u << 30;
  o.spill_cold_reads = true;
  auto backend = MakeDurableBackend(dir.path, o);
  Image image = backend->Recover();
  Apply(*backend, image, "", 1, -1);  // the empty key is a legal key
  for (int i = 0; i < 30; ++i) Apply(*backend, image, Pk(i), 1, i);
  backend->ForceCheckpoint(image);
  for (int i = 0; i < 10; ++i) Apply(*backend, image, Pk(i), 2, 100 + i);
  backend->ForceCheckpoint(image);

  // Empty cursor = start inclusive: the empty key must be the first
  // emit, or catchup's opening request would permanently skip it.
  std::vector<std::pair<std::string, Versioned>> got;
  backend->ScanAbove("", 5,
                     [&got](const std::string& key, const Versioned& v) {
                       got.emplace_back(key, v);
                     });
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0].first, "");
  EXPECT_EQ(got[0].second.value, -1);
  EXPECT_EQ(got[1].first, Pk(0));
  EXPECT_EQ(got[1].second.version, 2u);  // newest run wins the merge

  // Resume from the last delivered key: strictly greater, no repeats.
  got.clear();
  backend->ScanAbove(Pk(0), 1000,
                     [&got](const std::string& key, const Versioned& v) {
                       got.emplace_back(key, v);
                     });
  ASSERT_EQ(got.size(), 29u);
  for (int i = 0; i < 29; ++i) {
    EXPECT_EQ(got[i].first, Pk(i + 1));
    EXPECT_EQ(got[i].second.version, i + 1 < 10 ? 2u : 1u);
  }

  // ScanAll covers the whole chain, newest version per key.
  std::map<std::string, Versioned> all;
  backend->ScanAll([&all](const std::string& key, const Versioned& v) {
    all[key] = v;
  });
  EXPECT_EQ(all.size(), 31u);
  EXPECT_EQ(all.at(Pk(3)).value, 103);
  EXPECT_EQ(all.at(Pk(20)).value, 20);
}

TEST(SpillMode, RecoveryMaterializesOnlyTheTail) {
  ScratchDir dir("spill_recover");
  DurabilityOptions o = SmallThresholds(dir.path);
  o.checkpoint_tail_bytes = 1u << 30;
  o.segment_bytes = 1u << 30;
  o.spill_cold_reads = true;
  {
    auto backend = MakeDurableBackend(dir.path, o);
    Image image = backend->Recover();
    for (int i = 0; i < 50; ++i) Apply(*backend, image, Pk(i), 1, i);
    backend->ForceCheckpoint(image);
    for (int i = 50; i < 55; ++i) Apply(*backend, image, Pk(i), 1, i);
  }
  auto backend = MakeDurableBackend(dir.path, o);
  const Image image = backend->Recover();
  // Only the 5 un-checkpointed writes live in RAM ...
  EXPECT_EQ(image.data.size(), 5u);
  for (int i = 50; i < 55; ++i) EXPECT_EQ(image.data.at(Pk(i)).value, i);
  // ... the other 50 are served cold.
  Versioned v;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(backend->Lookup(Pk(i), &v)) << Pk(i);
    EXPECT_EQ(v.value, i);
  }
}

TEST(SpillMode, ColdApisAreNoOpsWithoutSpill) {
  ScratchDir dir("spill_off");
  DurabilityOptions o = SmallThresholds(dir.path);
  o.checkpoint_tail_bytes = 1u << 30;
  o.segment_bytes = 1u << 30;
  o.spill_cold_reads = false;
  auto backend = MakeDurableBackend(dir.path, o);
  Image image = backend->Recover();
  for (int i = 0; i < 10; ++i) Apply(*backend, image, Pk(i), 1, i);
  backend->ForceCheckpoint(image);
  EXPECT_EQ(image.data.size(), 10u);  // no eviction without spill

  // The image is complete, so the cold layer must stay silent — the
  // runtime calls these unconditionally.
  Versioned v;
  EXPECT_FALSE(backend->Lookup(Pk(3), &v));
  int visits = 0;
  backend->ScanAbove("", 100,
                     [&visits](const std::string&, const Versioned&) {
                       ++visits;
                     });
  backend->ScanAll([&visits](const std::string&, const Versioned&) {
    ++visits;
  });
  EXPECT_EQ(visits, 0);
  EXPECT_EQ(backend->Stats().cold_lookups, 0u);
}

// ---------------------------------------------------------------------------
// Legacy v1 layouts migrate in place
// ---------------------------------------------------------------------------

TEST(Migration, UnshardedV1StoreUpgradesInPlace) {
  ScratchDir dir("mig_unsharded");
  // Fabricate a v1 store: snapshot + wal records on top.
  Image snapshot;
  for (int i = 0; i < 10; ++i) {
    snapshot.ApplyWrite(Pk(i), 1, i);
  }
  snapshot.ApplyConfig(3, 1);
  WriteSnapshot(dir.path, snapshot);
  {
    Wal wal(RecoveryManager::WalPath(dir.path), {});
    for (int i = 5; i < 15; ++i) {
      WalRecord r;
      r.key = Pk(i);
      r.version = 2;
      r.value = 100 + i;
      wal.Append(r);
    }
  }

  DurabilityOptions o = SmallThresholds(dir.path);
  auto backend = MakeDurableBackend(dir.path, o);
  const Image image = backend->Recover();
  EXPECT_EQ(backend->Stats().migrations, 1u);
  ASSERT_EQ(image.data.size(), 15u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(image.data.at(Pk(i)).value, i);
  for (int i = 5; i < 15; ++i) {
    EXPECT_EQ(image.data.at(Pk(i)).version, 2u);
    EXPECT_EQ(image.data.at(Pk(i)).value, 100 + i);
  }
  EXPECT_EQ(image.generation, 3u);
  EXPECT_EQ(image.config_id, 1u);

  // Upgraded in place: legacy files gone, v2 manifest + checkpoint live.
  EXPECT_FALSE(fs::exists(RecoveryManager::WalPath(dir.path)));
  EXPECT_FALSE(fs::exists(SnapshotPath(dir.path)));
  Manifest m(dir.path, 1);
  EXPECT_EQ(m.info().version, 2u);
  ASSERT_TRUE(m.Shard(0).present);
  ASSERT_EQ(m.Shard(0).checkpoints.size(), 1u);
  EXPECT_TRUE(fs::exists(Manifest::CheckpointPath(
      dir.path, 0, m.Shard(0).checkpoints[0])));

  // Second open: no re-migration, same state.
  auto again = MakeDurableBackend(dir.path, o);
  const Image reimage = again->Recover();
  EXPECT_EQ(again->Stats().migrations, 0u);
  EXPECT_EQ(reimage.data.size(), 15u);
}

TEST(Migration, ShardedV1StoreUpgradesShardByShard) {
  ScratchDir dir("mig_sharded");
  RecoveryManager::WriteManifest(dir.path, 2);  // v1 manifest
  Image s1_snapshot;
  s1_snapshot.ApplyWrite("odd_a", 1, 11);
  WriteSnapshotFile(RecoveryManager::ShardSnapshotPath(dir.path, 1),
                    s1_snapshot);
  {
    Wal w0(RecoveryManager::ShardWalPath(dir.path, 0), {});
    WalRecord r;
    r.key = "even_a";
    r.version = 1;
    r.value = 10;
    w0.Append(r);
    r.key = "even_b";
    r.value = 20;
    w0.Append(r);
  }
  {
    Wal w1(RecoveryManager::ShardWalPath(dir.path, 1), {});
    WalRecord r;
    r.key = "odd_a";
    r.version = 2;
    r.value = 12;
    w1.Append(r);
  }

  DurabilityOptions o = SmallThresholds(dir.path);
  auto manifest = std::make_shared<Manifest>(dir.path, 2);
  EXPECT_EQ(manifest->info().version, 1u);
  auto b0 = MakeDurableShardBackend(manifest, o, 0);
  auto b1 = MakeDurableShardBackend(manifest, o, 1);
  const Image i0 = b0->Recover();
  const Image i1 = b1->Recover();
  EXPECT_EQ(b0->Stats().migrations, 1u);
  EXPECT_EQ(b1->Stats().migrations, 1u);
  ASSERT_EQ(i0.data.size(), 2u);
  EXPECT_EQ(i0.data.at("even_a").value, 10);
  EXPECT_EQ(i0.data.at("even_b").value, 20);
  ASSERT_EQ(i1.data.size(), 1u);
  EXPECT_EQ(i1.data.at("odd_a").version, 2u);
  EXPECT_EQ(i1.data.at("odd_a").value, 12);

  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_FALSE(fs::exists(RecoveryManager::ShardWalPath(dir.path, s)));
    EXPECT_FALSE(fs::exists(RecoveryManager::ShardSnapshotPath(dir.path, s)));
  }
  EXPECT_EQ(Manifest::ReadShardCount(dir.path), std::optional<std::size_t>(2));
}

TEST(Migration, TornLegacyTailDiscardedDuringMigration) {
  ScratchDir dir("mig_torn");
  const std::string wal_path = RecoveryManager::WalPath(dir.path);
  {
    Wal wal(wal_path, {});
    WalRecord r;
    r.key = "kept";
    r.version = 1;
    r.value = 42;
    wal.Append(r);
  }
  {
    std::ofstream out(wal_path, std::ios::binary | std::ios::app);
    out << "\xff\xffhalf a frame";
  }
  auto backend = MakeDurableBackend(dir.path, SmallThresholds(dir.path));
  const Image image = backend->Recover();
  EXPECT_EQ(backend->Stats().migrations, 1u);
  EXPECT_EQ(backend->Stats().torn_tails_discarded, 1u);
  ASSERT_EQ(image.data.size(), 1u);
  EXPECT_EQ(image.data.at("kept").value, 42);
}

TEST(Migration, CrashMidMigrationRerunsCleanly) {
  ScratchDir dir("mig_crash");
  {
    Wal wal(RecoveryManager::WalPath(dir.path), {});
    WalRecord r;
    r.key = "survivor";
    r.version = 1;
    r.value = 7;
    wal.Append(r);
  }
  // A crash after the migration wrote its base checkpoint but before the
  // manifest save leaves an orphan ckpt file; the legacy files are still
  // the source of truth and the migration must simply run again.
  fs::create_directories(Manifest::ShardDirPath(dir.path, 0));
  {
    std::ofstream out(Manifest::CheckpointPath(dir.path, 0, 1),
                      std::ios::binary);
    out << "partial checkpoint from the interrupted migration";
  }
  auto backend = MakeDurableBackend(dir.path, SmallThresholds(dir.path));
  const Image image = backend->Recover();
  EXPECT_EQ(backend->Stats().migrations, 1u);
  ASSERT_EQ(image.data.size(), 1u);
  EXPECT_EQ(image.data.at("survivor").value, 7);
  EXPECT_FALSE(fs::exists(RecoveryManager::WalPath(dir.path)));
  // And a third open after the completed migration is a plain v2 open.
  auto again = MakeDurableBackend(dir.path, SmallThresholds(dir.path));
  EXPECT_EQ(again->Recover().data.at("survivor").value, 7);
  EXPECT_EQ(again->Stats().migrations, 0u);
}

}  // namespace
}  // namespace qcnt::storage
