// Tests for availability analysis: closed-form cross-checks, Monte-Carlo
// agreement with exact enumeration, and qualitative claims from the paper's
// introduction (replication improves read availability; quorum choice
// trades read availability against write availability).
#include <gtest/gtest.h>

#include <cmath>

#include "quorum/availability.hpp"

namespace qcnt::quorum {
namespace {

double BinomialTail(int n, int k, double p) {
  // P[X >= k] for X ~ Binomial(n, p).
  double total = 0.0;
  for (int i = k; i <= n; ++i) {
    double coeff = 1.0;
    for (int j = 0; j < i; ++j) {
      coeff *= static_cast<double>(n - j) / static_cast<double>(j + 1);
    }
    // coeff now is C(n, i).
    total += coeff * std::pow(p, i) * std::pow(1 - p, n - i);
  }
  return total;
}

TEST(Availability, RowaClosedForm) {
  const double p = 0.9;
  const ReplicaId n = 5;
  const Availability a = ExactAvailability(ReadOneWriteAllSystem(n), p);
  EXPECT_NEAR(a.read, 1.0 - std::pow(1.0 - p, n), 1e-12);
  EXPECT_NEAR(a.write, std::pow(p, n), 1e-12);
}

TEST(Availability, MajorityClosedForm) {
  const double p = 0.8;
  const ReplicaId n = 5;
  const Availability a = ExactAvailability(MajoritySystem(n), p);
  const double expected = BinomialTail(5, 3, p);
  EXPECT_NEAR(a.read, expected, 1e-12);
  EXPECT_NEAR(a.write, expected, 1e-12);
}

TEST(Availability, PrimaryCopyClosedForm) {
  const Availability a = ExactAvailability(PrimaryCopySystem(7), 0.85);
  EXPECT_NEAR(a.read, 0.85, 1e-12);
  EXPECT_NEAR(a.write, 0.85, 1e-12);
}

TEST(Availability, DegenerateProbabilities) {
  const QuorumSystem s = MajoritySystem(3);
  const Availability zero = ExactAvailability(s, 0.0);
  EXPECT_EQ(zero.read, 0.0);
  const Availability one = ExactAvailability(s, 1.0);
  EXPECT_EQ(one.read, 1.0);
  EXPECT_EQ(one.write, 1.0);
}

TEST(Availability, MonteCarloAgreesWithExact) {
  Rng rng(99);
  const QuorumSystem s = GridSystem(3, 3);
  const double p = 0.7;
  const Availability exact = ExactAvailability(s, p);
  const Availability mc = MonteCarloAvailability(s, p, 60000, rng);
  EXPECT_NEAR(mc.read, exact.read, 0.01);
  EXPECT_NEAR(mc.write, exact.write, 0.01);
}

TEST(Availability, ReplicationBeatsSingleCopyForReads) {
  // The paper's motivating claim: replication improves availability.
  const double p = 0.9;
  for (ReplicaId n : {3, 5, 7}) {
    const Availability maj = ExactAvailability(MajoritySystem(n), p);
    EXPECT_GT(maj.read, p) << "n=" << n;
    EXPECT_GT(maj.write, p) << "n=" << n;
  }
}

TEST(Availability, RowaTradesWritesForReads) {
  const double p = 0.9;
  const ReplicaId n = 5;
  const Availability rowa = ExactAvailability(ReadOneWriteAllSystem(n), p);
  const Availability maj = ExactAvailability(MajoritySystem(n), p);
  EXPECT_GT(rowa.read, maj.read);
  EXPECT_LT(rowa.write, maj.write);
}

TEST(Availability, MonotoneInUpProbability) {
  const QuorumSystem s = MajoritySystem(7);
  double prev_read = -1.0, prev_write = -1.0;
  for (double p = 0.0; p <= 1.0001; p += 0.1) {
    const Availability a = ExactAvailability(s, std::min(p, 1.0));
    EXPECT_GE(a.read, prev_read - 1e-12);
    EXPECT_GE(a.write, prev_write - 1e-12);
    prev_read = a.read;
    prev_write = a.write;
  }
}

TEST(Availability, CostFullyUp) {
  const OperationCost rowa = FullyUpCost(ReadOneWriteAllSystem(5));
  EXPECT_EQ(rowa.read_messages, 1.0);
  EXPECT_EQ(rowa.write_messages, 6.0);  // 1 (read phase) + 5 (write phase)

  const OperationCost maj = FullyUpCost(MajoritySystem(5));
  EXPECT_EQ(maj.read_messages, 3.0);
  EXPECT_EQ(maj.write_messages, 6.0);
}

TEST(Availability, HierarchicalCheaperThanMajorityAtScale) {
  const QuorumSystem hier = HierarchicalMajoritySystem(3, 3);  // n = 27
  const QuorumSystem maj = MajoritySystem(27);
  const OperationCost hc = FullyUpCost(hier);
  const OperationCost mc = FullyUpCost(maj);
  EXPECT_LT(hc.read_messages, mc.read_messages);  // 8 < 14
}

TEST(Availability, ExpectedCostConditionedOnSuccess) {
  Rng rng(5);
  const OperationCost c =
      ExpectedCost(MajoritySystem(5), 0.9, 20000, rng);
  // The picked quorum is always exactly the majority size.
  EXPECT_NEAR(c.read_messages, 3.0, 1e-9);
  EXPECT_NEAR(c.write_messages, 6.0, 1e-9);
}

TEST(Availability, GridWriteRequiresFullColumn) {
  const QuorumSystem s = GridSystem(2, 2);
  // Up replicas {0, 1} form the top row: read quorum yes, write quorum no
  // (no full column up).
  const std::uint64_t top_row = 0b0011;
  EXPECT_TRUE(s.has_read(top_row));
  EXPECT_FALSE(s.has_write(top_row));
  // Up replicas {0, 2} form column 0: both read (covers col 0? no —
  // column 1 has no live replica) — actually a read quorum needs one
  // replica per column, so {0,2} lacks column 1.
  EXPECT_FALSE(s.has_read(0b0101));
  // Three up replicas {0,1,2}: column 0 fully up + cover of column 1.
  EXPECT_TRUE(s.has_write(0b0111));
}

}  // namespace
}  // namespace qcnt::quorum

namespace qcnt::quorum {
namespace {

TEST(Availability, TreeQuorumReadBeatsWriteAvailability) {
  // Writes require the root, so write availability is capped by p; reads
  // survive root failure via child majorities.
  const QuorumSystem s = TreeQuorumSystem(3, 2);
  const double p = 0.9;
  const Availability a = ExactAvailability(s, p);
  EXPECT_GT(a.read, p);
  EXPECT_LE(a.write, p + 1e-12);
}

TEST(Availability, TreeQuorumMonteCarloAgrees) {
  Rng rng(41);
  const QuorumSystem s = TreeQuorumSystem(3, 3);
  const Availability exact = ExactAvailability(s, 0.85);
  const Availability mc = MonteCarloAvailability(s, 0.85, 60000, rng);
  EXPECT_NEAR(mc.read, exact.read, 0.01);
  EXPECT_NEAR(mc.write, exact.write, 0.01);
}

}  // namespace
}  // namespace qcnt::quorum
