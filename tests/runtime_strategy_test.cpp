// Generalized quorum strategies in the threaded runtime.
//
// The seed hardcoded majority at every layer above src/quorum; these
// tests pin the strategy-generic contract end to end:
//   - a store constructed under any descriptor-derivable strategy serves
//     reads/writes correctly, before and after crash/recover, with the
//     crash-window behavior predicted by the strategy's own predicates;
//   - behavioral availability over every up-set matches
//     quorum::ExactAvailability for non-majority systems;
//   - first attempts target minimal quorums (messages per op drop vs the
//     historical full broadcast), escalating only when needed;
//   - a client whose table cannot resolve a config id learns the full
//     configuration from the self-describing wire payload;
//   - the StrategyAdvisor switches strategies live, under traffic, with
//     hysteresis;
//   - membership change re-derives the serving strategy (3 -> 5 -> 3
//     under ROWA stays ROWA) or refuses with a typed error (a full 2x2
//     grid cannot grow to 5).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "quorum/availability.hpp"
#include "quorum/strategy_descriptor.hpp"
#include "reconfig/catchup.hpp"
#include "runtime/store.hpp"
#include "runtime/strategy_advisor.hpp"

namespace qcnt::runtime {
namespace {

using namespace std::chrono_literals;
using reconfig::AddReplica;
using reconfig::MembershipReport;
using reconfig::RemoveReplica;

struct StrategyCase {
  const char* spec;
  std::size_t replicas;
};

std::string CaseName(const ::testing::TestParamInfo<StrategyCase>& info) {
  std::string name = info.param.spec;
  for (char& c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)))) c = '_';
  }
  return name;
}

class StrategySweep : public ::testing::TestWithParam<StrategyCase> {};

// One store per strategy: plain traffic, then a crash window whose
// read/write behavior must match the strategy's own has_read/has_write
// over the surviving up-set, then recovery and a full audit.
TEST_P(StrategySweep, ServesAndSurvivesCrashAsPredicted) {
  const StrategyCase& param = GetParam();
  StoreOptions options;
  options.replicas = param.replicas;
  options.strategy = param.spec;
  options.client_options.timeout = 150ms;
  ReplicatedStore store(std::move(options));

  // The installed config 0 is exactly the parsed descriptor.
  const auto cfg = store.ConfigTableRef()->At(0);
  EXPECT_EQ(cfg->system.descriptor, quorum::ParseStrategy(param.spec));
  EXPECT_EQ(cfg->members.size(), param.replicas);

  auto client = store.MakeClient();
  for (int k = 0; k < 8; ++k) {
    const std::string key = "k" + std::to_string(k);
    ASSERT_TRUE(client->Write(key, 100 + k).ok) << param.spec << " " << key;
    const ClientResult r = client->Read(key);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, 100 + k);
  }

  // Crash the highest-id replica; the strategy's own predicates say what
  // must keep working. (For weighted this crashes a 1-vote member, for
  // tree a leaf, for grid a cell — reads stay available in every case
  // here; writes stay available except under ROWA.)
  const NodeId down = static_cast<NodeId>(param.replicas - 1);
  const std::uint64_t up_mask =
      cfg->member_mask & ~(1ull << down);
  const bool read_ok = cfg->system.has_read(up_mask);
  const bool write_ok = cfg->system.has_write(up_mask);
  store.Crash(down);

  const ClientResult cr = client->Read("k0");
  EXPECT_EQ(cr.ok, read_ok) << param.spec << " read under crash";
  if (cr.ok) EXPECT_EQ(cr.value, 100);
  const ClientResult cw = client->Write("k0", 555);
  EXPECT_EQ(cw.ok, write_ok) << param.spec << " write under crash";

  store.Recover(down);
  for (int k = 0; k < 8; ++k) {
    const std::string key = "k" + std::to_string(k);
    ASSERT_TRUE(client->Write(key, 200 + k).ok) << param.spec << " " << key;
    const ClientResult r = client->Read(key);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, 200 + k);
  }
  EXPECT_EQ(client->DivergencesObserved(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, StrategySweep,
    ::testing::Values(StrategyCase{"majority", 5}, StrategyCase{"rowa", 5},
                      StrategyCase{"grid:2x2", 4},
                      StrategyCase{"tree:3,2", 4},
                      StrategyCase{"weighted:3,1,1,1,1:3:5", 5}),
    CaseName);

// Behavioral availability equals the analytic predicate on every up-set,
// for two non-majority systems. At up_prob = 1/2 every up-set is equally
// likely, so the fraction of serving up-sets must equal ExactAvailability
// exactly — the store is the predicate, run through real crashes.
class AvailabilityUnderCrash
    : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(AvailabilityUnderCrash, MatchesExactAvailabilityOnEveryUpSet) {
  const StrategyCase& param = GetParam();
  const std::size_t n = param.replicas;
  StoreOptions options;
  options.replicas = n;
  options.strategy = param.spec;
  options.client_options.timeout = 60ms;
  ReplicatedStore store(std::move(options));
  const auto cfg = store.ConfigTableRef()->At(0);
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("x", 7).ok);

  std::size_t read_served = 0, write_served = 0;
  for (std::uint64_t up = 0; up < (1ull << n); ++up) {
    for (std::size_t r = 0; r < n; ++r) {
      if ((up & (1ull << r)) == 0) store.Crash(r);
    }
    const ClientResult rr = client->Read("x");
    EXPECT_EQ(rr.ok, cfg->system.has_read(up))
        << param.spec << " read, up-set " << up;
    const ClientResult rw = client->Write("x", 7);
    EXPECT_EQ(rw.ok, cfg->system.has_write(up))
        << param.spec << " write, up-set " << up;
    read_served += rr.ok ? 1 : 0;
    write_served += rw.ok ? 1 : 0;
    for (std::size_t r = 0; r < n; ++r) {
      if ((up & (1ull << r)) == 0) store.Recover(r);
    }
  }
  const quorum::Availability exact =
      quorum::ExactAvailability(cfg->system, 0.5);
  const double denom = static_cast<double>(1ull << n);
  EXPECT_DOUBLE_EQ(static_cast<double>(read_served) / denom, exact.read);
  EXPECT_DOUBLE_EQ(static_cast<double>(write_served) / denom, exact.write);
}

INSTANTIATE_TEST_SUITE_P(
    NonMajoritySystems, AvailabilityUnderCrash,
    ::testing::Values(StrategyCase{"grid:2x2", 4},
                      StrategyCase{"tree:3,2", 4}),
    CaseName);

// The read-phase over-fanout fix: first attempts contact a minimal read
// quorum, not every member. Counting transport messages per logical read
// pins it — under ROWA a read is 1 request + 1 response; under majority-
// of-5 it is 3 + 3; the historical broadcast cost 5 + 5 regardless.
TEST(StrategyTargeting, MessagesPerReadDropBelowBroadcast) {
  constexpr int kReads = 100;
  const auto messages_per_read = [](const char* spec) {
    StoreOptions options;
    options.replicas = 5;
    options.strategy = spec;
    ReplicatedStore store(std::move(options));
    auto client = store.MakeClient();
    EXPECT_TRUE(client->Write("x", 1).ok);
    const std::uint64_t before = store.MessagesSent();
    for (int i = 0; i < kReads; ++i) {
      EXPECT_TRUE(client->Read("x").ok);
    }
    EXPECT_EQ(client->Escalations(), 0u) << spec;
    return static_cast<double>(store.MessagesSent() - before) / kReads;
  };
  // Broadcast read = 10 messages round trip. Minimal quorums: allow one
  // message of slack for stragglers from earlier ops.
  EXPECT_LE(messages_per_read("rowa"), 3.0);
  EXPECT_LE(messages_per_read("majority"), 7.0);
  EXPECT_LT(messages_per_read("majority"), 10.0);
}

// Escalation: when the believed-up set goes stale (a replica in the
// minimal quorum is crashed but the client has not learned it — the
// in-process bus refuses the send, so the client repicks immediately),
// operations still complete against the surviving members.
TEST(StrategyTargeting, RepicksAroundCrashedMinimalQuorumMembers) {
  StoreOptions options;
  options.replicas = 5;
  options.strategy = "majority";
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("x", 1).ok);
  // The minimal majority pick is the lowest ids; crash inside it.
  store.Crash(0);
  store.Crash(1);
  const ClientResult r = client->Read("x");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 1);
  ASSERT_TRUE(client->Write("x", 2).ok);
  EXPECT_EQ(client->Read("x").value, 2);
}

// A client holding a foreign ConfigTable (a separate process's view:
// knows the initial config, not the one a coordinator appended later)
// learns the new configuration from the self-describing payload on the
// fence NACK and finishes its write under it.
TEST(WireConfig, FencedClientInstallsConfigFromPayload) {
  StoreOptions options;
  options.replicas = 3;
  options.strategy = "majority";
  options.max_clients = 4;
  ReplicatedStore store(std::move(options));
  auto native = store.MakeClient();
  ASSERT_TRUE(native->Write("x", 1).ok);

  // Switch the store to ROWA: appends config 1 to the store's table and
  // stamps generation 1 through the replicas.
  StrategyAdvisor advisor(store, StrategyAdvisorOptions{});
  std::string error;
  ASSERT_TRUE(advisor.SwitchTo(
      quorum::StrategyDescriptor{quorum::StrategyKind::kReadOneWriteAll},
      &error))
      << error;
  ASSERT_EQ(store.CurrentConfigId(), 1u);

  // A foreign client: same transport, own table that only knows the
  // initial configuration. Uses the last client slot directly (the store
  // sized its transport for max_clients nodes; MakeClient was called
  // once, so this id is unused).
  auto foreign_table = std::make_shared<ConfigTable>(
      std::vector<quorum::QuorumSystem>{quorum::MajoritySystem(3)});
  QuorumClient::Options copts;
  copts.max_attempts = 3;
  QuorumClient foreign(store.TransportRef(),
                       static_cast<NodeId>(3 + 4 - 1), foreign_table, 0,
                       copts);
  ASSERT_EQ(foreign_table->TryAt(1), nullptr);

  // Its write under the stale generation gets fenced; the NACK carries
  // the full configuration, the client installs it and retries under
  // ROWA (write quorum = all three replicas).
  const ClientResult r = foreign.Write("x", 2);
  ASSERT_TRUE(r.ok) << ToString(r.status);
  EXPECT_EQ(foreign.BelievedConfig(), 1u);
  const auto learned = foreign_table->TryAt(1);
  ASSERT_NE(learned, nullptr);
  EXPECT_EQ(learned->system.descriptor.kind,
            quorum::StrategyKind::kReadOneWriteAll);
  EXPECT_EQ(learned->members, store.Members());
  EXPECT_EQ(native->Read("x").value, 2);
}

// The advisor closes the §4 loop: a read-heavy phase flips the store to
// the read-optimized strategy, a write-heavy phase flips it back, and
// the hysteresis band keeps a mixed workload from flapping.
TEST(StrategyAdvisorLoop, SwitchesOnWorkloadMixWithHysteresis) {
  StoreOptions options;
  options.replicas = 3;
  options.strategy = "majority";
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("x", 1).ok);

  StrategyAdvisorOptions aopts;
  aopts.poll_interval = 10ms;
  aopts.min_ops_per_window = 16;
  aopts.cooldown = 30ms;
  StrategyAdvisor advisor(store, aopts);
  advisor.Start();

  const auto current_kind = [&store] {
    return store.ConfigTableRef()
        ->At(store.CurrentConfigId())
        ->system.descriptor.kind;
  };
  const auto pump_until = [&](quorum::StrategyKind want, double read_frac) {
    qcnt::Rng rng(42);
    for (int spin = 0; spin < 400; ++spin) {
      for (int i = 0; i < 32; ++i) {
        if (rng.NextDouble() < read_frac) {
          client->Read("x");
        } else {
          client->Write("x", i);
        }
      }
      if (current_kind() == want) return true;
    }
    return false;
  };

  // Pure reads -> ROWA; heavy writes -> back to majority.
  EXPECT_TRUE(pump_until(quorum::StrategyKind::kReadOneWriteAll, 1.0))
      << "advisor never switched to the read-optimized strategy";
  EXPECT_TRUE(pump_until(quorum::StrategyKind::kMajority, 0.2))
      << "advisor never switched back to the balanced strategy";
  advisor.Stop();
  const StrategyAdvisor::Stats stats = advisor.AdvisorStats();
  EXPECT_GE(stats.switches, 2u);

  // The store still serves, and the data survived both switches.
  ASSERT_TRUE(client->Write("x", 99).ok);
  EXPECT_EQ(client->Read("x").value, 99);
}

// Membership change under a non-majority strategy: 3 -> 5 -> 3 under
// ROWA must come back ROWA at every step (the seed silently installed
// majority), and acked data must survive the whole cycle.
TEST(StrategyMembership, GrowShrinkUnderRowaKeepsStrategy) {
  StoreOptions options;
  options.replicas = 3;
  options.strategy = "rowa";
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(client->Write("k" + std::to_string(k), 10 + k).ok);
  }

  const auto current_kind = [&store] {
    return store.ConfigTableRef()
        ->At(store.CurrentConfigId())
        ->system.descriptor.kind;
  };

  const MembershipReport g1 = AddReplica(store);
  ASSERT_TRUE(g1.ok) << g1.error;
  EXPECT_EQ(current_kind(), quorum::StrategyKind::kReadOneWriteAll);
  const MembershipReport g2 = AddReplica(store);
  ASSERT_TRUE(g2.ok) << g2.error;
  EXPECT_EQ(store.Members().size(), 5u);
  EXPECT_EQ(current_kind(), quorum::StrategyKind::kReadOneWriteAll);

  const MembershipReport s1 = RemoveReplica(store, 0);
  ASSERT_TRUE(s1.ok) << s1.error;
  const MembershipReport s2 = RemoveReplica(store, 1);
  ASSERT_TRUE(s2.ok) << s2.error;
  EXPECT_EQ(store.Members().size(), 3u);
  EXPECT_EQ(current_kind(), quorum::StrategyKind::kReadOneWriteAll);

  // ROWA over {2, j1, j2}: a read quorum is any one member, so data is
  // only safe if every install reached all members — the write-all leg
  // across two joins and two removals.
  auto audit = store.MakeClient();
  for (int k = 0; k < 4; ++k) {
    const ClientResult r = audit->Read("k" + std::to_string(k));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, 10 + k);
  }
}

// A strategy whose parameters pin the universe size refuses membership
// change with a typed error instead of silently downgrading to majority
// — and the store keeps serving under the unchanged configuration.
TEST(StrategyMembership, GridRefusesGrowthWithTypedError) {
  StoreOptions options;
  options.replicas = 4;
  options.strategy = "grid:2x2";
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("x", 1).ok);

  const MembershipReport grow = AddReplica(store);
  EXPECT_FALSE(grow.ok);
  EXPECT_NE(grow.error.find("cannot span"), std::string::npos)
      << grow.error;
  EXPECT_EQ(store.Members().size(), 4u);
  EXPECT_EQ(store.ConfigTableRef()
                ->At(store.CurrentConfigId())
                ->system.descriptor.kind,
            quorum::StrategyKind::kGrid);
  ASSERT_TRUE(client->Write("x", 2).ok);
  EXPECT_EQ(client->Read("x").value, 2);
}

// Construction-time validation is typed and fail-fast for explicit
// strategy specs, and tolerant (fall back to majority) for the
// QCNT_STRATEGY environment override.
TEST(StrategyConfig, ExplicitSpecFailsFastEnvFallsBack) {
  StoreOptions bad;
  bad.replicas = 5;
  bad.strategy = "grid:2x2";  // pins 4 nodes, store has 5
  EXPECT_THROW(ReplicatedStore{std::move(bad)},
               quorum::StrategyConfigError);

  StoreOptions garbage;
  garbage.replicas = 3;
  garbage.strategy = "no-such-strategy";
  EXPECT_THROW(ReplicatedStore{std::move(garbage)},
               quorum::StrategyConfigError);

  StoreOptions both;
  both.replicas = 3;
  both.strategy = "majority";
  both.configs.push_back(quorum::MajoritySystem(3));
  EXPECT_THROW(ReplicatedStore{std::move(both)},
               quorum::StrategyConfigError);

  ::setenv("QCNT_STRATEGY", "grid:9x9", 1);  // cannot fit 3 replicas
  {
    StoreOptions options;
    options.replicas = 3;
    ReplicatedStore store(std::move(options));
    EXPECT_EQ(store.ConfigTableRef()->At(0)->system.descriptor.kind,
              quorum::StrategyKind::kMajority);
  }
  ::setenv("QCNT_STRATEGY", "rowa", 1);
  {
    StoreOptions options;
    options.replicas = 3;
    ReplicatedStore store(std::move(options));
    EXPECT_EQ(store.ConfigTableRef()->At(0)->system.descriptor.kind,
              quorum::StrategyKind::kReadOneWriteAll);
    auto client = store.MakeClient();
    ASSERT_TRUE(client->Write("x", 1).ok);
    EXPECT_EQ(client->Read("x").value, 1);
  }
  ::unsetenv("QCNT_STRATEGY");
}

// The async pipelined client under a non-majority strategy: same
// correctness envelope, now with targeted batches.
TEST(StrategyAsync, PipelinedClientServesUnderRowa)
{
  StoreOptions options;
  options.replicas = 4;
  options.strategy = "rowa";
  ReplicatedStore store(std::move(options));
  auto client = store.MakeAsyncClient(
      AsyncQuorumClient::Options{.window = 8, .max_batch = 4});
  std::vector<std::pair<OpFuture, std::int64_t>> expected;
  for (int i = 1; i <= 40; ++i) {
    const std::string key = "k" + std::to_string(i % 5);
    client->SubmitWrite(key, i);
    expected.emplace_back(client->SubmitRead(key), i);
  }
  ASSERT_TRUE(client->Drain());
  for (auto& [future, want] : expected) {
    const ClientResult r = future.Get();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, want);
  }
  EXPECT_EQ(client->ClientStats().divergences_observed, 0u);
}

}  // namespace
}  // namespace qcnt::runtime
