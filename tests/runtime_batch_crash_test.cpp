// Crash-during-batch under the durable backend: a replica that fail-stops
// while batched writes stream at it must recover exactly a *prefix* of
// each item's write sequence — no torn interleavings (a version present
// implies every earlier version of that item was applied here first), no
// invented state, and no acked-but-lost writes (anything the quorum acked
// survives a minority crash because the surviving quorum members carry
// it — Lemma 8 under real state loss, batched edition).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>

#include "runtime/sharding.hpp"
#include "runtime/store.hpp"
#include "storage/manifest.hpp"
#include "storage/recovery.hpp"

namespace qcnt::runtime {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path((fs::path("runtime_batch_crash_scratch") / tag).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

TEST(BatchCrash, RecoveryYieldsPerItemPrefixOfTheBatchStream) {
  ScratchDir scratch("prefix");
  constexpr std::size_t kReplicas = 3;
  constexpr std::size_t kOps = 300;
  constexpr std::size_t kCrashAt = 150;
  const std::vector<std::string> keys = {"a", "b", "c", "d"};

  StoreOptions options;
  options.replicas = kReplicas;
  options.shards_per_replica = 1;  // single segment: the whole stream
  options.durability = storage::DurabilityOptions{
      .directory = scratch.path,
      .fsync = storage::FsyncPolicy::kAlways,
      .group_commit_window = 500us,
      .checkpoint_tail_bytes = 64u << 20,  // never checkpoint mid-test
      .segment_bytes = 64u << 20,          // ... and never rotate
  };
  ReplicatedStore store(std::move(options));
  auto client = store.MakeAsyncClient(
      AsyncQuorumClient::Options{
          .window = 32, .max_batch = 16,
          // The test audits one replica's WAL stream, so every write
          // must reach every replica — disable minimal-quorum targeting.
          .target_minimal = false});

  // value written at version v of key k is Payload(k, v): recovered state
  // can be validated without any side table.
  const auto payload = [&](std::size_t key_idx, std::uint64_t version) {
    return static_cast<std::int64_t>(key_idx * 1'000'000 + version);
  };

  std::map<std::string, std::uint64_t> writes_per_key;
  std::vector<OpFuture> futures;
  for (std::size_t i = 0; i < kOps; ++i) {
    const std::size_t key_idx = i % keys.size();
    const std::string& key = keys[key_idx];
    const std::uint64_t version = ++writes_per_key[key];
    futures.push_back(
        client->SubmitWrite(key, payload(key_idx, version)));
    if (i == kCrashAt) {
      // Mid-stream, mid-pipeline: batches are queued at and being applied
      // by replica 2 right now. Fail-stop it — the mailbox backlog dies,
      // volatile state is wiped, only its WAL survives.
      store.Crash(2);
    }
  }
  // The surviving majority {0, 1} acks everything.
  ASSERT_TRUE(client->Drain());
  for (auto& f : futures) ASSERT_TRUE(f.Get().ok);

  store.Recover(2);

  // 1. The recovered replica's WAL is, per item, a gapless prefix of the
  //    submitted write sequence: versions 1..k in order, correct payloads,
  //    nothing interleaved out of order and nothing past the crash point
  //    it could not have applied.
  std::map<std::string, std::uint64_t> last_version;
  // No rotation or checkpoint at these thresholds: the shard's whole
  // stream is its first segment (file id 1).
  const std::string wal_path =
      storage::Manifest::SegmentPath(scratch.path + "/replica_2", 0, 1);
  std::uint64_t replayed = 0;
  storage::Wal::Replay(wal_path, [&](const storage::WalRecord& rec) {
    ASSERT_EQ(rec.type, storage::WalRecord::Type::kWrite);
    const std::uint64_t expect = last_version[rec.key] + 1;
    ASSERT_EQ(rec.version, expect)
        << "torn interleaving: key " << rec.key << " jumped to version "
        << rec.version;
    const auto key_idx = static_cast<std::size_t>(
        std::find(keys.begin(), keys.end(), rec.key) - keys.begin());
    ASSERT_LT(key_idx, keys.size());
    ASSERT_EQ(rec.value, payload(key_idx, rec.version));
    ASSERT_LE(rec.version, writes_per_key[rec.key]);
    last_version[rec.key] = rec.version;
    ++replayed;
  });
  ASSERT_GT(replayed, 0u);  // the crash did not pre-date every batch
  ASSERT_LT(replayed, kOps);  // ... and genuinely cut the stream short

  // 2. The recovered image matches the WAL prefix exactly.
  const ReplicaSnapshot snap = store.ReplicaPeek(2);
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const auto it = snap.image.data.find(keys[k]);
    const storage::Versioned v =
        it == snap.image.data.end() ? storage::Versioned{} : it->second;
    EXPECT_EQ(v.version, last_version[keys[k]]);
    if (v.version > 0) EXPECT_EQ(v.value, payload(k, v.version));
  }

  // 3. No acked-but-lost writes: quorum reads still return every item's
  //    final acked value even though replica 2 lost its tail.
  auto reader = store.MakeClient();
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const ClientResult r = reader->Read(keys[k]);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.version, writes_per_key[keys[k]]);
    EXPECT_EQ(r.value, payload(k, writes_per_key[keys[k]]));
  }

  // The stream really went through the batch path: multi-record appends
  // reached the durable layer on the survivors.
  EXPECT_GT(store.ReplicaStorageStats(0).batch_appends, 0u);
}

// Sharded edition of the prefix property: with 4 worker shards the crash
// cuts 4 independent WAL segments at 4 independent points, but each
// segment must still be a per-item gapless prefix, every item must live in
// exactly the segment its hash names, and the merged recovery must equal
// what the segments say.
TEST(BatchCrash, ShardedRecoveryYieldsPerItemPrefix) {
  ScratchDir scratch("sharded_prefix");
  constexpr std::size_t kReplicas = 3;
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kOps = 400;
  constexpr std::size_t kCrashAt = 200;
  // Enough keys that every shard owns at least one.
  std::vector<std::string> keys;
  for (int i = 0; i < 12; ++i) keys.push_back("key" + std::to_string(i));

  StoreOptions options;
  options.replicas = kReplicas;
  options.shards_per_replica = kShards;
  options.durability = storage::DurabilityOptions{
      .directory = scratch.path,
      .fsync = storage::FsyncPolicy::kAlways,
      .group_commit_window = 500us,
      .checkpoint_tail_bytes = 64u << 20,  // never checkpoint mid-test
      .segment_bytes = 64u << 20,          // ... and never rotate
  };
  ReplicatedStore store(std::move(options));
  ASSERT_EQ(store.ShardsPerReplica(), kShards);
  auto client = store.MakeAsyncClient(
      AsyncQuorumClient::Options{
          .window = 32, .max_batch = 16,
          // The test audits one replica's WAL stream, so every write
          // must reach every replica — disable minimal-quorum targeting.
          .target_minimal = false});

  const auto payload = [&](std::size_t key_idx, std::uint64_t version) {
    return static_cast<std::int64_t>(key_idx * 1'000'000 + version);
  };

  std::map<std::string, std::uint64_t> writes_per_key;
  std::vector<OpFuture> futures;
  for (std::size_t i = 0; i < kOps; ++i) {
    const std::size_t key_idx = i % keys.size();
    const std::string& key = keys[key_idx];
    const std::uint64_t version = ++writes_per_key[key];
    futures.push_back(client->SubmitWrite(key, payload(key_idx, version)));
    if (i == kCrashAt) store.Crash(2);
  }
  ASSERT_TRUE(client->Drain());
  for (auto& f : futures) ASSERT_TRUE(f.Get().ok);

  store.Recover(2);

  // 1. Every segment is a per-item gapless prefix holding only the keys
  //    its shard owns.
  const std::string replica_dir = scratch.path + "/replica_2";
  std::map<std::string, std::uint64_t> last_version;
  std::uint64_t replayed = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::string wal_path =
        storage::Manifest::SegmentPath(replica_dir, s, 1);
    ASSERT_TRUE(fs::exists(wal_path)) << wal_path;
    storage::Wal::Replay(wal_path, [&](const storage::WalRecord& rec) {
      ASSERT_EQ(rec.type, storage::WalRecord::Type::kWrite);
      ASSERT_EQ(ShardForKey(rec.key, kShards), s)
          << "key " << rec.key << " logged in the wrong segment";
      const std::uint64_t expect = last_version[rec.key] + 1;
      ASSERT_EQ(rec.version, expect)
          << "torn interleaving: key " << rec.key << " jumped to version "
          << rec.version;
      ASSERT_LE(rec.version, writes_per_key[rec.key]);
      last_version[rec.key] = rec.version;
      ++replayed;
    });
  }
  ASSERT_GT(replayed, 0u);
  ASSERT_LT(replayed, kOps);

  // 2. RecoverReplica's merged image agrees with the segments.
  const auto merged =
      storage::RecoveryManager(replica_dir).RecoverReplica();
  ASSERT_TRUE(merged.ok) << merged.error;
  EXPECT_EQ(merged.shard_count, kShards);
  for (const auto& [key, version] : last_version) {
    if (version == 0) continue;
    const auto it = merged.image.data.find(key);
    ASSERT_NE(it, merged.image.data.end()) << key;
    EXPECT_EQ(it->second.version, version) << key;
  }

  // 3. The live recovered replica serves exactly that state, and quorum
  //    reads still return every acked value.
  const ReplicaSnapshot snap = store.ReplicaPeek(2);
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const auto it = snap.image.data.find(keys[k]);
    const storage::Versioned v =
        it == snap.image.data.end() ? storage::Versioned{} : it->second;
    EXPECT_EQ(v.version, last_version[keys[k]]) << keys[k];
    if (v.version > 0) EXPECT_EQ(v.value, payload(k, v.version));
  }
  auto reader = store.MakeClient();
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const ClientResult r = reader->Read(keys[k]);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.version, writes_per_key[keys[k]]);
    EXPECT_EQ(r.value, payload(k, writes_per_key[keys[k]]));
  }
}

// A WAL segment that disappears while the replica is down must fail
// recovery loudly — both through RecoverReplica and through the store's
// own Recover path — never silently resurrect a subset of acked state.
TEST(BatchCrash, MissingShardSegmentIsRejectedNotSilentlyDropped) {
  ScratchDir scratch("missing_segment");
  constexpr std::size_t kShards = 4;
  StoreOptions options;
  options.replicas = 3;
  options.shards_per_replica = kShards;
  options.durability = storage::DurabilityOptions{
      .directory = scratch.path,
      .fsync = storage::FsyncPolicy::kAlways,
  };
  ReplicatedStore store(std::move(options));
  auto client = store.MakeAsyncClient();
  for (int i = 0; i < 32; ++i) {
    client->SubmitWrite("key" + std::to_string(i % 8), i);
  }
  ASSERT_TRUE(client->Drain());

  store.Crash(2);
  const std::string replica_dir = scratch.path + "/replica_2";
  fs::remove(storage::Manifest::SegmentPath(replica_dir, 2, 1));

  const auto merged =
      storage::RecoveryManager(replica_dir).RecoverReplica();
  EXPECT_FALSE(merged.ok);
  EXPECT_NE(merged.error.find("shard_2/seg_1.log"), std::string::npos)
      << merged.error;
  EXPECT_ANY_THROW(store.Recover(2));
}

// A corrupt manifest is equally fatal: without a trustworthy shard count
// the segment set cannot be proven complete.
TEST(BatchCrash, CorruptManifestIsRejected) {
  ScratchDir scratch("corrupt_manifest");
  StoreOptions options;
  options.replicas = 1;
  options.shards_per_replica = 2;
  options.durability =
      storage::DurabilityOptions{.directory = scratch.path};
  {
    ReplicatedStore store(options);
    auto client = store.MakeClient();
    ASSERT_TRUE(client->Write("x", 1).ok);
  }
  const std::string replica_dir = scratch.path + "/replica_0";
  {
    std::ofstream out(storage::RecoveryManager::ManifestPath(replica_dir),
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  EXPECT_FALSE(storage::RecoveryManager(replica_dir).RecoverReplica().ok);
  EXPECT_ANY_THROW(ReplicatedStore{std::move(options)});
}

// Reopening a directory with a different shard count must be rejected:
// the key→segment striping is pinned at creation and not self-rebalancing.
TEST(BatchCrash, ShardCountChangeIsRejected) {
  ScratchDir scratch("count_change");
  StoreOptions options;
  options.replicas = 1;
  options.shards_per_replica = 4;
  options.durability =
      storage::DurabilityOptions{.directory = scratch.path};
  {
    ReplicatedStore store(options);
    auto client = store.MakeClient();
    ASSERT_TRUE(client->Write("x", 1).ok);
  }
  options.shards_per_replica = 2;
  EXPECT_ANY_THROW(ReplicatedStore{std::move(options)});
}

// A torn tail in one segment is a normal crash artifact, not corruption:
// recovery truncates that segment's tail and reports it, while the other
// segments replay in full.
TEST(BatchCrash, TornSegmentTailIsTruncatedAndReported) {
  ScratchDir scratch("torn_segment");
  constexpr std::size_t kShards = 2;
  StoreOptions options;
  options.replicas = 1;
  options.shards_per_replica = kShards;
  options.durability =
      storage::DurabilityOptions{.directory = scratch.path};
  // Two keys in different shards, so both segments hold data.
  std::string key_a, key_b;
  for (int i = 0; key_a.empty() || key_b.empty(); ++i) {
    const std::string k = "key" + std::to_string(i);
    if (ShardForKey(k, kShards) == 0) {
      if (key_a.empty()) key_a = k;
    } else if (key_b.empty()) {
      key_b = k;
    }
  }
  {
    ReplicatedStore store(options);
    auto client = store.MakeClient();
    ASSERT_TRUE(client->Write(key_a, 10).ok);
    ASSERT_TRUE(client->Write(key_b, 20).ok);
    ASSERT_TRUE(client->Write(key_b, 21).ok);
  }
  const std::string replica_dir = scratch.path + "/replica_0";
  const std::string torn =
      storage::Manifest::SegmentPath(replica_dir, 1, 1);
  fs::resize_file(torn, fs::file_size(torn) - 2);

  const auto merged =
      storage::RecoveryManager(replica_dir).RecoverReplica();
  ASSERT_TRUE(merged.ok) << merged.error;
  EXPECT_EQ(merged.torn_segments, 1u);
  // Shard 0's key is intact; shard 1 lost exactly its torn final record.
  EXPECT_EQ(merged.image.data.at(key_a).value, 10);
  EXPECT_EQ(merged.image.data.at(key_b).value, 20);

  ReplicatedStore store(std::move(options));
  EXPECT_EQ(store.ReplicaStorageStats(0).torn_tails_discarded, 1u);
}

TEST(BatchCrash, CrashBeforeAnyBatchRecoversEmpty) {
  ScratchDir scratch("empty");
  StoreOptions options;
  options.replicas = 3;
  options.durability = storage::DurabilityOptions{
      .directory = scratch.path,
      .fsync = storage::FsyncPolicy::kAlways,
  };
  ReplicatedStore store(std::move(options));
  store.Crash(2);
  auto client = store.MakeAsyncClient();
  for (int i = 1; i <= 8; ++i) client->SubmitWrite("k", i);
  ASSERT_TRUE(client->Drain());
  store.Recover(2);
  const ReplicaSnapshot snap = store.ReplicaPeek(2);
  EXPECT_TRUE(snap.image.data.empty());
  // ... and the recovered replica heals through the normal quorum path.
  auto reader = store.MakeClient();
  EXPECT_EQ(reader->Read("k").value, 8);
}

}  // namespace
}  // namespace qcnt::runtime
