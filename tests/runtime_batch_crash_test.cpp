// Crash-during-batch under the durable backend: a replica that fail-stops
// while batched writes stream at it must recover exactly a *prefix* of
// each item's write sequence — no torn interleavings (a version present
// implies every earlier version of that item was applied here first), no
// invented state, and no acked-but-lost writes (anything the quorum acked
// survives a minority crash because the surviving quorum members carry
// it — Lemma 8 under real state loss, batched edition).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "runtime/store.hpp"
#include "storage/recovery.hpp"

namespace qcnt::runtime {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path((fs::path("runtime_batch_crash_scratch") / tag).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

TEST(BatchCrash, RecoveryYieldsPerItemPrefixOfTheBatchStream) {
  ScratchDir scratch("prefix");
  constexpr std::size_t kReplicas = 3;
  constexpr std::size_t kOps = 300;
  constexpr std::size_t kCrashAt = 150;
  const std::vector<std::string> keys = {"a", "b", "c", "d"};

  StoreOptions options;
  options.replicas = kReplicas;
  options.durability = storage::DurabilityOptions{
      .directory = scratch.path,
      .fsync = storage::FsyncPolicy::kAlways,
      .group_commit_window = 500us,
      .snapshot_threshold_bytes = 64u << 20,  // never compact mid-test
  };
  ReplicatedStore store(std::move(options));
  auto client = store.MakeAsyncClient(
      AsyncQuorumClient::Options{.window = 32, .max_batch = 16});

  // value written at version v of key k is Payload(k, v): recovered state
  // can be validated without any side table.
  const auto payload = [&](std::size_t key_idx, std::uint64_t version) {
    return static_cast<std::int64_t>(key_idx * 1'000'000 + version);
  };

  std::map<std::string, std::uint64_t> writes_per_key;
  std::vector<OpFuture> futures;
  for (std::size_t i = 0; i < kOps; ++i) {
    const std::size_t key_idx = i % keys.size();
    const std::string& key = keys[key_idx];
    const std::uint64_t version = ++writes_per_key[key];
    futures.push_back(
        client->SubmitWrite(key, payload(key_idx, version)));
    if (i == kCrashAt) {
      // Mid-stream, mid-pipeline: batches are queued at and being applied
      // by replica 2 right now. Fail-stop it — the mailbox backlog dies,
      // volatile state is wiped, only its WAL survives.
      store.Crash(2);
    }
  }
  // The surviving majority {0, 1} acks everything.
  ASSERT_TRUE(client->Drain());
  for (auto& f : futures) ASSERT_TRUE(f.Get().ok);

  store.Recover(2);

  // 1. The recovered replica's WAL is, per item, a gapless prefix of the
  //    submitted write sequence: versions 1..k in order, correct payloads,
  //    nothing interleaved out of order and nothing past the crash point
  //    it could not have applied.
  std::map<std::string, std::uint64_t> last_version;
  const std::string wal_path = storage::RecoveryManager::WalPath(
      scratch.path + "/replica_2");
  std::uint64_t replayed = 0;
  storage::Wal::Replay(wal_path, [&](const storage::WalRecord& rec) {
    ASSERT_EQ(rec.type, storage::WalRecord::Type::kWrite);
    const std::uint64_t expect = last_version[rec.key] + 1;
    ASSERT_EQ(rec.version, expect)
        << "torn interleaving: key " << rec.key << " jumped to version "
        << rec.version;
    const auto key_idx = static_cast<std::size_t>(
        std::find(keys.begin(), keys.end(), rec.key) - keys.begin());
    ASSERT_LT(key_idx, keys.size());
    ASSERT_EQ(rec.value, payload(key_idx, rec.version));
    ASSERT_LE(rec.version, writes_per_key[rec.key]);
    last_version[rec.key] = rec.version;
    ++replayed;
  });
  ASSERT_GT(replayed, 0u);  // the crash did not pre-date every batch
  ASSERT_LT(replayed, kOps);  // ... and genuinely cut the stream short

  // 2. The recovered image matches the WAL prefix exactly.
  const ReplicaSnapshot snap = store.ReplicaPeek(2);
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const auto it = snap.image.data.find(keys[k]);
    const storage::Versioned v =
        it == snap.image.data.end() ? storage::Versioned{} : it->second;
    EXPECT_EQ(v.version, last_version[keys[k]]);
    if (v.version > 0) EXPECT_EQ(v.value, payload(k, v.version));
  }

  // 3. No acked-but-lost writes: quorum reads still return every item's
  //    final acked value even though replica 2 lost its tail.
  auto reader = store.MakeClient();
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const ClientResult r = reader->Read(keys[k]);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.version, writes_per_key[keys[k]]);
    EXPECT_EQ(r.value, payload(k, writes_per_key[keys[k]]));
  }

  // The stream really went through the batch path: multi-record appends
  // reached the durable layer on the survivors.
  EXPECT_GT(store.ReplicaStorageStats(0).batch_appends, 0u);
}

TEST(BatchCrash, CrashBeforeAnyBatchRecoversEmpty) {
  ScratchDir scratch("empty");
  StoreOptions options;
  options.replicas = 3;
  options.durability = storage::DurabilityOptions{
      .directory = scratch.path,
      .fsync = storage::FsyncPolicy::kAlways,
  };
  ReplicatedStore store(std::move(options));
  store.Crash(2);
  auto client = store.MakeAsyncClient();
  for (int i = 1; i <= 8; ++i) client->SubmitWrite("k", i);
  ASSERT_TRUE(client->Drain());
  store.Recover(2);
  const ReplicaSnapshot snap = store.ReplicaPeek(2);
  EXPECT_TRUE(snap.image.data.empty());
  // ... and the recovered replica heals through the normal quorum path.
  auto reader = store.MakeClient();
  EXPECT_EQ(reader->Read("k").value, 8);
}

}  // namespace
}  // namespace qcnt::runtime
