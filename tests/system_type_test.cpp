// Unit tests for SystemType: tree construction, ancestry, lca, access
// attributes, and rendering.
#include <gtest/gtest.h>

#include "txn/system_type.hpp"

namespace qcnt::txn {
namespace {

SystemType MakeSample() {
  SystemType t;
  const TxnId u1 = t.AddTransaction(kRootTxn, "U1");
  const TxnId u2 = t.AddTransaction(kRootTxn, "U2");
  const ObjectId x = t.AddObject("x");
  t.AddReadAccess(u1, x, "r1");
  t.AddWriteAccess(u2, x, Value{std::int64_t{5}}, "w1");
  return t;
}

TEST(SystemType, RootExists) {
  SystemType t;
  EXPECT_EQ(t.TxnCount(), 1u);
  EXPECT_EQ(t.Parent(kRootTxn), kNoTxn);
  EXPECT_FALSE(t.IsAccess(kRootTxn));
  EXPECT_EQ(t.Label(kRootTxn), "T0");
}

TEST(SystemType, ParentChildLinks) {
  SystemType t;
  const TxnId u = t.AddTransaction(kRootTxn, "U");
  const TxnId v = t.AddTransaction(u, "V");
  EXPECT_EQ(t.Parent(v), u);
  EXPECT_EQ(t.Parent(u), kRootTxn);
  ASSERT_EQ(t.Children(u).size(), 1u);
  EXPECT_EQ(t.Children(u)[0], v);
}

TEST(SystemType, AccessAttributes) {
  SystemType t;
  const TxnId u = t.AddTransaction(kRootTxn);
  const ObjectId x = t.AddObject("x");
  const TxnId r = t.AddReadAccess(u, x);
  const TxnId w = t.AddWriteAccess(u, x, Value{std::int64_t{9}});
  EXPECT_TRUE(t.IsAccess(r));
  EXPECT_EQ(t.KindOf(r), AccessKind::kRead);
  EXPECT_EQ(t.KindOf(w), AccessKind::kWrite);
  EXPECT_EQ(t.DataOf(w), Value{std::int64_t{9}});
  EXPECT_EQ(t.ObjectOf(r), x);
  ASSERT_EQ(t.AccessesOf(x).size(), 2u);
}

TEST(SystemType, AccessesAreLeaves) {
  SystemType t;
  const TxnId u = t.AddTransaction(kRootTxn);
  const ObjectId x = t.AddObject();
  const TxnId r = t.AddReadAccess(u, x);
  EXPECT_ANY_THROW(t.AddTransaction(r));
  EXPECT_ANY_THROW(t.AddReadAccess(r, x));
}

TEST(SystemType, Ancestry) {
  SystemType t;
  const TxnId u = t.AddTransaction(kRootTxn);
  const TxnId v = t.AddTransaction(u);
  const TxnId w = t.AddTransaction(kRootTxn);
  EXPECT_TRUE(t.IsAncestor(kRootTxn, v));
  EXPECT_TRUE(t.IsAncestor(u, v));
  EXPECT_TRUE(t.IsAncestor(v, v));  // a transaction is its own ancestor
  EXPECT_FALSE(t.IsAncestor(v, u));
  EXPECT_FALSE(t.IsAncestor(w, v));
}

TEST(SystemType, DepthAndLca) {
  SystemType t;
  const TxnId u = t.AddTransaction(kRootTxn);
  const TxnId v1 = t.AddTransaction(u);
  const TxnId v2 = t.AddTransaction(u);
  const TxnId w = t.AddTransaction(v1);
  EXPECT_EQ(t.Depth(kRootTxn), 0u);
  EXPECT_EQ(t.Depth(w), 3u);
  EXPECT_EQ(t.Lca(v1, v2), u);
  EXPECT_EQ(t.Lca(w, v2), u);
  EXPECT_EQ(t.Lca(w, v1), v1);
  EXPECT_EQ(t.Lca(w, w), w);
}

TEST(SystemType, AsciiRendering) {
  const SystemType t = MakeSample();
  const std::string art = t.ToAscii();
  EXPECT_NE(art.find("T0"), std::string::npos);
  EXPECT_NE(art.find("U1"), std::string::npos);
  EXPECT_NE(art.find("[read x]"), std::string::npos);
  EXPECT_NE(art.find("[write x]"), std::string::npos);
}

TEST(SystemType, PrettyAction) {
  const SystemType t = MakeSample();
  const std::string s = t.Pretty(ioa::Create(1));
  EXPECT_EQ(s, "CREATE(U1)");
  const std::string c = t.Pretty(ioa::Commit(2, Value{std::int64_t{3}}));
  EXPECT_EQ(c, "COMMIT(U2, 3)");
}

TEST(SystemType, DefaultLabels) {
  SystemType t;
  const TxnId u = t.AddTransaction(kRootTxn);
  EXPECT_EQ(t.Label(u), "T1");
  const ObjectId x = t.AddObject();
  EXPECT_EQ(t.ObjectLabel(x), "X0");
}

}  // namespace
}  // namespace qcnt::txn
