// Endpoint resolution (getaddrinfo) and IPv6 end-to-end: numeric IPv4
// and IPv6 literals, hostnames, failure reporting, and a two-node
// TcpTransport universe exchanging frames over ::1.
#include <gtest/gtest.h>

#include <netinet/in.h>

#include <chrono>
#include <cstring>
#include <optional>
#include <string>

#include "net/tcp_transport.hpp"

namespace qcnt::net {
namespace {

using namespace std::chrono_literals;

TEST(ResolveEndpoint, NumericV4Literal) {
  std::string error;
  const auto addr = ResolveEndpoint("127.0.0.1", 4321, /*passive=*/false,
                                    &error);
  ASSERT_TRUE(addr) << error;
  EXPECT_EQ(addr->family, AF_INET);
  const auto* v4 = reinterpret_cast<const sockaddr_in*>(&addr->addr);
  EXPECT_EQ(ntohs(v4->sin_port), 4321);
  EXPECT_EQ(ntohl(v4->sin_addr.s_addr), 0x7f000001u);
  EXPECT_EQ(addr->len, sizeof(sockaddr_in));
}

TEST(ResolveEndpoint, NumericV6Literal) {
  std::string error;
  const auto addr = ResolveEndpoint("::1", 4321, /*passive=*/false, &error);
  ASSERT_TRUE(addr) << error;
  EXPECT_EQ(addr->family, AF_INET6);
  const auto* v6 = reinterpret_cast<const sockaddr_in6*>(&addr->addr);
  EXPECT_EQ(ntohs(v6->sin6_port), 4321);
  EXPECT_TRUE(IN6_IS_ADDR_LOOPBACK(&v6->sin6_addr));
  EXPECT_EQ(addr->len, sizeof(sockaddr_in6));
}

TEST(ResolveEndpoint, HostnameResolves) {
  std::string error;
  const auto addr = ResolveEndpoint("localhost", 80, /*passive=*/false,
                                    &error);
  ASSERT_TRUE(addr) << error;
  // Either family is a valid answer; the port must ride along.
  ASSERT_TRUE(addr->family == AF_INET || addr->family == AF_INET6);
  if (addr->family == AF_INET) {
    EXPECT_EQ(
        ntohs(reinterpret_cast<const sockaddr_in*>(&addr->addr)->sin_port),
        80);
  } else {
    EXPECT_EQ(
        ntohs(reinterpret_cast<const sockaddr_in6*>(&addr->addr)->sin6_port),
        80);
  }
}

TEST(ResolveEndpoint, PassiveWildcardForBind) {
  std::string error;
  const auto addr = ResolveEndpoint("0.0.0.0", 0, /*passive=*/true, &error);
  ASSERT_TRUE(addr) << error;
  EXPECT_EQ(addr->family, AF_INET);
}

TEST(ResolveEndpoint, GarbageHostFailsWithDiagnostic) {
  std::string error;
  const auto addr = ResolveEndpoint(
      "no-such-host.invalid.qcnt.test.", 1, /*passive=*/false, &error);
  EXPECT_FALSE(addr);
  EXPECT_FALSE(error.empty());
}

// Two transport instances, each hosting one node, talking over the IPv6
// loopback — the full bind/listen/connect/frame path on AF_INET6.
TEST(TcpIpv6, TwoNodeUniverseExchangesFramesOverV6Loopback) {
  if (!ResolveEndpoint("::1", 0, /*passive=*/true)) {
    GTEST_SKIP() << "no IPv6 loopback on this host";
  }
  TcpTransportOptions options;
  options.universe = {Endpoint{"::1", 0}, Endpoint{"::1", 0}};
  std::unique_ptr<TcpTransport> a, b;
  try {
    a = std::make_unique<TcpTransport>(options, std::vector<NodeId>{0});
    b = std::make_unique<TcpTransport>(options, std::vector<NodeId>{1});
  } catch (const TransportIoError& e) {
    GTEST_SKIP() << "cannot bind on ::1: " << e.what();
  }
  // Ephemeral ports: teach each side the other's actual endpoint.
  a->SetPeerEndpoint(1, b->ActualEndpoint(1));
  b->SetPeerEndpoint(0, a->ActualEndpoint(0));

  RtMessage ping;
  ping.kind = RtMessage::Kind::kReadReq;
  ping.key = "over-v6";
  ping.op = 99;
  ASSERT_TRUE(a->Send(0, 1, ping));
  const auto got =
      b->MailboxOf(1).Pop(std::chrono::steady_clock::now() + 5s);
  ASSERT_TRUE(got.has_value()) << "frame never arrived over ::1";
  EXPECT_EQ(got->from, 0u);
  EXPECT_EQ(got->msg.key, "over-v6");
  EXPECT_EQ(got->msg.op, 99u);

  // And the reverse direction (b dials a).
  RtMessage pong;
  pong.kind = RtMessage::Kind::kReadResp;
  pong.op = 99;
  ASSERT_TRUE(b->Send(1, 0, pong));
  const auto back =
      a->MailboxOf(0).Pop(std::chrono::steady_clock::now() + 5s);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->msg.op, 99u);
}

}  // namespace
}  // namespace qcnt::net
