// Wire codec tests: every message kind round-trips losslessly, and every
// way a frame can be damaged yields a typed decode error — never a crash,
// never a silently wrong message (satellite of the transport subsystem).
#include "net/codec.hpp"

#include <cstring>

#include "storage/crc32.hpp"
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace qcnt::net {
namespace {

using runtime::BatchEntry;
using runtime::RtMessage;

RtMessage FullMessage(RtMessage::Kind kind) {
  RtMessage m;
  m.kind = kind;
  m.op = 0x0123456789abcdefull;
  m.key = "account/\x00\xff balance";  // embedded NUL + high byte survive
  m.key.push_back('\0');
  m.version = std::numeric_limits<std::uint64_t>::max();
  m.value = -42;  // negative: two's-complement u64 on the wire
  m.generation = 7;
  m.config_id = 3;
  return m;
}

std::vector<RtMessage::Kind> AllKinds() {
  return {RtMessage::Kind::kReadReq,       RtMessage::Kind::kReadResp,
          RtMessage::Kind::kWriteReq,      RtMessage::Kind::kWriteAck,
          RtMessage::Kind::kConfigWriteReq, RtMessage::Kind::kConfigWriteAck,
          RtMessage::Kind::kBatchReadReq,  RtMessage::Kind::kBatchReadResp,
          RtMessage::Kind::kBatchWriteReq, RtMessage::Kind::kBatchWriteAck,
          RtMessage::Kind::kShutdown,      RtMessage::Kind::kImagePeek,
          RtMessage::Kind::kCatchupReq,    RtMessage::Kind::kCatchupChunk,
          RtMessage::Kind::kCatchupDone,   RtMessage::Kind::kJoinReq};
}

// The four membership-change kinds (DESIGN.md §11) travel over links that
// a fault plan actively drops, duplicates, and delays, so their rejection
// behavior is exercised below with the same exhaustiveness as the
// original twelve.
std::vector<RtMessage::Kind> MembershipKinds() {
  return {RtMessage::Kind::kCatchupReq, RtMessage::Kind::kCatchupChunk,
          RtMessage::Kind::kCatchupDone, RtMessage::Kind::kJoinReq};
}

// A representative frame for a membership kind: every scalar field set,
// and — for the chunk, which carries streamed state — a non-empty batch
// plus a cursor key, matching what a donor actually emits.
WireFrame MembershipFrame(RtMessage::Kind kind) {
  WireFrame f;
  f.from = 5;
  f.to = 6;
  f.msg = FullMessage(kind);
  if (kind == RtMessage::Kind::kCatchupChunk) {
    f.msg.key = "k042";  // next cursor
    f.msg.value = 1;     // more chunks remain
    for (std::uint64_t i = 0; i < 3; ++i) {
      f.msg.batch.push_back(BatchEntry{i, "k0" + std::to_string(i),
                                       i + 1, static_cast<std::int64_t>(i)});
    }
  }
  return f;
}

void ExpectEqual(const RtMessage& a, const RtMessage& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.generation, b.generation);
  EXPECT_EQ(a.config_id, b.config_id);
  ASSERT_EQ(a.config.has_value(), b.config.has_value());
  if (a.config) {
    EXPECT_EQ(a.config->descriptor, b.config->descriptor);
    EXPECT_EQ(a.config->members, b.config->members);
  }
  ASSERT_EQ(a.batch.size(), b.batch.size());
  for (std::size_t i = 0; i < a.batch.size(); ++i) {
    EXPECT_EQ(a.batch[i].op, b.batch[i].op);
    EXPECT_EQ(a.batch[i].key, b.batch[i].key);
    EXPECT_EQ(a.batch[i].version, b.batch[i].version);
    EXPECT_EQ(a.batch[i].value, b.batch[i].value);
  }
}

std::vector<std::uint8_t> Encode(const WireFrame& f) {
  std::vector<std::uint8_t> buf;
  EncodeFrame(f, buf);
  return buf;
}

TEST(Codec, EveryKindRoundTripsWithAllFieldsSet) {
  for (RtMessage::Kind kind : AllKinds()) {
    WireFrame f;
    f.from = 0xdeadbeefu;
    f.to = 12;
    f.msg = FullMessage(kind);
    const auto buf = Encode(f);
    DecodeResult r = DecodeFrame(buf.data(), buf.size());
    ASSERT_EQ(r.status, DecodeStatus::kOk)
        << "kind " << static_cast<int>(kind) << ": " << ToString(r.status);
    EXPECT_EQ(r.consumed, buf.size());
    EXPECT_EQ(r.frame.from, f.from);
    EXPECT_EQ(r.frame.to, f.to);
    ExpectEqual(r.frame.msg, f.msg);
  }
}

TEST(Codec, BatchEntriesRoundTrip) {
  WireFrame f;
  f.from = 3;
  f.to = 0;
  f.msg.kind = RtMessage::Kind::kBatchWriteReq;
  for (std::uint64_t i = 0; i < 100; ++i) {
    BatchEntry e;
    e.op = 1000 + i;
    e.key = "key-" + std::string(i, 'x');
    e.version = i * 17;
    e.value = static_cast<std::int64_t>(i) - 50;  // crosses zero
    f.msg.batch.push_back(std::move(e));
  }
  const auto buf = Encode(f);
  DecodeResult r = DecodeFrame(buf.data(), buf.size());
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  ExpectEqual(r.frame.msg, f.msg);
}

TEST(Codec, DefaultMessageRoundTrips) {
  WireFrame f;  // everything zero / empty
  const auto buf = Encode(f);
  DecodeResult r = DecodeFrame(buf.data(), buf.size());
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.frame.from, 0u);
  EXPECT_EQ(r.frame.to, 0u);
  ExpectEqual(r.frame.msg, RtMessage{});
}

TEST(Codec, BackToBackFramesDecodeSequentially) {
  // A TCP segment may hold several frames; decode must consume exactly
  // one at a time and report precise byte counts.
  WireFrame a, b;
  a.from = 1;
  a.msg = FullMessage(RtMessage::Kind::kReadReq);
  b.from = 2;
  b.msg = FullMessage(RtMessage::Kind::kWriteAck);
  std::vector<std::uint8_t> buf;
  EncodeFrame(a, buf);
  const std::size_t first = buf.size();
  EncodeFrame(b, buf);

  DecodeResult r1 = DecodeFrame(buf.data(), buf.size());
  ASSERT_EQ(r1.status, DecodeStatus::kOk);
  EXPECT_EQ(r1.consumed, first);
  EXPECT_EQ(r1.frame.from, 1u);

  DecodeResult r2 = DecodeFrame(buf.data() + r1.consumed,
                                buf.size() - r1.consumed);
  ASSERT_EQ(r2.status, DecodeStatus::kOk);
  EXPECT_EQ(r2.consumed, buf.size() - first);
  EXPECT_EQ(r2.frame.from, 2u);
}

TEST(Codec, EncodeAppendsWithoutClearing) {
  std::vector<std::uint8_t> buf = {0xaa, 0xbb};
  WireFrame f;
  EncodeFrame(f, buf);
  EXPECT_EQ(buf[0], 0xaa);
  EXPECT_EQ(buf[1], 0xbb);
  DecodeResult r = DecodeFrame(buf.data() + 2, buf.size() - 2);
  EXPECT_EQ(r.status, DecodeStatus::kOk);
}

TEST(Codec, EveryTruncationIsNeedMoreNotACrash) {
  // Every strict prefix of a valid frame must ask for more bytes —
  // partial reads are the normal case on a stream socket.
  WireFrame f;
  f.from = 9;
  f.msg = FullMessage(RtMessage::Kind::kBatchReadResp);
  f.msg.batch.push_back(BatchEntry{1, "k", 2, 3});
  const auto buf = Encode(f);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    DecodeResult r = DecodeFrame(buf.data(), len);
    EXPECT_EQ(r.status, DecodeStatus::kNeedMore) << "prefix length " << len;
    EXPECT_EQ(r.consumed, 0u);
  }
}

TEST(Codec, BadMagicIsRejected) {
  auto buf = Encode(WireFrame{});
  buf[0] ^= 0xff;
  EXPECT_EQ(DecodeFrame(buf.data(), buf.size()).status,
            DecodeStatus::kBadMagic);
  // Detectable even before a full header has arrived.
  EXPECT_EQ(DecodeFrame(buf.data(), 4).status, DecodeStatus::kBadMagic);
}

TEST(Codec, BadVersionIsRejected) {
  auto buf = Encode(WireFrame{});
  buf[4] = kWireVersion + 1;
  EXPECT_EQ(DecodeFrame(buf.data(), buf.size()).status,
            DecodeStatus::kBadVersion);
  EXPECT_EQ(DecodeFrame(buf.data(), 5).status, DecodeStatus::kBadVersion);
}

TEST(Codec, OversizedLengthIsRejectedBeforeBuffering) {
  auto buf = Encode(WireFrame{});
  // A hostile length must be rejected from the header alone, even though
  // the buffer holds nowhere near that many bytes.
  const std::uint32_t huge = 0x7fffffffu;
  std::memcpy(buf.data() + 5, &huge, sizeof(huge));
  DecodeResult r = DecodeFrame(buf.data(), buf.size());
  EXPECT_EQ(r.status, DecodeStatus::kOversized);
  // And a legitimate length over a caller's tighter ceiling, likewise.
  auto ok = Encode(WireFrame{});
  EXPECT_EQ(DecodeFrame(ok.data(), ok.size(), /*max_frame_bytes=*/8).status,
            DecodeStatus::kOversized);
}

TEST(Codec, CorruptPayloadFailsCrc) {
  WireFrame f;
  f.msg = FullMessage(RtMessage::Kind::kWriteReq);
  auto buf = Encode(f);
  for (std::size_t i = kFrameHeaderBytes; i < buf.size(); ++i) {
    auto bad = buf;
    bad[i] ^= 0x01;
    DecodeResult r = DecodeFrame(bad.data(), bad.size());
    EXPECT_EQ(r.status, DecodeStatus::kCrcMismatch) << "flipped byte " << i;
    EXPECT_EQ(r.consumed, 0u);
  }
}

TEST(Codec, CorruptCrcFieldIsDetected) {
  auto buf = Encode(WireFrame{});
  buf[9] ^= 0xff;  // first CRC byte
  EXPECT_EQ(DecodeFrame(buf.data(), buf.size()).status,
            DecodeStatus::kCrcMismatch);
}

// Re-encode a frame with an arbitrary payload, header and CRC made
// consistent — the shape of frames a buggy (not bit-flipped) sender emits.
std::vector<std::uint8_t> FrameWithPayload(
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> buf;
  WireFrame f;
  EncodeFrame(f, buf);  // valid header template
  buf.resize(kFrameHeaderBytes);
  buf.insert(buf.end(), payload.begin(), payload.end());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(buf.data() + 5, &len, sizeof(len));
  const std::uint32_t crc =
      storage::Crc32(payload.data(), payload.size());
  std::memcpy(buf.data() + 9, &crc, sizeof(crc));
  return buf;
}

std::vector<std::uint8_t> ValidPayload(std::uint8_t kind_byte) {
  WireFrame f;
  auto buf = Encode(f);
  std::vector<std::uint8_t> payload(buf.begin() + kFrameHeaderBytes,
                                    buf.end());
  payload[8] = kind_byte;  // kind follows from(4) + to(4)
  return payload;
}

TEST(Codec, UnknownKindIsRejectedWithCrcIntact) {
  const auto buf = FrameWithPayload(ValidPayload(0xee));
  DecodeResult r = DecodeFrame(buf.data(), buf.size());
  EXPECT_EQ(r.status, DecodeStatus::kUnknownKind);
}

TEST(Codec, TruncatedPayloadStructureIsMalformed) {
  // Valid CRC over a payload whose key length runs past the end.
  auto payload = ValidPayload(0);
  payload.resize(payload.size() - 4);  // drop batch_count → key overruns
  const auto buf = FrameWithPayload(payload);
  EXPECT_EQ(DecodeFrame(buf.data(), buf.size()).status,
            DecodeStatus::kMalformed);
}

TEST(Codec, TrailingPayloadBytesAreMalformed) {
  auto payload = ValidPayload(0);
  payload.push_back(0x00);  // one byte past a complete message
  const auto buf = FrameWithPayload(payload);
  EXPECT_EQ(DecodeFrame(buf.data(), buf.size()).status,
            DecodeStatus::kMalformed);
}

TEST(Codec, HugeBatchCountDoesNotBalloonAllocation) {
  // batch_count claims 2^31 entries in a tiny payload: must fail cleanly
  // (kMalformed), not reserve gigabytes first.
  auto payload = ValidPayload(static_cast<std::uint8_t>(
      runtime::RtMessage::Kind::kBatchWriteReq));
  const std::uint32_t huge = 0x80000000u;
  std::memcpy(payload.data() + payload.size() - 4, &huge, sizeof(huge));
  const auto buf = FrameWithPayload(payload);
  EXPECT_EQ(DecodeFrame(buf.data(), buf.size()).status,
            DecodeStatus::kMalformed);
}

TEST(Codec, MembershipKindEveryTruncationPrefixNeedsMore) {
  // Catchup frames arrive on stream sockets mid-join; every strict prefix
  // must be a clean "need more", never a crash or a partial decode.
  for (RtMessage::Kind kind : MembershipKinds()) {
    const auto buf = Encode(MembershipFrame(kind));
    for (std::size_t len = 0; len < buf.size(); ++len) {
      DecodeResult r = DecodeFrame(buf.data(), len);
      EXPECT_EQ(r.status, DecodeStatus::kNeedMore)
          << "kind " << static_cast<int>(kind) << " prefix " << len;
      EXPECT_EQ(r.consumed, 0u);
    }
  }
}

TEST(Codec, MembershipKindEveryFlippedPayloadByteFailsCrc) {
  // A single flipped bit anywhere in a catchup payload — cursor, stamp,
  // batch entry, count — must surface as a CRC mismatch, not as a chunk
  // that installs wrong state on the joiner.
  for (RtMessage::Kind kind : MembershipKinds()) {
    const auto buf = Encode(MembershipFrame(kind));
    for (std::size_t i = kFrameHeaderBytes; i < buf.size(); ++i) {
      auto bad = buf;
      bad[i] ^= 0x01;
      DecodeResult r = DecodeFrame(bad.data(), bad.size());
      EXPECT_EQ(r.status, DecodeStatus::kCrcMismatch)
          << "kind " << static_cast<int>(kind) << " flipped byte " << i;
      EXPECT_EQ(r.consumed, 0u);
    }
  }
}

TEST(Codec, CatchupChunkOversizedLengthRejectedFromHeaderAlone) {
  // A hostile chunk length is refused before any payload is buffered:
  // hand the decoder *only* the header so an attempt to touch (or
  // allocate for) the claimed payload would fail visibly.
  auto buf = Encode(MembershipFrame(RtMessage::Kind::kCatchupChunk));
  const std::uint32_t huge = 0x7fffffffu;
  std::memcpy(buf.data() + 5, &huge, sizeof(huge));
  DecodeResult r = DecodeFrame(buf.data(), kFrameHeaderBytes);
  EXPECT_EQ(r.status, DecodeStatus::kOversized);
  EXPECT_EQ(r.consumed, 0u);
  EXPECT_TRUE(r.frame.msg.batch.empty());
  // Same verdict when the (stale) payload bytes happen to be present.
  EXPECT_EQ(DecodeFrame(buf.data(), buf.size()).status,
            DecodeStatus::kOversized);
  // And a legitimate chunk over a receiver's tighter frame ceiling.
  const auto ok = Encode(MembershipFrame(RtMessage::Kind::kCatchupChunk));
  EXPECT_EQ(DecodeFrame(ok.data(), ok.size(), /*max_frame_bytes=*/16).status,
            DecodeStatus::kOversized);
}

TEST(Codec, CatchupChunkHugeBatchCountIsMalformedWithoutAllocating) {
  // A chunk whose batch_count claims 2^31 entries over a consistent CRC
  // (a buggy donor, not line noise) must fail typed — the decoder's
  // reserve is bounded by what the payload could actually hold, so the
  // count is rejected without ballooning memory first.
  auto payload = ValidPayload(static_cast<std::uint8_t>(
      runtime::RtMessage::Kind::kCatchupChunk));
  const std::uint32_t huge = 0x80000000u;
  std::memcpy(payload.data() + payload.size() - 4, &huge, sizeof(huge));
  const auto buf = FrameWithPayload(payload);
  DecodeResult r = DecodeFrame(buf.data(), buf.size());
  EXPECT_EQ(r.status, DecodeStatus::kMalformed);
  EXPECT_EQ(r.frame.msg.batch.capacity(), 0u);
}

// --- Self-describing configuration payloads (DESIGN.md §13) ------------
//
// Config payloads ride on fence NACKs and reconfiguration writes; a
// corrupted or hostile one must never install a wrong quorum system on a
// client. Same exhaustiveness as the membership kinds above: lossless
// round trip, every truncation prefix, every flipped byte, and
// consistent-CRC hostile counts rejected without allocation.

// A frame whose reply teaches a weighted configuration — the descriptor
// family with every field populated (votes vector, both thresholds).
WireFrame ConfigFrame() {
  WireFrame f;
  f.from = 2;
  f.to = 9;
  f.msg = FullMessage(RtMessage::Kind::kWriteAck);
  runtime::ConfigPayload c;
  c.descriptor.kind = quorum::StrategyKind::kWeighted;
  c.descriptor.votes = {3, 1, 1};
  c.descriptor.read_threshold = 2;
  c.descriptor.write_threshold = 4;
  c.members = {0, 1, 2};
  f.msg.config = std::move(c);
  return f;
}

TEST(Codec, ConfigPayloadRoundTrips) {
  // Weighted: every descriptor field in play.
  {
    const WireFrame f = ConfigFrame();
    const auto buf = Encode(f);
    DecodeResult r = DecodeFrame(buf.data(), buf.size());
    ASSERT_EQ(r.status, DecodeStatus::kOk);
    ExpectEqual(r.frame.msg, f.msg);
  }
  // Parameterless family (ROWA), empty votes, on a batch reply carrying
  // entries — the config tail decodes after the batch section.
  {
    WireFrame f;
    f.msg = FullMessage(RtMessage::Kind::kBatchReadResp);
    f.msg.batch.push_back(BatchEntry{1, "k", 2, 3});
    runtime::ConfigPayload c;
    c.descriptor.kind = quorum::StrategyKind::kReadOneWriteAll;
    c.members = {4, 5, 6, 7};
    f.msg.config = std::move(c);
    const auto buf = Encode(f);
    DecodeResult r = DecodeFrame(buf.data(), buf.size());
    ASSERT_EQ(r.status, DecodeStatus::kOk);
    ExpectEqual(r.frame.msg, f.msg);
  }
  // And the dominant case — no payload — still round-trips as absent.
  {
    WireFrame f;
    f.msg = FullMessage(RtMessage::Kind::kWriteAck);
    const auto buf = Encode(f);
    DecodeResult r = DecodeFrame(buf.data(), buf.size());
    ASSERT_EQ(r.status, DecodeStatus::kOk);
    EXPECT_FALSE(r.frame.msg.config.has_value());
  }
}

TEST(Codec, ConfigPayloadEveryTruncationPrefixNeedsMore) {
  const auto buf = Encode(ConfigFrame());
  for (std::size_t len = 0; len < buf.size(); ++len) {
    DecodeResult r = DecodeFrame(buf.data(), len);
    EXPECT_EQ(r.status, DecodeStatus::kNeedMore) << "prefix " << len;
    EXPECT_EQ(r.consumed, 0u);
  }
}

TEST(Codec, ConfigPayloadEveryFlippedPayloadByteFailsCrc) {
  const auto buf = Encode(ConfigFrame());
  for (std::size_t i = kFrameHeaderBytes; i < buf.size(); ++i) {
    auto bad = buf;
    bad[i] ^= 0x01;
    DecodeResult r = DecodeFrame(bad.data(), bad.size());
    EXPECT_EQ(r.status, DecodeStatus::kCrcMismatch) << "flipped byte " << i;
    EXPECT_EQ(r.consumed, 0u);
  }
}

// The raw payload of ConfigFrame(), for consistent-CRC tampering. Tail
// layout (offsets from the end): members (3 × u32), member_count (u32),
// votes (3 × u32), vote_count (u32), thresholds/a/b (4 × u32), kind (u8),
// has_config (u8).
std::vector<std::uint8_t> ConfigPayloadBytes() {
  const auto buf = Encode(ConfigFrame());
  return {buf.begin() + kFrameHeaderBytes, buf.end()};
}

TEST(Codec, ConfigPayloadHostileCountsAreMalformedWithoutAllocating) {
  const std::uint32_t huge = 0x80000000u;
  // member_count sits before the 3 encoded members.
  {
    auto payload = ConfigPayloadBytes();
    std::memcpy(payload.data() + payload.size() - 16, &huge, sizeof(huge));
    const auto buf = FrameWithPayload(payload);
    DecodeResult r = DecodeFrame(buf.data(), buf.size());
    EXPECT_EQ(r.status, DecodeStatus::kMalformed);
    EXPECT_FALSE(r.frame.msg.config.has_value());
  }
  // vote_count sits before 3 votes + member_count + 3 members.
  {
    auto payload = ConfigPayloadBytes();
    std::memcpy(payload.data() + payload.size() - 32, &huge, sizeof(huge));
    const auto buf = FrameWithPayload(payload);
    DecodeResult r = DecodeFrame(buf.data(), buf.size());
    EXPECT_EQ(r.status, DecodeStatus::kMalformed);
    EXPECT_FALSE(r.frame.msg.config.has_value());
  }
}

TEST(Codec, ConfigPayloadBadDiscriminatorsAreMalformed) {
  // has_config must be 0 or 1; the strategy kind must be in range. Both
  // arrive over a consistent CRC (buggy sender, not line noise).
  auto payload = ConfigPayloadBytes();
  const std::size_t tail =
      1 + 1 + 4 * 4 + 4 + 3 * 4 + 4 + 3 * 4;  // has_config .. members
  const std::size_t has_config_at = payload.size() - tail;
  {
    auto bad = payload;
    bad[has_config_at] = 2;
    const auto buf = FrameWithPayload(bad);
    EXPECT_EQ(DecodeFrame(buf.data(), buf.size()).status,
              DecodeStatus::kMalformed);
  }
  {
    auto bad = payload;
    bad[has_config_at + 1] =
        static_cast<std::uint8_t>(quorum::kMaxStrategyKind) + 1;
    const auto buf = FrameWithPayload(bad);
    EXPECT_EQ(DecodeFrame(buf.data(), buf.size()).status,
              DecodeStatus::kMalformed);
  }
  // A config tail cut off mid-descriptor over a consistent CRC is
  // malformed, not a partial install.
  {
    auto bad = payload;
    bad.resize(bad.size() - 6);
    const auto buf = FrameWithPayload(bad);
    EXPECT_EQ(DecodeFrame(buf.data(), buf.size()).status,
              DecodeStatus::kMalformed);
  }
}

TEST(Codec, ToStringCoversEveryStatus) {
  for (DecodeStatus s :
       {DecodeStatus::kOk, DecodeStatus::kNeedMore, DecodeStatus::kBadMagic,
        DecodeStatus::kBadVersion, DecodeStatus::kOversized,
        DecodeStatus::kCrcMismatch, DecodeStatus::kUnknownKind,
        DecodeStatus::kMalformed}) {
    EXPECT_STRNE(ToString(s), "");
  }
}

}  // namespace
}  // namespace qcnt::net
