// End-to-end quorum workloads over a TCP-backed ReplicatedStore: the
// same store API the rest of the suite exercises on the in-process Bus,
// but with every cross-node message riding loopback TCP through the real
// codec + socket + event-loop path.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "net/error.hpp"
#include "runtime/store.hpp"

namespace qcnt::runtime {
namespace {

StoreOptions TcpOptions(std::size_t replicas) {
  StoreOptions o;
  o.replicas = replicas;
  o.tcp = TcpStoreOptions{};  // ephemeral loopback ports
  // Real sockets mean real (if tiny) latency; allow a retry so a slow CI
  // machine cannot fail a correctness test on timing.
  o.client_options.max_attempts = 3;
  o.async_client_options.max_attempts = 3;
  return o;
}

TEST(RuntimeTcp, StoreReportsTcpTransport) {
  ReplicatedStore store(TcpOptions(3));
  EXPECT_TRUE(store.OverTcp());
  EXPECT_STREQ(store.TransportName(), "tcp");
  ReplicatedStore bus_store(StoreOptions{.replicas = 3});
  EXPECT_FALSE(bus_store.OverTcp());
  EXPECT_STREQ(bus_store.TransportName(), "bus");
}

TEST(RuntimeTcp, QuorumReadWriteOverLoopback) {
  ReplicatedStore store(TcpOptions(3));
  auto client = store.MakeClient();
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i % 7);
    auto w = client->Write(key, i);
    ASSERT_TRUE(w.ok) << ToString(w.status);
    auto r = client->Read(key);
    ASSERT_TRUE(r.ok) << ToString(r.status);
    EXPECT_EQ(r.value, i);
  }
  // Real frames crossed real sockets.
  const auto wire = store.WireStats();
  EXPECT_GT(wire.frames_sent, 0u);
  EXPECT_GT(wire.frames_received, 0u);
  EXPECT_GT(wire.bytes_sent, 0u);
  EXPECT_EQ(wire.decode_errors, 0u);
}

TEST(RuntimeTcp, SurvivesCrashAndRecoverWithinQuorum) {
  ReplicatedStore store(TcpOptions(5));
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("durable", 1).ok);

  store.Crash(0);
  store.Crash(1);
  ASSERT_TRUE(client->Write("durable", 2).ok);  // 3-of-5 still a majority
  auto r = client->Read("durable");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 2);

  store.Recover(0);
  store.Recover(1);
  r = client->Read("durable");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 2);
}

TEST(RuntimeTcp, AsyncPipelinedClientOverLoopback) {
  ReplicatedStore store(TcpOptions(3));
  auto client = store.MakeAsyncClient();
  std::vector<OpFuture> writes;
  for (int i = 0; i < 40; ++i) {
    writes.push_back(client->SubmitWrite("a" + std::to_string(i % 5), i));
  }
  client->Flush();
  for (auto& f : writes) ASSERT_TRUE(f.Get().ok);
  for (int k = 0; k < 5; ++k) {
    auto r = client->SubmitRead("a" + std::to_string(k)).Get();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, 35 + k);  // last write wins per key
  }
}

TEST(RuntimeTcp, MultipleClientsShareTheWire) {
  ReplicatedStore store(TcpOptions(3));
  auto c1 = store.MakeClient();
  auto c2 = store.MakeClient();
  ASSERT_TRUE(c1->Write("shared", 10).ok);
  auto r = c2->Read("shared");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 10);
  ASSERT_TRUE(c2->Write("shared", 20).ok);
  r = c1->Read("shared");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 20);
}

TEST(RuntimeTcp, FaultsPlusTcpThrowsAtConstruction) {
  StoreOptions o = TcpOptions(3);
  o.faults = FaultPlan{.drop = 0.1};
  EXPECT_THROW({ ReplicatedStore store(std::move(o)); },
               net::TransportConfigError);
}

TEST(RuntimeTcp, RuntimeFaultApisThrowOnTcpStore) {
  ReplicatedStore store(TcpOptions(3));
  const FaultPlan plan{.drop = 0.5};
  EXPECT_THROW(store.SetFaults(plan), net::TransportConfigError);
  EXPECT_THROW(store.SetLinkFaults(0, 1, plan), net::TransportConfigError);
  EXPECT_THROW(store.ClearFaults(), net::TransportConfigError);
  EXPECT_THROW(store.Partition({0}, {1, 2}), net::TransportConfigError);
  EXPECT_THROW(store.Heal(), net::TransportConfigError);
  EXPECT_THROW(store.FlushFaults(), net::TransportConfigError);
  EXPECT_THROW(store.InjectedFaults(), net::TransportConfigError);
  // And the store is still fully functional afterwards.
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("still-alive", 1).ok);
}

TEST(RuntimeTcp, FaultApisStillWorkOnBusStore) {
  ReplicatedStore store(StoreOptions{.replicas = 3});
  EXPECT_NO_THROW(store.SetFaults(FaultPlan{.drop = 0.0}));
  EXPECT_NO_THROW(store.ClearFaults());
  EXPECT_NO_THROW(store.InjectedFaults());
}

}  // namespace
}  // namespace qcnt::runtime
