// Tests for the transaction automata (scripted and random): output
// discipline, abort tolerance, sequencing, and value reduction.
#include <gtest/gtest.h>

#include "ioa/explorer.hpp"
#include "txn/random_transaction.hpp"
#include "txn/read_write_object.hpp"
#include "txn/scripted_transaction.hpp"
#include "txn/serial_scheduler.hpp"
#include "txn/wellformed.hpp"

namespace qcnt::txn {
namespace {

using ioa::Abort;
using ioa::Commit;
using ioa::Create;
using ioa::RequestCommit;
using ioa::RequestCreate;

struct Fixture {
  SystemType type;
  TxnId u, c1, c2;
  Fixture() {
    u = type.AddTransaction(kRootTxn, "U");
    c1 = type.AddTransaction(u, "C1");
    c2 = type.AddTransaction(u, "C2");
  }
};

TEST(ScriptedTransaction, SilentUntilCreated) {
  Fixture f;
  ScriptedTransaction t(f.type, f.u, {f.c1, f.c2});
  std::vector<ioa::Action> outs;
  t.EnabledOutputs(outs);
  EXPECT_TRUE(outs.empty());
}

TEST(ScriptedTransaction, SequentialRequestsInOrder) {
  Fixture f;
  ScriptedTransaction t(f.type, f.u, {f.c1, f.c2});
  t.Apply(Create(f.u));
  std::vector<ioa::Action> outs;
  t.EnabledOutputs(outs);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], RequestCreate(f.c1));
  // c2 may not be requested before c1 returns.
  EXPECT_FALSE(t.Enabled(RequestCreate(f.c2)));
  t.Apply(RequestCreate(f.c1));
  outs.clear();
  t.EnabledOutputs(outs);
  EXPECT_TRUE(outs.empty());  // waiting on c1
  t.Apply(Commit(f.c1, kNil));
  EXPECT_TRUE(t.Enabled(RequestCreate(f.c2)));
}

TEST(ScriptedTransaction, ParallelRequestsAllThenCommit) {
  Fixture f;
  ScriptedTransaction::Options opts;
  opts.sequential = false;
  ScriptedTransaction t(f.type, f.u, {f.c1, f.c2}, opts);
  t.Apply(Create(f.u));
  t.Apply(RequestCreate(f.c1));
  EXPECT_TRUE(t.Enabled(RequestCreate(f.c2)));
  t.Apply(RequestCreate(f.c2));
  // Not ready to commit until both children return.
  EXPECT_FALSE(t.Enabled(RequestCommit(f.u, kNil)));
  t.Apply(Abort(f.c1));
  t.Apply(Commit(f.c2, kNil));
  EXPECT_TRUE(t.Enabled(RequestCommit(f.u, kNil)));
}

TEST(ScriptedTransaction, AbortedChildYieldsNoOutcome) {
  Fixture f;
  ScriptedTransaction t(f.type, f.u, {f.c1, f.c2});
  t.Apply(Create(f.u));
  t.Apply(RequestCreate(f.c1));
  t.Apply(Abort(f.c1));
  t.Apply(RequestCreate(f.c2));
  t.Apply(Commit(f.c2, Value{std::int64_t{4}}));
  EXPECT_EQ(t.Outcome(0), std::nullopt);
  ASSERT_TRUE(t.Outcome(1).has_value());
  EXPECT_EQ(*t.Outcome(1), Value{std::int64_t{4}});
  EXPECT_EQ(t.ReturnedCount(), 2u);
}

TEST(ScriptedTransaction, ReduceComputesCommitValue) {
  Fixture f;
  ScriptedTransaction::Options opts;
  opts.reduce = [](const ScriptedTransaction::Outcomes& o) -> Value {
    std::int64_t sum = 0;
    for (const auto& v : o) {
      if (v && std::holds_alternative<std::int64_t>(*v)) {
        sum += std::get<std::int64_t>(*v);
      }
    }
    return Value{sum};
  };
  ScriptedTransaction t(f.type, f.u, {f.c1, f.c2}, opts);
  t.Apply(Create(f.u));
  t.Apply(RequestCreate(f.c1));
  t.Apply(Commit(f.c1, Value{std::int64_t{3}}));
  t.Apply(RequestCreate(f.c2));
  t.Apply(Commit(f.c2, Value{std::int64_t{4}}));
  EXPECT_TRUE(t.Enabled(RequestCommit(f.u, Value{std::int64_t{7}})));
  EXPECT_FALSE(t.Enabled(RequestCommit(f.u, kNil)));
}

TEST(ScriptedTransaction, NoOutputsAfterRequestCommit) {
  Fixture f;
  ScriptedTransaction t(f.type, f.u, {f.c1});
  t.Apply(Create(f.u));
  t.Apply(RequestCreate(f.c1));
  t.Apply(Commit(f.c1, kNil));
  t.Apply(RequestCommit(f.u, kNil));
  std::vector<ioa::Action> outs;
  t.EnabledOutputs(outs);
  EXPECT_TRUE(outs.empty());
}

TEST(ScriptedTransaction, RejectsForeignChildren) {
  Fixture f;
  const TxnId w = f.type.AddTransaction(kRootTxn, "W");
  EXPECT_ANY_THROW(ScriptedTransaction(f.type, f.u, {w}));
}

TEST(RandomTransaction, MayCommitWithOutstandingChildren) {
  Fixture f;
  RandomTransaction t(f.type, f.u);
  t.Apply(Create(f.u));
  t.Apply(RequestCreate(f.c1));
  // The paper explicitly allows requesting commit without knowing the
  // fates of requested children.
  EXPECT_TRUE(t.Enabled(RequestCommit(f.u, kNil)));
}

TEST(RandomTransaction, NeverRepeatsRequestCreate) {
  Fixture f;
  RandomTransaction t(f.type, f.u);
  t.Apply(Create(f.u));
  t.Apply(RequestCreate(f.c1));
  EXPECT_FALSE(t.Enabled(RequestCreate(f.c1)));
  EXPECT_TRUE(t.Enabled(RequestCreate(f.c2)));
}

TEST(RandomTransaction, PreservesWellFormednessUnderExploration) {
  Fixture f;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    ioa::System sys;
    sys.Emplace<SerialScheduler>(f.type);
    sys.Emplace<RandomTransaction>(f.type, kRootTxn);
    sys.Emplace<RandomTransaction>(f.type, f.u);
    sys.Emplace<RandomTransaction>(f.type, f.c1);
    sys.Emplace<RandomTransaction>(f.type, f.c2);
    const ioa::ExploreResult r = ioa::Explore(sys, seed);
    EXPECT_TRUE(r.quiescent);
    std::string msg;
    EXPECT_TRUE(IsWellFormed(f.type, r.schedule, &msg))
        << "seed " << seed << ": " << msg;
  }
}

TEST(ScriptedTransaction, FullSystemRunsToCompletion) {
  // End-to-end serial system: T0 -> U -> two accesses on one object.
  SystemType type;
  const TxnId u = type.AddTransaction(kRootTxn, "U");
  const ObjectId x = type.AddObject("x");
  const TxnId w = type.AddWriteAccess(u, x, Value{std::int64_t{9}});
  const TxnId r = type.AddReadAccess(u, x);

  ioa::System sys;
  sys.Emplace<SerialScheduler>(type);
  auto& root = sys.Emplace<ScriptedTransaction>(
      type, kRootTxn, std::vector<TxnId>{u});
  ScriptedTransaction::Options opts;
  opts.reduce = [](const ScriptedTransaction::Outcomes& o) -> Value {
    return o[1] ? *o[1] : kNil;  // return what the read child saw
  };
  sys.Emplace<ScriptedTransaction>(type, u, std::vector<TxnId>{w, r}, opts);
  sys.Emplace<ReadWriteObject>(type, x, Value{std::int64_t{0}});

  Rng rng(12345);
  ioa::ExploreOptions eopts;
  // Suppress aborts so the run is deterministic in outcome.
  eopts.weight = [](const ioa::Action& a) {
    return a.kind == ioa::ActionKind::kAbort ? 0.0 : 1.0;
  };
  const ioa::ExploreResult res = ioa::Explore(sys, rng, eopts);
  EXPECT_TRUE(res.quiescent);
  // U committed with the value the read access returned: the written 9.
  ASSERT_TRUE(root.Outcome(0).has_value());
  EXPECT_EQ(*root.Outcome(0), Value{std::int64_t{9}});
}

}  // namespace
}  // namespace qcnt::txn
