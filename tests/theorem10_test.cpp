// Mechanized Theorem 10: the projection of any schedule of the replicated
// serial system B (deleting replica-access operations) is a schedule of the
// non-replicated serial system A, agreeing at every user transaction.
// Directed cases plus a randomized sweep over system shapes, quorum
// strategies, seeds, and abort rates.
#include <gtest/gtest.h>

#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "replication/harness.hpp"
#include "replication/logical.hpp"
#include "replication/theorem10.hpp"
#include "txn/scripted_transaction.hpp"
#include "txn/wellformed.hpp"

namespace qcnt::replication {
namespace {

TEST(Theorem10, DirectedWriteThenRead) {
  ReplicatedSpec spec;
  const ItemId x =
      spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId wtm = spec.AddWriteTm(u, x, Plain{std::int64_t{5}});
  const TxnId rtm = spec.AddReadTm(u, x);
  spec.Finalize();

  UserAutomataFactory users = [&](ioa::System& s) {
    s.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                        std::vector<TxnId>{u});
    s.Emplace<txn::ScriptedTransaction>(spec.Type(), u,
                                        std::vector<TxnId>{wtm, rtm});
  };

  ioa::System b = BuildB(spec, users);
  const ioa::ExploreResult r = ioa::Explore(b, 17);
  EXPECT_TRUE(r.quiescent);

  const Theorem10Result t10 = CheckTheorem10(spec, users, r.schedule);
  EXPECT_TRUE(t10.ok) << t10.message;
  // The projection must contain no replica-access operation.
  for (const ioa::Action& a : t10.alpha) {
    EXPECT_FALSE(spec.IsReplicaAccess(a.txn));
  }
  // And it must be strictly shorter (some DM traffic existed) unless the
  // whole user transaction aborted before creating TMs.
  EXPECT_LE(t10.alpha.size(), r.schedule.size());
}

TEST(Theorem10, AlphaIsWellFormed) {
  ReplicatedSpec spec;
  const ItemId x =
      spec.AddItem("x", 2, quorum::ReadOneWriteAll(2), Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId wtm = spec.AddWriteTm(u, x, Plain{std::int64_t{1}});
  const TxnId rtm = spec.AddReadTm(u, x);
  spec.Finalize();
  UserAutomataFactory users = [&](ioa::System& s) {
    s.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                        std::vector<TxnId>{u});
    s.Emplace<txn::ScriptedTransaction>(spec.Type(), u,
                                        std::vector<TxnId>{wtm, rtm});
  };
  ioa::System b = BuildB(spec, users);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const ioa::ExploreResult r = ioa::Explore(b, seed);
    const ioa::Schedule alpha = ProjectOutReplicaAccesses(spec, r.schedule);
    std::string msg;
    EXPECT_TRUE(txn::IsWellFormed(spec.Type(), alpha, &msg))
        << "seed " << seed << ": " << msg;
  }
}

TEST(Theorem10, UserProjectionsIdentical) {
  // Condition 2 of the theorem, checked explicitly per user transaction.
  ReplicatedSpec spec;
  const ItemId x =
      spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
  const TxnId u1 = spec.AddTransaction(kRootTxn, "U1");
  const TxnId u2 = spec.AddTransaction(kRootTxn, "U2");
  const TxnId w1 = spec.AddWriteTm(u1, x, Plain{std::int64_t{11}});
  const TxnId r2 = spec.AddReadTm(u2, x);
  spec.Finalize();
  UserAutomataFactory users = [&](ioa::System& s) {
    s.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                        std::vector<TxnId>{u1, u2});
    s.Emplace<txn::ScriptedTransaction>(spec.Type(), u1,
                                        std::vector<TxnId>{w1});
    s.Emplace<txn::ScriptedTransaction>(spec.Type(), u2,
                                        std::vector<TxnId>{r2});
  };
  ioa::System b = BuildB(spec, users);
  const ioa::ExploreResult r = ioa::Explore(b, 99);
  const ioa::Schedule alpha = ProjectOutReplicaAccesses(spec, r.schedule);

  auto user_ops = [&](const ioa::Schedule& s, TxnId t) {
    return ioa::Project(s, [&](const ioa::Action& a) {
      // Operations of transaction t: its own create/commit ops plus
      // request/return ops of its children.
      return a.txn == t ||
             (a.txn < spec.Type().TxnCount() &&
              spec.Type().Parent(a.txn) == t);
    });
  };
  for (TxnId t : {kRootTxn, u1, u2}) {
    EXPECT_EQ(user_ops(r.schedule, t), user_ops(alpha, t)) << "txn " << t;
  }
}

TEST(Theorem10, SequentialReadsSeeLastWrite) {
  // Semantic check via system A's state: after replaying alpha, the
  // logical object holds logical-state(x, beta).
  ReplicatedSpec spec;
  const ItemId x =
      spec.AddItem("x", 4, quorum::Majority(4), Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId w1 = spec.AddWriteTm(u, x, Plain{std::int64_t{1}});
  const TxnId w2 = spec.AddWriteTm(u, x, Plain{std::int64_t{2}});
  const TxnId r1 = spec.AddReadTm(u, x);
  spec.Finalize();
  UserAutomataFactory users = [&](ioa::System& s) {
    s.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                        std::vector<TxnId>{u});
    s.Emplace<txn::ScriptedTransaction>(spec.Type(), u,
                                        std::vector<TxnId>{w1, w2, r1});
  };
  ioa::System b = BuildB(spec, users);
  Rng rng(5);
  ioa::ExploreOptions opts;
  opts.weight = AbortWeight(0.0);
  const ioa::ExploreResult res = ioa::Explore(b, rng, opts);
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(LogicalState(spec, x, res.schedule), Plain{std::int64_t{2}});
  const Theorem10Result t10 = CheckTheorem10(spec, users, res.schedule);
  EXPECT_TRUE(t10.ok) << t10.message;
}

// --- randomized sweep -------------------------------------------------------

struct SweepParam {
  std::uint64_t seed;
  double abort_weight;
};

class Theorem10Sweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Theorem10Sweep, RandomSystemsSimulateA) {
  const auto [seed_int, abort_weight] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed_int) * 1000003 + 17);
  const Harness h = MakeRandomHarness(rng);
  const UserAutomataFactory users = h.Users();

  ioa::System b = BuildB(h.Spec(), users);
  ioa::ExploreOptions opts;
  opts.weight = AbortWeight(abort_weight);
  const ioa::ExploreResult r = ioa::Explore(b, rng, opts);
  ASSERT_TRUE(r.quiescent) << "exploration did not quiesce";

  std::string msg;
  ASSERT_TRUE(txn::IsWellFormed(h.Spec().Type(), r.schedule, &msg)) << msg;

  const Theorem10Result t10 = CheckTheorem10(h.Spec(), users, r.schedule);
  EXPECT_TRUE(t10.ok) << "seed=" << seed_int
                      << " abort_weight=" << abort_weight << ": "
                      << t10.message;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, Theorem10Sweep,
    ::testing::Combine(::testing::Range(0, 40),
                       ::testing::Values(0.0, 0.3, 1.0)));

}  // namespace
}  // namespace qcnt::replication
