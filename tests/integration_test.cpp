// Integration tests: deep nesting, several items under different quorum
// strategies, interleaved non-replica objects, and mid-tree aborts — with
// hand-computed expected values and the full checker battery on every run.
#include <gtest/gtest.h>

#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "replication/harness.hpp"
#include "replication/invariants.hpp"
#include "replication/logical.hpp"
#include "replication/theorem10.hpp"
#include "txn/scripted_transaction.hpp"
#include "txn/wellformed.hpp"

namespace qcnt::replication {
namespace {

/// Value a transaction committed with in the schedule, if any.
std::optional<Value> CommittedValue(const ioa::Schedule& s, TxnId t) {
  for (const ioa::Action& a : s) {
    if (a.kind == ioa::ActionKind::kCommit && a.txn == t) return a.value;
  }
  return std::nullopt;
}

struct DeepFixture {
  ReplicatedSpec spec;
  ItemId x, y;
  ObjectId scratch;
  // Tree: T0 -> U -> {V1 -> {W1}, V2}, TMs at every level.
  TxnId u, v1, v2, w1;
  TxnId u_write_x;        // U writes x = 1 directly
  TxnId v1_read_x;        // V1 reads x (expects 1)
  TxnId w1_write_y;       // W1 (depth 3) writes y = 2
  TxnId w1_scratch;       // W1 also writes the non-replica object
  TxnId v2_read_y;        // V2 reads y (expects 2)
  TxnId v2_write_x;       // V2 writes x = 3
  TxnId u_read_x;         // U reads x after children (expects 3)
  UserAutomataFactory users;

  DeepFixture() {
    x = spec.AddItem("x", 4, quorum::Majority(4), Plain{std::int64_t{0}});
    y = spec.AddItem("y", 3, quorum::ReadOneWriteAll(3),
                     Plain{std::int64_t{0}});
    scratch = spec.AddPlainObject("scratch", Plain{std::int64_t{0}});

    u = spec.AddTransaction(kRootTxn, "U");
    u_write_x = spec.AddWriteTm(u, x, Plain{std::int64_t{1}});
    v1 = spec.AddTransaction(u, "V1");
    v1_read_x = spec.AddReadTm(v1, x);
    w1 = spec.AddTransaction(v1, "W1");
    w1_write_y = spec.AddWriteTm(w1, y, Plain{std::int64_t{2}});
    w1_scratch = spec.AddPlainWrite(w1, scratch, Plain{std::int64_t{99}});
    v2 = spec.AddTransaction(u, "V2");
    v2_read_y = spec.AddReadTm(v2, y);
    v2_write_x = spec.AddWriteTm(v2, x, Plain{std::int64_t{3}});
    u_read_x = spec.AddReadTm(u, x);
    spec.Finalize(/*read_attempts=*/2);

    const ReplicatedSpec* s = &spec;
    const auto c = *this;  // copy ids only; spec captured via pointer
    users = [s, u_ = u, v1_ = v1, v2_ = v2, w1_ = w1, uwx = u_write_x,
             v1rx = v1_read_x, w1wy = w1_write_y, w1s = w1_scratch,
             v2ry = v2_read_y, v2wx = v2_write_x,
             urx = u_read_x](ioa::System& sys) {
      sys.Emplace<txn::ScriptedTransaction>(s->Type(), kRootTxn,
                                            std::vector<TxnId>{u_});
      sys.Emplace<txn::ScriptedTransaction>(
          s->Type(), u_, std::vector<TxnId>{uwx, v1_, v2_, urx});
      sys.Emplace<txn::ScriptedTransaction>(s->Type(), v1_,
                                            std::vector<TxnId>{v1rx, w1_});
      sys.Emplace<txn::ScriptedTransaction>(s->Type(), w1_,
                                            std::vector<TxnId>{w1wy, w1s});
      sys.Emplace<txn::ScriptedTransaction>(s->Type(), v2_,
                                            std::vector<TxnId>{v2ry, v2wx});
    };
    (void)c;
  }
};

TEST(Integration, DeepNestingDeterministicValues) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    DeepFixture f;
    ioa::System b = BuildB(f.spec, f.users);
    Rng rng(seed);
    ioa::ExploreOptions opts;
    opts.weight = AbortWeight(0.0);
    const ioa::ExploreResult r = ioa::Explore(b, rng, opts);
    ASSERT_TRUE(r.quiescent);

    // Program order: U writes x=1; V1 reads x (1) and W1 writes y=2 and
    // scratch=99; V2 reads y (2) then writes x=3; U reads x (3).
    EXPECT_EQ(CommittedValue(r.schedule, f.v1_read_x),
              Value{std::int64_t{1}});
    EXPECT_EQ(CommittedValue(r.schedule, f.v2_read_y),
              Value{std::int64_t{2}});
    EXPECT_EQ(CommittedValue(r.schedule, f.u_read_x),
              Value{std::int64_t{3}});

    EXPECT_EQ(LogicalState(f.spec, f.x, r.schedule), Plain{std::int64_t{3}});
    EXPECT_EQ(LogicalState(f.spec, f.y, r.schedule), Plain{std::int64_t{2}});

    std::string msg;
    EXPECT_TRUE(txn::IsWellFormed(f.spec.Type(), r.schedule, &msg)) << msg;
    const Theorem10Result t10 = CheckTheorem10(f.spec, f.users, r.schedule);
    EXPECT_TRUE(t10.ok) << "seed " << seed << ": " << t10.message;
    const InvariantReport inv = CheckLemmas(f.spec, b, r.schedule);
    EXPECT_TRUE(inv.ok) << inv.message;
  }
}

TEST(Integration, MidTreeAbortRollsBackSubtreeAtomically) {
  // Abort V2 (which would have read y and written x=3): U's final read
  // then sees its own earlier write x=1, and the theorem still holds.
  DeepFixture f;
  ioa::System b = BuildB(f.spec, f.users);
  Rng rng(77);
  ioa::ExploreOptions opts;
  opts.weight = [&f](const ioa::Action& a) {
    if (a.kind != ioa::ActionKind::kAbort) return 1.0;
    return a.txn == f.v2 ? 1000.0 : 0.0;
  };
  const ioa::ExploreResult r = ioa::Explore(b, rng, opts);
  ASSERT_TRUE(r.quiescent);

  // V2 aborted; in the serial model it was never created.
  bool v2_aborted = false;
  for (const ioa::Action& a : r.schedule) {
    if (a.kind == ioa::ActionKind::kAbort && a.txn == f.v2) v2_aborted = true;
    EXPECT_NE(a, ioa::Create(f.v2));
  }
  ASSERT_TRUE(v2_aborted);

  EXPECT_EQ(CommittedValue(r.schedule, f.u_read_x), Value{std::int64_t{1}});
  EXPECT_EQ(LogicalState(f.spec, f.x, r.schedule), Plain{std::int64_t{1}});
  // W1 under V1 still ran: y and scratch updated.
  EXPECT_EQ(LogicalState(f.spec, f.y, r.schedule), Plain{std::int64_t{2}});

  const Theorem10Result t10 = CheckTheorem10(f.spec, f.users, r.schedule);
  EXPECT_TRUE(t10.ok) << t10.message;
}

TEST(Integration, PlainObjectsCoexistWithReplication) {
  DeepFixture f;
  ioa::System b = BuildB(f.spec, f.users);
  Rng rng(5);
  ioa::ExploreOptions opts;
  opts.weight = AbortWeight(0.0);
  const ioa::ExploreResult r = ioa::Explore(b, rng, opts);
  ASSERT_TRUE(r.quiescent);
  // The scratch (non-replica) write access committed with nil; the object
  // path is untouched by the projection.
  EXPECT_EQ(CommittedValue(r.schedule, f.w1_scratch), Value{kNil});
  const ioa::Schedule alpha = ProjectOutReplicaAccesses(f.spec, r.schedule);
  std::size_t scratch_ops_beta = 0, scratch_ops_alpha = 0;
  for (const ioa::Action& a : r.schedule) {
    if (a.txn == f.w1_scratch) ++scratch_ops_beta;
  }
  for (const ioa::Action& a : alpha) {
    if (a.txn == f.w1_scratch) ++scratch_ops_alpha;
  }
  EXPECT_EQ(scratch_ops_beta, scratch_ops_alpha);
  EXPECT_GT(scratch_ops_beta, 0u);
}

TEST(Integration, DifferentStrategiesPerItemInOneSystem) {
  // x under grid(2,2), y under weighted voting, z under read-all-write-one,
  // all in one transaction tree.
  ReplicatedSpec spec;
  const ItemId x =
      spec.AddItem("x", 4, quorum::Grid(2, 2), Plain{std::int64_t{0}});
  const ItemId y = spec.AddItem("y", 3, quorum::WeightedVoting({2, 1, 1}, 2, 3),
                                Plain{std::int64_t{0}});
  const ItemId z = spec.AddItem("z", 2, quorum::ReadAllWriteOne(2),
                                Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  std::vector<TxnId> script;
  script.push_back(spec.AddWriteTm(u, x, Plain{std::int64_t{10}}));
  script.push_back(spec.AddWriteTm(u, y, Plain{std::int64_t{20}}));
  script.push_back(spec.AddWriteTm(u, z, Plain{std::int64_t{30}}));
  const TxnId rx = spec.AddReadTm(u, x);
  const TxnId ry = spec.AddReadTm(u, y);
  const TxnId rz = spec.AddReadTm(u, z);
  script.insert(script.end(), {rx, ry, rz});
  spec.Finalize(2);
  UserAutomataFactory users = [&](ioa::System& sys) {
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                          std::vector<TxnId>{u});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u, script);
  };
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    ioa::System b = BuildB(spec, users);
    Rng rng(seed);
    ioa::ExploreOptions opts;
    opts.weight = AbortWeight(0.0);
    const ioa::ExploreResult r = ioa::Explore(b, rng, opts);
    ASSERT_TRUE(r.quiescent);
    EXPECT_EQ(CommittedValue(r.schedule, rx), Value{std::int64_t{10}});
    EXPECT_EQ(CommittedValue(r.schedule, ry), Value{std::int64_t{20}});
    EXPECT_EQ(CommittedValue(r.schedule, rz), Value{std::int64_t{30}});
    EXPECT_TRUE(CheckTheorem10(spec, users, r.schedule).ok);
    EXPECT_TRUE(CheckLemmas(spec, b, r.schedule).ok);
  }
}

}  // namespace
}  // namespace qcnt::replication
