// Tests for the seeded fault-injection layer (bus-level determinism,
// partitions, delay), client retry/backoff and the status taxonomy, and
// the hardened quorum-client edge cases: out-of-universe senders, the
// Lemma 8 divergence counter, delivered-only repair accounting, and
// idempotent replica application of duplicated writes.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <thread>

#include "quorum/strategies.hpp"
#include "runtime/store.hpp"

namespace qcnt::runtime {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

RtMessage ReadResp(std::uint64_t op, const std::string& key,
                   std::uint64_t version, std::int64_t value) {
  return RtMessage{RtMessage::Kind::kReadResp, op, key, version, value, 0, 0};
}

// ---------------------------------------------------------------------------
// Bus-level fault injection.

/// Same seed ⇒ identical delivery schedule (drops, duplicates, and reorder
/// ranks all replay); a different seed diverges.
TEST(FaultInjection, SeededDeterminism) {
  const auto run = [](std::uint64_t seed) {
    Bus bus(2);
    FaultPlan plan;
    plan.drop = 0.2;
    plan.duplicate = 0.2;
    plan.reorder_window = 4;
    plan.reorder_hold = 10s;  // the flush below drains, not the net thread
    plan.seed = seed;
    bus.SetFaults(plan);
    for (std::uint64_t op = 1; op <= 200; ++op) {
      bus.Send(0, 1, RtMessage{RtMessage::Kind::kReadReq, op, "k",
                               0, 0, 0, 0});
    }
    bus.FlushFaults();
    std::vector<std::uint64_t> ops;
    for (Envelope& e : bus.MailboxOf(1).TryPopAll()) ops.push_back(e.msg.op);
    return ops;
  };
  const std::vector<std::uint64_t> a = run(1), b = run(1), c = run(2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // The schedule is genuinely faulty: not all 200 arrive in order.
  std::vector<std::uint64_t> fifo(200);
  for (std::uint64_t op = 1; op <= 200; ++op) fifo[op - 1] = op;
  EXPECT_NE(a, fifo);
}

TEST(FaultInjection, StatsCountInjectedFaults) {
  Bus bus(2);
  FaultPlan plan;
  plan.drop = 0.3;
  plan.duplicate = 0.3;
  plan.reorder_window = 4;
  plan.reorder_hold = 10s;
  bus.SetFaults(plan);
  for (std::uint64_t op = 1; op <= 200; ++op) {
    bus.Send(0, 1, RtMessage{RtMessage::Kind::kReadReq, op, "k", 0, 0, 0, 0});
  }
  bus.FlushFaults();
  const FaultStats stats = bus.InjectedFaults();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.reordered, 0u);
  EXPECT_EQ(bus.MessagesDropped(), stats.dropped);
  // Everything not dropped arrived, including the duplicates.
  EXPECT_EQ(bus.MailboxOf(1).Size(),
            200 - stats.dropped + stats.duplicated);
}

/// Regression: the default plan must cover links whose node was added
/// *after* the plan was installed (membership change). Per-link SplitMix
/// streams used to be derivable only for nodes present at construction;
/// they are now derived lazily from the (from, to) pair key, so a link
/// born later is faulty, and deterministically so from the seed alone.
TEST(FaultInjection, PlansCoverDynamicallyAddedLinks) {
  const auto run = [](std::uint64_t seed) {
    Bus bus(2);
    FaultPlan plan;
    plan.drop = 0.3;
    plan.duplicate = 0.2;
    plan.reorder_window = 4;
    plan.reorder_hold = 10s;
    plan.seed = seed;
    bus.SetFaults(plan);
    const NodeId added = bus.AddNode();  // joins after the plan existed
    for (std::uint64_t op = 1; op <= 200; ++op) {
      bus.Send(0, added,
               RtMessage{RtMessage::Kind::kReadReq, op, "k", 0, 0, 0, 0});
      bus.Send(added, 1,
               RtMessage{RtMessage::Kind::kReadReq, op, "k", 0, 0, 0, 0});
    }
    bus.FlushFaults();
    std::vector<std::uint64_t> ops;
    for (Envelope& e : bus.MailboxOf(added).TryPopAll()) {
      ops.push_back(e.msg.op);
    }
    for (Envelope& e : bus.MailboxOf(1).TryPopAll()) ops.push_back(e.msg.op);
    EXPECT_GT(bus.InjectedFaults().dropped, 0u)
        << "links of an added node must flow through the injector";
    return ops;
  };
  const std::vector<std::uint64_t> a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b) << "added-link streams must replay from the seed";
  EXPECT_NE(a, c);
  EXPECT_LT(a.size(), 400u);  // drops really happened on both directions
}

/// Delayed messages are released by the net thread without any explicit
/// flush, and every one of them arrives.
TEST(FaultInjection, DelayedMessagesAllArrive) {
  Bus bus(2);
  FaultPlan plan;
  plan.delay_min = 200us;
  plan.delay_max = 2ms;
  bus.SetFaults(plan);
  for (std::uint64_t op = 1; op <= 50; ++op) {
    bus.Send(0, 1, RtMessage{RtMessage::Kind::kReadReq, op, "k", 0, 0, 0, 0});
  }
  std::set<std::uint64_t> got;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (got.size() < 50) {
    auto e = bus.MailboxOf(1).Pop(deadline);
    ASSERT_TRUE(e.has_value()) << "only " << got.size() << " arrived";
    got.insert(e->msg.op);
  }
  EXPECT_EQ(bus.InjectedFaults().delayed, 50u);
}

TEST(FaultInjection, PartitionBlocksSendAndHealRestores) {
  Bus bus(3);
  bus.Partition({0}, {1});
  EXPECT_FALSE(bus.Send(0, 1, {}));
  EXPECT_FALSE(bus.Send(1, 0, {}));  // symmetric by default
  EXPECT_TRUE(bus.Send(0, 2, {}));   // unrelated link unaffected
  EXPECT_EQ(bus.InjectedFaults().partition_drops, 2u);
  bus.Heal();
  EXPECT_TRUE(bus.Send(0, 1, {}));
  EXPECT_EQ(bus.MailboxOf(1).Size(), 1u);
}

TEST(FaultInjection, AsymmetricPartitionBlocksOneDirection) {
  Bus bus(2);
  bus.Partition({0}, {1}, /*symmetric=*/false);
  EXPECT_FALSE(bus.Send(0, 1, {}));
  EXPECT_TRUE(bus.Send(1, 0, {}));
}

// ---------------------------------------------------------------------------
// Store-level: partitions vs. quorum availability, seeded chaos + retry.

TEST(FaultInjection, PartitionHealRestoresQuorumAvailability) {
  StoreOptions options;
  options.replicas = 3;
  options.client_options.timeout = 100ms;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();  // node id 3 (first client)
  ASSERT_TRUE(client->Write("k", 7).ok);

  // Cut the client off from replicas 0 and 1: only replica 2 can answer,
  // no read quorum of majority(3) can assemble.
  store.Partition({3}, {0, 1});
  ClientResult r = client->Read("k");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.status, ClientStatus::kTimeout);  // heard 2, not a quorum

  // Cut it off from everyone: no replica can even respond.
  store.Partition({3}, {2});
  r = client->Read("k");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.status, ClientStatus::kNoQuorum);

  store.Heal();
  r = client->Read("k");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 7);
}

/// Under a lossy network a single-shot client fails sporadically; retries
/// with backoff mask the loss. Seeded, so the schedule is reproducible.
TEST(FaultInjection, RetriesMaskMessageLoss) {
  StoreOptions options;
  options.replicas = 3;
  FaultPlan plan;
  plan.drop = 0.15;
  plan.seed = 20260806;
  options.faults = plan;
  options.client_options.timeout = 80ms;
  options.client_options.max_attempts = 10;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();

  std::uint64_t attempts = 0;
  for (int i = 0; i < 10; ++i) {
    const ClientResult w = client->Write("key" + std::to_string(i), i);
    ASSERT_TRUE(w.ok) << "write " << i << ": " << ToString(w.status);
    attempts += w.attempts;
    const ClientResult r = client->Read("key" + std::to_string(i));
    ASSERT_TRUE(r.ok) << "read " << i << ": " << ToString(r.status);
    EXPECT_EQ(r.value, i);
    attempts += r.attempts;
  }
  EXPECT_GE(attempts, 20u);  // one per op, plus whatever loss forced
  EXPECT_GT(store.InjectedFaults().dropped, 0u);
  EXPECT_EQ(client->DivergencesObserved(), 0u);
}

/// The pipelined client under the same loss: every future resolves ok.
TEST(FaultInjection, AsyncRetriesMaskMessageLoss) {
  StoreOptions options;
  options.replicas = 3;
  FaultPlan plan;
  plan.drop = 0.15;
  plan.duplicate = 0.1;
  plan.seed = 42;
  options.faults = plan;
  ReplicatedStore store(std::move(options));
  AsyncQuorumClient::Options copts;
  copts.timeout = 100ms;
  copts.max_attempts = 8;
  copts.window = 8;
  copts.max_batch = 4;
  auto client = store.MakeAsyncClient(copts);

  for (int i = 0; i < 30; ++i) {
    client->SubmitWrite("key" + std::to_string(i % 5), i);
  }
  ASSERT_TRUE(client->Drain());
  for (int i = 0; i < 5; ++i) {
    const ClientResult r = client->SubmitRead("key" + std::to_string(i)).Get();
    ASSERT_TRUE(r.ok) << ToString(r.status);
    // Per-key FIFO: the last write to key i%5==i is 25+i.
    EXPECT_EQ(r.value, 25 + i);
  }
  EXPECT_EQ(client->ClientStats().divergences_observed, 0u);
  EXPECT_EQ(client->ClientStats().ops_failed, 0u);
}

TEST(ClientStatus, ShutdownReportedWhenBusCloses) {
  Bus bus(2);
  QuorumClient::Options copts;
  copts.timeout = 10s;
  QuorumClient client(bus, 1, {quorum::MajoritySystem(1)}, 0, copts);
  ClientResult r;
  std::thread reader([&] { r = client.Read("k"); });
  std::this_thread::sleep_for(20ms);
  bus.CloseAll();
  reader.join();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.status, ClientStatus::kShutdown);
}

// ---------------------------------------------------------------------------
// Hardened edge cases (foregrounded bugfixes).

/// Responses from sender ids outside the replica universe must be ignored
/// — before the fix they flowed into the bitmask/array bookkeeping and a
/// forged version could win version discovery.
TEST(ClientHardening, IgnoresResponsesFromOutOfUniverseSenders) {
  Bus bus(4);
  QuorumClient::Options copts;
  copts.timeout = 200ms;
  QuorumClient client(bus, 3, {quorum::MajoritySystem(3)}, 0, copts);
  // Poisoned envelope from "node 7" (no such replica), plus a legitimate
  // read quorum at version 1. Pushed directly: the bus would never route
  // a from id it did not assign, but a buggy replica might.
  bus.MailboxOf(3).Push(Envelope{7, ReadResp(1, "k", 999, 777)});
  bus.MailboxOf(3).Push(Envelope{0, ReadResp(1, "k", 1, 7)});
  bus.MailboxOf(3).Push(Envelope{1, ReadResp(1, "k", 1, 7)});
  const ClientResult r = client.Read("k");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.version, 1u);
  EXPECT_EQ(r.value, 7);
}

/// The 64-replica ceiling is now an explicit construction-time invariant
/// in both clients, not silent shift UB at the first response.
TEST(ClientHardening, RejectsUniversesBeyondBitmaskWidth) {
  quorum::QuorumSystem big;
  big.name = "too-big";
  big.n = 65;
  big.has_read = [](std::uint64_t) { return true; };
  big.has_write = [](std::uint64_t) { return true; };
  Bus bus(66);
  EXPECT_THROW(QuorumClient(bus, 65, {big}, 0), InvariantViolation);
  EXPECT_THROW(
      AsyncQuorumClient(bus, 65, {big}, 0, AsyncQuorumClient::Options{}),
      InvariantViolation);
}

/// Two copies of one version with different values is a Lemma 8 violation;
/// it must be surfaced via the divergence counter, not silently masked by
/// the tie-break (which stays deterministic: larger value wins, matching
/// the replica-side total order).
TEST(ClientHardening, DivergenceIsCountedNotMasked) {
  Bus bus(4);
  ReplicaServer r0(bus, 0), r1(bus, 1), r2(bus, 2);
  // Forge the divergence: version 1 holds value 10 at replica 0 but value
  // 20 at replicas 1 and 2 (a correct run can never produce this).
  bus.Send(3, 0, RtMessage{RtMessage::Kind::kWriteReq, 900, "k", 1, 10, 0, 0});
  bus.Send(3, 1, RtMessage{RtMessage::Kind::kWriteReq, 901, "k", 1, 20, 0, 0});
  bus.Send(3, 2, RtMessage{RtMessage::Kind::kWriteReq, 901, "k", 1, 20, 0, 0});
  for (int acks = 0; acks < 3; ++acks) {
    ASSERT_TRUE(bus.MailboxOf(3)
                    .Pop(std::chrono::steady_clock::now() + 1s)
                    .has_value());
  }
  // Crash replica 2 so the read quorum must be {0, 1} and the divergence
  // is guaranteed to be observed.
  bus.Crash(2);
  QuorumClient client(bus, 3, {quorum::MajoritySystem(3)}, 0);
  const ClientResult r = client.Read("k");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(client.DivergencesObserved(), 1u);
  EXPECT_EQ(r.value, 20);  // deterministic tie-break
  r0.Shutdown();
  r1.Shutdown();
  r2.Shutdown();
  bus.CloseAll();
}

/// Same forged divergence through the batched read path: the async client
/// counts it in its stats.
TEST(ClientHardening, AsyncDivergenceIsCounted) {
  Bus bus(4);
  ReplicaServer r0(bus, 0), r1(bus, 1), r2(bus, 2);
  bus.Send(3, 0, RtMessage{RtMessage::Kind::kWriteReq, 900, "k", 1, 10, 0, 0});
  bus.Send(3, 1, RtMessage{RtMessage::Kind::kWriteReq, 901, "k", 1, 20, 0, 0});
  bus.Send(3, 2, RtMessage{RtMessage::Kind::kWriteReq, 901, "k", 1, 20, 0, 0});
  for (int acks = 0; acks < 3; ++acks) {
    ASSERT_TRUE(bus.MailboxOf(3)
                    .Pop(std::chrono::steady_clock::now() + 1s)
                    .has_value());
  }
  bus.Crash(2);
  AsyncQuorumClient client(bus, 3, {quorum::MajoritySystem(3)}, 0,
                           AsyncQuorumClient::Options{});
  const ClientResult r = client.SubmitRead("k").Get();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(client.ClientStats().divergences_observed, 1u);
  EXPECT_EQ(r.value, 20);
  r0.Shutdown();
  r1.Shutdown();
  r2.Shutdown();
  bus.CloseAll();
}

/// Read repair counts only write-backs the bus actually delivered; a
/// repair aimed at a crashed replica repaired nothing.
TEST(ClientHardening, RepairsToCrashedReplicasAreNotCounted) {
  Bus bus(4);
  QuorumClient::Options copts;
  copts.timeout = 200ms;
  copts.read_repair = true;
  QuorumClient client(bus, 3, {quorum::MajoritySystem(3)}, 0, copts);
  bus.Crash(0);
  // Forged read quorum {0, 1}: replica 0 is stale (version 0) — but also
  // down, so its repair is dropped by the bus and must not count.
  bus.MailboxOf(3).Push(Envelope{0, ReadResp(1, "k", 0, 0)});
  bus.MailboxOf(3).Push(Envelope{1, ReadResp(1, "k", 1, 7)});
  ClientResult r = client.Read("k");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 7);
  EXPECT_EQ(client.RepairsIssued(), 0u);

  // Same stale quorum with replica 0 back up: the repair is delivered and
  // counted.
  bus.Recover(0);
  bus.MailboxOf(3).Push(Envelope{0, ReadResp(2, "k", 0, 0)});
  bus.MailboxOf(3).Push(Envelope{1, ReadResp(2, "k", 1, 7)});
  r = client.Read("k");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(client.RepairsIssued(), 1u);
}

// ---------------------------------------------------------------------------
// Replica-side idempotence of duplicated / re-delivered writes.

/// A duplicated kBatchWriteReq is acked twice but applied once: no second
/// history entry (and, via the same accepted-set, no second WAL record).
TEST(ReplicaIdempotence, DuplicatedBatchWriteDoesNotDoubleApply) {
  Bus bus(2);
  ReplicaServer replica(
      bus, 0, /*shards=*/1,
      [](std::size_t) { return storage::MakeMemoryBackend(); },
      /*record_history=*/true);
  RtMessage m;
  m.kind = RtMessage::Kind::kBatchWriteReq;
  m.op = 1;
  m.batch = {BatchEntry{1, "a", 1, 5}, BatchEntry{2, "b", 1, 6}};
  bus.Send(1, 0, m);
  bus.Send(1, 0, m);  // exact re-delivery
  for (int acks = 0; acks < 2; ++acks) {
    auto e = bus.MailboxOf(1).Pop(std::chrono::steady_clock::now() + 1s);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->msg.kind, RtMessage::Kind::kBatchWriteAck);
  }
  const ReplicaSnapshot snap = replica.Peek();
  EXPECT_EQ(snap.history.size(), 2u);  // one accepted apply per key
  EXPECT_EQ(snap.image.data.at("a").version, 1u);
  EXPECT_EQ(snap.image.data.at("a").value, 5);
  EXPECT_EQ(snap.image.data.at("b").value, 6);
  replica.Shutdown();
  bus.CloseAll();
}

struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path((fs::path("runtime_faults_scratch") / tag).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

/// With every message duplicated, each replica receives every install
/// twice — and must log it exactly once (no WAL double-log).
TEST(ReplicaIdempotence, DuplicatedWritesDoNotDoubleLog) {
  ScratchDir dir("dup_no_double_log");
  StoreOptions options;
  options.replicas = 3;
  storage::DurabilityOptions durability;
  durability.directory = dir.path;
  options.durability = durability;
  FaultPlan plan;
  plan.duplicate = 1.0;
  options.faults = plan;
  // The 15-record count below assumes every install reaches all 3
  // replicas — full fan-out, not a minimal write quorum.
  options.client_options.target_minimal = false;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client->Write("key" + std::to_string(i), i).ok);
  }
  // Every broadcast reaches all 3 replicas (twice); 5 unique installs per
  // replica = 15 records total, eventually — and never more.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (store.TotalStorageStats().records_appended < 15) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "replicas never logged 15 records";
    std::this_thread::sleep_for(1ms);
  }
  std::this_thread::sleep_for(20ms);  // let any (wrong) extra log land
  EXPECT_EQ(store.TotalStorageStats().records_appended, 15u);
  EXPECT_GT(store.InjectedFaults().duplicated, 0u);
}

}  // namespace
}  // namespace qcnt::runtime
