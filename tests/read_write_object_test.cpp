// Tests for the fully specified read-write object automaton of Section 2.3.
#include <gtest/gtest.h>

#include "txn/read_write_object.hpp"

namespace qcnt::txn {
namespace {

using ioa::Create;
using ioa::RequestCommit;

struct Fixture {
  SystemType type;
  ObjectId x;
  TxnId u, r1, r2, w1;
  Fixture() {
    u = type.AddTransaction(kRootTxn, "U");
    x = type.AddObject("x");
    r1 = type.AddReadAccess(u, x, "r1");
    r2 = type.AddReadAccess(u, x, "r2");
    w1 = type.AddWriteAccess(u, x, Value{std::int64_t{5}}, "w1");
  }
};

TEST(ReadWriteObject, InitialData) {
  Fixture f;
  ReadWriteObject obj(f.type, f.x, Value{std::int64_t{0}});
  EXPECT_EQ(obj.Data(), Value{std::int64_t{0}});
  EXPECT_EQ(obj.Active(), kNoTxn);
}

TEST(ReadWriteObject, OperationSignature) {
  Fixture f;
  ReadWriteObject obj(f.type, f.x, kNil);
  EXPECT_TRUE(obj.IsOperation(Create(f.r1)));
  EXPECT_TRUE(obj.IsOperation(RequestCommit(f.w1, kNil)));
  EXPECT_FALSE(obj.IsOperation(Create(f.u)));          // not an access
  EXPECT_FALSE(obj.IsOperation(ioa::Commit(f.r1, kNil)));  // not its op
  EXPECT_TRUE(obj.IsOutput(RequestCommit(f.r1, kNil)));
  EXPECT_FALSE(obj.IsOutput(Create(f.r1)));
}

TEST(ReadWriteObject, ReadReturnsData) {
  Fixture f;
  ReadWriteObject obj(f.type, f.x, Value{std::int64_t{3}});
  obj.Apply(Create(f.r1));
  EXPECT_EQ(obj.Active(), f.r1);
  // Only the REQUEST-COMMIT with v = data is enabled.
  EXPECT_TRUE(obj.Enabled(RequestCommit(f.r1, Value{std::int64_t{3}})));
  EXPECT_FALSE(obj.Enabled(RequestCommit(f.r1, Value{std::int64_t{4}})));
  std::vector<ioa::Action> outs;
  obj.EnabledOutputs(outs);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], RequestCommit(f.r1, Value{std::int64_t{3}}));
}

TEST(ReadWriteObject, WriteInstallsData) {
  Fixture f;
  ReadWriteObject obj(f.type, f.x, Value{std::int64_t{0}});
  obj.Apply(Create(f.w1));
  // Writes request-commit with nil.
  EXPECT_TRUE(obj.Enabled(RequestCommit(f.w1, kNil)));
  EXPECT_FALSE(obj.Enabled(RequestCommit(f.w1, Value{std::int64_t{5}})));
  obj.Apply(RequestCommit(f.w1, kNil));
  EXPECT_EQ(obj.Data(), Value{std::int64_t{5}});
  EXPECT_EQ(obj.Active(), kNoTxn);
}

TEST(ReadWriteObject, ReadAfterWriteSeesNewData) {
  Fixture f;
  ReadWriteObject obj(f.type, f.x, Value{std::int64_t{0}});
  obj.Apply(Create(f.w1));
  obj.Apply(RequestCommit(f.w1, kNil));
  obj.Apply(Create(f.r1));
  EXPECT_TRUE(obj.Enabled(RequestCommit(f.r1, Value{std::int64_t{5}})));
}

TEST(ReadWriteObject, NoOutputWhenIdle) {
  Fixture f;
  ReadWriteObject obj(f.type, f.x, kNil);
  std::vector<ioa::Action> outs;
  obj.EnabledOutputs(outs);
  EXPECT_TRUE(outs.empty());
  EXPECT_FALSE(obj.Enabled(RequestCommit(f.r1, kNil)));
}

TEST(ReadWriteObject, OnlyActiveAccessMayCommit) {
  Fixture f;
  ReadWriteObject obj(f.type, f.x, Value{std::int64_t{1}});
  obj.Apply(Create(f.r1));
  EXPECT_FALSE(obj.Enabled(RequestCommit(f.r2, Value{std::int64_t{1}})));
}

TEST(ReadWriteObject, ResetRestoresInitialState) {
  Fixture f;
  ReadWriteObject obj(f.type, f.x, Value{std::int64_t{0}});
  obj.Apply(Create(f.w1));
  obj.Apply(RequestCommit(f.w1, kNil));
  obj.Reset();
  EXPECT_EQ(obj.Data(), Value{std::int64_t{0}});
  EXPECT_EQ(obj.Active(), kNoTxn);
}

}  // namespace
}  // namespace qcnt::txn
