// Tests for the waits-for deadlock analyzer, including the canonical
// Quorum-Consensus writer/writer deadlock and its resolution by abort.
#include <gtest/gtest.h>

#include "cc/deadlock.hpp"
#include "cc/system_c.hpp"
#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "txn/scripted_transaction.hpp"

namespace qcnt::cc {
namespace {

using ioa::Abort;
using ioa::Commit;
using ioa::Create;
using ioa::RequestCommit;

struct TwoObjectFixture {
  txn::SystemType type;
  TxnId u1, u2;
  ObjectId x, y;
  TxnId u1_wx, u1_wy, u2_wy, u2_wx;
  TwoObjectFixture() {
    u1 = type.AddTransaction(kRootTxn, "U1");
    u2 = type.AddTransaction(kRootTxn, "U2");
    x = type.AddObject("x");
    y = type.AddObject("y");
    u1_wx = type.AddWriteAccess(u1, x, Value{std::int64_t{1}});
    u1_wy = type.AddWriteAccess(u1, y, Value{std::int64_t{1}});
    u2_wy = type.AddWriteAccess(u2, y, Value{std::int64_t{2}});
    u2_wx = type.AddWriteAccess(u2, x, Value{std::int64_t{2}});
  }
};

TEST(Deadlock, ClassicTwoObjectCycle) {
  TwoObjectFixture f;
  LockedObject ox(f.type, f.x, kNil), oy(f.type, f.y, kNil);
  // U1 locks x; U2 locks y; each then waits for the other.
  ox.Apply(Create(f.u1_wx));
  ox.Apply(RequestCommit(f.u1_wx, kNil));
  ox.Apply(Commit(f.u1_wx, kNil));  // write lock on x held by U1
  oy.Apply(Create(f.u2_wy));
  oy.Apply(RequestCommit(f.u2_wy, kNil));
  oy.Apply(Commit(f.u2_wy, kNil));  // write lock on y held by U2
  oy.Apply(Create(f.u1_wy));        // U1 blocked on y
  ox.Apply(Create(f.u2_wx));        // U2 blocked on x

  const DeadlockReport report = DetectDeadlocks(f.type, {&ox, &oy});
  ASSERT_TRUE(report.HasDeadlock());
  EXPECT_EQ(report.deadlocked, (std::vector<TxnId>{f.u1, f.u2}));
  EXPECT_EQ(report.waits_for.size(), 2u);
}

TEST(Deadlock, NoCycleNoReport) {
  TwoObjectFixture f;
  LockedObject ox(f.type, f.x, kNil), oy(f.type, f.y, kNil);
  ox.Apply(Create(f.u1_wx));
  ox.Apply(RequestCommit(f.u1_wx, kNil));
  ox.Apply(Commit(f.u1_wx, kNil));
  ox.Apply(Create(f.u2_wx));  // U2 waits on U1, but U1 waits on nothing
  const DeadlockReport report = DetectDeadlocks(f.type, {&ox, &oy});
  EXPECT_FALSE(report.HasDeadlock());
  EXPECT_EQ(report.waits_for.size(), 1u);
}

TEST(Deadlock, ResolvedByAbort) {
  TwoObjectFixture f;
  LockedObject ox(f.type, f.x, kNil), oy(f.type, f.y, kNil);
  ox.Apply(Create(f.u1_wx));
  ox.Apply(RequestCommit(f.u1_wx, kNil));
  ox.Apply(Commit(f.u1_wx, kNil));
  oy.Apply(Create(f.u2_wy));
  oy.Apply(RequestCommit(f.u2_wy, kNil));
  oy.Apply(Commit(f.u2_wy, kNil));
  oy.Apply(Create(f.u1_wy));
  ox.Apply(Create(f.u2_wx));
  ASSERT_TRUE(DetectDeadlocks(f.type, {&ox, &oy}).HasDeadlock());

  // Abort the victim U2: its locks and pending accesses vanish everywhere.
  ox.Apply(Abort(f.u2));
  oy.Apply(Abort(f.u2));
  const DeadlockReport after = DetectDeadlocks(f.type, {&ox, &oy});
  EXPECT_FALSE(after.HasDeadlock());
  // U1's blocked write on y is now grantable.
  EXPECT_TRUE(oy.Enabled(RequestCommit(f.u1_wy, kNil)));
}

TEST(Deadlock, QuorumWritersDeadlockInSystemC) {
  // Two concurrent logical writers on one item deadlock by construction:
  // each holds read locks on a read quorum that the other's write quorum
  // must intersect. Drive system C to quiescence with aborts disabled and
  // detect the cycle; then confirm abort-enabled exploration avoids the
  // stall (some run commits both writers).
  ReplicatedSpec spec;
  const ItemId x =
      spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
  const TxnId u1 = spec.AddTransaction(kRootTxn, "U1");
  const TxnId u2 = spec.AddTransaction(kRootTxn, "U2");
  const TxnId w1 = spec.AddWriteTm(u1, x, Plain{std::int64_t{1}});
  const TxnId w2 = spec.AddWriteTm(u2, x, Plain{std::int64_t{2}});
  spec.Finalize();
  replication::UserAutomataFactory users = [&](ioa::System& sys) {
    txn::ScriptedTransaction::Options root_opts;
    root_opts.sequential = false;  // both writers in flight at once
    sys.Emplace<txn::ScriptedTransaction>(
        spec.Type(), kRootTxn, std::vector<TxnId>{u1, u2}, root_opts);
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u1,
                                          std::vector<TxnId>{w1});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u2,
                                          std::vector<TxnId>{w2});
  };

  bool saw_deadlock = false;
  for (std::uint64_t seed = 0; seed < 30 && !saw_deadlock; ++seed) {
    ioa::System sys = BuildSystemC(spec, users);
    Rng rng(seed);
    ioa::ExploreOptions opts;
    opts.weight = [](const ioa::Action& a) {
      return a.kind == ioa::ActionKind::kAbort ? 0.0 : 1.0;
    };
    const ioa::ExploreResult r = ioa::Explore(sys, rng, opts);
    ASSERT_TRUE(r.quiescent);
    const DeadlockReport report = DetectDeadlocks(spec.Type(), sys);
    if (report.HasDeadlock()) {
      saw_deadlock = true;
      EXPECT_EQ(report.deadlocked, (std::vector<TxnId>{u1, u2}));
    }
  }
  EXPECT_TRUE(saw_deadlock);

  // With aborts available, the system makes progress: across seeds, both
  // writers commit at least once.
  bool both_committed = false;
  for (std::uint64_t seed = 0; seed < 40 && !both_committed; ++seed) {
    ioa::System sys = BuildSystemC(spec, users);
    Rng rng(seed * 13 + 5);
    ioa::ExploreOptions opts;
    opts.weight = [](const ioa::Action& a) {
      return a.kind == ioa::ActionKind::kAbort ? 0.05 : 1.0;
    };
    const ioa::ExploreResult r = ioa::Explore(sys, rng, opts);
    if (!r.quiescent) continue;
    const RunStats stats = CollectRunStats(spec, r.schedule);
    if (stats.committed_top_level == 2) both_committed = true;
    EXPECT_TRUE(CheckOneCopySerializability(spec, r.schedule).ok);
  }
  EXPECT_TRUE(both_committed);
}

}  // namespace
}  // namespace qcnt::cc
