// Tests for runtime extensions: read repair.
#include <gtest/gtest.h>

#include "runtime/store.hpp"

namespace qcnt::runtime {
namespace {

using namespace std::chrono_literals;

/// Writes under a crash leave recovered replicas stale; read repair heals
/// them so that even a read quorum avoiding the original writers sees the
/// value.
TEST(ReadRepair, HealsStaleReplicas) {
  StoreOptions options;
  options.replicas = 3;
  options.client_options.read_repair = true;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();

  // Replica 2 misses the write.
  store.Crash(2);
  ASSERT_TRUE(client->Write("x", 42).ok);
  store.Recover(2);

  // A repairing read: quorum {0 or 1} + possibly 2; once 2 responds stale,
  // the client writes (version, 42) back to it.
  ASSERT_TRUE(client->Read("x").ok);
  // Drain until the repair propagated (repairs are asynchronous).
  for (int i = 0; i < 100 && client->RepairsIssued() == 0; ++i) {
    client->Read("x");
  }
  EXPECT_GT(client->RepairsIssued(), 0u);

  // After repair, even a read that can only see replica 2 plus one other
  // stale-free replica gets 42. Simulate by crashing the original writers'
  // helpers: crash 0; quorum must be {1,2}.
  // Give the repair write time to land.
  std::this_thread::sleep_for(20ms);
  store.Crash(0);
  const ClientResult r = client->Read("x");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 42);
}

TEST(ReadRepair, DisabledByDefault) {
  ReplicatedStore store(StoreOptions{.replicas = 3});
  auto client = store.MakeClient();
  store.Crash(2);
  ASSERT_TRUE(client->Write("x", 1).ok);
  store.Recover(2);
  for (int i = 0; i < 5; ++i) client->Read("x");
  EXPECT_EQ(client->RepairsIssued(), 0u);
}

TEST(ReadRepair, NoRepairWhenReplicasAgree) {
  StoreOptions options;
  options.replicas = 3;
  options.client_options.read_repair = true;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("x", 1).ok);
  // Writes reached a quorum; remaining replica may be stale, but reads that
  // only consult the written quorum issue no repair. Run several reads and
  // assert repairs only target genuinely stale replicas (at most one here).
  for (int i = 0; i < 20; ++i) client->Read("x");
  EXPECT_LE(client->RepairsIssued(), 20u);
  // After the first repair lands, the system is fully converged — repairs
  // must stop growing.
  std::this_thread::sleep_for(20ms);
  const std::uint64_t before = client->RepairsIssued();
  for (int i = 0; i < 10; ++i) client->Read("x");
  // Converged: no new repairs (allowing one in-flight race).
  EXPECT_LE(client->RepairsIssued() - before, 1u);
}

}  // namespace
}  // namespace qcnt::runtime
