// Tests for runtime extensions: read repair, and true crash-recovery under
// the durable storage backend.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <thread>

#include "runtime/store.hpp"
#include "storage/manifest.hpp"
#include "storage/recovery.hpp"

namespace qcnt::runtime {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// Writes under a crash leave recovered replicas stale; read repair heals
/// them so that even a read quorum avoiding the original writers sees the
/// value.
TEST(ReadRepair, HealsStaleReplicas) {
  StoreOptions options;
  options.replicas = 3;
  options.client_options.read_repair = true;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();

  // Replica 2 misses the write.
  store.Crash(2);
  ASSERT_TRUE(client->Write("x", 42).ok);
  store.Recover(2);

  // A repairing read: quorum {0 or 1} + possibly 2; once 2 responds stale,
  // the client writes (version, 42) back to it.
  ASSERT_TRUE(client->Read("x").ok);
  // Drain until the repair propagated (repairs are asynchronous).
  for (int i = 0; i < 100 && client->RepairsIssued() == 0; ++i) {
    client->Read("x");
  }
  EXPECT_GT(client->RepairsIssued(), 0u);

  // After repair, even a read that can only see replica 2 plus one other
  // stale-free replica gets 42. Simulate by crashing the original writers'
  // helpers: crash 0; quorum must be {1,2}.
  // Give the repair write time to land.
  std::this_thread::sleep_for(20ms);
  store.Crash(0);
  const ClientResult r = client->Read("x");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 42);
}

TEST(ReadRepair, DisabledByDefault) {
  ReplicatedStore store(StoreOptions{.replicas = 3});
  auto client = store.MakeClient();
  store.Crash(2);
  ASSERT_TRUE(client->Write("x", 1).ok);
  store.Recover(2);
  for (int i = 0; i < 5; ++i) client->Read("x");
  EXPECT_EQ(client->RepairsIssued(), 0u);
}

TEST(ReadRepair, NoRepairWhenReplicasAgree) {
  StoreOptions options;
  options.replicas = 3;
  options.client_options.read_repair = true;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("x", 1).ok);
  // Writes reached a quorum; remaining replica may be stale, but reads that
  // only consult the written quorum issue no repair. Run several reads and
  // assert repairs only target genuinely stale replicas (at most one here).
  for (int i = 0; i < 20; ++i) client->Read("x");
  EXPECT_LE(client->RepairsIssued(), 20u);
  // After the first repair lands, the system is fully converged — repairs
  // must stop growing.
  std::this_thread::sleep_for(20ms);
  const std::uint64_t before = client->RepairsIssued();
  for (int i = 0; i < 10; ++i) client->Read("x");
  // Converged: no new repairs (allowing one in-flight race).
  EXPECT_LE(client->RepairsIssued() - before, 1u);
}

// ---------------------------------------------------------------------------
// Durable backend: crashes wipe volatile state; recovery replays disk.

struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path((fs::path("runtime_durable_scratch") / tag).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

StoreOptions DurableOptions(const std::string& dir, std::size_t replicas = 3) {
  StoreOptions options;
  options.replicas = replicas;
  storage::DurabilityOptions durability;
  durability.directory = dir;
  options.durability = durability;
  // These tests audit per-replica WAL contents (WaitForAppends, torn-tail
  // surgery on a specific replica), which presumes every write reaches
  // every replica — full fan-out, not a minimal write quorum.
  options.client_options.target_minimal = false;
  return options;
}

/// Acks come from a quorum, so a broadcast may still be queued at the
/// slowest replica; wait until it has logged `records` appends before
/// crashing it (the crash drains its backlog).
void WaitForAppends(const ReplicatedStore& store, std::size_t replica,
                    std::uint64_t records) {
  for (int i = 0; i < 2000; ++i) {
    if (store.ReplicaStorageStats(replica).records_appended >= records) {
      return;
    }
    std::this_thread::sleep_for(1ms);
  }
  FAIL() << "replica " << replica << " never logged " << records
         << " records";
}

/// A replica that crashes (losing its map), recovers via log replay, and
/// rejoins quorums must serve the correct logical state — the runtime
/// analogue of Lemma 8: the highest-versioned copy in any read quorum is
/// the logical state even when some replicas missed writes. The spec map
/// is the non-replicated reference the reads are compared against.
TEST(DurableStore, CrashLosesStateRecoveryRestoresIt) {
  ScratchDir dir("crash_recover");
  ReplicatedStore store(DurableOptions(dir.path));
  auto client = store.MakeClient();

  std::map<std::string, std::int64_t> spec;
  for (int i = 0; i < 8; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(client->Write(key, 100 + i).ok);
    spec[key] = 100 + i;
  }

  // Fail-stop replica 2 once it has logged every write: its in-memory
  // image is discarded.
  WaitForAppends(store, 2, 8);
  store.Crash(2);
  // A write replica 2 misses entirely.
  ASSERT_TRUE(client->Write("k0", 999).ok);
  spec["k0"] = 999;

  store.Recover(2);
  const auto stats = store.ReplicaStorageStats(2);
  // Initial start + this recovery, each recovering every shard segment.
  EXPECT_EQ(stats.recoveries, 2u * store.ShardsPerReplica());
  EXPECT_GT(stats.recovery_replayed, 0u);

  // Force read quorums to include the recovered replica: {1, 2}.
  store.Crash(0);
  for (const auto& [key, expected] : spec) {
    const ClientResult r = client->Read(key);
    ASSERT_TRUE(r.ok) << key;
    EXPECT_EQ(r.value, expected) << key;
  }
}

/// Restarting the whole store on the same directory recovers from the log
/// alone (no checkpoint was ever taken at the default threshold).
TEST(DurableStore, RestartRecoversFromLogOnly) {
  ScratchDir dir("log_only");
  {
    ReplicatedStore store(DurableOptions(dir.path));
    auto client = store.MakeClient();
    ASSERT_TRUE(client->Write("x", 7).ok);
    ASSERT_TRUE(client->Write("y", 8).ok);
    EXPECT_EQ(store.TotalStorageStats().checkpoints_written, 0u);
  }
  ReplicatedStore store(DurableOptions(dir.path));
  auto client = store.MakeClient();
  EXPECT_GT(store.TotalStorageStats().recovery_replayed, 0u);
  EXPECT_EQ(client->Read("x").value, 7);
  EXPECT_EQ(client->Read("y").value, 8);
}

/// A tiny checkpoint threshold makes every write flush the tail; restart
/// then recovers from the checkpoint chain alone.
TEST(DurableStore, RestartRecoversFromCheckpointOnly) {
  ScratchDir dir("snapshot_only");
  StoreOptions options = DurableOptions(dir.path);
  options.durability->checkpoint_tail_bytes = 1;
  {
    ReplicatedStore store(std::move(options));
    auto client = store.MakeClient();
    ASSERT_TRUE(client->Write("x", 1).ok);
    ASSERT_TRUE(client->Write("x", 2).ok);
    ASSERT_TRUE(client->Write("z", 3).ok);
    EXPECT_GT(store.TotalStorageStats().checkpoints_written, 0u);
  }
  StoreOptions reopened = DurableOptions(dir.path);
  reopened.durability->checkpoint_tail_bytes = 1;
  ReplicatedStore store(std::move(reopened));
  auto client = store.MakeClient();
  // Every segment was compacted away; recovery replayed nothing.
  EXPECT_EQ(store.TotalStorageStats().recovery_replayed, 0u);
  EXPECT_EQ(client->Read("x").value, 2);
  EXPECT_EQ(client->Read("z").value, 3);
}

/// A mid-size threshold exercises checkpoint chain + log tail recovery.
TEST(DurableStore, RestartRecoversFromCheckpointPlusTail) {
  ScratchDir dir("snapshot_tail");
  StoreOptions options = DurableOptions(dir.path);
  // Roughly two records per checkpoint: checkpoints happen, tails remain.
  options.durability->checkpoint_tail_bytes = 100;
  std::map<std::string, std::int64_t> spec;
  {
    ReplicatedStore store(std::move(options));
    auto client = store.MakeClient();
    for (int i = 0; i < 9; ++i) {
      const std::string key = "k" + std::to_string(i % 3);
      ASSERT_TRUE(client->Write(key, i * 11).ok);
      spec[key] = i * 11;
    }
    EXPECT_GT(store.TotalStorageStats().checkpoints_written, 0u);
  }
  StoreOptions reopened = DurableOptions(dir.path);
  reopened.durability->checkpoint_tail_bytes = 100;
  ReplicatedStore store(std::move(reopened));
  auto client = store.MakeClient();
  for (const auto& [key, expected] : spec) {
    EXPECT_EQ(client->Read(key).value, expected) << key;
  }
}

/// A torn final WAL record (crash mid-append) is detected by CRC and
/// discarded; the quorum absorbs the lost tail.
TEST(DurableStore, TornFinalRecordDiscardedOnRecovery) {
  ScratchDir dir("torn_tail");
  // One shard pinned so "x" lands in a known WAL segment to tear.
  StoreOptions options = DurableOptions(dir.path);
  options.shards_per_replica = 1;
  {
    ReplicatedStore store(options);
    auto client = store.MakeClient();
    ASSERT_TRUE(client->Write("x", 1).ok);
    ASSERT_TRUE(client->Write("x", 2).ok);
  }
  // Tear the last record of replica 2's active segment only; the other
  // replicas keep the full history, so the logical state must survive.
  // No rotation happened at the default thresholds, so the chain is just
  // the first segment (file id 1).
  const std::string wal =
      storage::Manifest::SegmentPath(dir.path + "/replica_2", 0, 1);
  ASSERT_TRUE(fs::exists(wal));
  fs::resize_file(wal, fs::file_size(wal) - 2);

  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  EXPECT_EQ(store.ReplicaStorageStats(2).torn_tails_discarded, 1u);
  // Read quorum {1, 2}: replica 2 answers with the torn-away write
  // missing; replica 1's higher version must win (Lemma 8).
  store.Crash(0);
  const ClientResult r = client->Read("x");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 2);
}

/// The (generation, config) stamp is durable too: a recovered replica
/// rejoins with the reconfigured generation, not generation 0.
TEST(DurableStore, ConfigStampSurvivesCrashRecovery) {
  ScratchDir dir("config_stamp");
  StoreOptions options = DurableOptions(dir.path, 5);
  options.configs = {
      quorum::MajoritySystem(5),
      quorum::FromConfiguration(
          "majority-of-012",
          quorum::Configuration({{0, 1}, {0, 2}, {1, 2}},
                                {{0, 1}, {0, 2}, {1, 2}}))};
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("x", 1).ok);
  ASSERT_TRUE(client->Reconfigure(1).ok);

  // Replica 2 logs: the x-write and the config install. The
  // reconfigure's data write re-installs the stamp key at its current
  // (version, value) — a no-op under the idempotent apply, so it is
  // acked without logging a redundant record.
  WaitForAppends(store, 2, 2);
  store.Crash(2);
  store.Recover(2);

  // Leave only {1, 2} up: every quorum of the new config now needs the
  // recovered replica.
  store.Crash(0);
  store.Crash(3);
  store.Crash(4);
  auto fresh = store.MakeClient();
  const ClientResult r = fresh->Read("x");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 1);
  // The recovered replica's stamp propagated the reconfiguration.
  EXPECT_EQ(fresh->BelievedConfig(), 1u);
}

/// Writers keep running while a replica crashes and recovers; every value
/// acked to a writer must be readable afterward (per-thread key spaces
/// keep the reference deterministic).
TEST(DurableStore, ConcurrentWritersDuringRecovery) {
  ScratchDir dir("concurrent");
  StoreOptions options = DurableOptions(dir.path);
  options.max_clients = 6;
  ReplicatedStore store(std::move(options));

  constexpr int kThreads = 4, kOps = 30;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    auto client = store.MakeClient();
    threads.emplace_back([client = std::move(client), t, &failures] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "w" + std::to_string(t);
        if (!client->Write(key, i).ok) ++failures;
      }
    });
  }
  // Crash/recover replica 2 repeatedly under load; majority {0, 1} keeps
  // the store available throughout.
  for (int round = 0; round < 3; ++round) {
    std::this_thread::sleep_for(5ms);
    store.Crash(2);
    std::this_thread::sleep_for(5ms);
    store.Recover(2);
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Every thread's last acked write is the logical state of its key, and
  // it must still be there when reads are forced through replica 2.
  store.Crash(0);
  auto reader = store.MakeClient();
  for (int t = 0; t < kThreads; ++t) {
    const ClientResult r = reader->Read("w" + std::to_string(t));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, kOps - 1);
  }
}

/// Fail-stop semantics (satellite): messages queued at a node before its
/// crash are dropped with the crash, not processed afterward.
TEST(BusFailStop, CrashDrainsQueuedBacklog) {
  Bus bus(2);
  bus.Send(0, 1, {});
  bus.Send(0, 1, {});
  ASSERT_EQ(bus.MailboxOf(1).Size(), 2u);
  bus.Crash(1);
  EXPECT_EQ(bus.MailboxOf(1).Size(), 0u);
  bus.Recover(1);
  // Post-recovery traffic flows normally.
  bus.Send(0, 1, {});
  EXPECT_EQ(bus.MailboxOf(1).Size(), 1u);
}

TEST(DurableStore, StatsSurfaceCountsAppendsAndFsyncs) {
  ScratchDir dir("stats");
  ReplicatedStore store(DurableOptions(dir.path));
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("x", 1).ok);
  ASSERT_TRUE(client->Write("x", 2).ok);
  // Broadcast writes reach all 3 replicas (acks from a majority suffice,
  // but all appends eventually land).
  for (std::size_t r = 0; r < 3; ++r) WaitForAppends(store, r, 2);
  const auto stats = store.TotalStorageStats();
  EXPECT_EQ(stats.records_appended, 6u);  // 2 writes x 3 replicas
  EXPECT_EQ(stats.fsyncs, 6u);            // kAlways default
  EXPECT_GT(stats.bytes_appended, 0u);
  // One initial recovery per shard segment per replica.
  EXPECT_EQ(stats.recoveries, 3u * store.ShardsPerReplica());
}

}  // namespace
}  // namespace qcnt::runtime
