// Online membership change, end to end (DESIGN.md §11).
//
// Four layers of scrutiny, bottom up:
//
//   * CatchupProtocol — the raw joiner state machine on a bare Bus, with
//     the test playing coordinator and donors: a donor crash mid-stream
//     resumes from the exact cursor against a different donor (no entry
//     re-pulled, no entry skipped), a stale in-flight chunk from the
//     abandoned stream is dropped by the pull_seq guard, and a donor
//     whose shard count differs from the promised manifest is refused
//     with the typed kJoinErrShardMismatch.
//   * CatchupProperty — store-level random interleavings of live client
//     writes with a concurrent AddReplica: the joined replica's applied
//     versions never regress, its image never holds a (key, version,
//     value) no founding replica can witness, and after crashing a
//     founding replica the joiner serves inside read quorums with zero
//     data loss.
//   * MembershipE2E — the ISSUE acceptance scenario: grow 3 -> 5 and
//     shrink back to 3 (removing two *founding* members, so every final
//     quorum leans on replicas that did not exist at construction) under
//     sustained pipelined traffic, on both the in-process Bus and the
//     loopback-TCP substrate; sequential-equivalence envelope and
//     zero-divergence audits hold throughout, and every acked write is
//     still readable afterwards.
//
// Membership reports are asserted with their error strings attached, so
// a failure names the phase that broke.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "reconfig/catchup.hpp"
#include "runtime/store.hpp"
#include "storage/backend.hpp"

namespace qcnt::reconfig {
namespace {

using namespace std::chrono_literals;
using runtime::Bus;
using runtime::Envelope;
using runtime::NodeId;
using runtime::ReplicatedStore;
using runtime::RtMessage;
using runtime::StoreOptions;

/// Pop node `at`'s mailbox until a message of `kind` arrives (strays from
/// earlier protocol steps are skipped); nullopt on timeout.
std::optional<Envelope> Await(Bus& bus, NodeId at, RtMessage::Kind kind) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    std::optional<Envelope> e = bus.MailboxOf(at).Pop(deadline);
    if (e && e->msg.kind == kind) return e;
  }
  return std::nullopt;
}

std::string Pk(int i) {
  return "k" + std::string(i < 10 ? "0" : "") + std::to_string(i);
}

// ---------------------------------------------------------------------------
// Raw protocol: donor crash mid-stream, cursor resume, stale-chunk guard.
// ---------------------------------------------------------------------------

TEST(CatchupProtocol, DonorCrashMidStreamResumesFromExactCursor) {
  // Node 1 is a real single-shard joiner; the test plays donor 0, donor 2,
  // and the coordinator 3, so the crash point is fully deterministic.
  Bus bus(4);
  runtime::ReplicaServer joiner(bus, 1);

  const auto serve = [&bus](NodeId donor, const Envelope& req, int first,
                            int last, bool more) {
    RtMessage chunk;
    chunk.kind = RtMessage::Kind::kCatchupChunk;
    chunk.op = req.msg.op;  // echo: answers the latest outstanding request
    chunk.version = 1;      // single-shard layout, as promised
    for (int i = first; i <= last; ++i) {
      chunk.batch.push_back(runtime::BatchEntry{0, Pk(i), 1, 100 + i});
    }
    chunk.key = Pk(last);
    chunk.value = more ? 1 : 0;
    bus.Send(donor, 1, std::move(chunk));
  };

  RtMessage join;
  join.kind = RtMessage::Kind::kJoinReq;
  join.op = 77;
  join.value = 0;    // donor 0
  join.version = 1;  // expected shard layout
  bus.Send(3, 1, join);

  // Two chunks flow from donor 0.
  std::optional<Envelope> req = Await(bus, 0, RtMessage::Kind::kCatchupReq);
  ASSERT_TRUE(req);
  EXPECT_EQ(req->msg.key, "");  // shard start
  EXPECT_EQ(req->msg.version, 0u);
  serve(0, *req, 0, 3, true);
  req = Await(bus, 0, RtMessage::Kind::kCatchupReq);
  ASSERT_TRUE(req);
  EXPECT_EQ(req->msg.key, Pk(3));  // cursor advanced
  serve(0, *req, 4, 7, true);
  req = Await(bus, 0, RtMessage::Kind::kCatchupReq);
  ASSERT_TRUE(req);
  EXPECT_EQ(req->msg.key, Pk(7));
  const std::uint64_t orphaned_op = req->msg.op;
  // Donor 0 "crashes": its outstanding request is never answered. The
  // coordinator times out and re-issues the join against donor 2 …
  RtMessage retry = join;
  retry.op = 78;
  retry.value = 2;
  bus.Send(3, 1, retry);
  // … while a bogus answer to the abandoned request limps in afterwards.
  // The pull_seq guard must drop it: its payload would otherwise plant a
  // key nobody wrote and terminate the stream early (more = 0).
  RtMessage stale;
  stale.kind = RtMessage::Kind::kCatchupChunk;
  stale.op = orphaned_op;
  stale.version = 1;
  stale.batch.push_back(runtime::BatchEntry{0, "k99", 1, 999});
  stale.key = "k99";
  stale.value = 0;
  bus.Send(0, 1, std::move(stale));

  // The resumed pull goes to donor 2 from the exact cursor — nothing
  // already streamed is pulled again, nothing is skipped.
  req = Await(bus, 2, RtMessage::Kind::kCatchupReq);
  ASSERT_TRUE(req);
  EXPECT_EQ(req->msg.key, Pk(7)) << "resume must continue from the cursor";
  EXPECT_EQ(req->msg.version, 0u);
  serve(2, *req, 8, 9, false);

  std::optional<Envelope> done = Await(bus, 3, RtMessage::Kind::kCatchupDone);
  ASSERT_TRUE(done);
  EXPECT_EQ(done->msg.op, 78u);
  EXPECT_EQ(done->msg.value, runtime::kJoinOk);
  EXPECT_EQ(done->msg.version, 10u) << "every entry streamed exactly once";

  const runtime::ReplicaSnapshot snap = joiner.Peek();
  EXPECT_EQ(snap.image.data.size(), 10u);
  EXPECT_EQ(snap.image.data.count("k99"), 0u)
      << "stale chunk from the abandoned stream was merged";
  for (int i = 0; i < 10; ++i) {
    const auto it = snap.image.data.find(Pk(i));
    ASSERT_NE(it, snap.image.data.end()) << Pk(i);
    EXPECT_EQ(it->second.version, 1u);
    EXPECT_EQ(it->second.value, 100 + i);
  }
  joiner.Shutdown();
}

TEST(CatchupProtocol, JoinRejectedOnShardManifestMismatch) {
  // Real donor with 3 shards, real joiner with 2: the coordinator promises
  // the joiner's layout, the donor's first chunk reveals the truth, and
  // the joiner must refuse with the typed error rather than striping keys
  // onto the wrong workers.
  Bus bus(3);
  const auto mem = [](std::size_t) { return storage::MakeMemoryBackend(); };
  runtime::ReplicaServer donor(bus, 0, 3, mem);
  runtime::ReplicaServer joiner(bus, 1, 2, mem);

  RtMessage join;
  join.kind = RtMessage::Kind::kJoinReq;
  join.op = 5;
  join.value = 0;    // donor 0
  join.version = 2;  // the (wrong) promised layout
  bus.Send(2, 1, join);

  std::optional<Envelope> done = Await(bus, 2, RtMessage::Kind::kCatchupDone);
  ASSERT_TRUE(done);
  EXPECT_EQ(done->from, 1u);
  EXPECT_EQ(done->msg.op, 5u);
  EXPECT_EQ(done->msg.value, runtime::kJoinErrShardMismatch);
  donor.Shutdown();
  joiner.Shutdown();
}

// ---------------------------------------------------------------------------
// Property: live writes racing a join, varied interleavings.
// ---------------------------------------------------------------------------

constexpr int kPropKeys = 30;

TEST(CatchupProperty, LiveWritesDuringJoinNeverRegressAndLeaveNoGaps) {
  // Three rounds with different preload sizes and join start offsets vary
  // which writes land via bulk catchup, via the S_acked seal, and via
  // live installs under the new configuration. The invariants must hold
  // on every interleaving.
  const struct {
    int preload;
    std::chrono::milliseconds join_after;
  } rounds[] = {{kPropKeys, 0ms}, {kPropKeys, 15ms}, {5, 40ms}};
  for (const auto& round : rounds) {
    StoreOptions options;
    options.replicas = 3;
    options.max_clients = 4;
    options.shards_per_replica = 2;
    options.record_applied_history = true;
    ReplicatedStore store(options);

    {
      auto preload = store.MakeClient();
      for (int k = 0; k < round.preload; ++k) {
        ASSERT_TRUE(preload->Write(Pk(k), k).ok);
      }
    }

    // Single writer over all keys, pipelined, racing the join.
    std::atomic<bool> stop{false};
    std::uint64_t last_version[kPropKeys] = {};
    std::int64_t last_value[kPropKeys] = {};
    std::set<std::int64_t> attempted[kPropKeys];
    std::thread writer([&] {
      runtime::AsyncQuorumClient::Options copts;
      copts.timeout = 250ms;
      copts.max_attempts = 8;
      copts.window = 8;
      copts.max_batch = 4;
      auto client = store.MakeAsyncClient(copts);
      std::vector<runtime::OpFuture> futures;
      std::vector<int> keys;
      for (int i = 0; !stop.load() && i < 4000; ++i) {
        const int k = i % kPropKeys;
        futures.push_back(client->SubmitWrite(Pk(k), 1000 + i));
        keys.push_back(k);
        attempted[k].insert(1000 + i);
      }
      client->Drain();
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const runtime::ClientResult r = futures[i].Get();
        if (!r.ok) continue;
        const int k = keys[i];
        EXPECT_GT(r.version, last_version[k]) << "acked version regressed";
        last_version[k] = r.version;
        last_value[k] = static_cast<std::int64_t>(1000 + i);
      }
      EXPECT_EQ(client->ClientStats().divergences_observed, 0u);
    });

    std::this_thread::sleep_for(round.join_after);
    const MembershipReport join = AddReplica(store);
    EXPECT_TRUE(join.ok) << join.error;
    stop.store(true);
    writer.join();
    ASSERT_TRUE(join.ok) << "round with preload " << round.preload;
    EXPECT_EQ(store.Members().size(), 4u);
    EXPECT_GT(join.catchup_entries + join.seal_entries, 0u);

    // The joiner never regressed a version (its applied history is the
    // interleaving of catchup chunks, seal installs, and live writes) and
    // never holds state no founding replica can witness.
    std::set<std::tuple<std::string, std::uint64_t, std::int64_t>> witness;
    for (NodeId r = 0; r < 3; ++r) {
      const runtime::ReplicaSnapshot snap = store.ReplicaPeek(r);
      for (const runtime::AppliedWrite& w : snap.history) {
        witness.emplace(w.key, w.version, w.value);
      }
      for (const auto& kv : snap.image.data) {
        witness.emplace(kv.first, kv.second.version, kv.second.value);
      }
    }
    const runtime::ReplicaSnapshot js = store.ReplicaPeek(join.node);
    std::map<std::string, std::uint64_t> last_applied;
    for (const runtime::AppliedWrite& w : js.history) {
      auto [it, first] = last_applied.emplace(w.key, w.version);
      if (!first) {
        EXPECT_GT(w.version, it->second)
            << "joiner applied a stale version of " << w.key;
        it->second = w.version;
      }
    }
    for (const auto& kv : js.image.data) {
      EXPECT_EQ(witness.count({kv.first, kv.second.version, kv.second.value}),
                1u)
          << "joiner holds unwitnessed state " << kv.first << " v"
          << kv.second.version << " = " << kv.second.value;
    }

    // Force the joiner into every read quorum (majority-of-4 minus one
    // founding member needs it): every acked write must still be served.
    store.Crash(0);
    auto audit = store.MakeClient();
    for (int k = 0; k < kPropKeys; ++k) {
      if (last_version[k] == 0) continue;
      const runtime::ClientResult r = audit->Read(Pk(k));
      ASSERT_TRUE(r.ok) << Pk(k);
      EXPECT_GE(r.version, last_version[k]) << "acked write lost on " << Pk(k);
      if (r.version == last_version[k]) {
        EXPECT_EQ(r.value, last_value[k]);
      } else {
        EXPECT_EQ(attempted[k].count(r.value), 1u)
            << "never-written value " << r.value << " on " << Pk(k);
      }
    }
    EXPECT_EQ(audit->DivergencesObserved(), 0u);
    store.Recover(0);
  }
}

// ---------------------------------------------------------------------------
// Acceptance: 3 -> 5 -> 3 under sustained pipelined traffic, Bus and TCP.
// ---------------------------------------------------------------------------

struct Observation {
  bool is_write = false;
  int key = 0;
  std::int64_t value = 0;
  runtime::ClientResult result;
};

constexpr int kE2eKeys = 6;

std::string CKey(int client, int k) {
  return "c" + std::to_string(client) + "k" + std::to_string(k);
}

/// Pipelined single-writer workload that runs until `stop`: round-robin
/// writes with periodic reads, per-client key namespace.
std::vector<Observation> PumpTraffic(ReplicatedStore& store, int index,
                                     std::atomic<bool>& stop) {
  runtime::AsyncQuorumClient::Options copts;
  copts.timeout = 250ms;
  copts.max_attempts = 10;
  copts.window = 8;
  copts.max_batch = 4;
  auto client = store.MakeAsyncClient(copts);
  std::vector<Observation> obs;
  std::vector<runtime::OpFuture> futures;
  for (int i = 0; !stop.load() && i < 30000; ++i) {
    const int k = i % kE2eKeys;
    const std::int64_t value = 1000 * index + i;
    futures.push_back(client->SubmitWrite(CKey(index, k), value));
    obs.push_back(Observation{true, k, value, {}});
    if (i % 4 == 3) {
      const int rk = (i / 4) % kE2eKeys;
      futures.push_back(client->SubmitRead(CKey(index, rk)));
      obs.push_back(Observation{false, rk, 0, {}});
    }
    if (i % 64 == 63) std::this_thread::sleep_for(1ms);
  }
  client->Drain();
  for (std::size_t i = 0; i < obs.size(); ++i) obs[i].result = futures[i].Get();
  EXPECT_EQ(client->ClientStats().divergences_observed, 0u)
      << "client " << index << " observed Lemma 8 divergence";
  return obs;
}

class MembershipE2E : public ::testing::TestWithParam<const char*> {};

TEST_P(MembershipE2E, GrowToFiveShrinkToThreeUnderPipelinedTraffic) {
  StoreOptions options;
  options.replicas = 3;
  options.max_clients = 4;
  // Pinned above one so the dispatch/split/config-barrier paths run even
  // on single-core machines where the auto default resolves to 1.
  options.shards_per_replica = 2;
  if (std::string(GetParam()) == "tcp") {
    options.tcp = runtime::TcpStoreOptions{};
  }
  ReplicatedStore store(std::move(options));

  constexpr int kClients = 2;
  std::atomic<bool> stop{false};
  std::vector<std::vector<Observation>> all(kClients);
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back(
        [&store, &all, &stop, c] { all[c] = PumpTraffic(store, c, stop); });
  }

  // Membership script, against live traffic: grow 3 -> 5, then remove two
  // *founding* members — the final configuration {2, j1, j2} cannot form
  // any quorum without the replicas that joined at runtime, so the final
  // audit proves the streamed handover lost nothing.
  std::this_thread::sleep_for(50ms);
  const MembershipReport g1 = AddReplica(store);
  ASSERT_TRUE(g1.ok) << g1.error;
  EXPECT_EQ(store.Members().size(), 4u);
  EXPECT_TRUE(g1.drained);
  const MembershipReport g2 = AddReplica(store);
  ASSERT_TRUE(g2.ok) << g2.error;
  EXPECT_EQ(store.Members().size(), 5u);
  EXPECT_NE(g1.node, g2.node);
  EXPECT_GT(g2.generation, g1.generation);
  std::this_thread::sleep_for(50ms);
  const MembershipReport s1 = RemoveReplica(store, 0);
  ASSERT_TRUE(s1.ok) << s1.error;
  EXPECT_TRUE(s1.drained) << "a live leaver must be drained";
  EXPECT_EQ(store.Members().size(), 4u);
  const MembershipReport s2 = RemoveReplica(store, 1);
  ASSERT_TRUE(s2.ok) << s2.error;
  EXPECT_EQ(store.Members().size(), 3u);
  const std::vector<NodeId> members = store.Members();
  EXPECT_EQ(members, (std::vector<NodeId>{2, g1.node, g2.node}));

  std::this_thread::sleep_for(50ms);
  stop.store(true);
  for (auto& w : workers) w.join();

  // Client-side sequential-equivalence envelope across all four
  // configuration changes: acked writes strictly increase per key, acked
  // reads never miss an acked write nor return a never-written value.
  std::uint64_t completed = 0, failed = 0;
  std::uint64_t last_version[kClients][kE2eKeys] = {};
  std::int64_t last_value[kClients][kE2eKeys] = {};
  std::set<std::int64_t> attempted[kClients][kE2eKeys];
  for (int c = 0; c < kClients; ++c) {
    for (const Observation& o : all[c]) {
      const runtime::ClientResult& r = o.result;
      ++completed;
      if (o.is_write) attempted[c][o.key].insert(o.value);
      if (!r.ok) {
        ++failed;
        continue;
      }
      if (o.is_write) {
        EXPECT_GT(r.version, last_version[c][o.key])
            << "acked write version regressed on " << CKey(c, o.key);
        last_version[c][o.key] = r.version;
        last_value[c][o.key] = o.value;
      } else {
        EXPECT_GE(r.version, last_version[c][o.key])
            << "read missed an acked write on " << CKey(c, o.key);
        if (r.version == last_version[c][o.key] && r.version != 0) {
          EXPECT_EQ(r.value, last_value[c][o.key]);
        }
        if (r.version != 0) {
          EXPECT_EQ(attempted[c][o.key].count(r.value), 1u)
              << "read returned never-written value " << r.value << " on "
              << CKey(c, o.key);
        }
      }
    }
  }
  // Retries must mask the reconfiguration windows almost entirely.
  EXPECT_LE(failed * 20, completed)  // <= 5%
      << failed << " of " << completed << " ops failed";

  // Zero data loss: a fresh client (which starts from the final
  // configuration) re-reads every key; majority-of-3 over {2, j1, j2}
  // always counts at least one runtime-joined replica.
  auto audit = store.MakeClient();
  for (int c = 0; c < kClients; ++c) {
    for (int k = 0; k < kE2eKeys; ++k) {
      if (last_version[c][k] == 0) continue;
      const runtime::ClientResult r = audit->Read(CKey(c, k));
      ASSERT_TRUE(r.ok) << CKey(c, k);
      EXPECT_GE(r.version, last_version[c][k])
          << "acked write lost across membership changes on " << CKey(c, k);
      if (r.version == last_version[c][k]) {
        EXPECT_EQ(r.value, last_value[c][k]);
      } else {
        EXPECT_EQ(attempted[c][k].count(r.value), 1u);
      }
    }
  }
  EXPECT_EQ(audit->DivergencesObserved(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Transports, MembershipE2E,
                         ::testing::Values("bus", "tcp"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Spill-mode donors: catchup streamed from the checkpoint chain.
// ---------------------------------------------------------------------------

// With spill_cold_reads the donors' in-memory maps hold only the
// un-checkpointed tail, so the bulk of the joiner's pull must come out
// of ServeCatchup's cold half (Backend::ScanAbove over the checkpoint
// chain, merged with the hot tail). The joiner must still end up with
// every acked key at the acked value.
TEST(CatchupSpill, JoinerPullsColdCheckpointStateFromDonors) {
  namespace fs = std::filesystem;
  const std::string dir = "reconfig_catchup_spill_scratch";
  fs::remove_all(dir);

  constexpr int kColdKeys = 150;
  const auto key = [](int i) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "cold_%04d", i);
    return std::string(buf);
  };
  {
    StoreOptions options;
    options.replicas = 3;
    options.shards_per_replica = 2;
    storage::DurabilityOptions durability;
    durability.directory = dir;
    durability.fsync = storage::FsyncPolicy::kAlways;
    durability.checkpoint_tail_bytes = 1024;  // evict early and often
    durability.segment_bytes = 512;
    durability.spill_cold_reads = true;
    options.durability = durability;
    ReplicatedStore store(options);

    {
      auto preload = store.MakeClient();
      for (int i = 0; i < kColdKeys; ++i) {
        ASSERT_TRUE(preload->Write(key(i), 1000 + i).ok) << key(i);
      }
    }
    ASSERT_GE(store.TotalStorageStats().checkpoints_written, 3u)
        << "preload never spilled — the test would only cover the hot path";

    const MembershipReport join = AddReplica(store);
    ASSERT_TRUE(join.ok) << join.error;
    EXPECT_EQ(store.Members().size(), 4u);
    EXPECT_GE(join.catchup_entries + join.seal_entries,
              static_cast<std::uint64_t>(kColdKeys));

    // The joiner's logical image (Peek overlays its own cold chain)
    // holds every preloaded key at the acked value.
    const runtime::ReplicaSnapshot snap = store.ReplicaPeek(join.node);
    for (int i = 0; i < kColdKeys; ++i) {
      const auto it = snap.image.data.find(key(i));
      ASSERT_TRUE(it != snap.image.data.end())
          << key(i) << " never reached the joiner";
      EXPECT_EQ(it->second.value, 1000 + i) << key(i);
    }

    // And the joiner carries real read quorums: with a founder down,
    // majority-of-4 needs it.
    store.Crash(0);
    auto audit = store.MakeClient();
    for (int i = 0; i < kColdKeys; i += 13) {
      const runtime::ClientResult r = audit->Read(key(i));
      ASSERT_TRUE(r.ok) << key(i);
      EXPECT_EQ(r.value, 1000 + i);
    }
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace qcnt::reconfig
