// Chaos soak: multi-client pipelined load against a store whose bus
// drops, duplicates, delays, and reorders every message — plus a mid-run
// partition and a crash/recover cycle — asserting the sequential-
// equivalence invariants of runtime_shard_test under genuinely hostile
// delivery:
//
//   * acked write versions are strictly increasing per key;
//   * an acked read returns a version ≥ the last acked write and a value
//     this writer actually wrote, and every observation of a version
//     binds it to one value (Lemma 8, client side);
//   * replica applied histories are strictly increasing per key and agree
//     on the value of every version across replicas (Lemma 8, replica
//     side);
//   * both clients' divergence counters stay zero.
//
// Per-client key namespaces make the single-writer reference model exact.
// The schedule is seeded (QCNT_FAULT_SEED overrides, for the CI chaos
// matrix); timing still varies run to run, which is the point of a soak —
// the invariants must hold on every interleaving.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "reconfig/catchup.hpp"
#include "runtime/store.hpp"

namespace qcnt::runtime {
namespace {

using namespace std::chrono_literals;

constexpr int kClients = 3;
constexpr int kKeysPerClient = 5;
constexpr int kIterations = 220;

std::string Key(int client, int k) {
  return "c" + std::to_string(client) + "k" + std::to_string(k);
}

struct Observation {
  bool is_write = false;
  int key = 0;
  std::int64_t value = 0;  // written value; meaningless for reads
  ClientResult result;
};

/// One client's workload: round-robin writes over its keys with periodic
/// reads, fully pipelined; returns the completed observations in
/// submission order (per-key FIFO makes that the per-key serial order).
std::vector<Observation> RunClient(ReplicatedStore& store, int index) {
  AsyncQuorumClient::Options copts;
  copts.timeout = 150ms;
  copts.max_attempts = 8;
  copts.window = 8;
  copts.max_batch = 4;
  auto client = store.MakeAsyncClient(copts);

  std::vector<Observation> obs;
  std::vector<OpFuture> futures;
  for (int i = 0; i < kIterations; ++i) {
    const int k = i % kKeysPerClient;
    const std::int64_t value = 1000 * index + i;
    futures.push_back(client->SubmitWrite(Key(index, k), value));
    obs.push_back(Observation{true, k, value, {}});
    if (i % 4 == 3) {
      const int rk = (i / 4) % kKeysPerClient;
      futures.push_back(client->SubmitRead(Key(index, rk)));
      obs.push_back(Observation{false, rk, 0, {}});
    }
  }
  client->Drain();
  for (std::size_t i = 0; i < obs.size(); ++i) obs[i].result = futures[i].Get();
  EXPECT_EQ(client->ClientStats().divergences_observed, 0u)
      << "client " << index << " observed Lemma 8 divergence";
  return obs;
}

TEST(ChaosSoak, InvariantsHoldUnderDropDupDelayReorderPartitionAndCrash) {
  StoreOptions options;
  options.replicas = 5;
  options.max_clients = kClients;
  options.record_applied_history = true;
  FaultPlan plan;
  plan.drop = 0.12;
  plan.duplicate = 0.08;
  plan.delay_min = 0us;
  plan.delay_max = 300us;
  plan.reorder_window = 8;
  plan.seed = 20260806;  // QCNT_FAULT_SEED overrides (CI chaos matrix)
  options.faults = plan;
  ReplicatedStore store(std::move(options));

  // Chaos script on the side: isolate replica 0 entirely (replicas and
  // clients — node ids 5..7 are the clients), heal, then one crash/
  // recover cycle on replica 1. Majority quorums of 5 stay available
  // throughout (at most one replica unreachable at a time).
  std::thread chaos([&store] {
    std::this_thread::sleep_for(150ms);
    store.Partition({0}, {1, 2, 3, 4, 5, 6, 7});
    std::this_thread::sleep_for(300ms);
    store.Heal();
    std::this_thread::sleep_for(150ms);
    store.Crash(1);
    std::this_thread::sleep_for(300ms);
    store.Recover(1);
  });

  std::vector<std::vector<Observation>> all(kClients);
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&store, &all, c] { all[c] = RunClient(store, c); });
  }
  for (auto& w : workers) w.join();
  chaos.join();

  // Client-side invariants, per (client, key): single writer, so the
  // acked history is the reference model.
  std::uint64_t completed = 0, failed = 0;
  // (client, key, version) -> value: every observation of a version must
  // agree with every other (the client-side Lemma 8 check).
  std::map<std::tuple<int, int, std::uint64_t>, std::int64_t> binding;
  for (int c = 0; c < kClients; ++c) {
    std::uint64_t last_acked_version[kKeysPerClient] = {};
    std::int64_t last_acked_value[kKeysPerClient] = {};
    // Every value this writer ever attempted for the key: a straggler
    // from a retries-exhausted write may legitimately be read later, but
    // a value never put on the wire must not be.
    std::set<std::int64_t> attempted[kKeysPerClient];
    for (const Observation& o : all[c]) {
      const ClientResult& r = o.result;
      ++completed;
      if (o.is_write) attempted[o.key].insert(o.value);
      if (!r.ok) {
        ++failed;
        continue;
      }
      if (o.is_write) {
        EXPECT_GT(r.version, last_acked_version[o.key])
            << "acked write version regressed on " << Key(c, o.key);
        last_acked_version[o.key] = r.version;
        last_acked_value[o.key] = o.value;
        const auto id = std::make_tuple(c, o.key, r.version);
        auto [it, inserted] = binding.emplace(id, o.value);
        EXPECT_EQ(it->second, o.value)
            << "version bound to two values on " << Key(c, o.key);
      } else {
        // An acked read reflects at least the last acked write (its
        // write quorum intersects every read quorum), and never a value
        // this writer did not produce.
        EXPECT_GE(r.version, last_acked_version[o.key])
            << "read missed an acked write on " << Key(c, o.key);
        if (r.version == last_acked_version[o.key] &&
            last_acked_version[o.key] != 0) {
          EXPECT_EQ(r.value, last_acked_value[o.key]);
        }
        if (r.version == 0) {
          EXPECT_EQ(r.value, 0);
        } else {
          EXPECT_EQ(attempted[o.key].count(r.value), 1u)
              << "read returned a never-written value " << r.value
              << " on " << Key(c, o.key);
          const auto id = std::make_tuple(c, o.key, r.version);
          auto [it, inserted] = binding.emplace(id, r.value);
          EXPECT_EQ(it->second, r.value)
              << "version bound to two values on " << Key(c, o.key);
        }
      }
    }
  }
  // Retries must mask nearly all of the injected loss.
  EXPECT_LE(failed * 50, completed)  // ≤ 2%
      << failed << " of " << completed << " ops failed";

  // Replica-side invariants: drain the fault layer, then audit every
  // replica's applied history — per-key versions strictly increasing, and
  // every (key, version) agreeing on its value across all replicas.
  store.FlushFaults();
  std::this_thread::sleep_for(50ms);  // let flushed stragglers apply
  std::map<std::pair<std::string, std::uint64_t>, std::int64_t> replica_bind;
  for (std::size_t r = 0; r < store.ReplicaCount(); ++r) {
    const ReplicaSnapshot snap = store.ReplicaPeek(r);
    EXPECT_FALSE(snap.history.empty());
    std::map<std::string, std::uint64_t> last;
    for (const AppliedWrite& w : snap.history) {
      auto [it, first] = last.emplace(w.key, w.version);
      if (!first) {
        EXPECT_GT(w.version, it->second)
            << "replica " << r << " applied a stale version of " << w.key;
        it->second = w.version;
      }
      auto [bit, inserted] =
          replica_bind.emplace(std::make_pair(w.key, w.version), w.value);
      EXPECT_EQ(bit->second, w.value)
          << "replicas diverge on " << w.key << " v" << w.version;
    }
  }

  const FaultStats stats = store.InjectedFaults();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.reordered, 0u);
}

/// Membership churn under the full fault plan: while the same pipelined
/// multi-client load runs over a lossy, duplicating, delaying, reordering
/// bus — with a partition pulse and a crash/recover cycle on the side —
/// the replica set grows and shrinks repeatedly (every add streams a
/// fresh joiner current via bulk catchup + seal; every remove drains the
/// leaver). The sequential-equivalence envelope, the zero-divergence
/// audits, and replica agreement must survive every configuration in the
/// sequence.
TEST(ChaosSoak, MembershipChurnUnderDropDupDelayReorderPartitionAndCrash) {
  StoreOptions options;
  options.replicas = 3;
  options.max_clients = kClients;
  options.record_applied_history = true;
  options.shards_per_replica = 2;
  FaultPlan plan;
  // Gentler than the static soak: the coordinator's bulk-catchup window
  // retries whole-join steps, so heavy loss mostly costs wall clock.
  plan.drop = 0.05;
  plan.duplicate = 0.05;
  plan.delay_min = 0us;
  plan.delay_max = 200us;
  plan.reorder_window = 6;
  plan.seed = 20260808;  // QCNT_FAULT_SEED overrides (CI chaos matrix)
  options.faults = plan;
  ReplicatedStore store(std::move(options));

  std::vector<std::vector<Observation>> all(kClients);
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&store, &all, c] { all[c] = RunClient(store, c); });
  }

  // Churn script, serialized with the other chaos: three add/remove
  // cycles interleaved with a partition pulse and a crash/recover cycle.
  // Every membership operation must succeed — the fault plan is within
  // what the per-step retries are designed to mask.
  reconfig::MembershipOptions mopts;
  mopts.step_timeout = std::chrono::milliseconds(500);
  mopts.client.timeout = std::chrono::milliseconds(400);
  mopts.client.max_attempts = 8;
  std::thread churn([&store, &mopts] {
    std::this_thread::sleep_for(50ms);
    for (int cycle = 0; cycle < 3; ++cycle) {
      const reconfig::MembershipReport grow = reconfig::AddReplica(store, mopts);
      EXPECT_TRUE(grow.ok) << "cycle " << cycle << ": " << grow.error;
      if (!grow.ok) return;
      EXPECT_EQ(store.Members().size(), 4u);
      if (cycle == 0) {
        // Partition pulse: isolate a founding replica (quorums of 4 stay
        // available) while the new member carries its share of the load.
        store.Partition({1}, {0, 2, 3, 4, 5, grow.node});
        std::this_thread::sleep_for(100ms);
        store.Heal();
      }
      if (cycle == 1) {
        store.Crash(2);
        std::this_thread::sleep_for(100ms);
        store.Recover(2);
        std::this_thread::sleep_for(50ms);
      }
      const reconfig::MembershipReport shrink =
          reconfig::RemoveReplica(store, grow.node, mopts);
      EXPECT_TRUE(shrink.ok) << "cycle " << cycle << ": " << shrink.error;
      if (!shrink.ok) return;
      EXPECT_TRUE(shrink.drained);
      EXPECT_EQ(store.Members().size(), 3u);
      std::this_thread::sleep_for(50ms);
    }
  });

  for (auto& w : workers) w.join();
  churn.join();
  EXPECT_EQ(store.Members(), (std::vector<NodeId>{0, 1, 2}))
      << "every churn cycle must have grown and shrunk back";

  // Same client-side audit as the static soak, across all six
  // configuration changes.
  std::uint64_t completed = 0, failed = 0;
  for (int c = 0; c < kClients; ++c) {
    std::uint64_t last_acked_version[kKeysPerClient] = {};
    std::int64_t last_acked_value[kKeysPerClient] = {};
    std::set<std::int64_t> attempted[kKeysPerClient];
    for (const Observation& o : all[c]) {
      const ClientResult& r = o.result;
      ++completed;
      if (o.is_write) attempted[o.key].insert(o.value);
      if (!r.ok) {
        ++failed;
        continue;
      }
      if (o.is_write) {
        EXPECT_GT(r.version, last_acked_version[o.key])
            << "acked write version regressed on " << Key(c, o.key);
        last_acked_version[o.key] = r.version;
        last_acked_value[o.key] = o.value;
      } else {
        EXPECT_GE(r.version, last_acked_version[o.key])
            << "read missed an acked write on " << Key(c, o.key);
        if (r.version == last_acked_version[o.key] &&
            last_acked_version[o.key] != 0) {
          EXPECT_EQ(r.value, last_acked_value[o.key]);
        }
        if (r.version != 0) {
          EXPECT_EQ(attempted[o.key].count(r.value), 1u)
              << "read returned a never-written value " << r.value << " on "
              << Key(c, o.key);
        }
      }
    }
  }
  // Churn windows plus injected loss must still be mostly masked.
  EXPECT_LE(failed * 20, completed)  // <= 5%
      << failed << " of " << completed << " ops failed";

  // Replica-side audit over the *surviving* members (removed joiners are
  // gone; the founding trio must agree with itself).
  store.FlushFaults();
  std::this_thread::sleep_for(50ms);
  std::map<std::pair<std::string, std::uint64_t>, std::int64_t> replica_bind;
  for (const NodeId r : store.Members()) {
    const ReplicaSnapshot snap = store.ReplicaPeek(r);
    EXPECT_FALSE(snap.history.empty());
    std::map<std::string, std::uint64_t> last;
    for (const AppliedWrite& w : snap.history) {
      auto [it, first] = last.emplace(w.key, w.version);
      if (!first) {
        EXPECT_GT(w.version, it->second)
            << "replica " << r << " applied a stale version of " << w.key;
        it->second = w.version;
      }
      auto [bit, inserted] =
          replica_bind.emplace(std::make_pair(w.key, w.version), w.value);
      EXPECT_EQ(bit->second, w.value)
          << "replicas diverge on " << w.key << " v" << w.version;
    }
  }

  const FaultStats stats = store.InjectedFaults();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.duplicated, 0u);
}

}  // namespace
}  // namespace qcnt::runtime
