// Tests for the Section-4 reconfiguration subsystem: reconfigurable DMs,
// spy automata, the three TM kinds, generation/version invariants, and the
// simulation theorem with dynamic configurations.
#include <gtest/gtest.h>

#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "reconfig/reconfig_dm.hpp"
#include "reconfig/spy.hpp"
#include "reconfig/theorem.hpp"
#include "reconfig/tms.hpp"
#include "txn/random_transaction.hpp"
#include "txn/scripted_transaction.hpp"
#include "txn/wellformed.hpp"

namespace qcnt::reconfig {
namespace {

using ioa::Create;
using ioa::RequestCommit;
using ioa::RequestCreate;

std::function<double(const ioa::Action&)> NoAborts() {
  return [](const ioa::Action& a) {
    return a.kind == ioa::ActionKind::kAbort ? 0.0 : 1.0;
  };
}

TEST(RSpec, MaterializesAllAccessKinds) {
  RSpec spec;
  const ItemId x =
      spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  spec.AddWriteTm(u, x, Plain{std::int64_t{1}});
  const TxnId rc = spec.AddReconfigTm(u, x, quorum::ReadOneWriteAll(3));
  spec.Finalize();

  std::size_t reads = 0, data_writes = 0, config_writes = 0;
  for (TxnId acc : spec.Type().Children(rc)) {
    if (spec.Type().KindOf(acc) == txn::AccessKind::kRead) {
      ++reads;
    } else if (std::holds_alternative<Versioned>(spec.Type().DataOf(acc))) {
      ++data_writes;
    } else {
      ++config_writes;
    }
  }
  EXPECT_EQ(reads, 3u);
  // versions 0..1 x values {0, 1} x 3 replicas = 12 data writes.
  EXPECT_EQ(data_writes, 12u);
  // one reconfigure-TM => generations {1} x 3 replicas.
  EXPECT_EQ(config_writes, 3u);
}

TEST(RSpec, PossibleConfigsDeduplicated) {
  RSpec spec;
  const ItemId x =
      spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  spec.AddReconfigTm(u, x, quorum::Majority(3));          // same as initial
  spec.AddReconfigTm(u, x, quorum::ReadOneWriteAll(3));   // new
  spec.Finalize();
  EXPECT_EQ(spec.PossibleConfigs(x).size(), 2u);
}

TEST(ReconfigDm, ReadReturnsFullSnapshot) {
  RSpec spec;
  const ItemId x =
      spec.AddItem("x", 2, quorum::Majority(2), Plain{std::int64_t{9}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId rtm = spec.AddReadTm(u, x);
  spec.Finalize();
  const ObjectId dm0 = spec.Item(x).dm_objects[0];
  ReconfigDm dm(spec, dm0);
  EXPECT_EQ(dm.Data(), (Versioned{0, Plain{std::int64_t{9}}}));
  EXPECT_EQ(dm.Stamp().generation, 0u);

  // Find a read access of the read-TM on replica 0.
  TxnId acc = kNoTxn;
  for (TxnId c : spec.Type().Children(rtm)) {
    if (spec.Type().ObjectOf(c) == dm0) acc = c;
  }
  ASSERT_NE(acc, kNoTxn);
  dm.Apply(Create(acc));
  std::vector<ioa::Action> outs;
  dm.EnabledOutputs(outs);
  ASSERT_EQ(outs.size(), 1u);
  const auto& snap = std::get<ReplicaSnapshot>(outs[0].value);
  EXPECT_EQ(snap.data.version, 0u);
  EXPECT_EQ(snap.stamp.config, quorum::Majority(2).ToPayload());
}

TEST(ReconfigDm, WritesDispatchOnPayload) {
  RSpec spec;
  const ItemId x =
      spec.AddItem("x", 2, quorum::Majority(2), Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId wtm = spec.AddWriteTm(u, x, Plain{std::int64_t{5}});
  const TxnId rc = spec.AddReconfigTm(u, x, quorum::ReadOneWriteAll(2));
  spec.Finalize();
  const ObjectId dm0 = spec.Item(x).dm_objects[0];
  ReconfigDm dm(spec, dm0);

  TxnId data_write = kNoTxn, config_write = kNoTxn;
  for (TxnId c : spec.Type().Children(wtm)) {
    if (spec.Type().KindOf(c) == txn::AccessKind::kWrite &&
        spec.Type().ObjectOf(c) == dm0) {
      data_write = c;
    }
  }
  for (TxnId c : spec.Type().Children(rc)) {
    if (spec.Type().ObjectOf(c) == dm0 &&
        std::holds_alternative<ConfigStamp>(spec.Type().DataOf(c))) {
      config_write = c;
    }
  }
  ASSERT_NE(data_write, kNoTxn);
  ASSERT_NE(config_write, kNoTxn);

  dm.Apply(Create(data_write));
  dm.Apply(RequestCommit(data_write, kNil));
  EXPECT_EQ(dm.Data().version, 1u);
  EXPECT_EQ(dm.Stamp().generation, 0u);  // data write leaves stamp alone

  dm.Apply(Create(config_write));
  dm.Apply(RequestCommit(config_write, kNil));
  EXPECT_EQ(dm.Data().version, 1u);  // config write leaves data alone
  EXPECT_EQ(dm.Stamp().generation, 1u);
  EXPECT_EQ(dm.Stamp().config, quorum::ReadOneWriteAll(2).ToPayload());
}

TEST(Spy, InvokesOnlyBetweenCreateAndRequestCommit) {
  RSpec spec;
  const ItemId x =
      spec.AddItem("x", 2, quorum::Majority(2), Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId rc = spec.AddReconfigTm(u, x, quorum::ReadOneWriteAll(2));
  spec.Finalize();

  Spy spy(spec.Type(), u, {rc});
  std::vector<ioa::Action> outs;
  spy.EnabledOutputs(outs);
  EXPECT_TRUE(outs.empty());  // user not created yet
  EXPECT_FALSE(spy.Enabled(RequestCreate(rc)));

  spy.Apply(Create(u));
  EXPECT_TRUE(spy.Enabled(RequestCreate(rc)));
  spy.Apply(RequestCommit(u, kNil));  // user announces completion
  EXPECT_FALSE(spy.Enabled(RequestCreate(rc)));
  outs.clear();
  spy.EnabledOutputs(outs);
  EXPECT_TRUE(outs.empty());
}

TEST(Spy, NeverRepeatsRequests) {
  RSpec spec;
  const ItemId x =
      spec.AddItem("x", 2, quorum::Majority(2), Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId rc = spec.AddReconfigTm(u, x, quorum::ReadOneWriteAll(2));
  spec.Finalize();
  Spy spy(spec.Type(), u, {rc});
  spy.Apply(Create(u));
  spy.Apply(RequestCreate(rc));
  EXPECT_FALSE(spy.Enabled(RequestCreate(rc)));
}

// --- end-to-end fixtures ----------------------------------------------------

struct EndToEnd {
  RSpec spec;
  ItemId x;
  TxnId u1, u2, u3;
  TxnId w1, r1, rc2, r3;
  UserAutomataFactory users;

  EndToEnd() {
    x = spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
    u1 = spec.AddTransaction(kRootTxn, "U1");
    w1 = spec.AddWriteTm(u1, x, Plain{std::int64_t{7}});
    r1 = spec.AddReadTm(u1, x);
    u2 = spec.AddTransaction(kRootTxn, "U2");
    rc2 = spec.AddReconfigTm(u2, x, quorum::ReadOneWriteAll(3));
    u3 = spec.AddTransaction(kRootTxn, "U3");
    r3 = spec.AddReadTm(u3, x);
    spec.Finalize(/*read_attempts=*/2);
    const RSpec* s = &spec;
    const TxnId cu1 = u1, cu2 = u2, cu3 = u3, cw1 = w1, cr1 = r1, cr3 = r3,
                crc2 = rc2;
    users = [s, cu1, cu2, cu3, cw1, cr1, cr3, crc2](ioa::System& sys) {
      sys.Emplace<txn::ScriptedTransaction>(
          s->Type(), kRootTxn, std::vector<TxnId>{cu1, cu2, cu3});
      sys.Emplace<txn::ScriptedTransaction>(s->Type(), cu1,
                                            std::vector<TxnId>{cw1, cr1});
      // U2 has no children of its own; its spy invokes the reconfiguration.
      sys.Emplace<txn::ScriptedTransaction>(s->Type(), cu2,
                                            std::vector<TxnId>{});
      sys.Emplace<Spy>(s->Type(), cu2, std::vector<TxnId>{crc2});
      sys.Emplace<txn::ScriptedTransaction>(s->Type(), cu3,
                                            std::vector<TxnId>{cr3});
    };
  }
};

TEST(ReconfigEndToEnd, ReadsCorrectAcrossReconfiguration) {
  EndToEnd f;
  ioa::System sys = BuildR(f.spec, f.users);
  Rng rng(42);
  ioa::ExploreOptions opts;
  // No aborts; U2 (which has no work of its own) may not announce
  // completion until its spy has launched the reconfiguration — otherwise
  // the run may legitimately skip it, which other tests cover.
  auto spy_fired = std::make_shared<bool>(false);
  opts.observer = [&f, spy_fired](const ioa::Action& a, const ioa::System&) {
    if (a.kind == ioa::ActionKind::kRequestCreate && a.txn == f.rc2) {
      *spy_fired = true;
    }
  };
  opts.weight = [&f, spy_fired](const ioa::Action& a) {
    if (a.kind == ioa::ActionKind::kAbort) return 0.0;
    if (a.kind == ioa::ActionKind::kRequestCommit && a.txn == f.u2) {
      return *spy_fired ? 1.0 : 0.0;
    }
    return 1.0;
  };
  const ioa::ExploreResult res = ioa::Explore(sys, rng, opts);
  ASSERT_TRUE(res.quiescent);
  std::string msg;
  ASSERT_TRUE(txn::IsWellFormed(f.spec.Type(), res.schedule, &msg)) << msg;

  // Both read-TMs must return 7 (written before any of them runs? U1's
  // read runs after U1's write; U3's read runs last).
  for (TxnId tm : {f.r1, f.r3}) {
    bool found = false;
    for (const ioa::Action& a : res.schedule) {
      if (a.kind == ioa::ActionKind::kRequestCommit && a.txn == tm) {
        EXPECT_EQ(a.value, Value{std::int64_t{7}}) << "tm " << tm;
        found = true;
      }
    }
    EXPECT_TRUE(found) << "read-TM " << tm << " never completed";
  }
  // The reconfiguration actually happened (spy is unstoppable without
  // aborts once U2 is created).
  EXPECT_EQ(CompletedReconfigs(f.spec, f.x, res.schedule).size(), 1u);
  EXPECT_EQ(CurrentConfiguration(f.spec, f.x, res.schedule),
            quorum::ReadOneWriteAll(3));
}

TEST(ReconfigEndToEnd, InvariantsHoldAtEveryStep) {
  EndToEnd f;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    ioa::System sys = BuildR(f.spec, f.users);
    ioa::Schedule so_far;
    RInvariantReport first_failure;
    Rng rng(seed);
    ioa::ExploreOptions opts;
    opts.weight = NoAborts();
    opts.observer = [&](const ioa::Action& a, const ioa::System& s) {
      so_far.push_back(a);
      if (!first_failure.ok) return;
      const RInvariantReport rep =
          CheckReconfigInvariants(f.spec, s, so_far);
      if (!rep.ok) first_failure = rep;
    };
    const ioa::ExploreResult res = ioa::Explore(sys, rng, opts);
    ASSERT_TRUE(res.quiescent);
    EXPECT_TRUE(first_failure.ok)
        << "seed " << seed << ": " << first_failure.message;
  }
}

TEST(ReconfigEndToEnd, TheoremHoldsWithAborts) {
  EndToEnd f;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    ioa::System sys = BuildR(f.spec, f.users);
    Rng rng(seed * 31 + 7);
    ioa::ExploreOptions opts;
    opts.weight = [&f](const ioa::Action& a) {
      if (a.kind != ioa::ActionKind::kAbort) return 1.0;
      // Abort replica accesses and occasionally whole TMs.
      return f.spec.IsReplicaAccess(a.txn) ? 0.4
             : f.spec.TmItem(a.txn) != kNoItem ? 0.1
                                               : 0.0;
    };
    const ioa::ExploreResult res = ioa::Explore(sys, rng, opts);
    ASSERT_TRUE(res.quiescent);
    const RTheoremResult t = CheckReconfigTheorem(f.spec, f.users, res.schedule);
    EXPECT_TRUE(t.ok) << "seed " << seed << ": " << t.message;
  }
}

TEST(ReconfigEndToEnd, ChainedReconfigurationsAdvanceGenerations) {
  // Two reconfigurations in sequence: majority -> ROWA -> grid-ish
  // (read-all-write-one), with writes interleaved between them.
  RSpec spec;
  const ItemId x =
      spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
  const TxnId u1 = spec.AddTransaction(kRootTxn, "U1");
  const TxnId w1 = spec.AddWriteTm(u1, x, Plain{std::int64_t{1}});
  const TxnId rc1 = spec.AddReconfigTm(u1, x, quorum::ReadOneWriteAll(3));
  const TxnId u2 = spec.AddTransaction(kRootTxn, "U2");
  const TxnId w2 = spec.AddWriteTm(u2, x, Plain{std::int64_t{2}});
  const TxnId rc2 = spec.AddReconfigTm(u2, x, quorum::ReadAllWriteOne(3));
  const TxnId u3 = spec.AddTransaction(kRootTxn, "U3");
  const TxnId r3 = spec.AddReadTm(u3, x);
  spec.Finalize();

  UserAutomataFactory users = [&](ioa::System& sys) {
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                          std::vector<TxnId>{u1, u2, u3});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u1,
                                          std::vector<TxnId>{w1});
    sys.Emplace<Spy>(spec.Type(), u1, std::vector<TxnId>{rc1});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u2,
                                          std::vector<TxnId>{w2});
    sys.Emplace<Spy>(spec.Type(), u2, std::vector<TxnId>{rc2});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u3,
                                          std::vector<TxnId>{r3});
  };

  ioa::System sys = BuildR(spec, users);
  Rng rng(11);
  ioa::ExploreOptions opts;
  opts.weight = NoAborts();
  const ioa::ExploreResult res = ioa::Explore(sys, rng, opts);
  ASSERT_TRUE(res.quiescent);

  EXPECT_EQ(CompletedReconfigs(spec, x, res.schedule).size(), 2u);
  // Final read sees the last write regardless of configuration churn.
  bool found = false;
  for (const ioa::Action& a : res.schedule) {
    if (a.kind == ioa::ActionKind::kRequestCommit && a.txn == r3) {
      EXPECT_EQ(a.value, Value{std::int64_t{2}});
      found = true;
    }
  }
  EXPECT_TRUE(found);
  const RTheoremResult t = CheckReconfigTheorem(spec, users, res.schedule);
  EXPECT_TRUE(t.ok) << t.message;
}

// --- randomized sweep -------------------------------------------------------

class ReconfigSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReconfigSweep, RandomSystemsSatisfyTheoremAndInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  RSpec spec;
  const ReplicaId n = static_cast<ReplicaId>(rng.Range(2, 4));
  const ItemId x =
      spec.AddItem("x", n, quorum::Majority(n), Plain{std::int64_t{0}});

  auto random_config = [&rng, n]() {
    switch (rng.Below(3)) {
      case 0:
        return quorum::ReadOneWriteAll(n);
      case 1:
        return quorum::ReadAllWriteOne(n);
      default:
        return quorum::Majority(n);
    }
  };

  struct UserPlan {
    TxnId user;
    std::vector<TxnId> script;
    std::vector<TxnId> reconfigs;
  };
  std::vector<UserPlan> plans;
  std::vector<TxnId> top;
  const std::size_t users_count = 1 + rng.Below(3);
  std::int64_t next = 1;
  for (std::size_t i = 0; i < users_count; ++i) {
    UserPlan plan;
    plan.user = spec.AddTransaction(kRootTxn, "U" + std::to_string(i));
    top.push_back(plan.user);
    const std::size_t tms = 1 + rng.Below(3);
    for (std::size_t k = 0; k < tms; ++k) {
      if (rng.Chance(0.5)) {
        plan.script.push_back(spec.AddReadTm(plan.user, x));
      } else {
        plan.script.push_back(spec.AddWriteTm(plan.user, x, Plain{next++}));
      }
    }
    if (rng.Chance(0.6)) {
      plan.reconfigs.push_back(
          spec.AddReconfigTm(plan.user, x, random_config()));
    }
    plans.push_back(std::move(plan));
  }
  spec.Finalize(/*read_attempts=*/2);

  UserAutomataFactory users = [&spec, &plans, &top](ioa::System& sys) {
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn, top);
    for (const UserPlan& plan : plans) {
      sys.Emplace<txn::ScriptedTransaction>(spec.Type(), plan.user,
                                            plan.script);
      if (!plan.reconfigs.empty()) {
        sys.Emplace<Spy>(spec.Type(), plan.user, plan.reconfigs);
      }
    }
  };

  ioa::System sys = BuildR(spec, users);
  ioa::Schedule so_far;
  RInvariantReport first_failure;
  ioa::ExploreOptions opts;
  const double abort_weight = rng.Chance(0.5) ? 0.0 : 0.3;
  opts.weight = [&spec, abort_weight](const ioa::Action& a) {
    if (a.kind != ioa::ActionKind::kAbort) return 1.0;
    return spec.IsReplicaAccess(a.txn) ? abort_weight : 0.0;
  };
  opts.observer = [&](const ioa::Action& a, const ioa::System& s) {
    so_far.push_back(a);
    if (!first_failure.ok) return;
    const RInvariantReport rep = CheckReconfigInvariants(spec, s, so_far);
    if (!rep.ok) first_failure = rep;
  };
  const ioa::ExploreResult res = ioa::Explore(sys, rng, opts);
  ASSERT_TRUE(res.quiescent);
  EXPECT_TRUE(first_failure.ok) << first_failure.message;

  std::string msg;
  EXPECT_TRUE(txn::IsWellFormed(spec.Type(), res.schedule, &msg)) << msg;
  const RTheoremResult t = CheckReconfigTheorem(spec, users, res.schedule);
  EXPECT_TRUE(t.ok) << t.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconfigSweep, ::testing::Range(0, 30));

}  // namespace
}  // namespace qcnt::reconfig
