// Directed tests for the read-TM and write-TM automata: quorum gating,
// version bookkeeping, the write-requested guard, and end-to-end logical
// operations in small serial systems.
#include <gtest/gtest.h>

#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "replication/read_tm.hpp"
#include "replication/theorem10.hpp"
#include "replication/write_tm.hpp"
#include "txn/scripted_transaction.hpp"

namespace qcnt::replication {
namespace {

using ioa::Abort;
using ioa::Commit;
using ioa::Create;
using ioa::RequestCommit;
using ioa::RequestCreate;

struct SpecFixture {
  ReplicatedSpec spec;
  ItemId x;
  TxnId u, read_tm, write_tm;
  SpecFixture() {
    x = spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
    u = spec.AddTransaction(kRootTxn, "U");
    write_tm = spec.AddWriteTm(u, x, Plain{std::int64_t{7}});
    read_tm = spec.AddReadTm(u, x);
    spec.Finalize(/*read_attempts=*/1, /*write_attempts=*/1);
  }

  /// Child of tm that is a read access to replica r.
  TxnId ReadAccess(TxnId tm, ReplicaId r) const {
    for (TxnId c : spec.Type().Children(tm)) {
      if (spec.Type().KindOf(c) == txn::AccessKind::kRead &&
          spec.ReplicaOf(spec.Type().ObjectOf(c)) == r) {
        return c;
      }
    }
    return kNoTxn;
  }

  /// Child of tm that writes version vn to replica r.
  TxnId WriteAccess(TxnId tm, ReplicaId r, std::uint64_t vn) const {
    for (TxnId c : spec.Type().Children(tm)) {
      if (spec.Type().KindOf(c) != txn::AccessKind::kWrite) continue;
      if (spec.ReplicaOf(spec.Type().ObjectOf(c)) != r) continue;
      if (std::get<Versioned>(spec.Type().DataOf(c)).version == vn) return c;
    }
    return kNoTxn;
  }
};

TEST(ReadTm, RequestCommitGatedOnReadQuorum) {
  SpecFixture f;
  ReadTm tm(f.spec, f.x, f.read_tm);
  tm.Apply(Create(f.read_tm));
  EXPECT_FALSE(tm.HasReadQuorum());
  EXPECT_FALSE(tm.Enabled(RequestCommit(f.read_tm, Value{std::int64_t{0}})));

  // Commits from replicas 0 and 1 form a majority.
  tm.Apply(Commit(f.ReadAccess(f.read_tm, 0),
                  Value{Versioned{0, Plain{std::int64_t{0}}}}));
  EXPECT_FALSE(tm.HasReadQuorum());
  tm.Apply(Commit(f.ReadAccess(f.read_tm, 1),
                  Value{Versioned{0, Plain{std::int64_t{0}}}}));
  EXPECT_TRUE(tm.HasReadQuorum());
  EXPECT_TRUE(tm.Enabled(RequestCommit(f.read_tm, Value{std::int64_t{0}})));
}

TEST(ReadTm, KeepsHighestVersion) {
  SpecFixture f;
  ReadTm tm(f.spec, f.x, f.read_tm);
  tm.Apply(Create(f.read_tm));
  tm.Apply(Commit(f.ReadAccess(f.read_tm, 0),
                  Value{Versioned{2, Plain{std::int64_t{20}}}}));
  tm.Apply(Commit(f.ReadAccess(f.read_tm, 1),
                  Value{Versioned{1, Plain{std::int64_t{10}}}}));
  EXPECT_EQ(tm.Data().version, 2u);
  EXPECT_EQ(tm.Data().value, Plain{std::int64_t{20}});
  // The TM returns the highest-versioned value, not the latest received.
  EXPECT_TRUE(tm.Enabled(RequestCommit(f.read_tm, Value{std::int64_t{20}})));
  EXPECT_FALSE(tm.Enabled(RequestCommit(f.read_tm, Value{std::int64_t{10}})));
}

TEST(ReadTm, AbortHasNoPostconditions) {
  SpecFixture f;
  ReadTm tm(f.spec, f.x, f.read_tm);
  tm.Apply(Create(f.read_tm));
  tm.Apply(Commit(f.ReadAccess(f.read_tm, 0),
                  Value{Versioned{1, Plain{std::int64_t{5}}}}));
  const auto before_mask = tm.ReadMask();
  const auto before_data = tm.Data();
  tm.Apply(Abort(f.ReadAccess(f.read_tm, 1)));
  EXPECT_EQ(tm.ReadMask(), before_mask);
  EXPECT_EQ(tm.Data(), before_data);
}

TEST(ReadTm, NoDuplicateRequestCreate) {
  SpecFixture f;
  ReadTm tm(f.spec, f.x, f.read_tm);
  tm.Apply(Create(f.read_tm));
  const TxnId acc = f.ReadAccess(f.read_tm, 0);
  EXPECT_TRUE(tm.Enabled(RequestCreate(acc)));
  tm.Apply(RequestCreate(acc));
  EXPECT_FALSE(tm.Enabled(RequestCreate(acc)));
}

TEST(ReadTm, AsleepAfterRequestCommit) {
  SpecFixture f;
  ReadTm tm(f.spec, f.x, f.read_tm);
  tm.Apply(Create(f.read_tm));
  tm.Apply(Commit(f.ReadAccess(f.read_tm, 0),
                  Value{Versioned{0, Plain{std::int64_t{0}}}}));
  tm.Apply(Commit(f.ReadAccess(f.read_tm, 1),
                  Value{Versioned{0, Plain{std::int64_t{0}}}}));
  tm.Apply(RequestCommit(f.read_tm, Value{std::int64_t{0}}));
  EXPECT_FALSE(tm.Awake());
  std::vector<ioa::Action> outs;
  tm.EnabledOutputs(outs);
  EXPECT_TRUE(outs.empty());
}

TEST(WriteTm, WriteAccessGatedOnReadQuorumAndVersion) {
  SpecFixture f;
  WriteTm tm(f.spec, f.x, f.write_tm);
  tm.Apply(Create(f.write_tm));
  const TxnId w0v1 = f.WriteAccess(f.write_tm, 0, 1);
  ASSERT_NE(w0v1, kNoTxn);
  EXPECT_FALSE(tm.Enabled(RequestCreate(w0v1)));  // no read quorum yet

  tm.Apply(Commit(f.ReadAccess(f.write_tm, 0),
                  Value{Versioned{0, Plain{std::int64_t{0}}}}));
  tm.Apply(Commit(f.ReadAccess(f.write_tm, 1),
                  Value{Versioned{0, Plain{std::int64_t{0}}}}));
  EXPECT_TRUE(tm.HasReadQuorum());
  // Version to write is current + 1 = 1.
  EXPECT_TRUE(tm.Enabled(RequestCreate(w0v1)));
}

TEST(WriteTm, ReadCommitsIgnoredAfterWriteRequested) {
  SpecFixture f;
  WriteTm tm(f.spec, f.x, f.write_tm);
  tm.Apply(Create(f.write_tm));
  tm.Apply(Commit(f.ReadAccess(f.write_tm, 0),
                  Value{Versioned{0, Plain{std::int64_t{0}}}}));
  tm.Apply(Commit(f.ReadAccess(f.write_tm, 1),
                  Value{Versioned{0, Plain{std::int64_t{0}}}}));
  tm.Apply(RequestCreate(f.WriteAccess(f.write_tm, 0, 1)));
  EXPECT_TRUE(tm.WriteRequested());
  // A late read COMMIT reporting the TM's own write must not bump the
  // version (the paper's write-requested guard).
  tm.Apply(Commit(f.ReadAccess(f.write_tm, 2),
                  Value{Versioned{1, Plain{std::int64_t{7}}}}));
  EXPECT_EQ(tm.Data().version, 0u);
}

TEST(WriteTm, RequestCommitGatedOnWriteQuorum) {
  SpecFixture f;
  WriteTm tm(f.spec, f.x, f.write_tm);
  tm.Apply(Create(f.write_tm));
  tm.Apply(Commit(f.ReadAccess(f.write_tm, 0),
                  Value{Versioned{0, Plain{std::int64_t{0}}}}));
  tm.Apply(Commit(f.ReadAccess(f.write_tm, 1),
                  Value{Versioned{0, Plain{std::int64_t{0}}}}));
  EXPECT_FALSE(tm.Enabled(RequestCommit(f.write_tm, kNil)));
  tm.Apply(Commit(f.WriteAccess(f.write_tm, 0, 1), kNil));
  EXPECT_FALSE(tm.HasWriteQuorum());
  tm.Apply(Commit(f.WriteAccess(f.write_tm, 1, 1), kNil));
  EXPECT_TRUE(tm.HasWriteQuorum());
  EXPECT_TRUE(tm.Enabled(RequestCommit(f.write_tm, kNil)));
  // Write-TMs commit with nil only.
  EXPECT_FALSE(
      tm.Enabled(RequestCommit(f.write_tm, Value{std::int64_t{7}})));
}

TEST(WriteTm, EnabledOutputsOfferOnlyCorrectVersion) {
  SpecFixture f;
  WriteTm tm(f.spec, f.x, f.write_tm);
  tm.Apply(Create(f.write_tm));
  tm.Apply(Commit(f.ReadAccess(f.write_tm, 0),
                  Value{Versioned{0, Plain{std::int64_t{0}}}}));
  tm.Apply(Commit(f.ReadAccess(f.write_tm, 1),
                  Value{Versioned{0, Plain{std::int64_t{0}}}}));
  std::vector<ioa::Action> outs;
  tm.EnabledOutputs(outs);
  for (const ioa::Action& a : outs) {
    if (a.kind != ioa::ActionKind::kRequestCreate) continue;
    if (f.spec.Type().KindOf(a.txn) != txn::AccessKind::kWrite) continue;
    EXPECT_EQ(std::get<Versioned>(f.spec.Type().DataOf(a.txn)).version, 1u);
  }
}

// --- end-to-end logical operations ----------------------------------------

TEST(TmEndToEnd, WriteThenReadReturnsWrittenValue) {
  SpecFixture f;
  ioa::System sys = BuildB(f.spec, [&f](ioa::System& s) {
    s.Emplace<txn::ScriptedTransaction>(f.spec.Type(), kRootTxn,
                                        std::vector<TxnId>{f.u});
    s.Emplace<txn::ScriptedTransaction>(
        f.spec.Type(), f.u, std::vector<TxnId>{f.write_tm, f.read_tm});
  });
  Rng rng(2024);
  ioa::ExploreOptions opts;
  opts.weight = [](const ioa::Action& a) {
    return a.kind == ioa::ActionKind::kAbort ? 0.0 : 1.0;
  };
  const ioa::ExploreResult r = ioa::Explore(sys, rng, opts);
  EXPECT_TRUE(r.quiescent);
  // Find the read-TM's REQUEST-COMMIT: must carry the written value 7.
  bool found = false;
  for (const ioa::Action& a : r.schedule) {
    if (a.kind == ioa::ActionKind::kRequestCommit && a.txn == f.read_tm) {
      EXPECT_EQ(a.value, Value{std::int64_t{7}});
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TmEndToEnd, ReadToleratesMinorityAccessAborts) {
  // With 2 read attempts per DM and majority quorums, the logical read
  // completes even when the scheduler aborts several accesses.
  ReplicatedSpec spec;
  const ItemId x =
      spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{3}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId rtm = spec.AddReadTm(u, x);
  spec.Finalize(/*read_attempts=*/3);

  std::size_t completed = 0, aborted_accesses = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    ioa::System sys = BuildB(spec, [&](ioa::System& s) {
      s.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                          std::vector<TxnId>{u});
      s.Emplace<txn::ScriptedTransaction>(spec.Type(), u,
                                          std::vector<TxnId>{rtm});
    });
    Rng rng(seed);
    ioa::ExploreOptions opts;
    // Abort replica accesses with weight 0.5, never abort TMs/users.
    opts.weight = [&spec](const ioa::Action& a) {
      if (a.kind != ioa::ActionKind::kAbort) return 1.0;
      return spec.IsReplicaAccess(a.txn) ? 0.5 : 0.0;
    };
    const ioa::ExploreResult r = ioa::Explore(sys, rng, opts);
    EXPECT_TRUE(r.quiescent);
    for (const ioa::Action& a : r.schedule) {
      if (a.kind == ioa::ActionKind::kAbort) ++aborted_accesses;
      if (a.kind == ioa::ActionKind::kRequestCommit && a.txn == rtm) {
        EXPECT_EQ(a.value, Value{std::int64_t{3}});
        ++completed;
      }
    }
  }
  // Aborts really occurred, and most runs still completed the read.
  EXPECT_GT(aborted_accesses, 0u);
  EXPECT_GT(completed, 20u);
}

}  // namespace
}  // namespace qcnt::replication
