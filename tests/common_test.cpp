// Unit tests for common utilities: RNG determinism and distributions,
// Value semantics, and the check macros.
#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/value.hpp"

namespace qcnt {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(10), 10u);
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / trials, 5.0, 0.3);
}

TEST(Rng, ForkIndependentStreams) {
  Rng a(21);
  Rng b = a.Fork();
  // The fork and the parent should not produce identical streams.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Value, NilDetection) {
  EXPECT_TRUE(IsNil(kNil));
  EXPECT_FALSE(IsNil(Value{std::int64_t{0}}));
  EXPECT_TRUE(IsNil(Plain{std::monostate{}}));
  EXPECT_FALSE(IsNil(Plain{std::string{"x"}}));
}

TEST(Value, PlainRoundTrip) {
  const Plain p{std::int64_t{42}};
  EXPECT_EQ(ToPlain(FromPlain(p)), p);
  const Plain s{std::string{"hello"}};
  EXPECT_EQ(ToPlain(FromPlain(s)), s);
  const Plain nil{};
  EXPECT_EQ(ToPlain(FromPlain(nil)), nil);
}

TEST(Value, ToPlainRejectsVersioned) {
  EXPECT_THROW(ToPlain(Value{Versioned{1, Plain{std::int64_t{5}}}}),
               InvariantViolation);
}

TEST(Value, VersionedEquality) {
  const Versioned a{3, Plain{std::int64_t{7}}};
  const Versioned b{3, Plain{std::int64_t{7}}};
  const Versioned c{4, Plain{std::int64_t{7}}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Value, ToStringRendering) {
  EXPECT_EQ(ToString(kNil), "nil");
  EXPECT_EQ(ToString(Value{std::int64_t{5}}), "5");
  EXPECT_EQ(ToString(Value{std::string{"ab"}}), "\"ab\"");
  EXPECT_EQ(ToString(Versioned{2, Plain{std::int64_t{9}}}), "(vn=2,9)");
}

TEST(Value, ConfigStampEquality) {
  QuorumSetPayload q{{{0, 1}}, {{1, 2}}};
  ConfigStamp a{q, 1}, b{q, 1}, c{q, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Check, ThrowsOnViolation) {
  EXPECT_THROW(QCNT_CHECK(false), InvariantViolation);
  EXPECT_NO_THROW(QCNT_CHECK(true));
}

TEST(Check, MessageIncluded) {
  try {
    QCNT_CHECK_MSG(false, "custom detail");
    FAIL() << "should have thrown";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail"), std::string::npos);
  }
}

}  // namespace
}  // namespace qcnt
