// Unit and property tests for configurations and quorum strategies:
// legality (the paper's intersection requirement), strategy construction,
// and agreement between explicit configurations and predicate systems.
#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hpp"
#include "quorum/strategies.hpp"

namespace qcnt::quorum {
namespace {

TEST(Quorum, NormalizeSortsAndDedupes) {
  Quorum q{3, 1, 3, 2, 1};
  Normalize(q);
  EXPECT_EQ(q, (Quorum{1, 2, 3}));
}

TEST(Quorum, Intersects) {
  EXPECT_TRUE(Intersects({1, 2, 3}, {3, 4}));
  EXPECT_FALSE(Intersects({1, 2}, {3, 4}));
  EXPECT_FALSE(Intersects({}, {1}));
}

TEST(Quorum, IsSubset) {
  EXPECT_TRUE(IsSubset({1, 3}, {1, 2, 3}));
  EXPECT_FALSE(IsSubset({1, 4}, {1, 2, 3}));
  EXPECT_TRUE(IsSubset({}, {1}));
}

TEST(Configuration, LegalityRequiresIntersection) {
  const Configuration legal({{0, 1}}, {{1, 2}});
  EXPECT_TRUE(legal.IsLegal());
  const Configuration illegal({{0}}, {{1, 2}});
  EXPECT_FALSE(illegal.IsLegal());
  EXPECT_FALSE(illegal.HasIntersectionProperty());
}

TEST(Configuration, EmptyQuorumSetIsNotLegal) {
  const Configuration c({}, {{0}});
  EXPECT_TRUE(c.HasIntersectionProperty());  // vacuous
  EXPECT_FALSE(c.IsLegal());
}

TEST(Configuration, MinimizedDropsSupersets) {
  const Configuration c({{0}, {0, 1}, {1, 2}}, {{0, 1, 2}});
  const Configuration m = c.Minimized();
  EXPECT_EQ(m.ReadQuorums().size(), 2u);
  for (const Quorum& q : m.ReadQuorums()) {
    EXPECT_NE(q, (Quorum{0, 1}));
  }
}

TEST(Configuration, PayloadRoundTrip) {
  const Configuration c({{0, 1}, {2}}, {{0, 2}});
  const Configuration back = Configuration::FromPayload(c.ToPayload());
  EXPECT_EQ(c, back);
}

TEST(Configuration, UniverseSize) {
  const Configuration c({{0, 5}}, {{2}});
  EXPECT_EQ(c.UniverseSize(), 6u);
  EXPECT_EQ(Configuration{}.UniverseSize(), 0u);
}

TEST(Strategies, ReadOneWriteAllShape) {
  const Configuration c = ReadOneWriteAll(4);
  EXPECT_TRUE(c.IsLegal());
  EXPECT_EQ(c.ReadQuorums().size(), 4u);
  EXPECT_EQ(c.WriteQuorums().size(), 1u);
  EXPECT_EQ(c.WriteQuorums()[0].size(), 4u);
}

TEST(Strategies, ReadAllWriteOneShape) {
  const Configuration c = ReadAllWriteOne(3);
  EXPECT_TRUE(c.IsLegal());
  EXPECT_EQ(c.ReadQuorums().size(), 1u);
  EXPECT_EQ(c.WriteQuorums().size(), 3u);
}

TEST(Strategies, MajorityShape) {
  const Configuration c = Majority(5);
  EXPECT_TRUE(c.IsLegal());
  // C(5,3) = 10 three-element quorums.
  EXPECT_EQ(c.ReadQuorums().size(), 10u);
  for (const Quorum& q : c.ReadQuorums()) EXPECT_EQ(q.size(), 3u);
}

TEST(Strategies, MajorityEvenUniverse) {
  const Configuration c = Majority(4);
  EXPECT_TRUE(c.IsLegal());
  for (const Quorum& q : c.ReadQuorums()) EXPECT_EQ(q.size(), 3u);
}

TEST(Strategies, WeightedVotingGiffordExample) {
  // Votes 2,1,1 with r=2, w=3 (total 4, r+w=5>4).
  const Configuration c = WeightedVoting({2, 1, 1}, 2, 3);
  EXPECT_TRUE(c.IsLegal());
  // Replica 0 alone is a read quorum.
  bool has_singleton = false;
  for (const Quorum& q : c.ReadQuorums()) {
    if (q == Quorum{0}) has_singleton = true;
  }
  EXPECT_TRUE(has_singleton);
}

TEST(Strategies, WeightedVotingRejectsBadThresholds) {
  EXPECT_ANY_THROW(WeightedVoting({1, 1, 1}, 1, 1));  // r + w <= total
  EXPECT_ANY_THROW(WeightedVoting({1, 1, 1, 1}, 3, 2));  // 2w <= total
}

TEST(Strategies, GridLegal) {
  const Configuration c = Grid(2, 3);
  EXPECT_TRUE(c.IsLegal());
  // Read quorums are column covers of size 3.
  for (const Quorum& q : c.ReadQuorums()) EXPECT_EQ(q.size(), 3u);
}

TEST(Strategies, PrimaryCopyLegal) {
  const Configuration c = PrimaryCopy(5);
  EXPECT_TRUE(c.IsLegal());
  EXPECT_EQ(c.ReadQuorums(), c.WriteQuorums());
}

TEST(Strategies, AllExplicitConfigsLegalSweep) {
  for (ReplicaId n = 1; n <= 7; ++n) {
    EXPECT_TRUE(ReadOneWriteAll(n).IsLegal()) << "rowa n=" << n;
    EXPECT_TRUE(ReadAllWriteOne(n).IsLegal()) << "rawo n=" << n;
    EXPECT_TRUE(Majority(n).IsLegal()) << "maj n=" << n;
    EXPECT_TRUE(PrimaryCopy(n).IsLegal()) << "primary n=" << n;
  }
  for (ReplicaId rows = 1; rows <= 3; ++rows) {
    for (ReplicaId cols = 1; cols <= 3; ++cols) {
      EXPECT_TRUE(Grid(rows, cols).IsLegal())
          << "grid " << rows << "x" << cols;
    }
  }
}

// --- agreement between explicit configurations and predicate systems ------

struct AgreementCase {
  const char* name;
  Configuration config;
  QuorumSystem system;
};

class AgreementTest : public ::testing::TestWithParam<int> {};

std::vector<AgreementCase> AgreementCases() {
  std::vector<AgreementCase> cases;
  cases.push_back({"rowa5", ReadOneWriteAll(5), ReadOneWriteAllSystem(5)});
  cases.push_back({"rawo4", ReadAllWriteOne(4), ReadAllWriteOneSystem(4)});
  cases.push_back({"maj5", Majority(5), MajoritySystem(5)});
  cases.push_back({"maj6", Majority(6), MajoritySystem(6)});
  cases.push_back({"grid2x3", Grid(2, 3), GridSystem(2, 3)});
  cases.push_back({"grid3x2", Grid(3, 2), GridSystem(3, 2)});
  cases.push_back({"wv", WeightedVoting({2, 1, 1, 1}, 2, 4),
                   WeightedVotingSystem({2, 1, 1, 1}, 2, 4)});
  cases.push_back({"primary6", PrimaryCopy(6), PrimaryCopySystem(6)});
  return cases;
}

TEST_P(AgreementTest, PredicateMatchesEnumeration) {
  const AgreementCase c = AgreementCases()[static_cast<std::size_t>(GetParam())];
  const QuorumSystem from_config = FromConfiguration("enum", c.config);
  const ReplicaId n = c.system.n;
  ASSERT_LE(n, 12u);
  for (std::uint64_t up = 0; up < (1ull << n); ++up) {
    EXPECT_EQ(c.system.has_read(up), from_config.has_read(up))
        << c.name << " read disagreement at up=" << up;
    EXPECT_EQ(c.system.has_write(up), from_config.has_write(up))
        << c.name << " write disagreement at up=" << up;
  }
}

TEST_P(AgreementTest, PickedQuorumsAreContainedAndValid) {
  const AgreementCase c = AgreementCases()[static_cast<std::size_t>(GetParam())];
  const ReplicaId n = c.system.n;
  for (std::uint64_t up = 0; up < (1ull << n); ++up) {
    const auto r = c.system.pick_read(up);
    EXPECT_EQ(r.has_value(), c.system.has_read(up)) << c.name;
    if (r) {
      for (ReplicaId id : *r) EXPECT_TRUE(up & (1ull << id)) << c.name;
    }
    const auto w = c.system.pick_write(up);
    EXPECT_EQ(w.has_value(), c.system.has_write(up)) << c.name;
    if (w) {
      for (ReplicaId id : *w) EXPECT_TRUE(up & (1ull << id)) << c.name;
    }
    // Intersection property: any picked read quorum must intersect any
    // picked write quorum (spot-check of legality on the predicate side).
    if (r && w) {
      EXPECT_TRUE(Intersects(*r, *w)) << c.name << " up=" << up;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, AgreementTest,
                         ::testing::Range(0, 8));

TEST(Strategies, HierarchicalMajoritySystemBasics) {
  const QuorumSystem s = HierarchicalMajoritySystem(3, 2);  // n = 9
  EXPECT_EQ(s.n, 9u);
  const std::uint64_t full = (1ull << 9) - 1;
  EXPECT_TRUE(s.has_read(full));
  EXPECT_FALSE(s.has_read(0));
  const auto q = s.pick_read(full);
  ASSERT_TRUE(q.has_value());
  // Hierarchical quorum over 3^2 replicas has size 2^2 = 4 < majority 5.
  EXPECT_EQ(q->size(), 4u);
}

TEST(Strategies, HierarchicalQuorumsIntersect) {
  const QuorumSystem s = HierarchicalMajoritySystem(3, 2);
  // Any two up-sets that both contain quorums must yield intersecting
  // picks... not true in general for arbitrary pairs of picks from
  // different up-sets unless the coterie property holds. Verify the
  // coterie property directly: picks from complementary-ish masks overlap.
  const std::uint64_t full = (1ull << 9) - 1;
  for (std::uint64_t a = 0; a < (1ull << 9); a += 37) {
    const auto qa = s.pick_read(a);
    if (!qa) continue;
    const auto qb = s.pick_read(full);
    ASSERT_TRUE(qb.has_value());
    EXPECT_TRUE(Intersects(*qa, *qb));
  }
}

}  // namespace
}  // namespace qcnt::quorum

namespace qcnt::quorum {
namespace {

TEST(TreeQuorum, ShapeAndSizes) {
  const QuorumSystem s = TreeQuorumSystem(3, 2);  // 1 root + 3 leaves? no: 1+3 = 4 nodes
  EXPECT_EQ(s.n, 4u);
  const QuorumSystem deep = TreeQuorumSystem(3, 3);  // 1 + 3 + 9 = 13 nodes
  EXPECT_EQ(deep.n, 13u);
}

TEST(TreeQuorum, RootAloneIsAReadQuorum) {
  const QuorumSystem s = TreeQuorumSystem(3, 3);
  const auto q = s.pick_read((1ull << 13) - 1);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, Quorum{0});
}

TEST(TreeQuorum, ReadDegradesGracefullyWhenRootFails) {
  const QuorumSystem s = TreeQuorumSystem(3, 2);
  const std::uint64_t no_root = 0b1110;  // leaves 1,2,3 up, root down
  EXPECT_TRUE(s.has_read(no_root));
  const auto q = s.pick_read(no_root);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->size(), 2u);  // majority of the 3 children
}

TEST(TreeQuorum, WritesRequireTheRoot) {
  const QuorumSystem s = TreeQuorumSystem(3, 2);
  EXPECT_FALSE(s.has_write(0b1110));  // root down
  EXPECT_TRUE(s.has_write(0b0111));   // root + children 1,2
  const auto q = s.pick_write(0b1111);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->size(), 3u);  // root + 2 of 3 children
}

TEST(TreeQuorum, ReadWriteIntersectionExhaustive) {
  const QuorumSystem s = TreeQuorumSystem(3, 2);
  const std::uint64_t full = (1ull << s.n) - 1;
  for (std::uint64_t a = 0; a <= full; ++a) {
    const auto r = s.pick_read(a);
    if (!r) continue;
    for (std::uint64_t b = 0; b <= full; ++b) {
      const auto w = s.pick_write(b);
      if (!w) continue;
      EXPECT_TRUE(Intersects(*r, *w))
          << "read up=" << a << " write up=" << b;
    }
  }
}

TEST(TreeQuorum, WriteWriteIntersectionExhaustive) {
  const QuorumSystem s = TreeQuorumSystem(3, 2);
  const std::uint64_t full = (1ull << s.n) - 1;
  for (std::uint64_t a = 0; a <= full; ++a) {
    const auto w1 = s.pick_write(a);
    if (!w1) continue;
    for (std::uint64_t b = a; b <= full; ++b) {
      const auto w2 = s.pick_write(b);
      if (!w2) continue;
      EXPECT_TRUE(Intersects(*w1, *w2));
    }
  }
}

TEST(TreeQuorum, PicksAreContainedInUpSet) {
  const QuorumSystem s = TreeQuorumSystem(3, 3);
  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t up = rng.Next() & ((1ull << 13) - 1);
    for (const auto& pick : {s.pick_read(up), s.pick_write(up)}) {
      if (!pick) continue;
      for (ReplicaId r : *pick) EXPECT_TRUE(up & (1ull << r));
    }
  }
}

TEST(TreeQuorum, CheapReadsDeepTree) {
  // 13 replicas: tree read costs 1 (root), majority read costs 7.
  const QuorumSystem tree = TreeQuorumSystem(3, 3);
  const QuorumSystem maj = MajoritySystem(13);
  const std::uint64_t full = (1ull << 13) - 1;
  EXPECT_EQ(tree.pick_read(full)->size(), 1u);
  EXPECT_EQ(maj.pick_read(full)->size(), 7u);
}

}  // namespace
}  // namespace qcnt::quorum
