// Tests for simulator fault handling: retransmission under heavy drops and
// quorum behavior across network partitions.
#include <gtest/gtest.h>

#include "quorum/strategies.hpp"
#include "sim/store.hpp"

namespace qcnt::sim {
namespace {

Deployment MakeLossy(double drop, std::uint64_t seed, Time retransmit) {
  std::vector<quorum::QuorumSystem> configs{quorum::MajoritySystem(5)};
  QuorumStoreClient::Options opts;
  opts.timeout = 500.0;
  opts.retransmit_interval = retransmit;
  return Deployment(5, 1, configs, 0, LatencyModel::Uniform(1.0, 3.0), drop,
                    seed, opts);
}

TEST(Retransmit, SurvivesHeavyDrops) {
  // At 40% drop probability a single broadcast of 5 requests frequently
  // misses a 3-response quorum (the replies are lossy too); periodic
  // retransmission recovers.
  std::size_t ok_without = 0, ok_with = 0;
  const std::size_t trials = 40;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    {
      Deployment d = MakeLossy(0.4, seed, 0.0);
      OpResult w;
      d.clients[0]->Write(1, [&](const OpResult& r) { w = r; });
      d.sim.Run();
      if (w.ok) ++ok_without;
    }
    {
      Deployment d = MakeLossy(0.4, seed, 25.0);
      OpResult w;
      d.clients[0]->Write(1, [&](const OpResult& r) { w = r; });
      d.sim.Run();
      if (w.ok) ++ok_with;
    }
  }
  EXPECT_EQ(ok_with, trials);       // retransmission always gets through
  EXPECT_LT(ok_without, trials);    // naked broadcasts sometimes fail
}

TEST(Retransmit, IdempotentUnderDuplicates) {
  // Aggressive retransmission duplicates every request; versions must not
  // be double-incremented.
  Deployment d = MakeLossy(0.0, 1, 2.0);
  for (std::int64_t v = 1; v <= 3; ++v) {
    OpResult w;
    d.clients[0]->Write(v * 10, [&](const OpResult& r) { w = r; });
    d.sim.Run();
    ASSERT_TRUE(w.ok);
  }
  OpResult r;
  d.clients[0]->Read([&](const OpResult& res) { r = res; });
  d.sim.Run();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 30);
  // Every replica holds version exactly 3.
  for (const auto& replica : d.replicas) {
    EXPECT_EQ(replica->Version(), 3u);
  }
}

TEST(Partition, MajoritySideStaysLive) {
  std::vector<quorum::QuorumSystem> configs{quorum::MajoritySystem(5)};
  QuorumStoreClient::Options opts;
  opts.timeout = 200.0;
  // Client is node 5; put it with replicas {0,1,2}.
  Deployment d(5, 1, configs, 0, LatencyModel::Fixed(1.0), 0.0, 3, opts);
  d.net.Partition(0b100111 /* replicas 0,1,2 + client(5) */);

  OpResult w;
  d.clients[0]->Write(7, [&](const OpResult& r) { w = r; });
  d.sim.Run();
  EXPECT_TRUE(w.ok);  // 3 of 5 reachable: still a majority
}

TEST(Partition, MinoritySideBlocksThenHeals) {
  std::vector<quorum::QuorumSystem> configs{quorum::MajoritySystem(5)};
  QuorumStoreClient::Options opts;
  opts.timeout = 200.0;
  Deployment d(5, 1, configs, 0, LatencyModel::Fixed(1.0), 0.0, 3, opts);
  // Client with only replicas {0,1}: a minority island.
  d.net.Partition(0b100011);

  OpResult w1;
  d.clients[0]->Write(7, [&](const OpResult& r) { w1 = r; });
  d.sim.Run();
  EXPECT_FALSE(w1.ok);

  d.net.Heal();
  OpResult w2;
  d.clients[0]->Write(8, [&](const OpResult& r) { w2 = r; });
  d.sim.Run();
  EXPECT_TRUE(w2.ok);

  OpResult r;
  d.clients[0]->Read([&](const OpResult& res) { r = res; });
  d.sim.Run();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 8);
}

TEST(Partition, NoSplitBrainWithMajorityQuorums) {
  // Clients on both sides of a partition: at most one side can write.
  std::vector<quorum::QuorumSystem> configs{quorum::MajoritySystem(5)};
  QuorumStoreClient::Options opts;
  opts.timeout = 200.0;
  Deployment d(5, 2, configs, 0, LatencyModel::Fixed(1.0), 0.0, 9, opts);
  // Side A: replicas {0,1,2} + client 5. Side B: replicas {3,4} + client 6.
  d.net.Partition(0b0100111);

  OpResult wa, wb;
  d.clients[0]->Write(1, [&](const OpResult& r) { wa = r; });
  d.clients[1]->Write(2, [&](const OpResult& r) { wb = r; });
  d.sim.Run();
  EXPECT_TRUE(wa.ok);
  EXPECT_FALSE(wb.ok);  // the minority side cannot commit a write
}

}  // namespace
}  // namespace qcnt::sim
