// Unit tests for the durability subsystem: Wal framing and replay,
// snapshot write/load, and RecoveryManager composition of the two.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "storage/crc32.hpp"
#include "storage/recovery.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

namespace qcnt::storage {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// Fresh scratch directory under the test's working directory, removed on
/// scope exit.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path((fs::path("storage_test_scratch") / tag).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  // Remove only this test's leaf (ctest -j runs sibling cases in the same
  // working directory concurrently; the shared parent must survive).
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

WalRecord Write(const std::string& key, std::uint64_t version,
                std::int64_t value) {
  WalRecord r;
  r.type = WalRecord::Type::kWrite;
  r.key = key;
  r.version = version;
  r.value = value;
  return r;
}

WalRecord Config(std::uint64_t generation, std::uint32_t config_id) {
  WalRecord r;
  r.type = WalRecord::Type::kConfig;
  r.generation = generation;
  r.config_id = config_id;
  return r;
}

std::vector<WalRecord> ReplayAll(const std::string& path,
                                 Wal::ReplayResult* result = nullptr) {
  std::vector<WalRecord> records;
  const Wal::ReplayResult r =
      Wal::Replay(path, [&](const WalRecord& rec) { records.push_back(rec); });
  if (result) *result = r;
  return records;
}

TEST(Crc32, KnownVector) {
  // The standard CRC-32 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string s = "quorum consensus";
  const std::uint32_t split = Crc32(s.data() + 0, 7);
  EXPECT_EQ(Crc32(s.data() + 7, s.size() - 7, split),
            Crc32(s.data(), s.size()));
}

TEST(Wal, AppendReplayRoundTrip) {
  ScratchDir dir("wal_roundtrip");
  const std::string path = dir.path + "/wal.log";
  {
    Wal wal(path, {});
    wal.Append(Write("alpha", 1, 10));
    wal.Append(Write("beta", 2, -20));
    wal.Append(Config(3, 1));
    EXPECT_EQ(wal.RecordsAppended(), 3u);
  }
  Wal::ReplayResult result;
  const std::vector<WalRecord> records = ReplayAll(path, &result);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(records[0].key, "alpha");
  EXPECT_EQ(records[0].version, 1u);
  EXPECT_EQ(records[0].value, 10);
  EXPECT_EQ(records[1].value, -20);
  EXPECT_EQ(records[2].type, WalRecord::Type::kConfig);
  EXPECT_EQ(records[2].generation, 3u);
  EXPECT_EQ(records[2].config_id, 1u);
}

TEST(Wal, MissingFileIsEmptyLog) {
  Wal::ReplayResult result;
  EXPECT_TRUE(ReplayAll("does_not_exist.log", &result).empty());
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(result.valid_bytes, 0u);
}

TEST(Wal, AppendsPersistAcrossReopen) {
  ScratchDir dir("wal_reopen");
  const std::string path = dir.path + "/wal.log";
  {
    Wal wal(path, {});
    wal.Append(Write("a", 1, 1));
  }
  {
    Wal wal(path, {});
    wal.Append(Write("b", 2, 2));
  }
  EXPECT_EQ(ReplayAll(path).size(), 2u);
}

TEST(Wal, BatchAppendFramesIdenticallyToSingleAppends) {
  ScratchDir dir("wal_batch");
  const std::string batch_path = dir.path + "/batch.log";
  const std::string single_path = dir.path + "/single.log";
  const std::vector<WalRecord> records = {
      Write("alpha", 1, 10), Write("beta", 1, 20), Write("alpha", 2, 30)};
  {
    Wal wal(batch_path, {});
    wal.AppendBatch(records);
    EXPECT_EQ(wal.RecordsAppended(), 3u);
  }
  {
    Wal wal(single_path, {});
    for (const WalRecord& r : records) wal.Append(r);
  }
  // Replay cannot tell a batch append from repeated single appends: the
  // byte streams are identical.
  std::ifstream a(batch_path, std::ios::binary), b(single_path,
                                                   std::ios::binary);
  const std::string bytes_a{std::istreambuf_iterator<char>(a), {}};
  const std::string bytes_b{std::istreambuf_iterator<char>(b), {}};
  EXPECT_EQ(bytes_a, bytes_b);
  const std::vector<WalRecord> replayed = ReplayAll(batch_path);
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed[2].key, "alpha");
  EXPECT_EQ(replayed[2].version, 2u);
  EXPECT_EQ(replayed[2].value, 30);
}

TEST(Wal, BatchAppendSyncsOncePerBatchUnderAlways) {
  ScratchDir dir("wal_batch_sync");
  Wal wal(dir.path + "/wal.log", {FsyncPolicy::kAlways, {}});
  wal.AppendBatch({Write("a", 1, 1), Write("b", 1, 2), Write("c", 1, 3)});
  // The batch is the commit unit: one fsync covers all three records, so
  // an ack sent after AppendBatch still implies durability of every one.
  EXPECT_EQ(wal.Fsyncs(), 1u);
  wal.AppendBatch({Write("a", 2, 4)});
  EXPECT_EQ(wal.Fsyncs(), 2u);
}

TEST(Wal, TornBatchTailRecoversFrameAlignedPrefix) {
  ScratchDir dir("wal_torn_batch");
  const std::string path = dir.path + "/wal.log";
  std::uint64_t size_after_two = 0, full_size = 0;
  {
    Wal wal(path, {});
    wal.AppendBatch({Write("a", 1, 1), Write("b", 1, 2)});
    size_after_two = wal.SizeBytes();
    wal.AppendBatch({Write("a", 2, 3), Write("b", 2, 4)});
    full_size = wal.SizeBytes();
  }
  // Crash mid-batch: the second batch's write(2) was cut partway through
  // its final frame. Recovery must yield a frame-aligned prefix — the
  // whole first batch plus the intact leading frames of the second, never
  // a half-applied record.
  fs::resize_file(path, full_size - 5);
  Wal::ReplayResult result;
  const std::vector<WalRecord> records = ReplayAll(path, &result);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].key, "a");
  EXPECT_EQ(records[2].version, 2u);
  EXPECT_TRUE(result.torn_tail);
  EXPECT_GE(result.valid_bytes, size_after_two);
}

TEST(Wal, TornFinalRecordDiscardedByCrc) {
  ScratchDir dir("wal_torn");
  const std::string path = dir.path + "/wal.log";
  std::uint64_t full_size = 0;
  {
    Wal wal(path, {});
    wal.Append(Write("a", 1, 1));
    wal.Append(Write("b", 2, 2));
    full_size = wal.SizeBytes();
  }
  // Chop bytes off the final frame: a crash mid-append.
  fs::resize_file(path, full_size - 3);
  Wal::ReplayResult result;
  const std::vector<WalRecord> records = ReplayAll(path, &result);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "a");
  EXPECT_TRUE(result.torn_tail);
  EXPECT_LT(result.valid_bytes, full_size - 3);
}

TEST(Wal, CorruptedPayloadByteDiscardedByCrc) {
  ScratchDir dir("wal_corrupt");
  const std::string path = dir.path + "/wal.log";
  std::uint64_t first_end = 0;
  {
    Wal wal(path, {});
    wal.Append(Write("a", 1, 1));
    first_end = wal.SizeBytes();
    wal.Append(Write("b", 2, 2));
  }
  {
    // Flip one byte inside the second record's payload.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(first_end) + 10);
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(first_end) + 10);
    f.put(static_cast<char>(c ^ 0x5A));
  }
  Wal::ReplayResult result;
  const std::vector<WalRecord> records = ReplayAll(path, &result);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(result.torn_tail);
}

TEST(Wal, TruncateToCutsTailAndAllowsAppend) {
  ScratchDir dir("wal_truncate");
  const std::string path = dir.path + "/wal.log";
  std::uint64_t first_end = 0;
  {
    Wal wal(path, {});
    wal.Append(Write("a", 1, 1));
    first_end = wal.SizeBytes();
    wal.Append(Write("b", 2, 2));
  }
  {
    Wal wal(path, {});
    wal.TruncateTo(first_end);
    wal.Append(Write("c", 3, 3));
  }
  const std::vector<WalRecord> records = ReplayAll(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[1].key, "c");
}

TEST(Wal, FsyncPolicyAlwaysSyncsEveryRecord) {
  ScratchDir dir("wal_fsync_always");
  Wal wal(dir.path + "/wal.log", {FsyncPolicy::kAlways, 0us});
  for (int i = 0; i < 5; ++i) wal.Append(Write("k", i + 1, i));
  EXPECT_EQ(wal.Fsyncs(), 5u);
}

TEST(Wal, FsyncPolicyNeverNeverSyncs) {
  ScratchDir dir("wal_fsync_never");
  Wal wal(dir.path + "/wal.log", {FsyncPolicy::kNever, 0us});
  for (int i = 0; i < 5; ++i) wal.Append(Write("k", i + 1, i));
  EXPECT_EQ(wal.Fsyncs(), 0u);
  // But an explicit Sync still lands.
  wal.Sync();
  EXPECT_EQ(wal.Fsyncs(), 1u);
}

TEST(Wal, GroupCommitBatchesWithinWindow) {
  ScratchDir dir("wal_fsync_group");
  // An hour-long window: nothing inside the test can expire it.
  Wal wal(dir.path + "/wal.log", {FsyncPolicy::kGroupCommit, 3600s});
  for (int i = 0; i < 100; ++i) wal.Append(Write("k", i + 1, i));
  EXPECT_EQ(wal.Fsyncs(), 0u);
  wal.Sync();  // one fsync covers the whole batch
  EXPECT_EQ(wal.Fsyncs(), 1u);
  // A zero-length window degenerates to always.
  Wal eager(dir.path + "/wal2.log", {FsyncPolicy::kGroupCommit, 0us});
  for (int i = 0; i < 5; ++i) eager.Append(Write("k", i + 1, i));
  EXPECT_EQ(eager.Fsyncs(), 5u);
}

TEST(Snapshot, RoundTrip) {
  ScratchDir dir("snap_roundtrip");
  Image image;
  image.generation = 7;
  image.config_id = 2;
  image.data["x"] = {3, 30};
  image.data["y"] = {1, -5};
  WriteSnapshot(dir.path, image);
  const std::optional<Image> loaded = LoadSnapshot(dir.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 7u);
  EXPECT_EQ(loaded->config_id, 2u);
  ASSERT_EQ(loaded->data.size(), 2u);
  EXPECT_EQ(loaded->data.at("x").version, 3u);
  EXPECT_EQ(loaded->data.at("x").value, 30);
  EXPECT_EQ(loaded->data.at("y").value, -5);
}

TEST(Snapshot, MissingReturnsNullopt) {
  ScratchDir dir("snap_missing");
  EXPECT_FALSE(LoadSnapshot(dir.path).has_value());
}

TEST(Snapshot, CorruptionDetectedByCrc) {
  ScratchDir dir("snap_corrupt");
  Image image;
  image.data["x"] = {1, 1};
  WriteSnapshot(dir.path, image);
  {
    std::fstream f(SnapshotPath(dir.path),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(12);
    f.put('\x7F');
  }
  EXPECT_FALSE(LoadSnapshot(dir.path).has_value());
}

TEST(Snapshot, ReinstallReplacesAtomically) {
  ScratchDir dir("snap_reinstall");
  Image a;
  a.data["x"] = {1, 1};
  WriteSnapshot(dir.path, a);
  Image b;
  b.data["x"] = {2, 2};
  WriteSnapshot(dir.path, b);
  const std::optional<Image> loaded = LoadSnapshot(dir.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->data.at("x").version, 2u);
  EXPECT_FALSE(fs::exists(dir.path + "/snapshot.tmp"));
}

TEST(Recovery, EmptyDirectoryYieldsEmptyImage) {
  ScratchDir dir("rec_empty");
  const RecoveryManager::Result r = RecoveryManager(dir.path).Recover();
  EXPECT_TRUE(r.image.data.empty());
  EXPECT_FALSE(r.from_snapshot);
  EXPECT_EQ(r.replayed, 0u);
}

TEST(Recovery, LogOnly) {
  ScratchDir dir("rec_log");
  {
    Wal wal(RecoveryManager::WalPath(dir.path), {});
    wal.Append(Write("x", 1, 10));
    wal.Append(Write("x", 2, 20));
    wal.Append(Config(1, 1));
  }
  const RecoveryManager::Result r = RecoveryManager(dir.path).Recover();
  EXPECT_FALSE(r.from_snapshot);
  EXPECT_EQ(r.replayed, 3u);
  EXPECT_EQ(r.image.data.at("x").version, 2u);
  EXPECT_EQ(r.image.data.at("x").value, 20);
  EXPECT_EQ(r.image.generation, 1u);
  EXPECT_EQ(r.image.config_id, 1u);
}

TEST(Recovery, SnapshotOnly) {
  ScratchDir dir("rec_snap");
  Image image;
  image.generation = 4;
  image.config_id = 1;
  image.data["x"] = {9, 90};
  WriteSnapshot(dir.path, image);
  const RecoveryManager::Result r = RecoveryManager(dir.path).Recover();
  EXPECT_TRUE(r.from_snapshot);
  EXPECT_EQ(r.replayed, 0u);
  EXPECT_EQ(r.image.data.at("x").version, 9u);
  EXPECT_EQ(r.image.generation, 4u);
}

TEST(Recovery, SnapshotPlusLogTail) {
  ScratchDir dir("rec_snap_tail");
  Image image;
  image.data["x"] = {5, 50};
  WriteSnapshot(dir.path, image);
  {
    Wal wal(RecoveryManager::WalPath(dir.path), {});
    // One record the snapshot already covers (idempotent overlap) and two
    // genuinely newer ones.
    wal.Append(Write("x", 5, 50));
    wal.Append(Write("x", 6, 60));
    wal.Append(Write("y", 1, 11));
  }
  const RecoveryManager::Result r = RecoveryManager(dir.path).Recover();
  EXPECT_TRUE(r.from_snapshot);
  EXPECT_EQ(r.replayed, 3u);
  EXPECT_EQ(r.image.data.at("x").version, 6u);
  EXPECT_EQ(r.image.data.at("x").value, 60);
  EXPECT_EQ(r.image.data.at("y").value, 11);
}

TEST(Recovery, TornLogTailIgnored) {
  ScratchDir dir("rec_torn");
  const std::string wal_path = RecoveryManager::WalPath(dir.path);
  std::uint64_t full_size = 0;
  {
    Wal wal(wal_path, {});
    wal.Append(Write("x", 1, 10));
    wal.Append(Write("y", 1, 20));
    full_size = wal.SizeBytes();
  }
  fs::resize_file(wal_path, full_size - 1);
  const RecoveryManager::Result r = RecoveryManager(dir.path).Recover();
  EXPECT_TRUE(r.torn_tail);
  EXPECT_EQ(r.replayed, 1u);
  EXPECT_EQ(r.image.data.at("x").value, 10);
  EXPECT_EQ(r.image.data.count("y"), 0u);
}

TEST(Recovery, StaleLogOverNewerSnapshotIsHarmless) {
  // Compaction resets the log after installing a snapshot; if a crash hit
  // between the install and the reset, recovery replays records the
  // snapshot already absorbed. The newer-version-wins merge makes this a
  // no-op rather than a rollback.
  ScratchDir dir("rec_stale_log");
  {
    Wal wal(RecoveryManager::WalPath(dir.path), {});
    wal.Append(Write("x", 1, 10));
    wal.Append(Write("x", 2, 20));
  }
  Image newer;
  newer.data["x"] = {3, 30};
  WriteSnapshot(dir.path, newer);
  const RecoveryManager::Result r = RecoveryManager(dir.path).Recover();
  EXPECT_EQ(r.image.data.at("x").version, 3u);
  EXPECT_EQ(r.image.data.at("x").value, 30);
}

}  // namespace
}  // namespace qcnt::storage
