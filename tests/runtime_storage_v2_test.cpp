// Store-level coverage for the v2 storage engine: spill-mode cold reads
// through the full quorum path, Peek overlaying the checkpoint chain,
// O(tail) crash recovery, the adaptive group-commit window end to end,
// and in-place upgrade of a legacy v1 store directory.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "runtime/store.hpp"
#include "storage/manifest.hpp"
#include "storage/recovery.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

namespace qcnt::runtime {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path((fs::path("runtime_storage_v2_scratch") / tag).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

std::string Pk(int i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "key_%04d", i);
  return buf;
}

StoreOptions SpillOptions(const std::string& dir) {
  StoreOptions options;
  options.replicas = 3;
  options.shards_per_replica = 2;
  storage::DurabilityOptions durability;
  durability.directory = dir;
  durability.fsync = storage::FsyncPolicy::kAlways;
  durability.checkpoint_tail_bytes = 1024;  // checkpoint early and often
  durability.segment_bytes = 512;
  durability.spill_cold_reads = true;
  options.durability = durability;
  // The Peek test below audits every replica's full image, which
  // presumes writes reach all 3 replicas — full fan-out, not a minimal
  // write quorum (benign for the quorum-reads sibling test).
  options.client_options.target_minimal = false;
  return options;
}

constexpr int kKeys = 200;

TEST(StorageV2Store, SpillModeServesQuorumReadsFromColdState) {
  ScratchDir dir("spill_reads");
  ReplicatedStore store(SpillOptions(dir.path));
  auto client = store.MakeClient();
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(client->Write(Pk(i), 10 * i).ok) << Pk(i);
  }

  const storage::StorageStats total = store.TotalStorageStats();
  EXPECT_GE(total.checkpoints_written, 3u);  // eviction actually happened

  // Every acked write reads back through the quorum even though most
  // keys were evicted from the replicas' in-memory maps; the replicas
  // answer from the checkpoint chain via Backend::Lookup.
  for (int i = 0; i < kKeys; ++i) {
    const ClientResult r = client->Read(Pk(i));
    ASSERT_TRUE(r.ok) << Pk(i);
    EXPECT_EQ(r.value, 10 * i) << Pk(i);
  }
  EXPECT_GT(store.TotalStorageStats().cold_lookups, 0u);
}

TEST(StorageV2Store, PeekOverlaysCheckpointChainInSpillMode) {
  ScratchDir dir("spill_peek");
  ReplicatedStore store(SpillOptions(dir.path));
  auto client = store.MakeClient();
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(client->Write(Pk(i), i).ok);
  }
  // Peek must present the full logical map (image + cold overlay) or
  // every divergence audit in the test suite would go blind under spill.
  for (std::size_t r = 0; r < 3; ++r) {
    const ReplicaSnapshot snap = store.ReplicaPeek(r);
    ASSERT_EQ(snap.image.data.size(), static_cast<std::size_t>(kKeys))
        << "replica " << r;
    for (int i = 0; i < kKeys; ++i) {
      EXPECT_EQ(snap.image.data.at(Pk(i)).value, i);
    }
    EXPECT_GE(snap.storage.checkpoints_written, 1u) << "replica " << r;
  }
}

TEST(StorageV2Store, SpillCrashRecoveryIsTailBoundedAndLossless) {
  ScratchDir dir("spill_crash");
  ReplicatedStore store(SpillOptions(dir.path));
  auto client = store.MakeClient();
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(client->Write(Pk(i), i).ok);
  }

  store.Crash(2);
  ASSERT_TRUE(client->Write("while-down", 777).ok);  // replica 2 misses it
  store.Recover(2);

  const storage::StorageStats stats = store.ReplicaStorageStats(2);
  EXPECT_GE(stats.recoveries, 2u);  // initial open + this recovery
  // O(tail): the restart replays the un-checkpointed segment records,
  // not the 200-key history (kAlways + 1 KiB tail ≈ a few dozen).
  EXPECT_LT(stats.recovery_replayed, static_cast<std::uint64_t>(kKeys));

  // Force read quorums through the recovered replica.
  store.Crash(0);
  for (int i = 0; i < kKeys; i += 17) {
    const ClientResult r = client->Read(Pk(i));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, i);
  }
  EXPECT_EQ(client->Read("while-down").value, 777);
}

TEST(StorageV2Store, FullRestartRecoversSpilledStateFromDisk) {
  ScratchDir dir("spill_restart");
  {
    ReplicatedStore store(SpillOptions(dir.path));
    auto client = store.MakeClient();
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(client->Write(Pk(i), 5 * i).ok);
    }
  }
  // Process restart: a fresh store over the same directory serves the
  // whole keyspace, mostly from cold checkpoint blocks.
  ReplicatedStore reborn(SpillOptions(dir.path));
  auto client = reborn.MakeClient();
  for (int i = 0; i < kKeys; i += 7) {
    const ClientResult r = client->Read(Pk(i));
    ASSERT_TRUE(r.ok) << Pk(i);
    EXPECT_EQ(r.value, 5 * i);
  }
}

TEST(StorageV2Store, AdaptiveGroupCommitWindowEndToEnd) {
  ScratchDir dir("adaptive_gc");
  StoreOptions options;
  options.replicas = 3;
  options.shards_per_replica = 2;
  storage::DurabilityOptions durability;
  durability.directory = dir.path;
  durability.fsync = storage::FsyncPolicy::kGroupCommit;
  durability.coordinate_group_commit = true;
  durability.adaptive_commit_window = true;
  durability.group_commit_window = 200us;
  durability.commit_window_min = 50us;
  durability.commit_window_max = 2000us;
  options.durability = durability;
  ReplicatedStore store(options);

  auto client = store.MakeClient();
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(client->Write(Pk(i % 10), i).ok);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(client->Read(Pk(i)).ok);
  }
  // The writes are durable through the coordinator's window regardless
  // of how it adapted; fsyncs happened and batching kept them below the
  // record count.
  const storage::StorageStats stats = store.TotalStorageStats();
  EXPECT_GT(stats.fsyncs, 0u);
  EXPECT_LT(stats.fsyncs, stats.records_appended);
}

TEST(StorageV2Store, LegacyV1DirectoryUpgradesInPlaceOnOpen) {
  ScratchDir dir("v1_upgrade");
  // Fabricate the pre-v2 on-disk layout: each replica holds an unsharded
  // `wal.log` (+ snapshot for replica 0) with the same acked history.
  for (std::size_t r = 0; r < 3; ++r) {
    const std::string rdir = dir.path + "/replica_" + std::to_string(r);
    fs::create_directories(rdir);
    if (r == 0) {
      storage::Image snap;
      for (int i = 0; i < 10; ++i) snap.ApplyWrite(Pk(i), 1, -1);
      storage::WriteSnapshot(rdir, snap);
    }
    storage::Wal wal(storage::RecoveryManager::WalPath(rdir), {});
    for (int i = 0; i < 30; ++i) {
      storage::WalRecord rec;
      rec.key = Pk(i);
      rec.version = 2;
      rec.value = 100 + i;
      wal.Append(rec);
    }
  }

  StoreOptions options;
  options.replicas = 3;
  options.shards_per_replica = 1;  // the legacy layout was unsharded
  storage::DurabilityOptions durability;
  durability.directory = dir.path;
  options.durability = durability;
  ReplicatedStore store(options);

  // Every shard migrated exactly once and the acked history survived.
  EXPECT_EQ(store.TotalStorageStats().migrations, 3u);
  auto client = store.MakeClient();
  for (int i = 0; i < 30; ++i) {
    const ClientResult r = client->Read(Pk(i));
    ASSERT_TRUE(r.ok) << Pk(i);
    EXPECT_EQ(r.value, 100 + i);
  }

  // The directories are now v2: MANIFEST present, legacy files gone.
  for (std::size_t r = 0; r < 3; ++r) {
    const std::string rdir = dir.path + "/replica_" + std::to_string(r);
    EXPECT_EQ(storage::Manifest::ReadShardCount(rdir),
              std::optional<std::size_t>(1));
    EXPECT_FALSE(fs::exists(storage::RecoveryManager::WalPath(rdir)));
    EXPECT_FALSE(fs::exists(storage::SnapshotPath(rdir)));
  }
}

}  // namespace
}  // namespace qcnt::runtime
