// Tests for the well-formedness checker: every clause of the paper's
// recursive definition is probed with a minimal violating sequence.
#include <gtest/gtest.h>

#include "txn/wellformed.hpp"

namespace qcnt::txn {
namespace {

using ioa::Abort;
using ioa::Commit;
using ioa::Create;
using ioa::RequestCommit;
using ioa::RequestCreate;

struct Fixture {
  SystemType type;
  TxnId u, v;     // user transactions (v child of u)
  ObjectId x;
  TxnId r, w;     // accesses under u
  Fixture() {
    u = type.AddTransaction(kRootTxn, "U");
    v = type.AddTransaction(u, "V");
    x = type.AddObject("x");
    r = type.AddReadAccess(u, x, "r");
    w = type.AddWriteAccess(u, x, Value{std::int64_t{1}}, "w");
  }
};

TEST(WellFormed, EmptyScheduleIsWellFormed) {
  Fixture f;
  EXPECT_TRUE(IsWellFormed(f.type, {}));
}

TEST(WellFormed, TypicalSerialRun) {
  Fixture f;
  const ioa::Schedule s{
      Create(kRootTxn),
      RequestCreate(f.u),
      Create(f.u),
      RequestCreate(f.r),
      Create(f.r),
      RequestCommit(f.r, kNil),
      Commit(f.r, kNil),
      RequestCommit(f.u, kNil),
      Commit(f.u, kNil),
  };
  std::string msg;
  EXPECT_TRUE(IsWellFormed(f.type, s, &msg)) << msg;
}

TEST(WellFormed, DuplicateCreateRejected) {
  Fixture f;
  WellFormednessChecker c(f.type);
  EXPECT_EQ(c.Feed(Create(kRootTxn)), "");
  EXPECT_NE(c.Feed(Create(kRootTxn)), "");
}

TEST(WellFormed, RequestCreateBeforeParentCreate) {
  Fixture f;
  WellFormednessChecker c(f.type);
  EXPECT_NE(c.Feed(RequestCreate(f.u)), "");  // T0 not yet created
}

TEST(WellFormed, DuplicateRequestCreateRejected) {
  Fixture f;
  WellFormednessChecker c(f.type);
  c.Feed(Create(kRootTxn));
  EXPECT_EQ(c.Feed(RequestCreate(f.u)), "");
  EXPECT_NE(c.Feed(RequestCreate(f.u)), "");
}

TEST(WellFormed, RequestCreateAfterParentRequestCommit) {
  Fixture f;
  WellFormednessChecker c(f.type);
  c.Feed(Create(kRootTxn));
  c.Feed(RequestCreate(f.u));
  c.Feed(Create(f.u));
  EXPECT_EQ(c.Feed(RequestCommit(f.u, kNil)), "");
  EXPECT_NE(c.Feed(RequestCreate(f.v)), "");
}

TEST(WellFormed, RequestCommitRequiresCreate) {
  Fixture f;
  WellFormednessChecker c(f.type);
  c.Feed(Create(kRootTxn));
  c.Feed(RequestCreate(f.u));
  EXPECT_NE(c.Feed(RequestCommit(f.u, kNil)), "");
}

TEST(WellFormed, DuplicateRequestCommitRejected) {
  Fixture f;
  WellFormednessChecker c(f.type);
  c.Feed(Create(kRootTxn));
  c.Feed(RequestCreate(f.u));
  c.Feed(Create(f.u));
  EXPECT_EQ(c.Feed(RequestCommit(f.u, kNil)), "");
  EXPECT_NE(c.Feed(RequestCommit(f.u, kNil)), "");
}

TEST(WellFormed, ReturnWithoutRequestCreate) {
  Fixture f;
  WellFormednessChecker c(f.type);
  c.Feed(Create(kRootTxn));
  EXPECT_NE(c.Feed(Commit(f.u, kNil)), "");
  EXPECT_NE(c.Feed(Abort(f.u)), "");
}

TEST(WellFormed, ConflictingReturnsRejected) {
  Fixture f;
  WellFormednessChecker c(f.type);
  c.Feed(Create(kRootTxn));
  c.Feed(RequestCreate(f.u));
  EXPECT_EQ(c.Feed(Abort(f.u)), "");
  EXPECT_NE(c.Feed(Commit(f.u, kNil)), "");
  EXPECT_NE(c.Feed(Abort(f.u)), "");
}

TEST(WellFormed, PendingAccessBlocksObject) {
  Fixture f;
  WellFormednessChecker c(f.type);
  c.Feed(Create(kRootTxn));
  c.Feed(RequestCreate(f.u));
  c.Feed(Create(f.u));
  c.Feed(RequestCreate(f.r));
  c.Feed(RequestCreate(f.w));
  EXPECT_EQ(c.Feed(Create(f.r)), "");
  // Object x now has pending access r; creating w must be rejected.
  EXPECT_NE(c.Feed(Create(f.w)), "");
  // After r request-commits, w may be created.
  EXPECT_EQ(c.Feed(RequestCommit(f.r, kNil)), "");
  EXPECT_EQ(c.Feed(Create(f.w)), "");
}

TEST(WellFormed, RootReturnRejected) {
  Fixture f;
  WellFormednessChecker c(f.type);
  c.Feed(Create(kRootTxn));
  EXPECT_NE(c.Feed(Commit(kRootTxn, kNil)), "");
  EXPECT_NE(c.Feed(Abort(kRootTxn)), "");
  EXPECT_NE(c.Feed(RequestCreate(kRootTxn)), "");
}

TEST(WellFormed, FeedAllReportsIndexAndAction) {
  Fixture f;
  WellFormednessChecker c(f.type);
  std::string msg;
  const ioa::Schedule s{Create(kRootTxn), Create(kRootTxn)};
  EXPECT_FALSE(c.FeedAll(s, &msg));
  EXPECT_NE(msg.find("action 1"), std::string::npos);
  EXPECT_NE(msg.find("CREATE(T0)"), std::string::npos);
}

TEST(WellFormed, ViolatingActionNotApplied) {
  Fixture f;
  WellFormednessChecker c(f.type);
  // Violation: REQUEST-CREATE before root creation...
  EXPECT_NE(c.Feed(RequestCreate(f.u)), "");
  // ...is not recorded, so after CREATE(T0) the same request is fine.
  EXPECT_EQ(c.Feed(Create(kRootTxn)), "");
  EXPECT_EQ(c.Feed(RequestCreate(f.u)), "");
}

TEST(WellFormed, OrphanDetection) {
  Fixture f;
  const ioa::Schedule s{Create(kRootTxn), RequestCreate(f.u), Abort(f.u)};
  EXPECT_TRUE(IsOrphan(f.type, s, f.u));   // aborted itself
  EXPECT_TRUE(IsOrphan(f.type, s, f.v));   // ancestor aborted
  EXPECT_TRUE(IsOrphan(f.type, s, f.r));   // ancestor aborted
  EXPECT_FALSE(IsOrphan(f.type, s, kRootTxn));
}

}  // namespace
}  // namespace qcnt::txn
