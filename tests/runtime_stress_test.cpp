// Stress: N client threads with full pipelines against a 5-replica durable
// store while a chaos thread randomly crashes and recovers a minority of
// replicas. Asserts the pipeline never deadlocks (every future resolves
// and the test finishes), acks are never lost (after quiescence a quorum
// read of each item is at least as new as the freshest acked write), and
// quorum intersection holds (independent readers agree on every item).
// Designed to run under ASan/UBSan and TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>

#include "common/rng.hpp"
#include "runtime/store.hpp"

namespace qcnt::runtime {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

TEST(RuntimeStress, PipelinedClientsUnderCrashRecoverChaos) {
  const std::string scratch = "runtime_stress_scratch";
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  constexpr std::size_t kReplicas = 5;
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kOpsPerClient = 600;
  const std::vector<std::string> keys = {"s0", "s1", "s2", "s3",
                                         "s4", "s5", "s6", "s7"};

  StoreOptions options;
  options.replicas = kReplicas;
  options.max_clients = kClients + 2;
  options.durability = storage::DurabilityOptions{
      .directory = scratch,
      .fsync = storage::FsyncPolicy::kNever,  // chaos, not fsync, is under test
  };
  ReplicatedStore store(std::move(options));

  // Freshest acked write per key across all clients, as (version, value).
  std::mutex acked_mu;
  std::map<std::string, std::pair<std::uint64_t, std::int64_t>> acked;

  std::atomic<bool> chaos_on{true};
  std::atomic<std::uint64_t> completed{0}, failed{0};

  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kClients; ++t) {
    auto client = store.MakeAsyncClient(AsyncQuorumClient::Options{
        .timeout = 2000ms, .window = 16, .max_batch = 8});
    clients.emplace_back([client = std::move(client), t, &keys, &acked_mu,
                          &acked, &completed, &failed] {
      qcnt::Rng rng(0xace0 + t);
      std::vector<std::pair<OpFuture, std::string>> futures;
      for (std::size_t i = 0; i < kOpsPerClient; ++i) {
        const std::string& key = keys[rng.Index(keys.size())];
        const auto value =
            static_cast<std::int64_t>(t * 1'000'000 + i);
        if (rng.Chance(0.25)) {
          futures.emplace_back(client->SubmitRead(key), std::string());
        } else {
          futures.emplace_back(client->SubmitWrite(key, value), key);
        }
      }
      client->Drain();
      for (auto& [future, key] : futures) {
        ASSERT_TRUE(future.Ready()) << "unresolved future (deadlock?)";
        const ClientResult r = future.Get();
        ++completed;
        if (!r.ok) {
          ++failed;
          continue;
        }
        if (!key.empty()) {
          std::lock_guard<std::mutex> lock(acked_mu);
          auto& best = acked[key];
          if (r.version > best.first) best = {r.version, r.value};
        }
      }
    });
  }

  std::atomic<std::uint64_t> crashes{0};
  std::thread chaos([&store, &chaos_on, &crashes] {
    qcnt::Rng rng(0xc4a05);
    std::vector<bool> down(kReplicas, false);
    std::size_t down_count = 0;
    while (chaos_on.load()) {
      const std::size_t r = rng.Index(kReplicas);
      if (down[r]) {
        store.Recover(r);
        down[r] = false;
        --down_count;
      } else if (down_count < 2) {  // keep a write quorum alive
        store.Crash(r);
        down[r] = true;
        ++down_count;
        ++crashes;
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(500 + rng.Index(2000)));
    }
    for (std::size_t r = 0; r < kReplicas; ++r) {
      if (down[r]) store.Recover(r);
    }
  });

  for (auto& c : clients) c.join();
  chaos_on.store(false);
  chaos.join();

  EXPECT_EQ(completed.load(), kClients * kOpsPerClient);
  // The chaos thread really did fail-stop replicas mid-pipeline.
  EXPECT_GT(crashes.load(), 0u);
  // Chaos may fail individual ops (their quorum raced a crash); it must
  // not fail the bulk of the workload.
  EXPECT_LT(failed.load(), completed.load() / 2);

  // Quiesced, fully recovered store: no acked write may be lost, and two
  // independent readers must agree on every item (quorum intersection).
  auto reader1 = store.MakeClient();
  auto reader2 = store.MakeClient();
  for (const std::string& key : keys) {
    const ClientResult a = reader1->Read(key);
    const ClientResult b = reader2->Read(key);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.version, b.version) << "readers disagree on " << key;
    EXPECT_EQ(a.value, b.value) << "readers disagree on " << key;
    const auto it = acked.find(key);
    if (it != acked.end()) {
      EXPECT_GE(a.version, it->second.first)
          << "acked write lost on " << key;
      if (a.version == it->second.first) {
        // Same version: the surviving value is the acked one (or a
        // same-version racer that won the deterministic value tie-break).
        EXPECT_GE(a.value, it->second.second) << "acked write lost on "
                                              << key;
      }
    }
  }

  fs::remove_all(scratch);
}

}  // namespace
}  // namespace qcnt::runtime
