// Tests for the concurrency-control layer: Moss nested read/write locking,
// the concurrent scheduler, and the Theorem-11 one-copy serializability
// property of Quorum Consensus over locked copies.
#include <gtest/gtest.h>

#include "cc/concurrent_scheduler.hpp"
#include "cc/locked_object.hpp"
#include "cc/system_c.hpp"
#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "txn/scripted_transaction.hpp"

namespace qcnt::cc {
namespace {

using ioa::Abort;
using ioa::Commit;
using ioa::Create;
using ioa::RequestCommit;
using ioa::RequestCreate;

struct LockFixture {
  txn::SystemType type;
  TxnId u1, u2, v1;  // v1 is a child of u1
  ObjectId x;
  TxnId r1, w1, r2, w2, rv;  // accesses: r/w under u1, u2; rv under v1
  LockFixture() {
    u1 = type.AddTransaction(kRootTxn, "U1");
    u2 = type.AddTransaction(kRootTxn, "U2");
    v1 = type.AddTransaction(u1, "V1");
    x = type.AddObject("x");
    r1 = type.AddReadAccess(u1, x, "r1");
    w1 = type.AddWriteAccess(u1, x, Value{std::int64_t{10}}, "w1");
    r2 = type.AddReadAccess(u2, x, "r2");
    w2 = type.AddWriteAccess(u2, x, Value{std::int64_t{20}}, "w2");
    rv = type.AddReadAccess(v1, x, "rv");
  }
};

TEST(LockedObject, ReadSharing) {
  LockFixture f;
  LockedObject obj(f.type, f.x, Value{std::int64_t{0}});
  obj.Apply(Create(f.r1));
  obj.Apply(Create(f.r2));
  // Both reads grantable concurrently.
  EXPECT_TRUE(obj.Enabled(RequestCommit(f.r1, Value{std::int64_t{0}})));
  EXPECT_TRUE(obj.Enabled(RequestCommit(f.r2, Value{std::int64_t{0}})));
  obj.Apply(RequestCommit(f.r1, Value{std::int64_t{0}}));
  obj.Apply(RequestCommit(f.r2, Value{std::int64_t{0}}));
  EXPECT_EQ(obj.ReadLockCount(), 2u);
}

TEST(LockedObject, WriteBlockedByForeignReadLock) {
  LockFixture f;
  LockedObject obj(f.type, f.x, Value{std::int64_t{0}});
  obj.Apply(Create(f.r1));
  obj.Apply(RequestCommit(f.r1, Value{std::int64_t{0}}));  // u1 access holds lock
  obj.Apply(Create(f.w2));
  EXPECT_FALSE(obj.WriteLockFree(f.w2));
  EXPECT_FALSE(obj.Enabled(RequestCommit(f.w2, kNil)));
}

TEST(LockedObject, ReadBlockedByForeignWriteLock) {
  LockFixture f;
  LockedObject obj(f.type, f.x, Value{std::int64_t{0}});
  obj.Apply(Create(f.w1));
  obj.Apply(RequestCommit(f.w1, kNil));
  obj.Apply(Create(f.r2));
  EXPECT_FALSE(obj.ReadLockFree(f.r2));
  std::vector<ioa::Action> outs;
  obj.EnabledOutputs(outs);
  EXPECT_TRUE(outs.empty());
}

TEST(LockedObject, AncestorLocksDoNotBlock) {
  LockFixture f;
  LockedObject obj(f.type, f.x, Value{std::int64_t{0}});
  obj.Apply(Create(f.w1));
  obj.Apply(RequestCommit(f.w1, kNil));
  // w1 commits: lock inherited by u1, an ancestor of rv (u1 -> v1 -> rv).
  obj.Apply(Commit(f.w1, kNil));
  obj.Apply(Create(f.rv));
  EXPECT_TRUE(obj.ReadLockFree(f.rv));
  // rv sees u1's uncommitted write.
  EXPECT_TRUE(obj.Enabled(RequestCommit(f.rv, Value{std::int64_t{10}})));
}

TEST(LockedObject, CommitInheritsLocksUpward) {
  LockFixture f;
  LockedObject obj(f.type, f.x, Value{std::int64_t{0}});
  obj.Apply(Create(f.w1));
  obj.Apply(RequestCommit(f.w1, kNil));
  EXPECT_EQ(obj.WriteLockDepth(), 1u);
  obj.Apply(Commit(f.w1, kNil));  // lock now held by u1
  // u2's write still blocked (u1 is not an ancestor of w2).
  obj.Apply(Create(f.w2));
  EXPECT_FALSE(obj.WriteLockFree(f.w2));
  // u1 commits: lock inherited by the root, an ancestor of everything.
  obj.Apply(Commit(f.u1, kNil));
  EXPECT_TRUE(obj.WriteLockFree(f.w2));
}

TEST(LockedObject, AbortDiscardsVersions) {
  LockFixture f;
  LockedObject obj(f.type, f.x, Value{std::int64_t{0}});
  obj.Apply(Create(f.w1));
  obj.Apply(RequestCommit(f.w1, kNil));
  obj.Apply(Commit(f.w1, kNil));  // version held by u1
  EXPECT_EQ(obj.CurrentValue(), Value{std::int64_t{10}});
  obj.Apply(Abort(f.u1));  // u1's subtree rolled back
  EXPECT_EQ(obj.CurrentValue(), Value{std::int64_t{0}});
  EXPECT_EQ(obj.WriteLockDepth(), 0u);
  // x is free again for u2.
  obj.Apply(Create(f.w2));
  EXPECT_TRUE(obj.WriteLockFree(f.w2));
}

TEST(LockedObject, AbortDiscardsPendingDescendants) {
  LockFixture f;
  LockedObject obj(f.type, f.x, Value{std::int64_t{0}});
  obj.Apply(Create(f.w1));
  obj.Apply(RequestCommit(f.w1, kNil));
  obj.Apply(Create(f.r2));  // blocked behind w1's lock
  obj.Apply(Abort(f.u2));   // r2's ancestor aborts while blocked
  std::vector<ioa::Action> outs;
  obj.Apply(Commit(f.w1, kNil));
  obj.Apply(Commit(f.u1, kNil));
  obj.EnabledOutputs(outs);
  EXPECT_TRUE(outs.empty());  // r2 no longer pending
}

TEST(LockedObject, NestedCommitCollapsesVersions) {
  LockFixture f;
  // v1's write then u1's own write, both eventually held by u1.
  const TxnId wv = f.type.AddWriteAccess(f.v1, f.x, Value{std::int64_t{5}});
  LockedObject obj(f.type, f.x, Value{std::int64_t{0}});
  obj.Apply(Create(wv));
  obj.Apply(RequestCommit(wv, kNil));
  obj.Apply(Commit(wv, kNil));  // held by v1
  obj.Apply(Commit(f.v1, kNil));  // held by u1
  obj.Apply(Create(f.w1));
  obj.Apply(RequestCommit(f.w1, kNil));
  obj.Apply(Commit(f.w1, kNil));  // also held by u1 -> collapse
  EXPECT_EQ(obj.WriteLockDepth(), 1u);
  EXPECT_EQ(obj.CurrentValue(), Value{std::int64_t{10}});
}

TEST(ConcurrentScheduler, AllowsConcurrentSiblings) {
  LockFixture f;
  ConcurrentScheduler s(f.type);
  s.Apply(RequestCreate(f.u1));
  s.Apply(RequestCreate(f.u2));
  s.Apply(Create(f.u1));
  // Unlike the serial scheduler, u2 may be created while u1 is live.
  EXPECT_TRUE(s.Enabled(Create(f.u2)));
}

TEST(ConcurrentScheduler, AbortAfterCreate) {
  LockFixture f;
  ConcurrentScheduler s(f.type);
  s.Apply(RequestCreate(f.u1));
  s.Apply(Create(f.u1));
  EXPECT_TRUE(s.Enabled(Abort(f.u1)));
  s.Apply(Abort(f.u1));
  EXPECT_TRUE(s.Aborted(f.u1));
  EXPECT_TRUE(s.Returned(f.u1));
}

TEST(ConcurrentScheduler, OrphansCannotCommit) {
  LockFixture f;
  ConcurrentScheduler s(f.type);
  s.Apply(RequestCreate(f.u1));
  s.Apply(Create(f.u1));
  s.Apply(RequestCreate(f.v1));
  s.Apply(Create(f.v1));
  s.Apply(Abort(f.u1));  // v1 is now an orphan
  EXPECT_TRUE(s.IsOrphan(f.v1));
  s.Apply(RequestCommit(f.v1, kNil));
  EXPECT_FALSE(s.Enabled(Commit(f.v1, kNil)));
}

// --- Theorem 11: QC over locking is one-copy serializable -------------------

struct ConcurrentFixture {
  ReplicatedSpec spec;
  ItemId x, y;
  std::vector<TxnId> users;
  std::vector<std::vector<TxnId>> scripts;
  UserAutomataFactory factory;

  explicit ConcurrentFixture(Rng& rng) {
    x = spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
    y = spec.AddItem("y", 2, quorum::ReadOneWriteAll(2),
                     Plain{std::int64_t{0}});
    std::int64_t next = 1;
    const std::size_t user_count = 2 + rng.Below(2);
    for (std::size_t i = 0; i < user_count; ++i) {
      const TxnId u =
          spec.AddTransaction(kRootTxn, "U" + std::to_string(i));
      std::vector<TxnId> script;
      const std::size_t tms = 1 + rng.Below(3);
      for (std::size_t k = 0; k < tms; ++k) {
        const ItemId item = rng.Chance(0.5) ? x : y;
        if (rng.Chance(0.5)) {
          script.push_back(spec.AddReadTm(u, item));
        } else {
          script.push_back(spec.AddWriteTm(u, item, Plain{next++}));
        }
      }
      users.push_back(u);
      scripts.push_back(std::move(script));
    }
    spec.Finalize(/*read_attempts=*/2, /*write_attempts=*/1);

    const ReplicatedSpec* s = &spec;
    auto users_copy = users;
    auto scripts_copy = scripts;
    factory = [s, users_copy, scripts_copy](ioa::System& sys) {
      txn::ScriptedTransaction::Options root_opts;
      root_opts.sequential = false;  // run the users concurrently
      sys.Emplace<txn::ScriptedTransaction>(s->Type(), kRootTxn, users_copy,
                                            root_opts);
      for (std::size_t i = 0; i < users_copy.size(); ++i) {
        sys.Emplace<txn::ScriptedTransaction>(s->Type(), users_copy[i],
                                              scripts_copy[i]);
      }
    };
  }
};

class OneCopySweep : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(OneCopySweep, ConcurrentRunsAreOneCopySerializable) {
  const auto [seed_int, abort_weight] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed_int) * 424243 + 11);
  ConcurrentFixture f(rng);
  ioa::System sys = BuildSystemC(f.spec, f.factory);
  ioa::ExploreOptions opts;
  opts.max_steps = 20000;
  opts.weight = [w = abort_weight](const ioa::Action& a) {
    return a.kind == ioa::ActionKind::kAbort ? w : 1.0;
  };
  const ioa::ExploreResult r = ioa::Explore(sys, rng, opts);
  ASSERT_TRUE(r.quiescent);
  const OneCopyResult check = CheckOneCopySerializability(f.spec, r.schedule);
  EXPECT_TRUE(check.ok) << "seed=" << seed_int << " abort=" << abort_weight
                        << ": " << check.message;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, OneCopySweep,
    ::testing::Combine(::testing::Range(0, 30),
                       ::testing::Values(0.0, 0.05, 0.25)));

TEST(OneCopy, RecoveryIsActuallyExercised) {
  // Across the sweep's configurations, created transactions do get aborted
  // (so the locking layer's rollback path is covered), yet one-copy
  // serializability holds.
  std::size_t rollbacks = 0, commits = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed * 71 + 3);
    ConcurrentFixture f(rng);
    ioa::System sys = BuildSystemC(f.spec, f.factory);
    ioa::ExploreOptions opts;
    opts.max_steps = 20000;
    opts.weight = [](const ioa::Action& a) {
      return a.kind == ioa::ActionKind::kAbort ? 0.15 : 1.0;
    };
    const ioa::ExploreResult r = ioa::Explore(sys, rng, opts);
    ASSERT_TRUE(r.quiescent);
    const RunStats stats = CollectRunStats(f.spec, r.schedule);
    rollbacks += stats.aborted_created_txns;
    commits += stats.committed_top_level;
    const OneCopyResult check =
        CheckOneCopySerializability(f.spec, r.schedule);
    ASSERT_TRUE(check.ok) << check.message;
  }
  EXPECT_GT(rollbacks, 0u);
  EXPECT_GT(commits, 0u);
}

TEST(OneCopy, SerializationMatchesCommitOrder) {
  // With genuinely concurrent users, conflicting writers deadlock unless
  // the scheduler may abort (and retries are not modelled), so give the
  // explorer a small abort weight and look for a run where at least one
  // transaction commits; the serialization must list the committed
  // top-levels in exactly their COMMIT order.
  bool verified = false;
  for (std::uint64_t seed = 0; seed < 40 && !verified; ++seed) {
    Rng rng(seed * 17 + 7);
    ConcurrentFixture f(rng);
    ioa::System sys = BuildSystemC(f.spec, f.factory);
    ioa::ExploreOptions opts;
    opts.weight = [](const ioa::Action& a) {
      return a.kind == ioa::ActionKind::kAbort ? 0.03 : 1.0;
    };
    const ioa::ExploreResult r = ioa::Explore(sys, rng, opts);
    if (!r.quiescent) continue;
    const OneCopyResult check =
        CheckOneCopySerializability(f.spec, r.schedule);
    ASSERT_TRUE(check.ok) << check.message;
    if (check.serialization.empty()) continue;
    // Cross-check the order against the raw schedule.
    std::vector<TxnId> commit_order;
    for (const ioa::Action& a : r.schedule) {
      if (a.kind == ioa::ActionKind::kCommit &&
          f.spec.Type().Parent(a.txn) == kRootTxn) {
        commit_order.push_back(a.txn);
      }
    }
    EXPECT_EQ(check.serialization, commit_order);
    verified = true;
  }
  EXPECT_TRUE(verified);
}

}  // namespace
}  // namespace qcnt::cc
