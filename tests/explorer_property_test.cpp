// Cross-cutting properties of the exploration/replay machinery on real
// replicated systems (not toy automata): self-consistency (every explored
// schedule replays on a fresh copy of the same system), determinism by
// seed, and prefix behavior under step bounds.
#include <gtest/gtest.h>

#include "ioa/explorer.hpp"
#include "replication/harness.hpp"

namespace qcnt::replication {
namespace {

class ExplorerProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExplorerProperty, ExploredSchedulesReplayOnFreshSystem) {
  // Soundness of the whole pipeline: what the explorer produced really is
  // a schedule of the system, step for step (Composition Lemma in action).
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271828 + 1);
  const Harness h = MakeRandomHarness(rng);
  const UserAutomataFactory users = h.Users();
  ioa::System b1 = BuildB(h.Spec(), users);
  const ioa::ExploreResult r = ioa::Explore(b1, rng, {});
  ASSERT_TRUE(r.quiescent);

  ioa::System b2 = BuildB(h.Spec(), users);
  const ioa::ReplayResult replay = ioa::Replay(b2, r.schedule);
  EXPECT_TRUE(replay.ok) << "step " << replay.failed_index << ": "
                         << replay.message;
}

TEST_P(ExplorerProperty, DeterministicBySeed) {
  Rng setup(static_cast<std::uint64_t>(GetParam()) * 314159 + 5);
  const Harness h = MakeRandomHarness(setup);
  const UserAutomataFactory users = h.Users();
  auto run = [&](std::uint64_t seed) {
    ioa::System b = BuildB(h.Spec(), users);
    Rng rng(seed);
    return ioa::Explore(b, rng, {}).schedule;
  };
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  EXPECT_EQ(run(seed), run(seed));
}

TEST_P(ExplorerProperty, StepBoundYieldsPrefix) {
  Rng setup(static_cast<std::uint64_t>(GetParam()) * 161803 + 9);
  const Harness h = MakeRandomHarness(setup);
  const UserAutomataFactory users = h.Users();
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 100;

  ioa::System b1 = BuildB(h.Spec(), users);
  Rng r1(seed);
  const ioa::Schedule full = ioa::Explore(b1, r1, {}).schedule;
  if (full.size() < 2) return;

  ioa::System b2 = BuildB(h.Spec(), users);
  Rng r2(seed);
  ioa::ExploreOptions opts;
  opts.max_steps = full.size() / 2;
  const ioa::Schedule half = ioa::Explore(b2, r2, opts).schedule;
  ASSERT_EQ(half.size(), full.size() / 2);
  for (std::size_t i = 0; i < half.size(); ++i) {
    EXPECT_EQ(half[i], full[i]) << "divergence at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplorerProperty, ::testing::Range(0, 12));

TEST(ExplorerProperty, ResetMakesSystemsReusable) {
  Rng setup(424242);
  const Harness h = MakeRandomHarness(setup);
  ioa::System b = BuildB(h.Spec(), h.Users());
  // Run the same system object repeatedly; Explore Resets it each time, so
  // equal seeds must give equal schedules even after prior runs.
  Rng ra(5), rb(6), rc(5);
  const ioa::Schedule first = ioa::Explore(b, ra, {}).schedule;
  (void)ioa::Explore(b, rb, {});
  const ioa::Schedule again = ioa::Explore(b, rc, {}).schedule;
  EXPECT_EQ(first, again);
}

}  // namespace
}  // namespace qcnt::replication
