// Tests for the threaded runtime: mailboxes, the bus, replica servers, and
// the blocking ReplicatedStore public API under crashes and reconfiguration.
#include <gtest/gtest.h>

#include <thread>

#include "runtime/store.hpp"

namespace qcnt::runtime {
namespace {

using namespace std::chrono_literals;

TEST(Mailbox, PushPop) {
  Mailbox mb;
  mb.Push(Envelope{3, RtMessage{RtMessage::Kind::kReadReq, 7, "k", 0, 0, 0, 0}});
  auto e = mb.Pop(std::chrono::steady_clock::now() + 100ms);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->from, 3u);
  EXPECT_EQ(e->msg.op, 7u);
  EXPECT_EQ(e->msg.key, "k");
}

TEST(Mailbox, PopTimesOut) {
  Mailbox mb;
  const auto t0 = std::chrono::steady_clock::now();
  auto e = mb.Pop(t0 + 50ms);
  EXPECT_FALSE(e.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 45ms);
}

TEST(Mailbox, CloseWakesWaiters) {
  Mailbox mb;
  std::thread closer([&] {
    std::this_thread::sleep_for(20ms);
    mb.Close();
  });
  auto batch = mb.PopAll();  // would block forever without Close
  EXPECT_TRUE(batch.empty());
  closer.join();
}

TEST(Mailbox, PopAllDrainsWholeQueueAtOnce) {
  Mailbox mb;
  for (std::uint64_t op = 1; op <= 5; ++op) {
    mb.Push(Envelope{1, RtMessage{RtMessage::Kind::kReadReq, op, "k",
                                  0, 0, 0, 0}});
  }
  auto batch = mb.PopAll();
  ASSERT_EQ(batch.size(), 5u);
  for (std::uint64_t op = 1; op <= 5; ++op) {
    EXPECT_EQ(batch[op - 1].msg.op, op);  // FIFO preserved
  }
  EXPECT_EQ(mb.Size(), 0u);
}

TEST(Mailbox, TryPopAllNeverBlocks) {
  Mailbox mb;
  EXPECT_TRUE(mb.TryPopAll().empty());
  mb.Push(Envelope{2, RtMessage{RtMessage::Kind::kReadReq, 1, "k",
                                0, 0, 0, 0}});
  EXPECT_EQ(mb.TryPopAll().size(), 1u);
  EXPECT_TRUE(mb.TryPopAll().empty());
}

TEST(Mailbox, PushAfterCloseIgnored) {
  Mailbox mb;
  mb.Close();
  mb.Push(Envelope{});
  EXPECT_EQ(mb.Size(), 0u);
}

TEST(Bus, DropsToCrashedNode) {
  Bus bus(2);
  bus.Crash(1);
  bus.Send(0, 1, {});
  EXPECT_EQ(bus.MailboxOf(1).Size(), 0u);
  EXPECT_EQ(bus.MessagesDropped(), 1u);
  bus.Recover(1);
  bus.Send(0, 1, {});
  EXPECT_EQ(bus.MailboxOf(1).Size(), 1u);
}

TEST(Bus, RecoverReopensMailboxClosedByShutdownRace) {
  // Regression: a node that crashes while the bus is closing (CloseAll
  // during store teardown racing a Crash/Recover sequence) used to come
  // back "up" with a permanently closed mailbox — every subsequent send
  // was accepted by the bus and silently dropped by the mailbox.
  Bus bus(2);
  bus.Crash(1);
  bus.CloseAll();  // shutdown ordering: close wins the race
  bus.Recover(1);
  bus.Send(0, 1, {});
  EXPECT_EQ(bus.MailboxOf(1).Size(), 1u);
  EXPECT_EQ(bus.MessagesDropped(), 0u);
}

TEST(Bus, CrashRecoverSendDeliversAfterClose) {
  Bus bus(3);
  bus.CloseAll();
  bus.Crash(2);
  bus.Recover(2);
  bus.Send(0, 2, RtMessage{RtMessage::Kind::kReadReq, 9, "k", 0, 0, 0, 0});
  auto e = bus.MailboxOf(2).Pop(std::chrono::steady_clock::now() + 100ms);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->msg.op, 9u);
}

TEST(ReplicatedStore, WriteThenRead) {
  ReplicatedStore store(StoreOptions{.replicas = 3});
  auto client = store.MakeClient();
  const ClientResult w = client->Write("alpha", 42);
  ASSERT_TRUE(w.ok);
  const ClientResult r = client->Read("alpha");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 42);
}

TEST(ReplicatedStore, IndependentKeys) {
  ReplicatedStore store(StoreOptions{.replicas = 3});
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("a", 1).ok);
  ASSERT_TRUE(client->Write("b", 2).ok);
  EXPECT_EQ(client->Read("a").value, 1);
  EXPECT_EQ(client->Read("b").value, 2);
  // Unwritten keys read the initial value 0.
  const ClientResult r = client->Read("c");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 0);
}

TEST(ReplicatedStore, CrossClientVisibility) {
  ReplicatedStore store(StoreOptions{.replicas = 5});
  auto writer = store.MakeClient();
  auto reader = store.MakeClient();
  ASSERT_TRUE(writer->Write("x", 11).ok);
  const ClientResult r = reader->Read("x");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 11);
}

TEST(ReplicatedStore, ToleratesMinorityCrash) {
  ReplicatedStore store(StoreOptions{.replicas = 5});
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("x", 5).ok);
  store.Crash(0);
  store.Crash(1);
  const ClientResult w = store.MakeClient()->Write("x", 6);
  EXPECT_TRUE(w.ok);
  const ClientResult r = client->Read("x");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 6);
}

TEST(ReplicatedStore, MajorityCrashBlocksThenRecoveryHeals) {
  StoreOptions options;
  options.replicas = 3;
  options.client_options.timeout = 100ms;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("x", 1).ok);
  store.Crash(1);
  store.Crash(2);
  const ClientResult blocked = client->Write("x", 2);
  EXPECT_FALSE(blocked.ok);
  store.Recover(1);
  const ClientResult healed = client->Write("x", 3);
  EXPECT_TRUE(healed.ok);
  EXPECT_EQ(client->Read("x").value, 3);
}

TEST(ReplicatedStore, ConcurrentClientsConverge) {
  ReplicatedStore store(StoreOptions{.replicas = 5, .max_clients = 8});
  constexpr int kThreads = 4, kOpsPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    auto client = store.MakeClient();
    threads.emplace_back([client = std::move(client), t, &failures] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::int64_t v = t * 1000 + i;
        if (!client->Write("ctr", v).ok) ++failures;
        if (!client->Read("ctr").ok) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // The final value is whichever write carried the highest version; it must
  // be one of the written values and reads must agree across clients.
  auto c1 = store.MakeClient();
  auto c2 = store.MakeClient();
  const ClientResult r1 = c1->Read("ctr");
  const ClientResult r2 = c2->Read("ctr");
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(r1.value, r2.value);
}

TEST(ReplicatedStore, ReconfigurationRestoresAvailability) {
  StoreOptions options;
  options.replicas = 5;
  options.configs = {
      quorum::MajoritySystem(5),
      quorum::FromConfiguration(
          "majority-of-012",
          quorum::Configuration({{0, 1}, {0, 2}, {1, 2}},
                                {{0, 1}, {0, 2}, {1, 2}}))};
  options.client_options.timeout = 150ms;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  ASSERT_TRUE(client->Write("x", 1).ok);

  store.Crash(3);
  store.Crash(4);
  ASSERT_TRUE(client->Reconfigure(1).ok);
  EXPECT_EQ(client->BelievedConfig(), 1u);

  store.Crash(2);
  // Under the old majority(5) config only 2 replicas are up: writes would
  // fail. The new config needs 2 of {0,1,2}.
  const ClientResult w = client->Write("x", 2);
  EXPECT_TRUE(w.ok);
  EXPECT_EQ(client->Read("x").value, 2);
}

TEST(ReplicatedStore, ClientLimitEnforced) {
  ReplicatedStore store(StoreOptions{.replicas = 3, .max_clients = 1});
  auto c = store.MakeClient();
  EXPECT_ANY_THROW(store.MakeClient());
}

}  // namespace
}  // namespace qcnt::runtime
