// Tests for coordinated mode: the paper's extra nesting level, where TMs
// delegate their read/write phases to coordinator subtransactions. The
// coordinated systems must satisfy the same Theorem 10 (against the very
// same system A) and the same Lemma 7/8 invariants.
#include <gtest/gtest.h>

#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "replication/harness.hpp"
#include "replication/invariants.hpp"
#include "replication/logical.hpp"
#include "replication/theorem10.hpp"
#include "txn/scripted_transaction.hpp"
#include "txn/wellformed.hpp"

namespace qcnt::replication {
namespace {

struct CoordFixture {
  ReplicatedSpec spec;
  ItemId x;
  TxnId u, wtm, rtm;
  UserAutomataFactory users;

  explicit CoordFixture(std::size_t read_attempts = 1) {
    x = spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
    u = spec.AddTransaction(kRootTxn, "U");
    wtm = spec.AddWriteTm(u, x, Plain{std::int64_t{7}});
    rtm = spec.AddReadTm(u, x);
    spec.FinalizeCoordinated(read_attempts);
    const ReplicatedSpec* s = &spec;
    const TxnId cu = u, cw = wtm, cr = rtm;
    users = [s, cu, cw, cr](ioa::System& sys) {
      sys.Emplace<txn::ScriptedTransaction>(s->Type(), kRootTxn,
                                            std::vector<TxnId>{cu});
      sys.Emplace<txn::ScriptedTransaction>(s->Type(), cu,
                                            std::vector<TxnId>{cw, cr});
    };
  }
};

TEST(Coordinated, MaterializationShape) {
  CoordFixture f;
  EXPECT_TRUE(f.spec.Coordinated());
  // The write-TM has a read coordinator + one write coordinator (W = 1).
  const auto& kids = f.spec.Type().Children(f.wtm);
  ASSERT_EQ(kids.size(), 2u);
  for (TxnId k : kids) {
    EXPECT_TRUE(f.spec.IsCoordinator(k));
    EXPECT_TRUE(f.spec.IsReplicationInternal(k));
    EXPECT_FALSE(f.spec.IsUserTransaction(k));
    EXPECT_FALSE(f.spec.IsReplicaAccess(k));
    // Accesses hang under the coordinator, three per (majority over 3 DMs).
    EXPECT_EQ(f.spec.Type().Children(k).size(), 3u);
    for (TxnId acc : f.spec.Type().Children(k)) {
      EXPECT_TRUE(f.spec.IsReplicaAccess(acc));
    }
  }
  // The read-TM has exactly its read coordinator.
  EXPECT_EQ(f.spec.Type().Children(f.rtm).size(), 1u);
}

TEST(Coordinated, WriteThenReadReturnsValue) {
  CoordFixture f;
  ioa::System b = BuildB(f.spec, f.users);
  Rng rng(4);
  ioa::ExploreOptions opts;
  opts.weight = AbortWeight(0.0);
  const ioa::ExploreResult r = ioa::Explore(b, rng, opts);
  ASSERT_TRUE(r.quiescent);
  bool found = false;
  for (const ioa::Action& a : r.schedule) {
    if (a.kind == ioa::ActionKind::kRequestCommit && a.txn == f.rtm) {
      EXPECT_EQ(a.value, Value{std::int64_t{7}});
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(LogicalState(f.spec, f.x, r.schedule), Plain{std::int64_t{7}});
}

TEST(Coordinated, SchedulesAreWellFormed) {
  CoordFixture f;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    ioa::System b = BuildB(f.spec, f.users);
    const ioa::ExploreResult r = ioa::Explore(b, seed);
    ASSERT_TRUE(r.quiescent);
    std::string msg;
    EXPECT_TRUE(txn::IsWellFormed(f.spec.Type(), r.schedule, &msg))
        << "seed " << seed << ": " << msg;
  }
}

TEST(Coordinated, ProjectionRemovesCoordinatorsToo) {
  CoordFixture f;
  ioa::System b = BuildB(f.spec, f.users);
  Rng rng(9);
  ioa::ExploreOptions opts;
  opts.weight = AbortWeight(0.0);
  const ioa::ExploreResult r = ioa::Explore(b, rng, opts);
  const ioa::Schedule alpha = ProjectOutReplicaAccesses(f.spec, r.schedule);
  for (const ioa::Action& a : alpha) {
    EXPECT_FALSE(f.spec.IsCoordinator(a.txn));
    EXPECT_FALSE(f.spec.IsReplicaAccess(a.txn));
  }
  // But the TMs themselves remain.
  bool tm_seen = false;
  for (const ioa::Action& a : alpha) {
    if (a.txn == f.rtm) tm_seen = true;
  }
  EXPECT_TRUE(tm_seen);
}

class CoordinatedSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoordinatedSweep, Theorem10AndLemmasHold) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  // Random small coordinated systems with varying abort pressure.
  Rng rng(seed * 999331 + 7);
  ReplicatedSpec spec;
  const ReplicaId n = static_cast<ReplicaId>(rng.Range(2, 4));
  const ItemId x =
      spec.AddItem("x", n, quorum::Majority(n), Plain{std::int64_t{0}});
  const ItemId y = spec.AddItem("y", 2, quorum::ReadOneWriteAll(2),
                                Plain{std::int64_t{0}});
  const TxnId u1 = spec.AddTransaction(kRootTxn, "U1");
  const TxnId u2 = spec.AddTransaction(kRootTxn, "U2");
  std::vector<TxnId> s1{spec.AddWriteTm(u1, x, Plain{std::int64_t{1}}),
                        spec.AddReadTm(u1, y)};
  std::vector<TxnId> s2{spec.AddWriteTm(u2, y, Plain{std::int64_t{2}}),
                        spec.AddReadTm(u2, x),
                        spec.AddWriteTm(u2, x, Plain{std::int64_t{3}})};
  spec.FinalizeCoordinated(/*read_attempts=*/2);
  UserAutomataFactory users = [&](ioa::System& sys) {
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                          std::vector<TxnId>{u1, u2});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u1, s1);
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u2, s2);
  };

  ioa::System b = BuildB(spec, users);
  ioa::Schedule so_far;
  InvariantReport first_failure;
  ioa::ExploreOptions opts;
  const double abort_weight = (seed % 3 == 0) ? 0.0 : 0.3;
  opts.weight = [&spec, abort_weight](const ioa::Action& a) {
    if (a.kind != ioa::ActionKind::kAbort) return 1.0;
    // Abort accesses and occasionally coordinators (exercising the TM's
    // stuck-coordinator path).
    if (spec.IsReplicaAccess(a.txn)) return abort_weight;
    if (spec.IsCoordinator(a.txn)) return abort_weight * 0.2;
    return 0.0;
  };
  opts.observer = [&](const ioa::Action& a, const ioa::System& sys) {
    so_far.push_back(a);
    if (!first_failure.ok) return;
    first_failure = CheckLemmas(spec, sys, so_far);
  };
  const ioa::ExploreResult r = ioa::Explore(b, rng, opts);
  ASSERT_TRUE(r.quiescent);
  EXPECT_TRUE(first_failure.ok) << first_failure.message;

  std::string msg;
  EXPECT_TRUE(txn::IsWellFormed(spec.Type(), r.schedule, &msg)) << msg;
  const Theorem10Result t10 = CheckTheorem10(spec, users, r.schedule);
  EXPECT_TRUE(t10.ok) << "seed " << seed << ": " << t10.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoordinatedSweep, ::testing::Range(0, 30));

TEST(Coordinated, FlatAndCoordinatedAgreeOnOutcomes) {
  // The same workload under Finalize and FinalizeCoordinated yields the
  // same logical outcomes (abort-free, deterministic scripts).
  auto run = [](bool coordinated) {
    ReplicatedSpec spec;
    const ItemId x =
        spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
    const TxnId u = spec.AddTransaction(kRootTxn, "U");
    const TxnId w1 = spec.AddWriteTm(u, x, Plain{std::int64_t{5}});
    const TxnId r1 = spec.AddReadTm(u, x);
    const TxnId w2 = spec.AddWriteTm(u, x, Plain{std::int64_t{6}});
    const TxnId r2 = spec.AddReadTm(u, x);
    if (coordinated) {
      spec.FinalizeCoordinated();
    } else {
      spec.Finalize();
    }
    UserAutomataFactory users = [&](ioa::System& sys) {
      sys.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                            std::vector<TxnId>{u});
      sys.Emplace<txn::ScriptedTransaction>(
          spec.Type(), u, std::vector<TxnId>{w1, r1, w2, r2});
    };
    ioa::System b = BuildB(spec, users);
    Rng rng(1);
    ioa::ExploreOptions opts;
    opts.weight = AbortWeight(0.0);
    const ioa::ExploreResult res = ioa::Explore(b, rng, opts);
    std::vector<Value> reads;
    for (const ioa::Action& a : res.schedule) {
      if (a.kind == ioa::ActionKind::kRequestCommit &&
          (a.txn == r1 || a.txn == r2)) {
        reads.push_back(a.value);
      }
    }
    return reads;
  };
  const auto flat = run(false);
  const auto coordinated = run(true);
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_EQ(flat, coordinated);
  EXPECT_EQ(flat[0], Value{std::int64_t{5}});
  EXPECT_EQ(flat[1], Value{std::int64_t{6}});
}

}  // namespace
}  // namespace qcnt::replication
