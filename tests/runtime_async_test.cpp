// Tests for the asynchronous, batched client path — basic future
// semantics, pipelining across disjoint keys, per-key ordering, and the
// central equivalence property: for random workloads the batched/pipelined
// runtime and the sequential runtime produce identical per-operation
// results, identical final replica images, and identical per-item
// version-number sequences. The per-item checks mirror the clauses of
// Lemma 7 and Lemma 8 (src/replication/invariants.hpp mechanizes them for
// the automaton layer; here they are evaluated against live replica
// images of the threaded runtime).
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <thread>

#include "common/rng.hpp"
#include "runtime/store.hpp"

namespace qcnt::runtime {
namespace {

using namespace std::chrono_literals;

TEST(AsyncClient, WriteThenReadThroughFutures) {
  ReplicatedStore store(StoreOptions{.replicas = 3});
  auto client = store.MakeAsyncClient();
  OpFuture w = client->SubmitWrite("alpha", 42);
  const ClientResult wr = w.Get();
  ASSERT_TRUE(wr.ok);
  EXPECT_EQ(wr.value, 42);
  EXPECT_EQ(wr.version, 1u);
  OpFuture r = client->SubmitRead("alpha");
  const ClientResult rr = r.Get();
  ASSERT_TRUE(rr.ok);
  EXPECT_EQ(rr.value, 42);
  EXPECT_EQ(rr.version, 1u);
}

TEST(AsyncClient, PipelinesDisjointKeysIntoBatches) {
  ReplicatedStore store(StoreOptions{.replicas = 3});
  auto client = store.MakeAsyncClient(
      AsyncQuorumClient::Options{.window = 16, .max_batch = 8});
  std::vector<OpFuture> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(client->SubmitWrite("key" + std::to_string(i), i));
  }
  EXPECT_TRUE(client->Drain());
  for (auto& f : futures) EXPECT_TRUE(f.Get().ok);
  // Real batching must have happened: fewer broadcast batches than ops,
  // and the replicas saw multi-op messages.
  const AsyncQuorumClient::Stats& cs = client->ClientStats();
  EXPECT_EQ(cs.ops_completed, 32u);
  EXPECT_LT(cs.batches_sent, cs.batched_requests);
  const BatchStats bs = store.TotalBatchStats();
  EXPECT_GT(bs.batches_applied, 0u);
  EXPECT_GT(bs.max_batch, 1u);
}

TEST(AsyncClient, SameKeyWritesKeepSubmissionOrder) {
  StoreOptions options;
  options.replicas = 3;
  options.record_applied_history = true;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeAsyncClient(
      AsyncQuorumClient::Options{.window = 16, .max_batch = 4});
  for (int i = 1; i <= 10; ++i) client->SubmitWrite("k", i);
  ASSERT_TRUE(client->Drain());
  EXPECT_EQ(client->SubmitRead("k").Get().value, 10);
  // Writes target a minimal write quorum (not every replica), so a
  // replica may hold only a subsequence of k's history — but whatever it
  // applied must be in version order with value == the submission-order
  // payload (the pipeline never reordered the key), and every version
  // must have reached a full write quorum.
  std::array<std::uint64_t, 11> holders{};
  for (std::size_t r = 0; r < store.ReplicaCount(); ++r) {
    const ReplicaSnapshot snap = store.ReplicaPeek(r);
    std::uint64_t prev = 0;
    for (const AppliedWrite& w : snap.history) {
      if (w.key != "k") continue;
      EXPECT_GT(w.version, prev);
      EXPECT_EQ(w.value, static_cast<std::int64_t>(w.version));
      prev = w.version;
      ASSERT_LE(w.version, 10u);
      holders[w.version] |= 1ull << r;
    }
  }
  const quorum::QuorumSystem majority = quorum::MajoritySystem(3);
  for (std::uint64_t v = 1; v <= 10; ++v) {
    EXPECT_TRUE(majority.has_write(holders[v])) << "version " << v;
  }
}

TEST(AsyncClient, InterleavedReadsSeePrecedingWriteOnSameKey) {
  ReplicatedStore store(StoreOptions{.replicas = 3});
  auto client = store.MakeAsyncClient(
      AsyncQuorumClient::Options{.window = 8, .max_batch = 4});
  std::vector<std::pair<OpFuture, std::int64_t>> expected;
  for (int i = 1; i <= 20; ++i) {
    const std::string key = "k" + std::to_string(i % 4);
    client->SubmitWrite(key, i);
    expected.emplace_back(client->SubmitRead(key), i);
  }
  ASSERT_TRUE(client->Drain());
  for (auto& [future, want] : expected) {
    const ClientResult r = future.Get();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, want);
  }
}

TEST(AsyncClient, TimeoutFailsFuturesWhenQuorumUnavailable) {
  StoreOptions options;
  options.replicas = 3;
  options.async_client_options.timeout = 100ms;
  ReplicatedStore store(std::move(options));
  store.Crash(1);
  store.Crash(2);
  auto client = store.MakeAsyncClient();
  OpFuture f = client->SubmitWrite("x", 1);
  EXPECT_FALSE(client->Drain());
  const ClientResult r = f.Get();
  EXPECT_FALSE(r.ok);
  EXPECT_GT(client->ClientStats().ops_failed, 0u);
}

// ---------------------------------------------------------------------------
// Equivalence property: sequential vs batched/pipelined runtime.
// ---------------------------------------------------------------------------

/// Per-item Lemma 7 / Lemma 8 analogues over live replica images:
///   L7 : the highest version among replicas equals current-vn (the count
///        of completed logical writes to the item);
///   L8.1a: the replicas holding that version contain a write quorum;
///   L8.1b: every replica holding that version holds the logical state;
///   L8.2 : a quorum read returns the logical state.
void CheckRuntimeLemmas(ReplicatedStore& store, AsyncQuorumClient& reader,
                        const quorum::QuorumSystem& system,
                        const std::string& key, std::uint64_t current_vn,
                        std::int64_t logical_state) {
  std::uint64_t best = 0;
  std::uint64_t holders = 0;
  for (std::size_t r = 0; r < store.ReplicaCount(); ++r) {
    const ReplicaSnapshot snap = store.ReplicaPeek(r);
    const auto it = snap.image.data.find(key);
    const storage::Versioned v =
        it == snap.image.data.end() ? storage::Versioned{} : it->second;
    ASSERT_LE(v.version, current_vn) << "replica ahead of logical time";
    if (v.version > best) {
      best = v.version;
      holders = 0;
    }
    if (v.version == best) {
      holders |= 1ull << r;
      if (best == current_vn) {
        EXPECT_EQ(v.value, logical_state)
            << "L8.1b violated at replica " << r << " key " << key;
      }
    }
  }
  EXPECT_EQ(best, current_vn) << "L7 violated for key " << key;
  EXPECT_TRUE(system.has_write(holders))
      << "L8.1a violated for key " << key;
  const ClientResult r = reader.SubmitRead(key).Get();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, logical_state) << "L8.2 violated for key " << key;
}

/// Project a replica's applied-write history onto one key.
std::vector<std::pair<std::uint64_t, std::int64_t>> KeyHistory(
    const ReplicaSnapshot& snap, const std::string& key) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> out;
  for (const AppliedWrite& w : snap.history) {
    if (w.key == key) out.emplace_back(w.version, w.value);
  }
  return out;
}

TEST(AsyncSequentialEquivalence, RandomWorkloadManyIterations) {
  constexpr std::size_t kIterations = 1200;  // acceptance floor: 1000+
  constexpr std::size_t kReplicas = 3;
  const std::vector<std::string> keys = {"a", "b", "c", "d", "e", "f"};

  StoreOptions seq_options;
  seq_options.replicas = kReplicas;
  seq_options.record_applied_history = true;
  seq_options.max_clients = 4;
  ReplicatedStore seq_store(std::move(seq_options));
  auto seq_client = seq_store.MakeClient();

  StoreOptions batch_options;
  batch_options.replicas = kReplicas;
  batch_options.record_applied_history = true;
  batch_options.max_clients = 4;
  ReplicatedStore batch_store(std::move(batch_options));
  auto batch_client = batch_store.MakeAsyncClient(
      AsyncQuorumClient::Options{.window = 16, .max_batch = 8});

  const quorum::QuorumSystem system =
      quorum::MajoritySystem(static_cast<ReplicaId>(kReplicas));

  // Logical one-copy reference: per-key version count and last value.
  std::map<std::string, std::uint64_t> current_vn;
  std::map<std::string, std::int64_t> logical_state;

  // Pending async futures paired with the sequential run's result for the
  // same operation, compared at each drain point.
  std::vector<std::pair<OpFuture, ClientResult>> pending;

  auto drain_and_compare = [&] {
    ASSERT_TRUE(batch_client->Drain());
    for (auto& [future, want] : pending) {
      ASSERT_TRUE(future.Ready());
      const ClientResult got = future.Get();
      ASSERT_EQ(got.ok, want.ok);
      ASSERT_EQ(got.value, want.value);
      ASSERT_EQ(got.version, want.version);
    }
    pending.clear();
  };

  auto compare_replica_states = [&] {
    for (std::size_t r = 0; r < kReplicas; ++r) {
      const ReplicaSnapshot seq_snap = seq_store.ReplicaPeek(r);
      const ReplicaSnapshot batch_snap = batch_store.ReplicaPeek(r);
      for (const std::string& key : keys) {
        const auto si = seq_snap.image.data.find(key);
        const auto bi = batch_snap.image.data.find(key);
        const storage::Versioned sv =
            si == seq_snap.image.data.end() ? storage::Versioned{}
                                            : si->second;
        const storage::Versioned bv =
            bi == batch_snap.image.data.end() ? storage::Versioned{}
                                              : bi->second;
        ASSERT_EQ(sv.version, bv.version)
            << "replica " << r << " key " << key;
        ASSERT_EQ(sv.value, bv.value) << "replica " << r << " key " << key;
        // Identical per-item version-number sequences (Lemma 7/8 only
        // constrain per-item order; cross-item interleaving may differ).
        ASSERT_EQ(KeyHistory(seq_snap, key), KeyHistory(batch_snap, key))
            << "replica " << r << " key " << key;
      }
    }
  };

  qcnt::Rng rng(20260806);
  bool crashed = false;
  for (std::size_t i = 0; i < kIterations; ++i) {
    // A mid-run outage window, identical in both stores, makes the replica
    // images non-trivial (one replica genuinely misses writes, so the
    // quorum-holding checks below are not vacuous). Crash/recover at drain
    // boundaries so the missed-message sets match exactly.
    if (i == 500 || i == 800) {
      drain_and_compare();
      if (!crashed) {
        // Crash() drains via a marker through the replica's own FIFO, so
        // every install already delivered to replica 2 is applied before
        // the cut — both stores freeze the identical image, no barrier
        // needed.
        seq_store.Crash(2);
        batch_store.Crash(2);
      } else {
        seq_store.Recover(2);
        batch_store.Recover(2);
      }
      crashed = !crashed;
    }

    const std::string& key = keys[rng.Index(keys.size())];
    if (rng.Chance(0.3)) {
      const ClientResult want = seq_client->Read(key);
      pending.emplace_back(batch_client->SubmitRead(key), want);
    } else {
      const auto value = static_cast<std::int64_t>(i + 1);
      const ClientResult want = seq_client->Write(key, value);
      pending.emplace_back(batch_client->SubmitWrite(key, value), want);
      if (want.ok) {
        current_vn[key] += 1;
        logical_state[key] = value;
      }
    }

    if (pending.size() >= 16) drain_and_compare();
    if ((i + 1) % 200 == 0) {
      drain_and_compare();
      compare_replica_states();
    }
  }
  drain_and_compare();
  compare_replica_states();

  // The batched store on its own satisfies the runtime analogues of
  // Lemma 7 and Lemma 8 for every item.
  auto lemma_reader = batch_store.MakeAsyncClient();
  for (const std::string& key : keys) {
    CheckRuntimeLemmas(batch_store, *lemma_reader, system, key,
                       current_vn[key], logical_state[key]);
  }

  // The workload actually exercised batching.
  const BatchStats bs = batch_store.TotalBatchStats();
  EXPECT_GT(bs.batches_applied, 0u);
  EXPECT_GT(bs.max_batch, 1u);
}

}  // namespace
}  // namespace qcnt::runtime
