// Unit tests for the I/O automaton framework: actions, composition,
// projection, replay, and the exploration driver.
#include <gtest/gtest.h>

#include "ioa/explorer.hpp"
#include "ioa/system.hpp"

namespace qcnt::ioa {
namespace {

// A toy automaton: counts to `limit` by emitting CREATE(t) actions for a
// fixed txn id; accepts COMMIT(t) as input, which resets the count.
class Counter : public Automaton {
 public:
  Counter(TxnId txn, int limit) : txn_(txn), limit_(limit) {}

  int Count() const { return count_; }

  std::string Name() const override {
    return "counter(T" + std::to_string(txn_) + ")";
  }
  bool IsOperation(const Action& a) const override {
    return a.txn == txn_ && (a.kind == ActionKind::kCreate ||
                             a.kind == ActionKind::kCommit);
  }
  bool IsOutput(const Action& a) const override {
    return a.txn == txn_ && a.kind == ActionKind::kCreate;
  }
  bool Enabled(const Action& a) const override {
    if (!IsOperation(a)) return false;
    if (a.kind == ActionKind::kCommit) return true;
    return count_ < limit_;
  }
  void Apply(const Action& a) override {
    if (a.kind == ActionKind::kCreate) {
      ++count_;
    } else {
      count_ = 0;
    }
  }
  void EnabledOutputs(std::vector<Action>& out) const override {
    if (count_ < limit_) out.push_back(Create(txn_));
  }
  void Reset() override { count_ = 0; }

 private:
  TxnId txn_;
  int limit_;
  int count_ = 0;
};

TEST(Action, Equality) {
  EXPECT_EQ(Create(3), Create(3));
  EXPECT_NE(Create(3), Create(4));
  EXPECT_NE(Create(3), Abort(3));
  EXPECT_EQ(Commit(1, Value{std::int64_t{5}}), Commit(1, Value{std::int64_t{5}}));
  EXPECT_NE(Commit(1, Value{std::int64_t{5}}), Commit(1, kNil));
}

TEST(Action, ReturnOperationPredicate) {
  EXPECT_TRUE(IsReturnOperation(Commit(1, kNil)));
  EXPECT_TRUE(IsReturnOperation(Abort(1)));
  EXPECT_FALSE(IsReturnOperation(Create(1)));
  EXPECT_FALSE(IsReturnOperation(RequestCommit(1, kNil)));
  EXPECT_FALSE(IsReturnOperation(RequestCreate(1)));
}

TEST(Action, ToStringContainsKindAndTxn) {
  const std::string s = ToString(Commit(7, Value{std::int64_t{9}}));
  EXPECT_NE(s.find("COMMIT"), std::string::npos);
  EXPECT_NE(s.find("T7"), std::string::npos);
  EXPECT_NE(s.find('9'), std::string::npos);
}

TEST(System, ComposesAndDispatches) {
  System sys;
  auto& c1 = sys.Emplace<Counter>(1, 2);
  auto& c2 = sys.Emplace<Counter>(2, 3);
  EXPECT_TRUE(sys.IsOperation(Create(1)));
  EXPECT_TRUE(sys.IsOutput(Create(2)));
  EXPECT_FALSE(sys.IsOperation(Create(9)));

  sys.Apply(Create(1));
  EXPECT_EQ(c1.Count(), 1);
  EXPECT_EQ(c2.Count(), 0);
}

TEST(System, OutputOwnerUnique) {
  System sys;
  sys.Emplace<Counter>(1, 2);
  sys.Emplace<Counter>(2, 2);
  EXPECT_NE(sys.OutputOwner(Create(1)), nullptr);
  EXPECT_EQ(sys.OutputOwner(Create(5)), nullptr);
  EXPECT_EQ(sys.OutputOwner(Commit(1, kNil)), nullptr);  // input of composition
}

TEST(System, EnabledReflectsOwner) {
  System sys;
  sys.Emplace<Counter>(1, 1);
  EXPECT_TRUE(sys.Enabled(Create(1)));
  sys.Apply(Create(1));
  EXPECT_FALSE(sys.Enabled(Create(1)));  // limit reached
  EXPECT_TRUE(sys.Enabled(Commit(1, kNil)));  // input: always enabled
}

TEST(System, ResetRestoresStart) {
  System sys;
  auto& c = sys.Emplace<Counter>(1, 5);
  sys.Apply(Create(1));
  sys.Apply(Create(1));
  EXPECT_EQ(c.Count(), 2);
  sys.Reset();
  EXPECT_EQ(c.Count(), 0);
}

TEST(Execution, ProjectFilters) {
  Schedule s{Create(1), Create(2), Commit(1, kNil), Abort(2)};
  const Schedule only1 =
      Project(s, [](const Action& a) { return a.txn == 1; });
  ASSERT_EQ(only1.size(), 2u);
  EXPECT_EQ(only1[0], Create(1));
  EXPECT_EQ(only1[1], Commit(1, kNil));
}

TEST(Execution, ProjectToAutomaton) {
  Counter c(1, 3);
  Schedule s{Create(1), Create(2), Commit(1, kNil), Commit(2, kNil)};
  const Schedule proj = ProjectToAutomaton(s, c);
  ASSERT_EQ(proj.size(), 2u);
  EXPECT_EQ(proj[0].txn, 1u);
  EXPECT_EQ(proj[1].txn, 1u);
}

TEST(Execution, ReplayAcceptsLegalSchedule) {
  System sys;
  sys.Emplace<Counter>(1, 2);
  const Schedule s{Create(1), Create(1), Commit(1, kNil), Create(1)};
  const ReplayResult r = Replay(sys, s);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(Execution, ReplayRejectsDisabledOutput) {
  System sys;
  sys.Emplace<Counter>(1, 1);
  const Schedule s{Create(1), Create(1)};  // second CREATE exceeds limit
  const ReplayResult r = Replay(sys, s);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failed_index, 1u);
}

TEST(Execution, ReplayRejectsForeignAction) {
  System sys;
  sys.Emplace<Counter>(1, 1);
  const Schedule s{Create(9)};
  const ReplayResult r = Replay(sys, s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("not an operation"), std::string::npos);
}

TEST(Explorer, RunsToQuiescence) {
  System sys;
  auto& c1 = sys.Emplace<Counter>(1, 2);
  auto& c2 = sys.Emplace<Counter>(2, 3);
  const ExploreResult r = Explore(sys, 123);
  EXPECT_TRUE(r.quiescent);
  EXPECT_EQ(r.schedule.size(), 5u);
  EXPECT_EQ(c1.Count(), 2);
  EXPECT_EQ(c2.Count(), 3);
}

TEST(Explorer, DeterministicBySeed) {
  auto run = [](std::uint64_t seed) {
    System sys;
    sys.Emplace<Counter>(1, 4);
    sys.Emplace<Counter>(2, 4);
    return Explore(sys, seed).schedule;
  };
  EXPECT_EQ(run(77), run(77));
}

TEST(Explorer, RespectsMaxSteps) {
  System sys;
  sys.Emplace<Counter>(1, 1000000);
  Rng rng(1);
  ExploreOptions opts;
  opts.max_steps = 10;
  const ExploreResult r = Explore(sys, rng, opts);
  EXPECT_FALSE(r.quiescent);
  EXPECT_EQ(r.schedule.size(), 10u);
}

TEST(Explorer, WeightZeroSuppressesAction) {
  System sys;
  sys.Emplace<Counter>(1, 5);
  sys.Emplace<Counter>(2, 5);
  Rng rng(1);
  ExploreOptions opts;
  opts.weight = [](const Action& a) { return a.txn == 1 ? 0.0 : 1.0; };
  const ExploreResult r = Explore(sys, rng, opts);
  for (const Action& a : r.schedule) EXPECT_EQ(a.txn, 2u);
  EXPECT_EQ(r.schedule.size(), 5u);
}

TEST(Explorer, ObserverSeesEveryStep) {
  System sys;
  sys.Emplace<Counter>(1, 3);
  Rng rng(1);
  ExploreOptions opts;
  std::size_t steps = 0;
  opts.observer = [&steps](const Action&, const System&) { ++steps; };
  const ExploreResult r = Explore(sys, rng, opts);
  EXPECT_EQ(steps, r.schedule.size());
}

}  // namespace
}  // namespace qcnt::ioa
