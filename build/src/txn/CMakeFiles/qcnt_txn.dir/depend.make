# Empty dependencies file for qcnt_txn.
# This may be replaced when dependencies are built.
