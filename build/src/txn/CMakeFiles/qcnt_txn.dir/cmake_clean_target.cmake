file(REMOVE_RECURSE
  "libqcnt_txn.a"
)
