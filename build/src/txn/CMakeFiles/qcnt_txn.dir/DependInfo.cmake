
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/random_transaction.cpp" "src/txn/CMakeFiles/qcnt_txn.dir/random_transaction.cpp.o" "gcc" "src/txn/CMakeFiles/qcnt_txn.dir/random_transaction.cpp.o.d"
  "/root/repo/src/txn/read_write_object.cpp" "src/txn/CMakeFiles/qcnt_txn.dir/read_write_object.cpp.o" "gcc" "src/txn/CMakeFiles/qcnt_txn.dir/read_write_object.cpp.o.d"
  "/root/repo/src/txn/scripted_transaction.cpp" "src/txn/CMakeFiles/qcnt_txn.dir/scripted_transaction.cpp.o" "gcc" "src/txn/CMakeFiles/qcnt_txn.dir/scripted_transaction.cpp.o.d"
  "/root/repo/src/txn/serial_scheduler.cpp" "src/txn/CMakeFiles/qcnt_txn.dir/serial_scheduler.cpp.o" "gcc" "src/txn/CMakeFiles/qcnt_txn.dir/serial_scheduler.cpp.o.d"
  "/root/repo/src/txn/system_type.cpp" "src/txn/CMakeFiles/qcnt_txn.dir/system_type.cpp.o" "gcc" "src/txn/CMakeFiles/qcnt_txn.dir/system_type.cpp.o.d"
  "/root/repo/src/txn/wellformed.cpp" "src/txn/CMakeFiles/qcnt_txn.dir/wellformed.cpp.o" "gcc" "src/txn/CMakeFiles/qcnt_txn.dir/wellformed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ioa/CMakeFiles/qcnt_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qcnt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
