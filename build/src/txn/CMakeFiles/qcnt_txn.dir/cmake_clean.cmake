file(REMOVE_RECURSE
  "CMakeFiles/qcnt_txn.dir/random_transaction.cpp.o"
  "CMakeFiles/qcnt_txn.dir/random_transaction.cpp.o.d"
  "CMakeFiles/qcnt_txn.dir/read_write_object.cpp.o"
  "CMakeFiles/qcnt_txn.dir/read_write_object.cpp.o.d"
  "CMakeFiles/qcnt_txn.dir/scripted_transaction.cpp.o"
  "CMakeFiles/qcnt_txn.dir/scripted_transaction.cpp.o.d"
  "CMakeFiles/qcnt_txn.dir/serial_scheduler.cpp.o"
  "CMakeFiles/qcnt_txn.dir/serial_scheduler.cpp.o.d"
  "CMakeFiles/qcnt_txn.dir/system_type.cpp.o"
  "CMakeFiles/qcnt_txn.dir/system_type.cpp.o.d"
  "CMakeFiles/qcnt_txn.dir/wellformed.cpp.o"
  "CMakeFiles/qcnt_txn.dir/wellformed.cpp.o.d"
  "libqcnt_txn.a"
  "libqcnt_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcnt_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
