# Empty dependencies file for qcnt_replication.
# This may be replaced when dependencies are built.
