
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/coordinators.cpp" "src/replication/CMakeFiles/qcnt_replication.dir/coordinators.cpp.o" "gcc" "src/replication/CMakeFiles/qcnt_replication.dir/coordinators.cpp.o.d"
  "/root/repo/src/replication/harness.cpp" "src/replication/CMakeFiles/qcnt_replication.dir/harness.cpp.o" "gcc" "src/replication/CMakeFiles/qcnt_replication.dir/harness.cpp.o.d"
  "/root/repo/src/replication/invariants.cpp" "src/replication/CMakeFiles/qcnt_replication.dir/invariants.cpp.o" "gcc" "src/replication/CMakeFiles/qcnt_replication.dir/invariants.cpp.o.d"
  "/root/repo/src/replication/logical.cpp" "src/replication/CMakeFiles/qcnt_replication.dir/logical.cpp.o" "gcc" "src/replication/CMakeFiles/qcnt_replication.dir/logical.cpp.o.d"
  "/root/repo/src/replication/logical_object.cpp" "src/replication/CMakeFiles/qcnt_replication.dir/logical_object.cpp.o" "gcc" "src/replication/CMakeFiles/qcnt_replication.dir/logical_object.cpp.o.d"
  "/root/repo/src/replication/read_tm.cpp" "src/replication/CMakeFiles/qcnt_replication.dir/read_tm.cpp.o" "gcc" "src/replication/CMakeFiles/qcnt_replication.dir/read_tm.cpp.o.d"
  "/root/repo/src/replication/spec.cpp" "src/replication/CMakeFiles/qcnt_replication.dir/spec.cpp.o" "gcc" "src/replication/CMakeFiles/qcnt_replication.dir/spec.cpp.o.d"
  "/root/repo/src/replication/theorem10.cpp" "src/replication/CMakeFiles/qcnt_replication.dir/theorem10.cpp.o" "gcc" "src/replication/CMakeFiles/qcnt_replication.dir/theorem10.cpp.o.d"
  "/root/repo/src/replication/write_tm.cpp" "src/replication/CMakeFiles/qcnt_replication.dir/write_tm.cpp.o" "gcc" "src/replication/CMakeFiles/qcnt_replication.dir/write_tm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/qcnt_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/qcnt_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/ioa/CMakeFiles/qcnt_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qcnt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
