file(REMOVE_RECURSE
  "libqcnt_replication.a"
)
