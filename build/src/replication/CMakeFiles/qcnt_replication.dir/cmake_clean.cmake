file(REMOVE_RECURSE
  "CMakeFiles/qcnt_replication.dir/coordinators.cpp.o"
  "CMakeFiles/qcnt_replication.dir/coordinators.cpp.o.d"
  "CMakeFiles/qcnt_replication.dir/harness.cpp.o"
  "CMakeFiles/qcnt_replication.dir/harness.cpp.o.d"
  "CMakeFiles/qcnt_replication.dir/invariants.cpp.o"
  "CMakeFiles/qcnt_replication.dir/invariants.cpp.o.d"
  "CMakeFiles/qcnt_replication.dir/logical.cpp.o"
  "CMakeFiles/qcnt_replication.dir/logical.cpp.o.d"
  "CMakeFiles/qcnt_replication.dir/logical_object.cpp.o"
  "CMakeFiles/qcnt_replication.dir/logical_object.cpp.o.d"
  "CMakeFiles/qcnt_replication.dir/read_tm.cpp.o"
  "CMakeFiles/qcnt_replication.dir/read_tm.cpp.o.d"
  "CMakeFiles/qcnt_replication.dir/spec.cpp.o"
  "CMakeFiles/qcnt_replication.dir/spec.cpp.o.d"
  "CMakeFiles/qcnt_replication.dir/theorem10.cpp.o"
  "CMakeFiles/qcnt_replication.dir/theorem10.cpp.o.d"
  "CMakeFiles/qcnt_replication.dir/write_tm.cpp.o"
  "CMakeFiles/qcnt_replication.dir/write_tm.cpp.o.d"
  "libqcnt_replication.a"
  "libqcnt_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcnt_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
