# Empty dependencies file for qcnt_sim.
# This may be replaced when dependencies are built.
