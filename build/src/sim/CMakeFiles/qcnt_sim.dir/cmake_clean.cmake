file(REMOVE_RECURSE
  "CMakeFiles/qcnt_sim.dir/network.cpp.o"
  "CMakeFiles/qcnt_sim.dir/network.cpp.o.d"
  "CMakeFiles/qcnt_sim.dir/simulator.cpp.o"
  "CMakeFiles/qcnt_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/qcnt_sim.dir/store.cpp.o"
  "CMakeFiles/qcnt_sim.dir/store.cpp.o.d"
  "libqcnt_sim.a"
  "libqcnt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcnt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
