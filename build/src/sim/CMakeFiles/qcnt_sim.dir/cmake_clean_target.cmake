file(REMOVE_RECURSE
  "libqcnt_sim.a"
)
