file(REMOVE_RECURSE
  "CMakeFiles/qcnt_common.dir/rng.cpp.o"
  "CMakeFiles/qcnt_common.dir/rng.cpp.o.d"
  "CMakeFiles/qcnt_common.dir/value.cpp.o"
  "CMakeFiles/qcnt_common.dir/value.cpp.o.d"
  "libqcnt_common.a"
  "libqcnt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcnt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
