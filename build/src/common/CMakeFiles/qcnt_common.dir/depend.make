# Empty dependencies file for qcnt_common.
# This may be replaced when dependencies are built.
