file(REMOVE_RECURSE
  "libqcnt_common.a"
)
