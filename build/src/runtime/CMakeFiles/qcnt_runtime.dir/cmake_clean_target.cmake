file(REMOVE_RECURSE
  "libqcnt_runtime.a"
)
