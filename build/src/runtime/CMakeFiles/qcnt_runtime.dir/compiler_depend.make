# Empty compiler generated dependencies file for qcnt_runtime.
# This may be replaced when dependencies are built.
