
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/bus.cpp" "src/runtime/CMakeFiles/qcnt_runtime.dir/bus.cpp.o" "gcc" "src/runtime/CMakeFiles/qcnt_runtime.dir/bus.cpp.o.d"
  "/root/repo/src/runtime/client.cpp" "src/runtime/CMakeFiles/qcnt_runtime.dir/client.cpp.o" "gcc" "src/runtime/CMakeFiles/qcnt_runtime.dir/client.cpp.o.d"
  "/root/repo/src/runtime/mailbox.cpp" "src/runtime/CMakeFiles/qcnt_runtime.dir/mailbox.cpp.o" "gcc" "src/runtime/CMakeFiles/qcnt_runtime.dir/mailbox.cpp.o.d"
  "/root/repo/src/runtime/replica_server.cpp" "src/runtime/CMakeFiles/qcnt_runtime.dir/replica_server.cpp.o" "gcc" "src/runtime/CMakeFiles/qcnt_runtime.dir/replica_server.cpp.o.d"
  "/root/repo/src/runtime/store.cpp" "src/runtime/CMakeFiles/qcnt_runtime.dir/store.cpp.o" "gcc" "src/runtime/CMakeFiles/qcnt_runtime.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quorum/CMakeFiles/qcnt_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qcnt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
