file(REMOVE_RECURSE
  "CMakeFiles/qcnt_runtime.dir/bus.cpp.o"
  "CMakeFiles/qcnt_runtime.dir/bus.cpp.o.d"
  "CMakeFiles/qcnt_runtime.dir/client.cpp.o"
  "CMakeFiles/qcnt_runtime.dir/client.cpp.o.d"
  "CMakeFiles/qcnt_runtime.dir/mailbox.cpp.o"
  "CMakeFiles/qcnt_runtime.dir/mailbox.cpp.o.d"
  "CMakeFiles/qcnt_runtime.dir/replica_server.cpp.o"
  "CMakeFiles/qcnt_runtime.dir/replica_server.cpp.o.d"
  "CMakeFiles/qcnt_runtime.dir/store.cpp.o"
  "CMakeFiles/qcnt_runtime.dir/store.cpp.o.d"
  "libqcnt_runtime.a"
  "libqcnt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcnt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
