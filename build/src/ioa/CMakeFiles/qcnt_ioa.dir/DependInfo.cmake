
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ioa/action.cpp" "src/ioa/CMakeFiles/qcnt_ioa.dir/action.cpp.o" "gcc" "src/ioa/CMakeFiles/qcnt_ioa.dir/action.cpp.o.d"
  "/root/repo/src/ioa/execution.cpp" "src/ioa/CMakeFiles/qcnt_ioa.dir/execution.cpp.o" "gcc" "src/ioa/CMakeFiles/qcnt_ioa.dir/execution.cpp.o.d"
  "/root/repo/src/ioa/explorer.cpp" "src/ioa/CMakeFiles/qcnt_ioa.dir/explorer.cpp.o" "gcc" "src/ioa/CMakeFiles/qcnt_ioa.dir/explorer.cpp.o.d"
  "/root/repo/src/ioa/system.cpp" "src/ioa/CMakeFiles/qcnt_ioa.dir/system.cpp.o" "gcc" "src/ioa/CMakeFiles/qcnt_ioa.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qcnt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
