file(REMOVE_RECURSE
  "CMakeFiles/qcnt_ioa.dir/action.cpp.o"
  "CMakeFiles/qcnt_ioa.dir/action.cpp.o.d"
  "CMakeFiles/qcnt_ioa.dir/execution.cpp.o"
  "CMakeFiles/qcnt_ioa.dir/execution.cpp.o.d"
  "CMakeFiles/qcnt_ioa.dir/explorer.cpp.o"
  "CMakeFiles/qcnt_ioa.dir/explorer.cpp.o.d"
  "CMakeFiles/qcnt_ioa.dir/system.cpp.o"
  "CMakeFiles/qcnt_ioa.dir/system.cpp.o.d"
  "libqcnt_ioa.a"
  "libqcnt_ioa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcnt_ioa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
