file(REMOVE_RECURSE
  "libqcnt_ioa.a"
)
