# Empty compiler generated dependencies file for qcnt_ioa.
# This may be replaced when dependencies are built.
