file(REMOVE_RECURSE
  "CMakeFiles/qcnt_cc.dir/concurrent_scheduler.cpp.o"
  "CMakeFiles/qcnt_cc.dir/concurrent_scheduler.cpp.o.d"
  "CMakeFiles/qcnt_cc.dir/deadlock.cpp.o"
  "CMakeFiles/qcnt_cc.dir/deadlock.cpp.o.d"
  "CMakeFiles/qcnt_cc.dir/locked_object.cpp.o"
  "CMakeFiles/qcnt_cc.dir/locked_object.cpp.o.d"
  "CMakeFiles/qcnt_cc.dir/system_c.cpp.o"
  "CMakeFiles/qcnt_cc.dir/system_c.cpp.o.d"
  "libqcnt_cc.a"
  "libqcnt_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcnt_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
