# Empty compiler generated dependencies file for qcnt_cc.
# This may be replaced when dependencies are built.
