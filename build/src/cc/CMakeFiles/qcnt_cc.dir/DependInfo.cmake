
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/concurrent_scheduler.cpp" "src/cc/CMakeFiles/qcnt_cc.dir/concurrent_scheduler.cpp.o" "gcc" "src/cc/CMakeFiles/qcnt_cc.dir/concurrent_scheduler.cpp.o.d"
  "/root/repo/src/cc/deadlock.cpp" "src/cc/CMakeFiles/qcnt_cc.dir/deadlock.cpp.o" "gcc" "src/cc/CMakeFiles/qcnt_cc.dir/deadlock.cpp.o.d"
  "/root/repo/src/cc/locked_object.cpp" "src/cc/CMakeFiles/qcnt_cc.dir/locked_object.cpp.o" "gcc" "src/cc/CMakeFiles/qcnt_cc.dir/locked_object.cpp.o.d"
  "/root/repo/src/cc/system_c.cpp" "src/cc/CMakeFiles/qcnt_cc.dir/system_c.cpp.o" "gcc" "src/cc/CMakeFiles/qcnt_cc.dir/system_c.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/replication/CMakeFiles/qcnt_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/qcnt_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/ioa/CMakeFiles/qcnt_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/qcnt_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qcnt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
