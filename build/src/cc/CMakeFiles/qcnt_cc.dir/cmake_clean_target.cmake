file(REMOVE_RECURSE
  "libqcnt_cc.a"
)
