# Empty dependencies file for qcnt_reconfig.
# This may be replaced when dependencies are built.
