file(REMOVE_RECURSE
  "CMakeFiles/qcnt_reconfig.dir/r_logical_object.cpp.o"
  "CMakeFiles/qcnt_reconfig.dir/r_logical_object.cpp.o.d"
  "CMakeFiles/qcnt_reconfig.dir/reconfig_dm.cpp.o"
  "CMakeFiles/qcnt_reconfig.dir/reconfig_dm.cpp.o.d"
  "CMakeFiles/qcnt_reconfig.dir/rspec.cpp.o"
  "CMakeFiles/qcnt_reconfig.dir/rspec.cpp.o.d"
  "CMakeFiles/qcnt_reconfig.dir/spy.cpp.o"
  "CMakeFiles/qcnt_reconfig.dir/spy.cpp.o.d"
  "CMakeFiles/qcnt_reconfig.dir/theorem.cpp.o"
  "CMakeFiles/qcnt_reconfig.dir/theorem.cpp.o.d"
  "CMakeFiles/qcnt_reconfig.dir/tms.cpp.o"
  "CMakeFiles/qcnt_reconfig.dir/tms.cpp.o.d"
  "libqcnt_reconfig.a"
  "libqcnt_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcnt_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
