file(REMOVE_RECURSE
  "libqcnt_reconfig.a"
)
