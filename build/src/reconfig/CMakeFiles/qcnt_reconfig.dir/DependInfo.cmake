
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reconfig/r_logical_object.cpp" "src/reconfig/CMakeFiles/qcnt_reconfig.dir/r_logical_object.cpp.o" "gcc" "src/reconfig/CMakeFiles/qcnt_reconfig.dir/r_logical_object.cpp.o.d"
  "/root/repo/src/reconfig/reconfig_dm.cpp" "src/reconfig/CMakeFiles/qcnt_reconfig.dir/reconfig_dm.cpp.o" "gcc" "src/reconfig/CMakeFiles/qcnt_reconfig.dir/reconfig_dm.cpp.o.d"
  "/root/repo/src/reconfig/rspec.cpp" "src/reconfig/CMakeFiles/qcnt_reconfig.dir/rspec.cpp.o" "gcc" "src/reconfig/CMakeFiles/qcnt_reconfig.dir/rspec.cpp.o.d"
  "/root/repo/src/reconfig/spy.cpp" "src/reconfig/CMakeFiles/qcnt_reconfig.dir/spy.cpp.o" "gcc" "src/reconfig/CMakeFiles/qcnt_reconfig.dir/spy.cpp.o.d"
  "/root/repo/src/reconfig/theorem.cpp" "src/reconfig/CMakeFiles/qcnt_reconfig.dir/theorem.cpp.o" "gcc" "src/reconfig/CMakeFiles/qcnt_reconfig.dir/theorem.cpp.o.d"
  "/root/repo/src/reconfig/tms.cpp" "src/reconfig/CMakeFiles/qcnt_reconfig.dir/tms.cpp.o" "gcc" "src/reconfig/CMakeFiles/qcnt_reconfig.dir/tms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/qcnt_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/qcnt_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/ioa/CMakeFiles/qcnt_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qcnt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
