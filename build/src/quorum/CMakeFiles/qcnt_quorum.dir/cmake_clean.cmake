file(REMOVE_RECURSE
  "CMakeFiles/qcnt_quorum.dir/availability.cpp.o"
  "CMakeFiles/qcnt_quorum.dir/availability.cpp.o.d"
  "CMakeFiles/qcnt_quorum.dir/configuration.cpp.o"
  "CMakeFiles/qcnt_quorum.dir/configuration.cpp.o.d"
  "CMakeFiles/qcnt_quorum.dir/coterie.cpp.o"
  "CMakeFiles/qcnt_quorum.dir/coterie.cpp.o.d"
  "CMakeFiles/qcnt_quorum.dir/strategies.cpp.o"
  "CMakeFiles/qcnt_quorum.dir/strategies.cpp.o.d"
  "libqcnt_quorum.a"
  "libqcnt_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcnt_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
