# Empty dependencies file for qcnt_quorum.
# This may be replaced when dependencies are built.
