file(REMOVE_RECURSE
  "libqcnt_quorum.a"
)
