# Empty dependencies file for bench_ablation_intersection.
# This may be replaced when dependencies are built.
