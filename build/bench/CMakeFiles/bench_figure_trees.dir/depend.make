# Empty dependencies file for bench_figure_trees.
# This may be replaced when dependencies are built.
