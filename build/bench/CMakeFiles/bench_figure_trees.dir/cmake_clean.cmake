file(REMOVE_RECURSE
  "CMakeFiles/bench_figure_trees.dir/bench_figure_trees.cpp.o"
  "CMakeFiles/bench_figure_trees.dir/bench_figure_trees.cpp.o.d"
  "bench_figure_trees"
  "bench_figure_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
