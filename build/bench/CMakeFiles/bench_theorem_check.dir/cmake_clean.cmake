file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem_check.dir/bench_theorem_check.cpp.o"
  "CMakeFiles/bench_theorem_check.dir/bench_theorem_check.cpp.o.d"
  "bench_theorem_check"
  "bench_theorem_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
