file(REMOVE_RECURSE
  "CMakeFiles/bench_abort_tolerance.dir/bench_abort_tolerance.cpp.o"
  "CMakeFiles/bench_abort_tolerance.dir/bench_abort_tolerance.cpp.o.d"
  "bench_abort_tolerance"
  "bench_abort_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abort_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
