# Empty compiler generated dependencies file for bench_abort_tolerance.
# This may be replaced when dependencies are built.
