# Empty compiler generated dependencies file for bench_quorum_cost.
# This may be replaced when dependencies are built.
