file(REMOVE_RECURSE
  "CMakeFiles/bench_quorum_cost.dir/bench_quorum_cost.cpp.o"
  "CMakeFiles/bench_quorum_cost.dir/bench_quorum_cost.cpp.o.d"
  "bench_quorum_cost"
  "bench_quorum_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quorum_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
