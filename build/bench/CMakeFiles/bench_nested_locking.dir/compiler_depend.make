# Empty compiler generated dependencies file for bench_nested_locking.
# This may be replaced when dependencies are built.
