file(REMOVE_RECURSE
  "CMakeFiles/bench_nested_locking.dir/bench_nested_locking.cpp.o"
  "CMakeFiles/bench_nested_locking.dir/bench_nested_locking.cpp.o.d"
  "bench_nested_locking"
  "bench_nested_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nested_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
