file(REMOVE_RECURSE
  "CMakeFiles/cc_tests.dir/cc_test.cpp.o"
  "CMakeFiles/cc_tests.dir/cc_test.cpp.o.d"
  "CMakeFiles/cc_tests.dir/deadlock_test.cpp.o"
  "CMakeFiles/cc_tests.dir/deadlock_test.cpp.o.d"
  "cc_tests"
  "cc_tests.pdb"
  "cc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
