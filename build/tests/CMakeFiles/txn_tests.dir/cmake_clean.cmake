file(REMOVE_RECURSE
  "CMakeFiles/txn_tests.dir/read_write_object_test.cpp.o"
  "CMakeFiles/txn_tests.dir/read_write_object_test.cpp.o.d"
  "CMakeFiles/txn_tests.dir/serial_scheduler_test.cpp.o"
  "CMakeFiles/txn_tests.dir/serial_scheduler_test.cpp.o.d"
  "CMakeFiles/txn_tests.dir/system_type_test.cpp.o"
  "CMakeFiles/txn_tests.dir/system_type_test.cpp.o.d"
  "CMakeFiles/txn_tests.dir/transactions_test.cpp.o"
  "CMakeFiles/txn_tests.dir/transactions_test.cpp.o.d"
  "CMakeFiles/txn_tests.dir/wellformed_test.cpp.o"
  "CMakeFiles/txn_tests.dir/wellformed_test.cpp.o.d"
  "txn_tests"
  "txn_tests.pdb"
  "txn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
