# Empty dependencies file for txn_tests.
# This may be replaced when dependencies are built.
