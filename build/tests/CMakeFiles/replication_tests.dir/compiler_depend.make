# Empty compiler generated dependencies file for replication_tests.
# This may be replaced when dependencies are built.
