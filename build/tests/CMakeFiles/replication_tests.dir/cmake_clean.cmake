file(REMOVE_RECURSE
  "CMakeFiles/replication_tests.dir/coordinated_test.cpp.o"
  "CMakeFiles/replication_tests.dir/coordinated_test.cpp.o.d"
  "CMakeFiles/replication_tests.dir/explorer_property_test.cpp.o"
  "CMakeFiles/replication_tests.dir/explorer_property_test.cpp.o.d"
  "CMakeFiles/replication_tests.dir/fault_injection_test.cpp.o"
  "CMakeFiles/replication_tests.dir/fault_injection_test.cpp.o.d"
  "CMakeFiles/replication_tests.dir/integration_test.cpp.o"
  "CMakeFiles/replication_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/replication_tests.dir/lemma_property_test.cpp.o"
  "CMakeFiles/replication_tests.dir/lemma_property_test.cpp.o.d"
  "CMakeFiles/replication_tests.dir/replication_spec_test.cpp.o"
  "CMakeFiles/replication_tests.dir/replication_spec_test.cpp.o.d"
  "CMakeFiles/replication_tests.dir/theorem10_test.cpp.o"
  "CMakeFiles/replication_tests.dir/theorem10_test.cpp.o.d"
  "CMakeFiles/replication_tests.dir/tm_test.cpp.o"
  "CMakeFiles/replication_tests.dir/tm_test.cpp.o.d"
  "replication_tests"
  "replication_tests.pdb"
  "replication_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
