
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/coordinated_test.cpp" "tests/CMakeFiles/replication_tests.dir/coordinated_test.cpp.o" "gcc" "tests/CMakeFiles/replication_tests.dir/coordinated_test.cpp.o.d"
  "/root/repo/tests/explorer_property_test.cpp" "tests/CMakeFiles/replication_tests.dir/explorer_property_test.cpp.o" "gcc" "tests/CMakeFiles/replication_tests.dir/explorer_property_test.cpp.o.d"
  "/root/repo/tests/fault_injection_test.cpp" "tests/CMakeFiles/replication_tests.dir/fault_injection_test.cpp.o" "gcc" "tests/CMakeFiles/replication_tests.dir/fault_injection_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/replication_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/replication_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/lemma_property_test.cpp" "tests/CMakeFiles/replication_tests.dir/lemma_property_test.cpp.o" "gcc" "tests/CMakeFiles/replication_tests.dir/lemma_property_test.cpp.o.d"
  "/root/repo/tests/replication_spec_test.cpp" "tests/CMakeFiles/replication_tests.dir/replication_spec_test.cpp.o" "gcc" "tests/CMakeFiles/replication_tests.dir/replication_spec_test.cpp.o.d"
  "/root/repo/tests/theorem10_test.cpp" "tests/CMakeFiles/replication_tests.dir/theorem10_test.cpp.o" "gcc" "tests/CMakeFiles/replication_tests.dir/theorem10_test.cpp.o.d"
  "/root/repo/tests/tm_test.cpp" "tests/CMakeFiles/replication_tests.dir/tm_test.cpp.o" "gcc" "tests/CMakeFiles/replication_tests.dir/tm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/replication/CMakeFiles/qcnt_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/qcnt_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/ioa/CMakeFiles/qcnt_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/qcnt_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qcnt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
