file(REMOVE_RECURSE
  "CMakeFiles/reconfig_tests.dir/reconfig_test.cpp.o"
  "CMakeFiles/reconfig_tests.dir/reconfig_test.cpp.o.d"
  "reconfig_tests"
  "reconfig_tests.pdb"
  "reconfig_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
