# Empty compiler generated dependencies file for reconfig_tests.
# This may be replaced when dependencies are built.
