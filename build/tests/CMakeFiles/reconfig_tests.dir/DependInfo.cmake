
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/reconfig_test.cpp" "tests/CMakeFiles/reconfig_tests.dir/reconfig_test.cpp.o" "gcc" "tests/CMakeFiles/reconfig_tests.dir/reconfig_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/replication/CMakeFiles/qcnt_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/qcnt_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/ioa/CMakeFiles/qcnt_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/qcnt_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qcnt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/reconfig/CMakeFiles/qcnt_reconfig.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
