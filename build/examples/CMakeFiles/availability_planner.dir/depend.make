# Empty dependencies file for availability_planner.
# This may be replaced when dependencies are built.
