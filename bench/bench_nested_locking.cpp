// E10 — Theorem 11 in motion: Quorum Consensus over Moss nested 2PL.
//
// Concurrent executions of system C (concurrent scheduler + locked copies +
// the Section-3 TM automata) across contention levels and abort pressure.
// Reports commit/rollback statistics and confirms one-copy serializability
// on every run; microbenchmarks time exploration and the checker.
#include <benchmark/benchmark.h>

#include "cc/system_c.hpp"
#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "table.hpp"
#include "txn/scripted_transaction.hpp"

namespace {

using namespace qcnt;
using cc::BuildSystemC;
using cc::CheckOneCopySerializability;
using cc::CollectRunStats;
using cc::RunStats;

void PrintLockingTable() {
  bench::Banner(
      "E10: concurrent QC over nested 2PL — commit/rollback profile and "
      "one-copy checks");
  bench::Table table({"users", "TMs/user", "items", "abort-w", "runs",
                      "committed top", "rollbacks", "one-copy violations"});
  for (const auto& [users_count, tms, items] :
       std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
           {2, 2, 2}, {3, 2, 1}, {4, 3, 2}}) {
    for (double aw : {0.0, 0.1}) {
      std::size_t committed = 0, rollbacks = 0, violations = 0, runs = 0;
      for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(seed * 31337 + users_count * 7 + items);
        // Build spec and factory together so the factory's spec pointer
        // stays valid for the whole trial.
        replication::ReplicatedSpec spec;
        std::vector<ItemId> xs;
        for (std::size_t i = 0; i < items; ++i) {
          xs.push_back(spec.AddItem("x" + std::to_string(i), 3,
                                    quorum::Majority(3),
                                    Plain{std::int64_t{0}}));
        }
        std::vector<TxnId> top;
        std::vector<std::vector<TxnId>> scripts;
        std::int64_t next = 1;
        for (std::size_t u = 0; u < users_count; ++u) {
          const TxnId txn =
              spec.AddTransaction(kRootTxn, "U" + std::to_string(u));
          top.push_back(txn);
          std::vector<TxnId> script;
          for (std::size_t k = 0; k < tms; ++k) {
            const ItemId x = xs[rng.Index(xs.size())];
            if (rng.Chance(0.5)) {
              script.push_back(spec.AddReadTm(txn, x));
            } else {
              script.push_back(spec.AddWriteTm(txn, x, Plain{next++}));
            }
          }
          scripts.push_back(std::move(script));
        }
        spec.Finalize(2);
        replication::UserAutomataFactory users_factory =
            [&spec, &top, &scripts](ioa::System& sys) {
              txn::ScriptedTransaction::Options root_opts;
              root_opts.sequential = false;
              sys.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                                    top, root_opts);
              for (std::size_t i = 0; i < top.size(); ++i) {
                sys.Emplace<txn::ScriptedTransaction>(spec.Type(), top[i],
                                                      scripts[i]);
              }
            };
        ioa::System sys = BuildSystemC(spec, users_factory);
        ioa::ExploreOptions opts;
        opts.max_steps = 20000;
        opts.weight = [aw](const ioa::Action& a) {
          return a.kind == ioa::ActionKind::kAbort ? aw : 1.0;
        };
        const ioa::ExploreResult r = ioa::Explore(sys, rng, opts);
        if (!r.quiescent) continue;
        ++runs;
        const RunStats stats = CollectRunStats(spec, r.schedule);
        committed += stats.committed_top_level;
        rollbacks += stats.aborted_created_txns;
        if (!CheckOneCopySerializability(spec, r.schedule).ok) ++violations;
      }
      table.AddRow({std::to_string(users_count), std::to_string(tms),
                    std::to_string(items), bench::Table::Num(aw, 2),
                    std::to_string(runs), std::to_string(committed),
                    std::to_string(rollbacks), std::to_string(violations)});
    }
  }
  table.Print();
  std::cout << "\nShape checks: at abort-weight 0 conflicting writers "
               "deadlock (2PL over quorums makes\nwriter/writer conflicts "
               "certain), so commits fall as contention rises; with aborts "
               "as a\ndeadlock resolver most rollbacks are retries of "
               "created subtrees. Either way the\none-copy violation count "
               "stays zero — Theorem 11.\n";
}

void BM_ConcurrentExploration(benchmark::State& state) {
  replication::ReplicatedSpec spec;
  const ItemId x =
      spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{0}});
  const TxnId u1 = spec.AddTransaction(kRootTxn, "U1");
  const TxnId u2 = spec.AddTransaction(kRootTxn, "U2");
  const TxnId w1 = spec.AddWriteTm(u1, x, Plain{std::int64_t{1}});
  const TxnId r2 = spec.AddReadTm(u2, x);
  spec.Finalize(2);
  replication::UserAutomataFactory users = [&](ioa::System& sys) {
    txn::ScriptedTransaction::Options root_opts;
    root_opts.sequential = false;
    sys.Emplace<txn::ScriptedTransaction>(
        spec.Type(), kRootTxn, std::vector<TxnId>{u1, u2}, root_opts);
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u1,
                                          std::vector<TxnId>{w1});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u2,
                                          std::vector<TxnId>{r2});
  };
  ioa::System sys = BuildSystemC(spec, users);
  std::uint64_t seed = 0;
  std::size_t actions = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    ioa::ExploreOptions opts;
    opts.weight = [](const ioa::Action& a) {
      return a.kind == ioa::ActionKind::kAbort ? 0.05 : 1.0;
    };
    const ioa::ExploreResult r = ioa::Explore(sys, rng, opts);
    actions += r.schedule.size();
  }
  state.counters["actions/s"] = benchmark::Counter(
      static_cast<double>(actions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConcurrentExploration);

}  // namespace

int main(int argc, char** argv) {
  PrintLockingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
