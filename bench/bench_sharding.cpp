// E16 — sharded replica execution under multi-client pipelined load.
//
// One replica (quorum {0}) so every operation lands on the same server,
// making replica-side parallelism the only variable; 3 client threads each
// drive an AsyncQuorumClient pipeline at the store, and the replica's
// shard count sweeps {1, 2, 4, 8}. shards=1 runs the pre-sharding
// architecture (a single worker draining the bus mailbox, no dispatch
// stage) and is the baseline; shards>1 adds the dispatch stage and per-key
// routing to a worker pool of min(shards, cores) threads (each worker
// owning a fixed subset of the shards).
//
// E16a is the in-memory backend. E16b is the durable backend under group
// commit with per-shard WAL segments (`wal_<s>.log`), run twice: once
// with the cross-shard GroupCommitCoordinator (one fsync decision per
// window across the whole shard set — the shipping configuration) and
// once with the pre-coordinator per-shard inline windows (the `pre_change`
// reference the fsyncs/op regression gate compares against).
//
// Alongside throughput and shard balance every row records the hot-path
// counters: fsyncs/op, dispatch→worker handoffs/op and wakeups/op (a whole
// routed burst should cross as one handoff per worker touched), bus-mailbox
// wakeups/op, the resolved worker-pool size (min(shards, cores) by
// default — shards pin the durable layout, workers adapt to the machine),
// and coordinator fsync passes. Each section uses its own RNG seed base so
// two sections can never report identical per-shard arrays by accident —
// the bench-artifact sanity check in CI rejects that.
//
// Speedup scales with physical cores: on a single-core host the sweep
// measures dispatch overhead rather than parallelism (shards>1 cannot
// exceed 1.0 there), so the JSON records hardware_concurrency to make the
// numbers interpretable. Results print as tables and are written as JSON
// (argv[1], default "BENCH_sharding.json") so CI can archive them.
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "runtime/store.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using runtime::AsyncQuorumClient;
using runtime::OpFuture;
using runtime::ReplicatedStore;
using runtime::StoreOptions;

constexpr std::size_t kClientThreads = 3;
constexpr std::size_t kOpsPerClient = 2000;
constexpr std::size_t kKeys = 256;
constexpr double kReadFraction = 0.2;
constexpr std::size_t kWindow = 32;
constexpr std::size_t kMaxBatch = 16;
constexpr std::size_t kTotalOps = kClientThreads * kOpsPerClient;

struct RunResult {
  double ops_per_sec = 0;
  std::uint64_t failures = 0;
  std::vector<std::uint64_t> shard_ops;    // applied ops per shard
  std::vector<std::uint64_t> shard_peaks;  // queue high-water per shard
  double balance = 1.0;                    // min/max shard ops
  std::uint64_t fsyncs = 0;                // all shard segments, total
  std::uint64_t commit_passes = 0;         // coordinator fsync decisions
  std::uint64_t worker_handoffs = 0;       // dispatch→worker Push/PushAll
  std::uint64_t worker_wakeups = 0;        // dispatch→worker cv notifies
  std::uint64_t mailbox_wakeups = 0;       // client→replica cv notifies
  std::size_t workers = 0;                 // resolved worker-pool size
};

RunResult Measure(StoreOptions options, std::size_t shards,
                  std::uint64_t seed_base) {
  options.replicas = 1;
  options.max_clients = kClientThreads;
  options.shards_per_replica = shards;
  ReplicatedStore store(std::move(options));

  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    auto client = store.MakeAsyncClient(
        AsyncQuorumClient::Options{.window = kWindow, .max_batch = kMaxBatch});
    threads.emplace_back([client = std::move(client), t, seed_base,
                          &failures] {
      // Per-section seed base: reusing one stream across sections made
      // every sweep replay the identical key sequence, so the per-shard
      // op arrays came out byte-identical between sections — which looked
      // exactly like the stale-counter bug this bench once had.
      qcnt::Rng rng(seed_base + t);
      std::vector<OpFuture> futures;
      futures.reserve(kOpsPerClient);
      for (std::size_t i = 0; i < kOpsPerClient; ++i) {
        const std::string key = "k" + std::to_string(rng.Index(kKeys));
        if (rng.Chance(kReadFraction)) {
          futures.push_back(client->SubmitRead(key));
        } else {
          futures.push_back(
              client->SubmitWrite(key, static_cast<std::int64_t>(i)));
        }
      }
      client->Drain();
      for (auto& f : futures) {
        if (!f.Get().ok) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  RunResult out;
  out.ops_per_sec = static_cast<double>(kTotalOps) / secs;
  out.failures = failures.load();
  const runtime::BatchStats stats = store.ReplicaBatchStats(0);
  std::uint64_t min_ops = ~0ull, max_ops = 0;
  for (const runtime::ShardCounters& c : stats.per_shard) {
    out.shard_ops.push_back(c.ops);
    out.shard_peaks.push_back(c.queue_peak);
    min_ops = std::min(min_ops, c.ops);
    max_ops = std::max(max_ops, c.ops);
  }
  out.worker_handoffs = stats.worker_handoffs;
  out.worker_wakeups = stats.worker_wakeups;
  out.workers = store.ReplicaWorkerCount(0);
  if (max_ops > 0) {
    out.balance = static_cast<double>(min_ops) / static_cast<double>(max_ops);
  }
  out.mailbox_wakeups = stats.mailbox_wakeups;
  out.fsyncs = store.ReplicaStorageStats(0).fsyncs;
  out.commit_passes = store.ReplicaCommitPasses(0);
  return out;
}

StoreOptions MemoryOptions(std::size_t) { return StoreOptions{}; }

// A fresh directory per sweep point: the MANIFEST pins a directory's shard
// count, so reopening one layout with a different count is (correctly)
// rejected.
StoreOptions DurableOptions(const std::string& root, std::size_t shards,
                            bool coordinate) {
  const std::string dir = root + "/" + (coordinate ? "c" : "i") +
                          std::to_string(shards);
  std::filesystem::create_directories(dir);
  StoreOptions options;
  options.durability = storage::DurabilityOptions{
      .directory = dir,
      .fsync = storage::FsyncPolicy::kGroupCommit,
      .group_commit_window = std::chrono::microseconds{200},
      .coordinate_group_commit = coordinate,
  };
  return options;
}

struct JsonRow {
  std::size_t shards;
  RunResult r;
  double speedup;
};

std::string ShardList(const std::vector<std::uint64_t>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += std::to_string(v[i]);
    if (i + 1 < v.size()) out += ", ";
  }
  return out + "]";
}

double PerOp(std::uint64_t count) {
  return static_cast<double>(count) / static_cast<double>(kTotalOps);
}

void EmitRows(std::ofstream& os, const std::vector<JsonRow>& rows) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& row = rows[i];
    os << "    {\"shards\": " << row.shards
       << ", \"ops_per_sec\": " << bench::Table::Num(row.r.ops_per_sec, 0)
       << ", \"speedup_vs_1_shard\": " << bench::Table::Num(row.speedup, 2)
       << ", \"shard_balance\": " << bench::Table::Num(row.r.balance, 2)
       << ", \"shard_ops\": " << ShardList(row.r.shard_ops)
       << ", \"fsyncs\": " << row.r.fsyncs
       << ", \"fsyncs_per_op\": " << bench::Table::Num(PerOp(row.r.fsyncs), 4)
       << ", \"commit_passes\": " << row.r.commit_passes
       << ", \"workers\": " << row.r.workers
       << ", \"worker_handoffs_per_op\": "
       << bench::Table::Num(PerOp(row.r.worker_handoffs), 4)
       << ", \"worker_wakeups_per_op\": "
       << bench::Table::Num(PerOp(row.r.worker_wakeups), 4)
       << ", \"mailbox_wakeups_per_op\": "
       << bench::Table::Num(PerOp(row.r.mailbox_wakeups), 4)
       << ", \"failures\": " << row.r.failures << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
}

void WriteJson(const std::string& path, const std::vector<JsonRow>& memory,
               const std::vector<JsonRow>& durable,
               const std::vector<JsonRow>& pre_change) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"experiment\": \"E16\",\n"
     << "  \"replicas\": 1,\n"
     << "  \"client_threads\": " << kClientThreads << ",\n"
     << "  \"ops_per_client\": " << kOpsPerClient << ",\n"
     << "  \"keys\": " << kKeys << ",\n"
     << "  \"read_fraction\": " << kReadFraction << ",\n"
     << "  \"pipeline_window\": " << kWindow << ",\n"
     << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ",\n"
     << "  \"memory_backend\": [\n";
  EmitRows(os, memory);
  os << "  ],\n"
     << "  \"durable_group_commit\": [\n";
  EmitRows(os, durable);
  os << "  ],\n"
     << "  \"pre_change_inline_group_commit\": [\n";
  EmitRows(os, pre_change);
  os << "  ]\n}\n";
}

std::vector<JsonRow> RunSection(
    const std::string& title, std::uint64_t seed_base,
    const std::function<StoreOptions(std::size_t)>& make) {
  bench::Banner(title);
  bench::Table table({"shards", "workers", "ops/s", "speedup vs 1",
                      "balance", "fsyncs/op", "handoffs/op", "wakeups/op",
                      "failures"});
  std::vector<JsonRow> rows;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    const RunResult r = Measure(make(shards), shards, seed_base);
    const double base = rows.empty() ? r.ops_per_sec : rows[0].r.ops_per_sec;
    rows.push_back({shards, r, r.ops_per_sec / base});
  }
  for (const JsonRow& row : rows) {
    table.AddRow({std::to_string(row.shards),
                  std::to_string(row.r.workers),
                  bench::Table::Num(row.r.ops_per_sec, 0),
                  bench::Table::Num(row.speedup, 2),
                  bench::Table::Num(row.r.balance, 2),
                  bench::Table::Num(PerOp(row.r.fsyncs), 4),
                  bench::Table::Num(PerOp(row.r.worker_handoffs), 4),
                  bench::Table::Num(PerOp(row.r.worker_wakeups), 4),
                  std::to_string(row.r.failures)});
  }
  table.Print();
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_sharding.json";

  const std::vector<JsonRow> memory = RunSection(
      "E16a: sharded replica, in-memory backend, 1 replica, 3 pipelined "
      "clients, 256 keys, 20% reads",
      1000, MemoryOptions);

  const std::string scratch = "bench_sharding_scratch";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);
  const std::vector<JsonRow> durable = RunSection(
      "E16b: durable, per-shard WAL segments, cross-shard coordinated "
      "group commit (one fsync decision per window per replica)",
      5000,
      [&scratch](std::size_t shards) {
        return DurableOptions(scratch, shards, true);
      });
  const std::vector<JsonRow> pre_change = RunSection(
      "E16b reference: durable, pre-change per-shard inline group-commit "
      "windows (independent fsync stream per shard)",
      9000,
      [&scratch](std::size_t shards) {
        return DurableOptions(scratch, shards, false);
      });
  std::filesystem::remove_all(scratch);

  WriteJson(json_path, memory, durable, pre_change);
  std::cout << "\nShape checks: shard balance stays near 1.0 (FNV-1a spreads "
               "256 keys evenly);\nshards=1 is the dispatch-free baseline; "
               "handoffs/op well below 1 means whole\nbursts cross the "
               "dispatch→worker boundary together. Coordinated group commit\n"
               "should hold fsyncs/op roughly flat as shards grow, where the "
               "pre-change inline\nwindows multiply it. Speedup at shards>1 "
               "tracks physical cores (hardware_\nconcurrency = "
            << std::thread::hardware_concurrency()
            << " on this host): the worker pool is capped at the core count,"
               "\nso high shard counts add WAL segments, not thread thrash."
               "\nJSON: "
            << json_path << "\n";
  return 0;
}
