// E16 — sharded replica execution under multi-client pipelined load.
//
// One replica (quorum {0}) so every operation lands on the same server,
// making replica-side parallelism the only variable; 3 client threads each
// drive an AsyncQuorumClient pipeline at the store, and the replica's
// shard count sweeps {1, 2, 4, 8}. shards=1 runs the pre-sharding
// architecture (a single worker draining the bus mailbox, no dispatch
// stage) and is the baseline; shards>1 adds the dispatch stage and per-key
// routing to worker shards.
//
// Section 1 is the in-memory backend; Section 2 the durable backend under
// group commit, where each shard owns a WAL segment (`wal_<s>.log`) and
// fsyncs independently. Shard balance (per-shard applied ops, from the
// Peek counters) is reported alongside throughput: FNV-1a should spread
// 256 keys to within a few percent of uniform.
//
// Speedup scales with physical cores: on a single-core host the sweep
// measures dispatch overhead rather than parallelism (shards>1 cannot
// exceed 1.0 there), so the JSON records hardware_concurrency to make the
// numbers interpretable. Results print as tables and are written as JSON
// (argv[1], default "BENCH_sharding.json") so CI can archive them.
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "runtime/store.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using runtime::AsyncQuorumClient;
using runtime::OpFuture;
using runtime::ReplicatedStore;
using runtime::StoreOptions;

constexpr std::size_t kClientThreads = 3;
constexpr std::size_t kOpsPerClient = 2000;
constexpr std::size_t kKeys = 256;
constexpr double kReadFraction = 0.2;
constexpr std::size_t kWindow = 32;
constexpr std::size_t kMaxBatch = 16;

struct RunResult {
  double ops_per_sec = 0;
  std::uint64_t failures = 0;
  std::vector<std::uint64_t> shard_ops;    // applied ops per shard
  std::vector<std::uint64_t> shard_peaks;  // queue high-water per shard
  double balance = 1.0;                    // min/max shard ops
};

RunResult Measure(StoreOptions options, std::size_t shards) {
  options.replicas = 1;
  options.max_clients = kClientThreads;
  options.shards_per_replica = shards;
  ReplicatedStore store(std::move(options));

  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    auto client = store.MakeAsyncClient(
        AsyncQuorumClient::Options{.window = kWindow, .max_batch = kMaxBatch});
    threads.emplace_back([client = std::move(client), t, &failures] {
      qcnt::Rng rng(1000 + t);
      std::vector<OpFuture> futures;
      futures.reserve(kOpsPerClient);
      for (std::size_t i = 0; i < kOpsPerClient; ++i) {
        const std::string key = "k" + std::to_string(rng.Index(kKeys));
        if (rng.Chance(kReadFraction)) {
          futures.push_back(client->SubmitRead(key));
        } else {
          futures.push_back(
              client->SubmitWrite(key, static_cast<std::int64_t>(i)));
        }
      }
      client->Drain();
      for (auto& f : futures) {
        if (!f.Get().ok) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  RunResult out;
  out.ops_per_sec =
      static_cast<double>(kClientThreads * kOpsPerClient) / secs;
  out.failures = failures.load();
  const runtime::BatchStats stats = store.ReplicaBatchStats(0);
  std::uint64_t min_ops = ~0ull, max_ops = 0;
  for (const runtime::ShardCounters& c : stats.per_shard) {
    out.shard_ops.push_back(c.ops);
    out.shard_peaks.push_back(c.queue_peak);
    min_ops = std::min(min_ops, c.ops);
    max_ops = std::max(max_ops, c.ops);
  }
  if (max_ops > 0) {
    out.balance = static_cast<double>(min_ops) / static_cast<double>(max_ops);
  }
  return out;
}

StoreOptions MemoryOptions(std::size_t) { return StoreOptions{}; }

// A fresh directory per sweep point: the MANIFEST pins a directory's shard
// count, so reopening one layout with a different count is (correctly)
// rejected.
StoreOptions DurableOptions(const std::string& root, std::size_t shards) {
  const std::string dir = root + "/s" + std::to_string(shards);
  std::filesystem::create_directories(dir);
  StoreOptions options;
  options.durability = storage::DurabilityOptions{
      .directory = dir,
      .fsync = storage::FsyncPolicy::kGroupCommit,
      .group_commit_window = std::chrono::microseconds{200},
  };
  return options;
}

struct JsonRow {
  std::size_t shards;
  RunResult r;
  double speedup;
};

std::string ShardList(const std::vector<std::uint64_t>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += std::to_string(v[i]);
    if (i + 1 < v.size()) out += ", ";
  }
  return out + "]";
}

void WriteJson(const std::string& path, const std::vector<JsonRow>& memory,
               const std::vector<JsonRow>& durable) {
  std::ofstream os(path);
  auto emit = [&os](const std::vector<JsonRow>& rows) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const JsonRow& row = rows[i];
      os << "    {\"shards\": " << row.shards
         << ", \"ops_per_sec\": " << bench::Table::Num(row.r.ops_per_sec, 0)
         << ", \"speedup_vs_1_shard\": " << bench::Table::Num(row.speedup, 2)
         << ", \"shard_balance\": " << bench::Table::Num(row.r.balance, 2)
         << ", \"shard_ops\": " << ShardList(row.r.shard_ops)
         << ", \"failures\": " << row.r.failures << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
  };
  os << "{\n"
     << "  \"experiment\": \"E16\",\n"
     << "  \"replicas\": 1,\n"
     << "  \"client_threads\": " << kClientThreads << ",\n"
     << "  \"ops_per_client\": " << kOpsPerClient << ",\n"
     << "  \"keys\": " << kKeys << ",\n"
     << "  \"read_fraction\": " << kReadFraction << ",\n"
     << "  \"pipeline_window\": " << kWindow << ",\n"
     << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ",\n"
     << "  \"memory_backend\": [\n";
  emit(memory);
  os << "  ],\n"
     << "  \"durable_group_commit\": [\n";
  emit(durable);
  os << "  ]\n}\n";
}

std::vector<JsonRow> RunSection(
    const std::string& title,
    const std::function<StoreOptions(std::size_t)>& make) {
  bench::Banner(title);
  bench::Table table(
      {"shards", "ops/s", "speedup vs 1", "balance (min/max)", "failures"});
  std::vector<JsonRow> rows;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    const RunResult r = Measure(make(shards), shards);
    const double base = rows.empty() ? r.ops_per_sec : rows[0].r.ops_per_sec;
    rows.push_back({shards, r, r.ops_per_sec / base});
  }
  for (const JsonRow& row : rows) {
    table.AddRow({std::to_string(row.shards),
                  bench::Table::Num(row.r.ops_per_sec, 0),
                  bench::Table::Num(row.speedup, 2),
                  bench::Table::Num(row.r.balance, 2),
                  std::to_string(row.r.failures)});
  }
  table.Print();
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_sharding.json";

  const std::vector<JsonRow> memory = RunSection(
      "E16a: sharded replica, in-memory backend, 1 replica, 3 pipelined "
      "clients, 256 keys, 20% reads",
      MemoryOptions);

  const std::string scratch = "bench_sharding_scratch";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);
  const std::vector<JsonRow> durable = RunSection(
      "E16b: sharded replica, durable backend (group commit, per-shard WAL "
      "segments)",
      [&scratch](std::size_t shards) {
        return DurableOptions(scratch, shards);
      });
  std::filesystem::remove_all(scratch);

  WriteJson(json_path, memory, durable);
  std::cout << "\nShape checks: shard balance stays near 1.0 (FNV-1a spreads "
               "256 keys evenly);\nshards=1 is the dispatch-free baseline. "
               "Speedup at shards>1 tracks physical\ncores (hardware_"
               "concurrency = "
            << std::thread::hardware_concurrency()
            << " on this host): with one core the sweep\nmeasures dispatch "
               "overhead, with N cores the shard workers and the per-shard\n"
               "WAL segments in E16b commit in parallel.\nJSON: "
            << json_path << "\n";
  return 0;
}
