// E21 — quorum strategy selection under workload, and the cost of
// switching strategies live.
//
// Section 1 (read_heavy): the same 95%-read workload driven at the same
// 5-replica store under three strategies — majority (the old hardcoded
// default), ROWA, and a read-dominant weighted system (R=2, W=4). With
// minimal-quorum targeting a majority read costs 3+3 messages while a
// ROWA read costs 1+1, so the read-optimized strategies must beat
// majority on read throughput; the CI gate (tools/
// check_bench_strategies.py) enforces exactly that, plus the measured
// messages/op ordering.
//
// Section 2 (switch_under_traffic): client threads drive a mixed
// workload while the coordinator flips the strategy between majority and
// ROWA every ~150 ms via the §4 reconfiguration path (the same machinery
// the StrategyAdvisor uses). Throughput is sampled in 100 ms windows for
// a steady phase (no switches) and a switching phase; the gate requires
// the during-switch median to hold at least half the steady median —
// live strategy switches must be a blip, not an outage.
//
// Results print as tables and are written as JSON (argv[1], default
// "BENCH_strategies.json") so CI can archive and gate them.
#include <atomic>
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "runtime/store.hpp"
#include "runtime/strategy_advisor.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using namespace std::chrono_literals;
using runtime::AsyncQuorumClient;
using runtime::OpFuture;
using runtime::ReplicatedStore;
using runtime::StoreOptions;
using runtime::StrategyAdvisor;
using runtime::StrategyAdvisorOptions;

constexpr std::size_t kReplicas = 5;
constexpr std::size_t kClientThreads = 3;
constexpr std::size_t kOpsPerClient = 4000;
constexpr std::size_t kKeys = 128;
constexpr double kReadFraction = 0.95;

struct StrategyRow {
  std::string spec;
  double ops_per_sec = 0;
  double messages_per_op = 0;
  std::uint64_t failures = 0;
  double speedup = 1.0;  // vs the majority row
};

StrategyRow MeasureReadHeavy(const std::string& spec, std::uint64_t seed) {
  StoreOptions options;
  options.replicas = kReplicas;
  options.max_clients = kClientThreads + 1;  // +1: the seeding client
  options.strategy = spec;
  ReplicatedStore store(std::move(options));

  // Seed every key so reads always resolve.
  {
    auto seeder = store.MakeClient();
    for (std::size_t k = 0; k < kKeys; ++k) {
      seeder->Write("k" + std::to_string(k), 1);
    }
  }

  std::atomic<std::uint64_t> failures{0};
  const std::uint64_t msgs_before = store.MessagesSent();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = store.MakeAsyncClient(
          AsyncQuorumClient::Options{.window = 32, .max_batch = 16});
      Rng rng(seed + t);
      std::vector<OpFuture> futures;
      futures.reserve(kOpsPerClient);
      for (std::size_t i = 0; i < kOpsPerClient; ++i) {
        const std::string key =
            "k" + std::to_string(rng.Next() % kKeys);
        if (rng.NextDouble() < kReadFraction) {
          futures.push_back(client->SubmitRead(key));
        } else {
          futures.push_back(client->SubmitWrite(
              key, static_cast<std::int64_t>(i)));
        }
      }
      client->Drain();
      for (OpFuture& f : futures) {
        if (!f.Get().ok) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double total_ops =
      static_cast<double>(kClientThreads * kOpsPerClient);
  StrategyRow row;
  row.spec = spec;
  row.ops_per_sec = total_ops / secs;
  row.messages_per_op =
      static_cast<double>(store.MessagesSent() - msgs_before) / total_ops;
  row.failures = failures.load();
  return row;
}

struct SwitchResult {
  std::vector<std::uint64_t> steady_windows;
  std::vector<std::uint64_t> switch_windows;
  double steady_median_ops = 0;    // per second
  double switch_median_ops = 0;    // per second
  double ratio = 0;
  std::uint64_t switches = 0;
  std::uint64_t failures = 0;
};

double MedianPerSec(std::vector<std::uint64_t> windows,
                    std::chrono::milliseconds window) {
  if (windows.empty()) return 0;
  std::sort(windows.begin(), windows.end());
  const double mid =
      static_cast<double>(windows[windows.size() / 2]);
  return mid * (1000.0 / static_cast<double>(window.count()));
}

SwitchResult MeasureSwitchUnderTraffic() {
  constexpr auto kWindow = 100ms;
  constexpr auto kPhase = 1200ms;
  constexpr auto kSwitchEvery = 150ms;

  StoreOptions options;
  options.replicas = 3;
  options.max_clients = kClientThreads;
  options.strategy = "majority";
  ReplicatedStore store(std::move(options));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = store.MakeClient();
      Rng rng(900 + t);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string key =
            "k" + std::to_string(rng.Next() % kKeys);
        const bool ok = (rng.NextDouble() < 0.8)
                            ? client->Read(key).ok
                            : client->Write(key, static_cast<std::int64_t>(
                                                     ++i)).ok;
        completed.fetch_add(1, std::memory_order_relaxed);
        if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const auto sample_phase = [&](std::chrono::milliseconds duration) {
    std::vector<std::uint64_t> windows;
    const auto end = std::chrono::steady_clock::now() + duration;
    std::uint64_t last = completed.load();
    while (std::chrono::steady_clock::now() < end) {
      std::this_thread::sleep_for(kWindow);
      const std::uint64_t now_done = completed.load();
      windows.push_back(now_done - last);
      last = now_done;
    }
    return windows;
  };

  SwitchResult r;
  // Phase A: steady state under majority, no reconfiguration.
  r.steady_windows = sample_phase(kPhase);

  // Phase B: flip majority <-> ROWA through §4 reconfigurations while
  // the same traffic continues.
  StrategyAdvisor advisor(store, StrategyAdvisorOptions{});
  std::atomic<bool> switching{true};
  std::thread switcher([&] {
    bool to_rowa = true;
    while (switching.load()) {
      std::this_thread::sleep_for(kSwitchEvery);
      quorum::StrategyDescriptor d;
      d.kind = to_rowa ? quorum::StrategyKind::kReadOneWriteAll
                       : quorum::StrategyKind::kMajority;
      std::string error;
      if (advisor.SwitchTo(d, &error)) {
        ++r.switches;
        to_rowa = !to_rowa;
      }
    }
  });
  r.switch_windows = sample_phase(kPhase);
  switching.store(false);
  switcher.join();
  stop.store(true);
  for (std::thread& t : threads) t.join();

  r.steady_median_ops = MedianPerSec(r.steady_windows, kWindow);
  r.switch_median_ops = MedianPerSec(r.switch_windows, kWindow);
  r.ratio = r.steady_median_ops > 0
                ? r.switch_median_ops / r.steady_median_ops
                : 0;
  r.failures = failures.load();
  return r;
}

std::string WindowList(const std::vector<std::uint64_t>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += std::to_string(v[i]);
    if (i + 1 < v.size()) out += ", ";
  }
  return out + "]";
}

void WriteJson(const std::string& path,
               const std::vector<StrategyRow>& read_heavy,
               const SwitchResult& sw) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"experiment\": \"E21\",\n"
     << "  \"replicas\": " << kReplicas << ",\n"
     << "  \"client_threads\": " << kClientThreads << ",\n"
     << "  \"ops_per_client\": " << kOpsPerClient << ",\n"
     << "  \"read_fraction\": " << kReadFraction << ",\n"
     << "  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << ",\n"
     << "  \"read_heavy\": [\n";
  for (std::size_t i = 0; i < read_heavy.size(); ++i) {
    const StrategyRow& row = read_heavy[i];
    os << "    {\"strategy\": \"" << row.spec << "\""
       << ", \"ops_per_sec\": " << bench::Table::Num(row.ops_per_sec, 0)
       << ", \"messages_per_op\": "
       << bench::Table::Num(row.messages_per_op, 2)
       << ", \"speedup_vs_majority\": " << bench::Table::Num(row.speedup, 2)
       << ", \"failures\": " << row.failures << "}"
       << (i + 1 < read_heavy.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"switch_under_traffic\": {\n"
     << "    \"steady_median_ops_per_sec\": "
     << bench::Table::Num(sw.steady_median_ops, 0) << ",\n"
     << "    \"during_switch_median_ops_per_sec\": "
     << bench::Table::Num(sw.switch_median_ops, 0) << ",\n"
     << "    \"ratio\": " << bench::Table::Num(sw.ratio, 3) << ",\n"
     << "    \"switches\": " << sw.switches << ",\n"
     << "    \"failures\": " << sw.failures << ",\n"
     << "    \"steady_windows\": " << WindowList(sw.steady_windows) << ",\n"
     << "    \"switch_windows\": " << WindowList(sw.switch_windows) << "\n"
     << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_strategies.json";

  bench::Banner("E21a: 95%-read workload, 5 replicas, per strategy");
  const std::vector<std::string> specs = {
      "majority", "rowa", "weighted:1,1,1,1,1:2:4"};
  std::vector<StrategyRow> read_heavy;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    read_heavy.push_back(MeasureReadHeavy(specs[i], 7000 + 17 * i));
  }
  for (StrategyRow& row : read_heavy) {
    row.speedup = row.ops_per_sec / read_heavy[0].ops_per_sec;
  }
  bench::Table t1({"strategy", "ops/s", "msgs/op", "speedup vs majority",
                   "failures"});
  for (const StrategyRow& row : read_heavy) {
    t1.AddRow({row.spec, bench::Table::Num(row.ops_per_sec, 0),
               bench::Table::Num(row.messages_per_op, 2),
               bench::Table::Num(row.speedup, 2),
               std::to_string(row.failures)});
  }
  t1.Print();

  bench::Banner("E21b: live strategy switches under mixed traffic");
  const SwitchResult sw = MeasureSwitchUnderTraffic();
  bench::Table t2({"phase", "median ops/s", "windows"});
  t2.AddRow({"steady (majority)", bench::Table::Num(sw.steady_median_ops, 0),
             std::to_string(sw.steady_windows.size())});
  t2.AddRow({"switching every 150ms",
             bench::Table::Num(sw.switch_median_ops, 0),
             std::to_string(sw.switch_windows.size())});
  t2.Print();
  std::cout << "\nswitches installed: " << sw.switches
            << ", during/steady ratio: " << bench::Table::Num(sw.ratio, 3)
            << ", failures: " << sw.failures << "\n";

  WriteJson(json_path, read_heavy, sw);
  std::cout << "\nJSON written to " << json_path << "\n";
  return 0;
}
