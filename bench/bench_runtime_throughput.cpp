// E8 — throughput of the threaded runtime.
//
// Real threads, real mailboxes: clients issue a read/write mix against a
// ReplicatedStore under different quorum strategies. Reported as operations
// per second (google-benchmark drives the measurement); the table gives a
// one-shot overview across strategies and read fractions.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "runtime/store.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using runtime::ReplicatedStore;
using runtime::StoreOptions;

double MeasureOpsPerSec(const quorum::QuorumSystem& system,
                        double read_fraction, std::size_t client_threads,
                        std::size_t ops_per_client) {
  StoreOptions options;
  options.replicas = system.n;
  options.configs = {system};
  options.max_clients = client_threads;
  ReplicatedStore store(std::move(options));

  std::atomic<std::size_t> failures{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < client_threads; ++t) {
    auto client = store.MakeClient();
    threads.emplace_back([client = std::move(client), t, ops_per_client,
                          read_fraction, &failures] {
      qcnt::Rng rng(t * 7919 + 13);
      for (std::size_t i = 0; i < ops_per_client; ++i) {
        const std::string key = "k" + std::to_string(i % 8);
        const bool ok = rng.Chance(read_fraction)
                            ? client->Read(key).ok
                            : client->Write(key,
                                            static_cast<std::int64_t>(i))
                                  .ok;
        if (!ok) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double total =
      static_cast<double>(client_threads * ops_per_client);
  return failures.load() == 0 ? total / secs : 0.0;
}

double MeasureBatchedOpsPerSec(const quorum::QuorumSystem& system,
                               double read_fraction,
                               std::size_t client_threads,
                               std::size_t ops_per_client,
                               std::size_t window) {
  StoreOptions options;
  options.replicas = system.n;
  options.configs = {system};
  options.max_clients = client_threads;
  ReplicatedStore store(std::move(options));

  std::atomic<std::size_t> failures{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < client_threads; ++t) {
    auto client = store.MakeAsyncClient(
        runtime::AsyncQuorumClient::Options{.window = window,
                                            .max_batch = window});
    threads.emplace_back([client = std::move(client), t, ops_per_client,
                          read_fraction, &failures] {
      qcnt::Rng rng(t * 7919 + 13);
      std::vector<runtime::OpFuture> futures;
      futures.reserve(ops_per_client);
      for (std::size_t i = 0; i < ops_per_client; ++i) {
        // Distinct-key spread: ops on disjoint items may pipeline.
        const std::string key = "k" + std::to_string(i % 64);
        if (rng.Chance(read_fraction)) {
          futures.push_back(client->SubmitRead(key));
        } else {
          futures.push_back(
              client->SubmitWrite(key, static_cast<std::int64_t>(i)));
        }
      }
      client->Drain();
      for (auto& f : futures) {
        if (!f.Get().ok) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double total =
      static_cast<double>(client_threads * ops_per_client);
  return failures.load() == 0 ? total / secs : 0.0;
}

void PrintThroughput() {
  bench::Banner(
      "E8: threaded runtime throughput (ops/s), 5 replicas, 4 client "
      "threads, 8 keys");
  bench::Table table({"strategy", "reads=10%", "reads=50%", "reads=90%"});
  const std::size_t ops = 400;
  for (const quorum::QuorumSystem& s :
       {quorum::MajoritySystem(5), quorum::ReadOneWriteAllSystem(5),
        quorum::ReadAllWriteOneSystem(5)}) {
    std::vector<std::string> row{s.name};
    for (double f : {0.1, 0.5, 0.9}) {
      row.push_back(bench::Table::Num(MeasureOpsPerSec(s, f, 4, ops), 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::cout << "\nShape checks: throughput rises with the read fraction for "
               "every strategy (reads are\none-phase, writes two-phase). "
               "With every replica in-process the strategies' absolute\n"
               "ranking is noisy; the wide-area trade-off between them is "
               "measured in E7/E11 where\nlink latency dominates.\n";
}

void PrintBatchedThroughput() {
  bench::Banner(
      "E8b: batched pipeline vs sync client (ops/s), majority(5), 4 client "
      "threads, 64 keys");
  bench::Table table({"reads", "sync", "async depth=1", "async depth=16",
                      "speedup @16"});
  const std::size_t ops = 400;
  const quorum::QuorumSystem majority = quorum::MajoritySystem(5);
  for (double f : {0.1, 0.5, 0.9}) {
    const double sync = MeasureOpsPerSec(majority, f, 4, ops);
    const double d1 = MeasureBatchedOpsPerSec(majority, f, 4, ops, 1);
    const double d16 = MeasureBatchedOpsPerSec(majority, f, 4, ops, 16);
    table.AddRow({bench::Table::Num(f * 100, 0) + "%",
                  bench::Table::Num(sync, 0), bench::Table::Num(d1, 0),
                  bench::Table::Num(d16, 0),
                  bench::Table::Num(sync > 0 ? d16 / sync : 0, 2) + "x"});
  }
  table.Print();
  std::cout << "\nShape checks: depth 1 tracks the sync client (same "
               "round-trips per op); depth 16\npipelines disjoint-key ops "
               "and coalesces their phases into batch messages, so\n"
               "replicas serve many ops per mailbox wakeup. E15 "
               "(bench_batching) sweeps the\ndepth axis and the durable "
               "group-commit interaction.\n";
}

void BM_RuntimeReadMajority(benchmark::State& state) {
  StoreOptions options;
  options.replicas = 5;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  client->Write("k", 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client->Read("k").ok);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeReadMajority);

void BM_RuntimeWriteMajority(benchmark::State& state) {
  StoreOptions options;
  options.replicas = 5;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  std::int64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client->Write("k", ++v).ok);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeWriteMajority);

}  // namespace

int main(int argc, char** argv) {
  PrintThroughput();
  PrintBatchedThroughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
