// E8 — throughput of the threaded runtime.
//
// Real threads, real mailboxes: clients issue a read/write mix against a
// ReplicatedStore under different quorum strategies. Reported as operations
// per second (google-benchmark drives the measurement); the table gives a
// one-shot overview across strategies and read fractions.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "runtime/store.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using runtime::ReplicatedStore;
using runtime::StoreOptions;

double MeasureOpsPerSec(const quorum::QuorumSystem& system,
                        double read_fraction, std::size_t client_threads,
                        std::size_t ops_per_client) {
  StoreOptions options;
  options.replicas = system.n;
  options.configs = {system};
  options.max_clients = client_threads;
  ReplicatedStore store(std::move(options));

  std::atomic<std::size_t> failures{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < client_threads; ++t) {
    auto client = store.MakeClient();
    threads.emplace_back([client = std::move(client), t, ops_per_client,
                          read_fraction, &failures] {
      qcnt::Rng rng(t * 7919 + 13);
      for (std::size_t i = 0; i < ops_per_client; ++i) {
        const std::string key = "k" + std::to_string(i % 8);
        const bool ok = rng.Chance(read_fraction)
                            ? client->Read(key).ok
                            : client->Write(key,
                                            static_cast<std::int64_t>(i))
                                  .ok;
        if (!ok) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double total =
      static_cast<double>(client_threads * ops_per_client);
  return failures.load() == 0 ? total / secs : 0.0;
}

void PrintThroughput() {
  bench::Banner(
      "E8: threaded runtime throughput (ops/s), 5 replicas, 4 client "
      "threads, 8 keys");
  bench::Table table({"strategy", "reads=10%", "reads=50%", "reads=90%"});
  const std::size_t ops = 400;
  for (const quorum::QuorumSystem& s :
       {quorum::MajoritySystem(5), quorum::ReadOneWriteAllSystem(5),
        quorum::ReadAllWriteOneSystem(5)}) {
    std::vector<std::string> row{s.name};
    for (double f : {0.1, 0.5, 0.9}) {
      row.push_back(bench::Table::Num(MeasureOpsPerSec(s, f, 4, ops), 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::cout << "\nShape checks: throughput rises with the read fraction for "
               "every strategy (reads are\none-phase, writes two-phase). "
               "With every replica in-process the strategies' absolute\n"
               "ranking is noisy; the wide-area trade-off between them is "
               "measured in E7/E11 where\nlink latency dominates.\n";
}

void BM_RuntimeReadMajority(benchmark::State& state) {
  StoreOptions options;
  options.replicas = 5;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  client->Write("k", 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client->Read("k").ok);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeReadMajority);

void BM_RuntimeWriteMajority(benchmark::State& state) {
  StoreOptions options;
  options.replicas = 5;
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  std::int64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client->Write("k", ++v).ok);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeWriteMajority);

}  // namespace

int main(int argc, char** argv) {
  PrintThroughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
