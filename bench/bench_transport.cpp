// E18 — the cost of the wire: in-process Bus vs. loopback TCP.
//
// The same ReplicatedStore, the same quorum protocol, two substrates:
// direct mailbox pushes (Bus) vs. the full codec + non-blocking-socket +
// event-loop path (TcpTransport on 127.0.0.1). Two sections:
//
//   1. Sync latency — one blocking client, single-key read and write
//      round trips; reports mean and p99 microseconds per op. Every
//      quorum op is several messages (probe + install to every replica,
//      their responses), so the per-op delta is a few wire crossings.
//   2. Pipelined throughput — the async client with a deep window and
//      batching, ops/second. Batching amortizes framing as it amortizes
//      mailbox wakeups, so the relative gap narrows vs. section 1.
//
// The point of the experiment is honesty about deployment cost: the
// repo's other benchmarks measure protocol effects on the Bus; this one
// pins how much the real network multiplies the constant factor, on the
// same hardware, with zero protocol changes (the transport is swapped
// under an unchanged client/replica stack — the Transport abstraction is
// doing the work). Results print as tables and are written as JSON
// (argv[1], default "BENCH_transport.json") for CI archiving.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "runtime/store.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using runtime::AsyncQuorumClient;
using runtime::OpFuture;
using runtime::ReplicatedStore;
using runtime::StoreOptions;
using runtime::TcpStoreOptions;

constexpr std::size_t kReplicas = 5;
constexpr std::size_t kSyncOps = 2000;
constexpr std::size_t kAsyncOps = 20000;
constexpr std::size_t kWindow = 64;
constexpr std::size_t kKeys = 64;

StoreOptions Options(bool tcp) {
  StoreOptions o;
  o.replicas = kReplicas;
  if (tcp) o.tcp = TcpStoreOptions{};
  // Loopback is reliable but not instantaneous; retries keep scheduler
  // hiccups from aborting a latency sample.
  o.client_options.max_attempts = 3;
  o.async_client_options.max_attempts = 3;
  return o;
}

struct LatencyRow {
  std::string transport;
  std::string op;
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
};

double Percentile(std::vector<double>& v, double p) {
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(p * (v.size() - 1));
  return v[i];
}

/// Mean/p50/p99 of kSyncOps blocking round trips per op type.
std::vector<LatencyRow> SyncLatency(bool tcp) {
  ReplicatedStore store(Options(tcp));
  auto client = store.MakeClient();
  const char* name = tcp ? "tcp" : "bus";

  std::vector<double> write_us, read_us;
  for (std::size_t i = 0; i < kSyncOps; ++i) {
    const std::string key = "k" + std::to_string(i % kKeys);
    auto w = client->Write(key, static_cast<std::int64_t>(i));
    if (w.ok) write_us.push_back(static_cast<double>(w.latency.count()));
    auto r = client->Read(key);
    if (r.ok) read_us.push_back(static_cast<double>(r.latency.count()));
  }

  auto row = [&](const char* op, std::vector<double>& v) {
    LatencyRow r;
    r.transport = name;
    r.op = op;
    double sum = 0;
    for (double x : v) sum += x;
    r.mean_us = v.empty() ? 0 : sum / static_cast<double>(v.size());
    r.p50_us = Percentile(v, 0.50);
    r.p99_us = Percentile(v, 0.99);
    return r;
  };
  return {row("read", read_us), row("write", write_us)};
}

struct ThroughputRow {
  std::string transport;
  double ops_per_sec = 0;
  double wall_ms = 0;
  std::uint64_t frames = 0;  // wire frames (tcp only; 0 on the bus)
};

/// Pipelined mixed workload (50/50 read/write) through the async client.
ThroughputRow AsyncThroughput(bool tcp) {
  ReplicatedStore store(Options(tcp));
  AsyncQuorumClient::Options aopts = Options(tcp).async_client_options;
  aopts.window = kWindow;
  auto client = store.MakeAsyncClient(aopts);

  const auto start = std::chrono::steady_clock::now();
  std::vector<OpFuture> inflight;
  inflight.reserve(kAsyncOps);
  for (std::size_t i = 0; i < kAsyncOps; ++i) {
    const std::string key = "k" + std::to_string(i % kKeys);
    if (i % 2 == 0) {
      inflight.push_back(
          client->SubmitWrite(key, static_cast<std::int64_t>(i)));
    } else {
      inflight.push_back(client->SubmitRead(key));
    }
  }
  client->Flush();
  std::size_t ok = 0;
  for (auto& f : inflight) ok += f.Get().ok ? 1 : 0;
  const auto wall = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - start);

  ThroughputRow r;
  r.transport = tcp ? "tcp" : "bus";
  r.wall_ms = wall.count();
  r.ops_per_sec = static_cast<double>(ok) / (wall.count() / 1000.0);
  r.frames = store.WireStats().frames_sent;
  return r;
}

void WriteJson(const std::string& path, const std::vector<LatencyRow>& lat,
               const std::vector<ThroughputRow>& thr) {
  std::ofstream os(path);
  os << "{\n  \"experiment\": \"E18\",\n";
  os << "  \"replicas\": " << kReplicas << ",\n";
  os << "  \"sync_ops\": " << kSyncOps << ",\n";
  os << "  \"async_ops\": " << kAsyncOps << ",\n";
  os << "  \"async_window\": " << kWindow << ",\n";
  os << "  \"sync_latency_us\": [\n";
  for (std::size_t i = 0; i < lat.size(); ++i) {
    const LatencyRow& r = lat[i];
    os << "    {\"transport\": \"" << r.transport << "\", \"op\": \"" << r.op
       << "\", \"mean\": " << bench::Table::Num(r.mean_us, 1)
       << ", \"p50\": " << bench::Table::Num(r.p50_us, 1)
       << ", \"p99\": " << bench::Table::Num(r.p99_us, 1) << "}"
       << (i + 1 < lat.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"async_throughput\": [\n";
  for (std::size_t i = 0; i < thr.size(); ++i) {
    const ThroughputRow& r = thr[i];
    os << "    {\"transport\": \"" << r.transport
       << "\", \"ops_per_sec\": " << bench::Table::Num(r.ops_per_sec, 0)
       << ", \"wall_ms\": " << bench::Table::Num(r.wall_ms, 1)
       << ", \"wire_frames\": " << r.frames << "}"
       << (i + 1 < thr.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_transport.json";

  bench::Banner("E18.1 — sync quorum op latency: bus vs loopback TCP");
  std::vector<LatencyRow> lat;
  for (bool tcp : {false, true}) {
    auto rows = SyncLatency(tcp);
    lat.insert(lat.end(), rows.begin(), rows.end());
  }
  {
    bench::Table t({"transport", "op", "mean us", "p50 us", "p99 us"});
    for (const LatencyRow& r : lat) {
      t.AddRow({r.transport, r.op, bench::Table::Num(r.mean_us, 1),
                bench::Table::Num(r.p50_us, 1),
                bench::Table::Num(r.p99_us, 1)});
    }
    t.Print();
  }

  bench::Banner("E18.2 — pipelined async throughput: bus vs loopback TCP");
  std::vector<ThroughputRow> thr;
  for (bool tcp : {false, true}) thr.push_back(AsyncThroughput(tcp));
  {
    bench::Table t({"transport", "ops/s", "wall ms", "wire frames"});
    for (const ThroughputRow& r : thr) {
      t.AddRow({r.transport, bench::Table::Num(r.ops_per_sec, 0),
                bench::Table::Num(r.wall_ms, 1), std::to_string(r.frames)});
    }
    t.Print();
  }

  // Shape checks: every section produced data, and the TCP path really
  // used the wire (nonzero frames) while the bus did not.
  bool ok = lat.size() == 4 && thr.size() == 2;
  for (const LatencyRow& r : lat) ok = ok && r.mean_us > 0;
  for (const ThroughputRow& r : thr) ok = ok && r.ops_per_sec > 0;
  ok = ok && thr[0].frames == 0 && thr[1].frames > 0;

  WriteJson(json_path, lat, thr);
  std::cout << "\n" << (ok ? "OK" : "SHAPE CHECK FAILED") << "; wrote "
            << json_path << "\n";
  return ok ? 0 : 1;
}
