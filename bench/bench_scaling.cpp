// E13 — scalability of the automaton machinery.
//
// How the exploration engine and checkers scale with system size: replica
// count, number of TMs, and access-attempt materialization all grow the
// composed automaton; the table reports actions per execution and wall
// time per action, and google-benchmark tracks the per-configuration cost.
#include <benchmark/benchmark.h>

#include <chrono>

#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "replication/theorem10.hpp"
#include "table.hpp"
#include "txn/scripted_transaction.hpp"

namespace {

using namespace qcnt;
using replication::ReplicatedSpec;
using replication::UserAutomataFactory;

struct Scenario {
  ReplicaId replicas;
  std::size_t tms;
  std::size_t attempts;
};

struct Built {
  std::shared_ptr<ReplicatedSpec> spec;
  UserAutomataFactory users;
};

Built BuildScenario(const Scenario& sc) {
  auto spec = std::make_shared<ReplicatedSpec>();
  const ItemId x = spec->AddItem("x", sc.replicas,
                                 quorum::Majority(sc.replicas),
                                 Plain{std::int64_t{0}});
  const TxnId u = spec->AddTransaction(kRootTxn, "U");
  auto script = std::make_shared<std::vector<TxnId>>();
  for (std::size_t k = 0; k < sc.tms; ++k) {
    if (k % 2 == 0) {
      script->push_back(
          spec->AddWriteTm(u, x, Plain{static_cast<std::int64_t>(k + 1)}));
    } else {
      script->push_back(spec->AddReadTm(u, x));
    }
  }
  spec->Finalize(sc.attempts, 1);
  Built b;
  b.spec = spec;
  b.users = [spec, u, script](ioa::System& sys) {
    sys.Emplace<txn::ScriptedTransaction>(spec->Type(), kRootTxn,
                                          std::vector<TxnId>{u});
    sys.Emplace<txn::ScriptedTransaction>(spec->Type(), u, *script);
  };
  return b;
}

void PrintScaling() {
  bench::Banner("E13: exploration + Theorem-10 check scaling");
  bench::Table table({"replicas", "TMs", "attempts", "tree size", "actions",
                      "us/action", "check us"});
  for (const Scenario& sc : {Scenario{3, 2, 1}, Scenario{3, 6, 1},
                             Scenario{5, 6, 1}, Scenario{7, 6, 1},
                             Scenario{7, 6, 3}, Scenario{9, 10, 2}}) {
    const Built b = BuildScenario(sc);
    ioa::System sys = replication::BuildB(*b.spec, b.users);
    Rng rng(1);
    ioa::ExploreOptions opts;
    opts.weight = [](const ioa::Action& a) {
      return a.kind == ioa::ActionKind::kAbort ? 0.0 : 1.0;
    };
    const auto t0 = std::chrono::steady_clock::now();
    const ioa::ExploreResult r = ioa::Explore(sys, rng, opts);
    const auto t1 = std::chrono::steady_clock::now();
    const bool ok =
        replication::CheckTheorem10(*b.spec, b.users, r.schedule).ok;
    const auto t2 = std::chrono::steady_clock::now();

    const double explore_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    const double check_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count();
    table.AddRow({std::to_string(sc.replicas), std::to_string(sc.tms),
                  std::to_string(sc.attempts),
                  std::to_string(b.spec->Type().TxnCount()),
                  std::to_string(r.schedule.size()),
                  bench::Table::Num(
                      explore_us / static_cast<double>(r.schedule.size()), 2),
                  bench::Table::Num(check_us, 1) + (ok ? "" : " (VIOLATION)")});
  }
  table.Print();
  std::cout << "\nShape checks: per-action cost grows with the enabled-"
               "output fan-out (quadratic-ish in\ntree size for the naive "
               "enumerator), while the Theorem-10 replay stays linear in "
               "the\nschedule — checking is cheaper than executing.\n";
}

void BM_ExploreBySize(benchmark::State& state) {
  const Scenario sc{static_cast<ReplicaId>(state.range(0)), 4, 1};
  const Built b = BuildScenario(sc);
  ioa::System sys = replication::BuildB(*b.spec, b.users);
  std::uint64_t seed = 0;
  std::size_t actions = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    ioa::ExploreOptions opts;
    opts.weight = [](const ioa::Action& a) {
      return a.kind == ioa::ActionKind::kAbort ? 0.0 : 1.0;
    };
    actions += ioa::Explore(sys, rng, opts).schedule.size();
  }
  state.counters["actions/s"] = benchmark::Counter(
      static_cast<double>(actions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreBySize)->Arg(3)->Arg(5)->Arg(7);

}  // namespace

int main(int argc, char** argv) {
  PrintScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
