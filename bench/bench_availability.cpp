// E4 — availability vs per-replica up-probability.
//
// Quantifies the paper's motivating claim that replication "improves
// availability [and] reliability": exact read/write availability for each
// quorum strategy across replica counts and failure probabilities, plus a
// Monte-Carlo cross-check column. Microbenchmarks time the analyses.
#include <benchmark/benchmark.h>

#include "quorum/availability.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using quorum::Availability;
using quorum::ExactAvailability;
using quorum::MonteCarloAvailability;
using quorum::QuorumSystem;

std::vector<QuorumSystem> Strategies(ReplicaId n) {
  std::vector<QuorumSystem> out;
  out.push_back(quorum::PrimaryCopySystem(n));
  out.push_back(quorum::ReadOneWriteAllSystem(n));
  out.push_back(quorum::MajoritySystem(n));
  if (n == 4 || n == 6 || n == 9) {
    out.push_back(quorum::GridSystem(n == 9 ? 3 : 2, n == 4 ? 2 : 3));
  }
  if (n == 9) out.push_back(quorum::HierarchicalMajoritySystem(3, 2));
  return out;
}

void PrintAvailability() {
  bench::Banner("E4: read/write availability (exact), by strategy and n");
  for (ReplicaId n : {3, 5, 9}) {
    std::cout << "n = " << n << " replicas\n";
    bench::Table table({"strategy", "p=0.80 R/W", "p=0.90 R/W",
                        "p=0.95 R/W", "p=0.99 R/W"});
    for (const QuorumSystem& s : Strategies(n)) {
      std::vector<std::string> row{s.name};
      for (double p : {0.80, 0.90, 0.95, 0.99}) {
        const Availability a = ExactAvailability(s, p);
        row.push_back(bench::Table::Num(a.read, 4) + "/" +
                      bench::Table::Num(a.write, 4));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::cout << '\n';
  }

  // Structured strategies at n = 13 (a complete 3-ary tree of 2 levels of
  // children): tree-quorum reads survive root loss, writes do not.
  std::cout << "n = 13 replicas (structured strategies)\n";
  bench::Table structured({"strategy", "p=0.80 R/W", "p=0.90 R/W",
                           "p=0.95 R/W", "p=0.99 R/W"});
  for (const QuorumSystem& s :
       {quorum::MajoritySystem(13), quorum::TreeQuorumSystem(3, 3)}) {
    std::vector<std::string> row{s.name};
    for (double p : {0.80, 0.90, 0.95, 0.99}) {
      const Availability a = ExactAvailability(s, p);
      row.push_back(bench::Table::Num(a.read, 4) + "/" +
                    bench::Table::Num(a.write, 4));
    }
    structured.AddRow(std::move(row));
  }
  structured.Print();
  std::cout << '\n';

  bench::Banner("E4b: Monte-Carlo cross-check (n=5, p=0.9, 200k trials)");
  bench::Table mc({"strategy", "exact read", "MC read", "exact write",
                   "MC write"});
  Rng rng(2026);
  for (const QuorumSystem& s : Strategies(5)) {
    const Availability exact = ExactAvailability(s, 0.9);
    const Availability est = MonteCarloAvailability(s, 0.9, 200000, rng);
    mc.AddRow({s.name, bench::Table::Num(exact.read, 4),
               bench::Table::Num(est.read, 4),
               bench::Table::Num(exact.write, 4),
               bench::Table::Num(est.write, 4)});
  }
  mc.Print();

  std::cout << "\nShape checks (paper intro): majority read AND write "
               "availability beat a single copy;\nread-one/write-all "
               "maximizes read availability at the cost of write "
               "availability.\n";
}

void BM_ExactAvailabilityMajority(benchmark::State& state) {
  const QuorumSystem s =
      quorum::MajoritySystem(static_cast<ReplicaId>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactAvailability(s, 0.9).read);
  }
}
BENCHMARK(BM_ExactAvailabilityMajority)->Arg(5)->Arg(11)->Arg(17);

void BM_MonteCarloAvailability(benchmark::State& state) {
  const QuorumSystem s = quorum::MajoritySystem(21);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MonteCarloAvailability(s, 0.9, 1000, rng).read);
  }
}
BENCHMARK(BM_MonteCarloAvailability);

}  // namespace

int main(int argc, char** argv) {
  PrintAvailability();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
