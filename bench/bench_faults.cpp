// E17 — measured availability under message loss vs. the analytical curve.
//
// The fault injector drops each message independently with probability d,
// on the request and the response leg alike, so a replica contributes to a
// single-attempt quorum iff both legs survive: p_up = (1-d)². The
// availability analysis of E4 (src/quorum/availability.*) then predicts
// the single-attempt read success rate as ExactAvailability(majority(n),
// p_up).read — Section 1 sweeps drop rate × quorum size and checks the
// measured rate lands within 5 points of that prediction, closing the loop
// between the analytical model and the threaded runtime.
//
// Section 2 holds d = 0.2 and sweeps the retry budget: k attempts succeed
// with 1 - (1 - a)^k for per-attempt availability a, so a handful of
// retries with backoff restores near-full availability — the quantitative
// case for the client's retry layer.
//
// Ops are pipelined (window 32, max_batch 1 so every probe rides its own
// message and attempts stay independent); failed attempts overlap their
// timeouts instead of serializing them. Results print as tables and are
// written as JSON (argv[1], default "BENCH_faults.json") for CI archiving.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "quorum/availability.hpp"
#include "runtime/store.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using runtime::AsyncQuorumClient;
using runtime::FaultPlan;
using runtime::OpFuture;
using runtime::ReplicatedStore;
using runtime::StoreOptions;

constexpr std::size_t kOps = 800;
constexpr std::size_t kWindow = 32;
constexpr std::chrono::milliseconds kAttemptTimeout{15};
constexpr double kTolerance = 0.05;  // acceptance band vs. the model

/// Fraction of kOps single-key reads that resolved ok.
double MeasuredReadSuccess(std::size_t replicas, double drop,
                           std::size_t max_attempts, std::uint64_t seed) {
  StoreOptions options;
  options.replicas = replicas;
  FaultPlan plan;
  plan.drop = drop;
  plan.seed = seed;
  options.faults = plan;
  ReplicatedStore store(std::move(options));

  AsyncQuorumClient::Options copts;
  copts.timeout = kAttemptTimeout;
  copts.max_attempts = max_attempts;
  copts.backoff_base = std::chrono::milliseconds{1};
  copts.window = kWindow;
  copts.max_batch = 1;  // one probe per message: attempts stay independent
  auto client = store.MakeAsyncClient(copts);

  std::vector<OpFuture> futures;
  futures.reserve(kOps);
  for (std::size_t i = 0; i < kOps; ++i) {
    futures.push_back(client->SubmitRead("k" + std::to_string(i % 64)));
  }
  client->Drain();
  std::size_t ok = 0;
  for (OpFuture& f : futures) {
    if (f.Get().ok) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(kOps);
}

struct SweepRow {
  std::size_t n;
  double drop;
  double predicted;
  double measured;
  double error;  // measured - predicted
  bool within;
};

struct RetryRow {
  std::size_t attempts;
  double predicted;
  double measured;
};

void WriteJson(const std::string& path, const std::vector<SweepRow>& sweep,
               const std::vector<RetryRow>& retries, double retry_drop,
               bool all_within) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"experiment\": \"E17\",\n"
     << "  \"ops_per_cell\": " << kOps << ",\n"
     << "  \"attempt_timeout_ms\": " << kAttemptTimeout.count() << ",\n"
     << "  \"tolerance\": " << bench::Table::Num(kTolerance, 2) << ",\n"
     << "  \"all_within_tolerance\": " << (all_within ? "true" : "false")
     << ",\n"
     << "  \"availability_sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    os << "    {\"replicas\": " << r.n << ", \"drop\": "
       << bench::Table::Num(r.drop, 2)
       << ", \"predicted_read_availability\": "
       << bench::Table::Num(r.predicted, 4)
       << ", \"measured_read_success\": " << bench::Table::Num(r.measured, 4)
       << ", \"error\": " << bench::Table::Num(r.error, 4)
       << ", \"within_tolerance\": " << (r.within ? "true" : "false") << "}"
       << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"retry_restoration\": {\n"
     << "    \"drop\": " << bench::Table::Num(retry_drop, 2) << ",\n"
     << "    \"replicas\": 3,\n"
     << "    \"rows\": [\n";
  for (std::size_t i = 0; i < retries.size(); ++i) {
    const RetryRow& r = retries[i];
    os << "      {\"max_attempts\": " << r.attempts
       << ", \"predicted\": " << bench::Table::Num(r.predicted, 4)
       << ", \"measured\": " << bench::Table::Num(r.measured, 4) << "}"
       << (i + 1 < retries.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_faults.json";

  bench::Banner(
      "E17a: single-attempt read availability under message loss — measured "
      "vs. ExactAvailability(majority(n), (1-d)^2)");
  bench::Table sweep_table(
      {"replicas", "drop", "predicted", "measured", "error", "within 5pt"});
  std::vector<SweepRow> sweep;
  bool all_within = true;
  std::uint64_t seed = 0xe17;
  for (std::size_t n : {3u, 5u}) {
    for (double drop : {0.0, 0.1, 0.2, 0.3}) {
      const double p_up = (1.0 - drop) * (1.0 - drop);
      const double predicted =
          quorum::ExactAvailability(
              quorum::MajoritySystem(static_cast<ReplicaId>(n)), p_up)
              .read;
      const double measured = MeasuredReadSuccess(n, drop, 1, ++seed);
      SweepRow row{n, drop, predicted, measured, measured - predicted,
                   std::abs(measured - predicted) <= kTolerance};
      all_within = all_within && row.within;
      sweep.push_back(row);
      sweep_table.AddRow({std::to_string(n), bench::Table::Num(drop, 2),
                          bench::Table::Num(predicted, 3),
                          bench::Table::Num(measured, 3),
                          bench::Table::Num(row.error, 3),
                          row.within ? "yes" : "NO"});
    }
  }
  sweep_table.Print();

  constexpr double kRetryDrop = 0.2;
  const double attempt_avail =
      quorum::ExactAvailability(quorum::MajoritySystem(3),
                                (1.0 - kRetryDrop) * (1.0 - kRetryDrop))
          .read;
  bench::Banner(
      "E17b: retries restore availability at drop = 0.20 (3 replicas) — "
      "model 1-(1-a)^k");
  bench::Table retry_table({"max attempts", "predicted", "measured"});
  std::vector<RetryRow> retries;
  for (std::size_t attempts : {1u, 2u, 4u, 8u}) {
    const double predicted =
        1.0 - std::pow(1.0 - attempt_avail, static_cast<double>(attempts));
    const double measured =
        MeasuredReadSuccess(3, kRetryDrop, attempts, ++seed);
    retries.push_back({attempts, predicted, measured});
    retry_table.AddRow({std::to_string(attempts),
                        bench::Table::Num(predicted, 3),
                        bench::Table::Num(measured, 3)});
  }
  retry_table.Print();

  WriteJson(json_path, sweep, retries, kRetryDrop, all_within);
  std::cout << "\nShape checks: every sweep cell lands within 5 points of "
               "the analytical curve\n(all_within_tolerance = "
            << (all_within ? "true" : "false")
            << "); retry success tracks 1-(1-a)^k and approaches 1.0 by 8 "
               "attempts.\nJSON: "
            << json_path << "\n";
  return all_within ? 0 : 1;
}
