// E6 — tolerance of access aborts (the paper's second generalization).
//
// "An operation to access a logical data item can complete even if some of
// its accesses to DMs abort." We sweep the serial-scheduler abort weight on
// replica accesses and the number of spare access attempts materialized per
// (TM, DM) pair, and measure the fraction of logical reads that complete.
// With one attempt per DM a single unlucky abort on a quorum-critical DM
// can strand the TM; with spare attempts the TM simply re-invokes — exactly
// the behavior Gifford's original (abort-free) model cannot express.
#include <benchmark/benchmark.h>

#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "replication/theorem10.hpp"
#include "table.hpp"
#include "txn/scripted_transaction.hpp"

namespace {

using namespace qcnt;

struct Outcome {
  std::size_t runs = 0;
  std::size_t completed = 0;
  std::size_t aborts_seen = 0;
  std::size_t wrong_values = 0;
};

Outcome Measure(std::size_t attempts, double abort_weight,
                std::size_t trials) {
  replication::ReplicatedSpec spec;
  const ItemId x =
      spec.AddItem("x", 3, quorum::Majority(3), Plain{std::int64_t{77}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId rtm = spec.AddReadTm(u, x);
  spec.Finalize(attempts, attempts);
  replication::UserAutomataFactory users = [&](ioa::System& sys) {
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                          std::vector<TxnId>{u});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u,
                                          std::vector<TxnId>{rtm});
  };
  ioa::System sys = replication::BuildB(spec, users);

  Outcome out;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    Rng rng(seed * 2654435761ull + attempts * 97);
    ioa::ExploreOptions opts;
    opts.weight = [&spec, abort_weight](const ioa::Action& a) {
      if (a.kind != ioa::ActionKind::kAbort) return 1.0;
      return spec.IsReplicaAccess(a.txn) ? abort_weight : 0.0;
    };
    const ioa::ExploreResult r = ioa::Explore(sys, rng, opts);
    ++out.runs;
    for (const ioa::Action& a : r.schedule) {
      if (a.kind == ioa::ActionKind::kAbort) ++out.aborts_seen;
      if (a.kind == ioa::ActionKind::kRequestCommit && a.txn == rtm) {
        ++out.completed;
        if (!(a.value == Value{std::int64_t{77}})) ++out.wrong_values;
      }
    }
  }
  return out;
}

void PrintAbortTolerance() {
  bench::Banner(
      "E6: logical-read completion rate vs access-abort weight and spare "
      "attempts (3 DMs, majority)");
  bench::Table table({"attempts/DM", "abort-weight", "completed",
                      "access aborts", "wrong values"});
  for (std::size_t attempts : {1u, 2u, 3u}) {
    for (double w : {0.0, 0.3, 0.6, 1.0}) {
      const Outcome o = Measure(attempts, w, 120);
      table.AddRow({std::to_string(attempts), bench::Table::Num(w, 1),
                    std::to_string(o.completed) + "/" +
                        std::to_string(o.runs),
                    std::to_string(o.aborts_seen),
                    std::to_string(o.wrong_values)});
    }
  }
  table.Print();
  std::cout << "\nShape checks: completion degrades with abort pressure at "
               "1 attempt/DM but recovers\nwith spare attempts; completed "
               "reads are NEVER wrong (Lemma 8 under failures).\n";
}

void BM_AbortedRun(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const Outcome o = Measure(2, 0.5, 1 + (seed++ % 3));
    benchmark::DoNotOptimize(o.completed);
  }
}
BENCHMARK(BM_AbortedRun);

}  // namespace

int main(int argc, char** argv) {
  PrintAbortTolerance();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
