// E7 — operation latency under replication (simulated network).
//
// Clients run logical reads and writes against n replicas over a network
// with exponential-tail latency. Percentiles per strategy show the quorum
// trade-off in time rather than messages: a read-one quorum completes on
// the first response, a majority quorum waits for the k-th order statistic,
// write-all waits for the slowest replica.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "quorum/strategies.hpp"
#include "sim/store.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using sim::Deployment;
using sim::LatencyModel;
using sim::OpResult;

struct LatencyStats {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double success = 0.0;
};

LatencyStats Percentiles(std::vector<double>& v, std::size_t attempts) {
  LatencyStats s;
  s.success = static_cast<double>(v.size()) / static_cast<double>(attempts);
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  auto pct = [&v](double p) {
    const std::size_t i = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1));
    return v[i];
  };
  s.p50 = pct(0.50);
  s.p95 = pct(0.95);
  s.p99 = pct(0.99);
  return s;
}

std::pair<LatencyStats, LatencyStats> MeasureStrategy(
    const quorum::QuorumSystem& system, std::size_t ops,
    std::uint64_t seed) {
  Deployment d(system.n, 1, {system}, 0,
               LatencyModel::Exponential(/*mean=*/4.0, /*floor=*/1.0), 0.0,
               seed);
  std::vector<double> reads, writes;
  // Issue operations back-to-back: each completes (or times out) before
  // the next starts, so latencies are uncontended.
  std::function<void(std::size_t)> issue = [&](std::size_t remaining) {
    if (remaining == 0) return;
    if (remaining % 2 == 0) {
      d.clients[0]->Read([&, remaining](const OpResult& r) {
        if (r.ok) reads.push_back(r.latency);
        issue(remaining - 1);
      });
    } else {
      d.clients[0]->Write(static_cast<std::int64_t>(remaining),
                          [&, remaining](const OpResult& r) {
                            if (r.ok) writes.push_back(r.latency);
                            issue(remaining - 1);
                          });
    }
  };
  issue(ops);
  d.sim.Run();
  return {Percentiles(reads, ops / 2), Percentiles(writes, ops / 2)};
}

void PrintLatency() {
  bench::Banner(
      "E7: simulated latency percentiles (ms), exponential link latency "
      "(floor 1ms, mean 5ms), n=5 / n=9");
  bench::Table table({"n", "strategy", "read p50/p95/p99",
                      "write p50/p95/p99"});
  for (ReplicaId n : {5, 9}) {
    std::vector<quorum::QuorumSystem> strategies{
        quorum::ReadOneWriteAllSystem(n), quorum::MajoritySystem(n),
        quorum::ReadAllWriteOneSystem(n)};
    if (n == 9) strategies.push_back(quorum::GridSystem(3, 3));
    for (const auto& s : strategies) {
      const auto [r, w] = MeasureStrategy(s, 2000, 17 + n);
      table.AddRow(
          {std::to_string(n), s.name,
           bench::Table::Num(r.p50, 1) + "/" + bench::Table::Num(r.p95, 1) +
               "/" + bench::Table::Num(r.p99, 1),
           bench::Table::Num(w.p50, 1) + "/" + bench::Table::Num(w.p95, 1) +
               "/" + bench::Table::Num(w.p99, 1)});
    }
  }
  table.Print();
  std::cout << "\nShape checks: read-one/write-all has the fastest reads "
               "and slowest writes (waits for\nthe slowest replica); "
               "majority balances the two; larger n stretches the "
               "write-all tail.\n";
}

void BM_SimulatedOps(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto stats = MeasureStrategy(quorum::MajoritySystem(5), 200,
                                       seed++);
    benchmark::DoNotOptimize(stats.first.p50);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_SimulatedOps);

}  // namespace

int main(int argc, char** argv) {
  PrintLatency();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
