// E11 — strategy crossover over the read/write mix (ablation).
//
// Expected replicas contacted per logical operation as a function of the
// read fraction f: cost(f) = f·read_cost + (1−f)·write_cost. The table
// locates the crossover points between read-one/write-all, majority, and
// read-all/write-one, and repeats the analysis conditioned on a 5%
// per-replica failure probability (Monte-Carlo expected cost). A second
// table measures the same crossover in *simulated latency* rather than
// message counts.
#include <benchmark/benchmark.h>

#include "quorum/availability.hpp"
#include "sim/store.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using quorum::FullyUpCost;
using quorum::OperationCost;
using quorum::QuorumSystem;

double MixCost(const OperationCost& c, double read_fraction) {
  return read_fraction * c.read_messages +
         (1.0 - read_fraction) * c.write_messages;
}

void PrintMessageCrossover() {
  bench::Banner(
      "E11: expected messages per logical op vs read fraction (n = 5)");
  const std::vector<QuorumSystem> strategies{
      quorum::ReadOneWriteAllSystem(5), quorum::MajoritySystem(5),
      quorum::ReadAllWriteOneSystem(5)};
  std::vector<OperationCost> costs;
  for (const auto& s : strategies) costs.push_back(FullyUpCost(s));

  bench::Table table({"read fraction", strategies[0].name,
                      strategies[1].name, strategies[2].name, "winner"});
  for (double f = 0.0; f <= 1.0001; f += 0.1) {
    std::vector<std::string> row{bench::Table::Num(f, 1)};
    std::size_t best = 0;
    for (std::size_t i = 0; i < strategies.size(); ++i) {
      row.push_back(bench::Table::Num(MixCost(costs[i], f), 2));
      if (MixCost(costs[i], f) < MixCost(costs[best], f)) best = i;
    }
    row.push_back(strategies[best].name);
    table.AddRow(std::move(row));
  }
  table.Print();

  std::cout << "\nIn raw message count read-one/write-all dominates at "
               "every mix for n = 5: its version-\ndiscovery read quorum is "
               "a single replica, so even a pure-write load costs no more "
               "than\nmajority. The crossover the strategy choice is really "
               "about shows up in *latency*\n(table E11b): a write-all "
               "phase waits for the slowest replica.\n";
}

void PrintLatencyCrossover() {
  bench::Banner(
      "E11b: simulated mean latency (ms) per op vs read fraction (n = 5, "
      "exp. links)");
  const std::vector<QuorumSystem> strategies{
      quorum::ReadOneWriteAllSystem(5), quorum::MajoritySystem(5),
      quorum::ReadAllWriteOneSystem(5)};
  bench::Table table({"read fraction", strategies[0].name,
                      strategies[1].name, strategies[2].name, "winner"});
  for (double f : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::vector<std::string> row{bench::Table::Num(f, 1)};
    double best_latency = 1e300;
    std::size_t best = 0;
    for (std::size_t i = 0; i < strategies.size(); ++i) {
      sim::Deployment d(5, 1, {strategies[i]}, 0,
                        sim::LatencyModel::Exponential(4.0, 1.0), 0.0,
                        1234 + i);
      Rng mix(static_cast<std::uint64_t>(f * 1000) + i);
      double total = 0.0;
      std::size_t ok = 0;
      std::function<void(std::size_t)> issue = [&](std::size_t remaining) {
        if (remaining == 0) return;
        auto done = [&, remaining](const sim::OpResult& r) {
          if (r.ok) {
            total += r.latency;
            ++ok;
          }
          issue(remaining - 1);
        };
        if (mix.Chance(f)) {
          d.clients[0]->Read(done);
        } else {
          d.clients[0]->Write(static_cast<std::int64_t>(remaining), done);
        }
      };
      issue(1500);
      d.sim.Run();
      const double mean = ok ? total / static_cast<double>(ok) : 1e300;
      row.push_back(bench::Table::Num(mean, 2));
      if (mean < best_latency) {
        best_latency = mean;
        best = i;
      }
    }
    row.push_back(strategies[best].name);
    table.AddRow(std::move(row));
  }
  table.Print();
  std::cout << "\nShape checks: in latency the winner flips from majority "
               "(write-heavy mixes — it avoids\nwaiting on the slowest "
               "replica) to read-one/write-all (read-heavy mixes).\n";
}

void BM_MixCostEvaluation(benchmark::State& state) {
  const QuorumSystem s = quorum::MajoritySystem(25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FullyUpCost(s).write_messages);
  }
}
BENCHMARK(BM_MixCostEvaluation);

}  // namespace

int main(int argc, char** argv) {
  PrintMessageCrossover();
  PrintLatencyCrossover();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
