// E14 — the price of durability: write throughput across fsync policies.
//
// Same workload against four backends: in-memory (the seed's semantics),
// and the durable WAL backend under fsync=always / group-commit / never.
// The table also reports the storage counters so the fsync batching is
// visible (group-commit: fsyncs << records at nearly fsync=never speed).
#include <benchmark/benchmark.h>

#include <filesystem>

#include "runtime/store.hpp"
#include "table.hpp"

namespace {

namespace fs = std::filesystem;
using namespace qcnt;
using runtime::ReplicatedStore;
using runtime::StoreOptions;

constexpr const char* kScratch = "bench_durability_scratch";

StoreOptions Options(std::optional<storage::FsyncPolicy> policy,
                     const std::string& dir) {
  StoreOptions options;
  options.replicas = 3;
  if (policy) {
    storage::DurabilityOptions durability;
    durability.directory = dir;
    durability.fsync = *policy;
    durability.group_commit_window = std::chrono::microseconds(500);
    options.durability = durability;
  }
  return options;
}

struct Measurement {
  double writes_per_sec = 0;
  storage::StorageStats stats;
};

Measurement MeasureWrites(std::optional<storage::FsyncPolicy> policy,
                          std::size_t ops) {
  const std::string dir =
      std::string(kScratch) + "/" +
      (policy ? storage::ToString(*policy) : "memory");
  fs::remove_all(dir);
  Measurement m;
  {
    ReplicatedStore store(Options(policy, dir));
    auto client = store.MakeClient();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      const std::string key = "k" + std::to_string(i % 8);
      if (!client->Write(key, static_cast<std::int64_t>(i)).ok) return m;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    m.writes_per_sec = static_cast<double>(ops) / secs;
    m.stats = store.TotalStorageStats();
  }
  fs::remove_all(dir);
  return m;
}

void PrintDurabilityCost() {
  bench::Banner(
      "E14: durability cost — write throughput, 3 replicas, 1 client, "
      "8 keys");
  bench::Table table({"backend", "writes/s", "records", "fsyncs", "MiB",
                      "checkpoints"});
  const std::size_t ops = 400;
  const std::vector<
      std::pair<std::string, std::optional<storage::FsyncPolicy>>>
      rows = {{"memory (no durability)", std::nullopt},
              {"wal fsync=always", storage::FsyncPolicy::kAlways},
              {"wal fsync=group-commit", storage::FsyncPolicy::kGroupCommit},
              {"wal fsync=never", storage::FsyncPolicy::kNever}};
  for (const auto& [name, policy] : rows) {
    const Measurement m = MeasureWrites(policy, ops);
    table.AddRow({name, bench::Table::Num(m.writes_per_sec, 0),
                  std::to_string(m.stats.records_appended),
                  std::to_string(m.stats.fsyncs),
                  bench::Table::Num(static_cast<double>(
                                        m.stats.bytes_appended) /
                                        (1024.0 * 1024.0),
                                    2),
                  std::to_string(m.stats.checkpoints_written)});
  }
  table.Print();
  std::cout
      << "\nShape checks: memory >= never >= group-commit >= always in "
         "writes/s; group-commit\nissues far fewer fsyncs than records "
         "(one per batching window); fsync=never issues\nnone. The gap "
         "between always and never is the per-commit fsync cost the "
         "group-commit\nwindow amortizes.\n";
  fs::remove_all(kScratch);
}

void BM_DurableWriteAlways(benchmark::State& state) {
  const std::string dir = std::string(kScratch) + "/bm_always";
  fs::remove_all(dir);
  {
    ReplicatedStore store(Options(storage::FsyncPolicy::kAlways, dir));
    auto client = store.MakeClient();
    std::int64_t v = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(client->Write("k", ++v).ok);
    }
    state.SetItemsProcessed(state.iterations());
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_DurableWriteAlways);

void BM_DurableWriteGroupCommit(benchmark::State& state) {
  const std::string dir = std::string(kScratch) + "/bm_group";
  fs::remove_all(dir);
  {
    ReplicatedStore store(Options(storage::FsyncPolicy::kGroupCommit, dir));
    auto client = store.MakeClient();
    std::int64_t v = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(client->Write("k", ++v).ok);
    }
    state.SetItemsProcessed(state.iterations());
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_DurableWriteGroupCommit);

void BM_DurableWriteNever(benchmark::State& state) {
  const std::string dir = std::string(kScratch) + "/bm_never";
  fs::remove_all(dir);
  {
    ReplicatedStore store(Options(storage::FsyncPolicy::kNever, dir));
    auto client = store.MakeClient();
    std::int64_t v = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(client->Write("k", ++v).ok);
    }
    state.SetItemsProcessed(state.iterations());
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_DurableWriteNever);

}  // namespace

int main(int argc, char** argv) {
  PrintDurabilityCost();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  fs::remove_all(kScratch);
  return 0;
}
