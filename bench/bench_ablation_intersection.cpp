// E12 (ablation) — the quorum-intersection requirement is load-bearing.
//
// The paper's single structural hypothesis on configurations is that every
// read-quorum intersects every write-quorum. This ablation removes it:
// systems built with deliberately non-intersecting quorums (via the
// fault-injection hook AddItemUnchecked) are run under the same randomized
// explorer, with TMs confined to exact quorums, and the Theorem-10 /
// Lemma-8 violation rates are tabulated next to the legal baseline.
#include <benchmark/benchmark.h>

#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "replication/invariants.hpp"
#include "replication/theorem10.hpp"
#include "table.hpp"
#include "txn/scripted_transaction.hpp"

namespace {

using namespace qcnt;
using replication::ReplicatedSpec;
using replication::UserAutomataFactory;

struct AblationCase {
  const char* name;
  quorum::Configuration config;
  bool legal;
};

std::vector<AblationCase> Cases() {
  return {
      {"majority(3) [legal]", quorum::Majority(3), true},
      {"rowa(3) [legal]", quorum::ReadOneWriteAll(3), true},
      {"disjoint r{0}/w{1,2}",
       quorum::Configuration({{0}}, {{1, 2}}), false},
      {"half-overlap r{0,1}/w{{2},{0,2}}",
       quorum::Configuration({{0, 1}}, {{2}, {0, 2}}), false},
  };
}

struct AblationResult {
  std::size_t runs = 0;
  std::size_t theorem_violations = 0;
  std::size_t lemma_violations = 0;
};

AblationResult RunCase(const AblationCase& c, std::size_t trials) {
  ReplicatedSpec spec;
  const ItemId x = c.legal
                       ? spec.AddItem("x", 3, c.config, Plain{std::int64_t{0}})
                       : spec.AddItemUnchecked("x", 3, c.config,
                                               Plain{std::int64_t{0}});
  const TxnId u = spec.AddTransaction(kRootTxn, "U");
  const TxnId w = spec.AddWriteTm(u, x, Plain{std::int64_t{9}});
  const TxnId r = spec.AddReadTm(u, x);
  spec.Finalize();
  UserAutomataFactory users = [&](ioa::System& sys) {
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), kRootTxn,
                                          std::vector<TxnId>{u});
    sys.Emplace<txn::ScriptedTransaction>(spec.Type(), u,
                                          std::vector<TxnId>{w, r});
  };

  // Confine each TM to one exact quorum of its kind (first listed): the
  // efficient implementation the paper says heuristics would produce.
  const quorum::Quorum read_q = c.config.ReadQuorums().front();
  const quorum::Quorum write_q = c.config.WriteQuorums().front();
  auto in = [](const quorum::Quorum& q, ReplicaId rep) {
    return std::find(q.begin(), q.end(), rep) != q.end();
  };
  auto weight = [&](const ioa::Action& a) {
    if (a.kind == ioa::ActionKind::kAbort) return 0.0;
    if (a.kind == ioa::ActionKind::kRequestCreate &&
        spec.Type().IsAccess(a.txn)) {
      const ReplicaId rep = spec.ReplicaOf(spec.Type().ObjectOf(a.txn));
      const bool is_write =
          spec.Type().KindOf(a.txn) == txn::AccessKind::kWrite;
      if (spec.Type().Parent(a.txn) == r && !in(read_q, rep)) return 0.0;
      if (spec.Type().Parent(a.txn) == w) {
        if (is_write && !in(write_q, rep)) return 0.0;
        if (!is_write && !in(read_q, rep)) return 0.0;
      }
    }
    return 1.0;
  };

  AblationResult out;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    ioa::System b = replication::BuildB(spec, users);
    ioa::Schedule so_far;
    bool lemma_ok = true;
    Rng rng(seed * 7 + 1);
    ioa::ExploreOptions opts;
    opts.weight = weight;
    opts.observer = [&](const ioa::Action& a, const ioa::System& sys) {
      so_far.push_back(a);
      if (!lemma_ok) return;
      lemma_ok = replication::CheckLemmas(spec, sys, so_far).ok;
    };
    const ioa::ExploreResult res = ioa::Explore(b, rng, opts);
    if (!res.quiescent) continue;
    ++out.runs;
    if (!lemma_ok) ++out.lemma_violations;
    if (!replication::CheckTheorem10(spec, users, res.schedule).ok) {
      ++out.theorem_violations;
    }
  }
  return out;
}

void PrintAblation() {
  bench::Banner(
      "E12 (ablation): remove the read/write quorum intersection "
      "requirement");
  bench::Table table({"configuration", "legal", "runs", "Thm10 violations",
                      "Lemma 8 violations"});
  for (const AblationCase& c : Cases()) {
    const AblationResult r = RunCase(c, 40);
    table.AddRow({c.name, c.legal ? "yes" : "NO", std::to_string(r.runs),
                  std::to_string(r.theorem_violations),
                  std::to_string(r.lemma_violations)});
  }
  table.Print();
  std::cout << "\nShape checks: legal configurations never violate; "
               "removing intersection makes the\none-copy illusion fail in "
               "essentially every run — the hypothesis is necessary, not "
               "just\nsufficient.\n";
}

void BM_AblationRun(benchmark::State& state) {
  const AblationCase c = Cases()[0];
  std::size_t trials = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunCase(c, 1).runs);
    ++trials;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(trials));
}
BENCHMARK(BM_AblationRun);

}  // namespace

int main(int argc, char** argv) {
  PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
