// E15 — pipelined, batched quorum operations (async client vs sync client).
//
// Section 1: a single client drives a 5-replica in-memory store with a
// write-heavy mix, sequentially (QuorumClient) and pipelined at depths
// {1, 4, 16, 64} (AsyncQuorumClient). Pipelining ops on disjoint items is
// protocol-legal (DESIGN.md §7: Lemmas 7/8 only constrain per-item version
// order), so throughput scales with the depth until the replica threads
// saturate; the acceptance bar for this repo is >= 3x at depth 16.
//
// Section 2: the same comparison on the durable backend under group
// commit, where batching additionally amortizes fsyncs — a replica logs a
// whole kBatchWriteReq with one write(2) + one sync decision, so
// records-per-fsync rises with the pipeline depth.
//
// Results are printed as tables and written as JSON (argv[1], default
// "BENCH_batching.json") so CI can archive the numbers.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "runtime/store.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using runtime::AsyncQuorumClient;
using runtime::OpFuture;
using runtime::ReplicatedStore;
using runtime::StoreOptions;

constexpr std::size_t kReplicas = 5;
constexpr std::size_t kOps = 4000;
constexpr std::size_t kKeys = 128;
constexpr double kReadFraction = 0.2;

std::string KeyFor(qcnt::Rng& rng) {
  return "k" + std::to_string(rng.Index(kKeys));
}

struct RunResult {
  double ops_per_sec = 0;
  double avg_client_batch = 0;   // entries per batch message sent
  double records_per_fsync = 0;  // durable runs only
  std::uint64_t failures = 0;
};

RunResult MeasureSync(StoreOptions options) {
  const bool durable = options.durability.has_value();
  ReplicatedStore store(std::move(options));
  auto client = store.MakeClient();
  qcnt::Rng rng(42);
  RunResult out;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kOps; ++i) {
    const std::string key = KeyFor(rng);
    const bool ok = rng.Chance(kReadFraction)
                        ? client->Read(key).ok
                        : client->Write(key, static_cast<std::int64_t>(i)).ok;
    if (!ok) ++out.failures;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.ops_per_sec = static_cast<double>(kOps) / secs;
  out.avg_client_batch = 1.0;
  if (durable) {
    const storage::StorageStats st = store.TotalStorageStats();
    if (st.fsyncs > 0) {
      out.records_per_fsync = static_cast<double>(st.records_appended) /
                              static_cast<double>(st.fsyncs);
    }
  }
  return out;
}

RunResult MeasureAsync(StoreOptions options, std::size_t depth) {
  const bool durable = options.durability.has_value();
  ReplicatedStore store(std::move(options));
  auto client = store.MakeAsyncClient(AsyncQuorumClient::Options{
      .window = depth, .max_batch = std::max<std::size_t>(depth / 2, 1)});
  qcnt::Rng rng(42);
  RunResult out;
  std::vector<OpFuture> futures;
  futures.reserve(kOps);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kOps; ++i) {
    const std::string key = KeyFor(rng);
    if (rng.Chance(kReadFraction)) {
      futures.push_back(client->SubmitRead(key));
    } else {
      futures.push_back(
          client->SubmitWrite(key, static_cast<std::int64_t>(i)));
    }
  }
  client->Drain();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (auto& f : futures) {
    if (!f.Get().ok) ++out.failures;
  }
  out.ops_per_sec = static_cast<double>(kOps) / secs;
  const AsyncQuorumClient::Stats& cs = client->ClientStats();
  if (cs.batches_sent > 0) {
    out.avg_client_batch = static_cast<double>(cs.batched_requests) /
                           static_cast<double>(cs.batches_sent);
  }
  if (durable) {
    const storage::StorageStats st = store.TotalStorageStats();
    if (st.fsyncs > 0) {
      out.records_per_fsync = static_cast<double>(st.records_appended) /
                              static_cast<double>(st.fsyncs);
    }
  }
  return out;
}

StoreOptions MemoryOptions() {
  StoreOptions options;
  options.replicas = kReplicas;
  return options;
}

StoreOptions DurableOptions(const std::string& dir) {
  StoreOptions options;
  options.replicas = kReplicas;
  options.durability = storage::DurabilityOptions{
      .directory = dir,
      .fsync = storage::FsyncPolicy::kGroupCommit,
      .group_commit_window = std::chrono::microseconds{200},
  };
  return options;
}

struct JsonRow {
  std::string mode;
  std::size_t depth;
  RunResult r;
  double speedup;
};

void WriteJson(const std::string& path, const std::vector<JsonRow>& memory,
               const std::vector<JsonRow>& durable) {
  std::ofstream os(path);
  auto emit = [&os](const std::vector<JsonRow>& rows) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const JsonRow& row = rows[i];
      os << "    {\"mode\": \"" << row.mode << "\", \"depth\": " << row.depth
         << ", \"ops_per_sec\": " << bench::Table::Num(row.r.ops_per_sec, 0)
         << ", \"speedup_vs_sync\": " << bench::Table::Num(row.speedup, 2)
         << ", \"avg_client_batch\": "
         << bench::Table::Num(row.r.avg_client_batch, 2)
         << ", \"records_per_fsync\": "
         << bench::Table::Num(row.r.records_per_fsync, 2)
         << ", \"failures\": " << row.r.failures << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
  };
  os << "{\n"
     << "  \"experiment\": \"E15\",\n"
     << "  \"replicas\": " << kReplicas << ",\n"
     << "  \"ops\": " << kOps << ",\n"
     << "  \"keys\": " << kKeys << ",\n"
     << "  \"read_fraction\": " << kReadFraction << ",\n"
     << "  \"memory_backend\": [\n";
  emit(memory);
  os << "  ],\n"
     << "  \"durable_group_commit\": [\n";
  emit(durable);
  os << "  ]\n}\n";
}

std::vector<JsonRow> RunSection(const std::string& title,
                                const std::function<StoreOptions()>& make,
                                bool durable) {
  bench::Banner(title);
  std::vector<std::string> headers = {"mode", "depth", "ops/s",
                                      "speedup vs sync", "avg batch"};
  if (durable) headers.push_back("records/fsync");
  bench::Table table(headers);
  std::vector<JsonRow> rows;

  const RunResult sync = MeasureSync(make());
  rows.push_back({"sync", 1, sync, 1.0});
  for (std::size_t depth : {1u, 4u, 16u, 64u}) {
    const RunResult r = MeasureAsync(make(), depth);
    rows.push_back({"async", depth, r, r.ops_per_sec / sync.ops_per_sec});
  }
  for (const JsonRow& row : rows) {
    std::vector<std::string> cells = {
        row.mode, std::to_string(row.depth),
        bench::Table::Num(row.r.ops_per_sec, 0),
        bench::Table::Num(row.speedup, 2),
        bench::Table::Num(row.r.avg_client_batch, 2)};
    if (durable) {
      cells.push_back(bench::Table::Num(row.r.records_per_fsync, 2));
    }
    table.AddRow(std::move(cells));
  }
  table.Print();
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_batching.json";

  const std::vector<JsonRow> memory = RunSection(
      "E15a: pipelined batching, in-memory backend, 5 replicas, 128 keys, "
      "20% reads",
      MemoryOptions, /*durable=*/false);

  const std::string scratch = "bench_batching_scratch";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);
  const std::vector<JsonRow> durable = RunSection(
      "E15b: pipelined batching, durable backend (group commit), 5 replicas",
      [&scratch] { return DurableOptions(scratch); }, /*durable=*/true);
  std::filesystem::remove_all(scratch);

  WriteJson(json_path, memory, durable);
  std::cout << "\nShape checks: async depth 1 tracks the sync baseline "
               "(same protocol, same\nround-trips); throughput then climbs "
               "with depth because disjoint-key ops overlap\ntheir quorum "
               "phases and replicas serve whole batches per mailbox wakeup. "
               "Under\ngroup commit, records-per-fsync climbs with depth as "
               "each batch commits with a\nsingle sync decision.\nJSON: "
            << json_path << "\n";
  return 0;
}
