// E1 — Figures 1 and 2 of the paper.
//
// Constructs the paper's example: two user transactions over one replicated
// logical item x with three DMs plus non-replica accesses a and b; prints
// the transaction tree of replicated serial system B (Figure 1) and, via
// the Theorem-10 correspondence, the tree of the non-replicated system A
// (Figure 2). Also microbenchmarks system-type construction and the
// composed automaton's step machinery.
#include <benchmark/benchmark.h>

#include "ioa/explorer.hpp"
#include "quorum/strategies.hpp"
#include "replication/theorem10.hpp"
#include "table.hpp"
#include "txn/random_transaction.hpp"
#include "txn/scripted_transaction.hpp"

namespace {

using namespace qcnt;

replication::ReplicatedSpec MakeFigureSpec() {
  replication::ReplicatedSpec spec;
  const ItemId x = spec.AddItem("x", 3, quorum::Majority(3),
                                Plain{std::int64_t{0}});
  const ObjectId oa = spec.AddPlainObject("a-obj", Plain{std::int64_t{0}});
  const ObjectId ob = spec.AddPlainObject("b-obj", Plain{std::int64_t{0}});
  const TxnId u1 = spec.AddTransaction(kRootTxn, "U1");
  spec.AddPlainRead(u1, oa, "a");
  spec.AddWriteTm(u1, x, Plain{std::int64_t{1}});
  spec.AddReadTm(u1, x);
  const TxnId u2 = spec.AddTransaction(kRootTxn, "U2");
  spec.AddPlainWrite(u2, ob, Plain{std::int64_t{2}}, "b");
  spec.AddReadTm(u2, x);
  spec.Finalize(/*read_attempts=*/1, /*write_attempts=*/1);
  return spec;
}

void PrintFigures() {
  const replication::ReplicatedSpec spec = MakeFigureSpec();
  bench::Banner(
      "Figure 1: transaction tree for replicated serial system B");
  std::cout << spec.Type().ToAscii();

  bench::Banner(
      "Figure 2: corresponding tree for non-replicated system A\n"
      "    (TMs become accesses to a single logical object; DM accesses "
      "vanish)");
  // Render the A-tree: same nodes minus replica accesses; TMs flagged as
  // logical accesses.
  const txn::SystemType& type = spec.Type();
  struct Frame {
    TxnId t;
    std::size_t depth;
  };
  std::vector<Frame> stack{{kRootTxn, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (spec.IsReplicaAccess(f.t)) continue;
    for (std::size_t i = 0; i < f.depth; ++i) std::cout << "  ";
    std::cout << type.Label(f.t);
    if (type.IsAccess(f.t)) {
      std::cout << " [access " << type.ObjectLabel(type.ObjectOf(f.t)) << ']';
    } else if (spec.TmItem(f.t) != kNoItem) {
      std::cout << " [access to logical " << spec.Item(spec.TmItem(f.t)).name
                << ']';
    }
    std::cout << '\n';
    const auto& kids = type.Children(f.t);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }

  bench::Banner("tree statistics");
  bench::Table table({"tree", "transactions", "objects", "accesses"});
  std::size_t accesses_b = 0;
  for (TxnId t = 0; t < type.TxnCount(); ++t) {
    if (type.IsAccess(t)) ++accesses_b;
  }
  std::size_t replica_accesses = 0;
  for (const auto& item : spec.Items()) replica_accesses += item.accesses.size();
  table.AddRow({"system B (Figure 1)", std::to_string(type.TxnCount()),
                std::to_string(type.ObjectCount()),
                std::to_string(accesses_b)});
  table.AddRow({"system A (Figure 2)",
                std::to_string(type.TxnCount() - replica_accesses),
                std::to_string(type.ObjectCount() - 3 + 1),
                std::to_string(accesses_b - replica_accesses + 3)});
  table.Print();
}

void BM_BuildFigureSpec(benchmark::State& state) {
  for (auto _ : state) {
    replication::ReplicatedSpec spec = MakeFigureSpec();
    benchmark::DoNotOptimize(spec.Type().TxnCount());
  }
}
BENCHMARK(BM_BuildFigureSpec);

void BM_ExploreFigureSystem(benchmark::State& state) {
  const replication::ReplicatedSpec spec = MakeFigureSpec();
  replication::UserAutomataFactory users = [&](ioa::System& sys) {
    for (TxnId t = 0; t < spec.Type().TxnCount(); ++t) {
      if (spec.IsUserTransaction(t)) {
        sys.Emplace<txn::RandomTransaction>(spec.Type(), t);
      }
    }
  };
  ioa::System sys = replication::BuildB(spec, users);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const ioa::ExploreResult r = ioa::Explore(sys, seed++);
    benchmark::DoNotOptimize(r.schedule.size());
  }
}
BENCHMARK(BM_ExploreFigureSystem);

}  // namespace

int main(int argc, char** argv) {
  PrintFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
