// E5 — message cost per logical operation.
//
// A logical read contacts one read quorum; a logical write contacts a read
// quorum (version discovery) and then a write quorum. The table reports
// replicas contacted per operation for each strategy as the replica count
// grows, with all replicas up — the structural cost the configuration
// choice implies, independent of any network.
#include <benchmark/benchmark.h>

#include "quorum/availability.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using quorum::FullyUpCost;
using quorum::OperationCost;
using quorum::QuorumSystem;

void PrintCosts() {
  bench::Banner("E5: replicas contacted per logical operation (all up)");
  bench::Table table({"n", "strategy", "read msgs", "write msgs"});
  for (ReplicaId n : {3, 5, 9, 13, 15, 25, 27}) {
    std::vector<QuorumSystem> strategies;
    strategies.push_back(quorum::PrimaryCopySystem(n));
    strategies.push_back(quorum::ReadOneWriteAllSystem(n));
    strategies.push_back(quorum::MajoritySystem(n));
    if (n == 9) strategies.push_back(quorum::GridSystem(3, 3));
    if (n == 15) strategies.push_back(quorum::GridSystem(3, 5));
    if (n == 25) strategies.push_back(quorum::GridSystem(5, 5));
    if (n == 9) strategies.push_back(quorum::HierarchicalMajoritySystem(3, 2));
    if (n == 27) {
      strategies.push_back(quorum::HierarchicalMajoritySystem(3, 3));
    }
    if (n == 13) strategies.push_back(quorum::TreeQuorumSystem(3, 3));
    for (const QuorumSystem& s : strategies) {
      const OperationCost c = FullyUpCost(s);
      table.AddRow({std::to_string(n), s.name,
                    bench::Table::Num(c.read_messages, 1),
                    bench::Table::Num(c.write_messages, 1)});
    }
  }
  table.Print();
  std::cout << "\nShape checks: grid reads cost O(sqrt n); hierarchical "
               "quorums cost O(n^0.63) — both\nundercut majority's (n+1)/2 "
               "as n grows, while read-one/write-all stays cheapest for "
               "reads\nand most expensive for writes.\n";
}

void BM_PickReadQuorum(benchmark::State& state) {
  const QuorumSystem s = quorum::GridSystem(5, 5);
  const std::uint64_t full = (1ull << 25) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.pick_read(full));
  }
}
BENCHMARK(BM_PickReadQuorum);

void BM_PickWriteQuorumHierarchical(benchmark::State& state) {
  const QuorumSystem s = quorum::HierarchicalMajoritySystem(3, 3);
  const std::uint64_t full = (1ull << 27) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.pick_write(full));
  }
}
BENCHMARK(BM_PickWriteQuorumHierarchical);

}  // namespace

int main(int argc, char** argv) {
  PrintCosts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
