// E9 — reconfiguration restores availability after failures (Section 4).
//
// Timeline experiment on the simulated store: majority(5) initially; two
// replicas crash; optionally a Gifford reconfiguration shrinks the
// configuration to the three survivors; then a third replica crashes. The
// table reports write success rates in each phase, with and without the
// reconfiguration — "if some DMs are down, we may want to change the
// quorums so that logical accesses can be processed in spite of the
// failures."
#include <benchmark/benchmark.h>

#include "quorum/strategies.hpp"
#include "sim/store.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using sim::Deployment;
using sim::LatencyModel;
using sim::OpResult;

struct PhaseStats {
  std::size_t ok = 0;
  std::size_t attempts = 0;
  std::string Ratio() const {
    return std::to_string(ok) + "/" + std::to_string(attempts);
  }
};

struct TimelineResult {
  PhaseStats healthy, degraded, after_third_crash;
  bool reconfig_ok = false;
  std::uint64_t final_generation = 0;
};

TimelineResult RunTimeline(bool reconfigure, std::uint64_t seed) {
  std::vector<quorum::QuorumSystem> configs{
      quorum::MajoritySystem(5),
      quorum::FromConfiguration(
          "survivors-012",
          quorum::Configuration({{0, 1}, {0, 2}, {1, 2}},
                                {{0, 1}, {0, 2}, {1, 2}}))};
  sim::QuorumStoreClient::Options copts;
  copts.timeout = 200.0;
  Deployment d(5, 1, configs, 0, LatencyModel::Uniform(1.0, 3.0), 0.0, seed,
               copts);
  TimelineResult result;

  auto run_writes = [&d](PhaseStats& stats, std::size_t count,
                         std::int64_t base) {
    for (std::size_t i = 0; i < count; ++i) {
      ++stats.attempts;
      bool* ok_ptr = nullptr;
      bool ok = false;
      ok_ptr = &ok;
      d.clients[0]->Write(base + static_cast<std::int64_t>(i),
                          [ok_ptr](const OpResult& r) { *ok_ptr = r.ok; });
      d.sim.Run();
      if (ok) ++stats.ok;
    }
  };

  run_writes(result.healthy, 20, 100);

  d.net.Crash(3);
  d.net.Crash(4);
  run_writes(result.degraded, 20, 200);

  if (reconfigure) {
    d.clients[0]->Reconfigure(1, [&](const OpResult& r) {
      result.reconfig_ok = r.ok;
    });
    d.sim.Run();
  }

  d.net.Crash(2);
  run_writes(result.after_third_crash, 20, 300);
  result.final_generation = d.clients[0]->BelievedGeneration();
  return result;
}

void PrintTimeline() {
  bench::Banner(
      "E9: write success along a failure timeline (majority(5); crash "
      "{3,4}; [reconfig]; crash {2})");
  bench::Table table({"variant", "healthy", "after 2 crashes",
                      "after 3rd crash", "reconfig", "final gen"});
  const TimelineResult without = RunTimeline(false, 11);
  table.AddRow({"fixed configuration", without.healthy.Ratio(),
                without.degraded.Ratio(),
                without.after_third_crash.Ratio(), "-",
                std::to_string(without.final_generation)});
  const TimelineResult with = RunTimeline(true, 11);
  table.AddRow({"with reconfiguration", with.healthy.Ratio(),
                with.degraded.Ratio(), with.after_third_crash.Ratio(),
                with.reconfig_ok ? "ok" : "FAILED",
                std::to_string(with.final_generation)});
  table.Print();
  std::cout << "\nShape checks: both variants survive a minority of "
               "crashes; only the reconfigured\nsystem keeps accepting "
               "writes once 3 of 5 replicas are down.\n";
}

void BM_ReconfigurationOp(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    std::vector<quorum::QuorumSystem> configs{
        quorum::MajoritySystem(5),
        quorum::FromConfiguration(
            "survivors",
            quorum::Configuration({{0, 1}, {0, 2}, {1, 2}},
                                  {{0, 1}, {0, 2}, {1, 2}}))};
    Deployment d(5, 1, configs, 0, LatencyModel::Fixed(1.0), 0.0, seed++);
    bool ok = false;
    d.clients[0]->Reconfigure(1, [&ok](const OpResult& r) { ok = r.ok; });
    d.sim.Run();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ReconfigurationOp);

}  // namespace

int main(int argc, char** argv) {
  PrintTimeline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
