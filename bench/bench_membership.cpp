// E19 — the client-visible cost of growing the replica set online.
//
// A 3-replica store serves a pipelined read/write mix from concurrent
// clients while a MembershipCoordinator runs the full three-phase join
// of DESIGN.md §11 (bulk catchup, stamp, seal) against a preloaded
// image. Throughput is sampled in three windows:
//
//   steady       — before the join starts
//   during_join  — exactly the wall-clock span of AddReplica()
//   after_join   — after the new 4-replica configuration is installed
//
// The gate: during_join throughput must stay at or above 50% of steady.
// Catchup chunks are bounded and donor-side reads interleave with live
// writes per shard, so a join should cost a fraction of throughput, not
// an outage — this experiment is the regression fence for that claim.
// Results print as a table and are written as JSON (argv[1], default
// "BENCH_membership.json") for CI archiving, like the other bench gates.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "reconfig/catchup.hpp"
#include "runtime/store.hpp"
#include "table.hpp"

namespace {

using namespace qcnt;
using runtime::AsyncQuorumClient;
using runtime::OpFuture;
using runtime::ReplicatedStore;
using runtime::StoreOptions;

constexpr std::size_t kReplicas = 3;
constexpr std::size_t kTrafficClients = 2;
constexpr std::size_t kPreloadKeys = 6000;
constexpr std::size_t kTrafficKeys = 64;
constexpr auto kSteadyWindow = std::chrono::milliseconds(500);
constexpr double kGateMinRatio = 0.5;
// A single join lasts tens of milliseconds — one sample is scheduler
// noise on a small machine. Three grow/shrink cycles are measured and
// the gate is judged on the median during-join ratio.
constexpr std::size_t kJoinCycles = 3;

struct WindowRow {
  std::string phase;
  double ops_per_sec = 0;
  double wall_ms = 0;
};

/// Count of completed-ok client ops, shared across traffic threads.
std::atomic<std::uint64_t> g_ok{0};
std::atomic<bool> g_stop{false};

void Traffic(ReplicatedStore& store, std::size_t id) {
  // Pipelined traffic, as in the E2E membership tests: the window
  // overlaps quorum latency, so the measured dip reflects lost capacity
  // rather than a blocking client's amplified queuing delay.
  AsyncQuorumClient::Options aopts;
  aopts.window = 16;
  aopts.max_batch = 8;
  aopts.max_attempts = 8;
  aopts.timeout = std::chrono::milliseconds(250);
  auto client = store.MakeAsyncClient(aopts);
  std::uint64_t i = 0;
  std::vector<OpFuture> burst;
  while (!g_stop.load(std::memory_order_relaxed)) {
    burst.clear();
    for (std::size_t b = 0; b < 256; ++b, ++i) {
      const std::string key =
          "t" + std::to_string((id * 31 + i) % kTrafficKeys);
      if (i % 2 == 0) {
        burst.push_back(client->SubmitWrite(key, static_cast<std::int64_t>(i)));
      } else {
        burst.push_back(client->SubmitRead(key));
      }
    }
    client->Drain();
    for (auto& f : burst) {
      if (f.Get().ok) g_ok.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

/// Ops/s over one sampling window delimited by the caller.
struct Sampler {
  std::uint64_t ops0 = 0;
  std::chrono::steady_clock::time_point t0;
  void Begin() {
    ops0 = g_ok.load();
    t0 = std::chrono::steady_clock::now();
  }
  WindowRow End(const std::string& phase) {
    const auto wall = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - t0);
    WindowRow r;
    r.phase = phase;
    r.wall_ms = wall.count();
    r.ops_per_sec = static_cast<double>(g_ok.load() - ops0) /
                    (wall.count() / 1000.0);
    return r;
  }
};

void WriteJson(const std::string& path, const std::vector<WindowRow>& rows,
               const reconfig::MembershipReport& report, double ratio) {
  std::ofstream os(path);
  os << "{\n  \"experiment\": \"E19\",\n";
  os << "  \"replicas_before\": " << kReplicas << ",\n";
  os << "  \"replicas_after\": " << (kReplicas + 1) << ",\n";
  os << "  \"traffic_clients\": " << kTrafficClients << ",\n";
  os << "  \"preloaded_keys\": " << kPreloadKeys << ",\n";
  os << "  \"catchup_entries\": " << report.catchup_entries << ",\n";
  os << "  \"seal_entries\": " << report.seal_entries << ",\n";
  os << "  \"windows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    os << "    {\"phase\": \"" << rows[i].phase
       << "\", \"ops_per_sec\": " << bench::Table::Num(rows[i].ops_per_sec, 0)
       << ", \"wall_ms\": " << bench::Table::Num(rows[i].wall_ms, 1) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"join_cycles\": " << kJoinCycles << ",\n";
  os << "  \"during_over_steady_median\": " << bench::Table::Num(ratio, 3)
     << ",\n";
  os << "  \"gate_min_ratio\": " << bench::Table::Num(kGateMinRatio, 2)
     << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_membership.json";

  StoreOptions o;
  o.replicas = kReplicas;
  o.max_clients = kTrafficClients + 2;  // traffic + preloader + audit slack
  // Retries with a short per-attempt deadline keep a scheduler hiccup
  // from reading as a membership-induced throughput dip: an op parked
  // behind a seal burst re-issues in 250ms instead of stalling a second.
  o.client_options.max_attempts = 8;
  o.client_options.timeout = std::chrono::milliseconds(250);
  ReplicatedStore store(o);

  // Preload the image the joiner will have to stream: this is what makes
  // the join window long enough to sample (catchup + a 3-donor seal).
  {
    auto preloader = store.MakeClient();
    for (std::size_t i = 0; i < kPreloadKeys; ++i) {
      preloader->Write("p" + std::to_string(i), static_cast<std::int64_t>(i));
    }
  }

  std::vector<std::thread> traffic;
  for (std::size_t c = 0; c < kTrafficClients; ++c) {
    traffic.emplace_back(Traffic, std::ref(store), c);
  }

  bench::Banner("E19 — client throughput across an online join (3 -> 4)");
  std::vector<WindowRow> rows;
  Sampler s;

  s.Begin();
  std::this_thread::sleep_for(kSteadyWindow);
  rows.push_back(s.End("steady"));
  const double steady = rows[0].ops_per_sec;

  reconfig::MembershipOptions mopts;
  // Small chunks are the latency knob: each catchup/seal install is a
  // burst of replica work that client ops queue behind, so bounding the
  // burst is what keeps the dip inside the gate.
  mopts.chunk_entries = 32;

  reconfig::MembershipReport report;
  bool joins_ok = true;
  std::vector<double> ratios;
  for (std::size_t cycle = 0; cycle < kJoinCycles; ++cycle) {
    s.Begin();
    report = reconfig::AddReplica(store, mopts);
    const WindowRow w =
        s.End("during_join_" + std::to_string(cycle + 1));
    rows.push_back(w);
    ratios.push_back(steady > 0 ? w.ops_per_sec / steady : 0);
    joins_ok = joins_ok && report.ok;
    if (cycle + 1 < kJoinCycles) {
      // Shrink back so every cycle measures the same 3 -> 4 transition.
      joins_ok =
          joins_ok && reconfig::RemoveReplica(store, report.node, mopts).ok;
    }
  }

  s.Begin();
  std::this_thread::sleep_for(kSteadyWindow);
  rows.push_back(s.End("after_join"));

  g_stop.store(true);
  for (auto& t : traffic) t.join();

  {
    bench::Table t({"phase", "ops/s", "wall ms"});
    for (const WindowRow& r : rows) {
      t.AddRow({r.phase, bench::Table::Num(r.ops_per_sec, 0),
                bench::Table::Num(r.wall_ms, 1)});
    }
    t.Print();
  }
  std::cout << "join ok=" << report.ok
            << " catchup_entries=" << report.catchup_entries
            << " seal_entries=" << report.seal_entries
            << " generation=" << report.generation << "\n";

  std::vector<double> sorted = ratios;
  std::sort(sorted.begin(), sorted.end());
  const double ratio = sorted[sorted.size() / 2];  // median
  WriteJson(json_path, rows, report, ratio);

  // Gate: every join/shrink completed, the store really grew, traffic
  // flowed in every window, and the median dip stayed within budget.
  bool ok = joins_ok && store.Members().size() == kReplicas + 1;
  for (const WindowRow& r : rows) ok = ok && r.ops_per_sec > 0;
  ok = ok && ratio >= kGateMinRatio;
  std::cout << "\nmedian during/steady = " << bench::Table::Num(ratio, 3)
            << " (gate >= " << kGateMinRatio << "); "
            << (ok ? "OK" : "GATE FAILED") << "; wrote " << json_path << "\n";
  return ok ? 0 : 1;
}
