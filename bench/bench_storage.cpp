// E20 — storage engine v2: bounded recovery and the cold-read layer.
//
// Four sections, run against a single-shard DurableBackend in spill mode
// (the configuration built for keyspaces larger than RAM):
//
//   1. Recovery vs total state, fixed WAL tail. v1 recovery reloaded the
//      whole snapshot, so restart cost grew with the keyspace; v2 opens
//      checkpoints footer-only and replays just the segment tail. The
//      sweep holds the tail at kTailRecords while total state quadruples:
//      the replayed-record count must stay constant, wall-clock ~flat.
//   2. Recovery vs tail, fixed total state. The inverse control: replay
//      cost must scale with the tail — that is the knob operators bound
//      with checkpoint_tail_bytes.
//   3. Cold-read throughput: point Lookups against spilled state, split
//      into present-key probes (bloom passes, one block decode) and
//      absent-key probes (bloom rejects ~99% without touching a block).
//      The counters expose the filter's hit/miss/false-positive split.
//   4. Group-commit sanity: the full ReplicatedStore write path under
//      the fixed window vs the adaptive window — the adaptive knob must
//      stay within noise of the E14/E15 baseline it generalizes.
//
// Emits BENCH_storage.json (argv[1] overrides the path) for
// tools/check_bench_storage.py. Scale with QCNT_E20_KEYS (default
// 200'000 so CI stays fast; 10'000'000 reproduces the ISSUE's target —
// at ~35 bytes/record plan ~400 MiB of scratch disk).
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "runtime/store.hpp"
#include "storage/backend.hpp"
#include "table.hpp"

namespace {

namespace fs = std::filesystem;
using namespace qcnt;
using Clock = std::chrono::steady_clock;

constexpr const char* kScratch = "bench_storage_scratch";
constexpr std::uint64_t kTailRecords = 4000;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

std::string Key(std::uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "user_%010llu",
                static_cast<unsigned long long>(i));
  return buf;
}

storage::DurabilityOptions SpillOptions() {
  storage::DurabilityOptions o;
  o.fsync = storage::FsyncPolicy::kNever;  // measure the engine, not the disk
  // Bigger-than-default checkpoints and a longer chain keep the populate
  // phase's compaction traffic sane at the 10M-key scale.
  o.checkpoint_tail_bytes = 4u << 20;
  o.segment_bytes = 1u << 20;
  o.max_checkpoints = 8;
  o.spill_cold_reads = true;
  return o;
}

/// Populate `dir` with `keys` distinct keys through the normal apply +
/// threshold path (batched like the replica's group apply), leaving a
/// checkpointed chain; then append exactly `tail` more records so the
/// un-checkpointed tail is a controlled size.
void Populate(const std::string& dir, std::uint64_t keys,
              std::uint64_t tail) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto backend = storage::MakeDurableBackend(dir, SpillOptions());
  storage::Image image = backend->Recover();
  std::vector<storage::WalRecord> batch;
  batch.reserve(1000);
  for (std::uint64_t i = 0; i < keys; ++i) {
    storage::WalRecord r;
    r.key = Key(i);
    r.version = 1;
    r.value = static_cast<std::int64_t>(i);
    batch.push_back(std::move(r));
    if (batch.size() == 1000 || i + 1 == keys) {
      for (const storage::WalRecord& rec : batch) {
        image.ApplyWrite(rec.key, rec.version, rec.value);
      }
      backend->ApplyWriteBatch(batch);
      backend->MaybeCompact(image);
      batch.clear();
    }
  }
  backend->ForceCheckpoint(image);  // tail now empty
  for (std::uint64_t i = 0; i < tail; ++i) {
    // Overwrite low keys at version 2: a realistic hot tail.
    const std::uint64_t k = i % (keys > 0 ? keys : 1);
    image.ApplyWrite(Key(k), 2, -1);
    backend->ApplyWrite(Key(k), 2, -1);
    // No MaybeCompact: the tail must survive to the recovery measurement
    // (kTailRecords * ~35 B stays under checkpoint_tail_bytes anyway).
  }
}

struct RecoveryPoint {
  std::uint64_t total_keys = 0;
  std::uint64_t tail_records = 0;
  double recover_ms = 0;
  std::uint64_t replayed = 0;
  std::uint64_t image_entries = 0;  // what Recover materialized in RAM
};

RecoveryPoint MeasureRecovery(std::uint64_t keys, std::uint64_t tail) {
  const std::string dir = std::string(kScratch) + "/recovery";
  Populate(dir, keys, tail);
  RecoveryPoint p;
  p.total_keys = keys;
  p.tail_records = tail;
  {
    auto backend = storage::MakeDurableBackend(dir, SpillOptions());
    const auto t0 = Clock::now();
    const storage::Image image = backend->Recover();
    p.recover_ms = MsSince(t0);
    const storage::StorageStats stats = backend->Stats();
    p.replayed = stats.recovery_replayed;
    p.image_entries = image.data.size();
  }
  fs::remove_all(dir);
  return p;
}

struct ColdReadPoint {
  std::uint64_t present_probes = 0;
  double present_per_sec = 0;
  std::uint64_t absent_probes = 0;
  double absent_per_sec = 0;
  std::uint64_t bloom_hits = 0;
  std::uint64_t bloom_misses = 0;
  std::uint64_t bloom_false_positives = 0;
  double false_positive_rate = 0;
  bool all_present_found = true;
};

ColdReadPoint MeasureColdReads(std::uint64_t keys) {
  const std::string dir = std::string(kScratch) + "/cold";
  Populate(dir, keys, 0);
  ColdReadPoint p;
  auto backend = storage::MakeDurableBackend(dir, SpillOptions());
  storage::Image image = backend->Recover();

  const std::uint64_t probes = std::min<std::uint64_t>(keys, 50'000);
  storage::Versioned v;
  // Present keys, strided so probes spread across blocks and files.
  const std::uint64_t stride = keys > probes ? keys / probes : 1;
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < probes; ++i) {
    if (!backend->Lookup(Key((i * stride) % keys), &v)) {
      p.all_present_found = false;
    }
  }
  p.present_per_sec = static_cast<double>(probes) / (MsSince(t0) / 1000.0);
  p.present_probes = probes;

  // Absent keys: the bloom filter's whole reason to exist.
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < probes; ++i) {
    backend->Lookup(Key(keys + 1 + i), &v);
  }
  p.absent_per_sec = static_cast<double>(probes) / (MsSince(t0) / 1000.0);
  p.absent_probes = probes;

  const storage::StorageStats stats = backend->Stats();
  p.bloom_hits = stats.bloom_hits;
  p.bloom_misses = stats.bloom_misses;
  p.bloom_false_positives = stats.bloom_false_positives;
  // Per-filter-probe rate: a lookup consults one bloom filter per
  // checkpoint in the chain until the key is found, so the denominator
  // is filter consultations for keys the checkpoint did NOT hold
  // (misses + false positives) — dividing by lookups instead would
  // scale the reported rate with chain length.
  const std::uint64_t filter_rejections =
      stats.bloom_misses + stats.bloom_false_positives;
  p.false_positive_rate =
      filter_rejections == 0
          ? 0
          : static_cast<double>(stats.bloom_false_positives) /
                static_cast<double>(filter_rejections);
  fs::remove_all(dir);
  return p;
}

struct GroupCommitPoint {
  double fixed_writes_per_sec = 0;
  double adaptive_writes_per_sec = 0;
  std::uint64_t fixed_fsyncs = 0;
  std::uint64_t adaptive_fsyncs = 0;
};

double StoreWriteRate(bool adaptive, std::uint64_t* fsyncs) {
  const std::string dir =
      std::string(kScratch) + (adaptive ? "/gc_adaptive" : "/gc_fixed");
  fs::remove_all(dir);
  runtime::StoreOptions options;
  options.replicas = 3;
  storage::DurabilityOptions durability;
  durability.directory = dir;
  durability.fsync = storage::FsyncPolicy::kGroupCommit;
  durability.group_commit_window = std::chrono::microseconds(500);
  durability.adaptive_commit_window = adaptive;
  options.durability = durability;
  double rate = 0;
  {
    runtime::ReplicatedStore store(std::move(options));
    auto client = store.MakeClient();
    const std::size_t ops = 400;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      std::string key = "k";
      key += std::to_string(i % 8);
      if (!client->Write(key, static_cast<std::int64_t>(i)).ok) {
        return 0;
      }
    }
    rate = static_cast<double>(ops) / (MsSince(t0) / 1000.0);
    *fsyncs = store.TotalStorageStats().fsyncs;
  }
  fs::remove_all(dir);
  return rate;
}

void EmitRecoveryRows(std::ofstream& os, const char* name,
                      const std::vector<RecoveryPoint>& rows) {
  os << "  \"" << name << "\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RecoveryPoint& r = rows[i];
    os << "    {\"total_keys\": " << r.total_keys
       << ", \"tail_records\": " << r.tail_records
       << ", \"recover_ms\": " << r.recover_ms
       << ", \"replayed\": " << r.replayed
       << ", \"image_entries\": " << r.image_entries << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_storage.json";
  const std::uint64_t keys =
      common::EnvU64("QCNT_E20_KEYS", 1000, 1u << 30).value_or(200'000);
  fs::remove_all(kScratch);

  // --- 1. Recovery vs total state, fixed tail --------------------------
  bench::Banner("E20: recovery time vs total state (tail fixed at " +
                std::to_string(kTailRecords) + " records)");
  std::vector<RecoveryPoint> vs_state;
  for (const std::uint64_t n : {keys / 4, keys / 2, keys}) {
    vs_state.push_back(MeasureRecovery(n, kTailRecords));
  }
  {
    bench::Table table({"total keys", "tail records", "recover ms",
                        "records replayed", "RAM entries after"});
    for (const RecoveryPoint& r : vs_state) {
      table.AddRow({std::to_string(r.total_keys),
                    std::to_string(r.tail_records),
                    bench::Table::Num(r.recover_ms, 2),
                    std::to_string(r.replayed),
                    std::to_string(r.image_entries)});
    }
    table.Print();
    std::cout << "\nShape check: replayed records and recovery time track "
                 "the tail, not total state\n(v1 reloaded the whole "
                 "snapshot here — linear in total keys).\n";
  }

  // --- 2. Recovery vs tail, fixed total state --------------------------
  bench::Banner("E20: recovery time vs WAL tail (state fixed at " +
                std::to_string(keys / 2) + " keys)");
  std::vector<RecoveryPoint> vs_tail;
  for (const std::uint64_t tail : {kTailRecords / 4, kTailRecords,
                                   kTailRecords * 4}) {
    vs_tail.push_back(MeasureRecovery(keys / 2, tail));
  }
  {
    bench::Table table({"total keys", "tail records", "recover ms",
                        "records replayed"});
    for (const RecoveryPoint& r : vs_tail) {
      table.AddRow({std::to_string(r.total_keys),
                    std::to_string(r.tail_records),
                    bench::Table::Num(r.recover_ms, 2),
                    std::to_string(r.replayed)});
    }
    table.Print();
    std::cout << "\nShape check: replay cost scales with the tail — the "
                 "bound checkpoint_tail_bytes buys.\n";
  }

  // --- 3. Cold reads through the bloom + block index -------------------
  bench::Banner("E20: cold point reads over " + std::to_string(keys) +
                " spilled keys");
  const ColdReadPoint cold = MeasureColdReads(keys);
  {
    bench::Table table({"probe set", "probes", "reads/s", "bloom hits",
                        "bloom misses", "false positives"});
    table.AddRow({"present keys", std::to_string(cold.present_probes),
                  bench::Table::Num(cold.present_per_sec, 0),
                  std::to_string(cold.bloom_hits), "-", "-"});
    table.AddRow({"absent keys", std::to_string(cold.absent_probes),
                  bench::Table::Num(cold.absent_per_sec, 0), "-",
                  std::to_string(cold.bloom_misses),
                  std::to_string(cold.bloom_false_positives)});
    table.Print();
    std::cout << "\nShape check: absent probes are mostly bloom misses "
                 "(no block I/O); the false-positive\nrate sits near the "
                 "designed ~1% at 10 bits/key (measured: "
              << bench::Table::Num(100.0 * cold.false_positive_rate, 2)
              << "%).\n";
  }
  if (!cold.all_present_found) {
    std::cerr << "E20 FAIL: a present key missed in the cold layer\n";
    fs::remove_all(kScratch);
    return 1;
  }

  // --- 4. Group-commit sanity (E14/E15 anchor) -------------------------
  bench::Banner("E20: group-commit window — fixed vs adaptive");
  GroupCommitPoint gc;
  gc.fixed_writes_per_sec = StoreWriteRate(false, &gc.fixed_fsyncs);
  gc.adaptive_writes_per_sec = StoreWriteRate(true, &gc.adaptive_fsyncs);
  {
    bench::Table table({"window", "writes/s", "fsyncs"});
    table.AddRow({"fixed 500us",
                  bench::Table::Num(gc.fixed_writes_per_sec, 0),
                  std::to_string(gc.fixed_fsyncs)});
    table.AddRow({"adaptive 100us..4000us",
                  bench::Table::Num(gc.adaptive_writes_per_sec, 0),
                  std::to_string(gc.adaptive_fsyncs)});
    table.Print();
    std::cout << "\nShape check: the adaptive window stays within noise "
                 "of the fixed-window baseline\n(it exists to trade "
                 "latency for amortization under load, not to change "
                 "throughput here).\n";
  }
  if (gc.fixed_writes_per_sec <= 0 || gc.adaptive_writes_per_sec <= 0) {
    std::cerr << "E20 FAIL: a group-commit section produced no writes\n";
    fs::remove_all(kScratch);
    return 1;
  }

  // --- JSON ------------------------------------------------------------
  std::ofstream os(json_path);
  os << "{\n";
  os << "  \"keys\": " << keys << ",\n";
  os << "  \"tail_records\": " << kTailRecords << ",\n";
  EmitRecoveryRows(os, "recovery_vs_state", vs_state);
  EmitRecoveryRows(os, "recovery_vs_tail", vs_tail);
  os << "  \"cold_reads\": {\"present_probes\": " << cold.present_probes
     << ", \"present_per_sec\": " << cold.present_per_sec
     << ", \"absent_probes\": " << cold.absent_probes
     << ", \"absent_per_sec\": " << cold.absent_per_sec
     << ", \"bloom_hits\": " << cold.bloom_hits
     << ", \"bloom_misses\": " << cold.bloom_misses
     << ", \"bloom_false_positives\": " << cold.bloom_false_positives
     << ", \"false_positive_rate\": " << cold.false_positive_rate
     << "},\n";
  os << "  \"group_commit\": {\"fixed_writes_per_sec\": "
     << gc.fixed_writes_per_sec
     << ", \"adaptive_writes_per_sec\": " << gc.adaptive_writes_per_sec
     << ", \"fixed_fsyncs\": " << gc.fixed_fsyncs
     << ", \"adaptive_fsyncs\": " << gc.adaptive_fsyncs << "}\n";
  os << "}\n";
  os.close();
  std::cout << "\nwrote " << json_path << "\n";

  fs::remove_all(kScratch);
  return 0;
}
