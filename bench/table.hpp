// Minimal aligned-table printer shared by the experiment binaries.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace qcnt::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  static std::string Num(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void Print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
           << (c < cells.size() ? cells[c] : "") << ' ';
      }
      os << "|\n";
    };
    line(headers_);
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << "|-" << std::string(widths[c], '-') << '-';
    }
    os << "|\n";
    for (const auto& row : rows_) line(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace qcnt::bench
