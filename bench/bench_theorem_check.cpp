// E2 + E3 — mechanized Theorem 10 and Lemmas 7/8 at scale.
//
// Sweeps random replicated systems (shape, quorum strategy, abort rate),
// runs seeded executions of system B, and validates the Theorem-10
// projection plus the Lemma-7/8 invariants after every step. The table
// reports aggregate trial counts and violation counts (all zero);
// microbenchmarks measure the cost of exploration and checking.
#include <benchmark/benchmark.h>

#include "ioa/explorer.hpp"
#include "replication/harness.hpp"
#include "replication/invariants.hpp"
#include "table.hpp"
#include "txn/wellformed.hpp"

namespace {

using namespace qcnt;
using replication::AbortWeight;
using replication::Harness;
using replication::MakeRandomHarness;

struct SweepResult {
  std::size_t trials = 0;
  std::size_t actions = 0;
  std::size_t theorem_violations = 0;
  std::size_t lemma_violations = 0;
  std::size_t wf_violations = 0;
  std::size_t completed_reads = 0;
};

SweepResult RunSweep(double abort_weight, std::size_t trials,
                     bool check_lemmas_each_step) {
  SweepResult out;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull +
            static_cast<std::uint64_t>(abort_weight * 1000));
    const Harness h = MakeRandomHarness(rng);
    const replication::UserAutomataFactory users = h.Users();
    ioa::System b = replication::BuildB(h.Spec(), users);

    ioa::Schedule so_far;
    bool lemma_ok = true;
    ioa::ExploreOptions opts;
    opts.weight = AbortWeight(abort_weight);
    if (check_lemmas_each_step) {
      opts.observer = [&](const ioa::Action& a, const ioa::System& sys) {
        so_far.push_back(a);
        if (!lemma_ok) return;
        lemma_ok = replication::CheckLemmas(h.Spec(), sys, so_far).ok;
      };
    }
    const ioa::ExploreResult r = ioa::Explore(b, rng, opts);
    ++out.trials;
    out.actions += r.schedule.size();
    if (!lemma_ok) ++out.lemma_violations;
    std::string msg;
    if (!txn::IsWellFormed(h.Spec().Type(), r.schedule, &msg)) {
      ++out.wf_violations;
    }
    if (!replication::CheckTheorem10(h.Spec(), users, r.schedule).ok) {
      ++out.theorem_violations;
    }
    for (const ioa::Action& a : r.schedule) {
      if (a.kind == ioa::ActionKind::kRequestCommit &&
          h.Spec().TmItem(a.txn) != kNoItem) {
        ++out.completed_reads;
      }
    }
  }
  return out;
}

void PrintSweep() {
  bench::Banner(
      "E2/E3: Theorem 10 + Lemma 7/8 over random replicated systems");
  bench::Table table({"abort-weight", "trials", "actions", "TM-completions",
                      "well-formed", "Thm10 violations",
                      "Lemma7/8 violations"});
  for (double w : {0.0, 0.3, 1.0}) {
    const SweepResult r = RunSweep(w, 60, /*check_lemmas_each_step=*/true);
    table.AddRow({bench::Table::Num(w, 1), std::to_string(r.trials),
                  std::to_string(r.actions),
                  std::to_string(r.completed_reads),
                  std::to_string(r.trials - r.wf_violations) + "/" +
                      std::to_string(r.trials),
                  std::to_string(r.theorem_violations),
                  std::to_string(r.lemma_violations)});
  }
  table.Print();
  std::cout << "\n(the paper proves both counts are identically zero; the "
               "mechanization agrees)\n";
}

void BM_ExploreSystemB(benchmark::State& state) {
  Rng rng(99);
  const Harness h = MakeRandomHarness(rng);
  ioa::System b = replication::BuildB(h.Spec(), h.Users());
  std::uint64_t seed = 0;
  std::size_t actions = 0;
  for (auto _ : state) {
    Rng run(seed++);
    const ioa::ExploreResult r = ioa::Explore(b, run, {});
    actions += r.schedule.size();
  }
  state.counters["actions/s"] = benchmark::Counter(
      static_cast<double>(actions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreSystemB);

void BM_Theorem10Check(benchmark::State& state) {
  Rng rng(99);
  const Harness h = MakeRandomHarness(rng);
  const replication::UserAutomataFactory users = h.Users();
  ioa::System b = replication::BuildB(h.Spec(), users);
  Rng run(4);
  const ioa::ExploreResult r = ioa::Explore(b, run, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        replication::CheckTheorem10(h.Spec(), users, r.schedule).ok);
  }
}
BENCHMARK(BM_Theorem10Check);

void BM_LemmaCheck(benchmark::State& state) {
  Rng rng(99);
  const Harness h = MakeRandomHarness(rng);
  ioa::System b = replication::BuildB(h.Spec(), h.Users());
  Rng run(4);
  const ioa::ExploreResult r = ioa::Explore(b, run, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        replication::CheckLemmas(h.Spec(), b, r.schedule).ok);
  }
}
BENCHMARK(BM_LemmaCheck);

}  // namespace

int main(int argc, char** argv) {
  PrintSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
