#include "sim/simulator.hpp"

#include "common/check.hpp"

namespace qcnt::sim {

void Simulator::At(Time t, std::function<void()> fn) {
  QCNT_CHECK(t >= now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::After(Time delay, std::function<void()> fn) {
  QCNT_CHECK(delay >= 0.0);
  At(now_ + delay, std::move(fn));
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // Moving out of a priority_queue requires a const_cast dance; copy the
  // metadata first, then steal the callable.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::Run(Time until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    Step();
  }
}

}  // namespace qcnt::sim
