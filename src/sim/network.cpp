#include "sim/network.hpp"

#include "common/check.hpp"

namespace qcnt::sim {

Time LatencyModel::Sample(Rng& rng) const {
  switch (kind) {
    case Kind::kFixed:
      return a;
    case Kind::kUniform:
      return a + (b - a) * rng.NextDouble();
    case Kind::kExponential:
      return b + rng.Exponential(a);
  }
  return a;
}

Network::Network(Simulator& sim, std::size_t nodes, LatencyModel latency,
                 double drop_probability, std::uint64_t seed)
    : sim_(&sim),
      latency_(latency),
      drop_probability_(drop_probability),
      rng_(seed),
      handlers_(nodes),
      up_(nodes, 1) {
  QCNT_CHECK(nodes >= 1 && nodes <= 64);
  QCNT_CHECK(drop_probability >= 0.0 && drop_probability < 1.0);
}

void Network::SetHandler(NodeId node, Handler handler) {
  QCNT_CHECK(node < handlers_.size());
  handlers_[node] = std::move(handler);
}

bool Network::Reachable(NodeId from, NodeId to) const {
  if (!partitioned_) return true;
  const bool a = (partition_side_ >> from) & 1;
  const bool b = (partition_side_ >> to) & 1;
  return a == b;
}

void Network::Send(NodeId from, NodeId to, const Message& m) {
  QCNT_CHECK(from < handlers_.size() && to < handlers_.size());
  ++sent_;
  if (!up_[from] || !Reachable(from, to) ||
      rng_.Chance(drop_probability_)) {
    ++dropped_;
    return;
  }
  const Time delay = latency_.Sample(rng_);
  sim_->After(delay, [this, from, to, m] {
    // Re-check liveness and reachability at delivery time.
    if (!up_[to] || !Reachable(from, to)) {
      ++dropped_;
      return;
    }
    ++delivered_;
    if (handlers_[to]) handlers_[to](from, m);
  });
}

void Network::Crash(NodeId node) {
  QCNT_CHECK(node < up_.size());
  up_[node] = 0;
}

void Network::Recover(NodeId node) {
  QCNT_CHECK(node < up_.size());
  up_[node] = 1;
}

bool Network::IsUp(NodeId node) const {
  QCNT_CHECK(node < up_.size());
  return up_[node] != 0;
}

std::uint64_t Network::UpMask() const {
  std::uint64_t mask = 0;
  for (NodeId i = 0; i < up_.size(); ++i) {
    if (up_[i]) mask |= 1ull << i;
  }
  return mask;
}

void Network::Partition(std::uint64_t side_mask) {
  partitioned_ = true;
  partition_side_ = side_mask;
}

void Network::Heal() { partitioned_ = false; }

}  // namespace qcnt::sim
