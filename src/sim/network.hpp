// Simulated message network with latency, drops, crashes and partitions.
//
// Nodes exchange small Message values. Delivery latency is sampled from a
// configurable distribution; messages may be dropped independently; crashed
// nodes neither send nor receive; partitioned node pairs cannot
// communicate. Everything is driven by the shared Simulator, and all
// randomness comes from one seeded Rng, so runs are reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace qcnt::sim {

using NodeId = std::uint32_t;

/// Protocol messages of the simulated quorum store (store.hpp). One flat
/// struct keeps the network layer trivially copyable and protocol-agnostic.
struct Message {
  enum class Kind : std::uint8_t {
    kReadReq,
    kReadResp,
    kWriteReq,
    kWriteAck,
    kConfigWriteReq,
    kConfigWriteAck,
  };
  Kind kind = Kind::kReadReq;
  std::uint64_t op = 0;        // client operation id
  std::uint64_t version = 0;   // data version number
  std::int64_t value = 0;      // data value
  std::uint64_t generation = 0;  // configuration generation
  std::uint32_t config_id = 0;   // index into the statically known configs
};

struct LatencyModel {
  enum class Kind : std::uint8_t { kFixed, kUniform, kExponential };
  Kind kind = Kind::kFixed;
  /// kFixed: value = a. kUniform: [a, b]. kExponential: mean a, offset b
  /// (i.e. b + Exp(a), so there is a propagation floor).
  double a = 1.0;
  double b = 0.0;

  Time Sample(Rng& rng) const;

  static LatencyModel Fixed(double ms) {
    return {Kind::kFixed, ms, 0.0};
  }
  static LatencyModel Uniform(double lo, double hi) {
    return {Kind::kUniform, lo, hi};
  }
  static LatencyModel Exponential(double mean, double floor = 0.0) {
    return {Kind::kExponential, mean, floor};
  }
};

class Network {
 public:
  using Handler = std::function<void(NodeId from, const Message&)>;

  Network(Simulator& sim, std::size_t nodes, LatencyModel latency,
          double drop_probability, std::uint64_t seed);

  std::size_t NodeCount() const { return handlers_.size(); }
  void SetHandler(NodeId node, Handler handler);

  /// Deliver m from `from` to `to` after a sampled latency, unless either
  /// endpoint is down at send or delivery time, the pair is partitioned,
  /// or the message is dropped.
  void Send(NodeId from, NodeId to, const Message& m);

  void Crash(NodeId node);
  void Recover(NodeId node);
  bool IsUp(NodeId node) const;
  /// Bitmask of currently up nodes (node i -> bit i; node count <= 64).
  std::uint64_t UpMask() const;

  /// Split the network into {nodes with bit set} vs the rest. Messages
  /// across the cut are dropped until Heal().
  void Partition(std::uint64_t side_mask);
  void Heal();

  std::uint64_t MessagesSent() const { return sent_; }
  std::uint64_t MessagesDelivered() const { return delivered_; }
  std::uint64_t MessagesDropped() const { return dropped_; }

 private:
  bool Reachable(NodeId from, NodeId to) const;

  Simulator* sim_;
  LatencyModel latency_;
  double drop_probability_;
  Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<std::uint8_t> up_;
  bool partitioned_ = false;
  std::uint64_t partition_side_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace qcnt::sim
