#include "sim/store.hpp"

#include "common/check.hpp"

namespace qcnt::sim {

Replica::Replica(Network& net, NodeId id) : net_(&net), id_(id) {
  net.SetHandler(id, [this](NodeId from, const Message& m) {
    OnMessage(from, m);
  });
}

void Replica::OnMessage(NodeId from, const Message& m) {
  Message reply;
  reply.op = m.op;
  switch (m.kind) {
    case Message::Kind::kReadReq:
      reply.kind = Message::Kind::kReadResp;
      reply.version = version_;
      reply.value = value_;
      reply.generation = generation_;
      reply.config_id = config_id_;
      break;
    case Message::Kind::kWriteReq:
      // Versions are monotone; concurrent writers race benignly (the
      // automaton layer proves the serial semantics, the simulator measures
      // performance).
      if (m.version > version_ ||
          (m.version == version_ && m.value >= value_)) {
        version_ = m.version;
        value_ = m.value;
      }
      reply.kind = Message::Kind::kWriteAck;
      break;
    case Message::Kind::kConfigWriteReq:
      if (m.generation >= generation_) {
        generation_ = m.generation;
        config_id_ = m.config_id;
      }
      reply.kind = Message::Kind::kConfigWriteAck;
      break;
    default:
      return;  // replicas ignore responses
  }
  net_->Send(id_, from, reply);
}

QuorumStoreClient::QuorumStoreClient(Simulator& sim, Network& net, NodeId id,
                                     std::vector<quorum::QuorumSystem> configs,
                                     std::uint32_t initial_config,
                                     Options options)
    : sim_(&sim),
      net_(&net),
      id_(id),
      configs_(std::move(configs)),
      options_(options),
      config_id_(initial_config) {
  QCNT_CHECK(initial_config < configs_.size());
  net.SetHandler(id, [this](NodeId from, const Message& m) {
    OnMessage(from, m);
  });
}

std::uint64_t QuorumStoreClient::ReplicaCount() const {
  return configs_.front().n;
}

void QuorumStoreClient::Broadcast(const Message& m,
                                  const std::optional<quorum::Quorum>& only) {
  if (only) {
    for (ReplicaId r : *only) net_->Send(id_, r, m);
    return;
  }
  for (NodeId r = 0; r < ReplicaCount(); ++r) net_->Send(id_, r, m);
}

void QuorumStoreClient::Read(Callback done) {
  const std::uint64_t op_id = next_op_++;
  Op op;
  op.kind = OpKind::kRead;
  op.start = sim_->Now();
  op.messages_before = net_->MessagesSent();
  op.done = std::move(done);
  op.best_config = config_id_;
  op.best_generation = generation_;
  ops_.emplace(op_id, std::move(op));
  StartReadPhase(op_id);
}

void QuorumStoreClient::Write(std::int64_t value, Callback done) {
  const std::uint64_t op_id = next_op_++;
  Op op;
  op.kind = OpKind::kWrite;
  op.start = sim_->Now();
  op.messages_before = net_->MessagesSent();
  op.done = std::move(done);
  op.best_config = config_id_;
  op.best_generation = generation_;
  op.write_value = value;
  ops_.emplace(op_id, std::move(op));
  StartReadPhase(op_id);
}

void QuorumStoreClient::Reconfigure(std::uint32_t target, Callback done) {
  QCNT_CHECK(target < configs_.size());
  const std::uint64_t op_id = next_op_++;
  Op op;
  op.kind = OpKind::kReconfigure;
  op.start = sim_->Now();
  op.messages_before = net_->MessagesSent();
  op.done = std::move(done);
  op.best_config = config_id_;
  op.best_generation = generation_;
  op.target_config = target;
  ops_.emplace(op_id, std::move(op));
  StartReadPhase(op_id);
}

void QuorumStoreClient::SendReadRequests(std::uint64_t op_id) {
  Message req;
  req.kind = Message::Kind::kReadReq;
  req.op = op_id;
  std::optional<quorum::Quorum> targets;
  if (options_.targeted) {
    const std::uint64_t all =
        ReplicaCount() == 64 ? ~0ull : ((1ull << ReplicaCount()) - 1);
    targets = configs_[config_id_].pick_read(all);
  }
  Broadcast(req, targets);
}

void QuorumStoreClient::ScheduleRetransmit(std::uint64_t op_id) {
  if (options_.retransmit_interval <= 0.0) return;
  sim_->After(options_.retransmit_interval, [this, op_id] {
    auto it = ops_.find(op_id);
    if (it == ops_.end() || it->second.finished) return;
    if (it->second.phase == Phase::kReadPhase) {
      SendReadRequests(op_id);
    } else {
      SendWriteRequests(op_id);
    }
    ScheduleRetransmit(op_id);
  });
}

void QuorumStoreClient::StartReadPhase(std::uint64_t op_id) {
  SendReadRequests(op_id);
  ScheduleRetransmit(op_id);
  sim_->After(options_.timeout, [this, op_id] {
    auto it = ops_.find(op_id);
    if (it != ops_.end() && !it->second.finished) Finish(op_id, false);
  });
}

void QuorumStoreClient::OnMessage(NodeId from, const Message& m) {
  auto it = ops_.find(m.op);
  if (it == ops_.end() || it->second.finished) return;
  Op& op = it->second;
  switch (m.kind) {
    case Message::Kind::kReadResp: {
      // The Section-3 write-TM guard, in protocol form: once the write
      // phase has begun, read responses (which may already echo our own
      // write) must not advance the discovered version.
      if (op.phase != Phase::kReadPhase) break;
      const bool first = op.responded == 0;
      op.responded |= 1ull << from;
      if (first || m.version > op.best_version ||
          (m.version == op.best_version && m.value > op.best_value)) {
        op.best_version = m.version;
        op.best_value = m.value;
      }
      if (m.generation > op.best_generation) {
        op.best_generation = m.generation;
        op.best_config = m.config_id;
      }
      // Client-level configuration adoption.
      if (m.generation > generation_) {
        generation_ = m.generation;
        config_id_ = m.config_id;
      }
      if (op.phase == Phase::kReadPhase &&
          configs_[op.best_config].has_read(op.responded)) {
        if (op.kind == OpKind::kRead) {
          Finish(m.op, true);
        } else {
          EnterWritePhase(m.op);
        }
      }
      break;
    }
    case Message::Kind::kWriteAck:
      op.acked |= 1ull << from;
      MaybeFinish(m.op);
      break;
    case Message::Kind::kConfigWriteAck:
      op.config_acked |= 1ull << from;
      MaybeFinish(m.op);
      break;
    default:
      break;
  }
}

void QuorumStoreClient::EnterWritePhase(std::uint64_t op_id) {
  ops_.at(op_id).phase = Phase::kWritePhase;
  SendWriteRequests(op_id);
}

void QuorumStoreClient::SendWriteRequests(std::uint64_t op_id) {
  Op& op = ops_.at(op_id);
  const std::uint64_t all =
      ReplicaCount() == 64 ? ~0ull : ((1ull << ReplicaCount()) - 1);

  if (op.kind == OpKind::kWrite) {
    Message w;
    w.kind = Message::Kind::kWriteReq;
    w.op = op_id;
    w.version = op.best_version + 1;
    w.value = op.write_value;
    std::optional<quorum::Quorum> targets;
    if (options_.targeted) targets = configs_[op.best_config].pick_write(all);
    Broadcast(w, targets);
    return;
  }

  // Reconfiguration: data to a write-quorum of the target configuration,
  // stamp to a write-quorum of the old configuration.
  Message data;
  data.kind = Message::Kind::kWriteReq;
  data.op = op_id;
  data.version = op.best_version;
  data.value = op.best_value;
  std::optional<quorum::Quorum> data_targets;
  if (options_.targeted) {
    data_targets = configs_[op.target_config].pick_write(all);
  }
  Broadcast(data, data_targets);

  Message cfg;
  cfg.kind = Message::Kind::kConfigWriteReq;
  cfg.op = op_id;
  cfg.generation = op.best_generation + 1;
  cfg.config_id = op.target_config;
  std::optional<quorum::Quorum> cfg_targets;
  if (options_.targeted) {
    cfg_targets = configs_[op.best_config].pick_write(all);
  }
  Broadcast(cfg, cfg_targets);
}

void QuorumStoreClient::MaybeFinish(std::uint64_t op_id) {
  Op& op = ops_.at(op_id);
  if (op.phase != Phase::kWritePhase) return;
  if (op.kind == OpKind::kWrite) {
    if (configs_[op.best_config].has_write(op.acked)) Finish(op_id, true);
    return;
  }
  if (op.kind == OpKind::kReconfigure &&
      configs_[op.target_config].has_write(op.acked) &&
      configs_[op.best_config].has_write(op.config_acked)) {
    // The client adopts the configuration it just installed.
    if (op.best_generation + 1 > generation_) {
      generation_ = op.best_generation + 1;
      config_id_ = op.target_config;
    }
    Finish(op_id, true);
  }
}

void QuorumStoreClient::Finish(std::uint64_t op_id, bool ok) {
  auto it = ops_.find(op_id);
  QCNT_CHECK(it != ops_.end());
  Op& op = it->second;
  op.finished = true;
  OpResult result;
  result.ok = ok;
  result.value = op.best_value;
  result.latency = sim_->Now() - op.start;
  result.messages = net_->MessagesSent() - op.messages_before;
  Callback done = std::move(op.done);
  ops_.erase(it);
  if (done) done(result);
}

Deployment::Deployment(std::size_t replica_count, std::size_t client_count,
                       std::vector<quorum::QuorumSystem> configs,
                       std::uint32_t initial_config, LatencyModel latency,
                       double drop_probability, std::uint64_t seed,
                       QuorumStoreClient::Options client_options)
    : net(sim, replica_count + client_count, latency, drop_probability,
          seed) {
  for (std::size_t r = 0; r < replica_count; ++r) {
    replicas.push_back(
        std::make_unique<Replica>(net, static_cast<NodeId>(r)));
  }
  for (std::size_t c = 0; c < client_count; ++c) {
    clients.push_back(std::make_unique<QuorumStoreClient>(
        sim, net, static_cast<NodeId>(replica_count + c), configs,
        initial_config, client_options));
  }
}

}  // namespace qcnt::sim
