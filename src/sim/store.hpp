// A quorum-replicated store over the simulated network.
//
// This is the "practical systems" counterpart of the automaton model: the
// read-/write-/reconfigure-TM state machines re-expressed as asynchronous
// RPC protocols. Replicas hold (version, value) and (generation, config);
// clients perform logical reads (collect a read-quorum of versioned
// responses, return the freshest), logical writes (version discovery via a
// read-quorum, then install version+1 at a write-quorum), and Gifford
// reconfigurations (read phase, write data to a write-quorum of the new
// configuration, write the new (config, generation+1) stamp to a
// write-quorum of the old one). The set of configurations that can ever be
// installed is known statically (as in the automaton layer) and shared as a
// table; messages carry table indices.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>

#include "quorum/strategies.hpp"
#include "sim/network.hpp"

namespace qcnt::sim {

/// Replica process: node ids [0, n) on the network.
class Replica {
 public:
  Replica(Network& net, NodeId id);

  std::uint64_t Version() const { return version_; }
  std::int64_t Value() const { return value_; }
  std::uint64_t Generation() const { return generation_; }
  std::uint32_t ConfigId() const { return config_id_; }

 private:
  void OnMessage(NodeId from, const Message& m);

  Network* net_;
  NodeId id_;
  std::uint64_t version_ = 0;
  std::int64_t value_ = 0;
  std::uint64_t generation_ = 0;
  std::uint32_t config_id_ = 0;
};

/// Outcome of one logical operation.
struct OpResult {
  bool ok = false;
  std::int64_t value = 0;      // for reads
  Time latency = 0.0;          // completion - start
  std::uint64_t messages = 0;  // network sends attributable to the op
};

class QuorumStoreClient {
 public:
  using Callback = std::function<void(const OpResult&)>;

  struct Options {
    /// Per-operation deadline; the op fails when it expires.
    Time timeout = 1000.0;
    /// Send requests only to a picked quorum (plus the client's best guess
    /// of liveness) instead of broadcasting to every replica.
    bool targeted = false;
    /// When > 0, re-send the current phase's requests every interval until
    /// the operation finishes (handles message drops; all requests are
    /// idempotent at the replicas).
    Time retransmit_interval = 0.0;
  };

  /// `configs` is the table of installable configurations; replicas and
  /// clients refer to entries by index. Entry `initial_config` is in force
  /// at generation 0. The client is node `id` (>= replica count).
  QuorumStoreClient(Simulator& sim, Network& net, NodeId id,
                    std::vector<quorum::QuorumSystem> configs,
                    std::uint32_t initial_config, Options options);

  /// Current configuration the client believes in (highest generation seen).
  std::uint32_t BelievedConfig() const { return config_id_; }
  std::uint64_t BelievedGeneration() const { return generation_; }

  void Read(Callback done);
  void Write(std::int64_t value, Callback done);
  /// Install configs[target] (must be an index into the table).
  void Reconfigure(std::uint32_t target, Callback done);

 private:
  enum class Phase : std::uint8_t { kReadPhase, kWritePhase };
  enum class OpKind : std::uint8_t { kRead, kWrite, kReconfigure };

  struct Op {
    OpKind kind;
    Phase phase = Phase::kReadPhase;
    Time start = 0.0;
    std::uint64_t messages_before = 0;
    Callback done;
    // Read-phase accumulation.
    std::uint64_t responded = 0;  // replica bitmask
    std::uint64_t best_version = 0;
    std::int64_t best_value = 0;
    std::uint64_t best_generation = 0;
    std::uint32_t best_config = 0;
    // Write-phase accumulation.
    std::uint64_t acked = 0;
    std::uint64_t config_acked = 0;
    std::int64_t write_value = 0;    // value being installed
    std::uint32_t target_config = 0;  // for reconfigure
    bool finished = false;
  };

  std::uint64_t ReplicaCount() const;
  void OnMessage(NodeId from, const Message& m);
  void StartReadPhase(std::uint64_t op_id);
  void SendReadRequests(std::uint64_t op_id);
  void EnterWritePhase(std::uint64_t op_id);
  void SendWriteRequests(std::uint64_t op_id);
  void ScheduleRetransmit(std::uint64_t op_id);
  void MaybeFinish(std::uint64_t op_id);
  void Finish(std::uint64_t op_id, bool ok);
  void Broadcast(const Message& m, const std::optional<quorum::Quorum>& only);

  Simulator* sim_;
  Network* net_;
  NodeId id_;
  std::vector<quorum::QuorumSystem> configs_;
  Options options_;
  // Believed configuration (updated from responses).
  std::uint32_t config_id_;
  std::uint64_t generation_ = 0;
  std::uint64_t next_op_ = 1;
  std::unordered_map<std::uint64_t, Op> ops_;
};

/// A complete single-item simulated deployment: n replicas plus clients.
struct Deployment {
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<Replica>> replicas;
  std::vector<std::unique_ptr<QuorumStoreClient>> clients;

  Deployment(std::size_t replica_count, std::size_t client_count,
             std::vector<quorum::QuorumSystem> configs,
             std::uint32_t initial_config, LatencyModel latency,
             double drop_probability, std::uint64_t seed,
             QuorumStoreClient::Options client_options = {});
};

}  // namespace qcnt::sim
