// Discrete-event simulator.
//
// The paper evaluates nothing empirically; our quantitative experiments
// (DESIGN.md E7/E9/E11) need a substrate with message latency, crashes and
// partitions. This simulator is deterministic given a seed: events fire in
// (time, insertion-sequence) order, so runs are exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

namespace qcnt::sim {

/// Simulated time in milliseconds.
using Time = double;

inline constexpr Time kForever = std::numeric_limits<Time>::infinity();

class Simulator {
 public:
  Simulator() = default;

  Time Now() const { return now_; }

  /// Schedule fn at absolute time t (>= Now()).
  void At(Time t, std::function<void()> fn);

  /// Schedule fn after a delay (>= 0) from Now().
  void After(Time delay, std::function<void()> fn);

  /// Execute the next event, if any. Returns false when the queue is empty.
  bool Step();

  /// Run until the queue empties or simulated time exceeds `until`.
  void Run(Time until = kForever);

  std::size_t PendingEvents() const { return queue_.size(); }
  std::uint64_t ExecutedEvents() const { return executed_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;  // tie-break: FIFO among simultaneous events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace qcnt::sim
