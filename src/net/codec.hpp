// Binary wire codec for runtime messages.
//
// Frame layout (all integers little-endian):
//
//   ┌─────────┬─────────┬─────────────┬─────────┬──────────────────┐
//   │ magic   │ version │ payload_len │ crc32   │ payload          │
//   │ u32     │ u8      │ u32         │ u32     │ payload_len bytes│
//   └─────────┴─────────┴─────────────┴─────────┴──────────────────┘
//
//   payload := from u32 · to u32 · kind u8 · op u64 · version u64
//            · value u64 (two's complement) · generation u64
//            · config_id u32 · key (u32 len · bytes)
//            · batch_count u32 · batch_count × entry
//            · has_config u8 · [config]
//   entry   := op u64 · version u64 · value u64 · key (u32 len · bytes)
//   config  := strategy_kind u8 · a u32 · b u32
//            · read_threshold u32 · write_threshold u32
//            · vote_count u32 · vote_count × u32
//            · member_count u32 · member_count × u32
//
// has_config must be 0 or 1 (anything else is kMalformed); when 1, the
// config section describes the configuration `config_id` names — member
// node ids plus the quorum strategy over them — so a process that never
// saw the coordinator's ConfigTable::Append can still install it. A
// strategy_kind beyond kMaxStrategyKind is kMalformed: the CRC proves
// the bytes arrived intact, so an unknown kind is a version skew or an
// attack, and guessing a quorum system is how split-brain starts.
//
// The CRC covers the payload only; magic/version/length are validated
// structurally. A frame is self-delimiting, so a TCP byte stream is
// decoded by repeatedly calling DecodeFrame on the unconsumed prefix:
// kNeedMore means "wait for more bytes", every other non-kOk status is a
// protocol violation and the caller must drop the connection (there is no
// way to resynchronize a corrupt length-prefixed stream).
//
// Versioning: kWireVersion bumps whenever the payload layout changes;
// a decoder rejects frames from a different version (kBadVersion) rather
// than guessing. Oversized frames (payload_len > max) are rejected before
// any allocation, so a corrupt or hostile length cannot balloon memory.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/message.hpp"

namespace qcnt::net {

using runtime::NodeId;
using runtime::RtMessage;

inline constexpr std::uint32_t kFrameMagic = 0x544E4351u;  // "QCNT"
/// v2: membership-change kinds (kCatchupReq/kCatchupChunk/kCatchupDone/
/// kJoinReq) joined the kind space. Field layout is unchanged, but a v1
/// decoder would mis-reject the new kinds, so the version bumps.
/// v3: trailing has_config u8 + optional config section (member list +
/// strategy descriptor) — config writes and fence NACKs are
/// self-describing across processes.
inline constexpr std::uint8_t kWireVersion = 3;
/// magic(4) + version(1) + payload_len(4) + crc32(4).
inline constexpr std::size_t kFrameHeaderBytes = 13;
/// Default ceiling on payload_len. Generous: the largest legitimate frame
/// is a batch of max_batch ops with long keys, a few KiB.
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

enum class DecodeStatus : std::uint8_t {
  kOk,
  /// The buffer holds a valid prefix of a frame; read more bytes.
  kNeedMore,
  kBadMagic,
  kBadVersion,
  /// payload_len exceeds the caller's ceiling.
  kOversized,
  kCrcMismatch,
  /// Payload CRC is valid but the kind byte names no known message.
  kUnknownKind,
  /// Payload CRC is valid but the field structure is inconsistent
  /// (a length runs past the payload, or trailing bytes remain).
  kMalformed,
};

const char* ToString(DecodeStatus status);

/// One routed message as it crosses the wire: the envelope sender plus
/// the destination node (a TCP connection is shared by every node pair
/// between two processes, so frames carry their own routing).
struct WireFrame {
  NodeId from = 0;
  NodeId to = 0;
  RtMessage msg;
};

/// Append the encoded frame to `out`. `out` is not cleared — the event
/// loop encodes straight onto a peer's pending write buffer, and a
/// caller reusing one vector across frames amortizes allocation.
void EncodeFrame(const WireFrame& frame, std::vector<std::uint8_t>& out);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  /// Bytes consumed from the buffer; nonzero only when status == kOk.
  std::size_t consumed = 0;
  /// Valid only when status == kOk.
  WireFrame frame;
};

/// Decode one frame from the front of `data`. Never throws, never reads
/// past `size`, never allocates more than the decoded frame itself.
DecodeResult DecodeFrame(const std::uint8_t* data, std::size_t size,
                         std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace qcnt::net
