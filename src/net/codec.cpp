#include "net/codec.hpp"

#include <cstring>

#include "storage/crc32.hpp"

namespace qcnt::net {

namespace {

using runtime::BatchEntry;

constexpr std::uint8_t kMaxKind =
    static_cast<std::uint8_t>(RtMessage::Kind::kJoinReq);

void PutU8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

void PutString(std::vector<std::uint8_t>& out, const std::string& s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounded little-endian reader over the payload. Every Get checks the
/// remaining length and latches `ok = false` on underrun, so the decode
/// path needs exactly one error check at the end.
struct Reader {
  const std::uint8_t* p;
  std::size_t left;
  bool ok = true;

  std::uint8_t U8() {
    if (left < 1) return Fail();
    --left;
    return *p++;
  }
  std::uint32_t U32() {
    if (left < 4) return Fail();
    const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                            static_cast<std::uint32_t>(p[1]) << 8 |
                            static_cast<std::uint32_t>(p[2]) << 16 |
                            static_cast<std::uint32_t>(p[3]) << 24;
    p += 4;
    left -= 4;
    return v;
  }
  std::uint64_t U64() {
    const std::uint64_t lo = U32();
    const std::uint64_t hi = U32();
    return lo | hi << 32;
  }
  std::string String() {
    const std::uint32_t n = U32();
    if (!ok || left < n) {
      Fail();
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return s;
  }

 private:
  std::uint8_t Fail() {
    ok = false;
    left = 0;
    return 0;
  }
};

std::uint32_t ReadHeaderU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

const char* ToString(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kNeedMore:
      return "need-more";
    case DecodeStatus::kBadMagic:
      return "bad-magic";
    case DecodeStatus::kBadVersion:
      return "bad-version";
    case DecodeStatus::kOversized:
      return "oversized";
    case DecodeStatus::kCrcMismatch:
      return "crc-mismatch";
    case DecodeStatus::kUnknownKind:
      return "unknown-kind";
    case DecodeStatus::kMalformed:
      return "malformed";
  }
  return "unknown";
}

void EncodeFrame(const WireFrame& frame, std::vector<std::uint8_t>& out) {
  const std::size_t header_at = out.size();
  PutU32(out, kFrameMagic);
  PutU8(out, kWireVersion);
  PutU32(out, 0);  // payload_len, patched below
  PutU32(out, 0);  // crc32, patched below

  const std::size_t payload_at = out.size();
  PutU32(out, frame.from);
  PutU32(out, frame.to);
  PutU8(out, static_cast<std::uint8_t>(frame.msg.kind));
  PutU64(out, frame.msg.op);
  PutU64(out, frame.msg.version);
  PutU64(out, static_cast<std::uint64_t>(frame.msg.value));
  PutU64(out, frame.msg.generation);
  PutU32(out, frame.msg.config_id);
  PutString(out, frame.msg.key);
  PutU32(out, static_cast<std::uint32_t>(frame.msg.batch.size()));
  for (const BatchEntry& e : frame.msg.batch) {
    PutU64(out, e.op);
    PutU64(out, e.version);
    PutU64(out, static_cast<std::uint64_t>(e.value));
    PutString(out, e.key);
  }
  PutU8(out, frame.msg.config.has_value() ? 1 : 0);
  if (frame.msg.config) {
    const runtime::ConfigPayload& c = *frame.msg.config;
    PutU8(out, static_cast<std::uint8_t>(c.descriptor.kind));
    PutU32(out, c.descriptor.a);
    PutU32(out, c.descriptor.b);
    PutU32(out, c.descriptor.read_threshold);
    PutU32(out, c.descriptor.write_threshold);
    PutU32(out, static_cast<std::uint32_t>(c.descriptor.votes.size()));
    for (std::uint32_t v : c.descriptor.votes) PutU32(out, v);
    PutU32(out, static_cast<std::uint32_t>(c.members.size()));
    for (NodeId m : c.members) PutU32(out, m);
  }

  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(out.size() - payload_at);
  const std::uint32_t crc =
      storage::Crc32(out.data() + payload_at, payload_len);
  std::uint8_t* header = out.data() + header_at;
  header[5] = static_cast<std::uint8_t>(payload_len);
  header[6] = static_cast<std::uint8_t>(payload_len >> 8);
  header[7] = static_cast<std::uint8_t>(payload_len >> 16);
  header[8] = static_cast<std::uint8_t>(payload_len >> 24);
  header[9] = static_cast<std::uint8_t>(crc);
  header[10] = static_cast<std::uint8_t>(crc >> 8);
  header[11] = static_cast<std::uint8_t>(crc >> 16);
  header[12] = static_cast<std::uint8_t>(crc >> 24);
}

DecodeResult DecodeFrame(const std::uint8_t* data, std::size_t size,
                         std::size_t max_frame_bytes) {
  DecodeResult r;
  if (size < kFrameHeaderBytes) {
    // Whatever bytes are present, validate them as far as they go: a
    // stream that opens with a wrong magic is corrupt now, not after
    // more bytes arrive.
    for (std::size_t i = 0; i < size && i < 4; ++i) {
      if (data[i] != static_cast<std::uint8_t>(kFrameMagic >> (8 * i))) {
        r.status = DecodeStatus::kBadMagic;
        return r;
      }
    }
    if (size >= 5 && data[4] != kWireVersion) {
      r.status = DecodeStatus::kBadVersion;
      return r;
    }
    r.status = DecodeStatus::kNeedMore;
    return r;
  }
  if (ReadHeaderU32(data) != kFrameMagic) {
    r.status = DecodeStatus::kBadMagic;
    return r;
  }
  if (data[4] != kWireVersion) {
    r.status = DecodeStatus::kBadVersion;
    return r;
  }
  const std::uint32_t payload_len = ReadHeaderU32(data + 5);
  if (payload_len > max_frame_bytes) {
    r.status = DecodeStatus::kOversized;
    return r;
  }
  if (size < kFrameHeaderBytes + payload_len) {
    r.status = DecodeStatus::kNeedMore;
    return r;
  }
  const std::uint32_t want_crc = ReadHeaderU32(data + 9);
  const std::uint8_t* payload = data + kFrameHeaderBytes;
  if (storage::Crc32(payload, payload_len) != want_crc) {
    r.status = DecodeStatus::kCrcMismatch;
    return r;
  }

  Reader in{payload, payload_len};
  r.frame.from = in.U32();
  r.frame.to = in.U32();
  const std::uint8_t kind = in.U8();
  if (in.ok && kind > kMaxKind) {
    r.status = DecodeStatus::kUnknownKind;
    return r;
  }
  r.frame.msg.kind = static_cast<RtMessage::Kind>(kind);
  r.frame.msg.op = in.U64();
  r.frame.msg.version = in.U64();
  r.frame.msg.value = static_cast<std::int64_t>(in.U64());
  r.frame.msg.generation = in.U64();
  r.frame.msg.config_id = in.U32();
  r.frame.msg.key = in.String();
  const std::uint32_t batch_count = in.U32();
  // Entries are ≥ 28 bytes each; bounding the reserve by what the payload
  // could actually hold keeps a corrupt count from allocating gigabytes.
  if (in.ok && batch_count <= in.left / 28) {
    r.frame.msg.batch.reserve(batch_count);
  }
  for (std::uint32_t i = 0; in.ok && i < batch_count; ++i) {
    BatchEntry e;
    e.op = in.U64();
    e.version = in.U64();
    e.value = static_cast<std::int64_t>(in.U64());
    e.key = in.String();
    r.frame.msg.batch.push_back(std::move(e));
  }
  const std::uint8_t has_config = in.U8();
  if (in.ok && has_config > 1) {
    r.status = DecodeStatus::kMalformed;
    r.frame = WireFrame{};
    return r;
  }
  if (in.ok && has_config == 1) {
    runtime::ConfigPayload c;
    const std::uint8_t strategy_kind = in.U8();
    // CRC already proved the bytes intact: an out-of-range kind is
    // version skew or hostile, and guessing a quorum system risks
    // non-intersecting quorums. Reject the frame.
    if (in.ok && strategy_kind > quorum::kMaxStrategyKind) {
      r.status = DecodeStatus::kMalformed;
      r.frame = WireFrame{};
      return r;
    }
    c.descriptor.kind = static_cast<quorum::StrategyKind>(strategy_kind);
    c.descriptor.a = in.U32();
    c.descriptor.b = in.U32();
    c.descriptor.read_threshold = in.U32();
    c.descriptor.write_threshold = in.U32();
    const std::uint32_t vote_count = in.U32();
    // 4 bytes per vote: a hostile count larger than the remaining
    // payload could hold must not allocate.
    if (!in.ok || vote_count > in.left / 4) {
      r.status = DecodeStatus::kMalformed;
      r.frame = WireFrame{};
      return r;
    }
    c.descriptor.votes.reserve(vote_count);
    for (std::uint32_t i = 0; in.ok && i < vote_count; ++i) {
      c.descriptor.votes.push_back(in.U32());
    }
    const std::uint32_t member_count = in.U32();
    if (!in.ok || member_count > in.left / 4) {
      r.status = DecodeStatus::kMalformed;
      r.frame = WireFrame{};
      return r;
    }
    c.members.reserve(member_count);
    for (std::uint32_t i = 0; in.ok && i < member_count; ++i) {
      c.members.push_back(in.U32());
    }
    r.frame.msg.config = std::move(c);
  }
  if (!in.ok || in.left != 0) {
    r.status = DecodeStatus::kMalformed;
    r.frame = WireFrame{};
    return r;
  }
  r.status = DecodeStatus::kOk;
  r.consumed = kFrameHeaderBytes + payload_len;
  return r;
}

}  // namespace qcnt::net
