// TCP transport: the runtime's messages over real sockets.
//
// One TcpTransport instance serves one OS process and hosts a subset of
// the node universe (one replica, or a handful of clients, or — for the
// single-process loopback benchmark — every node). Each hosted node gets
// a listening socket; every frame carries its own (from, to) routing, so
// one connection per *destination process-port* is shared by all local
// senders.
//
// Architecture (DESIGN.md §10):
//
//   Send(from, to, m)                    event-loop thread
//   ───────────────────┐                 ┌──────────────────────────────
//   encode frame onto  │   wake pipe     │ poll() over listeners, peer
//   peer's write queue ├────────────────▶│ connections, wake pipe
//   (reusable buffer)  │                 │  · flush write queues
//   ───────────────────┘                 │  · read + decode frames,
//                                        │    Push into local mailboxes
//                                        │  · run per-peer reconnect
//                                        │    state machines (backoff)
//
// Per-peer connection state machine:
//
//   kIdle ──send──▶ kConnecting ──writable+SO_ERROR==0──▶ kConnected
//     ▲                  │ error                              │ EOF/error
//     └── queue empty ── kBackoff ◀───────────────────────────┘
//                          │ retry_at elapsed (exponential, capped)
//                          └────────▶ kConnecting
//
// Delivery semantics match the Transport contract: at-most-once, FIFO
// per peer (one ordered byte stream), up-check at dispatch time (a frame
// for a crashed local node is dropped; one that arrives after Recover is
// delivered — the same straggler rule the Bus documents). Sends while a
// peer is unreachable are buffered up to max_write_queue_bytes, then
// dropped and counted: the quorum layer's retries own end-to-end
// delivery, the transport only owns best-effort ordered streams.
//
// Fault injection (FaultPlan, partitions) is deliberately absent — that
// is the in-process Bus's job; on TCP, the network itself is the fault
// injector. Configuring faults on a TCP-backed store throws
// TransportConfigError (see store.cpp).
#pragma once

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/codec.hpp"
#include "net/error.hpp"
#include "net/transport.hpp"

namespace qcnt::net {

struct Endpoint {
  /// Numeric IPv4 literal ("127.0.0.1"), numeric IPv6 literal ("::1"),
  /// or a hostname ("localhost") — resolution goes through getaddrinfo.
  std::string host = "127.0.0.1";
  /// 0 means: for a hosted node, "bind an ephemeral port" (read the
  /// result back via ActualEndpoint); for a remote node, "not yet known"
  /// (supply it via SetPeerEndpoint before traffic can flow).
  std::uint16_t port = 0;
};

/// A resolved socket address, family-agnostic (AF_INET or AF_INET6).
struct ResolvedAddr {
  int family = AF_UNSPEC;
  socklen_t len = 0;
  sockaddr_storage addr{};
};

/// Resolve host:port through getaddrinfo — numeric IPv4/IPv6 literals
/// and hostnames alike; the first result wins. `passive` requests an
/// address suitable for bind(2). On failure returns nullopt and, when
/// `error` is non-null, stores the resolver's diagnostic. Numeric
/// literals never block; hostname lookups may (the transport only
/// resolves on bind and on (re)connect, never per frame).
std::optional<ResolvedAddr> ResolveEndpoint(const std::string& host,
                                            std::uint16_t port, bool passive,
                                            std::string* error = nullptr);

struct TcpTransportOptions {
  /// Endpoint per node id; index == NodeId. Fixed-port deployments
  /// (multi-process) assign port_base + id; single-process universes may
  /// leave every port 0 and let the kernel pick.
  std::vector<Endpoint> universe;
  /// Reconnect backoff: base doubles per consecutive failure, capped.
  std::chrono::milliseconds reconnect_base{5};
  std::chrono::milliseconds reconnect_max{500};
  /// Decoder ceiling per frame (see codec.hpp).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Cap on bytes buffered toward one unreachable peer before new sends
  /// are dropped (and counted) instead of growing without bound.
  std::size_t max_write_queue_bytes = 4u << 20;
  /// Universe capacity ceiling for membership change. All per-node state
  /// (peers, up-flags, mailbox slots) is pre-allocated to this size so
  /// AddLocalNode / a growing SetPeerEndpoint never reallocates under a
  /// concurrent sender. 0 means universe.size() + a default headroom.
  std::size_t max_nodes = 0;
};

/// Wire-level counters (what the sockets actually did), alongside the
/// Transport-level sent/dropped totals.
struct TcpStats {
  std::uint64_t frames_sent = 0;      // frames encoded onto a peer stream
  std::uint64_t frames_received = 0;  // frames decoded and dispatched
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t connects = 0;         // successful outbound connects
  std::uint64_t reconnect_attempts = 0;
  std::uint64_t decode_errors = 0;    // connections dropped on bad frames
  std::uint64_t backpressure_drops = 0;
  std::uint64_t unroutable_drops = 0;  // peer endpoint unknown (port 0)
};

class TcpTransport final : public Transport {
 public:
  /// Binds one listener per node in `local_nodes` and starts the event
  /// loop. Throws TransportIoError when a bind/listen fails.
  TcpTransport(TcpTransportOptions options, std::vector<NodeId> local_nodes);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // --- Transport ----------------------------------------------------------
  /// Logical universe size: construction-time nodes plus any added since.
  /// Slots in [NodeCount(), Capacity()) are pre-allocated but dark.
  std::size_t NodeCount() const override {
    return count_.load(std::memory_order_acquire);
  }
  std::size_t Capacity() const { return peers_.size(); }
  Mailbox& MailboxOf(NodeId node) override;
  bool Send(NodeId from, NodeId to, RtMessage msg) override;
  void Crash(NodeId node) override;
  void Recover(NodeId node) override;
  bool IsUp(NodeId node) const override;
  void SetCrashHook(NodeId node, std::function<void()> hook) override;
  void SetRecoverHook(NodeId node, std::function<void()> hook) override;
  void CloseAll() override;
  std::uint64_t MessagesSent() const override { return sent_.load(); }
  std::uint64_t MessagesDropped() const override { return dropped_.load(); }
  const char* Name() const override { return "tcp"; }

  // --- TCP-specific -------------------------------------------------------

  /// The endpoint a node is actually reachable at (ephemeral ports
  /// resolved for hosted nodes).
  Endpoint ActualEndpoint(NodeId node) const;

  /// Re-target a remote node (a restarted peer that came back on a new
  /// port, or an endpoint that was unknown at construction). Drops the
  /// current connection to the peer, if any; buffered frames carry over
  /// and flush after the next connect. A node id at or beyond NodeCount()
  /// (but within Capacity) is a *brand-new* peer joining the universe:
  /// the logical node count grows to include it.
  void SetPeerEndpoint(NodeId node, Endpoint endpoint);

  /// Host an additional node on this instance at runtime (membership
  /// change): binds a listener at `endpoint` (port 0 = ephemeral; read
  /// back via ActualEndpoint), creates the node's mailbox, marks it up,
  /// and grows the logical universe to include it. Throws
  /// TransportIoError when the bind fails. The id must be unhosted and
  /// within Capacity; ids between NodeCount() and `node` stay dark.
  void AddLocalNode(NodeId node, Endpoint endpoint);

  bool IsLocal(NodeId node) const;

  TcpStats WireStats() const;

 private:
  enum class PeerState : std::uint8_t {
    kIdle,        // no connection, nothing queued
    kConnecting,  // nonblocking connect in flight
    kConnected,
    kBackoff,     // connect failed / connection died; retry at retry_at
  };

  /// Outbound connection state machine toward one remote node.
  struct Peer {
    PeerState state = PeerState::kIdle;
    int fd = -1;
    /// Pending encoded frames; [out_off, size) is unsent. The vector is
    /// reused across flushes (cleared, capacity kept), so a steady-state
    /// sender allocates nothing per message.
    std::vector<std::uint8_t> outbuf;
    std::size_t out_off = 0;
    std::uint32_t failures = 0;  // consecutive, drives the backoff
    std::chrono::steady_clock::time_point retry_at{};
  };

  /// One accepted inbound connection (any remote process; frames carry
  /// their own routing, so inbound connections need no identity).
  struct Inbound {
    int fd = -1;
    std::vector<std::uint8_t> inbuf;
    std::size_t in_off = 0;  // decoded prefix, compacted periodically
  };

  void Loop();
  void WakeLoop();
  /// Bind + listen for `node` at universe_[node], resolving an ephemeral
  /// port back into the table. Returns the listening fd; throws
  /// TransportIoError on failure. Requires mu_ held (or pre-loop ctor).
  int BindListenerOrThrow(NodeId node);
  /// All helpers below require mu_ held (they run on the loop thread).
  void StartConnect(Peer& peer, NodeId node);
  void FailPeer(Peer& peer, bool count_attempt);
  void FlushPeer(Peer& peer);
  void AcceptAll(int listen_fd);
  /// Read + decode everything available; false = close the connection.
  bool DrainInbound(Inbound& in);
  void DispatchFrame(WireFrame frame);
  void CloseFd(int& fd);
  std::chrono::steady_clock::time_point NextRetryDeadline() const;

  // Every per-node container below is sized to Capacity() at construction
  // and never reallocated; membership growth only advances count_.
  TcpTransportOptions options_;
  std::vector<Endpoint> universe_;  // mutable copy (SetPeerEndpoint)
  std::vector<char> local_;         // 1 = hosted by this instance
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  // hosted nodes only
  std::vector<std::atomic<bool>> up_;
  std::atomic<std::size_t> count_{0};  // logical node count

  mutable std::mutex hooks_mu_;
  std::vector<std::function<void()>> crash_hooks_;
  std::vector<std::function<void()>> recover_hooks_;

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex mu_;  // guards peers_, inbound_, stats_, universe_
  std::vector<Peer> peers_;  // index == destination NodeId
  std::vector<char> retarget_;  // SetPeerEndpoint → loop handshake
  std::vector<Inbound> inbound_;
  TcpStats stats_;

  // Guarded by mu_ once the loop runs (AddLocalNode appends at runtime).
  std::vector<int> listen_fds_;        // parallel to hosted nodes
  std::vector<NodeId> listen_nodes_;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_{false};
  std::thread loop_;
};

}  // namespace qcnt::net
