#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/check.hpp"

namespace qcnt::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
/// Compact an inbound buffer once the decoded prefix exceeds this.
constexpr std::size_t kCompactThreshold = 1 << 20;
/// Default universe-capacity headroom beyond the construction-time nodes
/// (see TcpTransportOptions::max_nodes).
constexpr std::size_t kGrowthHeadroom = 32;

std::size_t CapacityOf(const TcpTransportOptions& o) {
  const std::size_t want =
      o.max_nodes == 0 ? o.universe.size() + kGrowthHeadroom : o.max_nodes;
  return std::max(want, o.universe.size());
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  QCNT_CHECK(flags >= 0);
  QCNT_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void SetNoDelay(int fd) {
  // Quorum round trips are latency-bound small frames; Nagle would
  // serialize them behind delayed acks.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

ResolvedAddr ResolveOrThrow(const Endpoint& ep, bool passive) {
  std::string error;
  if (std::optional<ResolvedAddr> r =
          ResolveEndpoint(ep.host, ep.port, passive, &error)) {
    return *r;
  }
  throw TransportIoError("tcp transport: cannot resolve " + ep.host + ": " +
                         error);
}

std::uint16_t PortOf(const sockaddr_storage& ss) {
  if (ss.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6&>(ss).sin6_port);
  }
  return ntohs(reinterpret_cast<const sockaddr_in&>(ss).sin_port);
}

}  // namespace

std::optional<ResolvedAddr> ResolveEndpoint(const std::string& host,
                                            std::uint16_t port, bool passive,
                                            std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  // No AI_ADDRCONFIG: "::1" must resolve even on hosts whose only IPv6
  // address is loopback (common in containers), and numeric literals
  // should never depend on interface configuration.
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    if (error != nullptr) {
      *error = rc == EAI_SYSTEM ? std::strerror(errno) : ::gai_strerror(rc);
    }
    return std::nullopt;
  }
  ResolvedAddr out;
  out.family = res->ai_family;
  out.len = res->ai_addrlen;
  std::memcpy(&out.addr, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  return out;
}

TcpTransport::TcpTransport(TcpTransportOptions options,
                           std::vector<NodeId> local_nodes)
    : options_(std::move(options)),
      universe_(options_.universe),
      local_(CapacityOf(options_), 0),
      mailboxes_(CapacityOf(options_)),
      up_(CapacityOf(options_)),
      crash_hooks_(CapacityOf(options_)),
      recover_hooks_(CapacityOf(options_)),
      peers_(CapacityOf(options_)),
      retarget_(CapacityOf(options_), 0) {
  QCNT_CHECK_MSG(!universe_.empty(), "tcp transport: empty universe");
  QCNT_CHECK_MSG(!local_nodes.empty(), "tcp transport: no hosted nodes");
  const std::size_t nodes = universe_.size();
  universe_.resize(CapacityOf(options_));  // headroom slots: port 0, dark
  count_.store(nodes, std::memory_order_release);
  for (std::size_t i = 0; i < nodes; ++i) up_[i].store(true);
  for (NodeId node : local_nodes) {
    QCNT_CHECK(node < nodes);
    QCNT_CHECK_MSG(!local_[node], "tcp transport: duplicate hosted node");
    local_[node] = 1;
    mailboxes_[node] = std::make_unique<Mailbox>();
  }

  QCNT_CHECK(::pipe(wake_pipe_) == 0);
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);

  // Bind every hosted node's listener before the loop (and before the
  // constructor returns), so a single-process universe can immediately
  // connect node-to-node and a multi-process replica is reachable the
  // moment its constructor finishes.
  for (NodeId node : local_nodes) {
    const int fd = BindListenerOrThrow(node);
    listen_fds_.push_back(fd);
    listen_nodes_.push_back(node);
  }

  loop_ = std::thread([this] { Loop(); });
}

int TcpTransport::BindListenerOrThrow(NodeId node) {
  const ResolvedAddr addr = ResolveOrThrow(universe_[node], /*passive=*/true);
  const int fd = ::socket(addr.family, SOCK_STREAM, 0);
  if (fd < 0) throw TransportIoError("tcp transport: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr.addr), addr.len) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw TransportIoError("tcp transport: cannot listen on " +
                           universe_[node].host + ":" +
                           std::to_string(universe_[node].port) +
                           " for node " + std::to_string(node) + ": " +
                           std::strerror(err));
  }
  SetNonBlocking(fd);
  // Resolve an ephemeral bind back into the universe table.
  sockaddr_storage bound{};
  socklen_t len = sizeof(bound);
  QCNT_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
             0);
  universe_[node].port = PortOf(bound);
  return fd;
}

TcpTransport::~TcpTransport() {
  stop_.store(true);
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  for (int fd : listen_fds_) ::close(fd);
  for (Peer& p : peers_) CloseFd(p.fd);
  for (Inbound& in : inbound_) CloseFd(in.fd);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

Mailbox& TcpTransport::MailboxOf(NodeId node) {
  QCNT_CHECK(node < NodeCount());
  QCNT_CHECK_MSG(local_[node],
                 "tcp transport: mailbox of a node hosted elsewhere");
  return *mailboxes_[node];
}

bool TcpTransport::IsLocal(NodeId node) const {
  return node < local_.size() && local_[node] != 0;
}

bool TcpTransport::IsUp(NodeId node) const {
  QCNT_CHECK(node < NodeCount());
  // No failure detector for remote nodes: quorum timeouts are the
  // detector, exactly as in the paper's failure model.
  if (!local_[node]) return true;
  return up_[node].load();
}

bool TcpTransport::Send(NodeId from, NodeId to, RtMessage msg) {
  QCNT_CHECK(from < NodeCount() && to < NodeCount());
  QCNT_CHECK_MSG(local_[from], "tcp transport: send from a remote node");
  sent_.fetch_add(1, std::memory_order_relaxed);
  if (!up_[from].load()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (from == to) {
    // Degenerate self-send: no wire involved (mirrors the Bus).
    if (!up_[to].load()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    mailboxes_[to]->Push(Envelope{from, std::move(msg)});
    return true;
  }
  // Every cross-node message rides the wire, even when the destination
  // is hosted by this same instance: a loopback universe then measures
  // (and tests) the genuine codec + socket path.
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (universe_[to].port == 0) {
      ++stats_.unroutable_drops;
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Peer& peer = peers_[to];
    if (peer.outbuf.size() - peer.out_off >= options_.max_write_queue_bytes) {
      ++stats_.backpressure_drops;
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const bool was_empty = peer.outbuf.size() == peer.out_off;
    EncodeFrame(WireFrame{from, to, std::move(msg)}, peer.outbuf);
    ++stats_.frames_sent;
    // The loop needs a nudge when this peer had nothing pending (it may
    // be sleeping with no interest in the peer's fd) — not on every
    // frame of a burst.
    wake = was_empty || peer.state != PeerState::kConnected;
  }
  if (wake) WakeLoop();
  return true;
}

void TcpTransport::Crash(NodeId node) {
  QCNT_CHECK(node < NodeCount());
  QCNT_CHECK_MSG(local_[node], "tcp transport: crash of a remote node");
  up_[node].store(false);
  // Same contract as Bus::Crash: mark down first, then either hand the
  // backlog to the node's crash hook (which drains it at a deterministic
  // cut) or discard it here when no hook is installed.
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(hooks_mu_);
    hook = crash_hooks_[node];
  }
  if (hook) {
    hook();
  } else {
    mailboxes_[node]->Clear();
  }
}

void TcpTransport::Recover(NodeId node) {
  QCNT_CHECK(node < NodeCount());
  QCNT_CHECK_MSG(local_[node], "tcp transport: recover of a remote node");
  mailboxes_[node]->Reopen();
  up_[node].store(true);
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(hooks_mu_);
    hook = recover_hooks_[node];
  }
  if (hook) hook();
}

void TcpTransport::SetCrashHook(NodeId node, std::function<void()> hook) {
  QCNT_CHECK(node < NodeCount());
  QCNT_CHECK_MSG(local_[node], "tcp transport: crash hook on a remote node");
  std::lock_guard<std::mutex> lock(hooks_mu_);
  crash_hooks_[node] = std::move(hook);
}

void TcpTransport::SetRecoverHook(NodeId node, std::function<void()> hook) {
  QCNT_CHECK(node < NodeCount());
  QCNT_CHECK_MSG(local_[node],
                 "tcp transport: recover hook on a remote node");
  std::lock_guard<std::mutex> lock(hooks_mu_);
  recover_hooks_[node] = std::move(hook);
}

void TcpTransport::CloseAll() {
  for (std::size_t i = 0; i < mailboxes_.size(); ++i) {
    if (mailboxes_[i]) mailboxes_[i]->Close();
  }
}

Endpoint TcpTransport::ActualEndpoint(NodeId node) const {
  QCNT_CHECK(node < NodeCount());
  std::lock_guard<std::mutex> lock(mu_);
  return universe_[node];
}

void TcpTransport::SetPeerEndpoint(NodeId node, Endpoint endpoint) {
  QCNT_CHECK_MSG(node < peers_.size(),
                 "tcp transport: peer id beyond universe capacity");
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A brand-new peer (membership change): admit it into the logical
    // universe. Its slot — peer state machine, up flag, retarget flag —
    // was pre-allocated at construction, so no reader races a resize.
    if (node >= count_.load(std::memory_order_acquire)) {
      count_.store(static_cast<std::size_t>(node) + 1,
                   std::memory_order_release);
    }
    universe_[node] = std::move(endpoint);
    // The loop owns every fd: flag the peer and let the loop tear the
    // old connection down and redial (buffered frames carry over).
    retarget_[node] = 1;
  }
  WakeLoop();
}

void TcpTransport::AddLocalNode(NodeId node, Endpoint endpoint) {
  QCNT_CHECK_MSG(node < local_.size(),
                 "tcp transport: node id beyond universe capacity");
  {
    std::lock_guard<std::mutex> lock(mu_);
    QCNT_CHECK_MSG(!local_[node], "tcp transport: node already hosted");
    universe_[node] = std::move(endpoint);
    const int fd = BindListenerOrThrow(node);  // resolves ephemeral port
    local_[node] = 1;
    mailboxes_[node] = std::make_unique<Mailbox>();
    up_[node].store(true);
    if (node >= count_.load(std::memory_order_acquire)) {
      count_.store(static_cast<std::size_t>(node) + 1,
                   std::memory_order_release);
    }
    listen_fds_.push_back(fd);
    listen_nodes_.push_back(node);
  }
  WakeLoop();  // the loop re-snapshots listeners under mu_ each iteration
}

TcpStats TcpTransport::WireStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// --- Event loop -----------------------------------------------------------

void TcpTransport::WakeLoop() {
  const char byte = 1;
  // Nonblocking: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void TcpTransport::CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void TcpTransport::StartConnect(Peer& peer, NodeId node) {
  const std::optional<ResolvedAddr> addr = ResolveEndpoint(
      universe_[node].host, universe_[node].port, /*passive=*/false);
  if (!addr) {
    // Unresolvable peer (bad literal, DNS failure): backoff-retry like a
    // refused connect — the name may start resolving later.
    FailPeer(peer, /*count_attempt=*/true);
    return;
  }
  const int fd = ::socket(addr->family, SOCK_STREAM, 0);
  if (fd < 0) {
    FailPeer(peer, /*count_attempt=*/true);
    return;
  }
  SetNonBlocking(fd);
  SetNoDelay(fd);
  ++stats_.reconnect_attempts;
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr->addr),
                           addr->len);
  if (rc == 0) {
    peer.fd = fd;
    peer.state = PeerState::kConnected;
    peer.failures = 0;
    ++stats_.connects;
    FlushPeer(peer);
  } else if (errno == EINPROGRESS) {
    peer.fd = fd;
    peer.state = PeerState::kConnecting;
  } else {
    ::close(fd);
    FailPeer(peer, /*count_attempt=*/false);  // already counted above
  }
}

void TcpTransport::FailPeer(Peer& peer, bool count_attempt) {
  if (count_attempt) ++stats_.reconnect_attempts;
  CloseFd(peer.fd);
  peer.state = PeerState::kBackoff;
  peer.failures = std::min(peer.failures + 1, 20u);
  auto backoff = options_.reconnect_base * (1u << std::min(peer.failures - 1,
                                                           10u));
  backoff = std::min(backoff,
                     std::chrono::duration_cast<std::chrono::milliseconds>(
                         options_.reconnect_max));
  peer.retry_at = std::chrono::steady_clock::now() + backoff;
}

void TcpTransport::FlushPeer(Peer& peer) {
  while (peer.out_off < peer.outbuf.size()) {
    const ssize_t n =
        ::send(peer.fd, peer.outbuf.data() + peer.out_off,
               peer.outbuf.size() - peer.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      peer.out_off += static_cast<std::size_t>(n);
      stats_.bytes_sent += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    FailPeer(peer, /*count_attempt=*/false);
    return;
  }
  // Fully drained: recycle the buffer — capacity kept, so a steady-state
  // sender appends frames into already-allocated memory.
  peer.outbuf.clear();
  peer.out_off = 0;
}

void TcpTransport::AcceptAll(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN, or a raced-away connection
    SetNonBlocking(fd);
    SetNoDelay(fd);
    Inbound in;
    in.fd = fd;
    inbound_.push_back(std::move(in));
  }
}

bool TcpTransport::DrainInbound(Inbound& in) {
  for (;;) {
    const std::size_t old = in.inbuf.size();
    in.inbuf.resize(old + kReadChunk);
    const ssize_t n = ::recv(in.fd, in.inbuf.data() + old, kReadChunk, 0);
    if (n < 0) {
      in.inbuf.resize(old);
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (n == 0) {
      in.inbuf.resize(old);
      // Peer closed. Any complete frames already buffered were decoded
      // below on earlier iterations; a partial tail is a truncated frame
      // and dies with the connection.
      return false;
    }
    in.inbuf.resize(old + static_cast<std::size_t>(n));
    stats_.bytes_received += static_cast<std::uint64_t>(n);
    if (static_cast<std::size_t>(n) < kReadChunk) break;
  }
  // Decode every complete frame in the unconsumed region.
  for (;;) {
    DecodeResult r =
        DecodeFrame(in.inbuf.data() + in.in_off, in.inbuf.size() - in.in_off,
                    options_.max_frame_bytes);
    if (r.status == DecodeStatus::kOk) {
      ++stats_.frames_received;
      in.in_off += r.consumed;
      DispatchFrame(std::move(r.frame));
      continue;
    }
    if (r.status == DecodeStatus::kNeedMore) break;
    // Typed decode error: the stream cannot be resynchronized — drop the
    // connection (the sender will reconnect and retransmit at the quorum
    // layer's pace).
    ++stats_.decode_errors;
    return false;
  }
  if (in.in_off == in.inbuf.size()) {
    in.inbuf.clear();
    in.in_off = 0;
  } else if (in.in_off > kCompactThreshold) {
    in.inbuf.erase(in.inbuf.begin(),
                   in.inbuf.begin() + static_cast<std::ptrdiff_t>(in.in_off));
    in.in_off = 0;
  }
  return true;
}

void TcpTransport::DispatchFrame(WireFrame frame) {
  if (frame.to >= universe_.size() || !local_[frame.to]) {
    // Misrouted — a peer table disagreement. Drop; never a crash.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Up-check at dispatch time, exactly the Bus's straggler rule: a frame
  // in flight across a crash dies unless the node recovered first.
  if (!up_[frame.to].load()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  mailboxes_[frame.to]->Push(Envelope{frame.from, std::move(frame.msg)});
}

std::chrono::steady_clock::time_point TcpTransport::NextRetryDeadline()
    const {
  auto deadline = std::chrono::steady_clock::time_point::max();
  for (const Peer& peer : peers_) {
    if (peer.state == PeerState::kBackoff) {
      deadline = std::min(deadline, peer.retry_at);
    }
  }
  return deadline;
}

void TcpTransport::Loop() {
  std::vector<pollfd> fds;
  // Parallel map from fds index to what it is: listener i, peer node, or
  // inbound index (rebuilt each iteration; sizes are small — ≤64 nodes).
  enum class FdKind { kWake, kListen, kPeer, kInbound };
  struct FdRef {
    FdKind kind;
    std::size_t index;
  };
  std::vector<FdRef> refs;

  for (;;) {
    if (stop_.load()) return;
    fds.clear();
    refs.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    refs.push_back(FdRef{FdKind::kWake, 0});

    int timeout_ms = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Listener set is snapshotted under mu_: AddLocalNode may append a
      // listener at runtime (membership change) and wakes the loop so the
      // next snapshot includes it.
      for (std::size_t i = 0; i < listen_fds_.size(); ++i) {
        fds.push_back(pollfd{listen_fds_[i], POLLIN, 0});
        refs.push_back(FdRef{FdKind::kListen, i});
      }
      // Apply pending retargets first: close the stale connection, then
      // fall through to the normal "pending traffic → connect" path.
      for (std::size_t node = 0; node < retarget_.size(); ++node) {
        if (!retarget_[node]) continue;
        retarget_[node] = 0;
        Peer& peer = peers_[node];
        CloseFd(peer.fd);
        peer.state = PeerState::kIdle;
        peer.failures = 0;
      }
      const auto now = std::chrono::steady_clock::now();
      for (std::size_t node = 0; node < peers_.size(); ++node) {
        Peer& peer = peers_[node];
        const bool pending = peer.out_off < peer.outbuf.size();
        if (peer.state == PeerState::kBackoff && now >= peer.retry_at) {
          peer.state = PeerState::kIdle;
        }
        if (peer.state == PeerState::kIdle && pending &&
            universe_[node].port != 0) {
          StartConnect(peer, static_cast<NodeId>(node));
        }
        if (peer.state == PeerState::kConnected && pending) {
          FlushPeer(peer);
        }
        short events = 0;
        switch (peer.state) {
          case PeerState::kConnecting:
            events = POLLOUT;
            break;
          case PeerState::kConnected:
            events = POLLIN;  // EOF detection; peers never send on it
            if (peer.out_off < peer.outbuf.size()) events |= POLLOUT;
            break;
          case PeerState::kIdle:
          case PeerState::kBackoff:
            break;
        }
        if (events != 0 && peer.fd >= 0) {
          fds.push_back(pollfd{peer.fd, events, 0});
          refs.push_back(FdRef{FdKind::kPeer, node});
        }
      }
      for (std::size_t i = 0; i < inbound_.size(); ++i) {
        fds.push_back(pollfd{inbound_[i].fd, POLLIN, 0});
        refs.push_back(FdRef{FdKind::kInbound, i});
      }
      const auto retry = NextRetryDeadline();
      if (retry != std::chrono::steady_clock::time_point::max()) {
        const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
            retry - std::chrono::steady_clock::now());
        timeout_ms = std::max<int>(0, static_cast<int>(until.count()) + 1);
      }
    }

    ::poll(fds.data(), fds.size(), timeout_ms);
    if (stop_.load()) return;

    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      switch (refs[i].kind) {
        case FdKind::kWake: {
          char buf[256];
          while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
          }
          break;
        }
        case FdKind::kListen:
          AcceptAll(listen_fds_[refs[i].index]);
          break;
        case FdKind::kPeer: {
          Peer& peer = peers_[refs[i].index];
          if (peer.fd != fds[i].fd) break;  // retargeted meanwhile
          if (peer.state == PeerState::kConnecting) {
            int err = 0;
            socklen_t len = sizeof(err);
            ::getsockopt(peer.fd, SOL_SOCKET, SO_ERROR, &err, &len);
            if ((fds[i].revents & (POLLERR | POLLHUP)) != 0 || err != 0) {
              FailPeer(peer, /*count_attempt=*/false);
            } else {
              peer.state = PeerState::kConnected;
              peer.failures = 0;
              ++stats_.connects;
              FlushPeer(peer);
            }
            break;
          }
          if ((fds[i].revents & POLLIN) != 0) {
            // Outbound connections are write-only at the frame level;
            // readable means EOF (peer process died/restarted) or stray
            // bytes we discard.
            char scratch[1024];
            const ssize_t n = ::recv(peer.fd, scratch, sizeof(scratch), 0);
            if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
              FailPeer(peer, /*count_attempt=*/false);
              break;
            }
          }
          if ((fds[i].revents & (POLLERR | POLLHUP)) != 0) {
            FailPeer(peer, /*count_attempt=*/false);
            break;
          }
          if ((fds[i].revents & POLLOUT) != 0) FlushPeer(peer);
          break;
        }
        case FdKind::kInbound: {
          Inbound& in = inbound_[refs[i].index];
          if (in.fd != fds[i].fd) break;
          if (!DrainInbound(in)) CloseFd(in.fd);
          break;
        }
      }
    }
    // Compact closed inbound connections outside the fd walk.
    inbound_.erase(std::remove_if(inbound_.begin(), inbound_.end(),
                                  [](const Inbound& in) { return in.fd < 0; }),
                   inbound_.end());
  }
}

}  // namespace qcnt::net
