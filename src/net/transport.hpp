// Transport: the message-passing substrate of the threaded runtime.
//
// Extracted from the in-process Bus so the same replica servers and
// quorum clients can run over different substrates:
//
//   * runtime::Bus      — mailboxes + threads inside one process; the
//                         test/fault-injection transport (FaultPlan,
//                         partitions, deterministic chaos).
//   * net::TcpTransport — real sockets; replicas and clients as separate
//                         OS processes on real ports (tcp_transport.hpp).
//
// The contract, shared by all implementations (and pinned by
// tests/transport_conformance_test.cpp):
//
//   * Send(from, to, m) is asynchronous and at-most-once. `true` means
//     the transport accepted the message for delivery, not that it
//     arrived; `false` means it was dropped immediately (sender or
//     receiver down locally, unroutable peer, backpressure). End-to-end
//     delivery is the quorum protocol's job (retries + idempotence).
//   * Messages between a live (from, to) pair are delivered in send
//     order (FIFO links: one mailbox per receiver in-process, one
//     ordered byte stream per peer over TCP).
//   * Delivery happens by Push into the receiver's Mailbox, tagged with
//     the sender id. MailboxOf is only meaningful for nodes hosted by
//     this transport instance (every node, for a Bus; this process's
//     nodes, for a TcpTransport).
//   * Crash(node) is local fail-stop: the node stops receiving and its
//     queued backlog dies with it. If a crash hook is installed the hook
//     *owns* the backlog — the transport does not clear the mailbox
//     first, so the node can drain what was delivered before the crash
//     in FIFO order and cut at a deterministic position (see
//     replica_server.hpp). Without a hook the transport discards the
//     backlog itself. Either way the mailbox is empty when Crash
//     returns. Recover(node) restores delivery and runs the node's
//     recover hook. Neither is a remote operation — crashing a *remote*
//     process is done by killing it.
#pragma once

#include <cstdint>
#include <functional>

#include "net/mailbox.hpp"
#include "runtime/message.hpp"

namespace qcnt::net {

using runtime::NodeId;
using runtime::RtMessage;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Size of the node-id universe (replicas + clients).
  virtual std::size_t NodeCount() const = 0;

  /// Receive queue of a node hosted by this transport instance.
  virtual Mailbox& MailboxOf(NodeId node) = 0;

  /// Deliver (or schedule) one message; see the contract above.
  virtual bool Send(NodeId from, NodeId to, RtMessage msg) = 0;

  /// Fail-stop a locally hosted node: mark it down, discard its queued
  /// backlog, run its crash hook.
  virtual void Crash(NodeId node) = 0;
  /// Bring a locally hosted node back up (reopens its mailbox).
  virtual void Recover(NodeId node) = 0;
  /// Liveness of a locally hosted node. Remote nodes report true — a
  /// transport has no failure detector; quorum timeouts are the detector.
  virtual bool IsUp(NodeId node) const = 0;

  /// Install a callback that Crash(node) runs after the node is marked
  /// down. The hook owns the queued backlog: it must consume or discard
  /// it before returning (see replica_server.hpp). nullptr removes it.
  virtual void SetCrashHook(NodeId node, std::function<void()> hook) = 0;

  /// Install a callback that Recover(node) runs after the node is back
  /// up — the node's chance to reset crash-cut state. nullptr removes it.
  virtual void SetRecoverHook(NodeId node, std::function<void()> hook) = 0;

  /// Close every hosted mailbox (shutdown).
  virtual void CloseAll() = 0;

  /// Messages offered to Send / dropped by it, transport-wide.
  virtual std::uint64_t MessagesSent() const = 0;
  virtual std::uint64_t MessagesDropped() const = 0;

  /// Implementation tag for logs and test output ("bus", "tcp").
  virtual const char* Name() const = 0;
};

}  // namespace qcnt::net
