// Transport: the message-passing substrate of the threaded runtime.
//
// Extracted from the in-process Bus so the same replica servers and
// quorum clients can run over different substrates:
//
//   * runtime::Bus      — mailboxes + threads inside one process; the
//                         test/fault-injection transport (FaultPlan,
//                         partitions, deterministic chaos).
//   * net::TcpTransport — real sockets; replicas and clients as separate
//                         OS processes on real ports (tcp_transport.hpp).
//
// The contract, shared by all implementations (and pinned by
// tests/transport_conformance_test.cpp):
//
//   * Send(from, to, m) is asynchronous and at-most-once. `true` means
//     the transport accepted the message for delivery, not that it
//     arrived; `false` means it was dropped immediately (sender or
//     receiver down locally, unroutable peer, backpressure). End-to-end
//     delivery is the quorum protocol's job (retries + idempotence).
//   * Messages between a live (from, to) pair are delivered in send
//     order (FIFO links: one mailbox per receiver in-process, one
//     ordered byte stream per peer over TCP).
//   * Delivery happens by Push into the receiver's Mailbox, tagged with
//     the sender id. MailboxOf is only meaningful for nodes hosted by
//     this transport instance (every node, for a Bus; this process's
//     nodes, for a TcpTransport).
//   * Crash(node) is local fail-stop: the node stops receiving, its
//     queued backlog is discarded, and the node's crash hook runs so
//     internal stages (shard sub-mailboxes) die atomically with it.
//     Recover(node) restores delivery. Neither is a remote operation —
//     crashing a *remote* process is done by killing it.
#pragma once

#include <cstdint>
#include <functional>

#include "net/mailbox.hpp"
#include "runtime/message.hpp"

namespace qcnt::net {

using runtime::NodeId;
using runtime::RtMessage;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Size of the node-id universe (replicas + clients).
  virtual std::size_t NodeCount() const = 0;

  /// Receive queue of a node hosted by this transport instance.
  virtual Mailbox& MailboxOf(NodeId node) = 0;

  /// Deliver (or schedule) one message; see the contract above.
  virtual bool Send(NodeId from, NodeId to, RtMessage msg) = 0;

  /// Fail-stop a locally hosted node: mark it down, discard its queued
  /// backlog, run its crash hook.
  virtual void Crash(NodeId node) = 0;
  /// Bring a locally hosted node back up (reopens its mailbox).
  virtual void Recover(NodeId node) = 0;
  /// Liveness of a locally hosted node. Remote nodes report true — a
  /// transport has no failure detector; quorum timeouts are the detector.
  virtual bool IsUp(NodeId node) const = 0;

  /// Install a callback that Crash(node) runs after the node is marked
  /// down and its mailbox drained (see replica_server.hpp). nullptr
  /// removes it.
  virtual void SetCrashHook(NodeId node, std::function<void()> hook) = 0;

  /// Close every hosted mailbox (shutdown).
  virtual void CloseAll() = 0;

  /// Messages offered to Send / dropped by it, transport-wide.
  virtual std::uint64_t MessagesSent() const = 0;
  virtual std::uint64_t MessagesDropped() const = 0;

  /// Implementation tag for logs and test output ("bus", "tcp").
  virtual const char* Name() const = 0;
};

}  // namespace qcnt::net
