// A blocking MPSC mailbox — the receive half of every Transport.
//
// Lives in net (rather than runtime) because it is the delivery surface
// shared by all transports: the in-process Bus pushes into it directly,
// and the TCP transport's event loop pushes decoded frames into it. Node
// code (replica servers, clients) only ever pops; where the envelope came
// from is the transport's business.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "runtime/message.hpp"

namespace qcnt::net {

using runtime::Envelope;

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void Push(Envelope e);

  /// Block until a message arrives or the deadline passes; nullopt on
  /// timeout or when the mailbox is closed and drained.
  std::optional<Envelope> Pop(std::chrono::steady_clock::time_point deadline);

  /// Block until at least one message is queued, then move the *entire*
  /// queue out under a single lock acquisition. A consumer that was asleep
  /// behind a burst wakes once and gets the whole burst instead of paying
  /// one lock round trip per message. Empty result ⇔ closed and drained.
  std::deque<Envelope> PopAll();

  /// Non-blocking variant of PopAll (just the queue lock, no wait): moves
  /// out whatever is queued right now, possibly nothing. The async
  /// client's opportunistic drain between blocking waits.
  std::deque<Envelope> TryPopAll();

  /// Wake all waiters; subsequent Pops drain the queue then return nullopt.
  void Close();

  /// Undo Close: subsequent Pushes are accepted again. A node that crashed
  /// while the store was shutting down (Close) and is later recovered must
  /// get a usable mailbox back, or sends to it vanish silently.
  void Reopen();

  /// Discard every queued message (fail-stop crash: the backlog dies with
  /// the node). The mailbox stays usable for later pushes.
  void Clear();

  std::size_t Size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  bool closed_ = false;
};

}  // namespace qcnt::net
