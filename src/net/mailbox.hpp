// A blocking MPSC mailbox — the receive half of every Transport.
//
// Lives in net (rather than runtime) because it is the delivery surface
// shared by all transports: the in-process Bus pushes into it directly,
// and the TCP transport's event loop pushes decoded frames into it. Node
// code (replica servers, clients) only ever pops; where the envelope came
// from is the transport's business.
//
// Hot-path design:
//  - Producers never notify while holding the queue lock, and they only
//    notify at all when a consumer has registered itself as waiting
//    (`waiters_`). The registration happens under the same mutex the
//    producer pushes under, so a consumer that found the queue empty and
//    is about to sleep is always visible to the next producer — no lost
//    wakeup, no syscall on the uncontended handoff.
//  - `PushAll` moves a whole routed burst in under one lock acquisition
//    and one (conditional) notify, then clears the caller's vector so its
//    capacity is reused for the next burst.
//  - `PopAll` spins briefly on an atomic size mirror before sleeping, so
//    a consumer draining a steady stream never touches the futex. The
//    spin is disabled on single-core hosts where it would only steal the
//    producer's timeslice.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "runtime/message.hpp"

namespace qcnt::net {

using runtime::Envelope;

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Move-only enqueue: the envelope's payload (strings, batch vectors)
  /// is never copied on the handoff.
  void Push(Envelope&& e);

  /// Enqueue a whole burst under one lock acquisition with at most one
  /// notify. Moves the contents out of `batch` and clears it, so the
  /// caller's vector keeps its capacity for the next burst (the reusable
  /// per-link buffer idiom). Dropped silently when closed, like Push.
  void PushAll(std::vector<Envelope>& batch);

  /// Block until a message arrives or the deadline passes; nullopt on
  /// timeout or when the mailbox is closed and drained.
  std::optional<Envelope> Pop(std::chrono::steady_clock::time_point deadline);

  /// Block until at least one message is queued, then move the *entire*
  /// queue out under a single lock acquisition. A consumer that was asleep
  /// behind a burst wakes once and gets the whole burst instead of paying
  /// one lock round trip per message. Empty result ⇔ closed and drained.
  std::deque<Envelope> PopAll();

  /// Non-blocking variant of PopAll (just the queue lock, no wait): moves
  /// out whatever is queued right now, possibly nothing. The async
  /// client's opportunistic drain between blocking waits.
  std::deque<Envelope> TryPopAll();

  /// Wake all waiters; subsequent Pops drain the queue then return nullopt.
  void Close();

  /// Undo Close: subsequent Pushes are accepted again. A node that crashed
  /// while the store was shutting down (Close) and is later recovered must
  /// get a usable mailbox back, or sends to it vanish silently.
  void Reopen();

  /// Discard every queued message (fail-stop crash: the backlog dies with
  /// the node). The mailbox stays usable for later pushes.
  void Clear();

  std::size_t Size() const;

  /// Number of Push/PushAll calls that enqueued at least one envelope.
  /// Deterministic (independent of consumer timing), so tests can assert
  /// exact handoff counts where wakeups would be racy.
  std::uint64_t Handoffs() const {
    return handoffs_.load(std::memory_order_relaxed);
  }

  /// Number of producer-side cv notifies actually issued — the syscall
  /// cost a spinning or already-awake consumer avoids.
  std::uint64_t Wakeups() const {
    return wakeups_.load(std::memory_order_relaxed);
  }

 private:
  // True when a producer must notify: a consumer registered under mu_
  // before sleeping. Read by producers *after* releasing mu_; the mutex
  // hand-off orders the consumer's registration before the producer's
  // read, so the only misses are consumers that arrive later and will
  // see the pushed data anyway.
  bool NeedNotify() const {
    return waiters_.load(std::memory_order_acquire) != 0;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  bool closed_ = false;
  std::atomic<std::size_t> size_{0};     // mirror of queue_.size() for spin
  std::atomic<int> waiters_{0};          // consumers parked (or parking) in cv
  std::atomic<std::uint64_t> handoffs_{0};
  std::atomic<std::uint64_t> wakeups_{0};
};

}  // namespace qcnt::net
