// Typed errors of the net subsystem.
#pragma once

#include <stdexcept>
#include <string>

namespace qcnt::net {

/// A configuration the transport cannot honor — e.g. installing a
/// FaultPlan on a TCP-backed store (fault injection is an in-process-Bus
/// feature; on a real network, faults come from the network). Thrown at
/// construction / call time so the misconfiguration is loud, never
/// silently ignored.
class TransportConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A socket-layer failure the transport cannot recover from by itself
/// (bind/listen failure at construction, resolver failure).
class TransportIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace qcnt::net
