#include "net/mailbox.hpp"

#include <thread>

namespace qcnt::net {

namespace {

// Bounded spin before a blocking wait in PopAll. On a single-core host
// spinning only steals the producer's timeslice, so it is disabled there.
int SpinIterations() {
  static const int kIters =
      std::thread::hardware_concurrency() > 1 ? 64 : 0;
  return kIters;
}

}  // namespace

void Mailbox::Push(Envelope&& e) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    queue_.push_back(std::move(e));
    size_.store(queue_.size(), std::memory_order_release);
    handoffs_.fetch_add(1, std::memory_order_relaxed);
  }
  if (NeedNotify()) {
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    cv_.notify_one();
  }
}

void Mailbox::PushAll(std::vector<Envelope>& batch) {
  if (batch.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      batch.clear();
      return;
    }
    for (Envelope& e : batch) queue_.push_back(std::move(e));
    batch.clear();  // caller keeps the capacity for the next burst
    size_.store(queue_.size(), std::memory_order_release);
    handoffs_.fetch_add(1, std::memory_order_relaxed);
  }
  if (NeedNotify()) {
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    cv_.notify_one();
  }
}

std::optional<Envelope> Mailbox::Pop(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty() && !closed_) {
    waiters_.fetch_add(1, std::memory_order_acq_rel);
    cv_.wait_until(lock, deadline,
                   [this] { return !queue_.empty() || closed_; });
    waiters_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (queue_.empty()) return std::nullopt;
  Envelope e = std::move(queue_.front());
  queue_.pop_front();
  size_.store(queue_.size(), std::memory_order_release);
  return e;
}

std::deque<Envelope> Mailbox::PopAll() {
  // Fast path: under steady load the next burst lands within the spin
  // window and the consumer never parks (and the producer never has to
  // notify — NeedNotify() stays false throughout).
  for (int i = SpinIterations(); i > 0; --i) {
    if (size_.load(std::memory_order_acquire) != 0) break;
    if ((i & 15) == 0) std::this_thread::yield();
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty() && !closed_) {
    waiters_.fetch_add(1, std::memory_order_acq_rel);
    cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
    waiters_.fetch_sub(1, std::memory_order_acq_rel);
  }
  std::deque<Envelope> batch;
  batch.swap(queue_);
  size_.store(0, std::memory_order_release);
  return batch;
}

std::deque<Envelope> Mailbox::TryPopAll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<Envelope> batch;
  batch.swap(queue_);
  size_.store(0, std::memory_order_release);
  return batch;
}

void Mailbox::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void Mailbox::Reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = false;
}

void Mailbox::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
  size_.store(0, std::memory_order_release);
}

std::size_t Mailbox::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace qcnt::net
