#include "net/mailbox.hpp"

namespace qcnt::net {

void Mailbox::Push(Envelope e) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    queue_.push_back(std::move(e));
  }
  cv_.notify_one();
}

std::optional<Envelope> Mailbox::Pop(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_until(lock, deadline,
                 [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;
  Envelope e = std::move(queue_.front());
  queue_.pop_front();
  return e;
}

std::deque<Envelope> Mailbox::PopAll() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
  std::deque<Envelope> batch;
  batch.swap(queue_);
  return batch;
}

std::deque<Envelope> Mailbox::TryPopAll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<Envelope> batch;
  batch.swap(queue_);
  return batch;
}

void Mailbox::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void Mailbox::Reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = false;
}

void Mailbox::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
}

std::size_t Mailbox::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace qcnt::net
