// A concurrent (non-serial) scheduler for nested transaction systems.
//
// System C of Theorem 11 has the same type as system B but need not be
// serial; correctness is delegated to a concurrency-control algorithm at
// the copy level (locked_object.hpp). This scheduler drops the serial
// scheduler's sibling-exclusion rule — any requested transaction may be
// created at any time — and extends ABORT to *created* transactions,
// modelling crashes/rollbacks; the locking objects undo the work of aborted
// subtrees. COMMIT still waits for all requested children to return and is
// refused for orphans (a transaction with an aborted ancestor), modelling
// orphan elimination.
#pragma once

#include "ioa/automaton.hpp"
#include "txn/system_type.hpp"

namespace qcnt::cc {

class ConcurrentScheduler : public ioa::Automaton {
 public:
  explicit ConcurrentScheduler(const txn::SystemType& type);

  bool Created(TxnId t) const { return created_[t] != 0; }
  bool Aborted(TxnId t) const { return aborted_[t] != 0; }
  bool Committed(TxnId t) const { return committed_[t] != 0; }
  bool Returned(TxnId t) const { return returned_[t] != 0; }
  /// Does t have an aborted ancestor (inclusive)?
  bool IsOrphan(TxnId t) const;

  // Automaton interface.
  std::string Name() const override { return "concurrent-scheduler"; }
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  bool ChildrenReturned(TxnId t) const;
  bool CommitRequestedWith(TxnId t, const Value& v) const;

  const txn::SystemType* type_;
  std::vector<std::uint8_t> create_requested_;
  std::vector<std::uint8_t> created_;
  std::vector<std::uint8_t> aborted_;
  std::vector<std::uint8_t> returned_;
  std::vector<std::uint8_t> committed_;
  std::vector<std::pair<TxnId, Value>> commit_requested_;
  std::vector<TxnId> create_order_;
};

}  // namespace qcnt::cc
