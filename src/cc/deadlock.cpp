#include "cc/deadlock.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace qcnt::cc {

namespace {

/// Topmost proper ancestor below the root (the transaction itself when it
/// is a child of the root; kNoTxn for the root).
TxnId TopLevelOf(const txn::SystemType& type, TxnId t) {
  if (t == kRootTxn) return kNoTxn;
  while (type.Parent(t) != kRootTxn) t = type.Parent(t);
  return t;
}

DeadlockReport Analyze(const txn::SystemType& type,
                       const std::vector<const LockedObject*>& objs) {
  DeadlockReport report;
  std::unordered_map<TxnId, std::unordered_set<TxnId>> graph;
  for (const LockedObject* obj : objs) {
    for (TxnId access : obj->PendingAccesses()) {
      const TxnId waiter = TopLevelOf(type, access);
      if (waiter == kNoTxn) continue;
      for (TxnId holder : obj->BlockersOf(access)) {
        const TxnId target = TopLevelOf(type, holder);
        if (target == kNoTxn || target == waiter) continue;
        if (graph[waiter].insert(target).second) {
          report.waits_for.emplace_back(waiter, target);
        }
      }
    }
  }

  // A node is deadlocked iff it can reach itself: DFS per node (graphs are
  // tiny — bounded by concurrent top-level transactions).
  for (const auto& [start, _] : graph) {
    std::vector<TxnId> stack(graph[start].begin(), graph[start].end());
    std::unordered_set<TxnId> seen;
    bool cycle = false;
    while (!stack.empty() && !cycle) {
      const TxnId t = stack.back();
      stack.pop_back();
      if (t == start) {
        cycle = true;
        break;
      }
      if (!seen.insert(t).second) continue;
      auto it = graph.find(t);
      if (it == graph.end()) continue;
      stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
    if (cycle) report.deadlocked.push_back(start);
  }
  std::sort(report.deadlocked.begin(), report.deadlocked.end());
  return report;
}

}  // namespace

DeadlockReport DetectDeadlocks(const txn::SystemType& type,
                               const ioa::System& sys) {
  std::vector<const LockedObject*> objs;
  for (std::size_t i = 0; i < sys.ComponentCount(); ++i) {
    if (const auto* obj =
            dynamic_cast<const LockedObject*>(&sys.Component(i))) {
      objs.push_back(obj);
    }
  }
  return Analyze(type, objs);
}

DeadlockReport DetectDeadlocks(const txn::SystemType& type,
                               const std::vector<const LockedObject*>& objs) {
  return Analyze(type, objs);
}

}  // namespace qcnt::cc
