// System C (Theorem 11): the replication algorithm over a concurrent,
// lock-based copy layer, plus the one-copy serializability checker.
//
// Theorem 11 states that if every schedule of C is serially correct with
// respect to B at the copy level, then every schedule of C is serially
// correct with respect to the non-replicated system A for non-orphan user
// transactions — i.e. the user transactions observe a single-copy serial
// database. CheckOneCopySerializability verifies the observable content of
// that claim on a concrete schedule: committed top-level transactions,
// taken in commit order with their committed (non-rolled-back) TMs in
// commit order, must form a one-copy serial history — every committed
// logical read returns the value of the most recent committed logical write
// in that order.
#pragma once

#include <functional>

#include "replication/theorem10.hpp"

namespace qcnt::cc {

using replication::ReplicatedSpec;
using replication::UserAutomataFactory;

/// Compose system C: concurrent scheduler + locked DM copies + the same TM
/// automata as system B + locked non-replica objects + user automata.
ioa::System BuildSystemC(const ReplicatedSpec& spec,
                         const UserAutomataFactory& users);

struct OneCopyResult {
  bool ok = true;
  std::string message;
  /// Committed top-level transactions in serialization (commit) order.
  std::vector<TxnId> serialization;
};

/// Validate the one-copy serial semantics of a schedule of system C.
OneCopyResult CheckOneCopySerializability(const ReplicatedSpec& spec,
                                          const ioa::Schedule& gamma);

/// Statistics of a concurrent run (for benches and diagnostics).
struct RunStats {
  std::size_t committed_top_level = 0;
  std::size_t aborted_top_level = 0;
  std::size_t committed_tms = 0;
  std::size_t aborted_created_txns = 0;  // aborts of *created* transactions
  std::size_t total_actions = 0;
};

RunStats CollectRunStats(const ReplicatedSpec& spec,
                         const ioa::Schedule& gamma);

}  // namespace qcnt::cc
