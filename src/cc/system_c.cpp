#include "cc/system_c.hpp"

#include <algorithm>
#include <unordered_map>

#include "cc/concurrent_scheduler.hpp"
#include "common/check.hpp"
#include "cc/locked_object.hpp"
#include "replication/read_tm.hpp"
#include "replication/write_tm.hpp"

namespace qcnt::cc {

ioa::System BuildSystemC(const ReplicatedSpec& spec,
                         const UserAutomataFactory& users) {
  QCNT_CHECK(spec.Finalized());
  ioa::System sys("system-C");
  sys.Emplace<ConcurrentScheduler>(spec.Type());
  for (const replication::ItemInfo& info : spec.Items()) {
    for (ObjectId dm : info.dm_objects) {
      sys.Emplace<LockedObject>(spec.Type(), dm,
                                Value{Versioned{0, info.initial}});
    }
    for (TxnId tm : info.read_tms) {
      sys.Emplace<replication::ReadTm>(spec, info.id, tm);
    }
    for (TxnId tm : info.write_tms) {
      sys.Emplace<replication::WriteTm>(spec, info.id, tm);
    }
  }
  if (users) users(sys);
  return sys;
}

namespace {

struct CommitIndex {
  /// txn -> position of its COMMIT action in gamma (first occurrence).
  std::unordered_map<TxnId, std::size_t> position;
  /// txn -> value committed with.
  std::unordered_map<TxnId, Value> value;

  bool Committed(TxnId t) const { return position.count(t) != 0; }
};

CommitIndex IndexCommits(const ioa::Schedule& gamma) {
  CommitIndex idx;
  for (std::size_t i = 0; i < gamma.size(); ++i) {
    const ioa::Action& a = gamma[i];
    if (a.kind != ioa::ActionKind::kCommit) continue;
    if (idx.position.count(a.txn)) continue;
    idx.position[a.txn] = i;
    idx.value[a.txn] = a.value;
  }
  return idx;
}

}  // namespace

OneCopyResult CheckOneCopySerializability(const ReplicatedSpec& spec,
                                          const ioa::Schedule& gamma) {
  const txn::SystemType& type = spec.Type();
  const CommitIndex commits = IndexCommits(gamma);
  OneCopyResult result;

  // A TM takes logical effect iff it and every proper ancestor below the
  // root committed (an aborted ancestor means its work was rolled back).
  auto effective = [&](TxnId tm) {
    for (TxnId t = tm; t != kRootTxn; t = type.Parent(t)) {
      if (!commits.Committed(t)) return false;
    }
    return true;
  };

  // Serialization order: committed children of the root by commit position.
  std::vector<TxnId> order;
  for (TxnId child : type.Children(kRootTxn)) {
    if (commits.Committed(child)) order.push_back(child);
  }
  std::sort(order.begin(), order.end(), [&](TxnId a, TxnId b) {
    return commits.position.at(a) < commits.position.at(b);
  });
  result.serialization = order;

  // Gather the effective TMs of each top-level transaction in commit order.
  std::unordered_map<ItemId, Plain> state;
  for (const replication::ItemInfo& info : spec.Items()) {
    state[info.id] = info.initial;
  }
  for (TxnId top : order) {
    std::vector<TxnId> tms;
    for (const replication::ItemInfo& info : spec.Items()) {
      auto consider = [&](TxnId tm) {
        if (!type.IsAncestor(top, tm)) return;
        if (effective(tm)) tms.push_back(tm);
      };
      for (TxnId tm : info.read_tms) consider(tm);
      for (TxnId tm : info.write_tms) consider(tm);
    }
    std::sort(tms.begin(), tms.end(), [&](TxnId a, TxnId b) {
      return commits.position.at(a) < commits.position.at(b);
    });

    for (TxnId tm : tms) {
      const ItemId x = spec.TmItem(tm);
      const replication::ItemInfo& info = spec.Item(x);
      if (info.write_values.count(tm)) {
        state[x] = info.write_values.at(tm);
      } else {
        const Value got = commits.value.at(tm);
        const Value expected = FromPlain(state[x]);
        if (!(got == expected)) {
          result.ok = false;
          result.message =
              "one-copy violation: " + type.Label(tm) + " (in " +
              type.Label(top) + ") returned " + qcnt::ToString(got) +
              " but the one-copy serial history expects " +
              qcnt::ToString(expected);
          return result;
        }
      }
    }
  }
  return result;
}

RunStats CollectRunStats(const ReplicatedSpec& spec,
                         const ioa::Schedule& gamma) {
  const txn::SystemType& type = spec.Type();
  RunStats stats;
  stats.total_actions = gamma.size();
  std::vector<std::uint8_t> created(type.TxnCount(), 0);
  for (const ioa::Action& a : gamma) {
    switch (a.kind) {
      case ioa::ActionKind::kCreate:
        created[a.txn] = 1;
        break;
      case ioa::ActionKind::kCommit:
        if (type.Parent(a.txn) == kRootTxn) ++stats.committed_top_level;
        if (spec.TmItem(a.txn) != kNoItem) ++stats.committed_tms;
        break;
      case ioa::ActionKind::kAbort:
        if (type.Parent(a.txn) == kRootTxn) ++stats.aborted_top_level;
        if (created[a.txn]) ++stats.aborted_created_txns;
        break;
      default:
        break;
    }
  }
  return stats;
}

}  // namespace qcnt::cc
