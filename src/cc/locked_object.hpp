// Moss-style nested read/write locking objects.
//
// Theorem 11 lets the fixed Quorum Consensus algorithm combine with *any*
// concurrency control algorithm that guarantees serial correctness at the
// copy level; the paper names Moss' two-phase locking with separate read
// and write locks (see also Fekete, Lynch, Merritt & Weihl, "Nested
// Transactions and Read/Write Locking", PODS 1987). A LockedObject
// implements that algorithm for one copy:
//
//   * a read access may proceed when every write-lock holder is an
//     ancestor of it; it acquires a read lock and returns the value written
//     by the innermost write-lock holder;
//   * a write access may proceed when every lock holder (read or write) is
//     an ancestor of it; it acquires a write lock and pushes its value;
//   * when a transaction commits, its locks (and pushed versions) are
//     inherited by its parent;
//   * when a transaction aborts, locks and versions held by its descendants
//     are discarded — this is the recovery mechanism that makes concurrent
//     aborts (not just the serial scheduler's never-created aborts) safe.
//
// The object learns transaction fates by taking every COMMIT/ABORT action
// of the system as an input, so no extra operation vocabulary is needed.
#pragma once

#include "ioa/automaton.hpp"
#include "txn/system_type.hpp"

namespace qcnt::cc {

class LockedObject : public ioa::Automaton {
 public:
  LockedObject(const txn::SystemType& type, ObjectId object, Value initial);

  ObjectId Object() const { return object_; }
  /// Value that a read access of `reader` would currently return.
  const Value& CurrentValue() const { return versions_.back().value; }
  std::size_t ReadLockCount() const { return read_lockers_.size(); }
  std::size_t WriteLockDepth() const { return versions_.size() - 1; }

  /// Would a read (write) access by transaction t be grantable now?
  bool ReadLockFree(TxnId t) const;
  bool WriteLockFree(TxnId t) const;

  /// Accesses created but not yet granted (possibly blocked).
  const std::vector<TxnId>& PendingAccesses() const { return pending_; }

  /// Lock holders that block the given pending access (non-ancestors
  /// holding conflicting locks). Empty when the access is grantable.
  std::vector<TxnId> BlockersOf(TxnId access) const;

  // Automaton interface.
  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  struct Version {
    TxnId holder;  // current write-lock owner of this version
    Value value;
  };

  void OnCommit(TxnId t);
  void OnAbort(TxnId t);

  const txn::SystemType* type_;
  ObjectId object_;
  Value initial_;
  // State.
  /// Version stack; versions_[0] is the committed base, held by the root
  /// (an ancestor of everything that never aborts).
  std::vector<Version> versions_;
  std::vector<TxnId> read_lockers_;
  /// Accesses created but not yet request-committed (possibly blocked).
  std::vector<TxnId> pending_;
};

}  // namespace qcnt::cc
