#include "cc/concurrent_scheduler.hpp"

namespace qcnt::cc {

ConcurrentScheduler::ConcurrentScheduler(const txn::SystemType& type)
    : type_(&type) {
  Reset();
}

void ConcurrentScheduler::Reset() {
  const std::size_t n = type_->TxnCount();
  create_requested_.assign(n, 0);
  created_.assign(n, 0);
  aborted_.assign(n, 0);
  returned_.assign(n, 0);
  committed_.assign(n, 0);
  commit_requested_.clear();
  create_order_.clear();
  create_requested_[kRootTxn] = 1;
  create_order_.push_back(kRootTxn);
}

bool ConcurrentScheduler::IsOrphan(TxnId t) const {
  while (t != kNoTxn) {
    if (aborted_[t]) return true;
    t = type_->Parent(t);
  }
  return false;
}

bool ConcurrentScheduler::IsOperation(const ioa::Action& a) const {
  return a.txn < type_->TxnCount();
}

bool ConcurrentScheduler::IsOutput(const ioa::Action& a) const {
  return IsOperation(a) && (a.kind == ioa::ActionKind::kCreate ||
                            a.kind == ioa::ActionKind::kCommit ||
                            a.kind == ioa::ActionKind::kAbort);
}

bool ConcurrentScheduler::ChildrenReturned(TxnId t) const {
  for (TxnId child : type_->Children(t)) {
    if (create_requested_[child] && !returned_[child]) return false;
  }
  return true;
}

bool ConcurrentScheduler::CommitRequestedWith(TxnId t,
                                              const Value& v) const {
  for (const auto& [txn, value] : commit_requested_) {
    if (txn == t && value == v) return true;
  }
  return false;
}

bool ConcurrentScheduler::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  switch (a.kind) {
    case ioa::ActionKind::kRequestCreate:
    case ioa::ActionKind::kRequestCommit:
      return true;  // inputs
    case ioa::ActionKind::kCreate:
      // No sibling exclusion: concurrency is allowed.
      return create_requested_[a.txn] && !created_[a.txn] && !aborted_[a.txn];
    case ioa::ActionKind::kCommit:
      return a.txn != kRootTxn && CommitRequestedWith(a.txn, a.value) &&
             !returned_[a.txn] && ChildrenReturned(a.txn) &&
             !IsOrphan(a.txn);
    case ioa::ActionKind::kAbort:
      // Unlike the serial scheduler, created transactions may abort too
      // (the locking objects roll their effects back).
      return a.txn != kRootTxn && create_requested_[a.txn] &&
             !returned_[a.txn];
  }
  return false;
}

void ConcurrentScheduler::Apply(const ioa::Action& a) {
  switch (a.kind) {
    case ioa::ActionKind::kRequestCreate:
      if (!create_requested_[a.txn]) {
        create_requested_[a.txn] = 1;
        create_order_.push_back(a.txn);
      }
      break;
    case ioa::ActionKind::kRequestCommit:
      commit_requested_.emplace_back(a.txn, a.value);
      break;
    case ioa::ActionKind::kCreate:
      created_[a.txn] = 1;
      break;
    case ioa::ActionKind::kCommit:
      committed_[a.txn] = 1;
      returned_[a.txn] = 1;
      break;
    case ioa::ActionKind::kAbort:
      aborted_[a.txn] = 1;
      returned_[a.txn] = 1;
      break;
  }
}

void ConcurrentScheduler::EnabledOutputs(
    std::vector<ioa::Action>& out) const {
  for (TxnId t : create_order_) {
    if (t == kRootTxn) {
      if (!created_[t]) out.push_back(ioa::Create(t));
      continue;
    }
    if (!created_[t] && !aborted_[t]) out.push_back(ioa::Create(t));
    if (!returned_[t]) out.push_back(ioa::Abort(t));
  }
  for (const auto& [t, v] : commit_requested_) {
    if (t == kRootTxn || returned_[t]) continue;
    if (!ChildrenReturned(t) || IsOrphan(t)) continue;
    out.push_back(ioa::Commit(t, v));
  }
}

}  // namespace qcnt::cc
