#include "cc/locked_object.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace qcnt::cc {

LockedObject::LockedObject(const txn::SystemType& type, ObjectId object,
                           Value initial)
    : type_(&type), object_(object), initial_(std::move(initial)) {
  QCNT_CHECK(object < type.ObjectCount());
  Reset();
}

void LockedObject::Reset() {
  versions_.assign(1, Version{kRootTxn, initial_});
  read_lockers_.clear();
  pending_.clear();
}

std::string LockedObject::Name() const {
  return "locked-object(" + type_->ObjectLabel(object_) + ")";
}

bool LockedObject::ReadLockFree(TxnId t) const {
  // Every write-lock holder (beyond the committed base) must be an
  // ancestor of t.
  for (std::size_t i = 1; i < versions_.size(); ++i) {
    if (!type_->IsAncestor(versions_[i].holder, t)) return false;
  }
  return true;
}

bool LockedObject::WriteLockFree(TxnId t) const {
  if (!ReadLockFree(t)) return false;
  for (TxnId holder : read_lockers_) {
    if (!type_->IsAncestor(holder, t)) return false;
  }
  return true;
}

std::vector<TxnId> LockedObject::BlockersOf(TxnId access) const {
  std::vector<TxnId> blockers;
  const bool is_write = type_->KindOf(access) == txn::AccessKind::kWrite;
  for (std::size_t i = 1; i < versions_.size(); ++i) {
    if (!type_->IsAncestor(versions_[i].holder, access)) {
      blockers.push_back(versions_[i].holder);
    }
  }
  if (is_write) {
    for (TxnId holder : read_lockers_) {
      if (!type_->IsAncestor(holder, access)) blockers.push_back(holder);
    }
  }
  std::sort(blockers.begin(), blockers.end());
  blockers.erase(std::unique(blockers.begin(), blockers.end()),
                 blockers.end());
  return blockers;
}

bool LockedObject::IsOperation(const ioa::Action& a) const {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kRequestCommit:
      return a.txn < type_->TxnCount() && type_->IsAccess(a.txn) &&
             type_->ObjectOf(a.txn) == object_;
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      // Lock inheritance and discard require observing every fate.
      return a.txn < type_->TxnCount();
    case ioa::ActionKind::kRequestCreate:
      return false;
  }
  return false;
}

bool LockedObject::IsOutput(const ioa::Action& a) const {
  return a.kind == ioa::ActionKind::kRequestCommit && IsOperation(a);
}

bool LockedObject::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  if (a.kind != ioa::ActionKind::kRequestCommit) return true;  // inputs
  if (std::find(pending_.begin(), pending_.end(), a.txn) == pending_.end()) {
    return false;
  }
  if (type_->KindOf(a.txn) == txn::AccessKind::kRead) {
    return ReadLockFree(a.txn) && a.value == versions_.back().value;
  }
  return WriteLockFree(a.txn) && IsNil(a.value);
}

void LockedObject::OnCommit(TxnId t) {
  if (t == kRootTxn) return;
  const TxnId parent = type_->Parent(t);
  for (TxnId& holder : read_lockers_) {
    if (holder == t) holder = parent;
  }
  // Deduplicate read lockers.
  std::sort(read_lockers_.begin(), read_lockers_.end());
  read_lockers_.erase(
      std::unique(read_lockers_.begin(), read_lockers_.end()),
      read_lockers_.end());
  for (std::size_t i = 1; i < versions_.size(); ++i) {
    if (versions_[i].holder == t) versions_[i].holder = parent;
  }
  // Adjacent versions held by the same transaction collapse to the newest.
  for (std::size_t i = versions_.size(); i-- > 1;) {
    if (versions_[i].holder == versions_[i - 1].holder) {
      versions_[i - 1].value = versions_[i].value;
      versions_.erase(versions_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
}

void LockedObject::OnAbort(TxnId t) {
  auto is_descendant = [this, t](TxnId u) {
    return type_->IsAncestor(t, u);
  };
  read_lockers_.erase(
      std::remove_if(read_lockers_.begin(), read_lockers_.end(),
                     is_descendant),
      read_lockers_.end());
  versions_.erase(
      std::remove_if(versions_.begin() + 1, versions_.end(),
                     [&](const Version& v) { return is_descendant(v.holder); }),
      versions_.end());
  pending_.erase(
      std::remove_if(pending_.begin(), pending_.end(), is_descendant),
      pending_.end());
}

void LockedObject::Apply(const ioa::Action& a) {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
      pending_.push_back(a.txn);
      break;
    case ioa::ActionKind::kRequestCommit: {
      pending_.erase(std::remove(pending_.begin(), pending_.end(), a.txn),
                     pending_.end());
      if (type_->KindOf(a.txn) == txn::AccessKind::kRead) {
        if (std::find(read_lockers_.begin(), read_lockers_.end(), a.txn) ==
            read_lockers_.end()) {
          read_lockers_.push_back(a.txn);
        }
      } else {
        versions_.push_back(Version{a.txn, type_->DataOf(a.txn)});
      }
      break;
    }
    case ioa::ActionKind::kCommit:
      OnCommit(a.txn);
      break;
    case ioa::ActionKind::kAbort:
      OnAbort(a.txn);
      break;
    case ioa::ActionKind::kRequestCreate:
      break;
  }
}

void LockedObject::EnabledOutputs(std::vector<ioa::Action>& out) const {
  for (TxnId t : pending_) {
    if (type_->KindOf(t) == txn::AccessKind::kRead) {
      if (ReadLockFree(t)) {
        out.push_back(ioa::RequestCommit(t, versions_.back().value));
      }
    } else if (WriteLockFree(t)) {
      out.push_back(ioa::RequestCommit(t, kNil));
    }
  }
}

}  // namespace qcnt::cc
