// Deadlock detection for the nested-locking layer.
//
// Two-phase locking can deadlock — under Quorum Consensus two concurrent
// logical writers conflict by construction (each writer's write set
// intersects every other writer's read set), so writer/writer deadlocks
// are the norm, not the exception. The analyzer builds a waits-for graph
// over *top-level* transactions (the lock-inheritance unit a peer
// ultimately waits on): pending access → blocking holders, both mapped to
// their topmost ancestor below the root, then reports every transaction on
// a cycle. Resolution is the scheduler's ABORT, which the locking objects
// already honor by rolling the victim back.
#pragma once

#include "cc/locked_object.hpp"
#include "ioa/system.hpp"

namespace qcnt::cc {

struct DeadlockReport {
  /// Top-level transactions involved in some waits-for cycle.
  std::vector<TxnId> deadlocked;
  /// Edges of the waits-for graph (waiter, holder), both top-level.
  std::vector<std::pair<TxnId, TxnId>> waits_for;

  bool HasDeadlock() const { return !deadlocked.empty(); }
};

/// Analyze the locked objects composed into `sys`.
DeadlockReport DetectDeadlocks(const txn::SystemType& type,
                               const ioa::System& sys);

/// Analyze an explicit set of objects (unit-test convenience).
DeadlockReport DetectDeadlocks(const txn::SystemType& type,
                               const std::vector<const LockedObject*>& objs);

}  // namespace qcnt::cc
