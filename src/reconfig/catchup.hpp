// Online membership change: the runtime counterpart of RReconfigTm.
//
// The verified automaton layer (tms.hpp) proves the Section-4 claim for a
// *fixed* replica universe: installing (c', g+1) at a write quorum of the
// old configuration is enough for every later TM to find the new
// configuration. The MembershipCoordinator extends that to a universe that
// grows and shrinks at runtime, in three phases (DESIGN.md §11):
//
//   A. Bulk catchup — the joining replica streams the current per-key
//      (version, value) image from a live donor in bounded chunks
//      (kJoinReq -> kCatchupReq/kCatchupChunk -> kCatchupDone), while
//      client traffic keeps flowing. The pull is cursor-driven and
//      stateless on the donor, so a donor crash mid-stream is recovered
//      by re-issuing the join (same shard layout => the joiner resumes
//      from its cursor, against the same donor or a different one).
//   B. Stamp — the embedded QuorumClient runs the paper's Reconfigure:
//      (target, g+1) to a write quorum of the old configuration,
//      capturing the exact old-member set S_acked that acked the stamp.
//   C. Seal — re-stream from every member of S_acked into the joiner
//      under the new generation. Any write acked under the old
//      generation has a write quorum intersecting S_acked (write quorums
//      of one configuration pairwise intersect), and once a replica acks
//      the stamp it fences older-generation installs — so after C the
//      joiner holds every write that will ever be ackable, and new-
//      configuration quorums that count the joiner are safe even for
//      quorum systems where bare majority arithmetic would not be.
//
// Decommission (Leave) is the mirror image: drain the leaver's image into
// a write quorum of the old configuration (so nothing survives only on
// the leaver), then Reconfigure to the configuration without it. A leaver
// that is already down is removed without a drain — its copies are
// unreachable either way, and the stamp alone restores write
// availability, which is the §4 point.
//
// One coordinator instance per store, used from one thread at a time; the
// store serializes membership operations behind a mutex. The coordinator
// owns a dedicated client node id: its raw pull/install traffic uses op
// ids with the top bit set so it can never collide with the embedded
// client's ops on the shared mailbox.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/client.hpp"
#include "runtime/config_table.hpp"

namespace qcnt::runtime {
class ReplicatedStore;
}  // namespace qcnt::runtime

namespace qcnt::reconfig {

struct MembershipOptions {
  /// Deadline for one coordinator-visible step: a bulk-catchup progress
  /// window, one pulled chunk, or one install's ack quorum.
  std::chrono::milliseconds step_timeout{1000};
  /// Retries per step (lost messages, donor failover) before giving up.
  std::size_t max_step_attempts = 8;
  /// Entries per seal/drain chunk (bounds both message size and the time
  /// a donor shard thread spends serving one chunk).
  std::size_t chunk_entries = 128;
  /// Options for the embedded reconfigure/priming client. Defaults to
  /// retrying (unlike the bare client's single-shot default): a membership
  /// operation under way is exactly when a lost ack should not fail the
  /// whole join/leave.
  runtime::QuorumClient::Options client = DefaultClientOptions();

  static runtime::QuorumClient::Options DefaultClientOptions() {
    runtime::QuorumClient::Options o;
    o.max_attempts = 4;
    return o;
  }
};

struct MembershipReport {
  bool ok = false;
  /// The joined / removed replica's node id (set by AddReplica /
  /// RemoveReplica; a failed join still reports the burned id).
  runtime::NodeId node = 0;
  /// Installed configuration and generation (valid when ok).
  std::uint32_t config_id = 0;
  std::uint64_t generation = 0;
  /// Entries the joiner reported streaming during bulk catchup (phase A).
  std::uint64_t catchup_entries = 0;
  /// Entries re-streamed by the coordinator (join seal / leave drain).
  std::uint64_t seal_entries = 0;
  /// Leave only: false when the leaver was unreachable and its image was
  /// not drained (safe — see file comment — but worth surfacing).
  bool drained = false;
  std::string error;  // empty when ok
};

class MembershipCoordinator {
 public:
  /// `id` must not be a member of any configuration; `believed_config`
  /// is the store's current configuration id (the coordinator primes its
  /// generation from a read quorum before acting on it).
  MembershipCoordinator(runtime::Transport& transport, runtime::NodeId id,
                        std::shared_ptr<runtime::ConfigTable> table,
                        std::uint32_t believed_config,
                        MembershipOptions options);

  MembershipCoordinator(const MembershipCoordinator&) = delete;
  MembershipCoordinator& operator=(const MembershipCoordinator&) = delete;

  /// Grow: stream `joiner` current (phase A, trying `donors` in order
  /// with failover), install `target` (phase B), seal (phase C). The
  /// target configuration must already be appended to the table and its
  /// member set must be exactly the old members plus `joiner`. `shards`
  /// is the store-wide shard layout every replica uses.
  MembershipReport Join(runtime::NodeId joiner,
                        const std::vector<runtime::NodeId>& donors,
                        std::uint64_t shards, std::uint32_t target);

  /// Shrink: drain `leaver` into a write quorum of the old configuration,
  /// then install `target` (already appended; old members minus the
  /// leaver). The caller stops the leaver afterwards.
  MembershipReport Leave(runtime::NodeId leaver, std::uint64_t shards,
                         std::uint32_t target);

  std::uint32_t BelievedConfig() const { return client_.BelievedConfig(); }
  std::uint64_t BelievedGeneration() const {
    return client_.BelievedGeneration();
  }

 private:
  /// Learn the current (generation, config) from a read quorum, so drain
  /// installs and seal streams are stamped with a generation no live
  /// replica fences.
  bool Prime(MembershipReport& report);
  /// Phase A: drive the joiner's pull to completion, failing over across
  /// `donors`; each retry resumes from the joiner's cursor.
  bool RunBulkCatchup(runtime::NodeId joiner,
                      const std::vector<runtime::NodeId>& donors,
                      std::uint64_t shards, MembershipReport& report);
  /// Stream every shard of `source`'s image into `targets`, chunk by
  /// chunk, each chunk installed under `generation` and acked by
  /// `quorum_of` before the next is pulled. Adds to report.seal_entries.
  bool StreamImage(runtime::NodeId source,
                   const std::vector<runtime::NodeId>& targets,
                   const runtime::MemberConfig& quorum_of,
                   std::uint64_t shards, std::uint64_t generation,
                   MembershipReport& report);
  /// Pull one chunk (with per-step retries). Returns false on timeout or
  /// layout mismatch; out params: entries, next cursor, more-remaining.
  bool PullChunk(runtime::NodeId source, std::uint32_t shard,
                 std::uint64_t shards, std::string& cursor, bool& more,
                 std::vector<runtime::BatchEntry>& entries,
                 std::string& error);
  /// Install `entries` at every target, retrying until `quorum_of`'s
  /// write predicate holds per entry (masked to its members).
  bool InstallEntries(const std::vector<runtime::BatchEntry>& entries,
                      const std::vector<runtime::NodeId>& targets,
                      const runtime::MemberConfig& quorum_of,
                      std::uint64_t generation, std::string& error);
  std::uint64_t NextOp() { return kOpBase | epoch_ | next_op_++; }

  /// Raw coordinator ops live above the top bit so they can never collide
  /// with the embedded client's op ids on the shared mailbox. The per-
  /// instance epoch (bits 40..62) additionally keeps them distinct from
  /// *earlier* coordinators of the same store: the coordinator node id is
  /// reused across membership operations, and a chunk or ack delayed from
  /// a finished operation must never alias a live op id.
  static constexpr std::uint64_t kOpBase = 1ull << 63;

  runtime::Transport* transport_;
  runtime::NodeId id_;
  std::shared_ptr<runtime::ConfigTable> table_;
  MembershipOptions options_;
  runtime::QuorumClient client_;
  std::uint64_t epoch_;
  std::uint64_t next_op_ = 1;
};

/// Grow `store` by one replica, online: spawn it (fresh node id, grown
/// transport, running ReplicaServer), re-derive the serving strategy
/// over members + joiner, and run the three-phase join while client
/// traffic continues. Fails with a typed error (no membership change)
/// when the strategy's parameters pin a universe size the grown set
/// cannot satisfy. On failure the joiner is retired (its id stays
/// burned; the appended-but-never-stamped configuration is harmless).
/// Serialized against other membership operations on the same store.
MembershipReport AddReplica(runtime::ReplicatedStore& store,
                            const MembershipOptions& options = {});

/// Decommission replica `node`, online: re-derive the serving strategy
/// over members − node, drain the leaver, install, then stop the leaver.
/// Refuses (typed error, no change) when the strategy cannot span the
/// shrunk set.
MembershipReport RemoveReplica(runtime::ReplicatedStore& store,
                               runtime::NodeId node,
                               const MembershipOptions& options = {});

}  // namespace qcnt::reconfig
