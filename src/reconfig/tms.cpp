#include "reconfig/tms.hpp"

#include "common/check.hpp"

namespace qcnt::reconfig {

namespace {
std::uint64_t QuorumMask(const quorum::Quorum& q) {
  std::uint64_t mask = 0;
  for (ReplicaId r : q) {
    QCNT_CHECK(r < 64);
    mask |= 1ull << r;
  }
  return mask;
}
}  // namespace

RTmBase::RTmBase(const RSpec& spec, ItemId item, TxnId tm)
    : spec_(&spec), item_(item), tm_(tm) {
  QCNT_CHECK(spec.Finalized());
  const RItemInfo& info = spec.Item(item);
  const txn::SystemType& type = spec.Type();
  for (TxnId child : type.Children(tm)) {
    QCNT_CHECK(type.IsAccess(child));
    Kid kid;
    kid.txn = child;
    kid.replica = spec.ReplicaOf(type.ObjectOf(child));
    if (type.KindOf(child) == txn::AccessKind::kRead) {
      kid.kind = KidKind::kRead;
    } else {
      const Value& payload = type.DataOf(child);
      if (const auto* d = std::get_if<Versioned>(&payload)) {
        kid.kind = KidKind::kDataWrite;
        kid.data = *d;
      } else {
        kid.kind = KidKind::kConfigWrite;
        kid.stamp = std::get<ConfigStamp>(payload);
      }
    }
    kid_index_[child] = kids_.size();
    kids_.push_back(std::move(kid));
  }
  (void)info;
  Reset();
}

void RTmBase::Reset() {
  const RItemInfo& info = spec_->Item(item_);
  awake_ = false;
  data_ = Versioned{0, info.initial};
  stamp_ = ConfigStamp{info.initial_config.ToPayload(), 0};
  current_config_ = info.initial_config;
  read_ = 0;
  requested_.assign(kids_.size(), 0);
  write_requested_count_ = 0;
  data_written_ = 0;
  config_written_ = 0;
}

std::string RTmBase::Name() const { return spec_->Type().Label(tm_); }

bool RTmBase::IsOperation(const ioa::Action& a) const {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kRequestCommit:
      return a.txn == tm_;
    case ioa::ActionKind::kRequestCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return kid_index_.count(a.txn) != 0;
  }
  return false;
}

bool RTmBase::IsOutput(const ioa::Action& a) const {
  return IsOperation(a) && (a.kind == ioa::ActionKind::kRequestCreate ||
                            a.kind == ioa::ActionKind::kRequestCommit);
}

bool RTmBase::MaskHasQuorum(const std::vector<quorum::Quorum>& quorums,
                            std::uint64_t mask) {
  for (const quorum::Quorum& q : quorums) {
    const std::uint64_t qm = QuorumMask(q);
    if ((mask & qm) == qm) return true;
  }
  return false;
}

bool RTmBase::ReadPhaseComplete() const {
  return MaskHasQuorum(current_config_.ReadQuorums(), read_);
}

void RTmBase::ApplyShared(const ioa::Action& a) {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
      awake_ = true;
      break;
    case ioa::ActionKind::kRequestCreate: {
      const std::size_t i = kid_index_.at(a.txn);
      if (!requested_[i]) {
        requested_[i] = 1;
        if (kids_[i].kind != KidKind::kRead) ++write_requested_count_;
      }
      break;
    }
    case ioa::ActionKind::kCommit: {
      const Kid& kid = kids_[kid_index_.at(a.txn)];
      switch (kid.kind) {
        case KidKind::kRead:
          if (!WriteRequested()) {
            read_ |= 1ull << kid.replica;
            if (const auto* snap = std::get_if<ReplicaSnapshot>(&a.value)) {
              if (snap->data.version > data_.version) data_ = snap->data;
              if (snap->stamp.generation > stamp_.generation) {
                stamp_ = snap->stamp;
                current_config_ =
                    quorum::Configuration::FromPayload(stamp_.config);
              }
            }
          }
          break;
        case KidKind::kDataWrite:
          data_written_ |= 1ull << kid.replica;
          break;
        case KidKind::kConfigWrite:
          config_written_ |= 1ull << kid.replica;
          break;
      }
      break;
    }
    case ioa::ActionKind::kAbort:
      break;  // (no change)
    case ioa::ActionKind::kRequestCommit:
      awake_ = false;
      break;
  }
}

// --- RReadTm ----------------------------------------------------------------

RReadTm::RReadTm(const RSpec& spec, ItemId item, TxnId tm)
    : RTmBase(spec, item, tm) {
  for (const Kid& kid : kids_) {
    QCNT_CHECK_MSG(kid.kind == KidKind::kRead,
                   "read-TMs have only read accesses");
  }
}

bool RReadTm::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return true;  // inputs
    case ioa::ActionKind::kRequestCreate:
      return awake_ && !requested_[kid_index_.at(a.txn)];
    case ioa::ActionKind::kRequestCommit:
      return awake_ && ReadPhaseComplete() &&
             a.value == FromPlain(data_.value);
  }
  return false;
}

void RReadTm::Apply(const ioa::Action& a) { ApplyShared(a); }

void RReadTm::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (!awake_) return;
  for (std::size_t i = 0; i < kids_.size(); ++i) {
    if (!requested_[i]) out.push_back(ioa::RequestCreate(kids_[i].txn));
  }
  if (ReadPhaseComplete()) {
    out.push_back(ioa::RequestCommit(tm_, FromPlain(data_.value)));
  }
}

// --- RWriteTm ---------------------------------------------------------------

RWriteTm::RWriteTm(const RSpec& spec, ItemId item, TxnId tm)
    : RTmBase(spec, item, tm) {
  value_ = spec.Item(item).write_values.at(tm);
}

bool RWriteTm::WriteKidEnabled(const Kid& kid) const {
  return ReadPhaseComplete() && kid.data.version == data_.version + 1 &&
         kid.data.value == value_;
}

bool RWriteTm::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return true;  // inputs
    case ioa::ActionKind::kRequestCreate: {
      const Kid& kid = kids_[kid_index_.at(a.txn)];
      if (!awake_ || requested_[kid_index_.at(a.txn)]) return false;
      if (kid.kind == KidKind::kRead) return true;
      return WriteKidEnabled(kid);
    }
    case ioa::ActionKind::kRequestCommit:
      return awake_ && IsNil(a.value) &&
             MaskHasQuorum(current_config_.WriteQuorums(), data_written_);
  }
  return false;
}

void RWriteTm::Apply(const ioa::Action& a) { ApplyShared(a); }

void RWriteTm::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (!awake_) return;
  for (std::size_t i = 0; i < kids_.size(); ++i) {
    if (requested_[i]) continue;
    const Kid& kid = kids_[i];
    if (kid.kind == KidKind::kRead || WriteKidEnabled(kid)) {
      out.push_back(ioa::RequestCreate(kid.txn));
    }
  }
  if (MaskHasQuorum(current_config_.WriteQuorums(), data_written_)) {
    out.push_back(ioa::RequestCommit(tm_, kNil));
  }
}

// --- RReconfigTm ------------------------------------------------------------

RReconfigTm::RReconfigTm(const RSpec& spec, ItemId item, TxnId tm)
    : RTmBase(spec, item, tm) {
  target_ = spec.Item(item).target_configs.at(tm);
}

bool RReconfigTm::DataKidEnabled(const Kid& kid) const {
  return ReadPhaseComplete() && kid.data == data_;
}

bool RReconfigTm::ConfigKidEnabled(const Kid& kid) const {
  return ReadPhaseComplete() &&
         kid.stamp.generation == stamp_.generation + 1;
}

bool RReconfigTm::ReadyToCommit() const {
  return MaskHasQuorum(target_.WriteQuorums(), data_written_) &&
         MaskHasQuorum(current_config_.WriteQuorums(), config_written_);
}

bool RReconfigTm::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return true;  // inputs
    case ioa::ActionKind::kRequestCreate: {
      const Kid& kid = kids_[kid_index_.at(a.txn)];
      if (!awake_ || requested_[kid_index_.at(a.txn)]) return false;
      switch (kid.kind) {
        case KidKind::kRead:
          return true;
        case KidKind::kDataWrite:
          return DataKidEnabled(kid);
        case KidKind::kConfigWrite:
          return ConfigKidEnabled(kid);
      }
      return false;
    }
    case ioa::ActionKind::kRequestCommit:
      return awake_ && IsNil(a.value) && ReadyToCommit();
  }
  return false;
}

void RReconfigTm::Apply(const ioa::Action& a) { ApplyShared(a); }

void RReconfigTm::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (!awake_) return;
  for (std::size_t i = 0; i < kids_.size(); ++i) {
    if (requested_[i]) continue;
    const Kid& kid = kids_[i];
    const bool enabled = kid.kind == KidKind::kRead ||
                         (kid.kind == KidKind::kDataWrite &&
                          DataKidEnabled(kid)) ||
                         (kid.kind == KidKind::kConfigWrite &&
                          ConfigKidEnabled(kid));
    if (enabled) out.push_back(ioa::RequestCreate(kid.txn));
  }
  if (ReadyToCommit()) out.push_back(ioa::RequestCommit(tm_, kNil));
}

}  // namespace qcnt::reconfig
