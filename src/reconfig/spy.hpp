// Spy automata (Section 4).
//
// Reconfigure-TMs must be positioned as children of user transactions (for
// atomicity) yet run "spontaneously and transparently from the user's point
// of view". The paper resolves this modelling conflict by pairing each user
// transaction U with a spy automaton: the spy wakes up on CREATE(U) and
// nondeterministically issues REQUEST-CREATE for the reconfigure-TM
// children of U until U requests to commit. CREATE(U) and
// REQUEST-COMMIT(U, v) are *inputs* of the spy (shared with U / output by
// U), so the user program neither sees nor controls the reconfigurations,
// while well-formedness of U's combined operation sequence is preserved.
#pragma once

#include "ioa/automaton.hpp"
#include "txn/system_type.hpp"

namespace qcnt::reconfig {

class Spy : public ioa::Automaton {
 public:
  /// reconfig_tms must be children of user in `type`; they must not also be
  /// script children of the user's own automaton (outputs must be disjoint).
  Spy(const txn::SystemType& type, TxnId user, std::vector<TxnId> reconfig_tms);

  TxnId User() const { return user_; }
  bool Awake() const { return awake_ && !user_committing_; }

  // Automaton interface.
  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  std::size_t TmIndex(TxnId t) const;

  const txn::SystemType* type_;
  TxnId user_;
  std::vector<TxnId> reconfig_tms_;
  // State.
  bool awake_ = false;
  bool user_committing_ = false;
  std::vector<std::uint8_t> requested_;
};

}  // namespace qcnt::reconfig
