// Reconfigurable replicated system specification (Section 4).
//
// Gifford's reconfiguration algorithm, generalized as in the paper: each
// replica of x stores a (value, version-number) pair *and* a
// (configuration, generation-number) pair. Logical reads and writes discover
// the current configuration while they discover the current version (taking
// the config with the highest generation seen), so quorums may change
// dynamically. A reconfigure-TM with target configuration c' performs the
// read phase, then writes the data (v, t) it read to a write-quorum of c'
// and the stamp (c', g+1) to a write-quorum of the *old* configuration c —
// the paper notes writing c' to an old write-quorum alone suffices.
//
// Reconfigure-TMs are children of user transactions but are invoked by
// per-user-transaction *spy* automata (spy.hpp), keeping them spontaneous
// and invisible to the user programs while the serial scheduler still
// enforces the right atomicity.
//
// Finalize() materializes the finite access tree. Version numbers reachable
// are 0..W (W = number of write-TMs on the item); generations are 1..R
// (R = number of reconfigure-TMs); a reconfigure-TM's data writes may carry
// any (version, value) pair it could have read, i.e. versions 0..W crossed
// with {initial value} ∪ {write-TM values}.
#pragma once

#include <unordered_map>

#include "ioa/system.hpp"
#include "quorum/configuration.hpp"
#include "txn/system_type.hpp"

namespace qcnt::reconfig {

enum class TmKind : std::uint8_t { kRead, kWrite, kReconfigure };

struct RItemInfo {
  ItemId id = kNoItem;
  std::string name;
  Plain initial;
  quorum::Configuration initial_config;
  std::vector<ObjectId> dm_objects;
  std::vector<TxnId> read_tms;
  std::vector<TxnId> write_tms;
  std::vector<TxnId> reconfig_tms;
  std::unordered_map<TxnId, Plain> write_values;
  std::unordered_map<TxnId, quorum::Configuration> target_configs;
  std::vector<TxnId> accesses;
};

class RSpec {
 public:
  RSpec() = default;

  ItemId AddItem(std::string name, ReplicaId replicas,
                 quorum::Configuration initial_config, Plain initial);
  TxnId AddTransaction(TxnId parent, std::string label = {});
  TxnId AddReadTm(TxnId parent, ItemId item);
  TxnId AddWriteTm(TxnId parent, ItemId item, Plain value);
  /// target's quorums must range over the item's replicas and be legal.
  TxnId AddReconfigTm(TxnId parent, ItemId item,
                      quorum::Configuration target);
  void Finalize(std::size_t read_attempts = 1, std::size_t write_attempts = 1);

  const txn::SystemType& Type() const { return type_; }
  const std::vector<RItemInfo>& Items() const { return items_; }
  const RItemInfo& Item(ItemId x) const;
  bool Finalized() const { return finalized_; }

  bool IsReplicaAccess(TxnId t) const;
  ItemId TmItem(TxnId t) const;
  /// Kind of a TM; requires TmItem(t) != kNoItem.
  TmKind KindOfTm(TxnId t) const;
  bool IsUserTransaction(TxnId t) const;
  ReplicaId ReplicaOf(ObjectId dm_object) const;
  ItemId ItemOfDm(ObjectId dm_object) const;

  /// Every configuration that can ever be installed for item x: the initial
  /// configuration plus all reconfigure-TM targets.
  std::vector<quorum::Configuration> PossibleConfigs(ItemId x) const;

  /// Replicated serial system R (scheduler + reconfigurable DMs + TMs).
  /// User automata and spies are added by the caller.
  ioa::System BuildSystemR() const;

  /// Non-replicated serial system: each item is a single logical object
  /// whose accesses are the TM names; reconfigure-TMs are no-op accesses.
  ioa::System BuildSystemA() const;

 private:
  txn::SystemType type_;
  std::vector<RItemInfo> items_;
  std::unordered_map<TxnId, ItemId> tm_item_;
  std::unordered_map<TxnId, TmKind> tm_kind_;
  std::unordered_map<TxnId, ItemId> access_item_;
  std::unordered_map<ObjectId, std::pair<ItemId, ReplicaId>> dm_of_object_;
  bool finalized_ = false;
};

}  // namespace qcnt::reconfig
