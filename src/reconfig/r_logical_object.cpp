#include "reconfig/r_logical_object.hpp"

#include "common/check.hpp"

namespace qcnt::reconfig {

RLogicalObject::RLogicalObject(const RSpec& spec, ItemId item)
    : spec_(&spec), item_(item) {
  QCNT_CHECK(spec.Finalized());
  Reset();
}

void RLogicalObject::Reset() {
  active_ = kNoTxn;
  data_ = spec_->Item(item_).initial;
}

std::string RLogicalObject::Name() const {
  return "r-logical-object(" + spec_->Item(item_).name + ")";
}

bool RLogicalObject::IsOperation(const ioa::Action& a) const {
  if (a.kind != ioa::ActionKind::kCreate &&
      a.kind != ioa::ActionKind::kRequestCommit) {
    return false;
  }
  return spec_->TmItem(a.txn) == item_;
}

bool RLogicalObject::IsOutput(const ioa::Action& a) const {
  return a.kind == ioa::ActionKind::kRequestCommit && IsOperation(a);
}

bool RLogicalObject::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  if (a.kind == ioa::ActionKind::kCreate) return true;  // input
  if (active_ != a.txn) return false;
  if (spec_->KindOfTm(a.txn) == TmKind::kRead) {
    return a.value == FromPlain(data_);
  }
  return IsNil(a.value);  // writes and reconfigurations return nil
}

void RLogicalObject::Apply(const ioa::Action& a) {
  if (a.kind == ioa::ActionKind::kCreate) {
    active_ = a.txn;
    return;
  }
  if (spec_->KindOfTm(a.txn) == TmKind::kWrite) {
    data_ = spec_->Item(item_).write_values.at(a.txn);
  }
  active_ = kNoTxn;
}

void RLogicalObject::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (active_ == kNoTxn) return;
  if (spec_->KindOfTm(active_) == TmKind::kRead) {
    out.push_back(ioa::RequestCommit(active_, FromPlain(data_)));
  } else {
    out.push_back(ioa::RequestCommit(active_, kNil));
  }
}

}  // namespace qcnt::reconfig
