#include "reconfig/rspec.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "reconfig/r_logical_object.hpp"
#include "reconfig/reconfig_dm.hpp"
#include "reconfig/tms.hpp"
#include "txn/serial_scheduler.hpp"

namespace qcnt::reconfig {

ItemId RSpec::AddItem(std::string name, ReplicaId replicas,
                      quorum::Configuration initial_config, Plain initial) {
  QCNT_CHECK(!finalized_);
  QCNT_CHECK(replicas >= 1);
  QCNT_CHECK_MSG(initial_config.IsLegal(), "configuration must be legal");
  QCNT_CHECK(initial_config.UniverseSize() <= replicas);
  RItemInfo info;
  info.id = static_cast<ItemId>(items_.size());
  info.name = std::move(name);
  info.initial = std::move(initial);
  info.initial_config = std::move(initial_config);
  for (ReplicaId r = 0; r < replicas; ++r) {
    const ObjectId obj =
        type_.AddObject(info.name + ".rdm" + std::to_string(r));
    info.dm_objects.push_back(obj);
    dm_of_object_[obj] = {info.id, r};
  }
  items_.push_back(std::move(info));
  return items_.back().id;
}

TxnId RSpec::AddTransaction(TxnId parent, std::string label) {
  QCNT_CHECK(!finalized_);
  QCNT_CHECK_MSG(TmItem(parent) == kNoItem, "TMs may not have children");
  return type_.AddTransaction(parent, std::move(label));
}

TxnId RSpec::AddReadTm(TxnId parent, ItemId item) {
  QCNT_CHECK(!finalized_ && item < items_.size());
  QCNT_CHECK(TmItem(parent) == kNoItem);
  RItemInfo& info = items_[item];
  const TxnId tm = type_.AddTransaction(
      parent,
      "r-read-TM[" + info.name + "]#" + std::to_string(info.read_tms.size()));
  info.read_tms.push_back(tm);
  tm_item_[tm] = item;
  tm_kind_[tm] = TmKind::kRead;
  return tm;
}

TxnId RSpec::AddWriteTm(TxnId parent, ItemId item, Plain value) {
  QCNT_CHECK(!finalized_ && item < items_.size());
  QCNT_CHECK(TmItem(parent) == kNoItem);
  RItemInfo& info = items_[item];
  const TxnId tm = type_.AddTransaction(
      parent, "r-write-TM[" + info.name + "=" + qcnt::ToString(value) +
                  "]#" + std::to_string(info.write_tms.size()));
  info.write_tms.push_back(tm);
  info.write_values[tm] = std::move(value);
  tm_item_[tm] = item;
  tm_kind_[tm] = TmKind::kWrite;
  return tm;
}

TxnId RSpec::AddReconfigTm(TxnId parent, ItemId item,
                           quorum::Configuration target) {
  QCNT_CHECK(!finalized_ && item < items_.size());
  QCNT_CHECK(TmItem(parent) == kNoItem);
  RItemInfo& info = items_[item];
  QCNT_CHECK_MSG(target.IsLegal(), "target configuration must be legal");
  QCNT_CHECK(target.UniverseSize() <= info.dm_objects.size());
  const TxnId tm = type_.AddTransaction(
      parent, "reconfigure-TM[" + info.name + "]#" +
                  std::to_string(info.reconfig_tms.size()));
  info.reconfig_tms.push_back(tm);
  info.target_configs.emplace(tm, std::move(target));
  tm_item_[tm] = item;
  tm_kind_[tm] = TmKind::kReconfigure;
  return tm;
}

void RSpec::Finalize(std::size_t read_attempts, std::size_t write_attempts) {
  QCNT_CHECK(!finalized_);
  QCNT_CHECK(read_attempts >= 1 && write_attempts >= 1);
  for (RItemInfo& info : items_) {
    const std::uint64_t max_vn = info.write_tms.size();
    const std::uint64_t max_gen = info.reconfig_tms.size();

    // Distinct values a read phase can observe.
    std::vector<Plain> observable{info.initial};
    for (TxnId w : info.write_tms) {
      const Plain& v = info.write_values.at(w);
      if (std::find(observable.begin(), observable.end(), v) ==
          observable.end()) {
        observable.push_back(v);
      }
    }

    auto add_read_accesses = [&](TxnId tm) {
      for (ReplicaId r = 0; r < info.dm_objects.size(); ++r) {
        for (std::size_t k = 0; k < read_attempts; ++k) {
          const TxnId acc = type_.AddReadAccess(
              tm, info.dm_objects[r],
              type_.Label(tm) + ".r" + std::to_string(r) + "." +
                  std::to_string(k));
          info.accesses.push_back(acc);
          access_item_[acc] = info.id;
        }
      }
    };
    auto add_data_write = [&](TxnId tm, ReplicaId r, std::uint64_t vn,
                              const Plain& value, std::size_t k) {
      const TxnId acc = type_.AddWriteAccess(
          tm, info.dm_objects[r], Value{Versioned{vn, value}},
          type_.Label(tm) + ".w" + std::to_string(r) + ".v" +
              std::to_string(vn) + "." + std::to_string(k));
      info.accesses.push_back(acc);
      access_item_[acc] = info.id;
    };

    for (TxnId tm : info.read_tms) add_read_accesses(tm);

    for (TxnId tm : info.write_tms) {
      add_read_accesses(tm);
      const Plain& value = info.write_values.at(tm);
      for (ReplicaId r = 0; r < info.dm_objects.size(); ++r) {
        for (std::uint64_t vn = 1; vn <= max_vn; ++vn) {
          for (std::size_t k = 0; k < write_attempts; ++k) {
            add_data_write(tm, r, vn, value, k);
          }
        }
      }
    }

    for (TxnId tm : info.reconfig_tms) {
      add_read_accesses(tm);
      // Data writes re-installing any observable (version, value) pair.
      for (ReplicaId r = 0; r < info.dm_objects.size(); ++r) {
        for (std::uint64_t vn = 0; vn <= max_vn; ++vn) {
          for (const Plain& value : observable) {
            for (std::size_t k = 0; k < write_attempts; ++k) {
              add_data_write(tm, r, vn, value, k);
            }
          }
        }
      }
      // Config writes installing (target, g) for any reachable generation.
      const quorum::Configuration& target = info.target_configs.at(tm);
      for (ReplicaId r = 0; r < info.dm_objects.size(); ++r) {
        for (std::uint64_t gen = 1; gen <= max_gen; ++gen) {
          for (std::size_t k = 0; k < write_attempts; ++k) {
            const TxnId acc = type_.AddWriteAccess(
                tm, info.dm_objects[r],
                Value{ConfigStamp{target.ToPayload(), gen}},
                type_.Label(tm) + ".c" + std::to_string(r) + ".g" +
                    std::to_string(gen) + "." + std::to_string(k));
            info.accesses.push_back(acc);
            access_item_[acc] = info.id;
          }
        }
      }
    }
  }
  finalized_ = true;
}

const RItemInfo& RSpec::Item(ItemId x) const {
  QCNT_CHECK(x < items_.size());
  return items_[x];
}

bool RSpec::IsReplicaAccess(TxnId t) const {
  return access_item_.count(t) != 0;
}

ItemId RSpec::TmItem(TxnId t) const {
  auto it = tm_item_.find(t);
  return it == tm_item_.end() ? kNoItem : it->second;
}

TmKind RSpec::KindOfTm(TxnId t) const {
  auto it = tm_kind_.find(t);
  QCNT_CHECK(it != tm_kind_.end());
  return it->second;
}

bool RSpec::IsUserTransaction(TxnId t) const {
  return t < type_.TxnCount() && !type_.IsAccess(t) && TmItem(t) == kNoItem;
}

ReplicaId RSpec::ReplicaOf(ObjectId dm_object) const {
  auto it = dm_of_object_.find(dm_object);
  QCNT_CHECK(it != dm_of_object_.end());
  return it->second.second;
}

ItemId RSpec::ItemOfDm(ObjectId dm_object) const {
  auto it = dm_of_object_.find(dm_object);
  return it == dm_of_object_.end() ? kNoItem : it->second.first;
}

std::vector<quorum::Configuration> RSpec::PossibleConfigs(ItemId x) const {
  const RItemInfo& info = Item(x);
  std::vector<quorum::Configuration> configs{info.initial_config};
  for (TxnId tm : info.reconfig_tms) {
    const quorum::Configuration& c = info.target_configs.at(tm);
    if (std::find(configs.begin(), configs.end(), c) == configs.end()) {
      configs.push_back(c);
    }
  }
  return configs;
}

ioa::System RSpec::BuildSystemR() const {
  QCNT_CHECK(finalized_);
  ioa::System sys("system-R");
  sys.Emplace<txn::SerialScheduler>(type_);
  for (const RItemInfo& info : items_) {
    for (ObjectId dm : info.dm_objects) {
      sys.Emplace<ReconfigDm>(*this, dm);
    }
    for (TxnId tm : info.read_tms) sys.Emplace<RReadTm>(*this, info.id, tm);
    for (TxnId tm : info.write_tms) sys.Emplace<RWriteTm>(*this, info.id, tm);
    for (TxnId tm : info.reconfig_tms) {
      sys.Emplace<RReconfigTm>(*this, info.id, tm);
    }
  }
  return sys;
}

ioa::System RSpec::BuildSystemA() const {
  QCNT_CHECK(finalized_);
  ioa::System sys("system-A(reconfig)");
  sys.Emplace<txn::SerialScheduler>(type_);
  for (const RItemInfo& info : items_) {
    sys.Emplace<RLogicalObject>(*this, info.id);
  }
  return sys;
}

}  // namespace qcnt::reconfig
