// Correctness machinery for the reconfigurable algorithm: the Section-4
// analogues of logical-state / current-vn, the generation-number invariants,
// and the simulation theorem check ("the formalisms and proofs follow the
// same pattern as those of the previous section").
#pragma once

#include <functional>

#include "reconfig/rspec.hpp"

namespace qcnt::reconfig {

using UserAutomataFactory = std::function<void(ioa::System&)>;

ioa::System BuildR(const RSpec& spec, const UserAutomataFactory& users);
ioa::System BuildA(const RSpec& spec, const UserAutomataFactory& users);

/// logical-state(x, β): the value of the last write-TM that request-
/// committed, or the initial value. Reconfigure-TMs never change it.
Plain LogicalState(const RSpec& spec, ItemId x, const ioa::Schedule& beta);

/// current-vn(x, β): over *data* write accesses only (config writes carry
/// no version).
std::uint64_t CurrentVersion(const RSpec& spec, ItemId x,
                             const ioa::Schedule& beta);

/// The reconfigure-TMs for x that request-committed in β, in order.
std::vector<TxnId> CompletedReconfigs(const RSpec& spec, ItemId x,
                                      const ioa::Schedule& beta);

/// The configuration in force after β: the target of the last completed
/// reconfigure-TM, or the initial configuration.
quorum::Configuration CurrentConfiguration(const RSpec& spec, ItemId x,
                                           const ioa::Schedule& beta);

struct RInvariantReport {
  bool ok = true;
  std::string message;
};

/// Between logical operations (access(x, β) of even length), check:
///   * the highest generation among DM stamps equals the number of
///     completed reconfigurations, and DMs at that generation carry the
///     current configuration;
///   * the highest data version among DMs equals current-vn(x, β);
///   * some write-quorum of the *current* configuration holds version
///     current-vn, and every DM at current-vn holds logical-state(x, β);
///   * if β ends in a read-TM REQUEST-COMMIT(T, v), v = logical-state.
/// `r` must be the composed system that executed β.
RInvariantReport CheckReconfigInvariants(const RSpec& spec,
                                         const ioa::System& r,
                                         const ioa::Schedule& beta);

struct RTheoremResult {
  bool ok = true;
  std::string message;
  ioa::Schedule alpha;
};

/// The Theorem-10 analogue with reconfiguration: deleting replica-access
/// operations from a schedule of system R yields a schedule of the
/// non-replicated system, identical at every user transaction.
RTheoremResult CheckReconfigTheorem(const RSpec& spec,
                                    const UserAutomataFactory& users,
                                    const ioa::Schedule& beta);

}  // namespace qcnt::reconfig
