#include "reconfig/theorem.hpp"

#include "common/check.hpp"
#include "ioa/execution.hpp"
#include "reconfig/r_logical_object.hpp"
#include "reconfig/reconfig_dm.hpp"

namespace qcnt::reconfig {

ioa::System BuildR(const RSpec& spec, const UserAutomataFactory& users) {
  ioa::System sys = spec.BuildSystemR();
  if (users) users(sys);
  return sys;
}

ioa::System BuildA(const RSpec& spec, const UserAutomataFactory& users) {
  ioa::System sys = spec.BuildSystemA();
  if (users) users(sys);
  return sys;
}

Plain LogicalState(const RSpec& spec, ItemId x, const ioa::Schedule& beta) {
  const RItemInfo& info = spec.Item(x);
  Plain state = info.initial;
  for (const ioa::Action& a : beta) {
    if (a.kind != ioa::ActionKind::kRequestCommit) continue;
    if (spec.TmItem(a.txn) != x) continue;
    if (spec.KindOfTm(a.txn) == TmKind::kWrite) {
      state = info.write_values.at(a.txn);
    }
  }
  return state;
}

std::uint64_t CurrentVersion(const RSpec& spec, ItemId x,
                             const ioa::Schedule& beta) {
  const RItemInfo& info = spec.Item(x);
  const txn::SystemType& type = spec.Type();
  std::vector<std::uint64_t> last_vn(info.dm_objects.size(), 0);
  std::vector<std::uint8_t> seen(info.dm_objects.size(), 0);
  for (const ioa::Action& a : beta) {
    if (a.kind != ioa::ActionKind::kRequestCommit) continue;
    if (!spec.IsReplicaAccess(a.txn)) continue;
    if (type.KindOf(a.txn) != txn::AccessKind::kWrite) continue;
    const auto* data = std::get_if<Versioned>(&type.DataOf(a.txn));
    if (data == nullptr) continue;  // config write
    const ObjectId obj = type.ObjectOf(a.txn);
    if (spec.ItemOfDm(obj) != x) continue;
    const ReplicaId r = spec.ReplicaOf(obj);
    last_vn[r] = data->version;
    seen[r] = 1;
  }
  std::uint64_t current = 0;
  for (std::size_t r = 0; r < last_vn.size(); ++r) {
    if (seen[r]) current = std::max(current, last_vn[r]);
  }
  return current;
}

std::vector<TxnId> CompletedReconfigs(const RSpec& spec, ItemId x,
                                      const ioa::Schedule& beta) {
  std::vector<TxnId> done;
  for (const ioa::Action& a : beta) {
    if (a.kind != ioa::ActionKind::kRequestCommit) continue;
    if (spec.TmItem(a.txn) != x) continue;
    if (spec.KindOfTm(a.txn) == TmKind::kReconfigure) done.push_back(a.txn);
  }
  return done;
}

quorum::Configuration CurrentConfiguration(const RSpec& spec, ItemId x,
                                           const ioa::Schedule& beta) {
  const std::vector<TxnId> done = CompletedReconfigs(spec, x, beta);
  if (done.empty()) return spec.Item(x).initial_config;
  return spec.Item(x).target_configs.at(done.back());
}

namespace {

struct DmSnapshot {
  Versioned data;
  ConfigStamp stamp;
};

std::vector<DmSnapshot> DmStates(const RSpec& spec, const ioa::System& sys,
                                 ItemId x) {
  const RItemInfo& info = spec.Item(x);
  std::vector<DmSnapshot> states(info.dm_objects.size());
  std::vector<std::uint8_t> found(info.dm_objects.size(), 0);
  for (std::size_t i = 0; i < sys.ComponentCount(); ++i) {
    const auto* dm = dynamic_cast<const ReconfigDm*>(&sys.Component(i));
    if (dm == nullptr) continue;
    if (spec.ItemOfDm(dm->Object()) != x) continue;
    const ReplicaId r = spec.ReplicaOf(dm->Object());
    states[r] = {dm->Data(), dm->Stamp()};
    found[r] = 1;
  }
  for (std::uint8_t f : found) QCNT_CHECK_MSG(f, "missing reconfig DM");
  return states;
}

ioa::Schedule AccessSequence(const RSpec& spec, ItemId x,
                             const ioa::Schedule& beta) {
  ioa::Schedule out;
  for (const ioa::Action& a : beta) {
    if (a.kind != ioa::ActionKind::kCreate &&
        a.kind != ioa::ActionKind::kRequestCommit) {
      continue;
    }
    if (spec.TmItem(a.txn) == x) out.push_back(a);
  }
  return out;
}

}  // namespace

RInvariantReport CheckReconfigInvariants(const RSpec& spec,
                                         const ioa::System& r,
                                         const ioa::Schedule& beta) {
  for (const RItemInfo& info : spec.Items()) {
    const ItemId x = info.id;
    const ioa::Schedule access = AccessSequence(spec, x, beta);
    if (access.size() % 2 != 0) continue;  // mid-logical-operation

    const std::vector<DmSnapshot> dms = DmStates(spec, r, x);
    const std::uint64_t current_vn = CurrentVersion(spec, x, beta);
    const Plain logical_state = LogicalState(spec, x, beta);
    const std::vector<TxnId> reconfigs = CompletedReconfigs(spec, x, beta);
    const quorum::Configuration current_config =
        CurrentConfiguration(spec, x, beta);
    const std::uint64_t expected_gen = reconfigs.size();

    // Generation invariant.
    std::uint64_t max_gen = 0;
    for (const DmSnapshot& d : dms) {
      max_gen = std::max(max_gen, d.stamp.generation);
    }
    if (max_gen != expected_gen) {
      return {false, "generation invariant violated for " + info.name +
                         ": max DM generation " + std::to_string(max_gen) +
                         " != completed reconfigurations " +
                         std::to_string(expected_gen)};
    }
    for (const DmSnapshot& d : dms) {
      if (d.stamp.generation == expected_gen && expected_gen > 0 &&
          !(d.stamp.config == current_config.ToPayload())) {
        return {false, "DM at current generation holds a stale "
                       "configuration for " + info.name};
      }
    }

    // Version invariant (Lemma 7 analogue).
    std::uint64_t max_vn = 0;
    for (const DmSnapshot& d : dms) max_vn = std::max(max_vn, d.data.version);
    if (max_vn != current_vn) {
      return {false, "version invariant violated for " + info.name +
                         ": max DM version " + std::to_string(max_vn) +
                         " != current-vn " + std::to_string(current_vn)};
    }

    // Lemma 8 analogue against the *current* configuration.
    bool quorum_current = false;
    for (const quorum::Quorum& q : current_config.WriteQuorums()) {
      bool all = true;
      for (ReplicaId rep : q) {
        if (dms[rep].data.version != current_vn) {
          all = false;
          break;
        }
      }
      if (all) {
        quorum_current = true;
        break;
      }
    }
    if (!quorum_current) {
      return {false, "no write-quorum of the current configuration holds "
                     "current-vn for " + info.name};
    }
    for (ReplicaId rep = 0; rep < dms.size(); ++rep) {
      if (dms[rep].data.version == current_vn &&
          !(dms[rep].data.value == logical_state)) {
        return {false, "DM " + std::to_string(rep) + " of " + info.name +
                           " at current-vn holds " +
                           qcnt::ToString(dms[rep].data.value) +
                           ", expected " + qcnt::ToString(logical_state)};
      }
    }

    if (!beta.empty()) {
      const ioa::Action& last = beta.back();
      if (last.kind == ioa::ActionKind::kRequestCommit &&
          spec.TmItem(last.txn) == x &&
          spec.KindOfTm(last.txn) == TmKind::kRead) {
        if (!(last.value == FromPlain(logical_state))) {
          return {false, "read-TM for " + info.name + " returned " +
                             qcnt::ToString(last.value) + ", expected " +
                             qcnt::ToString(logical_state)};
        }
      }
    }
  }
  return {};
}

RTheoremResult CheckReconfigTheorem(const RSpec& spec,
                                    const UserAutomataFactory& users,
                                    const ioa::Schedule& beta) {
  RTheoremResult result;
  result.alpha = ioa::Project(beta, [&spec](const ioa::Action& a) {
    return !spec.IsReplicaAccess(a.txn);
  });
  ioa::System a = BuildA(spec, users);
  const ioa::ReplayResult replay = ioa::Replay(a, result.alpha);
  if (!replay.ok) {
    result.ok = false;
    result.message = "alpha is not a schedule of the non-replicated "
                     "system: step " +
                     std::to_string(replay.failed_index) + ": " +
                     replay.message;
    return result;
  }
  for (std::size_t i = 0; i < a.ComponentCount(); ++i) {
    const auto* logical =
        dynamic_cast<const RLogicalObject*>(&a.Component(i));
    if (logical == nullptr) continue;
    for (const RItemInfo& info : spec.Items()) {
      if (logical->Name() != "r-logical-object(" + info.name + ")") continue;
      const Plain expected = LogicalState(spec, info.id, beta);
      if (!(logical->Data() == expected)) {
        result.ok = false;
        result.message = "logical object for " + info.name + " holds " +
                         qcnt::ToString(logical->Data()) + ", expected " +
                         qcnt::ToString(expected);
        return result;
      }
    }
  }
  return result;
}

}  // namespace qcnt::reconfig
