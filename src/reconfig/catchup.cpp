#include "reconfig/catchup.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "common/check.hpp"
#include "runtime/store.hpp"

namespace qcnt::reconfig {

using runtime::BatchEntry;
using runtime::Envelope;
using runtime::MemberConfig;
using runtime::NodeId;
using runtime::RtMessage;

namespace {
std::chrono::steady_clock::time_point Deadline(
    std::chrono::milliseconds timeout) {
  return std::chrono::steady_clock::now() + timeout;
}

/// Monotone across every coordinator in the process — see the epoch_
/// comment in the header.
std::atomic<std::uint64_t> g_coordinator_epoch{0};

/// Re-derive the serving quorum strategy over a changed member set.
/// Historically membership change installed ConfigTable::Majority(...)
/// unconditionally, silently discarding whatever grid/tree/weighted/ROWA
/// strategy the store was serving under — a 3→5→3 cycle came back
/// majority. Descriptors make the strategy explicit: size-free kinds
/// (majority, ROWA, RAWO, primary) re-derive over the new member count,
/// and a kind whose parameters pin the universe size (grid, tree,
/// hierarchical, weighted votes) throws StrategyConfigError so the
/// caller refuses the change instead of quietly swapping quorum systems.
MemberConfig DeriveTargetConfig(const MemberConfig& current,
                                std::vector<NodeId> members) {
  const quorum::StrategyDescriptor& d = current.system.descriptor;
  if (d.kind == quorum::StrategyKind::kOpaque) {
    // Hand-built system with no serializable recipe: majority over the
    // new members is the only honest derivation (the pre-descriptor
    // behavior, kept for opaque configs only).
    return runtime::ConfigTable::Majority(std::move(members));
  }
  return runtime::ConfigTable::FromDescriptor(d, std::move(members));
}
}  // namespace

MembershipCoordinator::MembershipCoordinator(
    runtime::Transport& transport, NodeId id,
    std::shared_ptr<runtime::ConfigTable> table,
    std::uint32_t believed_config, MembershipOptions options)
    : transport_(&transport),
      id_(id),
      table_(table),
      options_(std::move(options)),
      client_(transport, id, std::move(table), believed_config,
              options_.client),
      epoch_((g_coordinator_epoch.fetch_add(1, std::memory_order_relaxed) &
              ((1ull << 23) - 1))
             << 40) {}

bool MembershipCoordinator::Prime(MembershipReport& report) {
  // A read quorum of the distinguished config key reveals the newest
  // installed (generation, config): the coordinator must stamp its drain
  // installs and seal streams with a generation no live replica fences.
  const runtime::ClientResult r = client_.Read("");
  if (!r.ok) {
    report.error = std::string("priming read found no quorum (") +
                   runtime::ToString(r.status) + ")";
    return false;
  }
  return true;
}

bool MembershipCoordinator::RunBulkCatchup(
    NodeId joiner, const std::vector<NodeId>& donors, std::uint64_t shards,
    MembershipReport& report) {
  QCNT_CHECK_MSG(!donors.empty(), "bulk catchup needs at least one donor");
  // Each attempt (re-)issues the join against the next donor and waits
  // one progress window for the joiner's done report. A re-issued join
  // with the same shard layout *resumes* from the joiner's cursor, so a
  // timeout mid-transfer (slow or crashed donor) costs only the chunk in
  // flight, never the stream so far.
  std::vector<std::uint64_t> issued;
  for (std::size_t attempt = 0; attempt < options_.max_step_attempts;
       ++attempt) {
    const NodeId donor = donors[attempt % donors.size()];
    const std::uint64_t op = NextOp();
    issued.push_back(op);
    RtMessage join;
    join.kind = RtMessage::Kind::kJoinReq;
    join.op = op;
    join.value = static_cast<std::int64_t>(donor);
    join.version = shards;
    transport_->Send(id_, joiner, std::move(join));

    const auto deadline = Deadline(options_.step_timeout);
    while (std::chrono::steady_clock::now() < deadline) {
      std::optional<Envelope> e = transport_->MailboxOf(id_).Pop(deadline);
      if (!e) {
        if (std::chrono::steady_clock::now() < deadline) {
          report.error = "transport closed during bulk catchup";
          return false;
        }
        break;  // progress window elapsed: re-issue (resumes)
      }
      if (e->from != joiner) continue;
      if (e->msg.kind != RtMessage::Kind::kCatchupDone) continue;
      bool ours = false;
      for (std::uint64_t o : issued) ours |= o == e->msg.op;
      if (!ours) continue;
      if (e->msg.value != runtime::kJoinOk) {
        report.error =
            e->msg.value == runtime::kJoinErrShardMismatch
                ? "joiner refused: donor shard layout differs from the "
                  "promised manifest"
                : "joiner refused the catchup stream";
        return false;
      }
      report.catchup_entries = e->msg.version;
      return true;
    }
  }
  report.error = "bulk catchup made no progress (no reachable donor)";
  return false;
}

bool MembershipCoordinator::PullChunk(NodeId source, std::uint32_t shard,
                                      std::uint64_t shards,
                                      std::string& cursor, bool& more,
                                      std::vector<BatchEntry>& entries,
                                      std::string& error) {
  for (std::size_t attempt = 0; attempt < options_.max_step_attempts;
       ++attempt) {
    const std::uint64_t op = NextOp();
    RtMessage req;
    req.kind = RtMessage::Kind::kCatchupReq;
    req.op = op;
    req.key = cursor;
    req.version = shard;
    req.value = static_cast<std::int64_t>(options_.chunk_entries);
    transport_->Send(id_, source, std::move(req));

    const auto deadline = Deadline(options_.step_timeout);
    for (;;) {
      std::optional<Envelope> e = transport_->MailboxOf(id_).Pop(deadline);
      if (!e) {
        if (std::chrono::steady_clock::now() < deadline) {
          error = "transport closed during pull";
          return false;
        }
        break;  // timed out: fresh op, same cursor (idempotent)
      }
      if (e->from != source) continue;
      if (e->msg.kind != RtMessage::Kind::kCatchupChunk) continue;
      if (e->msg.op != op) continue;  // stale earlier attempt
      if (e->msg.version != shards) {
        error = "source shard layout differs from the promised manifest";
        return false;
      }
      entries = std::move(e->msg.batch);
      if (!entries.empty()) cursor = e->msg.key;
      more = e->msg.value != 0;
      return true;
    }
  }
  error = "pull timed out (source unreachable)";
  return false;
}

bool MembershipCoordinator::InstallEntries(
    const std::vector<BatchEntry>& entries,
    const std::vector<NodeId>& targets, const MemberConfig& quorum_of,
    std::uint64_t generation, std::string& error) {
  if (entries.empty()) return true;
  RtMessage m;
  m.kind = RtMessage::Kind::kBatchWriteReq;
  // Installs carry the raw pulled versions (never read-modify-write: a
  // re-streamed entry must land exactly where the original write did,
  // and the replica's newer-version-wins merge makes re-sends no-ops).
  m.generation = generation;
  m.config_id = client_.BelievedConfig();
  m.batch = entries;
  // Op ids are stable across resends, so a straggling ack from an
  // earlier attempt still counts toward the same entry.
  std::vector<std::uint64_t> acked(entries.size(), 0);
  for (BatchEntry& entry : m.batch) entry.op = NextOp();

  const auto satisfied = [&]() {
    for (const std::uint64_t mask : acked) {
      if (!quorum_of.system.has_write(mask & quorum_of.member_mask)) {
        return false;
      }
    }
    return true;
  };
  for (std::size_t attempt = 0; attempt < options_.max_step_attempts;
       ++attempt) {
    for (const NodeId t : targets) transport_->Send(id_, t, m);
    const auto deadline = Deadline(options_.step_timeout);
    for (;;) {
      std::optional<Envelope> e = transport_->MailboxOf(id_).Pop(deadline);
      if (!e) {
        if (std::chrono::steady_clock::now() < deadline) {
          error = "transport closed during install";
          return false;
        }
        break;  // timed out: resend the batch (idempotent)
      }
      if (e->from >= 64) continue;
      if (e->msg.kind != RtMessage::Kind::kBatchWriteAck) continue;
      const std::uint64_t bit = 1ull << e->from;
      for (const BatchEntry& ack : e->msg.batch) {
        if (ack.value != 0) {
          // Fenced: a strictly newer generation exists. Membership
          // operations are serialized per store, so this means the
          // coordinator's view is stale beyond repair for this pass.
          error = "install fenced by a newer generation";
          return false;
        }
        for (std::size_t i = 0; i < m.batch.size(); ++i) {
          if (m.batch[i].op == ack.op) acked[i] |= bit;
        }
      }
      if (satisfied()) return true;
    }
  }
  error = "install found no ack quorum";
  return false;
}

bool MembershipCoordinator::StreamImage(NodeId source,
                                        const std::vector<NodeId>& targets,
                                        const MemberConfig& quorum_of,
                                        std::uint64_t shards,
                                        std::uint64_t generation,
                                        MembershipReport& report) {
  for (std::uint32_t shard = 0; shard < shards; ++shard) {
    std::string cursor;
    bool more = true;
    while (more) {
      std::vector<BatchEntry> entries;
      if (!PullChunk(source, shard, shards, cursor, more, entries,
                     report.error)) {
        return false;
      }
      if (!InstallEntries(entries, targets, quorum_of, generation,
                          report.error)) {
        return false;
      }
      report.seal_entries += entries.size();
    }
  }
  return true;
}

MembershipReport MembershipCoordinator::Join(
    NodeId joiner, const std::vector<NodeId>& donors, std::uint64_t shards,
    std::uint32_t target) {
  MembershipReport report;
  const auto target_cfg = table_->TryAt(target);
  if (target_cfg == nullptr) {
    report.error = "unknown target configuration";
    return report;
  }
  if (!Prime(report)) return report;
  if (!RunBulkCatchup(joiner, donors, shards, report)) return report;

  std::uint64_t s_acked = 0;
  const runtime::ClientResult r = client_.Reconfigure(target, &s_acked);
  if (!r.ok) {
    report.error = std::string("reconfigure found no quorum (") +
                   runtime::ToString(r.status) + ")";
    return report;
  }

  // Phase C: seal from every old member that acked the stamp. Their
  // images jointly contain every write acked under the old generation,
  // and every one of them now fences older installs — so after this loop
  // no write the joiner is missing can ever be acked. The seal targets
  // exactly one node, so its "quorum" is the joiner itself — this is a
  // delivery requirement, not a serving strategy, and must not inherit
  // the store's (possibly non-majority) descriptor.
  const MemberConfig joiner_only = runtime::ConfigTable::Singleton(joiner);
  for (NodeId member = 0; member < 64; ++member) {
    if ((s_acked & (1ull << member)) == 0) continue;
    if (!StreamImage(member, {joiner}, joiner_only, shards,
                     client_.BelievedGeneration(), report)) {
      report.error = "seal from member " + std::to_string(member) +
                     " failed: " + report.error;
      return report;
    }
  }
  report.ok = true;
  report.drained = true;
  report.config_id = target;
  report.generation = client_.BelievedGeneration();
  return report;
}

MembershipReport MembershipCoordinator::Leave(NodeId leaver,
                                              std::uint64_t shards,
                                              std::uint32_t target) {
  MembershipReport report;
  if (table_->TryAt(target) == nullptr) {
    report.error = "unknown target configuration";
    return report;
  }
  if (!Prime(report)) return report;
  const auto old_cfg = table_->At(client_.BelievedConfig());

  // Drain: re-stream the leaver's image into a write quorum of the old
  // configuration, so no write survives only on the departing replica.
  // An unreachable leaver (decommissioning a dead node) skips the drain:
  // its copies are unreachable either way, and the stamp alone restores
  // write availability — the §4 point. A drain that fails midway leaves
  // only idempotent re-installs behind, so it degrades to the same case.
  MembershipReport drain;
  if (StreamImage(leaver, old_cfg->members, *old_cfg, shards,
                  client_.BelievedGeneration(), drain)) {
    report.drained = true;
    report.seal_entries = drain.seal_entries;
  } else {
    report.drained = false;
    report.seal_entries = drain.seal_entries;
  }

  const runtime::ClientResult r = client_.Reconfigure(target);
  if (!r.ok) {
    report.error = std::string("reconfigure found no quorum (") +
                   runtime::ToString(r.status) + ")";
    return report;
  }
  report.ok = true;
  report.config_id = target;
  report.generation = client_.BelievedGeneration();
  return report;
}

MembershipReport AddReplica(runtime::ReplicatedStore& store,
                            const MembershipOptions& options) {
  const auto membership = store.LockMembership();
  MembershipReport report;
  const std::vector<NodeId> donors = store.Members();
  const NodeId joiner = store.SpawnReplica();
  report.node = joiner;

  std::vector<NodeId> grown = donors;
  grown.push_back(joiner);
  MemberConfig target_cfg;
  try {
    target_cfg = DeriveTargetConfig(
        *store.ConfigTableRef()->At(store.CurrentConfigId()), grown);
  } catch (const quorum::StrategyConfigError& err) {
    report.error =
        std::string("strategy cannot span the grown membership: ") +
        err.what();
    store.RetireReplica(joiner);
    return report;
  }
  const std::uint32_t target =
      store.ConfigTableRef()->Append(std::move(target_cfg));

  MembershipCoordinator coordinator(store.TransportRef(),
                                    store.CoordinatorId(),
                                    store.ConfigTableRef(),
                                    store.CurrentConfigId(), options);
  const MembershipReport join = coordinator.Join(
      joiner, donors, store.ShardsPerReplica(), target);
  report.ok = join.ok;
  report.config_id = join.config_id;
  report.generation = join.generation;
  report.catchup_entries = join.catchup_entries;
  report.seal_entries = join.seal_entries;
  report.drained = join.drained;
  report.error = join.error;
  if (report.ok) {
    store.CommitMembership(std::move(grown), target);
  } else {
    // The id stays burned and the appended configuration was never
    // stamped, so no replica will ever name it — both are harmless.
    store.RetireReplica(joiner);
  }
  return report;
}

MembershipReport RemoveReplica(runtime::ReplicatedStore& store, NodeId node,
                               const MembershipOptions& options) {
  const auto membership = store.LockMembership();
  MembershipReport report;
  report.node = node;
  std::vector<NodeId> remaining = store.Members();
  const auto it = std::find(remaining.begin(), remaining.end(), node);
  if (it == remaining.end()) {
    report.error = "node is not a member of the current configuration";
    return report;
  }
  if (remaining.size() < 2) {
    report.error = "refusing to remove the last replica";
    return report;
  }
  remaining.erase(it);
  MemberConfig target_cfg;
  try {
    target_cfg = DeriveTargetConfig(
        *store.ConfigTableRef()->At(store.CurrentConfigId()), remaining);
  } catch (const quorum::StrategyConfigError& err) {
    report.error =
        std::string("strategy cannot span the shrunk membership: ") +
        err.what();
    return report;
  }
  const std::uint32_t target =
      store.ConfigTableRef()->Append(std::move(target_cfg));

  MembershipCoordinator coordinator(store.TransportRef(),
                                    store.CoordinatorId(),
                                    store.ConfigTableRef(),
                                    store.CurrentConfigId(), options);
  const MembershipReport leave =
      coordinator.Leave(node, store.ShardsPerReplica(), target);
  report.ok = leave.ok;
  report.config_id = leave.config_id;
  report.generation = leave.generation;
  report.seal_entries = leave.seal_entries;
  report.drained = leave.drained;
  report.error = leave.error;
  if (report.ok) {
    store.CommitMembership(std::move(remaining), target);
    store.RetireReplica(node);
  }
  return report;
}

}  // namespace qcnt::reconfig

