// The logical read-write object of the non-replicated system corresponding
// to a reconfigurable replicated system. Read-/write-TM names behave as in
// Section 3.2; reconfigure-TM names become *no-op* accesses: they return
// nil and leave the data unchanged, capturing that reconfiguration is
// invisible at the logical level.
#pragma once

#include "ioa/automaton.hpp"
#include "reconfig/rspec.hpp"

namespace qcnt::reconfig {

class RLogicalObject : public ioa::Automaton {
 public:
  RLogicalObject(const RSpec& spec, ItemId item);

  const Plain& Data() const { return data_; }
  TxnId Active() const { return active_; }

  // Automaton interface.
  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  const RSpec* spec_;
  ItemId item_;
  // State.
  TxnId active_ = kNoTxn;
  Plain data_;
};

}  // namespace qcnt::reconfig
