#include "reconfig/reconfig_dm.hpp"

#include "common/check.hpp"

namespace qcnt::reconfig {

ReconfigDm::ReconfigDm(const RSpec& spec, ObjectId object)
    : spec_(&spec), object_(object) {
  QCNT_CHECK(spec.Finalized());
  const ItemId x = spec.ItemOfDm(object);
  QCNT_CHECK(x != kNoItem);
  const RItemInfo& info = spec.Item(x);
  initial_data_ = Versioned{0, info.initial};
  initial_stamp_ = ConfigStamp{info.initial_config.ToPayload(), 0};
  Reset();
}

void ReconfigDm::Reset() {
  active_ = kNoTxn;
  data_ = initial_data_;
  stamp_ = initial_stamp_;
}

std::string ReconfigDm::Name() const {
  return "reconfig-dm(" + spec_->Type().ObjectLabel(object_) + ")";
}

bool ReconfigDm::IsOperation(const ioa::Action& a) const {
  if (a.kind != ioa::ActionKind::kCreate &&
      a.kind != ioa::ActionKind::kRequestCommit) {
    return false;
  }
  return a.txn < spec_->Type().TxnCount() && spec_->Type().IsAccess(a.txn) &&
         spec_->Type().ObjectOf(a.txn) == object_;
}

bool ReconfigDm::IsOutput(const ioa::Action& a) const {
  return a.kind == ioa::ActionKind::kRequestCommit && IsOperation(a);
}

bool ReconfigDm::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  if (a.kind == ioa::ActionKind::kCreate) return true;  // input
  if (active_ != a.txn) return false;
  if (spec_->Type().KindOf(a.txn) == txn::AccessKind::kRead) {
    return a.value == SnapshotValue();
  }
  return IsNil(a.value);
}

void ReconfigDm::Apply(const ioa::Action& a) {
  if (a.kind == ioa::ActionKind::kCreate) {
    active_ = a.txn;
    return;
  }
  QCNT_DCHECK(a.kind == ioa::ActionKind::kRequestCommit);
  if (spec_->Type().KindOf(a.txn) == txn::AccessKind::kWrite) {
    const Value& payload = spec_->Type().DataOf(a.txn);
    if (const auto* data = std::get_if<Versioned>(&payload)) {
      data_ = *data;
    } else if (const auto* stamp = std::get_if<ConfigStamp>(&payload)) {
      stamp_ = *stamp;
    } else {
      QCNT_CHECK_MSG(false, "reconfig DM write with unknown payload");
    }
  }
  active_ = kNoTxn;
}

void ReconfigDm::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (active_ == kNoTxn) return;
  if (spec_->Type().KindOf(active_) == txn::AccessKind::kRead) {
    out.push_back(ioa::RequestCommit(active_, SnapshotValue()));
  } else {
    out.push_back(ioa::RequestCommit(active_, kNil));
  }
}

}  // namespace qcnt::reconfig
