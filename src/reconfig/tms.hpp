// Transaction managers for the reconfigurable algorithm (Section 4).
//
// All three TM kinds share the same read phase: invoke read accesses on
// DMs, keeping the (value, version) pair with the highest version seen, the
// (config, generation) pair with the highest generation seen, and the set d
// of DMs read. The phase completes when the *currently believed*
// configuration c has a read-quorum contained in d — note that reading a
// read-quorum of an old configuration necessarily reveals a newer
// generation when one was installed (config writes cover an old
// write-quorum, which every old read-quorum intersects), so the check
// re-arms until the TM has caught up with the newest configuration it has
// evidence for. After the first write access is requested, read COMMITs no
// longer update TM state (the Section-3 guard, inherited here).
//
//   * RReadTm then request-commits with v.
//   * RWriteTm writes (t+1, value(T)) to a write-quorum of c, then
//     request-commits with nil.
//   * RReconfigTm (target c') writes the data (t, v) it read to a
//     write-quorum of c' and the stamp (c', g+1) to a write-quorum of the
//     old c, then request-commits with nil. Writing the new configuration
//     to an old write-quorum only is the paper's sharpening of Gifford.
//
// These TMs reconfigure over a *fixed* replica universe. The runtime
// counterpart that also grows/shrinks the universe — streaming a joining
// replica current before the stamp and sealing it after — is
// reconfig/catchup.hpp (MembershipCoordinator); its phase B is exactly
// RReconfigTm's write pattern, executed by runtime::QuorumClient.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "ioa/automaton.hpp"
#include "reconfig/rspec.hpp"

namespace qcnt::reconfig {

/// Common machinery: kid bookkeeping, read-phase state, quorum evaluation.
class RTmBase : public ioa::Automaton {
 public:
  TxnId Txn() const { return tm_; }
  bool Awake() const { return awake_; }
  const Versioned& Data() const { return data_; }
  const ConfigStamp& Stamp() const { return stamp_; }
  std::uint64_t ReadMask() const { return read_; }
  /// Does the currently believed configuration have a read-quorum within
  /// the set of DMs read?
  bool ReadPhaseComplete() const;

  // Automaton interface (shared parts).
  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  void Reset() override;

 protected:
  enum class KidKind : std::uint8_t { kRead, kDataWrite, kConfigWrite };
  struct Kid {
    TxnId txn;
    ReplicaId replica;
    KidKind kind;
    Versioned data;     // for kDataWrite
    ConfigStamp stamp;  // for kConfigWrite
  };

  RTmBase(const RSpec& spec, ItemId item, TxnId tm);

  /// Handle shared input operations; returns true when consumed.
  void ApplyShared(const ioa::Action& a);
  /// Has any write (data or config) access been requested?
  bool WriteRequested() const { return write_requested_count_ > 0; }
  const quorum::Configuration& CurrentConfig() const {
    return current_config_;
  }
  static bool MaskHasQuorum(const std::vector<quorum::Quorum>& quorums,
                            std::uint64_t mask);

  const RSpec* spec_;
  ItemId item_;
  TxnId tm_;
  std::vector<Kid> kids_;
  std::unordered_map<TxnId, std::size_t> kid_index_;

  // Read-phase state.
  bool awake_ = false;
  Versioned data_;
  ConfigStamp stamp_;
  quorum::Configuration current_config_;  // parsed from stamp_
  std::uint64_t read_ = 0;
  std::vector<std::uint8_t> requested_;
  std::size_t write_requested_count_ = 0;
  /// Replica masks for committed data / config writes.
  std::uint64_t data_written_ = 0;
  std::uint64_t config_written_ = 0;
};

class RReadTm final : public RTmBase {
 public:
  RReadTm(const RSpec& spec, ItemId item, TxnId tm);
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
};

class RWriteTm final : public RTmBase {
 public:
  RWriteTm(const RSpec& spec, ItemId item, TxnId tm);
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;

 private:
  /// A data-write kid is requestable iff it carries (t+1, value(T)).
  bool WriteKidEnabled(const Kid& kid) const;
  Plain value_;
};

class RReconfigTm final : public RTmBase {
 public:
  RReconfigTm(const RSpec& spec, ItemId item, TxnId tm);
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;

 private:
  /// Data writes must carry exactly the (t, v) pair read.
  bool DataKidEnabled(const Kid& kid) const;
  /// Config writes must carry (target, g+1).
  bool ConfigKidEnabled(const Kid& kid) const;
  /// Both phases complete: data at a write-quorum of the target, stamp at a
  /// write-quorum of the old configuration.
  bool ReadyToCommit() const;
  quorum::Configuration target_;
};

}  // namespace qcnt::reconfig
