// Reconfigurable data managers (Section 4).
//
// "In addition to a value and a version number, each replica of x contains
// a configuration and a generation number." A ReconfigDm is a read-write
// object whose read accesses return the full (data, stamp) snapshot and
// whose write accesses come in two flavors, distinguished by the payload
// carried in the access's name: a Versioned payload installs the data pair,
// a ConfigStamp payload installs the configuration pair.
#pragma once

#include "ioa/automaton.hpp"
#include "reconfig/rspec.hpp"

namespace qcnt::reconfig {

class ReconfigDm : public ioa::Automaton {
 public:
  ReconfigDm(const RSpec& spec, ObjectId object);

  ObjectId Object() const { return object_; }
  const Versioned& Data() const { return data_; }
  const ConfigStamp& Stamp() const { return stamp_; }
  TxnId Active() const { return active_; }

  // Automaton interface.
  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  Value SnapshotValue() const {
    return Value{ReplicaSnapshot{data_, stamp_}};
  }

  const RSpec* spec_;
  ObjectId object_;
  Versioned initial_data_;
  ConfigStamp initial_stamp_;
  // State.
  TxnId active_ = kNoTxn;
  Versioned data_;
  ConfigStamp stamp_;
};

}  // namespace qcnt::reconfig
