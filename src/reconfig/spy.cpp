#include "reconfig/spy.hpp"

#include "common/check.hpp"

namespace qcnt::reconfig {

Spy::Spy(const txn::SystemType& type, TxnId user,
         std::vector<TxnId> reconfig_tms)
    : type_(&type), user_(user), reconfig_tms_(std::move(reconfig_tms)) {
  QCNT_CHECK(!type.IsAccess(user));
  for (TxnId tm : reconfig_tms_) {
    QCNT_CHECK_MSG(type.Parent(tm) == user,
                   "spy manages children of its user transaction");
  }
  Reset();
}

void Spy::Reset() {
  awake_ = false;
  user_committing_ = false;
  requested_.assign(reconfig_tms_.size(), 0);
}

std::string Spy::Name() const {
  return "spy(" + type_->Label(user_) + ")";
}

std::size_t Spy::TmIndex(TxnId t) const {
  for (std::size_t i = 0; i < reconfig_tms_.size(); ++i) {
    if (reconfig_tms_[i] == t) return i;
  }
  return reconfig_tms_.size();
}

bool Spy::IsOperation(const ioa::Action& a) const {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kRequestCommit:
      // Watch the user transaction's lifecycle (both are inputs here).
      return a.txn == user_;
    case ioa::ActionKind::kRequestCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return TmIndex(a.txn) < reconfig_tms_.size();
  }
  return false;
}

bool Spy::IsOutput(const ioa::Action& a) const {
  return a.kind == ioa::ActionKind::kRequestCreate && IsOperation(a);
}

bool Spy::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  if (a.kind != ioa::ActionKind::kRequestCreate) return true;  // inputs
  return awake_ && !user_committing_ && !requested_[TmIndex(a.txn)];
}

void Spy::Apply(const ioa::Action& a) {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
      awake_ = true;
      break;
    case ioa::ActionKind::kRequestCommit:
      // The user has announced completion: reconfigurations stop.
      user_committing_ = true;
      break;
    case ioa::ActionKind::kRequestCreate:
      requested_[TmIndex(a.txn)] = 1;
      break;
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      break;  // the spy does not care how its reconfigurations fared
  }
}

void Spy::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (!awake_ || user_committing_) return;
  for (std::size_t i = 0; i < reconfig_tms_.size(); ++i) {
    if (!requested_[i]) out.push_back(ioa::RequestCreate(reconfig_tms_[i]));
  }
}

}  // namespace qcnt::reconfig
