// Workload-adaptive quorum strategy selection.
//
// The paper's §4 reconfiguration machinery makes the quorum system a
// runtime variable; the StrategyAdvisor closes the loop by choosing one
// from the observed workload. A background thread samples the store's
// replica-side read/write counters (BatchStats::read_ops/write_ops)
// every poll_interval; when the read fraction of a window crosses
// read_heavy_threshold the advisor installs the read-optimized strategy
// (ROWA by default), and when it falls back to write_heavy_threshold it
// restores the balanced strategy (majority by default). The gap between
// the two thresholds is the hysteresis band: a workload oscillating
// inside it never flaps the configuration.
//
// A switch is a full §4 reconfiguration over the *current* member set —
// append the target configuration, stamp it through a write quorum of
// the old one (QuorumClient::Reconfigure on the store's coordinator
// slot), then commit it as the config new clients start from. Live
// clients learn the new stamp through fence NACKs mid-operation, so the
// switch needs no quiescence. Membership changes and strategy switches
// serialize on the store's membership lock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "quorum/strategy_descriptor.hpp"
#include "runtime/client.hpp"

namespace qcnt::runtime {

class ReplicatedStore;

struct StrategyAdvisorOptions {
  /// Workload-sampling period.
  std::chrono::milliseconds poll_interval{50};
  /// Read fraction at or above which a window argues for `read_heavy`.
  double read_heavy_threshold = 0.9;
  /// Read fraction at or below which a window argues for `balanced`.
  /// Must be < read_heavy_threshold; the gap is the hysteresis band.
  double write_heavy_threshold = 0.5;
  /// Windows with fewer total ops than this are ignored — an idle store
  /// must not reconfigure on the ratio of a handful of stragglers.
  std::uint64_t min_ops_per_window = 64;
  /// Quiet period after a switch before another is considered.
  std::chrono::milliseconds cooldown{250};
  /// Strategy installed when the workload turns read-heavy. Must be
  /// derivable over the store's current member count at switch time.
  quorum::StrategyDescriptor read_heavy{quorum::StrategyKind::kReadOneWriteAll};
  /// Strategy restored when writes return.
  quorum::StrategyDescriptor balanced{quorum::StrategyKind::kMajority};
  /// Options for the reconfiguring client a switch runs.
  QuorumClient::Options client;
};

class StrategyAdvisor {
 public:
  struct Stats {
    /// Sampling windows observed (including ones below min_ops).
    std::uint64_t windows = 0;
    /// Successful strategy switches installed.
    std::uint64_t switches = 0;
    /// Switch attempts that failed (no quorum, underivable strategy).
    std::uint64_t failed_switches = 0;
    /// Read fraction of the last window that met min_ops_per_window.
    double last_read_fraction = 0.0;
    /// Human-readable reason of the last failed switch (empty if none).
    std::string last_error;
  };

  /// The advisor samples immediately after Start(); construction itself
  /// starts nothing.
  StrategyAdvisor(ReplicatedStore& store, StrategyAdvisorOptions options);
  ~StrategyAdvisor();

  StrategyAdvisor(const StrategyAdvisor&) = delete;
  StrategyAdvisor& operator=(const StrategyAdvisor&) = delete;

  void Start();
  void Stop();

  /// Install `d` over the current member set via a §4 reconfiguration,
  /// regardless of workload (the manual lever; the sampling loop calls
  /// this too). Returns false with `error` filled when the descriptor
  /// cannot span the membership or the stamp found no quorum.
  bool SwitchTo(const quorum::StrategyDescriptor& d, std::string* error);

  Stats AdvisorStats() const;

 private:
  void Run();
  void Tick();

  ReplicatedStore* store_;
  StrategyAdvisorOptions options_;

  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_ = false;

  std::uint64_t last_reads_ = 0;
  std::uint64_t last_writes_ = 0;
  std::chrono::steady_clock::time_point cooldown_until_{};
  Stats stats_;
};

}  // namespace qcnt::runtime
