#include "runtime/async_client.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace qcnt::runtime {

/// Per-operation state machine: read phase (version discovery), for writes
/// a write phase installing the discovered version + 1, and a backoff
/// phase parking the op between failed attempts. Shared between the
/// client's bookkeeping and the caller's OpFuture.
struct OpFuture::State {
  std::uint64_t id = 0;  // current attempt's op id (fresh per attempt)
  bool is_write = false;
  std::string key;
  std::int64_t value = 0;
  enum class Phase : std::uint8_t { kRead, kWrite, kBackoff };
  Phase phase = Phase::kRead;
  std::uint32_t attempt = 0;
  std::chrono::steady_clock::time_point start{};
  std::chrono::steady_clock::time_point deadline{};
  std::chrono::steady_clock::time_point retry_at{};  // backoff expiry
  std::uint64_t responded = 0;  // read-phase responder bitmask
  std::uint64_t acked = 0;      // write-phase acker bitmask
  std::uint64_t fenced = 0;     // write-phase generation-NACK bitmask
  /// Members the current phase's request actually reached; escalation
  /// fans out to the complement.
  std::uint64_t sent = 0;
  /// When to give up on the minimal quorum and fan out (max() = already
  /// fully fanned out, or nothing staged yet).
  std::chrono::steady_clock::time_point escalate_at{
      std::chrono::steady_clock::time_point::max()};
  std::uint64_t best_version = 0;
  std::int64_t best_value = 0;
  std::uint64_t best_generation = 0;
  std::uint32_t best_config = 0;
  /// Resolved entry for best_config; quorum checks run against it.
  std::shared_ptr<const MemberConfig> config;
  bool done = false;
  ClientResult result;
};

bool OpFuture::Ready() const { return state_->done; }

ClientResult OpFuture::Get() {
  while (!state_->done && client_->PumpOnce()) {
  }
  QCNT_CHECK_MSG(state_->done, "future unresolved with nothing in flight");
  return state_->result;
}

namespace {
std::chrono::microseconds Since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
}
}  // namespace

AsyncQuorumClient::AsyncQuorumClient(Transport& transport, NodeId id,
                                     std::shared_ptr<ConfigTable> table,
                                     std::uint32_t initial_config,
                                     Options options)
    : transport_(&transport),
      id_(id),
      table_(std::move(table)),
      options_(options),
      config_id_(initial_config),
      backoff_rng_(0xa5bacc0ffull ^ id) {
  QCNT_CHECK(table_ != nullptr);
  QCNT_CHECK(initial_config < table_->Size());
  // Responder/acker bookkeeping is a 64-bit bitmask indexed by node id
  // (member ids are checked < 64 when the table is built); the client
  // itself must not be quorumed over.
  const auto mc = table_->At(initial_config);
  QCNT_CHECK_MSG(id >= 64 || (mc->member_mask & (1ull << id)) == 0,
                 "client id collides with a configuration member");
  QCNT_CHECK(options_.window >= 1);
  QCNT_CHECK(options_.max_batch >= 1);
  QCNT_CHECK(options_.max_attempts >= 1);
}

AsyncQuorumClient::AsyncQuorumClient(Transport& transport, NodeId id,
                                     std::vector<quorum::QuorumSystem> configs,
                                     std::uint32_t initial_config,
                                     Options options)
    : AsyncQuorumClient(transport, id,
                        std::make_shared<ConfigTable>(std::move(configs)),
                        initial_config, options) {}

AsyncQuorumClient::~AsyncQuorumClient() = default;

void AsyncQuorumClient::SendBatch(RtMessage m, bool write_quorum) {
  stats_.batches_sent += 1;
  stats_.batched_requests += m.batch.size();
  // Target the believed configuration's members at send time: once a
  // response teaches this client a newer generation, the very next flush
  // already reaches the new replica set.
  const auto mc = table_->At(config_id_);
  // Targeting is a first-attempt fast path; a batch carrying any retry
  // attempt broadcasts so a struggling op is never starved by proxy.
  bool targeted = options_.target_minimal;
  for (const BatchEntry& entry : m.batch) {
    const auto it = in_flight_.find(entry.op);
    if (it != in_flight_.end() && it->second->attempt > 1) {
      targeted = false;
      break;
    }
  }
  std::uint64_t sent = 0;
  while (targeted) {
    const std::uint64_t up = believed_up_ & mc->member_mask;
    const auto q = write_quorum ? mc->system.pick_write(up)
                                : mc->system.pick_read(up);
    if (!q) {
      // No quorum believed assemblable among up members: broadcast below.
      targeted = false;
      break;
    }
    bool complete = true;
    for (const NodeId r : *q) {
      const std::uint64_t bit = 1ull << r;
      if (sent & bit) continue;
      if (transport_->Send(id_, r, m)) {
        sent |= bit;
      } else {
        // The transport knows this node is down right now: drop it from
        // the believed up-set and re-pick. The mask strictly shrinks, so
        // this loop terminates.
        believed_up_ &= ~bit;
        complete = false;
      }
    }
    if (complete) break;
  }
  if (!targeted) {
    for (const NodeId r : mc->members) {
      if ((sent & (1ull << r)) == 0) transport_->Send(id_, r, m);
    }
    sent = mc->member_mask;
  }
  const auto escalate_at =
      sent == mc->member_mask
          ? std::chrono::steady_clock::time_point::max()
          : std::chrono::steady_clock::now() + EscalateDelay();
  for (const BatchEntry& entry : m.batch) {
    const auto it = in_flight_.find(entry.op);
    if (it == in_flight_.end()) continue;
    it->second->sent = sent;
    it->second->escalate_at = escalate_at;
  }
}

void AsyncQuorumClient::EscalateOp(const std::shared_ptr<Op>& op) {
  ++stats_.escalations;
  RtMessage m;
  if (op->phase == Op::Phase::kRead) {
    m.kind = RtMessage::Kind::kBatchReadReq;
    m.batch.push_back(BatchEntry{op->id, op->key, 0, 0});
  } else {
    m.kind = RtMessage::Kind::kBatchWriteReq;
    m.batch.push_back(
        BatchEntry{op->id, op->key, op->result.version, op->value});
  }
  m.generation = generation_;
  m.config_id = config_id_;
  stats_.batches_sent += 1;
  stats_.batched_requests += 1;
  for (const NodeId r : op->config->members) {
    if ((op->sent & (1ull << r)) == 0) transport_->Send(id_, r, m);
  }
  op->sent = op->config->member_mask;
  op->escalate_at = std::chrono::steady_clock::time_point::max();
}

std::chrono::milliseconds AsyncQuorumClient::EscalateDelay() const {
  if (options_.escalate_after.count() > 0) return options_.escalate_after;
  const auto quarter = options_.timeout / 4;
  return quarter.count() > 0 ? quarter : std::chrono::milliseconds(1);
}

void AsyncQuorumClient::MaybeInstallWireConfig(const RtMessage& m) {
  if (!m.config || table_->TryAt(m.config_id) != nullptr) return;
  try {
    table_->InstallAt(m.config_id,
                      ConfigTable::FromDescriptor(m.config->descriptor,
                                                  m.config->members));
  } catch (const quorum::StrategyConfigError&) {
    // Hostile or corrupt payload: leave the id unresolvable (Learn then
    // refuses it, exactly the pre-payload behavior).
  }
}

void AsyncQuorumClient::Learn(std::uint64_t generation,
                              std::uint32_t config_id) {
  // (generation, config_id) order — see QuorumClient::Learn.
  if (generation < generation_ ||
      (generation == generation_ && config_id <= config_id_)) {
    return;
  }
  if (table_->TryAt(config_id) == nullptr) return;  // unresolvable: stray
  generation_ = generation;
  config_id_ = config_id;
}

OpFuture AsyncQuorumClient::SubmitRead(std::string key) {
  return Submit(std::move(key), /*is_write=*/false, 0);
}

OpFuture AsyncQuorumClient::SubmitWrite(std::string key, std::int64_t value) {
  return Submit(std::move(key), /*is_write=*/true, value);
}

OpFuture AsyncQuorumClient::Submit(std::string key, bool is_write,
                                   std::int64_t value) {
  // Backpressure before accepting the new op: a full pipeline pumps
  // completions, which also flushes staged batches — the pipeline keeps
  // streaming even when every op targets the same handful of keys and
  // in_flight_ alone could never reach the window.
  while (pending_ >= options_.window && PumpOnce()) {
  }
  auto op = std::make_shared<Op>();
  op->id = next_op_++;
  op->is_write = is_write;
  op->key = std::move(key);
  op->value = value;
  ++stats_.ops_submitted;
  ++pending_;
  auto& queue = per_key_[op->key];
  queue.push_back(op);
  if (queue.size() == 1) Admit(op);
  return OpFuture(this, op);
}

void AsyncQuorumClient::Admit(const std::shared_ptr<Op>& op) {
  op->start = std::chrono::steady_clock::now();
  op->attempt = 1;
  StartAttempt(op);
}

void AsyncQuorumClient::StartAttempt(const std::shared_ptr<Op>& op) {
  // Only first attempts trust the believed-up mask enough to target a
  // minimal quorum; a retry launching means something went wrong — reset
  // the mask (the batch it joins broadcasts anyway; see SendBatch).
  if (op->attempt > 1) believed_up_ = ~0ull;
  op->phase = Op::Phase::kRead;
  op->deadline = std::chrono::steady_clock::now() + options_.timeout;
  op->responded = 0;
  op->acked = 0;
  op->fenced = 0;
  op->sent = 0;
  op->escalate_at = std::chrono::steady_clock::time_point::max();
  op->best_version = 0;
  op->best_value = 0;
  op->best_config = config_id_;
  op->best_generation = generation_;
  op->config = table_->At(config_id_);
  in_flight_.emplace(op->id, op);
  staged_reads_.push_back(BatchEntry{op->id, op->key, 0, 0});
  if (staged_reads_.size() >= options_.max_batch) FlushReads();
}

void AsyncQuorumClient::FlushReads() {
  if (staged_reads_.empty()) return;
  RtMessage m;
  m.kind = RtMessage::Kind::kBatchReadReq;
  // The believed stamp rides along so replies only carry a config payload
  // when they actually teach this client something newer.
  m.generation = generation_;
  m.config_id = config_id_;
  m.batch = std::move(staged_reads_);
  staged_reads_.clear();
  SendBatch(std::move(m), /*write_quorum=*/false);
}

void AsyncQuorumClient::FlushWrites() {
  if (staged_writes_.empty()) return;
  RtMessage m;
  m.kind = RtMessage::Kind::kBatchWriteReq;
  // The believed generation rides on the whole batch; a replica holding a
  // newer one fences every entry (per-entry NACKs teach the retry).
  m.generation = generation_;
  m.config_id = config_id_;
  m.batch = std::move(staged_writes_);
  staged_writes_.clear();
  SendBatch(std::move(m), /*write_quorum=*/true);
}

void AsyncQuorumClient::Flush() {
  FlushReads();
  FlushWrites();
}

bool AsyncQuorumClient::PumpOnce() {
  // First drain whatever already arrived, without blocking and without
  // flushing: each response completes ops, admits same-key successors and
  // stages follow-up write phases, so the batches flushed below coalesce
  // a whole burst of progress instead of going out one entry at a time.
  Mailbox& mailbox = transport_->MailboxOf(id_);
  for (Envelope& e : mailbox.TryPopAll()) {
    Dispatch(e);
  }
  Flush();
  HandleTimers(std::chrono::steady_clock::now());
  Flush();  // retries relaunched by HandleTimers stage new reads
  if (in_flight_.empty()) return false;
  // Earliest timer: op deadlines for live attempts, backoff expiries for
  // parked ops.
  auto wake = std::chrono::steady_clock::time_point::max();
  for (const auto& [id, op] : in_flight_) {
    if (op->phase == Op::Phase::kBackoff) {
      wake = std::min(wake, op->retry_at);
    } else {
      wake = std::min(wake, std::min(op->deadline, op->escalate_at));
    }
  }
  std::optional<Envelope> e = transport_->MailboxOf(id_).Pop(wake);
  const auto now = std::chrono::steady_clock::now();
  if (!e) {
    if (now < wake) {
      // The only early nullopt from a blocking Pop is a closed mailbox:
      // the store is shutting down, nothing in flight can ever complete.
      FailAllInFlight();
    } else {
      HandleTimers(now);
    }
    return !in_flight_.empty() || !staged_reads_.empty() ||
           !staged_writes_.empty();
  }
  Dispatch(*e);
  HandleTimers(now);
  return true;
}

void AsyncQuorumClient::Dispatch(const Envelope& e) {
  switch (e.msg.kind) {
    case RtMessage::Kind::kBatchReadResp:
      HandleBatchReadResp(e);
      break;
    case RtMessage::Kind::kBatchWriteAck:
      HandleBatchWriteAck(e);
      break;
    default:
      break;  // stray single-op traffic; not ours
  }
}

void AsyncQuorumClient::HandleBatchReadResp(const Envelope& e) {
  // A sender id outside the bitmask domain would shift out of range;
  // such envelopes are stray traffic, never quorum evidence.
  if (e.from >= 64) return;
  const RtMessage& m = e.msg;
  believed_up_ |= 1ull << e.from;  // it answered: it is up
  MaybeInstallWireConfig(m);
  Learn(m.generation, m.config_id);
  const std::uint64_t bit = 1ull << e.from;
  for (const BatchEntry& entry : m.batch) {
    auto it = in_flight_.find(entry.op);
    if (it == in_flight_.end()) continue;  // completed, retried or timed out
    const std::shared_ptr<Op> op = it->second;
    if (op->phase != Op::Phase::kRead) continue;
    // Only members of the op's configuration are evidence — neither
    // toward the quorum nor in the freshest-version race (a forged or
    // decommissioned sender must not win version discovery).
    if ((op->config->member_mask & bit) == 0) continue;
    const bool first = op->responded == 0;
    op->responded |= bit;
    if (!first && entry.version == op->best_version &&
        entry.value != op->best_value) {
      // Lemma 8 violation: two copies of one version with different
      // values. Count it loudly; the larger-value tie-break below keeps
      // the outcome deterministic without hiding the divergence.
      ++stats_.divergences_observed;
    }
    if (first || entry.version > op->best_version ||
        (entry.version == op->best_version &&
         entry.value > op->best_value)) {
      op->best_version = entry.version;
      op->best_value = entry.value;
    }
    if (m.generation > op->best_generation ||
        (m.generation == op->best_generation &&
         m.config_id > op->best_config)) {
      // Chase the newest configuration named by the evidence, in the
      // (generation, config_id) stamp order; the quorum check below
      // re-arms under it.
      if (auto mc = table_->TryAt(m.config_id)) {
        op->best_generation = m.generation;
        op->best_config = m.config_id;
        op->config = std::move(mc);
      }
    }
    if (!op->config->system.has_read(op->responded &
                                     op->config->member_mask)) {
      continue;
    }
    if (op->is_write) {
      // Version discovery done: stage the install above both the
      // discovered version and everything this client ever staged for
      // the key (install_floor_ — covers earlier attempts of this op and
      // abandoned earlier ops whose stragglers may still land). Per-key
      // serialization guarantees no other in-flight op can interleave a
      // write to this key between discovery and install.
      std::uint64_t& floor = install_floor_[op->key];
      const std::uint64_t install = std::max(op->best_version, floor) + 1;
      floor = install;
      op->phase = Op::Phase::kWrite;
      // The write phase gets its own send bookkeeping; the flush below
      // (or the next pump) stamps the targeted set and escalation timer.
      op->sent = 0;
      op->escalate_at = std::chrono::steady_clock::time_point::max();
      op->result.version = install;
      staged_writes_.push_back(
          BatchEntry{op->id, op->key, install, op->value});
      if (staged_writes_.size() >= options_.max_batch) FlushWrites();
    } else {
      op->result.value = op->best_value;
      op->result.version = op->best_version;
      Complete(op, ClientStatus::kOk);
    }
  }
}

void AsyncQuorumClient::HandleBatchWriteAck(const Envelope& e) {
  if (e.from >= 64) return;
  believed_up_ |= 1ull << e.from;  // it answered: it is up
  // A fenced ack still names the newer configuration in its header —
  // that's the notification channel that re-targets the retry.
  MaybeInstallWireConfig(e.msg);
  Learn(e.msg.generation, e.msg.config_id);
  const std::uint64_t bit = 1ull << e.from;
  for (const BatchEntry& entry : e.msg.batch) {
    auto it = in_flight_.find(entry.op);
    if (it == in_flight_.end()) continue;
    const std::shared_ptr<Op> op = it->second;
    if (op->phase != Op::Phase::kWrite) continue;
    if ((op->config->member_mask & bit) == 0) continue;  // non-member ack
    if (entry.value != 0) {
      // Fenced: refused, not quorum evidence. A fenced replica's
      // generation only grows, so it can never ack this attempt — once
      // the refusers exclude every write quorum, park the op for an
      // immediate retry (already re-targeted by the Learn above) instead
      // of letting it ride out the attempt deadline.
      op->fenced |= bit;
      if (op->attempt < options_.max_attempts &&
          !op->config->system.has_write(op->config->member_mask &
                                        ~op->fenced)) {
        op->phase = Op::Phase::kBackoff;
        op->retry_at = std::chrono::steady_clock::now();
      }
      continue;
    }
    op->acked |= bit;
    if (op->config->system.has_write(op->acked & op->config->member_mask)) {
      op->result.value = op->value;
      Complete(op, ClientStatus::kOk);
    }
  }
}

void AsyncQuorumClient::Complete(const std::shared_ptr<Op>& op,
                                 ClientStatus status) {
  op->result.status = status;
  op->result.ok = status == ClientStatus::kOk;
  op->result.attempts = op->attempt;
  op->result.latency = Since(op->start);
  op->done = true;
  in_flight_.erase(op->id);
  --pending_;
  ++stats_.ops_completed;
  if (!op->result.ok) ++stats_.ops_failed;
  stats_.total_latency += op->result.latency;
  stats_.max_latency = std::max(stats_.max_latency, op->result.latency);

  auto it = per_key_.find(op->key);
  QCNT_CHECK(it != per_key_.end() && it->second.front() == op);
  it->second.pop_front();
  if (it->second.empty()) {
    per_key_.erase(it);
  } else {
    // Hand the key to its successor; the slot this op freed keeps the
    // window invariant.
    Admit(it->second.front());
  }
}

void AsyncQuorumClient::FailAllInFlight() {
  while (!in_flight_.empty()) {
    Complete(in_flight_.begin()->second, ClientStatus::kShutdown);
  }
}

std::chrono::microseconds AsyncQuorumClient::BackoffDelay(
    std::uint32_t attempt) {
  auto delay = options_.backoff_base;
  for (std::uint32_t i = 1; i < attempt && delay < options_.backoff_max; ++i) {
    delay *= 2;
  }
  delay = std::min<std::chrono::milliseconds>(delay, options_.backoff_max);
  const std::int64_t us =
      std::chrono::duration_cast<std::chrono::microseconds>(delay).count();
  if (us <= 0) return std::chrono::microseconds{0};
  // Full jitter over the upper half decorrelates clients that failed
  // together.
  return std::chrono::microseconds(backoff_rng_.Range(us / 2, us));
}

void AsyncQuorumClient::HandleTimers(
    std::chrono::steady_clock::time_point now) {
  std::vector<std::shared_ptr<Op>> due;
  for (const auto& [id, op] : in_flight_) {
    const auto when =
        op->phase == Op::Phase::kBackoff ? op->retry_at : op->deadline;
    if (when <= now) due.push_back(op);
  }
  for (const auto& op : due) {
    if (op->phase == Op::Phase::kBackoff) {
      // Backoff elapsed: relaunch under a fresh op id so responses to the
      // dead attempt (which stay addressed to the old id) can never
      // satisfy this one.
      in_flight_.erase(op->id);
      op->id = next_op_++;
      ++op->attempt;
      ++stats_.retries;
      StartAttempt(op);
    } else if (op->attempt < options_.max_attempts) {
      // Attempt timed out with attempts to spare: park in backoff. The
      // op keeps its (stale) id in in_flight_ so the timer wheel sees it;
      // the kBackoff phase shields it from late responses.
      op->phase = Op::Phase::kBackoff;
      op->retry_at = now + BackoffDelay(op->attempt);
    } else if (options_.max_attempts > 1) {
      Complete(op, ClientStatus::kRetriesExhausted);
    } else {
      Complete(op, (op->responded | op->acked) != 0
                       ? ClientStatus::kTimeout
                       : ClientStatus::kNoQuorum);
    }
  }
  // Escalations after deadline handling: an op whose minimal quorum has
  // not assembled in time fans out to the rest of the member set. (Ops
  // just parked or completed above no longer qualify.)
  for (const auto& [id, op] : in_flight_) {
    if (op->phase == Op::Phase::kBackoff) continue;
    if (op->escalate_at <= now) EscalateOp(op);
  }
}

bool AsyncQuorumClient::Drain() {
  while (PumpOnce()) {
  }
  return stats_.ops_failed == 0;
}

}  // namespace qcnt::runtime
