#include "runtime/bus.hpp"

#include "common/check.hpp"

namespace qcnt::runtime {

Bus::Bus(std::size_t nodes) : up_(nodes), crash_hooks_(nodes) {
  QCNT_CHECK(nodes >= 1);
  mailboxes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    up_[i].store(true);
  }
}

Mailbox& Bus::MailboxOf(NodeId node) {
  QCNT_CHECK(node < mailboxes_.size());
  return *mailboxes_[node];
}

void Bus::Crash(NodeId node) {
  QCNT_CHECK(node < mailboxes_.size());
  up_[node].store(false);
  // Drain after marking down: sends racing with the crash either see the
  // down flag and drop, or land in the queue before this drain clears it.
  // Messages queued before the crash must not be handled by a dead node.
  mailboxes_[node]->Clear();
  // Last, let the node kill its internal stages (shard sub-mailboxes).
  // Ordering matters: the dispatch thread refuses to route external work
  // once up_ is false, so after the hook drains the shard inboxes nothing
  // pre-crash can reach a shard again.
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(hooks_mu_);
    hook = crash_hooks_[node];
  }
  if (hook) hook();
}

void Bus::SetCrashHook(NodeId node, std::function<void()> hook) {
  QCNT_CHECK(node < mailboxes_.size());
  std::lock_guard<std::mutex> lock(hooks_mu_);
  crash_hooks_[node] = std::move(hook);
}

void Bus::Recover(NodeId node) {
  QCNT_CHECK(node < mailboxes_.size());
  // Reopen before flipping the up flag so a sender that sees up==true is
  // guaranteed a mailbox that accepts the message.
  mailboxes_[node]->Reopen();
  up_[node].store(true);
}

void Bus::Send(NodeId from, NodeId to, RtMessage msg) {
  QCNT_CHECK(from < mailboxes_.size() && to < mailboxes_.size());
  sent_.fetch_add(1, std::memory_order_relaxed);
  if (!up_[from].load() || !up_[to].load()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  mailboxes_[to]->Push(Envelope{from, std::move(msg)});
}

void Bus::CloseAll() {
  for (auto& mb : mailboxes_) mb->Close();
}

}  // namespace qcnt::runtime
