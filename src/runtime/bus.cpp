#include "runtime/bus.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace qcnt::runtime {

bool Bus::DueLater(const DelayedMessage& a, const DelayedMessage& b) {
  return a.due > b.due || (a.due == b.due && a.tie > b.tie);
}

namespace {
/// Pre-allocated slots beyond the construction-time universe, claimable at
/// runtime via AddNode (membership change). Headroom keeps growth free of
/// vector reallocation: every mailbox and atomic up-flag a concurrent
/// sender might touch already exists.
constexpr std::size_t kGrowthHeadroom = 32;
}  // namespace

Bus::Bus(std::size_t nodes)
    : up_(nodes + kGrowthHeadroom),
      crash_hooks_(nodes + kGrowthHeadroom),
      recover_hooks_(nodes + kGrowthHeadroom) {
  QCNT_CHECK(nodes >= 1);
  const std::size_t capacity = nodes + kGrowthHeadroom;
  mailboxes_.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    up_[i].store(i < nodes);  // headroom slots stay dark until AddNode
  }
  count_.store(nodes, std::memory_order_release);
}

NodeId Bus::AddNode() {
  std::lock_guard<std::mutex> lock(hooks_mu_);  // serialize growth
  const std::size_t id = count_.load(std::memory_order_acquire);
  QCNT_CHECK_MSG(id < mailboxes_.size(), "bus universe capacity exhausted");
  mailboxes_[id]->Reopen();  // fresh slot; no-op unless CloseAll raced
  up_[id].store(true, std::memory_order_release);
  count_.store(id + 1, std::memory_order_release);
  return static_cast<NodeId>(id);
}

Bus::~Bus() {
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    net_stop_ = true;
  }
  fault_cv_.notify_all();
  if (net_thread_.joinable()) net_thread_.join();
}

Mailbox& Bus::MailboxOf(NodeId node) {
  QCNT_CHECK(node < NodeCount());
  return *mailboxes_[node];
}

void Bus::Crash(NodeId node) {
  QCNT_CHECK(node < NodeCount());
  up_[node].store(false);
  // Marking down first means sends racing with the crash either see the
  // down flag and drop, or land in the queue ahead of the crash cut.
  // A node with a crash hook owns its own backlog: the hook drains what
  // was delivered before the crash in FIFO order and refuses the rest
  // (replica servers push a kCrashDrain marker and wait for it). Without
  // a hook the backlog simply dies here.
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(hooks_mu_);
    hook = crash_hooks_[node];
  }
  if (hook) {
    hook();
  } else {
    mailboxes_[node]->Clear();
  }
}

void Bus::SetCrashHook(NodeId node, std::function<void()> hook) {
  QCNT_CHECK(node < NodeCount());
  std::lock_guard<std::mutex> lock(hooks_mu_);
  crash_hooks_[node] = std::move(hook);
}

void Bus::SetRecoverHook(NodeId node, std::function<void()> hook) {
  QCNT_CHECK(node < NodeCount());
  std::lock_guard<std::mutex> lock(hooks_mu_);
  recover_hooks_[node] = std::move(hook);
}

void Bus::Recover(NodeId node) {
  QCNT_CHECK(node < NodeCount());
  // Reopen before flipping the up flag so a sender that sees up==true is
  // guaranteed a mailbox that accepts the message.
  mailboxes_[node]->Reopen();
  up_[node].store(true);
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(hooks_mu_);
    hook = recover_hooks_[node];
  }
  if (hook) hook();
}

bool Bus::Send(NodeId from, NodeId to, RtMessage msg) {
  QCNT_CHECK(from < NodeCount() && to < NodeCount());
  sent_.fetch_add(1, std::memory_order_relaxed);
  if (!up_[from].load() || !up_[to].load()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (faults_active_.load(std::memory_order_acquire)) {
    return SendWithFaults(from, to, std::move(msg));
  }
  mailboxes_[to]->Push(Envelope{from, std::move(msg)});
  return true;
}

void Bus::CloseAll() {
  for (auto& mb : mailboxes_) mb->Close();
}

// --- Fault injection ------------------------------------------------------

void Bus::SetFaults(const FaultPlan& plan) {
  QCNT_CHECK(plan.drop >= 0.0 && plan.drop <= 1.0);
  QCNT_CHECK(plan.duplicate >= 0.0 && plan.duplicate <= 1.0);
  QCNT_CHECK(plan.delay_min <= plan.delay_max ||
             plan.delay_max.count() == 0);
  std::lock_guard<std::mutex> lock(fault_mu_);
  default_plan_ = plan;
  if (plan.delay_max.count() > 0 || plan.reorder_window > 0) {
    EnsureNetThread();
  }
  faults_active_.store(true, std::memory_order_release);
}

void Bus::SetLinkFaults(NodeId from, NodeId to, const FaultPlan& plan) {
  QCNT_CHECK(from < NodeCount() && to < NodeCount());
  std::lock_guard<std::mutex> lock(fault_mu_);
  LinkState& link = links_[LinkKey(from, to)];
  link.plan = plan;
  link.seeded = false;  // reseed from the new plan on the next send
  if (plan.delay_max.count() > 0 || plan.reorder_window > 0) {
    EnsureNetThread();
  }
  faults_active_.store(true, std::memory_order_release);
}

void Bus::ClearFaults() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  default_plan_.reset();
  for (auto& [key, link] : links_) link.plan.reset();
  // faults_active_ stays set: held/delayed messages may still be in
  // flight, and partitions may still be installed. The flag only costs
  // one mutex acquisition per send once it has ever been raised.
}

void Bus::Partition(const std::vector<NodeId>& a, const std::vector<NodeId>& b,
                    bool symmetric) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  for (NodeId x : a) {
    for (NodeId y : b) {
      QCNT_CHECK(x < NodeCount() && y < NodeCount());
      blocked_.insert(LinkKey(x, y));
      if (symmetric) blocked_.insert(LinkKey(y, x));
    }
  }
  faults_active_.store(true, std::memory_order_release);
}

void Bus::Heal() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  blocked_.clear();
}

FaultStats Bus::InjectedFaults() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return fault_stats_;
}

const FaultPlan* Bus::PlanFor(LinkState& link) const {
  if (link.plan) return &*link.plan;
  if (default_plan_) return &*default_plan_;
  return nullptr;
}

void Bus::SeedLink(LinkState& link, NodeId from, NodeId to,
                   const FaultPlan& plan) {
  // SplitMix over (seed, link pair) gives each directed link its own
  // stream: decisions depend only on the seed and the link's send count,
  // never on cross-link interleaving — and never on the universe size, so
  // a link to a node added after construction gets the same lazily-derived
  // stream treatment as any founding link.
  std::uint64_t s =
      plan.seed ^ (0x9e3779b97f4a7c15ull * (LinkKey(from, to) + 1));
  link.rng = Rng(SplitMix64(s));
  link.seeded = true;
}

bool Bus::SendWithFaults(NodeId from, NodeId to, RtMessage msg) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (blocked_.count(LinkKey(from, to)) != 0) {
    ++fault_stats_.partition_drops;
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  LinkState& link = links_[LinkKey(from, to)];
  const FaultPlan* plan = PlanFor(link);
  if (plan == nullptr || !plan->Active()) {
    mailboxes_[to]->Push(Envelope{from, std::move(msg)});
    return true;
  }
  if (!link.seeded) SeedLink(link, from, to, *plan);
  if (link.rng.Chance(plan->drop)) {
    ++fault_stats_.dropped;
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const int copies = 1 + (link.rng.Chance(plan->duplicate) ? 1 : 0);
  if (copies == 2) ++fault_stats_.duplicated;
  for (int c = 0; c < copies; ++c) {
    // The common (no-duplicate) case moves the payload instead of copying
    // it; only a duplicated message pays for a real copy.
    Envelope env = (c + 1 == copies) ? Envelope{from, std::move(msg)}
                                     : Envelope{from, msg};
    if (plan->reorder_window > 0) {
      // Rank = seq + jitter bounds overtaking at reorder_window places.
      const std::uint64_t rank =
          link.seq + link.rng.Below(plan->reorder_window + 1);
      ++fault_stats_.reordered;
      link.held.push_back(HeldMessage{
          rank, std::chrono::steady_clock::now() + plan->reorder_hold, to,
          std::move(env)});
      while (link.held.size() > plan->reorder_window) {
        ReleaseLowestRank(link, *plan);
      }
      fault_cv_.notify_all();  // the net thread owns the hold deadline
    } else {
      DeliverOrDelay(link, *plan, to, std::move(env));
    }
    ++link.seq;
  }
  return true;
}

void Bus::DeliverOrDelay(LinkState& link, const FaultPlan& plan, NodeId to,
                         Envelope e) {
  std::int64_t delay_us = 0;
  if (plan.delay_max.count() > 0) {
    delay_us = link.rng.Range(plan.delay_min.count(), plan.delay_max.count());
  }
  if (delay_us <= 0) {
    DeliverNow(to, std::move(e));
    return;
  }
  ++fault_stats_.delayed;
  delayed_.push_back(DelayedMessage{
      std::chrono::steady_clock::now() + std::chrono::microseconds(delay_us),
      delayed_tie_++, to, std::move(e)});
  std::push_heap(delayed_.begin(), delayed_.end(), DueLater);
  EnsureNetThread();
  fault_cv_.notify_all();
}

void Bus::DeliverNow(NodeId to, Envelope e) {
  // Deferred deliveries re-check liveness: a message in flight when its
  // destination crashed dies with the crash unless the node recovered
  // first (the straggler case; see the header comment).
  if (!up_[to].load()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  mailboxes_[to]->Push(std::move(e));
}

void Bus::ReleaseLowestRank(LinkState& link, const FaultPlan& plan) {
  auto it = std::min_element(
      link.held.begin(), link.held.end(),
      [](const HeldMessage& a, const HeldMessage& b) {
        return a.rank < b.rank;
      });
  HeldMessage m = std::move(*it);
  link.held.erase(it);
  DeliverOrDelay(link, plan, m.to, std::move(m.e));
}

void Bus::FlushLink(LinkState& link) {
  std::sort(link.held.begin(), link.held.end(),
            [](const HeldMessage& a, const HeldMessage& b) {
              return a.rank < b.rank;
            });
  std::vector<HeldMessage> held = std::move(link.held);
  link.held.clear();
  const FaultPlan* plan = PlanFor(link);
  for (HeldMessage& m : held) {
    if (plan != nullptr) {
      DeliverOrDelay(link, *plan, m.to, std::move(m.e));
    } else {
      DeliverNow(m.to, std::move(m.e));
    }
  }
}

void Bus::FlushFaults() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  for (auto& [key, link] : links_) {
    // Bypass the delay dice for an explicit flush: release in rank order,
    // immediately.
    std::sort(link.held.begin(), link.held.end(),
              [](const HeldMessage& a, const HeldMessage& b) {
                return a.rank < b.rank;
              });
    for (HeldMessage& m : link.held) DeliverNow(m.to, std::move(m.e));
    link.held.clear();
  }
  std::sort(delayed_.begin(), delayed_.end(),
            [](const DelayedMessage& a, const DelayedMessage& b) {
              return a.due < b.due || (a.due == b.due && a.tie < b.tie);
            });
  for (DelayedMessage& d : delayed_) DeliverNow(d.to, std::move(d.e));
  delayed_.clear();
}

void Bus::EnsureNetThread() {
  if (net_thread_.joinable()) return;
  net_stop_ = false;
  net_thread_ = std::thread([this] { NetLoop(); });
}

void Bus::NetLoop() {
  std::unique_lock<std::mutex> lock(fault_mu_);
  for (;;) {
    if (net_stop_) return;
    auto wake = std::chrono::steady_clock::time_point::max();
    if (!delayed_.empty()) wake = std::min(wake, delayed_.front().due);
    for (auto& [key, link] : links_) {
      for (const HeldMessage& m : link.held) {
        wake = std::min(wake, m.flush_at);
      }
    }
    if (wake == std::chrono::steady_clock::time_point::max()) {
      fault_cv_.wait(lock);
    } else {
      fault_cv_.wait_until(lock, wake);
    }
    if (net_stop_) return;
    const auto now = std::chrono::steady_clock::now();
    while (!delayed_.empty() && delayed_.front().due <= now) {
      std::pop_heap(delayed_.begin(), delayed_.end(), DueLater);
      DelayedMessage d = std::move(delayed_.back());
      delayed_.pop_back();
      DeliverNow(d.to, std::move(d.e));
    }
    for (auto& [key, link] : links_) {
      const bool overdue = std::any_of(
          link.held.begin(), link.held.end(),
          [&](const HeldMessage& m) { return m.flush_at <= now; });
      // One overdue entry flushes the whole holdback in rank order: the
      // buffer models in-flight reordering, not unbounded retention.
      if (overdue) FlushLink(link);
    }
  }
}

}  // namespace qcnt::runtime
