#include "runtime/client.hpp"

#include <array>

#include "common/check.hpp"

namespace qcnt::runtime {

namespace {
std::chrono::microseconds Since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
}
}  // namespace

QuorumClient::QuorumClient(Bus& bus, NodeId id,
                           std::vector<quorum::QuorumSystem> configs,
                           std::uint32_t initial_config, Options options)
    : bus_(&bus),
      id_(id),
      configs_(std::move(configs)),
      options_(options),
      config_id_(initial_config) {
  QCNT_CHECK(initial_config < configs_.size());
  QCNT_CHECK(id >= ReplicaCount());
}

QuorumClient::QuorumClient(Bus& bus, NodeId id,
                           std::vector<quorum::QuorumSystem> configs,
                           std::uint32_t initial_config)
    : QuorumClient(bus, id, std::move(configs), initial_config, Options{}) {}

void QuorumClient::BroadcastToReplicas(const RtMessage& m) {
  for (NodeId r = 0; r < ReplicaCount(); ++r) bus_->Send(id_, r, m);
}

QuorumClient::ReadPhase QuorumClient::RunReadPhase(
    const std::string& key, std::uint64_t op,
    std::chrono::steady_clock::time_point deadline) {
  RtMessage req;
  req.kind = RtMessage::Kind::kReadReq;
  req.op = op;
  req.key = key;
  BroadcastToReplicas(req);

  ReadPhase phase;
  phase.best_config = config_id_;
  phase.best_generation = generation_;
  std::uint64_t responded = 0;
  std::array<std::uint64_t, 64> versions{};
  while (!phase.ok) {
    std::optional<Envelope> e = bus_->MailboxOf(id_).Pop(deadline);
    if (!e) break;  // timeout or shutdown
    const RtMessage& m = e->msg;
    if (m.op != op || m.kind != RtMessage::Kind::kReadResp) continue;
    const std::uint64_t bit = 1ull << e->from;
    const bool first = responded == 0;
    responded |= bit;
    versions[e->from] = m.version;
    if (first || m.version > phase.best_version ||
        (m.version == phase.best_version && m.value > phase.best_value)) {
      phase.best_version = m.version;
      phase.best_value = m.value;
    }
    if (m.generation > phase.best_generation) {
      phase.best_generation = m.generation;
      phase.best_config = m.config_id;
    }
    if (m.generation > generation_) {
      generation_ = m.generation;
      config_id_ = m.config_id;
    }
    if (configs_[phase.best_config].has_read(responded)) phase.ok = true;
  }
  for (NodeId r = 0; r < ReplicaCount(); ++r) {
    if ((responded & (1ull << r)) && versions[r] < phase.best_version) {
      phase.stale |= 1ull << r;
    }
  }
  return phase;
}

ClientResult QuorumClient::Read(const std::string& key) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + options_.timeout;
  const std::uint64_t op = next_op_++;
  const ReadPhase phase = RunReadPhase(key, op, deadline);
  if (options_.read_repair && phase.ok && phase.stale != 0) {
    // Fire-and-forget: install the freshest pair at lagging replicas. The
    // acks will arrive under this op id and be discarded as stale traffic
    // by later operations' filters.
    RtMessage repair;
    repair.kind = RtMessage::Kind::kWriteReq;
    repair.op = op;
    repair.key = key;
    repair.version = phase.best_version;
    repair.value = phase.best_value;
    for (NodeId r = 0; r < ReplicaCount(); ++r) {
      if (phase.stale & (1ull << r)) {
        bus_->Send(id_, r, repair);
        ++repairs_issued_;
      }
    }
  }
  ClientResult result;
  result.ok = phase.ok;
  result.value = phase.best_value;
  result.version = phase.best_version;
  result.latency = Since(t0);
  return result;
}

ClientResult QuorumClient::Write(const std::string& key, std::int64_t value) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + options_.timeout;
  const std::uint64_t op = next_op_++;
  ClientResult result;

  const ReadPhase phase = RunReadPhase(key, op, deadline);
  if (!phase.ok) {
    result.latency = Since(t0);
    return result;
  }

  RtMessage w;
  w.kind = RtMessage::Kind::kWriteReq;
  w.op = op;
  w.key = key;
  w.version = phase.best_version + 1;
  w.value = value;
  BroadcastToReplicas(w);

  std::uint64_t acked = 0;
  while (!configs_[phase.best_config].has_write(acked)) {
    std::optional<Envelope> e = bus_->MailboxOf(id_).Pop(deadline);
    if (!e) {
      result.latency = Since(t0);
      return result;  // timeout
    }
    if (e->msg.op != op || e->msg.kind != RtMessage::Kind::kWriteAck) {
      continue;
    }
    acked |= 1ull << e->from;
  }
  result.ok = true;
  result.value = value;
  result.version = w.version;
  result.latency = Since(t0);
  return result;
}

ClientResult QuorumClient::Reconfigure(std::uint32_t target) {
  QCNT_CHECK(target < configs_.size());
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + options_.timeout;
  const std::uint64_t op = next_op_++;
  ClientResult result;

  // The stamp is store-wide; the read phase runs on a distinguished key so
  // version discovery still exercises a read quorum of the old config.
  const ReadPhase phase = RunReadPhase("", op, deadline);
  if (!phase.ok) {
    result.latency = Since(t0);
    return result;
  }

  RtMessage data;
  data.kind = RtMessage::Kind::kWriteReq;
  data.op = op;
  data.key = "";
  data.version = phase.best_version;
  data.value = phase.best_value;
  BroadcastToReplicas(data);

  RtMessage cfg;
  cfg.kind = RtMessage::Kind::kConfigWriteReq;
  cfg.op = op;
  cfg.generation = phase.best_generation + 1;
  cfg.config_id = target;
  BroadcastToReplicas(cfg);

  std::uint64_t data_acked = 0, cfg_acked = 0;
  while (!(configs_[target].has_write(data_acked) &&
           configs_[phase.best_config].has_write(cfg_acked))) {
    std::optional<Envelope> e = bus_->MailboxOf(id_).Pop(deadline);
    if (!e) {
      result.latency = Since(t0);
      return result;
    }
    if (e->msg.op != op) continue;
    if (e->msg.kind == RtMessage::Kind::kWriteAck) {
      data_acked |= 1ull << e->from;
    } else if (e->msg.kind == RtMessage::Kind::kConfigWriteAck) {
      cfg_acked |= 1ull << e->from;
    }
  }
  if (phase.best_generation + 1 > generation_) {
    generation_ = phase.best_generation + 1;
    config_id_ = target;
  }
  result.ok = true;
  result.latency = Since(t0);
  return result;
}

}  // namespace qcnt::runtime
