#include "runtime/client.hpp"

#include <algorithm>
#include <array>
#include <thread>

#include "common/check.hpp"

namespace qcnt::runtime {

namespace {
std::chrono::microseconds Since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
}
}  // namespace

const char* ToString(ClientStatus status) {
  switch (status) {
    case ClientStatus::kOk:
      return "ok";
    case ClientStatus::kTimeout:
      return "timeout";
    case ClientStatus::kNoQuorum:
      return "no-quorum";
    case ClientStatus::kRetriesExhausted:
      return "retries-exhausted";
    case ClientStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

QuorumClient::QuorumClient(Transport& transport, NodeId id,
                           std::shared_ptr<ConfigTable> table,
                           std::uint32_t initial_config, Options options)
    : transport_(&transport),
      id_(id),
      table_(std::move(table)),
      options_(options),
      config_id_(initial_config),
      backoff_rng_(0xbacc0ffull ^ id) {
  QCNT_CHECK(table_ != nullptr);
  QCNT_CHECK(initial_config < table_->Size());
  // Responder bookkeeping is a 64-bit bitmask indexed by node id (member
  // ids are checked < 64 when the table is built); the client itself must
  // not be quorumed over.
  const auto mc = table_->At(initial_config);
  QCNT_CHECK_MSG(id >= 64 || (mc->member_mask & (1ull << id)) == 0,
                 "client id collides with a configuration member");
  QCNT_CHECK(options_.max_attempts >= 1);
}

QuorumClient::QuorumClient(Transport& transport, NodeId id,
                           std::vector<quorum::QuorumSystem> configs,
                           std::uint32_t initial_config, Options options)
    : QuorumClient(transport, id,
                   std::make_shared<ConfigTable>(std::move(configs)),
                   initial_config, options) {}

QuorumClient::QuorumClient(Transport& transport, NodeId id,
                           std::vector<quorum::QuorumSystem> configs,
                           std::uint32_t initial_config)
    : QuorumClient(transport, id, std::move(configs), initial_config,
                   Options{}) {}

void QuorumClient::BroadcastTo(const MemberConfig& config,
                               const RtMessage& m) {
  for (NodeId r : config.members) transport_->Send(id_, r, m);
}

std::uint64_t QuorumClient::SendToQuorum(const MemberConfig& config,
                                         const RtMessage& m,
                                         bool write_quorum) {
  std::uint64_t sent = 0;
  for (;;) {
    const std::uint64_t up = believed_up_ & config.member_mask;
    const auto q = write_quorum ? config.system.pick_write(up)
                                : config.system.pick_read(up);
    if (!q) break;  // no quorum believed assemblable: fall back below
    bool complete = true;
    for (const NodeId r : *q) {
      const std::uint64_t bit = 1ull << r;
      if (sent & bit) continue;
      if (transport_->Send(id_, r, m)) {
        sent |= bit;
      } else {
        // The transport knows this node is down right now (in-process
        // bus refuses sends to crashed nodes): drop it from the believed
        // up-set and re-pick. The mask strictly shrinks, so this loop
        // terminates.
        believed_up_ &= ~bit;
        complete = false;
      }
    }
    if (complete) return sent;
  }
  // No pickable quorum among believed-up members — full fan-out, and
  // report the whole member set as covered so nothing escalates later.
  for (const NodeId r : config.members) {
    if ((sent & (1ull << r)) == 0) transport_->Send(id_, r, m);
  }
  return config.member_mask;
}

std::uint64_t QuorumClient::Escalate(const MemberConfig& config,
                                     const RtMessage& m, std::uint64_t sent) {
  ++escalations_;
  for (const NodeId r : config.members) {
    if ((sent & (1ull << r)) == 0) transport_->Send(id_, r, m);
  }
  return sent | config.member_mask;
}

std::chrono::milliseconds QuorumClient::EscalateDelay() const {
  if (options_.escalate_after.count() > 0) return options_.escalate_after;
  const auto quarter = options_.timeout / 4;
  return quarter.count() > 0 ? quarter : std::chrono::milliseconds(1);
}

void QuorumClient::Learn(std::uint64_t generation, std::uint32_t config_id) {
  // Stamps order by (generation, config_id): config ids are append-ordered
  // in the shared table, so when an orphaned stamp from a timed-out
  // reconfigure attempt collides in generation with a later install (of an
  // adjacent configuration), every client deterministically resolves the
  // tie toward the newer configuration.
  if (generation < generation_ ||
      (generation == generation_ && config_id <= config_id_)) {
    return;
  }
  // Adopt only config ids the shared table can resolve; membership change
  // appends the target before stamping it, so an unresolvable id is stray
  // or corrupt traffic, never a config this client must chase. (A wire-
  // learned payload may have been installed just before this — see
  // MaybeInstallWireConfig.)
  if (table_->TryAt(config_id) == nullptr) return;
  generation_ = generation;
  config_id_ = config_id;
}

void QuorumClient::MaybeInstallWireConfig(const RtMessage& m) {
  if (!m.config || table_->TryAt(m.config_id) != nullptr) return;
  try {
    table_->InstallAt(m.config_id,
                      ConfigTable::FromDescriptor(m.config->descriptor,
                                                  m.config->members));
  } catch (const quorum::StrategyConfigError&) {
    // A payload that cannot form a legal system is hostile or corrupt;
    // leave the id unresolvable — Learn then refuses it, exactly the
    // pre-payload behavior.
  }
}

QuorumClient::ReadPhase QuorumClient::RunReadPhase(
    const std::string& key, std::uint64_t op,
    std::chrono::steady_clock::time_point deadline, bool targeted) {
  RtMessage req;
  req.kind = RtMessage::Kind::kReadReq;
  req.op = op;
  req.key = key;
  // The believed stamp rides along so replies only carry a config
  // payload when they actually teach this client something newer.
  req.generation = generation_;
  req.config_id = config_id_;

  ReadPhase phase;
  phase.best_config = config_id_;
  phase.best_generation = generation_;
  phase.config = table_->At(config_id_);
  std::uint64_t sent;
  if (targeted) {
    sent = SendToQuorum(*phase.config, req, /*write_quorum=*/false);
  } else {
    BroadcastTo(*phase.config, req);
    sent = phase.config->member_mask;
  }
  auto escalate_at = std::chrono::steady_clock::time_point::max();
  if ((sent & phase.config->member_mask) != phase.config->member_mask) {
    escalate_at = std::chrono::steady_clock::now() + EscalateDelay();
  }
  std::uint64_t responded = 0;
  std::array<std::uint64_t, 64> versions{};
  while (!phase.ok) {
    const auto wake = escalate_at < deadline ? escalate_at : deadline;
    std::optional<Envelope> e = transport_->MailboxOf(id_).Pop(wake);
    if (!e) {
      if (std::chrono::steady_clock::now() < wake) {
        // A blocking Pop returns early only when the mailbox closed: the
        // store is shutting down and no response will ever arrive.
        phase.shutdown = true;
        break;
      }
      if (wake == deadline) break;  // attempt timed out
      // The escalation timer fired first: the minimal quorum did not
      // assemble in time — fan out to everyone not yet probed. (A config
      // adopted mid-phase is covered too: `sent` tracks real node ids.)
      sent = Escalate(*phase.config, req, sent);
      escalate_at = std::chrono::steady_clock::time_point::max();
      continue;
    }
    // A sender id outside the bitmask domain would shift out of range;
    // such envelopes are stray traffic, never quorum evidence.
    if (e->from >= 64) continue;
    const RtMessage& m = e->msg;
    if (m.op != op || m.kind != RtMessage::Kind::kReadResp) continue;
    believed_up_ |= 1ull << e->from;  // it answered: it is up
    MaybeInstallWireConfig(m);
    // Only members of the configuration under evaluation are evidence —
    // neither toward the quorum nor in the freshest-version race. A
    // forged (or decommissioned) sender outside the member set must not
    // win version discovery with a fabricated version.
    if ((phase.config->member_mask & (1ull << e->from)) == 0) continue;
    const std::uint64_t bit = 1ull << e->from;
    const bool first = responded == 0;
    responded |= bit;
    phase.any_response = true;
    versions[e->from] = m.version;
    if (!first && m.version == phase.best_version &&
        m.value != phase.best_value) {
      // Two copies of the same version with different values — a Lemma 8
      // violation. Count it loudly; the tie-break below (larger value
      // wins, matching the replica-side total order) keeps the outcome
      // deterministic but must never hide the divergence.
      ++divergences_observed_;
    }
    if (first || m.version > phase.best_version ||
        (m.version == phase.best_version && m.value > phase.best_value)) {
      phase.best_version = m.version;
      phase.best_value = m.value;
    }
    if (m.generation > phase.best_generation ||
        (m.generation == phase.best_generation &&
         m.config_id > phase.best_config)) {
      // Chase the newest configuration the quorum evidence names, in the
      // (generation, config_id) stamp order; the quorum check below
      // re-arms under it (reading a read quorum of an old config
      // necessarily reveals a newer generation when one was installed —
      // the stamp covers an old write quorum).
      if (auto mc = table_->TryAt(m.config_id)) {
        phase.best_generation = m.generation;
        phase.best_config = m.config_id;
        phase.config = std::move(mc);
      }
    }
    Learn(m.generation, m.config_id);
    // Mask evidence down to the config's members: a response from a node
    // the config does not quorum over must never complete the phase.
    if (phase.config->system.has_read(responded & phase.config->member_mask)) {
      phase.ok = true;
    }
  }
  for (NodeId r = 0; r < 64; ++r) {
    if ((responded & (1ull << r)) && versions[r] < phase.best_version) {
      phase.stale |= 1ull << r;
    }
  }
  return phase;
}

void QuorumClient::MaybeRepair(const std::string& key, std::uint64_t op,
                               const ReadPhase& phase) {
  if (!options_.read_repair || phase.stale == 0) return;
  // Fire-and-forget: install the freshest pair at lagging replicas. The
  // acks will arrive under this op id and be discarded as stale traffic
  // by later operations' filters.
  RtMessage repair;
  repair.kind = RtMessage::Kind::kWriteReq;
  repair.op = op;
  repair.key = key;
  repair.version = phase.best_version;
  repair.value = phase.best_value;
  // Stamp the believed generation: a repair must not be fenced off by
  // replicas that already installed the configuration this client just
  // learned about from the same read quorum.
  repair.generation = generation_;
  for (NodeId r = 0; r < 64; ++r) {
    if ((phase.stale & (1ull << r)) == 0) continue;
    // Count only repairs the bus accepted: a send the bus dropped
    // (crashed or partitioned replica) repaired nothing, and chaos-test
    // accounting relies on this counter being trustworthy.
    if (transport_->Send(id_, r, repair)) ++repairs_issued_;
  }
}

ClientStatus QuorumClient::AttemptStatus(const ReadPhase& phase,
                                         std::size_t attempt) const {
  if (phase.shutdown) return ClientStatus::kShutdown;
  if (attempt >= options_.max_attempts && options_.max_attempts > 1) {
    return ClientStatus::kRetriesExhausted;
  }
  return phase.any_response ? ClientStatus::kTimeout
                            : ClientStatus::kNoQuorum;
}

void QuorumClient::Backoff(std::size_t attempt) {
  auto delay = options_.backoff_base;
  for (std::size_t i = 1; i < attempt && delay < options_.backoff_max; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, options_.backoff_max);
  const std::int64_t us =
      std::chrono::duration_cast<std::chrono::microseconds>(delay).count();
  if (us <= 0) return;
  // Full jitter over the upper half of the window decorrelates clients
  // that failed together.
  std::this_thread::sleep_for(
      std::chrono::microseconds(backoff_rng_.Range(us / 2, us)));
}

ClientResult QuorumClient::Read(const std::string& key) {
  const auto t0 = std::chrono::steady_clock::now();
  ClientResult result;
  for (std::size_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    result.attempts = static_cast<std::uint32_t>(attempt);
    const std::uint64_t op = next_op_++;  // per-attempt sub-op id
    const auto deadline = std::chrono::steady_clock::now() + options_.timeout;
    // Only the first attempt trusts the believed-up mask enough to target
    // a minimal quorum; a retry means something went wrong — reset the
    // mask and broadcast.
    if (attempt > 1) believed_up_ = ~0ull;
    // read_repair fans out regardless: repair exists to find and heal
    // stale replicas outside the minimal quorum.
    const bool targeted =
        attempt == 1 && options_.target_minimal && !options_.read_repair;
    const ReadPhase phase = RunReadPhase(key, op, deadline, targeted);
    if (phase.ok) {
      MaybeRepair(key, op, phase);
      result.ok = true;
      result.status = ClientStatus::kOk;
      result.value = phase.best_value;
      result.version = phase.best_version;
      break;
    }
    result.status = AttemptStatus(phase, attempt);
    if (phase.shutdown) break;
    if (attempt < options_.max_attempts) Backoff(attempt);
  }
  result.latency = Since(t0);
  return result;
}

ClientResult QuorumClient::Write(const std::string& key, std::int64_t value) {
  const auto t0 = std::chrono::steady_clock::now();
  ClientResult result;
  // Every install goes strictly above everything this client ever staged
  // for the key (across attempts AND across operations): the acked
  // version is then ≥ every straggler on the wire, so a reordered or
  // abandoned retry can never leave a higher-versioned orphan to collide
  // with a later write's version.
  std::uint64_t& version_floor = install_floor_[key];
  for (std::size_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    result.attempts = static_cast<std::uint32_t>(attempt);
    const std::uint64_t op = next_op_++;  // per-attempt sub-op id
    const auto deadline = std::chrono::steady_clock::now() + options_.timeout;

    if (attempt > 1) believed_up_ = ~0ull;
    const bool targeted = attempt == 1 && options_.target_minimal;
    const ReadPhase phase = RunReadPhase(key, op, deadline, targeted);
    if (!phase.ok) {
      result.status = AttemptStatus(phase, attempt);
      if (phase.shutdown) break;
      if (attempt < options_.max_attempts) Backoff(attempt);
      continue;
    }

    RtMessage w;
    w.kind = RtMessage::Kind::kWriteReq;
    w.op = op;
    w.key = key;
    w.version = std::max(phase.best_version, version_floor) + 1;
    w.value = value;
    // The believed generation rides along; a replica that has installed a
    // newer one fences the install (NACK) instead of applying it, and the
    // NACK teaches this client the new configuration for the retry.
    w.generation = generation_;
    w.config_id = config_id_;
    version_floor = w.version;

    const MemberConfig& wc = *phase.config;
    std::uint64_t sent;
    if (targeted) {
      sent = SendToQuorum(wc, w, /*write_quorum=*/true);
    } else {
      BroadcastTo(wc, w);
      sent = wc.member_mask;
    }
    auto escalate_at = std::chrono::steady_clock::time_point::max();
    if ((sent & wc.member_mask) != wc.member_mask) {
      escalate_at = std::chrono::steady_clock::now() + EscalateDelay();
    }
    std::uint64_t acked = 0;
    std::uint64_t fenced = 0;
    bool shutdown = false, quorum = true;
    while (!wc.system.has_write(acked & wc.member_mask)) {
      const auto wake = escalate_at < deadline ? escalate_at : deadline;
      std::optional<Envelope> e = transport_->MailboxOf(id_).Pop(wake);
      if (!e) {
        if (std::chrono::steady_clock::now() < wake) {
          shutdown = true;
          quorum = false;
          break;
        }
        if (wake == deadline) {
          quorum = false;
          break;
        }
        sent = Escalate(wc, w, sent);
        escalate_at = std::chrono::steady_clock::time_point::max();
        continue;
      }
      if (e->from >= 64) continue;
      believed_up_ |= 1ull << e->from;
      if ((wc.member_mask & (1ull << e->from)) == 0) continue;
      if (e->msg.op != op || e->msg.kind != RtMessage::Kind::kWriteAck) {
        continue;
      }
      if (e->msg.value != 0) {
        MaybeInstallWireConfig(e->msg);
        // Fenced: the replica holds a newer generation and refused the
        // install. Not quorum evidence — but it names the configuration
        // the retry must target. A fenced replica's generation only
        // grows, so it can never ack this attempt: once the refusers
        // exclude every write quorum the attempt is unwinnable, and
        // waiting out the deadline would only stretch the client-visible
        // stall a reconfiguration causes.
        Learn(e->msg.generation, e->msg.config_id);
        fenced |= 1ull << e->from;
        if (!wc.system.has_write(wc.member_mask & ~fenced)) {
          quorum = false;
          break;
        }
        continue;
      }
      acked |= 1ull << e->from;
    }
    if (quorum) {
      result.ok = true;
      result.status = ClientStatus::kOk;
      result.value = value;
      result.version = w.version;
      break;
    }
    // A read quorum responded this attempt, so "no response at all" can't
    // be the story — classify as timeout (or exhausted/shutdown).
    result.status = shutdown ? ClientStatus::kShutdown
                    : (attempt >= options_.max_attempts &&
                       options_.max_attempts > 1)
                        ? ClientStatus::kRetriesExhausted
                        : ClientStatus::kTimeout;
    if (shutdown) break;
    if (attempt < options_.max_attempts) Backoff(attempt);
  }
  result.latency = Since(t0);
  return result;
}

ClientResult QuorumClient::Reconfigure(std::uint32_t target,
                                       std::uint64_t* stamp_acked_out) {
  QCNT_CHECK(target < table_->Size());
  const auto target_cfg = table_->At(target);
  const auto t0 = std::chrono::steady_clock::now();
  ClientResult result;
  // Highest generation any attempt of this call put on the wire. A timed-
  // out attempt may still have planted its stamp on some replica; if a
  // later attempt's read quorum never sees that orphan and succeeds with a
  // lower generation, believing only the successful one would leave this
  // client issuing installs the orphaned replica fences. Believing the max
  // is always safe: generations only order fences, and every attempt here
  // stamps the same target configuration.
  std::uint64_t stamped = 0;
  for (std::size_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    result.attempts = static_cast<std::uint32_t>(attempt);
    const std::uint64_t op = next_op_++;
    const auto deadline = std::chrono::steady_clock::now() + options_.timeout;

    // The stamp is store-wide; the read phase runs on a distinguished key
    // so version discovery still exercises a read quorum of the old config.
    const ReadPhase phase = RunReadPhase("", op, deadline);
    if (!phase.ok) {
      result.status = AttemptStatus(phase, attempt);
      if (phase.shutdown) break;
      if (attempt < options_.max_attempts) Backoff(attempt);
      continue;
    }
    const MemberConfig& old_cfg = *phase.config;

    RtMessage data;
    data.kind = RtMessage::Kind::kWriteReq;
    data.op = op;
    data.key = "";
    data.version = phase.best_version;
    data.value = phase.best_value;
    // The data leg belongs to the generation being installed: replicas
    // that already applied this attempt's stamp must not fence it.
    data.generation = phase.best_generation + 1;

    RtMessage cfg;
    cfg.kind = RtMessage::Kind::kConfigWriteReq;
    cfg.op = op;
    cfg.generation = phase.best_generation + 1;
    cfg.config_id = target;
    // Self-describing config payload: replicas remember it and echo it on
    // fence NACKs and stale-stamp replies, so a client whose local table
    // has no entry for `target` (another process appended it) can install
    // the exact same quorum system instead of failing to resolve the id.
    // Hand-built systems carry no descriptor (kOpaque) and stay
    // table-resolution-only, exactly the pre-payload contract.
    if (target_cfg->system.descriptor.kind != quorum::StrategyKind::kOpaque) {
      cfg.config = ConfigPayload{target_cfg->members,
                                 target_cfg->system.descriptor};
    }
    stamped = std::max(stamped, cfg.generation);

    // Both legs go to the union of old and target members. The quorum
    // requirements stay the paper's: data at a write quorum of the
    // *target*, stamp at a write quorum of the *old* configuration (the
    // §4 sharpening) — but sending the stamp to joining members too means
    // they normally learn their generation immediately instead of waiting
    // to be fenced into it.
    for (NodeId r : old_cfg.members) {
      transport_->Send(id_, r, data);
      transport_->Send(id_, r, cfg);
    }
    for (NodeId r : target_cfg->members) {
      if ((old_cfg.member_mask & (1ull << r)) != 0) continue;
      transport_->Send(id_, r, data);
      transport_->Send(id_, r, cfg);
    }

    std::uint64_t data_acked = 0, cfg_acked = 0;
    bool shutdown = false, quorum = true;
    while (!(target_cfg->system.has_write(data_acked &
                                          target_cfg->member_mask) &&
             old_cfg.system.has_write(cfg_acked & old_cfg.member_mask))) {
      std::optional<Envelope> e = transport_->MailboxOf(id_).Pop(deadline);
      if (!e) {
        shutdown = std::chrono::steady_clock::now() < deadline;
        quorum = false;
        break;
      }
      if (e->from >= 64) continue;
      if (((old_cfg.member_mask | target_cfg->member_mask) &
           (1ull << e->from)) == 0) {
        continue;
      }
      if (e->msg.op != op) continue;
      if (e->msg.kind == RtMessage::Kind::kWriteAck) {
        if (e->msg.value != 0) {
          // Fenced data leg: an even newer generation won the race.
          MaybeInstallWireConfig(e->msg);
          Learn(e->msg.generation, e->msg.config_id);
          continue;
        }
        data_acked |= 1ull << e->from;
      } else if (e->msg.kind == RtMessage::Kind::kConfigWriteAck) {
        cfg_acked |= 1ull << e->from;
      }
    }
    if (quorum) {
      if (stamped > generation_) {
        generation_ = stamped;
        config_id_ = target;
      }
      if (stamp_acked_out != nullptr) {
        // Exactly the old members whose stamp ack the quorum saw — the
        // seal set S_acked of DESIGN.md §11.
        *stamp_acked_out = cfg_acked & old_cfg.member_mask;
      }
      result.ok = true;
      result.status = ClientStatus::kOk;
      break;
    }
    result.status = shutdown ? ClientStatus::kShutdown
                    : (attempt >= options_.max_attempts &&
                       options_.max_attempts > 1)
                        ? ClientStatus::kRetriesExhausted
                        : ClientStatus::kTimeout;
    if (shutdown) break;
    if (attempt < options_.max_attempts) Backoff(attempt);
  }
  result.latency = Since(t0);
  return result;
}

}  // namespace qcnt::runtime
