#include "runtime/client.hpp"

#include <algorithm>
#include <array>
#include <thread>

#include "common/check.hpp"

namespace qcnt::runtime {

namespace {
std::chrono::microseconds Since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
}
}  // namespace

const char* ToString(ClientStatus status) {
  switch (status) {
    case ClientStatus::kOk:
      return "ok";
    case ClientStatus::kTimeout:
      return "timeout";
    case ClientStatus::kNoQuorum:
      return "no-quorum";
    case ClientStatus::kRetriesExhausted:
      return "retries-exhausted";
    case ClientStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

QuorumClient::QuorumClient(Transport& transport, NodeId id,
                           std::vector<quorum::QuorumSystem> configs,
                           std::uint32_t initial_config, Options options)
    : transport_(&transport),
      id_(id),
      configs_(std::move(configs)),
      options_(options),
      config_id_(initial_config),
      backoff_rng_(0xbacc0ffull ^ id) {
  QCNT_CHECK(initial_config < configs_.size());
  // Responder bookkeeping is a 64-bit bitmask indexed by replica id; a
  // larger universe would shift out of range (silent UB).
  QCNT_CHECK(ReplicaCount() <= 64);
  QCNT_CHECK(id >= ReplicaCount());
  QCNT_CHECK(options_.max_attempts >= 1);
}

QuorumClient::QuorumClient(Transport& transport, NodeId id,
                           std::vector<quorum::QuorumSystem> configs,
                           std::uint32_t initial_config)
    : QuorumClient(transport, id, std::move(configs), initial_config,
                   Options{}) {}

void QuorumClient::BroadcastToReplicas(const RtMessage& m) {
  for (NodeId r = 0; r < ReplicaCount(); ++r) transport_->Send(id_, r, m);
}

QuorumClient::ReadPhase QuorumClient::RunReadPhase(
    const std::string& key, std::uint64_t op,
    std::chrono::steady_clock::time_point deadline) {
  RtMessage req;
  req.kind = RtMessage::Kind::kReadReq;
  req.op = op;
  req.key = key;
  BroadcastToReplicas(req);

  ReadPhase phase;
  phase.best_config = config_id_;
  phase.best_generation = generation_;
  std::uint64_t responded = 0;
  std::array<std::uint64_t, 64> versions{};
  while (!phase.ok) {
    std::optional<Envelope> e = transport_->MailboxOf(id_).Pop(deadline);
    if (!e) {
      // A blocking Pop returns early only when the mailbox closed: the
      // store is shutting down and no response will ever arrive.
      phase.shutdown = std::chrono::steady_clock::now() < deadline;
      break;
    }
    // A sender id outside the replica universe would index out of the
    // bitmask; such envelopes are stray traffic, never quorum evidence.
    if (e->from >= ReplicaCount()) continue;
    const RtMessage& m = e->msg;
    if (m.op != op || m.kind != RtMessage::Kind::kReadResp) continue;
    const std::uint64_t bit = 1ull << e->from;
    const bool first = responded == 0;
    responded |= bit;
    phase.any_response = true;
    versions[e->from] = m.version;
    if (!first && m.version == phase.best_version &&
        m.value != phase.best_value) {
      // Two copies of the same version with different values — a Lemma 8
      // violation. Count it loudly; the tie-break below (larger value
      // wins, matching the replica-side total order) keeps the outcome
      // deterministic but must never hide the divergence.
      ++divergences_observed_;
    }
    if (first || m.version > phase.best_version ||
        (m.version == phase.best_version && m.value > phase.best_value)) {
      phase.best_version = m.version;
      phase.best_value = m.value;
    }
    if (m.generation > phase.best_generation) {
      phase.best_generation = m.generation;
      phase.best_config = m.config_id;
    }
    if (m.generation > generation_) {
      generation_ = m.generation;
      config_id_ = m.config_id;
    }
    if (configs_[phase.best_config].has_read(responded)) phase.ok = true;
  }
  for (NodeId r = 0; r < ReplicaCount(); ++r) {
    if ((responded & (1ull << r)) && versions[r] < phase.best_version) {
      phase.stale |= 1ull << r;
    }
  }
  return phase;
}

void QuorumClient::MaybeRepair(const std::string& key, std::uint64_t op,
                               const ReadPhase& phase) {
  if (!options_.read_repair || phase.stale == 0) return;
  // Fire-and-forget: install the freshest pair at lagging replicas. The
  // acks will arrive under this op id and be discarded as stale traffic
  // by later operations' filters.
  RtMessage repair;
  repair.kind = RtMessage::Kind::kWriteReq;
  repair.op = op;
  repair.key = key;
  repair.version = phase.best_version;
  repair.value = phase.best_value;
  for (NodeId r = 0; r < ReplicaCount(); ++r) {
    if ((phase.stale & (1ull << r)) == 0) continue;
    // Count only repairs the bus accepted: a send the bus dropped
    // (crashed or partitioned replica) repaired nothing, and chaos-test
    // accounting relies on this counter being trustworthy.
    if (transport_->Send(id_, r, repair)) ++repairs_issued_;
  }
}

ClientStatus QuorumClient::AttemptStatus(const ReadPhase& phase,
                                         std::size_t attempt) const {
  if (phase.shutdown) return ClientStatus::kShutdown;
  if (attempt >= options_.max_attempts && options_.max_attempts > 1) {
    return ClientStatus::kRetriesExhausted;
  }
  return phase.any_response ? ClientStatus::kTimeout
                            : ClientStatus::kNoQuorum;
}

void QuorumClient::Backoff(std::size_t attempt) {
  auto delay = options_.backoff_base;
  for (std::size_t i = 1; i < attempt && delay < options_.backoff_max; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, options_.backoff_max);
  const std::int64_t us =
      std::chrono::duration_cast<std::chrono::microseconds>(delay).count();
  if (us <= 0) return;
  // Full jitter over the upper half of the window decorrelates clients
  // that failed together.
  std::this_thread::sleep_for(
      std::chrono::microseconds(backoff_rng_.Range(us / 2, us)));
}

ClientResult QuorumClient::Read(const std::string& key) {
  const auto t0 = std::chrono::steady_clock::now();
  ClientResult result;
  for (std::size_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    result.attempts = static_cast<std::uint32_t>(attempt);
    const std::uint64_t op = next_op_++;  // per-attempt sub-op id
    const auto deadline = std::chrono::steady_clock::now() + options_.timeout;
    const ReadPhase phase = RunReadPhase(key, op, deadline);
    if (phase.ok) {
      MaybeRepair(key, op, phase);
      result.ok = true;
      result.status = ClientStatus::kOk;
      result.value = phase.best_value;
      result.version = phase.best_version;
      break;
    }
    result.status = AttemptStatus(phase, attempt);
    if (phase.shutdown) break;
    if (attempt < options_.max_attempts) Backoff(attempt);
  }
  result.latency = Since(t0);
  return result;
}

ClientResult QuorumClient::Write(const std::string& key, std::int64_t value) {
  const auto t0 = std::chrono::steady_clock::now();
  ClientResult result;
  // Every install goes strictly above everything this client ever staged
  // for the key (across attempts AND across operations): the acked
  // version is then ≥ every straggler on the wire, so a reordered or
  // abandoned retry can never leave a higher-versioned orphan to collide
  // with a later write's version.
  std::uint64_t& version_floor = install_floor_[key];
  for (std::size_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    result.attempts = static_cast<std::uint32_t>(attempt);
    const std::uint64_t op = next_op_++;  // per-attempt sub-op id
    const auto deadline = std::chrono::steady_clock::now() + options_.timeout;

    const ReadPhase phase = RunReadPhase(key, op, deadline);
    if (!phase.ok) {
      result.status = AttemptStatus(phase, attempt);
      if (phase.shutdown) break;
      if (attempt < options_.max_attempts) Backoff(attempt);
      continue;
    }

    RtMessage w;
    w.kind = RtMessage::Kind::kWriteReq;
    w.op = op;
    w.key = key;
    w.version = std::max(phase.best_version, version_floor) + 1;
    w.value = value;
    version_floor = w.version;
    BroadcastToReplicas(w);

    std::uint64_t acked = 0;
    bool shutdown = false, quorum = true;
    while (!configs_[phase.best_config].has_write(acked)) {
      std::optional<Envelope> e = transport_->MailboxOf(id_).Pop(deadline);
      if (!e) {
        shutdown = std::chrono::steady_clock::now() < deadline;
        quorum = false;
        break;
      }
      if (e->from >= ReplicaCount()) continue;
      if (e->msg.op != op || e->msg.kind != RtMessage::Kind::kWriteAck) {
        continue;
      }
      acked |= 1ull << e->from;
    }
    if (quorum) {
      result.ok = true;
      result.status = ClientStatus::kOk;
      result.value = value;
      result.version = w.version;
      break;
    }
    // A read quorum responded this attempt, so "no response at all" can't
    // be the story — classify as timeout (or exhausted/shutdown).
    result.status = shutdown ? ClientStatus::kShutdown
                    : (attempt >= options_.max_attempts &&
                       options_.max_attempts > 1)
                        ? ClientStatus::kRetriesExhausted
                        : ClientStatus::kTimeout;
    if (shutdown) break;
    if (attempt < options_.max_attempts) Backoff(attempt);
  }
  result.latency = Since(t0);
  return result;
}

ClientResult QuorumClient::Reconfigure(std::uint32_t target) {
  QCNT_CHECK(target < configs_.size());
  const auto t0 = std::chrono::steady_clock::now();
  ClientResult result;
  for (std::size_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    result.attempts = static_cast<std::uint32_t>(attempt);
    const std::uint64_t op = next_op_++;
    const auto deadline = std::chrono::steady_clock::now() + options_.timeout;

    // The stamp is store-wide; the read phase runs on a distinguished key
    // so version discovery still exercises a read quorum of the old config.
    const ReadPhase phase = RunReadPhase("", op, deadline);
    if (!phase.ok) {
      result.status = AttemptStatus(phase, attempt);
      if (phase.shutdown) break;
      if (attempt < options_.max_attempts) Backoff(attempt);
      continue;
    }

    RtMessage data;
    data.kind = RtMessage::Kind::kWriteReq;
    data.op = op;
    data.key = "";
    data.version = phase.best_version;
    data.value = phase.best_value;
    BroadcastToReplicas(data);

    RtMessage cfg;
    cfg.kind = RtMessage::Kind::kConfigWriteReq;
    cfg.op = op;
    cfg.generation = phase.best_generation + 1;
    cfg.config_id = target;
    BroadcastToReplicas(cfg);

    std::uint64_t data_acked = 0, cfg_acked = 0;
    bool shutdown = false, quorum = true;
    while (!(configs_[target].has_write(data_acked) &&
             configs_[phase.best_config].has_write(cfg_acked))) {
      std::optional<Envelope> e = transport_->MailboxOf(id_).Pop(deadline);
      if (!e) {
        shutdown = std::chrono::steady_clock::now() < deadline;
        quorum = false;
        break;
      }
      if (e->from >= ReplicaCount()) continue;
      if (e->msg.op != op) continue;
      if (e->msg.kind == RtMessage::Kind::kWriteAck) {
        data_acked |= 1ull << e->from;
      } else if (e->msg.kind == RtMessage::Kind::kConfigWriteAck) {
        cfg_acked |= 1ull << e->from;
      }
    }
    if (quorum) {
      if (phase.best_generation + 1 > generation_) {
        generation_ = phase.best_generation + 1;
        config_id_ = target;
      }
      result.ok = true;
      result.status = ClientStatus::kOk;
      break;
    }
    result.status = shutdown ? ClientStatus::kShutdown
                    : (attempt >= options_.max_attempts &&
                       options_.max_attempts > 1)
                        ? ClientStatus::kRetriesExhausted
                        : ClientStatus::kTimeout;
    if (shutdown) break;
    if (attempt < options_.max_attempts) Backoff(attempt);
  }
  result.latency = Since(t0);
  return result;
}

}  // namespace qcnt::runtime
