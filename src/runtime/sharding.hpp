// Key → shard routing for sharded replica execution.
//
// Keys are independent logical items (each item x ∈ I carries its own DMs
// and version order — Lemmas 7/8 quantify per item), so a replica may
// partition its keyspace across worker shards without changing any
// protocol-visible behavior. The partition function must be *stable across
// process restarts*: under durability a key's records live in exactly one
// WAL segment, and recovery replays segment s back into shard s. std::hash
// makes no cross-run promise, so we pin FNV-1a explicitly.
#pragma once

#include <cstdint>
#include <string_view>
#include <thread>

namespace qcnt::runtime {

/// FNV-1a 64-bit. Deterministic across platforms and runs (required for
/// durable shard segments to stay self-consistent).
inline std::uint64_t ShardHash(std::string_view key) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// The shard owning `key` out of `shards` partitions.
inline std::size_t ShardForKey(std::string_view key, std::size_t shards) {
  return shards <= 1 ? 0 : static_cast<std::size_t>(ShardHash(key) % shards);
}

/// Default worker shards per replica: one per core up to 4. More shards
/// than cores only adds context switching; capping at 4 keeps thread count
/// sane for stores with many replicas.
inline std::size_t DefaultShardsPerReplica() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw == 0 ? 1 : hw;
  return cores < 4 ? cores : 4;
}

/// Default worker *threads* multiplexing a replica's shards: one per core,
/// never more than the shard count. Shards are a durable layout property
/// (each pins a WAL segment + snapshot, recorded in the MANIFEST); workers
/// are an execution property and adapt to the machine — a directory laid
/// down on an 8-core box reopens fine on a 1-core box, it just runs its 8
/// segments on 1 worker instead of 8.
inline std::size_t DefaultWorkersPerReplica(std::size_t shards) {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw == 0 ? 1 : hw;
  return shards < cores ? shards : cores;
}

}  // namespace qcnt::runtime
