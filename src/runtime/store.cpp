#include "runtime/store.hpp"

#include <cstdlib>
#include <limits>
#include <utility>

#include "common/check.hpp"
#include "common/env.hpp"
#include "net/error.hpp"
#include "runtime/sharding.hpp"

namespace qcnt::runtime {

namespace {
std::size_t ResolveShards() {
  // QCNT_SHARDS lets a test matrix (CI runs the runtime suite under TSan
  // with 4 shards) force a count without touching every StoreOptions
  // literal; out-of-range values fall back to the hardware default.
  if (const auto v = common::EnvU64("QCNT_SHARDS", 1, 64)) {
    return static_cast<std::size_t>(*v);
  }
  return DefaultShardsPerReplica();
}

StoreOptions Normalize(StoreOptions options) {
  QCNT_CHECK(options.replicas >= 1 && options.replicas <= 63);
  QCNT_CHECK(options.max_clients >= 1);
  if (options.shards_per_replica == 0) {
    options.shards_per_replica = ResolveShards();
  }
  QCNT_CHECK_MSG(options.shards_per_replica <= 64,
                 "shards_per_replica out of range");
  if (options.workers_per_replica == 0) {
    // QCNT_WORKERS mirrors QCNT_SHARDS: a CI matrix can pin the worker
    // pool (e.g. force thread-per-shard multiplexing coverage) without
    // touching StoreOptions literals. 0 stays 0 = per-machine auto.
    if (const auto v = common::EnvU64("QCNT_WORKERS", 1, 64)) {
      options.workers_per_replica = static_cast<std::size_t>(*v);
    }
  }
  if (!options.configs.empty() && !options.strategy.empty()) {
    throw quorum::StrategyConfigError(
        "StoreOptions::strategy and StoreOptions::configs are mutually "
        "exclusive — an explicit config table already names its systems");
  }
  if (options.configs.empty()) {
    const auto n = static_cast<ReplicaId>(options.replicas);
    if (!options.strategy.empty()) {
      // Programmatic spec: fail fast and typed on a bad spec or a shape
      // that cannot cover `replicas` (a 2×2 grid over 5 nodes).
      options.configs.push_back(quorum::SystemFromDescriptor(
          quorum::ParseStrategy(options.strategy), n));
    } else if (const char* env = std::getenv("QCNT_STRATEGY");
               env != nullptr && *env != '\0') {
      // Env override of the *default* only. Tolerant like every other
      // QCNT_* knob (common/env.hpp): a suite-wide QCNT_STRATEGY that
      // does not fit this store's replica count must not take the
      // process down, so misfits fall back to majority.
      try {
        options.configs.push_back(quorum::SystemFromDescriptor(
            quorum::ParseStrategy(env), n));
      } catch (const quorum::StrategyConfigError&) {
        options.configs.push_back(quorum::MajoritySystem(n));
      }
    } else {
      options.configs.push_back(quorum::MajoritySystem(n));
    }
    options.initial_config = 0;
  }
  QCNT_CHECK(options.initial_config < options.configs.size());
  QCNT_CHECK_MSG(options.configs.front().n == options.replicas,
                 "the first configuration fixes the replica universe");
  for (const quorum::QuorumSystem& s : options.configs) {
    QCNT_CHECK_MSG(s.n <= options.replicas,
                   "configurations may not mention unknown replicas");
  }
  if (options.durability) {
    QCNT_CHECK_MSG(!options.durability->directory.empty(),
                   "durability requires a directory");
  }
  if (options.faults && options.tcp) {
    // Loud and typed, not a silently ignored plan: the seeded injector
    // lives in the Bus, and a TCP store never routes through it.
    throw net::TransportConfigError(
        "StoreOptions::faults is an in-process-Bus feature and cannot be "
        "combined with StoreOptions::tcp (on TCP the network itself is "
        "the fault injector)");
  }
  if (options.faults) {
    FaultPlan& f = *options.faults;
    QCNT_CHECK_MSG(f.drop >= 0.0 && f.drop <= 1.0, "drop out of [0, 1]");
    QCNT_CHECK_MSG(f.duplicate >= 0.0 && f.duplicate <= 1.0,
                   "duplicate out of [0, 1]");
    QCNT_CHECK_MSG(f.delay_min.count() >= 0 &&
                       f.delay_min <= f.delay_max,
                   "delay_min must be in [0, delay_max]");
    // QCNT_FAULT_SEED lets a CI chaos matrix vary the seed per run
    // without editing tests (same pattern as QCNT_SHARDS above).
    if (const auto v = common::EnvU64("QCNT_FAULT_SEED", 0,
                                      std::numeric_limits<std::uint64_t>::max())) {
      f.seed = *v;
    }
  }
  if (options.tcp && options.tcp->port_base == 0) {
    // Fixed ports on demand (e.g. to watch loopback traffic in a packet
    // capture); the default ephemeral ports cannot collide across
    // concurrent test runs.
    if (const auto v = common::EnvU64("QCNT_TCP_PORT_BASE", 1024,
                                      65535 - 64 - 16)) {
      options.tcp->port_base = static_cast<std::uint16_t>(*v);
    }
  }
  return options;
}

/// Every node of the universe hosted by this process, talking loopback
/// TCP to itself: the honest single-process deployment of the real wire
/// path (bench_transport's subject, and the TCP e2e tests').
std::unique_ptr<net::TcpTransport> MakeLoopbackTransport(
    const StoreOptions& options) {
  // +1: the membership coordinator's dedicated client slot. Replicas
  // added at runtime claim ids above it (AddLocalNode / Bus::AddNode into
  // the transports' pre-allocated growth headroom).
  const std::size_t n = options.replicas + options.max_clients + 1;
  net::TcpTransportOptions topts;
  topts.universe.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    topts.universe[i].host = options.tcp->host;
    if (options.tcp->port_base != 0) {
      topts.universe[i].port =
          static_cast<std::uint16_t>(options.tcp->port_base + i);
    }
  }
  std::vector<NodeId> local(n);
  for (std::size_t i = 0; i < n; ++i) local[i] = static_cast<NodeId>(i);
  return std::make_unique<net::TcpTransport>(std::move(topts),
                                             std::move(local));
}

std::string ReplicaDir(const StoreOptions& options, std::size_t replica) {
  return options.durability->directory + "/replica_" +
         std::to_string(replica);
}

std::unique_ptr<storage::Backend> MakeShardBackend(
    const StoreOptions& options,
    const std::shared_ptr<storage::Manifest>& manifest, std::size_t shard,
    std::shared_ptr<storage::GroupCommitCoordinator> coordinator) {
  if (!options.durability) return storage::MakeMemoryBackend();
  return storage::MakeDurableShardBackend(manifest, *options.durability,
                                          shard, std::move(coordinator));
}

/// One manifest per durable replica directory, shared by every shard
/// backend: it is the single commit point for the replica's segment and
/// checkpoint chains, and pins the shard count the first time any shard
/// persists its file list.
std::shared_ptr<storage::Manifest> MakeReplicaManifest(
    const StoreOptions& options, std::size_t replica) {
  if (!options.durability) return nullptr;
  return std::make_shared<storage::Manifest>(ReplicaDir(options, replica),
                                             options.shards_per_replica);
}

/// One coordinator per group-commit-durable replica: a single fsync
/// decision per window across all of the replica's shard segments,
/// instead of one independent timer per shard.
std::shared_ptr<storage::GroupCommitCoordinator> MakeCommitCoordinator(
    const StoreOptions& options) {
  if (!options.durability ||
      options.durability->fsync != storage::FsyncPolicy::kGroupCommit ||
      !options.durability->coordinate_group_commit) {
    return nullptr;
  }
  storage::GroupCommitCoordinator::Options o;
  o.window = options.durability->group_commit_window;
  o.adaptive = options.durability->adaptive_commit_window;
  o.min_window = options.durability->commit_window_min;
  o.max_window = options.durability->commit_window_max;
  return std::make_shared<storage::GroupCommitCoordinator>(o);
}

/// Refuse to open a durability directory whose layout cannot host this
/// replica: corrupt manifest, shard count changed, or a WAL segment the
/// manifest names is gone. Recovering a subset silently would drop acked
/// writes — the one thing the WAL exists to prevent.
void ValidateDurableLayout(const StoreOptions& options, std::size_t replica) {
  const auto check = storage::RecoveryManager(ReplicaDir(options, replica))
                         .ValidateShardLayout(options.shards_per_replica);
  QCNT_CHECK_MSG(check.ok, check.error);
}
}  // namespace

ReplicatedStore::ReplicatedStore(StoreOptions options)
    : options_(Normalize(std::move(options))) {
  if (options_.tcp) {
    auto tcp = MakeLoopbackTransport(options_);
    tcp_ = tcp.get();
    transport_ = std::move(tcp);
  } else {
    // +1: the membership coordinator's dedicated client slot.
    auto bus = std::make_unique<Bus>(options_.replicas +
                                     options_.max_clients + 1);
    bus_ = bus.get();
    transport_ = std::move(bus);
  }
  table_ = std::make_shared<ConfigTable>(options_.configs);
  current_config_ = options_.initial_config;
  next_replica_id_ =
      static_cast<NodeId>(options_.replicas + options_.max_clients + 1);
  // Install faults before any replica thread starts so the very first
  // message already flows through the injector and per-link RNG streams
  // are reproducible from the seed alone.
  if (options_.faults) bus_->SetFaults(*options_.faults);
  for (std::size_t r = 0; r < options_.replicas; ++r) {
    if (Durable()) ValidateDurableLayout(options_, r);
    auto gc = MakeCommitCoordinator(options_);
    if (gc) commit_coordinators_.emplace(static_cast<NodeId>(r), gc);
    // The shared manifest pins the shard count the moment the first
    // shard's backend commits its file list (inside Recover below), so a
    // manifest never names segments that were not yet laid down.
    auto manifest = MakeReplicaManifest(options_, r);
    replicas_.emplace(
        static_cast<NodeId>(r),
        std::make_unique<ReplicaServer>(
            *transport_, static_cast<NodeId>(r), options_.shards_per_replica,
            [this, manifest, gc](std::size_t shard) {
              return MakeShardBackend(options_, manifest, shard, gc);
            },
            options_.record_applied_history, options_.workers_per_replica));
    members_.push_back(static_cast<NodeId>(r));
  }
}

ReplicatedStore::~ReplicatedStore() {
  for (auto& r : replicas_) r.second->Shutdown();
  transport_->CloseAll();
}

std::unique_ptr<QuorumClient> ReplicatedStore::MakeClient() {
  QCNT_CHECK_MSG(next_client_ < options_.max_clients,
                 "client limit reached; raise StoreOptions::max_clients");
  const NodeId id =
      static_cast<NodeId>(options_.replicas + next_client_++);
  // Clients share the store's config table and start from the
  // configuration currently in force, so a client created after a
  // membership change targets the grown universe from its first op.
  return std::make_unique<QuorumClient>(*transport_, id, table_,
                                        CurrentConfigId(),
                                        options_.client_options);
}

std::unique_ptr<AsyncQuorumClient> ReplicatedStore::MakeAsyncClient() {
  return MakeAsyncClient(options_.async_client_options);
}

std::unique_ptr<AsyncQuorumClient> ReplicatedStore::MakeAsyncClient(
    AsyncQuorumClient::Options options) {
  QCNT_CHECK_MSG(next_client_ < options_.max_clients,
                 "client limit reached; raise StoreOptions::max_clients");
  const NodeId id =
      static_cast<NodeId>(options_.replicas + next_client_++);
  return std::make_unique<AsyncQuorumClient>(*transport_, id, table_,
                                             CurrentConfigId(), options);
}

void ReplicatedStore::Crash(std::size_t replica) {
  const auto it = replicas_.find(static_cast<NodeId>(replica));
  QCNT_CHECK_MSG(it != replicas_.end(), "unknown replica node id");
  // Partition first so an in-flight reply cannot escape, then (durable
  // only) fail-stop the server: stop the loop, discard the image.
  transport_->Crash(static_cast<NodeId>(replica));
  if (Durable()) it->second->CrashAndWipe();
}

void ReplicatedStore::Recover(std::size_t replica) {
  const auto it = replicas_.find(static_cast<NodeId>(replica));
  QCNT_CHECK_MSG(it != replicas_.end(), "unknown replica node id");
  // Rebuild state before reopening the transport, so the replica rejoins
  // quorums only once recovery replay has completed. Re-validate the
  // layout first: a segment that vanished while the replica was down must
  // fail recovery loudly, not resurrect a subset of the acked state.
  if (Durable()) {
    ValidateDurableLayout(options_, replica);
    it->second->Restart();
  }
  transport_->Recover(static_cast<NodeId>(replica));
}

bool ReplicatedStore::IsUp(std::size_t replica) const {
  return transport_->IsUp(static_cast<NodeId>(replica));
}

net::TcpStats ReplicatedStore::WireStats() const {
  if (tcp_ == nullptr) return net::TcpStats{};
  return tcp_->WireStats();
}

Bus& ReplicatedStore::RequireBus(const char* what) const {
  if (bus_ == nullptr) {
    throw net::TransportConfigError(
        std::string(what) +
        " is an in-process-Bus feature; this store runs over TCP, where "
        "the network itself is the fault injector");
  }
  return *bus_;
}

void ReplicatedStore::SetFaults(const FaultPlan& plan) {
  RequireBus("SetFaults").SetFaults(plan);
}

void ReplicatedStore::SetLinkFaults(NodeId from, NodeId to,
                                    const FaultPlan& plan) {
  RequireBus("SetLinkFaults").SetLinkFaults(from, to, plan);
}

void ReplicatedStore::ClearFaults() { RequireBus("ClearFaults").ClearFaults(); }

void ReplicatedStore::Partition(const std::vector<NodeId>& a,
                                const std::vector<NodeId>& b,
                                bool symmetric) {
  RequireBus("Partition").Partition(a, b, symmetric);
}

void ReplicatedStore::Heal() { RequireBus("Heal").Heal(); }

void ReplicatedStore::FlushFaults() { RequireBus("FlushFaults").FlushFaults(); }

FaultStats ReplicatedStore::InjectedFaults() const {
  return RequireBus("InjectedFaults").InjectedFaults();
}

storage::StorageStats ReplicatedStore::ReplicaStorageStats(
    std::size_t replica) const {
  const auto it = replicas_.find(static_cast<NodeId>(replica));
  QCNT_CHECK_MSG(it != replicas_.end(), "unknown replica node id");
  return it->second->StorageStats();
}

storage::StorageStats ReplicatedStore::TotalStorageStats() const {
  storage::StorageStats total;
  for (const auto& r : replicas_) total += r.second->StorageStats();
  return total;
}

BatchStats ReplicatedStore::ReplicaBatchStats(std::size_t replica) const {
  const auto it = replicas_.find(static_cast<NodeId>(replica));
  QCNT_CHECK_MSG(it != replicas_.end(), "unknown replica node id");
  return it->second->BatchStats();
}

std::size_t ReplicatedStore::ReplicaWorkerCount(std::size_t replica) const {
  const auto it = replicas_.find(static_cast<NodeId>(replica));
  QCNT_CHECK_MSG(it != replicas_.end(), "unknown replica node id");
  return it->second->WorkerCount();
}

BatchStats ReplicatedStore::TotalBatchStats() const {
  BatchStats total;
  for (const auto& r : replicas_) total += r.second->BatchStats();
  return total;
}

ReplicaSnapshot ReplicatedStore::ReplicaPeek(std::size_t replica) const {
  const auto it = replicas_.find(static_cast<NodeId>(replica));
  QCNT_CHECK_MSG(it != replicas_.end(), "unknown replica node id");
  return it->second->Peek();
}

std::vector<NodeId> ReplicatedStore::Members() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return members_;
}

std::uint32_t ReplicatedStore::CurrentConfigId() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return current_config_;
}

NodeId ReplicatedStore::SpawnReplica() {
  const NodeId id = next_replica_id_++;
  QCNT_CHECK_MSG(id < 64,
                 "replica id budget exhausted (ids are never reused and "
                 "must fit the 64-id quorum bitmask domain)");
  if (bus_ != nullptr) {
    const NodeId got = bus_->AddNode();
    QCNT_CHECK_MSG(got == id, "bus universe grew out from under the store");
  } else {
    net::Endpoint ep;
    ep.host = options_.tcp->host;
    if (options_.tcp->port_base != 0) {
      ep.port = static_cast<std::uint16_t>(options_.tcp->port_base + id);
    }
    tcp_->AddLocalNode(id, ep);
  }
  if (Durable()) ValidateDurableLayout(options_, id);
  auto gc = MakeCommitCoordinator(options_);
  if (gc) commit_coordinators_.emplace(id, gc);
  auto manifest = MakeReplicaManifest(options_, id);
  auto server = std::make_unique<ReplicaServer>(
      *transport_, id, options_.shards_per_replica,
      [this, manifest, gc](std::size_t shard) {
        return MakeShardBackend(options_, manifest, shard, gc);
      },
      options_.record_applied_history, options_.workers_per_replica);
  replicas_.emplace(id, std::move(server));
  return id;
}

void ReplicatedStore::CommitMembership(std::vector<NodeId> members,
                                       std::uint32_t config_id) {
  std::lock_guard<std::mutex> lock(state_mu_);
  members_ = std::move(members);
  current_config_ = config_id;
}

void ReplicatedStore::RetireReplica(NodeId node) {
  const auto it = replicas_.find(node);
  QCNT_CHECK_MSG(it != replicas_.end(), "unknown replica node id");
  // Partition first so nothing it acks mid-shutdown escapes, then stop
  // the threads. The entry is dropped; the node id stays burned.
  transport_->Crash(node);
  it->second->Shutdown();
  replicas_.erase(it);
  commit_coordinators_.erase(node);
}

std::uint64_t ReplicatedStore::ReplicaCommitPasses(std::size_t replica) const {
  const auto it = commit_coordinators_.find(static_cast<NodeId>(replica));
  return it == commit_coordinators_.end() ? 0 : it->second->Passes();
}

}  // namespace qcnt::runtime
