#include "runtime/store.hpp"

#include "common/check.hpp"

namespace qcnt::runtime {

namespace {
StoreOptions Normalize(StoreOptions options) {
  QCNT_CHECK(options.replicas >= 1 && options.replicas <= 63);
  QCNT_CHECK(options.max_clients >= 1);
  if (options.configs.empty()) {
    options.configs.push_back(
        quorum::MajoritySystem(static_cast<ReplicaId>(options.replicas)));
    options.initial_config = 0;
  }
  QCNT_CHECK(options.initial_config < options.configs.size());
  QCNT_CHECK_MSG(options.configs.front().n == options.replicas,
                 "the first configuration fixes the replica universe");
  for (const quorum::QuorumSystem& s : options.configs) {
    QCNT_CHECK_MSG(s.n <= options.replicas,
                   "configurations may not mention unknown replicas");
  }
  if (options.durability) {
    QCNT_CHECK_MSG(!options.durability->directory.empty(),
                   "durability requires a directory");
  }
  return options;
}

std::unique_ptr<storage::Backend> MakeBackend(const StoreOptions& options,
                                              std::size_t replica) {
  if (!options.durability) return storage::MakeMemoryBackend();
  return storage::MakeDurableBackend(
      options.durability->directory + "/replica_" + std::to_string(replica),
      *options.durability);
}
}  // namespace

ReplicatedStore::ReplicatedStore(StoreOptions options)
    : options_(Normalize(std::move(options))),
      bus_(options_.replicas + options_.max_clients) {
  for (std::size_t r = 0; r < options_.replicas; ++r) {
    replicas_.push_back(std::make_unique<ReplicaServer>(
        bus_, static_cast<NodeId>(r), MakeBackend(options_, r),
        options_.record_applied_history));
  }
}

ReplicatedStore::~ReplicatedStore() {
  for (auto& r : replicas_) r->Shutdown();
  bus_.CloseAll();
}

std::unique_ptr<QuorumClient> ReplicatedStore::MakeClient() {
  QCNT_CHECK_MSG(next_client_ < options_.max_clients,
                 "client limit reached; raise StoreOptions::max_clients");
  const NodeId id =
      static_cast<NodeId>(options_.replicas + next_client_++);
  return std::make_unique<QuorumClient>(bus_, id, options_.configs,
                                        options_.initial_config,
                                        options_.client_options);
}

std::unique_ptr<AsyncQuorumClient> ReplicatedStore::MakeAsyncClient() {
  return MakeAsyncClient(options_.async_client_options);
}

std::unique_ptr<AsyncQuorumClient> ReplicatedStore::MakeAsyncClient(
    AsyncQuorumClient::Options options) {
  QCNT_CHECK_MSG(next_client_ < options_.max_clients,
                 "client limit reached; raise StoreOptions::max_clients");
  const NodeId id =
      static_cast<NodeId>(options_.replicas + next_client_++);
  return std::make_unique<AsyncQuorumClient>(
      bus_, id, options_.configs, options_.initial_config, options);
}

void ReplicatedStore::Crash(std::size_t replica) {
  QCNT_CHECK(replica < replicas_.size());
  // Partition first so an in-flight reply cannot escape, then (durable
  // only) fail-stop the server: stop the loop, discard the image.
  bus_.Crash(static_cast<NodeId>(replica));
  if (Durable()) replicas_[replica]->CrashAndWipe();
}

void ReplicatedStore::Recover(std::size_t replica) {
  QCNT_CHECK(replica < replicas_.size());
  // Rebuild state before reopening the bus, so the replica rejoins
  // quorums only once recovery replay has completed.
  if (Durable()) replicas_[replica]->Restart();
  bus_.Recover(static_cast<NodeId>(replica));
}

bool ReplicatedStore::IsUp(std::size_t replica) const {
  return bus_.IsUp(static_cast<NodeId>(replica));
}

storage::StorageStats ReplicatedStore::ReplicaStorageStats(
    std::size_t replica) const {
  QCNT_CHECK(replica < replicas_.size());
  return replicas_[replica]->StorageStats();
}

storage::StorageStats ReplicatedStore::TotalStorageStats() const {
  storage::StorageStats total;
  for (const auto& r : replicas_) total += r->StorageStats();
  return total;
}

BatchStats ReplicatedStore::ReplicaBatchStats(std::size_t replica) const {
  QCNT_CHECK(replica < replicas_.size());
  return replicas_[replica]->BatchStats();
}

BatchStats ReplicatedStore::TotalBatchStats() const {
  BatchStats total;
  for (const auto& r : replicas_) total += r->BatchStats();
  return total;
}

ReplicaSnapshot ReplicatedStore::ReplicaPeek(std::size_t replica) const {
  QCNT_CHECK(replica < replicas_.size());
  return replicas_[replica]->Peek();
}

}  // namespace qcnt::runtime
