// Asynchronous, batched quorum client.
//
// SubmitRead / SubmitWrite return futures immediately; up to `window`
// operations run their quorum phases concurrently, and staged requests are
// coalesced into multi-op bus messages (kBatchReadReq / kBatchWriteReq) so
// a replica serves many operations per mailbox wakeup and logs a whole
// write batch with one group-commit append.
//
// Correctness envelope (DESIGN.md §7): the paper's protocol constrains
// only the per-item version-number order (Lemmas 7/8 quantify over one
// item x at a time), so operations on *disjoint* keys pipeline freely
// while operations on the *same* key are serialized behind each other in
// submission order — at most one op per key has live quorum phases, hence
// every write still derives its version from a read quorum that reflects
// the preceding write. A workload replayed through this client therefore
// produces the same per-item version sequences and the same final replica
// images as the sequential QuorumClient (asserted for randomized workloads
// by tests/runtime_async_test.cpp).
//
// Failure handling mirrors QuorumClient: each operation runs up to
// Options::max_attempts attempts, each with a fresh op id (so stale
// responses from a timed-out attempt can never satisfy a later one) and
// its own deadline, separated by jittered exponential backoff served by
// the same timer machinery as deadlines — backoff never blocks the
// pipeline; unrelated ops keep streaming. A retried write installs at
// max(discovered version, highest version any earlier attempt installed)
// + 1, so a straggling install from a failed attempt can never overtake
// the version the operation finally acks (see client.hpp).
//
// Threading model: the client is single-threaded and cooperatively driven.
// There is no background thread; progress happens inside Submit*, Flush,
// Drain and OpFuture::Get, which pump the client's own mailbox. One client
// per thread, as with QuorumClient.
#pragma once

#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "quorum/strategies.hpp"
#include "runtime/bus.hpp"
#include "runtime/client.hpp"
#include "runtime/config_table.hpp"

namespace qcnt::runtime {

class AsyncQuorumClient;

/// Completion handle for one submitted operation. Valid only while the
/// owning AsyncQuorumClient is alive; Get() drives the client until this
/// operation resolves (result.status says how).
class OpFuture {
 public:
  bool Ready() const;
  ClientResult Get();

 private:
  friend class AsyncQuorumClient;
  struct State;
  OpFuture(AsyncQuorumClient* client, std::shared_ptr<State> state)
      : client_(client), state_(std::move(state)) {}
  AsyncQuorumClient* client_;
  std::shared_ptr<State> state_;
};

class AsyncQuorumClient {
 public:
  struct Options {
    /// Per-attempt deadline, measured from attempt start.
    std::chrono::milliseconds timeout{1000};
    /// Attempts per logical operation; 1 = classic single-shot pipeline.
    std::size_t max_attempts = 1;
    /// Backoff before attempt k+1: uniform jitter over
    /// [base·2^(k-1)/2, base·2^(k-1)], capped at backoff_max. Served by
    /// the pump's timer wheel, not by sleeping.
    std::chrono::milliseconds backoff_base{2};
    std::chrono::milliseconds backoff_max{64};
    /// Maximum outstanding (submitted, not yet completed) operations —
    /// the pipeline depth. Submitting past the window blocks the caller
    /// inside Submit*, pumping completions (and flushing staged batches)
    /// until a slot frees. Ops queued behind a same-key predecessor count
    /// against the window even though their quorum phases are not live
    /// yet: backpressure is what keeps the pipeline draining.
    std::size_t window = 16;
    /// Flush threshold: staged requests are sent once this many coalesce
    /// (Flush()/Drain()/pumping send partial batches earlier).
    std::size_t max_batch = 32;
    /// First attempts target a *minimal* quorum picked by the installed
    /// system over the believed-up members instead of broadcasting (the
    /// message-count win generalized strategies exist for). An op whose
    /// minimal quorum has not assembled after this long escalates to full
    /// fan-out (0 = auto: a quarter of the attempt timeout). Batches
    /// containing any retry attempt broadcast.
    std::chrono::milliseconds escalate_after{0};
    /// Disable minimal-quorum targeting: every batch fans out to the
    /// full member set (the pre-targeting behavior, under which writes
    /// reach every member rather than just a write quorum — what
    /// replication-audit tests want).
    bool target_minimal = true;
  };

  /// Client-side batching/latency counters, alongside the replica-side
  /// BatchStats and the storage counters.
  struct Stats {
    std::uint64_t ops_submitted = 0;
    std::uint64_t ops_completed = 0;  // includes failures
    std::uint64_t ops_failed = 0;
    std::uint64_t retries = 0;          // extra attempts beyond the first
    std::uint64_t batches_sent = 0;     // broadcast batch messages
    std::uint64_t batched_requests = 0; // entries across those batches
    /// Lemma 8 invariant counter: read responses carrying best_version
    /// with a different value (see QuorumClient::DivergencesObserved).
    std::uint64_t divergences_observed = 0;
    /// Times a targeted (minimal-quorum) op had to fan out to the full
    /// member set — its quorum did not assemble within escalate_after.
    std::uint64_t escalations = 0;
    std::chrono::microseconds total_latency{0};
    std::chrono::microseconds max_latency{0};
  };

  /// `table` is the shared registry of installable configurations (it
  /// may grow at runtime; see config_table.hpp) — responses revealing a
  /// newer generation re-target every later broadcast, and fenced write
  /// acks (a replica refusing an install under a stale generation) teach
  /// the client the new configuration without counting toward a quorum.
  AsyncQuorumClient(Transport& transport, NodeId id,
                    std::shared_ptr<ConfigTable> table,
                    std::uint32_t initial_config, Options options);
  /// Convenience: wrap a static table of prefix-universe configurations.
  AsyncQuorumClient(Transport& transport, NodeId id,
                    std::vector<quorum::QuorumSystem> configs,
                    std::uint32_t initial_config, Options options);

  ~AsyncQuorumClient();
  AsyncQuorumClient(const AsyncQuorumClient&) = delete;
  AsyncQuorumClient& operator=(const AsyncQuorumClient&) = delete;

  /// Stage a logical read / write. May block while the in-flight window
  /// is full (draining completions, never waiting on this op itself).
  OpFuture SubmitRead(std::string key);
  OpFuture SubmitWrite(std::string key, std::int64_t value);

  /// Send staged batches now instead of waiting for max_batch to fill.
  void Flush();

  /// Drive everything in flight to completion. Returns true when every
  /// operation this client ever submitted succeeded.
  bool Drain();

  std::uint32_t BelievedConfig() const { return config_id_; }
  const Stats& ClientStats() const { return stats_; }

 private:
  friend class OpFuture;
  using Op = OpFuture::State;

  OpFuture Submit(std::string key, bool is_write, std::int64_t value);
  /// Send a batch message to a minimal read/write quorum of the believed
  /// configuration (full fan-out when the batch carries a retry attempt,
  /// no quorum is believed assemblable, or targeting is a wash), then
  /// stamp every in-flight op in the batch with the targeted set and its
  /// escalation deadline.
  void SendBatch(RtMessage m, bool write_quorum);
  /// Fan one op's request out to every member it was not yet sent to —
  /// its minimal quorum did not assemble within escalate_after.
  void EscalateOp(const std::shared_ptr<Op>& op);
  std::chrono::milliseconds EscalateDelay() const;
  /// Adopt (generation, config_id) evidence from a response.
  void Learn(std::uint64_t generation, std::uint32_t config_id);
  /// Install a self-describing config payload the wire taught us, when
  /// the shared table cannot resolve its id (see QuorumClient).
  void MaybeInstallWireConfig(const RtMessage& m);
  void Admit(const std::shared_ptr<Op>& op);
  /// (Re)launch the op's read phase under a fresh deadline: reset quorum
  /// bookkeeping and stage the read request. The op must already carry
  /// its id and be absent from in_flight_.
  void StartAttempt(const std::shared_ptr<Op>& op);
  void FlushReads();
  void FlushWrites();
  /// One scheduling step: flush staged batches, then block on the mailbox
  /// until a message, the earliest timer (op deadline or backoff expiry),
  /// or shutdown. Returns false when there is nothing in flight to wait
  /// for.
  bool PumpOnce();
  void Dispatch(const Envelope& e);
  void HandleBatchReadResp(const Envelope& e);
  void HandleBatchWriteAck(const Envelope& e);
  void Complete(const std::shared_ptr<Op>& op, ClientStatus status);
  void FailAllInFlight();
  /// Fire every due timer: expire overdue attempts (scheduling a backoff
  /// or completing with a failure status) and relaunch ops whose backoff
  /// elapsed under a fresh op id.
  void HandleTimers(std::chrono::steady_clock::time_point now);
  std::chrono::microseconds BackoffDelay(std::uint32_t attempt);

  Transport* transport_;
  NodeId id_;
  std::shared_ptr<ConfigTable> table_;
  Options options_;
  std::uint32_t config_id_;
  std::uint64_t generation_ = 0;
  std::uint64_t next_op_ = 1;

  /// Ops with live quorum phases (or parked in backoff), by op id.
  std::unordered_map<std::uint64_t, std::shared_ptr<Op>> in_flight_;
  /// All outstanding ops: |in_flight_| plus ops queued behind a same-key
  /// predecessor. Submit* blocks while pending_ >= window.
  std::size_t pending_ = 0;
  /// Per-key FIFO; only the front op of each queue may be in flight.
  std::unordered_map<std::string, std::deque<std::shared_ptr<Op>>> per_key_;
  std::vector<BatchEntry> staged_reads_;
  std::vector<BatchEntry> staged_writes_;
  /// Highest install version this client ever staged, per key; every new
  /// install goes strictly above it so stragglers from failed attempts or
  /// abandoned ops can never collide with a later install (see
  /// client.hpp).
  std::unordered_map<std::string, std::uint64_t> install_floor_;
  /// Optimistic up-mask driving minimal-quorum targeting: a bit clears
  /// when the transport refuses a send (node known down) and sets again
  /// on any response from that node. Reset to all-up whenever a retry
  /// attempt launches — targeting is a fast path, never a liveness
  /// assumption.
  std::uint64_t believed_up_ = ~0ull;
  Stats stats_;
  Rng backoff_rng_;
};

}  // namespace qcnt::runtime
