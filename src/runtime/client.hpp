// Blocking quorum client.
//
// One client per thread; each logical operation runs the two-phase quorum
// protocol synchronously against the client's own mailbox. Operation ids
// disambiguate stale responses from timed-out earlier operations — and,
// since every retry attempt draws a fresh op id, from earlier attempts of
// the *same* logical operation.
//
// Failure handling: an operation runs up to Options::max_attempts
// attempts, each with its own timeout, separated by exponential backoff
// with jitter. Retries are safe because (a) attempt ids keep stale
// responses out of later attempts, (b) replicas apply writes idempotently
// (a re-delivered install of the same (version, value) is a no-op), and
// (c) every install this client stages for a key goes strictly above
// every version it ever staged for that key (install_floor_), so a
// straggling install from a failed attempt — even of an operation that
// exhausted its retries — can never collide with or overtake a later
// operation's version (see Write()).
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/rng.hpp"
#include "quorum/strategies.hpp"
#include "runtime/bus.hpp"
#include "runtime/config_table.hpp"

namespace qcnt::runtime {

/// Why an operation resolved the way it did. `kOk` is the only success.
enum class ClientStatus : std::uint8_t {
  kOk,
  /// The attempt heard from some replicas but no quorum before deadline.
  kTimeout,
  /// The attempt heard from no replica at all — partitioned or every
  /// replica down; no quorum can possibly assemble.
  kNoQuorum,
  /// A retrying client (max_attempts > 1) exhausted every attempt.
  kRetriesExhausted,
  /// The bus shut down underneath the operation; retrying is pointless.
  kShutdown,
};

const char* ToString(ClientStatus status);

struct ClientResult {
  /// Convenience mirror of `status == ClientStatus::kOk`.
  bool ok = false;
  ClientStatus status = ClientStatus::kTimeout;
  std::int64_t value = 0;
  /// For reads: the freshest version observed by the read quorum. For
  /// writes: the version this operation installed. Lets callers reason
  /// about per-item ordering (an acked write at version v must never be
  /// superseded by anything older than v).
  std::uint64_t version = 0;
  /// Attempts consumed (1 when the first attempt resolved it).
  std::uint32_t attempts = 0;
  std::chrono::microseconds latency{0};
};

class QuorumClient {
 public:
  struct Options {
    /// Per-attempt deadline.
    std::chrono::milliseconds timeout{1000};
    /// Attempts per logical operation. 1 = the classic single-shot client
    /// (fail on first timeout); >1 enables retry with backoff — the right
    /// setting whenever the bus injects faults.
    std::size_t max_attempts = 1;
    /// Backoff before attempt k+1: uniform jitter over
    /// [base·2^(k-1)/2, base·2^(k-1)], capped at backoff_max.
    std::chrono::milliseconds backoff_base{2};
    std::chrono::milliseconds backoff_max{64};
    /// After a read quorum completes, asynchronously write the freshest
    /// (version, value) back to any responding replica that returned a
    /// stale version (Gifford-style read repair). Repairs are fire-and-
    /// forget; they never delay the read.
    bool read_repair = false;
    /// First attempts target a *minimal* quorum picked by the installed
    /// system (pick_read/pick_write over the believed-up set) instead of
    /// broadcasting to every member — the message-count win generalized
    /// strategies exist for. If the minimal quorum has not assembled
    /// after this long, the attempt escalates to full fan-out (0 = auto:
    /// a quarter of the attempt timeout). Later attempts of the same
    /// operation always broadcast.
    std::chrono::milliseconds escalate_after{0};
    /// Disable minimal-quorum targeting: every phase fans out to the full
    /// member set, the pre-targeting behavior. Writes then reach every
    /// member (not just a write quorum) — what replication-audit tests
    /// and anti-entropy-free deployments want. Reads with `read_repair`
    /// set always fan out regardless: repair exists to find and heal
    /// stale replicas *outside* the minimal quorum.
    bool target_minimal = true;
  };

  /// `table` is the shared registry of installable configurations;
  /// initial_config is in force at generation 0. The table may grow at
  /// runtime (membership change appends the target before stamping it),
  /// and this client re-targets its broadcasts whenever a response
  /// reveals a newer generation. This client is node `id`, which must not
  /// be a member of the initial configuration.
  QuorumClient(Transport& transport, NodeId id,
               std::shared_ptr<ConfigTable> table,
               std::uint32_t initial_config, Options options);
  /// Convenience: wrap a static table of prefix-universe configurations
  /// (replicas are nodes [0, configs[i].n), the pre-membership shape).
  QuorumClient(Transport& transport, NodeId id,
               std::vector<quorum::QuorumSystem> configs,
               std::uint32_t initial_config, Options options);
  QuorumClient(Transport& transport, NodeId id,
               std::vector<quorum::QuorumSystem> configs,
               std::uint32_t initial_config);

  std::uint32_t BelievedConfig() const { return config_id_; }
  std::uint64_t BelievedGeneration() const { return generation_; }

  /// Logical read: read-quorum collection, freshest value wins.
  ClientResult Read(const std::string& key);
  /// Logical write: version discovery then write-quorum installation.
  ClientResult Write(const std::string& key, std::int64_t value);
  /// Gifford reconfiguration to table entry `target`. When
  /// `stamp_acked_out` is non-null it receives the exact set of *old*-
  /// configuration members that acked the generation stamp — the
  /// membership coordinator's seal pass streams deltas from every one of
  /// them, which is what makes a grown configuration safe (any write
  /// acked under the old generation has a write quorum intersecting this
  /// set; see DESIGN.md §11).
  ClientResult Reconfigure(std::uint32_t target,
                           std::uint64_t* stamp_acked_out = nullptr);

  /// Number of read-repair write-backs actually delivered to (or accepted
  /// for delivery by) the bus — repairs the bus dropped on the floor
  /// (crashed or partitioned replica) are not counted.
  std::uint64_t RepairsIssued() const { return repairs_issued_; }

  /// Lemma 8 invariant counter: times a read quorum returned two copies
  /// with the same version but different values. In a correct run this is
  /// always zero (Lemma 8: all copies of a version hold the logical
  /// state); nonzero means divergence, surfaced here instead of being
  /// silently masked by the tie-break.
  std::uint64_t DivergencesObserved() const { return divergences_observed_; }

  /// Times a targeted (minimal-quorum) phase had to fan out to the full
  /// member set — the quorum did not assemble within escalate_after.
  std::uint64_t Escalations() const { return escalations_; }

 private:
  struct ReadPhase {
    bool ok = false;
    /// The mailbox closed under us (store shutdown) — abort retries.
    bool shutdown = false;
    /// At least one replica responded before the deadline.
    bool any_response = false;
    std::uint64_t best_version = 0;
    std::int64_t best_value = 0;
    std::uint64_t best_generation = 0;
    std::uint32_t best_config = 0;
    /// Resolved entry for best_config (the config the quorum check ran
    /// under); the write leg quorums against the same snapshot.
    std::shared_ptr<const MemberConfig> config;
    /// Bitmask of responders whose version lagged best_version.
    std::uint64_t stale = 0;
  };

  void BroadcastTo(const MemberConfig& config, const RtMessage& m);
  /// Send `m` to a minimal read (or write) quorum picked over the
  /// believed-up members, falling back to full fan-out when no quorum is
  /// believed assemblable. Returns the bitmask of members targeted (the
  /// full member_mask after a fallback, so escalation knows there is
  /// nothing left to reach).
  std::uint64_t SendToQuorum(const MemberConfig& config, const RtMessage& m,
                             bool write_quorum);
  /// Send `m` to every member not already in `sent`; returns the union.
  std::uint64_t Escalate(const MemberConfig& config, const RtMessage& m,
                         std::uint64_t sent);
  std::chrono::milliseconds EscalateDelay() const;
  /// Adopt (generation, config_id) evidence from a response; newer
  /// generations re-target every later broadcast.
  void Learn(std::uint64_t generation, std::uint32_t config_id);
  /// Install a self-describing config payload the wire taught us, when
  /// the shared table cannot resolve its id (a coordinator in another
  /// process appended it). Hostile or malformed payloads are ignored —
  /// the id simply stays unresolvable.
  void MaybeInstallWireConfig(const RtMessage& m);
  /// Run the read phase for `key` under the current deadline. `targeted`
  /// sends to a minimal read quorum first (with escalation); otherwise
  /// the phase broadcasts to every member.
  ReadPhase RunReadPhase(const std::string& key, std::uint64_t op,
                         std::chrono::steady_clock::time_point deadline,
                         bool targeted = false);
  void MaybeRepair(const std::string& key, std::uint64_t op,
                   const ReadPhase& phase);
  /// Failure status of one attempt (never kOk).
  ClientStatus AttemptStatus(const ReadPhase& phase,
                             std::size_t attempt) const;
  /// Sleep the jittered exponential backoff before attempt + 1.
  void Backoff(std::size_t attempt);

  Transport* transport_;
  NodeId id_;
  std::shared_ptr<ConfigTable> table_;
  Options options_;
  std::uint32_t config_id_;
  std::uint64_t generation_ = 0;
  std::uint64_t next_op_ = 1;
  std::uint64_t repairs_issued_ = 0;
  std::uint64_t divergences_observed_ = 0;
  std::uint64_t escalations_ = 0;
  /// Optimistic up-mask driving minimal-quorum targeting: a bit clears
  /// when the transport refuses a send (node known down) and sets again
  /// on any response from that node. Every retry attempt resets it to
  /// all-up — targeting is a fast path, never a liveness assumption.
  std::uint64_t believed_up_ = ~0ull;
  /// Highest install version this client ever staged, per key. Every new
  /// install goes strictly above it, so no install this client ever put
  /// on the wire — including from attempts or whole operations that were
  /// abandoned — can carry the same version as a later one with a
  /// different value (the client-side half of the Lemma 8 guarantee
  /// under retries; replicas reject the stale stragglers).
  std::unordered_map<std::string, std::uint64_t> install_floor_;
  Rng backoff_rng_;
};

}  // namespace qcnt::runtime
