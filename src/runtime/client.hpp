// Blocking quorum client.
//
// One client per thread; each logical operation runs the two-phase quorum
// protocol synchronously against the client's own mailbox. Operation ids
// disambiguate stale responses from timed-out earlier operations.
#pragma once

#include <chrono>
#include <optional>

#include "quorum/strategies.hpp"
#include "runtime/bus.hpp"

namespace qcnt::runtime {

struct ClientResult {
  bool ok = false;
  std::int64_t value = 0;
  /// For reads: the freshest version observed by the read quorum. For
  /// writes: the version this operation installed. Lets callers reason
  /// about per-item ordering (an acked write at version v must never be
  /// superseded by anything older than v).
  std::uint64_t version = 0;
  std::chrono::microseconds latency{0};
};

class QuorumClient {
 public:
  struct Options {
    std::chrono::milliseconds timeout{1000};
    /// After a read quorum completes, asynchronously write the freshest
    /// (version, value) back to any responding replica that returned a
    /// stale version (Gifford-style read repair). Repairs are fire-and-
    /// forget; they never delay the read.
    bool read_repair = false;
  };

  /// `configs` is the static table of installable configurations (shared
  /// with every client); initial_config is in force at generation 0.
  /// Replicas are nodes [0, configs[...].n); this client is node `id`.
  QuorumClient(Bus& bus, NodeId id,
               std::vector<quorum::QuorumSystem> configs,
               std::uint32_t initial_config, Options options);
  QuorumClient(Bus& bus, NodeId id,
               std::vector<quorum::QuorumSystem> configs,
               std::uint32_t initial_config);

  std::uint32_t BelievedConfig() const { return config_id_; }

  /// Logical read: read-quorum collection, freshest value wins.
  ClientResult Read(const std::string& key);
  /// Logical write: version discovery then write-quorum installation.
  ClientResult Write(const std::string& key, std::int64_t value);
  /// Gifford reconfiguration to configs[target].
  ClientResult Reconfigure(std::uint32_t target);

  /// Number of read-repair write-backs issued so far.
  std::uint64_t RepairsIssued() const { return repairs_issued_; }

 private:
  struct ReadPhase {
    bool ok = false;
    std::uint64_t best_version = 0;
    std::int64_t best_value = 0;
    std::uint64_t best_generation = 0;
    std::uint32_t best_config = 0;
    /// Bitmask of responders whose version lagged best_version.
    std::uint64_t stale = 0;
  };

  std::uint32_t ReplicaCount() const { return configs_.front().n; }
  void BroadcastToReplicas(const RtMessage& m);
  /// Run the read phase for `key` under the current deadline.
  ReadPhase RunReadPhase(const std::string& key, std::uint64_t op,
                         std::chrono::steady_clock::time_point deadline);

  Bus* bus_;
  NodeId id_;
  std::vector<quorum::QuorumSystem> configs_;
  Options options_;
  std::uint32_t config_id_;
  std::uint64_t generation_ = 0;
  std::uint64_t next_op_ = 1;
  std::uint64_t repairs_issued_ = 0;
};

}  // namespace qcnt::runtime
