// Shared, runtime-appendable registry of installable configurations.
//
// The paper's configuration object names a read/write quorum family; the
// runtime additionally needs to know *which node ids* a configuration
// quorums over, because membership change makes the replica set a
// non-contiguous id list (node ids are assigned for life and never
// reused, so a universe that grew 3 → 4 → 3 is {0, 1, 3}, not [0, 3)).
//
// A MemberConfig pairs the quorum predicates with that member list. The
// table is shared by the store and every client it hands out: a
// reconfiguration appends the target configuration *before* installing
// its stamp, so any config_id a replica ever returns in a response is
// resolvable by every client — that lookup is how a client re-targets
// its broadcasts after the membership changed underneath it.
//
// Thread safety: Append/At/Size may race freely (clients run on their
// own threads; AddReplica appends from the membership coordinator).
// Entries are immutable once appended and handed out by shared_ptr, so a
// client can hold a snapshot across a whole quorum phase without holding
// the lock.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.hpp"
#include "quorum/strategies.hpp"
#include "runtime/message.hpp"

namespace qcnt::runtime {

/// One installable configuration: quorum predicates plus the exact node
/// ids they quorum over. `member_mask` is the members as an up-set-style
/// bitmask (all ids < 64, the same domain the QuorumSystem predicates
/// use); responder bookkeeping is masked with it before a quorum check so
/// evidence from non-members can never satisfy a quorum.
struct MemberConfig {
  quorum::QuorumSystem system;
  std::vector<NodeId> members;
  std::uint64_t member_mask = 0;
};

class ConfigTable {
 public:
  /// A configuration over the prefix universe [0, system.n) — how every
  /// pre-membership-change configuration was expressed.
  static MemberConfig Prefix(quorum::QuorumSystem system) {
    QCNT_CHECK_MSG(system.n <= 64,
                   "universe beyond the 64-bit quorum bitmask domain");
    MemberConfig c;
    c.members.reserve(system.n);
    for (NodeId r = 0; r < system.n; ++r) c.members.push_back(r);
    c.member_mask = system.n == 64 ? ~0ull : (1ull << system.n) - 1;
    c.system = std::move(system);
    return c;
  }

  /// Majority quorums over an arbitrary member set (the shape membership
  /// change installs; see quorum::MajorityOverSystem).
  static MemberConfig Majority(std::vector<NodeId> members) {
    MemberConfig c;
    c.system = quorum::MajorityOverSystem(
        {members.begin(), members.end()});
    c.member_mask = MaskOf(members);
    c.members = std::move(members);
    return c;
  }

  /// Build the configuration a strategy descriptor names over an
  /// arbitrary member set: structural position i of the strategy is
  /// played by members[i] (for a grid, say, members[i] sits at
  /// row i/cols, col i%cols). Throws quorum::StrategyConfigError when
  /// the descriptor cannot cover exactly members.size() nodes — the
  /// typed refusal membership change surfaces instead of silently
  /// downgrading to majority. Contiguous prefix member sets skip the
  /// positional remap wrapper.
  static MemberConfig FromDescriptor(const quorum::StrategyDescriptor& desc,
                                     std::vector<NodeId> members) {
    if (members.empty()) {
      throw quorum::StrategyConfigError("a config needs members");
    }
    const auto n = static_cast<ReplicaId>(members.size());
    quorum::QuorumSystem base = quorum::SystemFromDescriptor(desc, n);
    bool prefix = true;
    for (NodeId i = 0; i < n; ++i) {
      if (members[i] != i) {
        prefix = false;
        break;
      }
    }
    if (prefix) return Prefix(std::move(base));
    MemberConfig c;
    c.system = quorum::OverMembers(std::move(base),
                                   {members.begin(), members.end()});
    c.member_mask = MaskOf(members);
    c.members = std::move(members);
    return c;
  }

  /// The all-of-one configuration over a single node — what a joiner
  /// serves during catchup, before it is part of any quorum.
  static MemberConfig Singleton(NodeId node) {
    return Majority({node});
  }

  static std::uint64_t MaskOf(const std::vector<NodeId>& members) {
    std::uint64_t mask = 0;
    for (NodeId r : members) {
      QCNT_CHECK_MSG(r < 64, "member id out of the 64-bit quorum domain");
      mask |= 1ull << r;
    }
    return mask;
  }

  explicit ConfigTable(std::vector<MemberConfig> configs) {
    QCNT_CHECK_MSG(!configs.empty(), "a store needs at least one config");
    for (MemberConfig& c : configs) Append(std::move(c));
  }

  /// Convenience: wrap a static table of prefix-universe systems (the
  /// pre-membership-change StoreOptions shape).
  explicit ConfigTable(std::vector<quorum::QuorumSystem> systems) {
    QCNT_CHECK_MSG(!systems.empty(), "a store needs at least one config");
    for (quorum::QuorumSystem& s : systems) Append(Prefix(std::move(s)));
  }

  /// Append a configuration; returns its config_id. The id is valid (and
  /// the entry visible to every sharer) before Append returns — callers
  /// append the target *before* stamping it anywhere.
  std::uint32_t Append(MemberConfig config) {
    QCNT_CHECK_MSG(!config.members.empty(), "a config needs members");
    if (config.member_mask == 0) config.member_mask = MaskOf(config.members);
    auto entry = std::make_shared<const MemberConfig>(std::move(config));
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(std::move(entry));
    return static_cast<std::uint32_t>(entries_.size() - 1);
  }

  /// Install a configuration learned from the wire at a *specific* id
  /// (the id a remote coordinator's table assigned and stamped into
  /// replicas). Grows the table with unresolvable gaps if needed; a slot
  /// that is already filled wins — the first installation is never
  /// displaced by a later (possibly hostile) payload. Returns the entry
  /// now at `id`.
  std::shared_ptr<const MemberConfig> InstallAt(std::uint32_t id,
                                                MemberConfig config) {
    QCNT_CHECK_MSG(!config.members.empty(), "a config needs members");
    if (config.member_mask == 0) config.member_mask = MaskOf(config.members);
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= entries_.size()) entries_.resize(id + 1);
    if (entries_[id] == nullptr) {
      entries_[id] = std::make_shared<const MemberConfig>(std::move(config));
    }
    return entries_[id];
  }

  std::shared_ptr<const MemberConfig> At(std::uint32_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    QCNT_CHECK_MSG(id < entries_.size() && entries_[id] != nullptr,
                   "unknown config id");
    return entries_[id];
  }

  /// At() that answers nullptr for an id this table has never seen —
  /// what a client uses on ids learned from the wire (a corrupt or
  /// hostile response must not crash the client). Gaps left by InstallAt
  /// are unknown ids too.
  std::shared_ptr<const MemberConfig> TryAt(std::uint32_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= entries_.size()) return nullptr;
    return entries_[id];
  }

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const MemberConfig>> entries_;
};

}  // namespace qcnt::runtime
