// Replica server: a dispatch stage plus a worker pool multiplexing the
// replica's key-hash shards.
//
// The state per key is a (version, value) pair — a Section-3 DM — plus one
// store-wide (generation, configuration) stamp for Section-4
// reconfiguration, held together as storage::Image fragments, one per
// shard. Keys are independent logical items (their per-item version orders
// are what Lemmas 7/8 constrain), so partitioning them across workers
// changes no protocol-visible behavior: each key's requests are still
// handled in arrival order by the one worker that owns its shard.
//
// Shards and workers are deliberately distinct axes:
//   - A *shard* is a durable layout unit: its own Image fragment, WAL
//     segment chain and checkpoint chain (`shard_<s>/`), pinned by the
//     directory MANIFEST. The shard count cannot change without
//     restriping disk.
//   - A *worker* is an execution unit: one thread with one inbox, owning a
//     fixed subset of the shards (round-robin s % W). The worker count is
//     free to differ per machine — min(shards, cores) by default — so an
//     8-shard layout runs thread-per-shard on a big host and collapses to
//     one worker on a small one instead of thrashing the scheduler.
//
// With shards == 1 there is no dispatch stage: a single worker thread
// drains the bus mailbox directly (the pre-sharding architecture, plus the
// batched PopAll drain). With shards > 1 a dispatch thread drains the bus
// mailbox and routes: single-key messages to the worker owning
// ShardForKey(key), batches split per *worker* (a client may thus receive
// several kBatch*Resp for one request — one per worker touched; batch
// responses are folded per entry, so this is invisible to the protocol;
// the worker re-resolves each entry's shard, so every entry still lands
// in its own shard's image and WAL segment), kConfigWriteReq broadcast to
// all workers and acked once after a barrier confirms every shard applied
// and logged it (the stamp is store-wide state).
//
// Dispatch is batch-aware: one PopAll burst is routed into reusable
// per-worker buffers and flushed with one PushAll (one handoff, at most
// one wakeup) per worker touched — not one push per sub-op. Barrier-like
// messages (peek fan-out, config broadcast, crash-drain marker,
// shutdown) flush the buffers first so per-worker FIFO order is exactly
// the order dispatch processed the stream in.
//
// Crash semantics are fail-stop at replica granularity with a
// *deterministic cut*: Transport::Crash marks the node down (so nothing
// new is delivered) and runs the crash hook, which enqueues a
// kCrashDrain marker at the tail of the bus mailbox and waits. The
// loops apply everything delivered before the marker, then set the
// crash cut: external work behind the marker is refused until Recover
// (the recover hook resets the cut). So the node's visible state is a
// prefix of its delivered message stream ending exactly at Crash() —
// not at whatever message a racing thread happened to be holding.
// Bus::Send's up-check guarantees no ack escapes after the crash.
// CrashAndWipe() additionally stops the threads and discards every
// shard's image; Restart() rebuilds each shard from its own backend
// (under durability: its own WAL segment + snapshot) and relaunches the
// threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "runtime/bus.hpp"
#include "storage/backend.hpp"

namespace qcnt::runtime {

/// One version-accepted write, in application order — recorded only when
/// the server was built with record_history (test observability: the
/// per-item subsequences are exactly the version-number sequences Lemma
/// 7/8 constrain, so equivalence suites compare them across runtimes).
struct AppliedWrite {
  std::string key;
  std::uint64_t version = 0;
  std::int64_t value = 0;
};

/// Per-shard execution counters (volatile, unlike StorageStats). `ops`
/// counts operations applied (single requests and batch entries alike);
/// `batches` counts batch messages that touched the shard; `queue_peak`
/// is the owning worker's high-water mark of messages moved by one
/// mailbox drain. Ops and fsyncs are genuinely per shard; queue_peak is
/// shared among shards owned by the same worker.
struct ShardCounters {
  std::uint64_t ops = 0;
  std::uint64_t batches = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t queue_peak = 0;

  ShardCounters& operator+=(const ShardCounters& o) {
    ops += o.ops;
    batches += o.batches;
    fsyncs += o.fsyncs;
    queue_peak = queue_peak > o.queue_peak ? queue_peak : o.queue_peak;
    return *this;
  }
};

/// Replica-side batching counters (volatile, unlike StorageStats).
struct BatchStats {
  std::uint64_t batches_applied = 0;  // kBatch* messages handled
  std::uint64_t batched_ops = 0;      // entries across those messages
  std::uint64_t max_batch = 0;        // largest single batch seen
  /// Read / write operations served (single requests and batch entries
  /// alike) — the observed workload mix a StrategyAdvisor samples, and
  /// the denominator for messages-per-op fan-out measurements.
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  /// Deliveries into the replica's *bus* mailbox (the dispatch stage's
  /// queue, or the sole worker's in single-shard mode): `handoffs` counts
  /// Push/PushAll calls (deterministic), `wakeups` the cv notifies
  /// actually issued (timing-dependent: a spinning or busy consumer needs
  /// none).
  std::uint64_t mailbox_handoffs = 0;
  std::uint64_t mailbox_wakeups = 0;
  /// Deliveries into the worker inboxes (the dispatch→worker hop), summed
  /// across the pool. Dispatch batching makes handoffs one per worker per
  /// routed burst — well below one per op under pipelined load. Zero in
  /// single-shard mode, where the bus mailbox is the only queue.
  std::uint64_t worker_handoffs = 0;
  std::uint64_t worker_wakeups = 0;
  /// One slot per shard; merging stats from replicas with different shard
  /// counts aligns slots by index (shard balance only means something
  /// within one replica, but aggregate totals still add up).
  std::vector<ShardCounters> per_shard;

  BatchStats& operator+=(const BatchStats& o) {
    batches_applied += o.batches_applied;
    batched_ops += o.batched_ops;
    max_batch = max_batch > o.max_batch ? max_batch : o.max_batch;
    read_ops += o.read_ops;
    write_ops += o.write_ops;
    mailbox_handoffs += o.mailbox_handoffs;
    mailbox_wakeups += o.mailbox_wakeups;
    worker_handoffs += o.worker_handoffs;
    worker_wakeups += o.worker_wakeups;
    if (per_shard.size() < o.per_shard.size()) {
      per_shard.resize(o.per_shard.size());
    }
    for (std::size_t i = 0; i < o.per_shard.size(); ++i) {
      per_shard[i] += o.per_shard[i];
    }
    return *this;
  }
};

/// Point-in-time copy of a replica's volatile state. Each shard snapshots
/// itself on its owning worker thread between operations (never
/// mid-batch); the shard images are key-disjoint, so the merged image is a
/// consistent per-key snapshot. History is concatenated shard-by-shard:
/// per-key order is exact (a key lives in one shard); cross-key
/// interleaving is not meaningful under sharded execution.
struct ReplicaSnapshot {
  /// Merged key map. Under a spill-mode durable backend the shard images
  /// hold only the un-checkpointed tail; Peek overlays the checkpoint
  /// chain (Backend::ScanAll) so this is always the full logical map.
  storage::Image image;
  std::vector<AppliedWrite> history;  // empty unless record_history
  BatchStats stats;                   // includes per-shard counters
  storage::StorageStats storage;      // summed across the shard backends
};

class ReplicaServer {
 public:
  /// Builds the backend for one shard (called once per shard index).
  using BackendFactory =
      std::function<std::unique_ptr<storage::Backend>(std::size_t)>;

  /// Single shard, in-memory backend; starts the server thread. The
  /// transport may be the in-process Bus or a net::TcpTransport hosting
  /// this node — the server only uses the Transport surface.
  ReplicaServer(Transport& transport, NodeId id);
  /// `shards` key-hash shards, each recovering from its own backend,
  /// executed by `workers` threads (0 = auto: min(shards, cores); any
  /// explicit value is clamped to [1, shards]).
  ReplicaServer(Transport& transport, NodeId id, std::size_t shards,
                const BackendFactory& make_backend,
                bool record_history = false, std::size_t workers = 0);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  NodeId Id() const { return id_; }
  std::size_t ShardCount() const { return shards_.size(); }
  /// Resolved worker-pool size (1 in single-shard mode).
  std::size_t WorkerCount() const { return workers_.size(); }

  /// Ask the loops to exit and join all threads.
  void Shutdown();

  /// Fail-stop: stop every thread and wipe all volatile state. The caller
  /// is expected to have partitioned the node (Bus::Crash) first so the
  /// ack of an in-flight request cannot escape.
  void CrashAndWipe();

  /// Relaunch after CrashAndWipe (or Shutdown): recover each shard's image
  /// from its backend and restart the threads. No-op if already running.
  void Restart();

  bool Running() const { return thread_.joinable(); }

  /// Consistent merged copy of the replica's state (see ReplicaSnapshot).
  /// Must only be called while the server is running.
  ReplicaSnapshot Peek();

  storage::StorageStats StorageStats() const;
  runtime::BatchStats BatchStats() const;

 private:
  /// A durable layout unit: image fragment + backend (WAL segment). Only
  /// its owning worker thread touches image/history/backend.
  struct Shard {
    storage::Image image;
    std::vector<AppliedWrite> history;
    std::unique_ptr<storage::Backend> backend;
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> batches{0};
  };

  /// An execution unit: one thread draining one inbox, owning a fixed
  /// subset of the shards. The scratch vectors are worker-local (no
  /// locking) and keep their capacity across batches.
  struct Worker {
    Mailbox inbox;  // unused in single-shard mode (no dispatch stage)
    std::thread thread;
    std::vector<std::size_t> owned;  // shard indices, fixed at construction
    std::atomic<std::uint64_t> queue_peak{0};
    /// Batch handlers regroup entries per shard here (indexed by shard):
    /// accepted WAL records staged for one ApplyWriteBatch per shard.
    std::vector<std::vector<storage::WalRecord>> wal_parts;
    /// Shards the batch in flight touched (dense list + flag per shard).
    std::vector<std::size_t> touched;
    std::vector<char> touched_flag;
  };

  bool Multi() const { return shards_.size() > 1; }

  void Start();
  void SingleLoop();
  void DispatchLoop();
  void WorkerLoop(std::size_t widx);
  void Route(Envelope e);
  void SplitBatch(Envelope e);
  /// Deliver everything Route buffered: one PushAll per worker touched.
  void FlushRoutes();
  void BroadcastConfigAndAck(const Envelope& e);
  void StopWorkers();
  void OnBusCrash();
  void OnBusRecover();
  /// True while refusing external work: the crash cut was reached and the
  /// node has not recovered. Resets itself lazily once IsUp again (the
  /// recover hook also resets it eagerly). Only called from the dispatch
  /// thread / sole worker.
  bool Crashed();
  /// A loop thread acked the crash-drain marker for `epoch`.
  void AckCrashDrain(std::uint64_t epoch);
  std::size_t DrainTarget() const { return Multi() ? workers_.size() : 1; }
  void NoteThreadExit();

  void HandleOnWorker(std::size_t widx, Envelope& e);
  void HandleBatchRead(Worker& w, const RtMessage& m, RtMessage& reply);
  void HandleBatchWrite(Worker& w, const RtMessage& m, RtMessage& reply);
  /// Mark shard `s` touched by the batch in flight on worker `w`.
  void NoteTouched(Worker& w, std::size_t s);
  /// Per touched shard: bump its batch counter, flush staged WAL records
  /// with one ApplyWriteBatch, and reset the touched set.
  void FlushTouched(Worker& w);
  void CountBatchTotals(std::size_t entries);
  /// Donor side of streaming catchup: serve one bounded chunk of this
  /// shard's image — the smallest `m.value` keys strictly greater than
  /// the cursor `m.key` — ascending, with the shard count and the
  /// replica's stamp on the reply (runs on the owning worker thread, so
  /// chunks interleave with live writes without any extra locking).
  void ServeCatchup(std::size_t idx, Envelope& e);
  /// Joiner side: start (or resume) pulling the donor's image shard by
  /// shard. Runs on the dispatch thread (multi) or the sole worker.
  void HandleJoinReq(const Envelope& e);
  /// Joiner side: one arrived chunk — verify the shard layout, hand the
  /// entries to the owning worker, advance the cursor, request the next
  /// chunk or report kCatchupDone to the coordinator.
  void HandleJoinChunk(Envelope& e);
  void SendCatchupReq();
  /// Merge pulled entries under the same newer-version-wins order as live
  /// writes (so a chunk can never regress a version a concurrent install
  /// already placed), write-ahead logging the accepted ones.
  void ApplyCatchupEntries(Worker& w, const std::vector<BatchEntry>& entries);
  /// Newer-version-wins merge of one write into the shard image; true when
  /// the write was accepted (and therefore must reach the backend).
  bool ApplyToImage(Shard& sh, const std::string& key, std::uint64_t version,
                    std::int64_t value);
  void ServePeek(std::size_t idx, std::uint64_t epoch);
  static void TrackPeak(std::atomic<std::uint64_t>& peak, std::uint64_t v);
  std::vector<ShardCounters> CollectShardCounters() const;
  /// Remember the self-describing config payload of an applied config
  /// write (newest (generation, config_id) wins), for echoing below.
  void NoteConfigPayload(const RtMessage& m);
  /// Attach the remembered payload to a reply whose stamp is newer than
  /// the request's — the channel through which a client in another
  /// process (whose ConfigTable never saw the coordinator's Append)
  /// learns the configuration it is being fenced to.
  void MaybeAttachConfig(const RtMessage& req, RtMessage& reply);

  Transport* transport_;
  NodeId id_;
  bool record_history_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::size_t> worker_of_;  // shard index → owning worker
  std::thread thread_;  // dispatch thread (multi) or the sole worker

  // Dispatch-thread scratch (multi-shard): per-worker envelope buffers a
  // PopAll burst is routed into, flushed as one PushAll per worker. The
  // vectors keep their capacity across bursts, so steady-state routing
  // allocates nothing. split_parts_ is SplitBatch's per-worker staging.
  std::vector<std::vector<Envelope>> route_bufs_;
  std::vector<std::vector<BatchEntry>> split_parts_;

  // Crash-drain handshake: OnBusCrash (an external thread, inside
  // Transport::Crash) pushes a kCrashDrain marker carrying drain_epoch_
  // and waits until every loop thread acked it — or until the threads
  // are gone (live_threads_), so a crash racing shutdown can't hang.
  // crash_cut_ flips when the marker is *processed*, making the cut a
  // FIFO position in the message stream rather than a timing race.
  std::mutex drain_call_mu_;  // serializes concurrent Crash() calls
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::uint64_t drain_epoch_ = 0;
  std::size_t drain_acks_ = 0;
  std::size_t live_threads_ = 0;
  std::atomic<bool> crash_cut_{false};

  // Config barrier (multi-shard): dispatch broadcasts a kConfigWriteReq to
  // every worker (its `value` carries the epoch) and acks the client only
  // once every worker has applied + logged it on all its shards. The
  // epoch guards against a worker's late decrement from a barrier that a
  // crash aborted.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  std::uint64_t barrier_epoch_ = 0;
  std::size_t barrier_pending_ = 0;

  // Peek handshake: the requester pushes one kImagePeek (epoch in
  // `generation`); dispatch fans it to every worker; each worker fills
  // its owned shards' slots once per epoch. Peeks are served even on a
  // crashed node (the crash-drain marker never discards them — observers
  // may inspect dead replicas), and since crash-drain and peeks are
  // mutually FIFO-ordered an in-flight peek can no longer be dropped by a
  // racing crash; the requester still retries on a timeout as a
  // belt-and-braces liveness guard — the filled flags make retries
  // idempotent.
  std::mutex peek_call_mu_;  // serializes concurrent Peek() callers
  std::mutex peek_mu_;
  std::condition_variable peek_cv_;
  std::uint64_t peek_epoch_ = 0;
  std::size_t peek_served_ = 0;
  std::vector<ReplicaSnapshot> peek_slots_;
  std::vector<char> peek_filled_;

  std::atomic<std::uint64_t> batches_applied_{0};
  std::atomic<std::uint64_t> batched_ops_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> read_ops_{0};
  std::atomic<std::uint64_t> write_ops_{0};

  // Last applied self-describing config payload (see NoteConfigPayload).
  // Volatile: a CrashAndWipe loses it, degrading fence NACKs to the
  // stamp-only shape until the next config write — remote clients then
  // fall back to refusing the unresolvable id, exactly the pre-payload
  // behavior.
  std::mutex config_payload_mu_;
  std::shared_ptr<const ConfigPayload> config_payload_;
  std::uint64_t config_payload_gen_ = 0;
  std::uint32_t config_payload_id_ = 0;

  /// Joiner-side pull progress. Touched only by the dispatch thread
  /// (multi) or the sole worker (single) — the same thread that routes
  /// kJoinReq and kCatchupChunk — so it needs no lock. A fresh kJoinReq
  /// with the same expected shard layout *resumes* from (shard, cursor):
  /// that is what makes a donor crash mid-stream recoverable, from the
  /// same donor or a different one.
  struct JoinState {
    bool active = false;
    std::uint64_t op = 0;
    NodeId donor = 0;
    NodeId coordinator = 0;
    std::uint64_t expected_shards = 0;
    std::uint32_t shard = 0;     // shard currently being pulled
    std::string cursor;          // last key received (exclusive)
    std::uint64_t entries = 0;   // total entries streamed so far
    /// Monotone per-request id (rides in kCatchupReq::op, echoed by the
    /// donor). Only the chunk answering the *latest outstanding* request
    /// advances the cursor — a duplicated or reordered chunk (fault
    /// injection, donor failover races) is dropped instead of double-
    /// advancing the shard counter or resurrecting a stale cursor.
    /// Survives a resume (it must stay monotone against in-flight stale
    /// chunks); cleared only by CrashAndWipe, which also drains inboxes.
    std::uint64_t pull_seq = 0;
  };
  JoinState join_;
};

/// kCatchupDone error codes (RtMessage::value).
inline constexpr std::int64_t kJoinOk = 0;
/// Donor's shard count differs from the layout the coordinator promised:
/// a shard-by-shard stream would land keys on the wrong shard (and, under
/// durability, the wrong WAL segment), so the join is refused outright.
inline constexpr std::int64_t kJoinErrShardMismatch = 1;

}  // namespace qcnt::runtime
