// Replica server: one thread per replica, owning the replica's state.
//
// The state per key is a (version, value) pair — a Section-3 DM — plus one
// store-wide (generation, configuration) stamp for Section-4
// reconfiguration. The server loop pops a request, applies it, and replies;
// a kShutdown message ends the loop.
#pragma once

#include <thread>
#include <unordered_map>

#include "runtime/bus.hpp"

namespace qcnt::runtime {

class ReplicaServer {
 public:
  /// Starts the server thread immediately.
  ReplicaServer(Bus& bus, NodeId id);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  NodeId Id() const { return id_; }

  /// Ask the loop to exit and join the thread.
  void Shutdown();

 private:
  struct Versioned {
    std::uint64_t version = 0;
    std::int64_t value = 0;
  };

  void Loop();
  void Handle(const Envelope& e);

  Bus* bus_;
  NodeId id_;
  std::unordered_map<std::string, Versioned> data_;
  std::uint64_t generation_ = 0;
  std::uint32_t config_id_ = 0;
  std::thread thread_;
};

}  // namespace qcnt::runtime
